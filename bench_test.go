// Benchmarks regenerating every table and figure of the SGXGauge
// paper (one Benchmark per experiment, reporting each experiment's
// headline numbers as custom metrics), plus micro-benchmarks of the
// simulation substrate itself.
//
// Experiment benchmarks share one cached Runner, so the first
// iteration performs the simulated runs and later iterations are
// cache hits; the interesting output is the reported metrics, which
// mirror EXPERIMENTS.md.
package sgxgauge_test

import (
	"sync"
	"testing"

	"sgxgauge/internal/cycles"
	"sgxgauge/internal/epc"
	"sgxgauge/internal/harness"
	"sgxgauge/internal/mee"
	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// benchEPCPages is the simulated EPC scale used by the experiment
// benchmarks (kept below the CLI default so the full bench suite runs
// in a couple of minutes).
const benchEPCPages = 192

var (
	benchRunnerOnce sync.Once
	benchRunner     *harness.Runner
)

func runner() *harness.Runner {
	benchRunnerOnce.Do(func() {
		benchRunner = harness.NewRunner(benchEPCPages)
		benchRunner.Seed = 1
	})
	return benchRunner
}

// BenchmarkTable2 regenerates the workload/settings inventory.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := runner().Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkFigure2 regenerates the EPC-stress motivation experiment.
func BenchmarkFigure2(b *testing.B) {
	var d *harness.Figure2Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = runner().Figure2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.Overhead[workloads.High], "overhead-high-x")
	b.ReportMetric(d.DTLBRatio[workloads.High], "dtlb-high-x")
	b.ReportMetric(d.EvictRatio[workloads.High], "evict-vs-low-x")
}

// BenchmarkFigure3 regenerates the Lighttpd concurrency sweep.
func BenchmarkFigure3(b *testing.B) {
	var pts []harness.Figure3Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = runner().Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[len(pts)-1].Ratio, "latency-ratio-16c")
}

// BenchmarkFigure4 regenerates the LibOS-vs-Native comparison.
func BenchmarkFigure4(b *testing.B) {
	var rows []harness.Figure4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = runner().Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	var min, max float64 = 1e9, 0
	for _, r := range rows {
		for _, s := range workloads.Sizes() {
			if r.Ratio[s] < min {
				min = r.Ratio[s]
			}
			if r.Ratio[s] > max {
				max = r.Ratio[s]
			}
		}
	}
	b.ReportMetric(min, "libos-vs-native-min-x")
	b.ReportMetric(max, "libos-vs-native-max-x")
}

// BenchmarkTable4 regenerates the headline overhead table.
func BenchmarkTable4(b *testing.B) {
	var d *harness.Table4Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = runner().Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.NativeVsVanilla.Overhead[workloads.Low], "native-low-x")
	b.ReportMetric(d.NativeVsVanilla.Overhead[workloads.Medium], "native-medium-x")
	b.ReportMetric(d.NativeVsVanilla.Overhead[workloads.High], "native-high-x")
	b.ReportMetric(d.LibOSVsNative.Overhead[workloads.Medium], "libos-vs-native-x")
}

// BenchmarkFigure5 regenerates per-workload Native overheads and
// evictions.
func BenchmarkFigure5(b *testing.B) {
	var rows []harness.Figure5Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = runner().Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		if row.Name == "BTree" {
			lo := float64(row.Evictions[workloads.Low])
			if lo == 0 {
				lo = 1
			}
			b.ReportMetric(float64(row.Evictions[workloads.Medium])/lo, "btree-evict-jump-x")
		}
	}
}

// BenchmarkFigure6a regenerates the empty-workload LibOS probe.
func BenchmarkFigure6a(b *testing.B) {
	var d *harness.Figure6aData
	var err error
	for i := 0; i < b.N; i++ {
		d, err = runner().Figure6a()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.ECalls), "ecalls")
	b.ReportMetric(float64(d.OCalls), "ocalls")
	b.ReportMetric(float64(d.AEXs), "aex")
	b.ReportMetric(float64(d.EPCEvictions), "evictions")
	b.ReportMetric(float64(d.EPCLoadBacks), "loadbacks")
}

// BenchmarkFigure6bc regenerates LibOS-mode overheads and load-backs.
func BenchmarkFigure6bc(b *testing.B) {
	var rows []harness.Figure6bcRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = runner().Figure6bc()
		if err != nil {
			b.Fatal(err)
		}
	}
	var worst float64
	for _, row := range rows {
		if row.Overhead[workloads.High] > worst {
			worst = row.Overhead[workloads.High]
		}
	}
	b.ReportMetric(worst, "libos-worst-high-x")
}

// BenchmarkFigure6d regenerates the switchless comparison.
func BenchmarkFigure6d(b *testing.B) {
	var d *harness.Figure6dData
	var err error
	for i := 0; i < b.N; i++ {
		d, err = runner().Figure6d()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(d.SwitchlessLatency-d.DefaultLatency)/d.DefaultLatency, "latency-change-pct")
	b.ReportMetric(100*(float64(d.SwitchlessDTLB)/float64(d.DefaultDTLB)-1), "dtlb-change-pct")
}

// BenchmarkFigure7 regenerates the SGX driver-operation latencies.
func BenchmarkFigure7(b *testing.B) {
	var rows []harness.Figure7Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = runner().Figure7()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		switch row.Op {
		case epc.OpEWB:
			b.ReportMetric(row.MeanUS, "ewb-us")
		case epc.OpELDU:
			b.ReportMetric(row.MeanUS, "eldu-us")
		}
	}
}

// BenchmarkFigure8 regenerates the Native-mode counter heat map.
func BenchmarkFigure8(b *testing.B) {
	var d *harness.Figure8Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = runner().Figure8()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.Ratio["Blockchain"][workloads.Low][perf.DTLBMisses], "blockchain-dtlb-x")
}

// BenchmarkTable5 regenerates the counter-importance regressions.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := runner().Table5()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkFigure9 regenerates the EPC activity timelines.
func BenchmarkFigure9(b *testing.B) {
	var d *harness.Figure9Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = runner().Figure9()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.LibOS[len(d.LibOS)-1].Evictions), "libos-evictions")
	b.ReportMetric(float64(d.Native[len(d.Native)-1].Evictions), "native-evictions")
}

// BenchmarkFigure10 regenerates the Iozone protected-files comparison.
func BenchmarkFigure10(b *testing.B) {
	var rows []harness.Figure10Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = runner().Figure10()
		if err != nil {
			b.Fatal(err)
		}
	}
	van, lib, pf := rows[0], rows[1], rows[2]
	b.ReportMetric(100*(lib.PhaseCycles["read"]/van.PhaseCycles["read"]-1), "libos-read-ovh-pct")
	b.ReportMetric(100*(pf.PhaseCycles["read"]/van.PhaseCycles["read"]-1), "pf-read-ovh-pct")
	b.ReportMetric(100*(pf.PhaseCycles["write"]/van.PhaseCycles["write"]-1), "pf-write-ovh-pct")
}

// --- substrate micro-benchmarks (real wall-clock performance of the
// simulator itself) ---

// BenchmarkMEESealPage measures sealing one 4 KiB page (AES-CTR +
// HMAC-SHA-256).
func BenchmarkMEESealPage(b *testing.B) {
	e := mee.New(1)
	var f mem.Frame
	id := mem.PageID{Enclave: 1, VPN: 7}
	b.SetBytes(mem.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.SealPage(id, uint64(i+1), &f)
	}
}

// BenchmarkEPCFaultLoadBack measures a full evict/load-back cycle.
func BenchmarkEPCFaultLoadBack(b *testing.B) {
	counters := &perf.Counters{}
	e := epc.New(32, mee.New(1), mem.NewBackingStore(), counters)
	clk := &cycles.Clock{}
	costs := cycles.DefaultCosts()
	// Over-subscribe so every round-robin touch faults.
	ids := make([]mem.PageID, 64)
	for i := range ids {
		ids[i] = mem.PageID{Enclave: 1, VPN: uint64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%len(ids)]
		if _, ok := e.Lookup(id); !ok {
			if _, _, err := e.Fault(clk, &costs, id); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSpaceReadU64 measures one simulated 8-byte enclave read
// through the full dTLB/LLC/EPC path.
func BenchmarkSpaceReadU64(b *testing.B) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 256})
	env := m.NewEnv(sgx.Native)
	if _, err := env.LaunchEnclave(2, 200); err != nil {
		b.Fatal(err)
	}
	addr := env.MustAlloc(64*mem.PageSize, mem.PageSize)
	tr := env.Main
	tr.Memset(addr, 0, 64*mem.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ReadU64(addr + uint64(i%(64*mem.PageSize/8))*8)
	}
}

// BenchmarkAccessPage measures the simulator's per-access hot path on
// its most common shape: a sequential line-strided sweep over an
// enclave buffer, where consecutive accesses stay on the same page in
// runs of 64 (the same-page streak the fast path memoizes).
func BenchmarkAccessPage(b *testing.B) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 256})
	env := m.NewEnv(sgx.Native)
	if _, err := env.LaunchEnclave(2, 200); err != nil {
		b.Fatal(err)
	}
	const pages = 64
	addr := env.MustAlloc(pages*mem.PageSize, mem.PageSize)
	tr := env.Main
	tr.Memset(addr, 0, pages*mem.PageSize)
	span := uint64(pages * mem.PageSize / mem.LineSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ReadU64(addr + (uint64(i)%span)*mem.LineSize)
	}
}

// BenchmarkAccessPageStride is the memoization-hostile counterpart:
// every access lands on a different page, so each one pays the full
// page-resolution path.
func BenchmarkAccessPageStride(b *testing.B) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 256})
	env := m.NewEnv(sgx.Native)
	if _, err := env.LaunchEnclave(2, 200); err != nil {
		b.Fatal(err)
	}
	const pages = 64
	addr := env.MustAlloc(pages*mem.PageSize, mem.PageSize)
	tr := env.Main
	tr.Memset(addr, 0, pages*mem.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ReadU64(addr + (uint64(i)%pages)*mem.PageSize)
	}
}

// BenchmarkExtentRead measures the compiled access-stream path on the
// same shape as BenchmarkAccessPage — a line-strided sweep over an
// enclave buffer — but issued as one Extent per page-sized run
// instead of 64 individual ReadU64 calls. The acceptance bar for the
// extent compiler is ≥2x BenchmarkAccessPage per simulated access;
// b.N counts simulated accesses so the two ns/op are comparable.
func BenchmarkExtentRead(b *testing.B) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 256})
	env := m.NewEnv(sgx.Native)
	if _, err := env.LaunchEnclave(2, 200); err != nil {
		b.Fatal(err)
	}
	const pages = 64
	const perPage = mem.PageSize / mem.LineSize // line-strided accesses per page
	addr := env.MustAlloc(pages*mem.PageSize, mem.PageSize)
	tr := env.Main
	tr.Memset(addr, 0, pages*mem.PageSize)
	buf := make([]uint64, perPage)
	b.ResetTimer()
	for i := 0; i < b.N; i += perPage {
		page := (uint64(i) / perPage) % pages
		tr.RunExtent(sgx.Extent{
			Addr:   addr + page*mem.PageSize,
			Stride: mem.LineSize,
			Count:  perPage,
			Elem:   8,
			Kind:   sgx.ExtentRead,
			U64:    buf,
		})
	}
}

// BenchmarkExtentWrite is BenchmarkExtentRead with dense word writes:
// one Extent per page instead of 512 WriteU64 calls.
func BenchmarkExtentWrite(b *testing.B) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 256})
	env := m.NewEnv(sgx.Native)
	if _, err := env.LaunchEnclave(2, 200); err != nil {
		b.Fatal(err)
	}
	const pages = 64
	const perPage = mem.PageSize / 8 // dense words per page
	addr := env.MustAlloc(pages*mem.PageSize, mem.PageSize)
	tr := env.Main
	tr.Memset(addr, 0, pages*mem.PageSize)
	buf := make([]uint64, perPage)
	for i := range buf {
		buf[i] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += perPage {
		page := (uint64(i) / perPage) % pages
		tr.RunExtent(sgx.Extent{
			Addr:   addr + page*mem.PageSize,
			Stride: 8,
			Count:  perPage,
			Elem:   8,
			Kind:   sgx.ExtentWrite,
			U64:    buf,
		})
	}
}

// BenchmarkMemset measures bulk zeroing of an enclave region (the
// Memset bulk path; one op = 64 KiB).
func BenchmarkMemset(b *testing.B) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 256})
	env := m.NewEnv(sgx.Native)
	if _, err := env.LaunchEnclave(2, 200); err != nil {
		b.Fatal(err)
	}
	const n = 64 * 1024
	addr := env.MustAlloc(n, mem.PageSize)
	tr := env.Main
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Memset(addr, byte(i), n)
	}
}

// BenchmarkMemcpy measures a bulk copy between two enclave regions
// (the Memcpy bulk path; one op = 32 KiB).
func BenchmarkMemcpy(b *testing.B) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 256})
	env := m.NewEnv(sgx.Native)
	if _, err := env.LaunchEnclave(2, 200); err != nil {
		b.Fatal(err)
	}
	const n = 32 * 1024
	src := env.MustAlloc(n, mem.PageSize)
	dst := env.MustAlloc(n, mem.PageSize)
	tr := env.Main
	tr.Memset(src, 7, n)
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Memcpy(dst, src, n)
	}
}

// BenchmarkECall measures one simulated enclave transition round trip.
func BenchmarkECall(b *testing.B) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 64})
	env := m.NewEnv(sgx.Native)
	if _, err := env.LaunchEnclave(2, 32); err != nil {
		b.Fatal(err)
	}
	tr := env.Main
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ECall(func() {})
	}
}

// BenchmarkOCall measures one simulated OCALL round trip from inside
// an enclave.
func BenchmarkOCall(b *testing.B) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 64})
	env := m.NewEnv(sgx.Native)
	if _, err := env.LaunchEnclave(2, 32); err != nil {
		b.Fatal(err)
	}
	tr := env.Main
	b.ResetTimer()
	tr.ECall(func() {
		for i := 0; i < b.N; i++ {
			tr.OCall(func() {})
		}
	})
}

// BenchmarkWorkloadBTreeNative measures one full B-Tree Native run at
// a small scale (end-to-end simulator throughput).
func BenchmarkWorkloadBTreeNative(b *testing.B) {
	w, err := suite.ByName("BTree")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		// A fresh Runner per iteration keeps the result cache cold, so
		// every iteration measures a full simulated run.
		res, err := new(harness.Runner).Run(harness.Spec{
			Workload: w, Mode: sgx.Native, Size: workloads.Low, EPCPages: 96, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}
