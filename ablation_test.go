// Ablation benchmarks for the design choices DESIGN.md calls out:
// each disables or exaggerates one mechanism of the simulated SGX
// machine and reports how the headline overhead (B-Tree at the Medium,
// ~EPC-sized setting, Native vs Vanilla) responds. Together they show
// which mechanism contributes what to the paper's observed costs.
package sgxgauge_test

import (
	"testing"

	"sgxgauge/internal/cycles"
	"sgxgauge/internal/harness"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// ablationOverhead measures Native/Vanilla overhead for B-Tree Medium
// under the given machine configuration.
func ablationOverhead(b *testing.B, cfg *sgx.Config) float64 {
	b.Helper()
	w, err := suite.ByName("BTree")
	if err != nil {
		b.Fatal(err)
	}
	// A fresh Runner keeps the result cache cold across b.N calls, so
	// every iteration measures two full simulated runs.
	r := new(harness.Runner)
	spec := harness.Spec{Workload: w, Size: workloads.Medium, EPCPages: 96, Seed: 1, Machine: cfg}
	spec.Mode = sgx.Vanilla
	van, err := r.Run(spec)
	if err != nil {
		b.Fatal(err)
	}
	spec.Mode = sgx.Native
	nat, err := r.Run(spec)
	if err != nil {
		b.Fatal(err)
	}
	if van.Err != nil || nat.Err != nil {
		b.Fatal(van.Err, nat.Err)
	}
	return harness.Overhead(nat, van)
}

// BenchmarkAblationBaseline is the reference point.
func BenchmarkAblationBaseline(b *testing.B) {
	var ovh float64
	for i := 0; i < b.N; i++ {
		ovh = ablationOverhead(b, nil)
	}
	b.ReportMetric(ovh, "overhead-x")
}

// BenchmarkAblationNoMEE removes the per-line memory-encryption
// charge: the confidentiality cost of §2.2.
func BenchmarkAblationNoMEE(b *testing.B) {
	costs := cycles.DefaultCosts()
	costs.MEELine = 0
	var ovh float64
	for i := 0; i < b.N; i++ {
		ovh = ablationOverhead(b, &sgx.Config{Costs: costs})
	}
	b.ReportMetric(ovh, "overhead-x")
}

// BenchmarkAblationSyncEviction charges the full EWB latency to the
// faulting thread (no background write-back overlap).
func BenchmarkAblationSyncEviction(b *testing.B) {
	costs := cycles.DefaultCosts()
	costs.AsyncEvictShare = 1.0
	var ovh float64
	for i := 0; i < b.N; i++ {
		ovh = ablationOverhead(b, &sgx.Config{Costs: costs})
	}
	b.ReportMetric(ovh, "overhead-x")
}

// BenchmarkAblationNoTLBFlushCost removes transition TLB pollution of
// the LLC (flushes still empty the TLB).
func BenchmarkAblationNoPollution(b *testing.B) {
	costs := cycles.DefaultCosts()
	costs.PollutionDenom = 0
	var ovh float64
	for i := 0; i < b.N; i++ {
		ovh = ablationOverhead(b, &sgx.Config{Costs: costs})
	}
	b.ReportMetric(ovh, "overhead-x")
}

// BenchmarkAblationFreeTransitions zeroes ECALL/OCALL/AEX costs,
// isolating the paging component of the overhead.
func BenchmarkAblationFreeTransitions(b *testing.B) {
	costs := cycles.DefaultCosts()
	costs.ECallEnter, costs.ECallExit = 0, 0
	costs.OCallExit, costs.OCallReturn = 0, 0
	costs.AEX = 0
	var ovh float64
	for i := 0; i < b.N; i++ {
		ovh = ablationOverhead(b, &sgx.Config{Costs: costs})
	}
	b.ReportMetric(ovh, "overhead-x")
}

// BenchmarkAblationIntegrityTree enables the VAULT-style Merkle tree
// over evicted pages.
func BenchmarkAblationIntegrityTree(b *testing.B) {
	var ovh float64
	for i := 0; i < b.N; i++ {
		ovh = ablationOverhead(b, &sgx.Config{IntegrityTree: true})
	}
	b.ReportMetric(ovh, "overhead-x")
}

// BenchmarkAblationSmallTLB quarters the TLB reach, deepening the
// flush penalty.
func BenchmarkAblationSmallTLB(b *testing.B) {
	var ovh float64
	for i := 0; i < b.N; i++ {
		ovh = ablationOverhead(b, &sgx.Config{TLBEntries: 48})
	}
	b.ReportMetric(ovh, "overhead-x")
}

// BenchmarkMultiEnclave reports the 8-instance interference point
// (§3.2.1: many small enclaves thrash a shared EPC).
func BenchmarkMultiEnclave(b *testing.B) {
	r := harness.NewRunner(96)
	var points []harness.MultiEnclavePoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = r.MultiEnclave([]int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	solo, crowd := points[0], points[1]
	b.ReportMetric(float64(crowd.CyclesPerInstance)/float64(solo.CyclesPerInstance), "slowdown-8x")
	b.ReportMetric(float64(crowd.EPCEvictions), "evictions-8")
}
