package chaos

import "testing"

func fireSequence(cfg Config, cl Class, n int) []bool {
	in := New(cfg)
	seq := make([]bool, n)
	for i := range seq {
		seq[i] = in.Fire(cl)
	}
	return seq
}

func TestSameSeedSameSchedule(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 0.3}.EnableAll()
	a := fireSequence(cfg, AEXStorm, 1000)
	b := fireSequence(cfg, AEXStorm, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at opportunity %d", i)
		}
	}
}

func TestDifferentSeedDifferentSchedule(t *testing.T) {
	a := fireSequence(Config{Seed: 1, Rate: 0.3}.EnableAll(), AEXStorm, 1000)
	b := fireSequence(Config{Seed: 2, Rate: 0.3}.EnableAll(), AEXStorm, 1000)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 1000-event schedules")
	}
}

func TestRateZeroNeverFires(t *testing.T) {
	in := New(Config{Seed: 7, Rate: 0}.EnableAll())
	for i := 0; i < 1000; i++ {
		for cl := Class(0); cl < NumClasses; cl++ {
			if in.Fire(cl) {
				t.Fatalf("%v fired at rate 0", cl)
			}
		}
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	in := New(Config{Seed: 7, Rate: 1}.EnableAll())
	for i := 0; i < 1000; i++ {
		if !in.Fire(TransitionFault) {
			t.Fatalf("transition-fault missed at rate 1 (opportunity %d)", i)
		}
	}
	if got := in.Counts()[TransitionFault]; got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
}

func TestDisabledClassConsumesNoState(t *testing.T) {
	// Firing a disabled class between draws must not perturb the
	// schedule of the enabled one.
	cfg := Config{Seed: 99, Rate: 0.5, AEXStorm: true}
	plain := fireSequence(cfg, AEXStorm, 200)

	in := New(cfg)
	for i := 0; i < 200; i++ {
		in.Fire(MemTamper) // disabled: must be a no-op
		if got := in.Fire(AEXStorm); got != plain[i] {
			t.Fatalf("disabled-class draw perturbed schedule at %d", i)
		}
	}
}

func TestPerClassRateOverride(t *testing.T) {
	cfg := Config{Seed: 5, Rate: 1, TamperRate: 0.5}.EnableAll()
	in := New(cfg)
	fired := 0
	for i := 0; i < 2000; i++ {
		if in.Fire(MemTamper) {
			fired++
		}
	}
	// ~50% with a wide tolerance: the override must clearly not be 1.
	if fired < 700 || fired > 1300 {
		t.Fatalf("mem-tamper fired %d/2000 with override 0.5", fired)
	}
}

func TestEnabled(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want bool
	}{
		{"zero value", Config{}, false},
		{"classes on, rate 0", Config{Seed: 1}.EnableAll(), false},
		{"rate set, no classes", Config{Rate: 0.5}, false},
		{"one class with override", Config{MemTamper: true, TamperRate: 0.1}, true},
		{"all on", Config{Rate: 0.1}.EnableAll(), true},
	}
	for _, c := range cases {
		if got := c.cfg.Enabled(); got != c.want {
			t.Errorf("%s: Enabled() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestWithAttempt(t *testing.T) {
	cfg := Config{Seed: 10, Rate: 0.5}.EnableAll()
	if cfg.WithAttempt(0).Seed != cfg.Seed {
		t.Fatal("attempt 0 must keep the original seed")
	}
	a1, a2 := cfg.WithAttempt(1), cfg.WithAttempt(2)
	if a1.Seed == cfg.Seed || a2.Seed == cfg.Seed || a1.Seed == a2.Seed {
		t.Fatal("attempts must derive distinct seeds")
	}
	// Derivation is deterministic.
	if cfg.WithAttempt(1).Seed != a1.Seed {
		t.Fatal("WithAttempt not deterministic")
	}
}

func TestBalloonTargetBounds(t *testing.T) {
	in := New(Config{Seed: 3, Rate: 0.5}.EnableAll())
	const orig, floor = 1000, 17
	for i := 0; i < 500; i++ {
		got := in.BalloonTarget(orig, floor)
		if got < 400 || got > orig {
			t.Fatalf("target %d outside default [0.4, 1.0] band of %d", got, orig)
		}
		if got < floor {
			t.Fatalf("target %d below floor %d", got, floor)
		}
	}
	// Custom band.
	in2 := New(Config{Seed: 3, Rate: 0.5, BalloonMinFrac: 0.1, BalloonMaxFrac: 0.2}.EnableAll())
	for i := 0; i < 500; i++ {
		got := in2.BalloonTarget(orig, floor)
		if got < 100 || got > 200 {
			t.Fatalf("target %d outside custom [0.1, 0.2] band", got)
		}
	}
}

func TestNextTamperCoversAllKinds(t *testing.T) {
	in := New(Config{Seed: 11, Rate: 1}.EnableAll())
	var seen [numTamperKinds]bool
	for i := 0; i < 200; i++ {
		k := in.NextTamper()
		if k < 0 || k >= numTamperKinds {
			t.Fatalf("NextTamper returned out-of-range kind %d", k)
		}
		seen[k] = true
	}
	for k, ok := range seen {
		if !ok {
			t.Errorf("tamper kind %v never drawn in 200 picks", TamperKind(k))
		}
	}
}

func TestPickOffsetInRange(t *testing.T) {
	in := New(Config{Seed: 13, Rate: 1}.EnableAll())
	for i := 0; i < 200; i++ {
		if off := in.PickOffset(4096); off < 0 || off >= 4096 {
			t.Fatalf("offset %d out of [0, 4096)", off)
		}
	}
	if in.PickOffset(0) != 0 {
		t.Fatal("PickOffset(0) != 0")
	}
}

func TestClassAndTamperStrings(t *testing.T) {
	wantClass := map[Class]string{
		AEXStorm:        "aex-storm",
		EPCBalloon:      "epc-balloon",
		MemTamper:       "mem-tamper",
		TransitionFault: "transition-fault",
	}
	for cl, want := range wantClass {
		if cl.String() != want {
			t.Errorf("%d.String() = %q, want %q", cl, cl.String(), want)
		}
	}
	wantKind := map[TamperKind]string{
		TamperBitFlip:  "bit-flip",
		TamperMAC:      "mac-corrupt",
		TamperDrop:     "drop",
		TamperRollback: "rollback",
	}
	for k, want := range wantKind {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
