// Package chaos implements a deterministic, seed-driven fault
// injector for the simulated SGX machine: the "adversarial OS" the
// paper's threat model assumes but the happy-path suite never
// exercises. Stress-SGX (Vaucher et al.) motivates deliberately
// stressing enclaves; the SGX attack surveys catalog the concrete
// vectors injected here.
//
// Four fault classes are supported:
//
//   - AEXStorm: forced asynchronous exits on enclave accesses, the
//     interrupt storms an OS can mount to flush enclave TLB state at
//     will (§2.3: every AEX flushes the TLB).
//   - EPCBalloon: the OS dynamically shrinking or growing the EPC
//     mid-run, turning a comfortable working set into a thrashing one.
//   - MemTamper: attacks on evicted (sealed) pages parked in untrusted
//     memory — bit flips, MAC corruption, version rollback (replay),
//     and dropped pages.
//   - TransitionFault: transient ECALL/OCALL transition failures,
//     modelling interrupted or resource-starved enclave entries that a
//     runtime would retry.
//
// The injector is purely decision logic: it owns a seeded xorshift
// PRNG and per-class bookkeeping, while the machine (package sgx)
// applies the effects. Two injectors built from the same Config make
// byte-identical decisions, so chaos runs are exactly reproducible.
package chaos

import (
	"errors"
	"fmt"

	"sgxgauge/internal/cycles"
)

// Class identifies one injectable fault class.
type Class int

// The fault classes.
const (
	AEXStorm Class = iota
	EPCBalloon
	MemTamper
	TransitionFault
	NumClasses
)

// String returns the class name used in reports and CLI flags.
func (c Class) String() string {
	switch c {
	case AEXStorm:
		return "aex-storm"
	case EPCBalloon:
		return "epc-balloon"
	case MemTamper:
		return "mem-tamper"
	case TransitionFault:
		return "transition-fault"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ErrTransition is the cause recorded for an injected transient
// ECALL/OCALL transition failure. It marks the fault as retryable:
// the harness re-runs specs whose error wraps it.
var ErrTransition = errors.New("chaos: injected transient transition failure")

// TamperKind selects one untrusted-memory attack on a sealed page.
type TamperKind int

// The tamper variants, cycled deterministically by the injector.
const (
	// TamperBitFlip flips one ciphertext bit (detected as a MAC
	// mismatch on load-back).
	TamperBitFlip TamperKind = iota
	// TamperMAC corrupts the stored MAC itself.
	TamperMAC
	// TamperDrop deletes the sealed page from the backing store (the
	// OS "loses" the page; detected as a lost page on fault-in).
	TamperDrop
	// TamperRollback replays a stale earlier version of the page
	// (detected as a freshness violation on load-back).
	TamperRollback
	numTamperKinds
)

// String returns the tamper variant name.
func (k TamperKind) String() string {
	switch k {
	case TamperBitFlip:
		return "bit-flip"
	case TamperMAC:
		return "mac-corrupt"
	case TamperDrop:
		return "drop"
	case TamperRollback:
		return "rollback"
	}
	return fmt.Sprintf("tamper(%d)", int(k))
}

// Config parameterizes an Injector. The zero value injects nothing.
type Config struct {
	// Seed drives every injection decision; equal seeds (with equal
	// settings) yield byte-identical runs.
	Seed uint64 `json:"seed,omitempty"`
	// Rate is the base fault probability per opportunity (one enclave
	// access, eviction, or transition), applied to every enabled class
	// without its own override. Values are clamped to [0, 1].
	Rate float64 `json:"rate,omitempty"`

	// Per-class enables.
	AEXStorm        bool `json:"aex_storm,omitempty"`
	EPCBalloon      bool `json:"epc_balloon,omitempty"`
	MemTamper       bool `json:"mem_tamper,omitempty"`
	TransitionFault bool `json:"transition_fault,omitempty"`

	// Per-class rate overrides; 0 means "use Rate".
	AEXRate        float64 `json:"aex_rate,omitempty"`
	BalloonRate    float64 `json:"balloon_rate,omitempty"`
	TamperRate     float64 `json:"tamper_rate,omitempty"`
	TransitionRate float64 `json:"transition_rate,omitempty"`

	// BalloonMinFrac and BalloonMaxFrac bound the ballooned EPC
	// capacity as fractions of the configured capacity (defaults 0.4
	// and 1.0: the OS steals up to 60% of the EPC and gives it back).
	BalloonMinFrac float64 `json:"balloon_min_frac,omitempty"`
	BalloonMaxFrac float64 `json:"balloon_max_frac,omitempty"`
}

// EnableAll turns on every fault class.
func (c Config) EnableAll() Config {
	c.AEXStorm = true
	c.EPCBalloon = true
	c.MemTamper = true
	c.TransitionFault = true
	return c
}

// Enabled reports whether the configuration can inject anything.
func (c Config) Enabled() bool {
	if !(c.AEXStorm || c.EPCBalloon || c.MemTamper || c.TransitionFault) {
		return false
	}
	for cl := Class(0); cl < NumClasses; cl++ {
		if c.classEnabled(cl) && c.rateFor(cl) > 0 {
			return true
		}
	}
	return false
}

func (c Config) classEnabled(cl Class) bool {
	switch cl {
	case AEXStorm:
		return c.AEXStorm
	case EPCBalloon:
		return c.EPCBalloon
	case MemTamper:
		return c.MemTamper
	case TransitionFault:
		return c.TransitionFault
	}
	return false
}

func (c Config) rateFor(cl Class) float64 {
	r := c.Rate
	switch cl {
	case AEXStorm:
		if c.AEXRate > 0 {
			r = c.AEXRate
		}
	case EPCBalloon:
		if c.BalloonRate > 0 {
			r = c.BalloonRate
		}
	case MemTamper:
		if c.TamperRate > 0 {
			r = c.TamperRate
		}
	case TransitionFault:
		if c.TransitionRate > 0 {
			r = c.TransitionRate
		}
	}
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// WithAttempt derives the configuration for retry attempt n (n = 0 is
// the original). Retries must not replay the exact same injected
// fault — a transient fault that deterministically recurs is not
// transient — so each attempt reseeds the injector. The derivation is
// itself deterministic, keeping whole retried runs reproducible.
func (c Config) WithAttempt(n int) Config {
	if n > 0 {
		c.Seed += uint64(n) * 0x9e3779b97f4a7c15
	}
	return c
}

// Injector makes injection decisions. It is not safe for concurrent
// use; each simulated machine owns one.
type Injector struct {
	cfg Config
	rng uint64
	// scaled per-class thresholds in PRNG space; 0 = class off.
	threshold [NumClasses]uint64
	counts    [NumClasses]uint64
}

// New builds an injector for the configuration.
func New(cfg Config) *Injector {
	in := &Injector{cfg: cfg, rng: cfg.Seed ^ 0x6368616f73 /* "chaos" */}
	if in.rng == 0 {
		in.rng = 0x2545f4914f6cdd1d
	}
	for cl := Class(0); cl < NumClasses; cl++ {
		if cfg.classEnabled(cl) {
			r := cfg.rateFor(cl)
			// Map probability to a threshold over the full uint64
			// range; r == 1 must always fire.
			if r >= 1 {
				in.threshold[cl] = ^uint64(0)
			} else {
				// Near r = 1 the product rounds up to exactly 2^64,
				// whose direct uint64 conversion is undefined; the
				// saturating helper clamps it to the always-fire
				// threshold instead.
				in.threshold[cl] = cycles.SatU64(r * float64(1<<63) * 2)
			}
		}
	}
	return in
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// next advances the xorshift64* PRNG.
func (in *Injector) next() uint64 {
	x := in.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	in.rng = x
	return x * 0x2545f4914f6cdd1d
}

// Fire reports whether a fault of the given class strikes at this
// opportunity, recording it when it does. Enabled classes draw from
// one shared PRNG stream (disabled ones consume no state), so a run's
// entire injection schedule is a pure function of the Config.
func (in *Injector) Fire(cl Class) bool {
	th := in.threshold[cl]
	if th == 0 {
		return false
	}
	if in.next() >= th {
		return false
	}
	in.counts[cl]++
	return true
}

// Counts returns how many times each class has fired.
func (in *Injector) Counts() [NumClasses]uint64 {
	return in.counts
}

// BalloonTarget returns the next ballooned EPC capacity for an EPC
// configured with origPages, in [BalloonMinFrac, BalloonMaxFrac] of
// the original (never below floorPages, the smallest capacity the EPC
// supports).
func (in *Injector) BalloonTarget(origPages, floorPages int) int {
	lo, hi := in.cfg.BalloonMinFrac, in.cfg.BalloonMaxFrac
	if lo <= 0 {
		lo = 0.4
	}
	if hi <= 0 || hi < lo {
		hi = 1.0
	}
	span := float64(origPages) * (hi - lo)
	target := cycles.SatInt(float64(origPages)*lo + span*in.frac())
	if target < floorPages {
		target = floorPages
	}
	return target
}

// frac returns a uniform float in [0, 1).
func (in *Injector) frac() float64 {
	return float64(in.next()>>11) / float64(1<<53)
}

// NextTamper picks the untrusted-memory attack variant for one fired
// MemTamper event.
func (in *Injector) NextTamper() TamperKind {
	return TamperKind(in.next() % uint64(numTamperKinds))
}

// PickOffset returns a deterministic offset in [0, n) — the byte a
// bit-flip lands on.
func (in *Injector) PickOffset(n int) int {
	if n <= 0 {
		return 0
	}
	return int(in.next() % uint64(n))
}
