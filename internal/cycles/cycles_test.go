package cycles

import (
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Cycles() != 0 {
		t.Fatalf("new clock reads %d, want 0", c.Cycles())
	}
	c.Advance(100)
	c.Advance(23)
	if got := c.Cycles(); got != 123 {
		t.Fatalf("clock reads %d, want 123", got)
	}
	c.Reset()
	if c.Cycles() != 0 {
		t.Fatalf("reset clock reads %d, want 0", c.Cycles())
	}
}

func TestDurationConversion(t *testing.T) {
	// One second of cycles at the nominal frequency.
	d := Duration(uint64(Frequency))
	if d != time.Second {
		t.Fatalf("Duration(freq) = %v, want 1s", d)
	}
	if us := Micros(3800); us < 0.99 || us > 1.01 {
		t.Fatalf("Micros(3800) = %v, want ~1.0", us)
	}
}

func TestDefaultCostsCalibration(t *testing.T) {
	c := DefaultCosts()
	// Paper section 2.2: evicting a page takes ~12,000 cycles.
	if c.EWBPage != 12000 {
		t.Errorf("EWBPage = %d, want 12000 (paper calibration)", c.EWBPage)
	}
	// Paper appendix A: EWB is ~16% more expensive than ELDU.
	ratio := float64(c.EWBPage) / float64(c.ELDUPage)
	if ratio < 1.10 || ratio > 1.25 {
		t.Errorf("EWB/ELDU ratio = %.3f, want ~1.16", ratio)
	}
	// Weisse et al.: an ECALL round trip is ~17,000 cycles.
	if rt := c.ECallEnter + c.ECallExit; rt != 17000 {
		t.Errorf("ECALL round trip = %d, want 17000", rt)
	}
	// A switchless call must be far cheaper than a real OCALL, or
	// section 5.6 makes no sense.
	if c.SwitchlessCall*4 > c.OCallExit {
		t.Errorf("switchless call (%d) is not clearly cheaper than an OCALL exit (%d)", c.SwitchlessCall, c.OCallExit)
	}
	// The MEE charge applies on top of DRAM; both must be nonzero
	// for the encryption overhead to exist.
	if c.MEELine == 0 || c.DRAMAccess == 0 {
		t.Error("MEELine and DRAMAccess must be nonzero")
	}
}
