package cycles

import (
	"math"
	"time"
)

// The Sat* helpers are the module's only approved way to turn a
// floating-point cycle quantity back into an integer. Go's direct
// conversion of an out-of-range float is undefined behaviour (on
// amd64 it produces garbage that looks like a wrap), which is how the
// transitionCost contention scaling once corrupted cycle counts at
// high concurrency. These clamp instead: a saturated cost stays a
// valid upper bound, a wrapped one is nonsense. The satconv analyzer
// (internal/lint) rejects raw float-to-integer conversions in
// cycle-cost packages outside these helpers.

// SatU64 converts v to uint64, saturating at the type's range: values
// at or above 2^64 become math.MaxUint64, negative values and NaN
// become 0.
func SatU64(v float64) uint64 {
	if !(v > 0) { // also catches NaN
		return 0
	}
	if v >= float64(math.MaxUint64) {
		return math.MaxUint64
	}
	return uint64(v)
}

// SatInt converts v to int, saturating at the platform int range on
// overflow; negative values and NaN become 0.
func SatInt(v float64) int {
	if !(v > 0) {
		return 0
	}
	if v >= float64(math.MaxInt) {
		return math.MaxInt
	}
	return int(v)
}

// SatDuration converts a non-negative nanosecond quantity to
// time.Duration, saturating at the maximum representable duration;
// negative values and NaN become 0.
func SatDuration(v float64) time.Duration {
	if !(v > 0) {
		return 0
	}
	if v >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(v)
}
