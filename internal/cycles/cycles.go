// Package cycles provides the cycle-accounting cost model used by the
// simulated SGX machine, together with a deterministic per-thread clock.
//
// All simulated latencies are expressed in CPU cycles at a nominal
// frequency (the paper's Xeon E-2186G runs at 3.8 GHz). The constants in
// CostModel are calibrated against the figures SGXGauge reports:
//
//   - evicting an EPC page costs about 12,000 cycles (paper §2.2),
//   - an ECALL round trip costs about 17,000 cycles (Weisse et al.,
//     cited in paper §2.3),
//   - EWB (evict) latency is about 16% higher than ELDU (load-back)
//     latency (paper Appendix A).
package cycles

import "time"

// Frequency is the nominal clock frequency of the simulated CPU in Hz.
// It matches the Xeon E-2186G used in the paper (3.8 GHz).
const Frequency = 3.8e9

// CostModel holds the per-operation cycle charges of the simulated
// machine. A zero value is not useful; obtain one from DefaultCosts.
type CostModel struct {
	// TLBHit is the cost of a dTLB hit.
	TLBHit uint64
	// PageWalk is the cost of a page-table walk after a dTLB miss.
	PageWalk uint64
	// EPCMCheck is the additional cost of verifying the EPCM entry
	// when the walked page belongs to an enclave (paper §2.3).
	EPCMCheck uint64
	// L1Hit is the cost of a first-level-cache hit (only charged
	// when the optional per-thread L1 is enabled).
	L1Hit uint64
	// LLCHit is the cost of a last-level-cache hit.
	LLCHit uint64
	// DRAMAccess is the cost of an LLC miss serviced from DRAM.
	DRAMAccess uint64
	// MEELine is the additional cost of decrypting/encrypting one
	// cache line through the Memory Encryption Engine when the line
	// belongs to an EPC page.
	MEELine uint64
	// ECallEnter and ECallExit are the one-way costs of entering and
	// leaving an enclave through an ECALL. Their sum approximates the
	// ~17,000-cycle round trip reported by Weisse et al.
	ECallEnter uint64
	ECallExit  uint64
	// OCallExit and OCallReturn are the one-way costs of an OCALL.
	OCallExit   uint64
	OCallReturn uint64
	// AEX is the cost of an asynchronous enclave exit (for example on
	// a page fault raised while executing inside the enclave).
	AEX uint64
	// SwitchlessCall is the cost of handing an OCALL to a proxy
	// thread over shared memory without exiting the enclave.
	SwitchlessCall uint64
	// EWBPage is the cost of evicting one EPC page (encrypt + MAC +
	// copy to untrusted memory). The paper measures ~12,000 cycles.
	EWBPage uint64
	// ELDUPage is the cost of loading one page back (copy + decrypt +
	// integrity check). EWBPage is ~16% higher than ELDUPage.
	ELDUPage uint64
	// EPCAlloc is the cost of allocating a free EPC page (EAUG-like).
	EPCAlloc uint64
	// FaultOverhead is the fixed kernel/driver cost of taking an EPC
	// page fault, on top of the ELDU or allocation work.
	FaultOverhead uint64
	// SyscallDirect is the cost of a system call issued by an
	// unprotected (Vanilla) application.
	SyscallDirect uint64
	// SyscallShim is the LibOS-internal cost of interposing on a
	// system call before it is forwarded (or handled internally).
	SyscallShim uint64
	// ByteCopy is the per-byte cost of copying data across the
	// enclave boundary or through the OS.
	ByteCopy uint64
	// Compute is the nominal per-access instruction cost charged for
	// the arithmetic surrounding one memory access.
	Compute uint64
	// ContentionFactor scales the extra transition cost added per
	// additional thread concurrently entering the same enclave
	// (models EPCM locking and TLB-shootdown contention, paper §3.2.2).
	ContentionFactor float64
	// AsyncEvictShare is the fraction of an EWB's latency charged to
	// the faulting thread: the kernel evicts 16-page batches ahead of
	// demand, overlapping most write-back work with execution, so a
	// fault pays mainly for its synchronous ELDU. Figure 7 still
	// reports the full EWB latency as the driver function observes it.
	AsyncEvictShare float64
	// PollutionDenom is the fraction of the LLC displaced by one
	// enclave transition (kernel entry/exit, microcode, and AEX
	// handling pollute the cache), expressed as one
	// PollutionDenom-th of the cache; 0 disables pollution.
	PollutionDenom uint64
	// TreeLevel is the cost of touching one uncached integrity-tree
	// level during EWB/ELDU when the Merkle integrity tree is
	// enabled (one untrusted-memory access plus hashing).
	TreeLevel uint64
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		TLBHit:           1,
		PageWalk:         120,
		EPCMCheck:        130,
		L1Hit:            3,
		LLCHit:           10,
		DRAMAccess:       150,
		MEELine:          350,
		ECallEnter:       8500,
		ECallExit:        8500,
		OCallExit:        8200,
		OCallReturn:      8200,
		AEX:              5500,
		SwitchlessCall:   600,
		EWBPage:          12000,
		ELDUPage:         10300, // 12000 / 1.165
		EPCAlloc:         1900,
		FaultOverhead:    2400,
		SyscallDirect:    1100,
		SyscallShim:      450,
		ByteCopy:         1,
		Compute:          1,
		ContentionFactor: 0.28,
		AsyncEvictShare:  0.25,
		PollutionDenom:   256,
		TreeLevel:        210,
	}
}

// Clock is a deterministic cycle counter for one simulated hardware
// thread. It is not safe for concurrent use; each simulated thread owns
// its own Clock.
type Clock struct {
	cycles uint64
}

// Advance adds n cycles to the clock.
func (c *Clock) Advance(n uint64) { c.cycles += n }

// Cycles returns the number of cycles elapsed on this clock.
func (c *Clock) Cycles() uint64 { return c.cycles }

// Reset sets the clock back to zero.
func (c *Clock) Reset() { c.cycles = 0 }

// Duration converts a cycle count to wall-clock time at Frequency.
func Duration(cycles uint64) time.Duration {
	return SatDuration(float64(cycles) / Frequency * float64(time.Second))
}

// Micros converts a cycle count to microseconds at Frequency.
func Micros(cycles uint64) float64 {
	return float64(cycles) / Frequency * 1e6
}
