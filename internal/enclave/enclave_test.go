package enclave

import (
	"testing"

	"sgxgauge/internal/mem"
)

func TestAddressRange(t *testing.T) {
	e := New(1, 0x7000_0000_0000, 16)
	if e.Limit() != 0x7000_0000_0000+16*mem.PageSize {
		t.Errorf("Limit = %#x", e.Limit())
	}
	if !e.Contains(e.Base) || !e.Contains(e.Limit()-1) {
		t.Error("range excludes its own pages")
	}
	if e.Contains(e.Base-1) || e.Contains(e.Limit()) {
		t.Error("range includes foreign addresses")
	}
}

func TestPageID(t *testing.T) {
	e := New(7, 0x7000_0000_0000, 16)
	id := e.PageID(e.Base + 5000)
	if id.Enclave != 7 {
		t.Errorf("owner = %d", id.Enclave)
	}
	if id.VPN != (e.Base+5000)>>12 {
		t.Errorf("vpn = %#x", id.VPN)
	}
}

func TestInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with size 0 did not panic")
		}
	}()
	New(1, 0, 0)
}

func TestHeapAllocation(t *testing.T) {
	e := New(1, 0x1000_0000, 4)
	a, err := e.Alloc(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != e.Base {
		t.Errorf("first alloc at %#x, want base %#x", a, e.Base)
	}
	b, err := e.Alloc(100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b%64 != 0 {
		t.Errorf("alloc not aligned: %#x", b)
	}
	if b < a+100 {
		t.Error("allocations overlap")
	}
	if e.HeapUsed() == 0 {
		t.Error("HeapUsed = 0")
	}
}

func TestHeapExhaustion(t *testing.T) {
	e := New(1, 0x1000_0000, 2)
	if _, err := e.Alloc(3*mem.PageSize, 0); err != ErrOutOfMemory {
		t.Errorf("oversized alloc: err = %v, want ErrOutOfMemory", err)
	}
	if _, err := e.Alloc(2*mem.PageSize, 0); err != nil {
		t.Errorf("exact-fit alloc failed: %v", err)
	}
	if _, err := e.Alloc(1, 0); err != ErrOutOfMemory {
		t.Errorf("post-exhaustion alloc: err = %v, want ErrOutOfMemory", err)
	}
}

func TestAllocBadAlignment(t *testing.T) {
	e := New(1, 0x1000_0000, 4)
	if _, err := e.Alloc(8, 3); err == nil {
		t.Error("non-power-of-two alignment accepted")
	}
}

func TestMeasurementDeterministicAndSensitive(t *testing.T) {
	build := func(poison bool) [32]byte {
		e := New(1, 0, 4)
		for vpn := uint64(0); vpn < 4; vpn++ {
			var f mem.Frame
			f.Data[0] = byte(vpn)
			if poison && vpn == 2 {
				f.Data[100] = 0xFF
			}
			e.ExtendMeasurement(vpn, &f)
		}
		e.FinishLaunch()
		return e.Measurement
	}
	a, b := build(false), build(false)
	if a != b {
		t.Fatal("measurement is not deterministic")
	}
	if c := build(true); c == a {
		t.Fatal("measurement ignores page content (tampered binary would pass)")
	}
}

func TestMeasurementOrderSensitive(t *testing.T) {
	var f mem.Frame
	e1 := New(1, 0, 4)
	e1.ExtendMeasurement(0, &f)
	e1.ExtendMeasurement(1, &f)
	e1.FinishLaunch()
	e2 := New(1, 0, 4)
	e2.ExtendMeasurement(1, &f)
	e2.ExtendMeasurement(0, &f)
	e2.FinishLaunch()
	if e1.Measurement == e2.Measurement {
		t.Error("measurement ignores page order")
	}
}

func TestDoubleFinishLaunchPanics(t *testing.T) {
	e := New(1, 0, 4)
	e.FinishLaunch()
	if !e.Launched() {
		t.Error("Launched() false after FinishLaunch")
	}
	defer func() {
		if recover() == nil {
			t.Error("double FinishLaunch did not panic")
		}
	}()
	e.FinishLaunch()
}
