// Package enclave models the software-visible state of one SGX
// enclave: its identity, virtual address range, launch-time
// measurement, and in-enclave heap.
//
// The expensive parts of an enclave's life — paging its contents
// through the EPC, transitions, TLB flushes — are driven by the
// machine (package sgx); this package holds the bookkeeping.
package enclave

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"sgxgauge/internal/mem"
)

// ErrOutOfMemory is returned when an allocation does not fit in the
// enclave's declared size.
var ErrOutOfMemory = errors.New("enclave: heap exhausted (enclave size exceeded)")

// Enclave is one trusted execution environment instance.
type Enclave struct {
	// ID is the machine-assigned enclave identity (EPCM owner field).
	ID uint32
	// Base is the first virtual address of the enclave range.
	Base uint64
	// SizePages is the declared enclave size. SGX loads this many
	// pages through the EPC at launch to compute the measurement
	// (paper §3.2.1, Appendix D).
	SizePages int
	// Measurement is the SHA-256 launch measurement (MRENCLAVE
	// analogue) computed over every page added at build time.
	Measurement [32]byte

	heapNext   uint64
	hash       [32]byte // running measurement state (chained SHA-256)
	launched   bool
	abortCause error
}

// New creates an un-launched enclave covering
// [base, base+SizePages*PageSize).
func New(id uint32, base uint64, sizePages int) *Enclave {
	if sizePages <= 0 {
		panic(fmt.Sprintf("enclave: invalid size %d pages", sizePages))
	}
	e := &Enclave{ID: id, Base: base, SizePages: sizePages, heapNext: base}
	e.hash = sha256.Sum256([]byte("sgxgauge-enclave-init"))
	return e
}

// Limit returns the first address past the enclave range.
func (e *Enclave) Limit() uint64 {
	return e.Base + uint64(e.SizePages)*mem.PageSize
}

// Contains reports whether addr falls inside the enclave range.
func (e *Enclave) Contains(addr uint64) bool {
	return addr >= e.Base && addr < e.Limit()
}

// PageID returns the EPC page identity for the page containing addr.
func (e *Enclave) PageID(addr uint64) mem.PageID {
	return mem.PageID{Enclave: e.ID, VPN: mem.PageNumber(addr)}
}

// ExtendMeasurement folds one added page into the launch measurement
// (the EEXTEND step). The machine calls this once per page while
// building the enclave.
func (e *Enclave) ExtendMeasurement(vpn uint64, f *mem.Frame) {
	h := sha256.New()
	h.Write(e.hash[:])
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], vpn)
	h.Write(hdr[:])
	h.Write(f.Data[:])
	copy(e.hash[:], h.Sum(nil))
}

// FinishLaunch seals the measurement; further ExtendMeasurement calls
// are a bug.
func (e *Enclave) FinishLaunch() {
	if e.launched {
		panic("enclave: FinishLaunch called twice")
	}
	e.Measurement = e.hash
	e.launched = true
}

// Launched reports whether the enclave finished its build phase.
func (e *Enclave) Launched() bool { return e.launched }

// Abort transitions the enclave to the aborted state, recording the
// first cause. Real SGX has exactly this semantic: when the platform
// detects tampering it poisons the enclave, subsequent entries and
// accesses fail, and the rest of the machine keeps running. Abort is
// idempotent; later causes are ignored.
func (e *Enclave) Abort(cause error) {
	if e.abortCause != nil {
		return
	}
	if cause == nil {
		cause = errors.New("enclave: aborted")
	}
	e.abortCause = cause
}

// Aborted reports whether the enclave has been aborted.
func (e *Enclave) Aborted() bool { return e.abortCause != nil }

// AbortCause returns the first error that aborted the enclave, or nil
// while it is still live.
func (e *Enclave) AbortCause() error { return e.abortCause }

// Alloc reserves n bytes from the enclave heap with the given
// alignment (which must be a power of two; 0 means 8). Memory is
// demand-paged: no EPC pages are consumed until first touch.
func (e *Enclave) Alloc(n uint64, align uint64) (uint64, error) {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("enclave: alignment %d is not a power of two", align)
	}
	addr := (e.heapNext + align - 1) &^ (align - 1)
	if addr+n > e.Limit() || addr+n < addr {
		return 0, ErrOutOfMemory
	}
	e.heapNext = addr + n
	return addr, nil
}

// HeapUsed returns the number of heap bytes reserved so far.
func (e *Enclave) HeapUsed() uint64 { return e.heapNext - e.Base }
