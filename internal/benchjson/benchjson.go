// Package benchjson parses `go test -bench` output into a stable JSON
// form (the BENCH_*.json files committed at the repo root) and compares
// two such files under a tolerance gate.
//
// The JSON trajectory lets every perf-sensitive PR land with measured
// numbers and lets CI fail on silent hot-path regressions: the
// bench-smoke job regenerates BENCH_head.json and gates it against the
// committed BENCH_baseline.json (see cmd/benchgate).
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's measurement.
type Entry struct {
	// NsPerOp is wall-clock nanoseconds per operation. When a
	// benchmark appears several times in the input (``-count``),
	// the minimum is kept: the best run is the least noisy estimate
	// of the code's true cost.
	NsPerOp float64 `json:"ns_per_op"`
	// Iters is b.N of the kept run.
	Iters int64 `json:"iters,omitempty"`
	// Metrics holds the benchmark's custom b.ReportMetric values
	// (the simulated headline numbers), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is one BENCH_*.json document.
type File struct {
	// Ref labels the tree the numbers were measured on (a tag or
	// commit).
	Ref string `json:"ref,omitempty"`
	// Benchmarks maps benchmark name (without the -GOMAXPROCS
	// suffix) to its measurement.
	Benchmarks map[string]Entry `json:"benchmarks"`
	// Previous optionally embeds an older capture (and its ref) so a
	// single committed file documents a speedup or regression
	// trajectory.
	Previous    map[string]Entry `json:"previous,omitempty"`
	PreviousRef string           `json:"previous_ref,omitempty"`
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkAccessPage-8   5000000   250.3 ns/op   4.00 some-metric
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// Parse reads `go test -bench` text output and returns the parsed
// measurements. Non-benchmark lines (goos/pkg headers, PASS, ok) are
// ignored. Duplicate benchmark names keep the run with the lowest
// ns/op (and that run's metrics).
func Parse(r io.Reader) (*File, error) {
	f := &File{Benchmarks: make(map[string]Entry)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %v", sc.Text(), err)
		}
		e := Entry{Iters: iters}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchjson: odd value/unit fields in %q", sc.Text())
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q: %v", fields[i], sc.Text(), err)
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				e.NsPerOp = v
				continue
			}
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[unit] = v
		}
		if e.NsPerOp == 0 {
			continue // allocation-only or malformed line
		}
		if prev, ok := f.Benchmarks[name]; !ok || e.NsPerOp < prev.NsPerOp {
			f.Benchmarks[name] = e
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines found")
	}
	return f, nil
}

// Load reads a BENCH_*.json file from disk.
func Load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return &f, nil
}

// Write serializes the file as indented JSON with a stable key order.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Delta is one benchmark's base-to-head movement.
type Delta struct {
	Name    string
	BaseNs  float64
	HeadNs  float64
	Ratio   float64 // head / base; > 1 means slower
	Regress bool    // Ratio exceeded the tolerance gate
}

// Compare pairs up benchmarks present in both files and flags a
// regression when head is more than tol slower than base (tol 0.20
// means ">20% slowdown fails"). Benchmarks present in only one file
// are skipped: the gate protects existing coverage without forcing
// lockstep bench additions.
func Compare(base, head *File, tol float64) []Delta {
	var out []Delta
	for name, b := range base.Benchmarks {
		h, ok := head.Benchmarks[name]
		if !ok || b.NsPerOp == 0 {
			continue
		}
		ratio := h.NsPerOp / b.NsPerOp
		out = append(out, Delta{
			Name:    name,
			BaseNs:  b.NsPerOp,
			HeadNs:  h.NsPerOp,
			Ratio:   ratio,
			Regress: ratio > 1+tol,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
