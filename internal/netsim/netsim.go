// Package netsim simulates closed-loop request/response load against a
// single-threaded server, standing in for the `ab` tool the paper uses
// against Lighttpd (§4.2.9) and the YCSB client against Memcached.
//
// The model: N concurrent clients each keep exactly one request in
// flight (closed loop, zero think time unless configured). The server
// is a single simulated thread; requests queue FIFO. Per-request
// latency is queueing delay plus service time, so with the server
// saturated, latency grows with the number of concurrent clients —
// and grows much faster in SGX modes, where every request's system
// calls pay contention-scaled enclave transitions (paper Figure 3).
package netsim

import (
	"fmt"

	"sgxgauge/internal/sgx"
)

// Load describes one closed-loop run.
type Load struct {
	// Clients is the number of concurrent client connections
	// (ab's -c / the paper's "threads").
	Clients int
	// Requests is the total number of requests to issue.
	Requests int
	// ThinkCycles is the per-client delay between receiving a
	// response and issuing the next request.
	ThinkCycles uint64
}

// Result summarizes a run.
type Result struct {
	// Requests actually served.
	Requests int
	// MeanLatency is the mean request latency in cycles.
	MeanLatency float64
	// MaxLatency is the worst request latency in cycles.
	MaxLatency uint64
	// ServerBusy is the total service time on the server thread.
	ServerBusy uint64
}

// Run drives the closed loop. serve is invoked once per request on the
// server thread and must perform the request's full work (receive
// syscall, handling, response syscall). The environment's contention
// level is set to the client count for the duration, modelling
// concurrent enclave entry pressure.
func Run(env *sgx.Env, load Load, serve func(t *sgx.Thread, reqID int)) (Result, error) {
	if load.Clients <= 0 || load.Requests < 0 {
		return Result{}, fmt.Errorf("netsim: invalid load %+v", load)
	}
	t := env.Main
	prev := env.Concurrency()
	env.SetConcurrency(load.Clients)
	defer env.SetConcurrency(prev)

	// ready[i] is the cycle at which client i's next request arrives.
	ready := make([]uint64, load.Clients)
	start := t.Clock.Cycles()
	for i := range ready {
		ready[i] = start
	}

	var res Result
	var totalLatency uint64
	serverFree := start
	for r := 0; r < load.Requests; r++ {
		// Next request: the client that becomes ready earliest.
		ci := 0
		for i := 1; i < load.Clients; i++ {
			if ready[i] < ready[ci] {
				ci = i
			}
		}
		submit := ready[ci]
		begin := serverFree
		if submit > begin {
			begin = submit
		}
		// Execute the service work on the server thread and measure
		// its cost.
		before := t.Clock.Cycles()
		serve(t, r)
		service := t.Clock.Cycles() - before
		finish := begin + service
		serverFree = finish
		lat := finish - submit
		totalLatency += lat
		if lat > res.MaxLatency {
			res.MaxLatency = lat
		}
		ready[ci] = finish + load.ThinkCycles
		res.Requests++
		res.ServerBusy += service
	}
	if res.Requests > 0 {
		res.MeanLatency = float64(totalLatency) / float64(res.Requests)
	}
	return res, nil
}
