package netsim

import (
	"testing"

	"sgxgauge/internal/sgx"
)

func env() *sgx.Env {
	return sgx.NewMachine(sgx.Config{EPCPages: 64}).NewEnv(sgx.Vanilla)
}

func TestInvalidLoad(t *testing.T) {
	if _, err := Run(env(), Load{Clients: 0, Requests: 1}, nil); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := Run(env(), Load{Clients: 1, Requests: -1}, nil); err == nil {
		t.Error("negative requests accepted")
	}
}

func TestZeroRequests(t *testing.T) {
	res, err := Run(env(), Load{Clients: 2, Requests: 0}, func(*sgx.Thread, int) {})
	if err != nil || res.Requests != 0 || res.MeanLatency != 0 {
		t.Fatalf("empty run: %+v, %v", res, err)
	}
}

func TestSingleClientLatencyEqualsService(t *testing.T) {
	const service = 10_000
	res, err := Run(env(), Load{Clients: 1, Requests: 50}, func(tr *sgx.Thread, _ int) {
		tr.Compute(service)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 50 {
		t.Errorf("Requests = %d", res.Requests)
	}
	// With one closed-loop client there is no queueing.
	if res.MeanLatency != service {
		t.Errorf("mean latency = %v, want %d", res.MeanLatency, service)
	}
	if res.MaxLatency != service {
		t.Errorf("max latency = %v, want %d", res.MaxLatency, service)
	}
	if res.ServerBusy != 50*service {
		t.Errorf("server busy = %d", res.ServerBusy)
	}
}

func TestSaturatedLatencyScalesWithClients(t *testing.T) {
	const service = 10_000
	mean := func(clients int) float64 {
		res, err := Run(env(), Load{Clients: clients, Requests: 400}, func(tr *sgx.Thread, _ int) {
			tr.Compute(service)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatency
	}
	m1, m8 := mean(1), mean(8)
	// A saturated single server serves one request at a time: with N
	// closed-loop clients, latency approaches N x service time.
	ratio := m8 / m1
	if ratio < 6 || ratio > 8.5 {
		t.Errorf("8-client/1-client latency ratio = %.2f, want ~8", ratio)
	}
}

func TestThinkTimeReducesQueueing(t *testing.T) {
	const service = 1_000
	run := func(think uint64) float64 {
		res, err := Run(env(), Load{Clients: 8, Requests: 400, ThinkCycles: think}, func(tr *sgx.Thread, _ int) {
			tr.Compute(service)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatency
	}
	busy := run(0)
	idle := run(100 * service) // long think time: server mostly idle
	if idle >= busy {
		t.Errorf("think time did not reduce latency: %v vs %v", idle, busy)
	}
	// Clients stay loosely synchronized (they all start together), so
	// some residual queueing remains; but latency must approach the
	// bare service time rather than the saturated 8x.
	if idle > 2*service {
		t.Errorf("idle-server latency = %v, want < %d", idle, 2*service)
	}
}

func TestContentionSetDuringRun(t *testing.T) {
	e := env()
	var seen int
	_, err := Run(e, Load{Clients: 5, Requests: 1}, func(tr *sgx.Thread, _ int) {
		seen = e.Concurrency()
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Errorf("concurrency during run = %d, want 5", seen)
	}
	if e.Concurrency() != 1 {
		t.Errorf("concurrency after run = %d, want restored 1", e.Concurrency())
	}
}
