package osal

import (
	"bytes"
	"testing"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
)

func testEnv() (*sgx.Machine, *sgx.Thread) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 64})
	env := m.NewEnv(sgx.Vanilla)
	return m, env.Main
}

func TestHostSideOps(t *testing.T) {
	fs := NewFS()
	if fs.Size("x") != -1 || fs.Raw("x") != nil {
		t.Error("missing file misreported")
	}
	fs.Create("a", []byte("hello"))
	fs.Create("b", nil)
	if fs.Size("a") != 5 {
		t.Errorf("Size = %d", fs.Size("a"))
	}
	if got := fs.List(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("List = %v", got)
	}
	fs.Remove("a")
	if fs.Size("a") != -1 {
		t.Error("Remove did not delete")
	}
	fs.Remove("a") // idempotent
}

func TestOpenMissingFile(t *testing.T) {
	m, tr := testEnv()
	fs := NewFS()
	if _, err := fs.Open(tr, "nope"); err == nil {
		t.Fatal("Open of missing file succeeded")
	}
	if m.Counters.Get(perf.Syscalls) != 1 {
		t.Error("failed open did not cost a syscall")
	}
}

func TestReadIntoSpace(t *testing.T) {
	m, tr := testEnv()
	fs := NewFS()
	content := []byte("0123456789abcdef")
	fs.Create("f", content)

	buf := m.AllocUntrusted(64, 8)
	h, err := fs.Open(tr, "f")
	if err != nil {
		t.Fatal(err)
	}
	n, err := h.ReadAt(tr, buf, 4, 8)
	if err != nil || n != 8 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	out := make([]byte, 8)
	tr.Read(buf, out)
	if !bytes.Equal(out, content[4:12]) {
		t.Errorf("read %q, want %q", out, content[4:12])
	}
	// Short read at EOF.
	n, err = h.ReadAt(tr, buf, 12, 100)
	if err != nil || n != 4 {
		t.Fatalf("EOF ReadAt = %d, %v", n, err)
	}
	// Past EOF.
	n, err = h.ReadAt(tr, buf, 100, 8)
	if err != nil || n != 0 {
		t.Fatalf("past-EOF ReadAt = %d, %v", n, err)
	}
	if err := h.Close(tr); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFromSpaceAndGrowth(t *testing.T) {
	m, tr := testEnv()
	fs := NewFS()
	buf := m.AllocUntrusted(mem.PageSize, 8)
	tr.Write(buf, []byte("payload!"))

	h, err := fs.CreateFile(tr, "out")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(tr, buf, 10, 8); err != nil {
		t.Fatal(err)
	}
	if h.Size() != 18 {
		t.Errorf("Size = %d, want 18 (sparse growth)", h.Size())
	}
	raw := fs.Raw("out")
	if !bytes.Equal(raw[10:18], []byte("payload!")) {
		t.Errorf("file content = %q", raw[10:18])
	}
	for _, b := range raw[:10] {
		if b != 0 {
			t.Error("hole not zero-filled")
		}
	}
	if err := h.Close(tr); err != nil {
		t.Fatal(err)
	}
}

func TestClosedHandleErrors(t *testing.T) {
	m, tr := testEnv()
	fs := NewFS()
	fs.Create("f", []byte("x"))
	buf := m.AllocUntrusted(8, 8)
	h, _ := fs.Open(tr, "f")
	if err := h.Close(tr); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ReadAt(tr, buf, 0, 1); err == nil {
		t.Error("read on closed handle succeeded")
	}
	if _, err := h.WriteAt(tr, buf, 0, 1); err == nil {
		t.Error("write on closed handle succeeded")
	}
	if err := h.Close(tr); err == nil {
		t.Error("double close succeeded")
	}
}

func TestSyscallCostsCharged(t *testing.T) {
	m, tr := testEnv()
	fs := NewFS()
	fs.Create("f", make([]byte, 4096))
	buf := m.AllocUntrusted(4096, 8)

	h, _ := fs.Open(tr, "f")
	before := tr.Clock.Cycles()
	sysBefore := m.Counters.Get(perf.Syscalls)
	h.ReadAt(tr, buf, 0, 4096)
	if tr.Clock.Cycles() == before {
		t.Error("read charged no cycles")
	}
	if m.Counters.Get(perf.Syscalls) != sysBefore+1 {
		t.Error("read did not count a syscall")
	}
}

func TestPatchRaw(t *testing.T) {
	fs := NewFS()
	fs.PatchRaw("new", 4, []byte("abc"))
	raw := fs.Raw("new")
	if len(raw) != 7 || !bytes.Equal(raw[4:], []byte("abc")) {
		t.Errorf("PatchRaw created %q", raw)
	}
	fs.PatchRaw("new", 0, []byte("zz"))
	if got := fs.Raw("new"); got[0] != 'z' || len(got) != 7 {
		t.Errorf("PatchRaw overwrite = %q", got)
	}
}

func TestCreateFileTruncates(t *testing.T) {
	_, tr := testEnv()
	fs := NewFS()
	fs.Create("f", []byte("old content"))
	h, err := fs.CreateFile(tr, "f")
	if err != nil {
		t.Fatal(err)
	}
	if h.Size() != 0 {
		t.Errorf("CreateFile kept %d bytes", h.Size())
	}
}
