// Package osal provides the simulated operating-system services the
// workloads rely on: an in-memory untrusted filesystem whose
// operations are charged as system calls on the calling thread.
//
// The filesystem is "untrusted" in the SGX sense: file contents live
// outside any enclave, and in Native/LibOS modes every read or write
// crosses the enclave boundary through an OCALL (paper Appendix E).
package osal

import (
	"fmt"
	"sort"
	"sync"

	"sgxgauge/internal/sgx"
)

// File is one file in the simulated filesystem.
type File struct {
	Name string
	Data []byte
}

// FS is the in-memory untrusted filesystem. Host-side helpers
// (Create, Raw) cost nothing; thread-side operations charge syscalls.
type FS struct {
	mu    sync.Mutex
	files map[string]*File // guarded by mu
}

// NewFS returns an empty filesystem.
func NewFS() *FS {
	return &FS{files: make(map[string]*File)}
}

// Create installs a file with the given contents, replacing any
// existing one. It models host-side setup and costs nothing.
func (fs *FS) Create(name string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = &File{Name: name, Data: data}
}

// Remove deletes a file; missing files are ignored.
func (fs *FS) Remove(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, name)
}

// Raw returns the live contents of a file for host-side inspection
// (hash checks, test assertions), or nil when absent.
func (fs *FS) Raw(name string) []byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f := fs.files[name]; f != nil {
		return f.Data
	}
	return nil
}

// Size returns a file's length in bytes, or -1 when absent.
func (fs *FS) Size(name string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f := fs.files[name]; f != nil {
		return len(f.Data)
	}
	return -1
}

// PatchRaw overwrites (growing as needed) file bytes at off with data,
// creating the file if absent. It models host-side writes performed on
// behalf of a privileged runtime and costs nothing; the caller is
// responsible for charging the corresponding syscalls.
func (fs *FS) PatchRaw(name string, off int, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[name]
	if f == nil {
		f = &File{Name: name}
		fs.files[name] = f
	}
	if need := off + len(data); need > len(f.Data) {
		grown := make([]byte, need)
		copy(grown, f.Data)
		f.Data = grown
	}
	copy(f.Data[off:], data)
}

// List returns the file names in sorted order.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (fs *FS) lookup(name string) *File {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.files[name]
}

// FileSystem is the interface workloads use for file I/O. The plain
// FS implements it; the LibOS protected-file layer wraps it.
type FileSystem interface {
	// Open opens an existing file for reading/writing.
	Open(t *sgx.Thread, name string) (Handle, error)
	// CreateFile creates (or truncates) a file and opens it.
	CreateFile(t *sgx.Thread, name string) (Handle, error)
}

// Handle is an open file. Reads and writes move data between the file
// and the simulated address space of the calling thread, charging both
// the syscall and the memory traffic.
type Handle interface {
	// ReadAt copies up to n bytes from file offset off into the
	// simulated address space at addr, returning the bytes copied.
	ReadAt(t *sgx.Thread, addr uint64, off, n int) (int, error)
	// WriteAt copies n bytes from the simulated address space at
	// addr into the file at offset off, extending it as needed.
	WriteAt(t *sgx.Thread, addr uint64, off, n int) (int, error)
	// Size returns the current file length.
	Size() int
	// Close releases the handle.
	Close(t *sgx.Thread) error
}

// Open implements FileSystem.
func (fs *FS) Open(t *sgx.Thread, name string) (Handle, error) {
	f := fs.lookup(name)
	if f == nil {
		t.Syscall(0) // the failed open still costs a syscall
		return nil, fmt.Errorf("osal: open %q: no such file", name)
	}
	t.Syscall(uint64(len(name)))
	return &fileHandle{fs: fs, f: f}, nil
}

// CreateFile implements FileSystem.
func (fs *FS) CreateFile(t *sgx.Thread, name string) (Handle, error) {
	t.Syscall(uint64(len(name)))
	fs.mu.Lock()
	f := &File{Name: name}
	fs.files[name] = f
	fs.mu.Unlock()
	return &fileHandle{fs: fs, f: f}, nil
}

type fileHandle struct {
	fs     *FS
	f      *File
	closed bool
}

func (h *fileHandle) Size() int { return len(h.f.Data) }

func (h *fileHandle) ReadAt(t *sgx.Thread, addr uint64, off, n int) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("osal: read on closed file %q", h.f.Name)
	}
	if off >= len(h.f.Data) {
		t.Syscall(0)
		return 0, nil
	}
	end := off + n
	if end > len(h.f.Data) {
		end = len(h.f.Data)
	}
	data := h.f.Data[off:end]
	t.Syscall(uint64(len(data)))
	t.Write(addr, data)
	return len(data), nil
}

func (h *fileHandle) WriteAt(t *sgx.Thread, addr uint64, off, n int) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("osal: write on closed file %q", h.f.Name)
	}
	if need := off + n; need > len(h.f.Data) {
		grown := make([]byte, need)
		copy(grown, h.f.Data)
		h.f.Data = grown
	}
	t.Syscall(uint64(n))
	t.Read(addr, h.f.Data[off:off+n])
	return n, nil
}

func (h *fileHandle) Close(t *sgx.Thread) error {
	if h.closed {
		return fmt.Errorf("osal: double close of %q", h.f.Name)
	}
	h.closed = true
	t.Syscall(0)
	return nil
}
