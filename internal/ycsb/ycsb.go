// Package ycsb generates YCSB-style key-value workloads: a load phase
// that populates the store with a given number of records, then a run
// phase issuing a mix of reads and updates over keys drawn from a
// zipfian or uniform distribution (paper §4.2.7: "YCSB first populates
// Memcached with a specified amount of data and then performs a
// specified set of (read or write) operations").
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpKind is the type of one generated operation.
type OpKind int

const (
	// OpRead fetches a record.
	OpRead OpKind = iota
	// OpUpdate overwrites a record's value.
	OpUpdate
	// OpInsert adds a new record.
	OpInsert
)

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
}

// Distribution selects how run-phase keys are drawn.
type Distribution int

const (
	// Uniform draws keys uniformly over the loaded records.
	Uniform Distribution = iota
	// Zipfian draws keys with the classic YCSB zipfian skew
	// (theta = 0.99), concentrating traffic on hot records.
	Zipfian
)

// Workload describes one YCSB workload.
type Workload struct {
	// Records is the number of records loaded before the run phase.
	Records int
	// Operations is the number of run-phase operations.
	Operations int
	// ReadProportion in [0,1] (workload A is 0.5, workload B is
	// 0.95); InsertProportion in [0,1] adds workload-D-style inserts
	// of fresh keys. The remainder are updates.
	ReadProportion float64
	// InsertProportion in [0, 1-ReadProportion].
	InsertProportion float64
	// Dist selects the key distribution.
	Dist Distribution
	// ValueSize is the record payload size in bytes.
	ValueSize int
	// Seed makes generation deterministic.
	Seed int64
}

// Validate reports configuration errors.
func (w Workload) Validate() error {
	if w.Records <= 0 || w.Operations < 0 {
		return fmt.Errorf("ycsb: invalid sizes records=%d operations=%d", w.Records, w.Operations)
	}
	if w.ReadProportion < 0 || w.ReadProportion > 1 {
		return fmt.Errorf("ycsb: read proportion %v out of [0,1]", w.ReadProportion)
	}
	if w.InsertProportion < 0 || w.ReadProportion+w.InsertProportion > 1 {
		return fmt.Errorf("ycsb: insert proportion %v leaves no room after reads", w.InsertProportion)
	}
	if w.ValueSize <= 0 {
		return fmt.Errorf("ycsb: invalid value size %d", w.ValueSize)
	}
	return nil
}

// Generator produces the operation stream for a workload.
type Generator struct {
	w        Workload
	rng      *rand.Rand
	zip      *zipf
	inserted uint64
}

// NewGenerator builds a generator; Validate must have passed.
func NewGenerator(w Workload) *Generator {
	g := &Generator{w: w, rng: rand.New(rand.NewSource(w.Seed))}
	if w.Dist == Zipfian {
		g.zip = newZipf(g.rng, uint64(w.Records), 0.99)
	}
	return g
}

// LoadKeys returns the keys of the load phase (0..Records-1); values
// are the caller's concern.
func (g *Generator) LoadKeys() int { return g.w.Records }

// Next returns the next run-phase operation. Inserted keys extend the
// key space sequentially past the loaded records (YCSB workload D
// style).
func (g *Generator) Next() Op {
	r := g.rng.Float64()
	if r < g.w.InsertProportion {
		key := uint64(g.w.Records) + g.inserted
		g.inserted++
		return Op{Kind: OpInsert, Key: key}
	}
	var key uint64
	if g.zip != nil {
		key = g.zip.next()
	} else {
		key = uint64(g.rng.Intn(g.w.Records))
	}
	if r < g.w.InsertProportion+g.w.ReadProportion {
		return Op{Kind: OpRead, Key: key}
	}
	return Op{Kind: OpUpdate, Key: key}
}

// zipf implements the YCSB "ScrambledZipfian"-style generator: a
// zipfian rank distribution permuted over the key space so hot keys
// are spread out rather than clustered at low IDs. The permutation is
// a bijection (an affine map with a multiplier coprime to n), so no
// two ranks collapse onto one key.
type zipf struct {
	rng   *rand.Rand
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	mult  uint64
}

func newZipf(rng *rand.Rand, n uint64, theta float64) *zipf {
	z := &zipf{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	z.mult = 0x9e3779b97f4a7c15 % n
	for z.mult == 0 || gcd(z.mult, n) != 1 {
		z.mult = (z.mult + 1) % n
	}
	return z
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipf) next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	// Permute the rank across the key space (bijective affine map).
	return (rank*z.mult + 0x2545f4914f6cdd1d%z.n) % z.n
}
