package ycsb

import (
	"math"
	"testing"
)

func baseWorkload() Workload {
	return Workload{
		Records:        1000,
		Operations:     10000,
		ReadProportion: 0.5,
		Dist:           Zipfian,
		ValueSize:      128,
		Seed:           7,
	}
}

func TestValidate(t *testing.T) {
	good := baseWorkload()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Workload){
		"zero records":    func(w *Workload) { w.Records = 0 },
		"negative ops":    func(w *Workload) { w.Operations = -1 },
		"bad proportion":  func(w *Workload) { w.ReadProportion = 1.5 },
		"zero value size": func(w *Workload) { w.ValueSize = 0 },
	} {
		w := baseWorkload()
		mutate(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := NewGenerator(baseWorkload()), NewGenerator(baseWorkload())
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("op %d differs across generators with the same seed", i)
		}
	}
}

func TestKeysInRange(t *testing.T) {
	w := baseWorkload()
	g := NewGenerator(w)
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Key >= uint64(w.Records) {
			t.Fatalf("key %d out of range [0,%d)", op.Key, w.Records)
		}
	}
	if g.LoadKeys() != w.Records {
		t.Errorf("LoadKeys = %d", g.LoadKeys())
	}
}

func TestReadProportion(t *testing.T) {
	for _, p := range []float64{0.0, 0.5, 0.95, 1.0} {
		w := baseWorkload()
		w.ReadProportion = p
		g := NewGenerator(w)
		reads := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if g.Next().Kind == OpRead {
				reads++
			}
		}
		got := float64(reads) / n
		if math.Abs(got-p) > 0.02 {
			t.Errorf("read fraction = %.3f, want %.2f", got, p)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	w := baseWorkload()
	g := NewGenerator(w)
	counts := map[uint64]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// The hottest 1% of keys must draw far more than 1% of traffic.
	hot := topShare(counts, w.Records/100, n)
	if hot < 0.10 {
		t.Errorf("top 1%% of keys draw %.1f%% of zipfian traffic, want >10%%", hot*100)
	}

	w.Dist = Uniform
	g = NewGenerator(w)
	counts = map[uint64]int{}
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	uni := topShare(counts, w.Records/100, n)
	if uni > 0.05 {
		t.Errorf("top 1%% of keys draw %.1f%% of uniform traffic, want ~1%%", uni*100)
	}
	if hot < 3*uni {
		t.Errorf("zipfian (%.3f) not clearly more skewed than uniform (%.3f)", hot, uni)
	}
}

func topShare(counts map[uint64]int, k, total int) float64 {
	vals := make([]int, 0, len(counts))
	for _, c := range counts {
		vals = append(vals, c)
	}
	// Selection by simple sort (test-sized data).
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			if vals[j] > vals[i] {
				vals[i], vals[j] = vals[j], vals[i]
			}
		}
	}
	sum := 0
	for i := 0; i < k && i < len(vals); i++ {
		sum += vals[i]
	}
	return float64(sum) / float64(total)
}

func TestZipfianCoversKeySpace(t *testing.T) {
	w := baseWorkload()
	w.Records = 50
	g := NewGenerator(w)
	seen := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		seen[g.Next().Key] = true
	}
	// Scrambling should spread hot ranks across the space; almost
	// every key should appear at least once.
	if len(seen) < 40 {
		t.Errorf("only %d/50 keys ever drawn", len(seen))
	}
}
