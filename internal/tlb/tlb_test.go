package tlb

import (
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	d := New(64, 4)
	if d.Lookup(0x123) {
		t.Fatal("empty TLB hit")
	}
	d.Insert(0x123)
	if !d.Lookup(0x123) {
		t.Fatal("inserted vpn missed")
	}
	// Lookup must not modify state for other entries.
	if d.Lookup(0x124) {
		t.Fatal("phantom entry")
	}
}

func TestDoubleInsertKeepsOneEntry(t *testing.T) {
	d := New(8, 2)
	d.Insert(5)
	d.Insert(5)
	// Filling the rest of set 5's ways must not evict vpn 5 twice:
	// inserting one conflicting vpn should leave 5 resident.
	sets := uint64(d.Entries() / 2)
	d.Insert(5 + sets)
	if !d.Lookup(5) {
		t.Error("duplicate insert consumed both ways")
	}
}

func TestEvict(t *testing.T) {
	d := New(64, 4)
	d.Insert(7)
	d.Evict(7)
	if d.Lookup(7) {
		t.Error("evicted vpn still present")
	}
	d.Evict(7) // idempotent
}

func TestFlushAndCount(t *testing.T) {
	d := New(64, 4)
	for vpn := uint64(0); vpn < 32; vpn++ {
		d.Insert(vpn)
	}
	d.Flush()
	for vpn := uint64(0); vpn < 32; vpn++ {
		if d.Lookup(vpn) {
			t.Fatalf("vpn %d survived flush", vpn)
		}
	}
	if d.Flushes() != 1 {
		t.Errorf("Flushes = %d, want 1", d.Flushes())
	}
}

func TestSetConflictRoundRobin(t *testing.T) {
	d := New(8, 2) // 4 sets x 2 ways
	sets := uint64(4)
	d.Insert(0)
	d.Insert(sets)
	d.Insert(2 * sets) // evicts vpn 0
	if d.Lookup(0) {
		t.Error("round-robin victim survived")
	}
	if !d.Lookup(sets) || !d.Lookup(2*sets) {
		t.Error("newer entries were evicted instead")
	}
}

func TestEntriesGeometry(t *testing.T) {
	// Non-power-of-two set counts round *up*: a configured geometry
	// never models a smaller TLB than asked for. 100/4 = 25 sets →
	// 32 sets x 4 ways.
	d := New(100, 4)
	if d.Entries() != 128 {
		t.Errorf("Entries = %d, want 128", d.Entries())
	}
	// The regression case from the harness default path: 48 entries
	// 4-way used to round down to 32 entries (a 33% smaller TLB than
	// configured); it must now model at least the configured reach.
	d = New(48, 4)
	if d.Entries() != 64 {
		t.Errorf("Entries = %d, want 64", d.Entries())
	}
	// Exact powers of two are untouched.
	d = New(64, 4)
	if d.Entries() != 64 {
		t.Errorf("Entries = %d, want 64", d.Entries())
	}
	d = New(0, 0) // degenerate input yields a minimal TLB
	if d.Entries() < 1 {
		t.Errorf("Entries = %d, want >= 1", d.Entries())
	}
}

func TestNeverSmallerThanConfigured(t *testing.T) {
	for _, entries := range []int{1, 7, 48, 100, 192, 1536} {
		for _, ways := range []int{1, 2, 3, 4, 7, 16} {
			d := New(entries, ways)
			if d.Entries() < entries {
				t.Errorf("New(%d, %d).Entries() = %d < configured", entries, ways, d.Entries())
			}
		}
	}
}

func TestHighAssociativityRoundRobin(t *testing.T) {
	// ways > 255 used to overflow the uint8 round-robin index. With a
	// 300-way single-set TLB, 300 inserts must all stay resident and
	// the 301st must evict exactly the oldest entry.
	const ways = 300
	d := New(ways, ways)
	sets := uint64(d.Entries() / ways)
	for i := uint64(0); i < ways; i++ {
		d.Insert(i * sets) // all land in set 0
	}
	for i := uint64(0); i < ways; i++ {
		if !d.Lookup(i * sets) {
			t.Fatalf("entry %d missing after filling %d ways", i, ways)
		}
	}
	d.Insert(ways * sets)
	if d.Lookup(0) {
		t.Error("round-robin did not evict the oldest entry")
	}
	if !d.Lookup(1*sets) || !d.Lookup(ways*sets) {
		t.Error("wrong victim chosen past the uint8 range")
	}
}

func TestFlushIsLazyButComplete(t *testing.T) {
	// Many flushes with interleaved inserts: entries from older epochs
	// must never resurface, including across the uint32 epoch wrap.
	d := New(16, 4)
	d.epoch = ^uint32(0) - 2 // force a wrap within a few flushes
	for round := uint64(0); round < 8; round++ {
		d.Insert(round)
		if !d.Lookup(round) {
			t.Fatalf("round %d: fresh insert missed", round)
		}
		d.Flush()
		for old := uint64(0); old <= round; old++ {
			if d.Lookup(old) {
				t.Fatalf("round %d: vpn %d survived flush (epoch %d)", round, old, d.epoch)
			}
		}
	}
	if d.Flushes() != 8 {
		t.Errorf("Flushes = %d, want 8", d.Flushes())
	}
}

func TestEvictAfterFlushDoesNotTouchNewEpoch(t *testing.T) {
	// A stale same-vpn entry from before a flush must not shadow the
	// current-epoch entry when Evict runs: evicting after re-insert
	// must remove the live entry, not a dead one.
	d := New(8, 2)
	d.Insert(3)
	d.Flush()
	d.Insert(3)
	d.Evict(3)
	if d.Lookup(3) {
		t.Error("Evict removed a stale-epoch slot instead of the live entry")
	}
}

func TestInsertLookupProperty(t *testing.T) {
	d := New(512, 4)
	f := func(vpn uint64) bool {
		d.Insert(vpn)
		return d.Lookup(vpn) // insert-then-lookup always hits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
