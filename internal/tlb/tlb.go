// Package tlb implements the data-TLB model of the simulated machine.
//
// SGX flushes the TLB on every enclave transition (ECALL, OCALL return
// path, AEX) "due to security concerns", and refills entries through
// page walks that additionally verify the EPCM for EPC pages (paper
// §2.3, Figure 1). The dTLB model makes those flushes and refills
// observable: the dTLB-miss and walk-cycle explosions in the paper's
// Figures 2, 5 and 8 are emergent behaviour of this component.
package tlb

// Each slot carries the flush epoch it was filled in, so Flush — which
// runs on every simulated enclave transition — is a counter bump plus
// an O(sets) round-robin reset instead of clearing the whole entry
// array: a slot whose epoch differs from the current one is invalid.
// When the epoch counter wraps, the arrays are cleared eagerly once so
// entries surviving from 2^32 flushes ago can never false-hit.

// DTLB is a set-associative translation lookaside buffer over virtual
// page numbers, with round-robin replacement within a set. It is not
// safe for concurrent use; each simulated hardware thread owns one.
type DTLB struct {
	sets    int
	ways    int
	setMask uint64
	// tags holds vpn+1 per slot so the zero value is never a live
	// entry; a slot is valid iff tags[i] != 0 and epochs[i] == epoch.
	tags    []uint64
	epochs  []uint32
	next    []uint32
	epoch   uint32
	flushes uint64
}

// New builds a TLB with the given number of entries and associativity.
// sets must be a power of two for the index mask, so entries is
// rounded up to the next power-of-two set count — a configured
// geometry never models a *smaller* TLB than asked for.
func New(entries, ways int) *DTLB {
	if ways < 1 {
		ways = 1
	}
	sets := (entries + ways - 1) / ways
	if sets < 1 {
		sets = 1
	}
	p := 1
	for p < sets {
		p *= 2
	}
	sets = p
	return &DTLB{
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, sets*ways),
		epochs:  make([]uint32, sets*ways),
		next:    make([]uint32, sets),
	}
}

// Entries returns the total number of TLB entries modeled.
func (t *DTLB) Entries() int { return t.sets * t.ways }

// Lookup reports whether the translation for virtual page number vpn
// is present. It does not modify the TLB.
func (t *DTLB) Lookup(vpn uint64) bool {
	tag := vpn + 1
	base := int(vpn&t.setMask) * t.ways
	for i := base; i < base+t.ways; i++ {
		if t.tags[i] == tag && t.epochs[i] == t.epoch {
			return true
		}
	}
	return false
}

// Insert installs the translation for vpn, evicting the round-robin
// victim of its set. When a still-valid entry is displaced, Insert
// returns its vpn and true, so callers holding derived state about
// cached translations (the machine's page memos) can invalidate it.
func (t *DTLB) Insert(vpn uint64) (victim uint64, evicted bool) {
	tag := vpn + 1
	set := int(vpn & t.setMask)
	base := set * t.ways
	for i := base; i < base+t.ways; i++ {
		if t.tags[i] == tag && t.epochs[i] == t.epoch {
			return 0, false
		}
	}
	v := int(t.next[set]) % t.ways // guard against ways beyond the index range
	if old := t.tags[base+v]; old != 0 && t.epochs[base+v] == t.epoch {
		victim, evicted = old-1, true
	}
	t.tags[base+v] = tag
	t.epochs[base+v] = t.epoch
	t.next[set] = uint32((v + 1) % t.ways)
	return victim, evicted
}

// Evict removes the translation for vpn if present (used when a page
// is paged out of the EPC).
func (t *DTLB) Evict(vpn uint64) {
	tag := vpn + 1
	base := int(vpn&t.setMask) * t.ways
	for i := base; i < base+t.ways; i++ {
		if t.tags[i] == tag && t.epochs[i] == t.epoch {
			t.tags[i] = 0
			return
		}
	}
}

// Flush invalidates every entry, as happens on each enclave
// transition. Invalidation is a lazy epoch bump; only the per-set
// round-robin pointers are reset eagerly (their state is part of the
// replacement semantics a real flush restarts).
func (t *DTLB) Flush() {
	t.epoch++
	if t.epoch == 0 { // wrapped: clear eagerly so stale epochs can't match
		for i := range t.tags {
			t.tags[i] = 0
			t.epochs[i] = 0
		}
	}
	for i := range t.next {
		t.next[i] = 0
	}
	t.flushes++
}

// Flushes returns the number of Flush calls since construction.
func (t *DTLB) Flushes() uint64 { return t.flushes }
