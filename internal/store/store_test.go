package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// testResult runs one real spec so the persisted payload exercises
// every Result field the engine actually produces. The run is
// memoized: results are immutable, so the tests can share one.
var testResultOnce struct {
	sync.Once
	key harness.Key
	res *harness.Result
	err error
}

func testResult(t *testing.T) (harness.Key, *harness.Result) {
	t.Helper()
	o := &testResultOnce
	o.Do(func() {
		r := harness.NewRunner(256)
		r.Seed = 7
		spec := harness.Spec{Workload: suite.Empty(), Mode: sgx.LibOS, Size: workloads.Low}
		res, err := r.Run(spec)
		if err == nil {
			err = res.Err
		}
		if err != nil {
			o.err = err
			return
		}
		o.res = res
		o.key, o.err = r.Key(spec)
	})
	if o.err != nil {
		t.Fatalf("shared test run: %v", o.err)
	}
	return o.key, o.res
}

// TestPutGetRoundTrip: a stored result comes back equal to its
// canonical encoding, and the entry survives in a fresh Store opened
// over the same directory (the restart-warm path).
func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	key, res := testResult(t)

	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put(key, res); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	back, ok := s.Get(key)
	if !ok {
		t.Fatal("stored entry not found")
	}
	wantEnc, _ := harness.EncodeResult(res)
	gotEnc, _ := harness.EncodeResult(back)
	if string(wantEnc) != string(gotEnc) {
		t.Fatalf("round-trip changed the canonical encoding:\n got %s\nwant %s", gotEnc, wantEnc)
	}

	// Restart: a new Store over the same directory serves the entry
	// without any put, and its scan counts it.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", s2.Len())
	}
	warm, ok := s2.Get(key)
	if !ok {
		t.Fatal("reopened store lost the entry")
	}
	if warmEnc, _ := harness.EncodeResult(warm); string(warmEnc) != string(wantEnc) {
		t.Fatal("reopened store returned a different result")
	}
}

// TestFailedResultsNotStored: results carrying a spec failure are
// never persisted — a retry must re-run them, exactly as with the
// in-memory caches.
func TestFailedResultsNotStored(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key, _ := testResult(t)
	bad := &harness.Result{Name: "X", Err: errors.New("boom")}
	if err := s.Put(key, bad); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("failed result was stored (Len = %d)", s.Len())
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("failed result served from store")
	}
}

// TestCorruptEntryQuarantined: an entry that no longer decodes is
// moved to quarantine/ and reported as a miss — and the miss is
// repairable by a fresh Put.
func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key, res := testResult(t)
	if err := s.Put(key, res); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		corrupt []byte
	}{
		{"truncated", []byte(`{"format":1,"key":"`)},
		{"wrong-key", mustEntryBytes(t, s, key, res, "0000000000000000000000000000000000000000000000000000000000000000")},
		{"wrong-format", []byte(`{"format":99,"key":"` + key.String() + `","result":{}}`)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := s.path(key)
			if err := os.WriteFile(path, c.corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry still in place after Get")
			}
			if _, err := os.Stat(filepath.Join(dir, "quarantine", key.String()+".json")); err != nil {
				t.Fatalf("quarantined copy missing: %v", err)
			}
			// The store heals: re-putting the result works again.
			if err := s.Put(key, res); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(key); !ok {
				t.Fatal("re-put after quarantine did not restore the entry")
			}
		})
	}
	_, _, _, _, quarantined := s.Stats()
	if quarantined != uint64(len(cases)) {
		t.Fatalf("quarantined = %d, want %d", quarantined, len(cases))
	}
}

// mustEntryBytes builds a well-formed entry file whose inner key field
// disagrees with the key it will be filed under.
func mustEntryBytes(t *testing.T, s *Store, key harness.Key, res *harness.Result, innerKey string) []byte {
	t.Helper()
	tmp := t.TempDir()
	aside, err := Open(tmp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := aside.Put(key, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(aside.path(key))
	if err != nil {
		t.Fatal(err)
	}
	return []byte(strings.Replace(string(data), key.String(), innerKey, 1))
}

// TestConcurrentPutSameKey: racing writers of one key all succeed,
// exactly one entry results, and it decodes cleanly (atomic renames,
// no interleaved bytes).
func TestConcurrentPutSameKey(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key, res := testResult(t)
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Put(key, res)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	back, ok := s.Get(key)
	if !ok {
		t.Fatal("entry missing after concurrent puts")
	}
	wantEnc, _ := harness.EncodeResult(res)
	if gotEnc, _ := harness.EncodeResult(back); string(gotEnc) != string(wantEnc) {
		t.Fatal("entry corrupted by concurrent puts")
	}
	// Reopening counts exactly one resident entry regardless of how
	// the racing puts interleaved.
	s2, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("resident entries = %d, want 1", s2.Len())
	}
}

// TestTiered: L2 hits promote into L1, adds write through, and a
// fresh L1 over a warm L2 (the restart) still hits.
func TestTiered(t *testing.T) {
	dir := t.TempDir()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l1 := newMapCache()
	tc := NewTiered(l1, l2)
	key, res := testResult(t)

	if _, ok := tc.Get(key); ok {
		t.Fatal("empty tiered cache reported a hit")
	}
	canon := tc.Add(key, res)
	if canon != res {
		t.Fatal("first add did not return the inserted pointer")
	}
	if _, ok := l1.Get(key); !ok {
		t.Fatal("add did not populate L1")
	}
	if _, ok := l2.Get(key); !ok {
		t.Fatal("add did not write through to L2")
	}

	// Restart: fresh L1, same L2 directory.
	l2b, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	freshL1 := newMapCache()
	tc2 := NewTiered(freshL1, l2b)
	warm, ok := tc2.Get(key)
	if !ok {
		t.Fatal("tiered cache over a warm L2 missed")
	}
	if _, ok := freshL1.Get(key); !ok {
		t.Fatal("L2 hit was not promoted into L1")
	}
	// The promoted entry is the canonical pointer for later adds.
	if got := tc2.Add(key, res); got != warm {
		t.Fatal("add after promotion returned a non-canonical pointer")
	}
	if tc2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tc2.Len())
	}
}

// mapCache is a minimal in-memory ResultCache for tiered tests.
type mapCache struct {
	mu sync.Mutex
	m  map[harness.Key]*harness.Result
}

func newMapCache() *mapCache { return &mapCache{m: map[harness.Key]*harness.Result{}} }

func (c *mapCache) Get(k harness.Key) (*harness.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.m[k]
	return res, ok
}

func (c *mapCache) Add(k harness.Key, res *harness.Result) *harness.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.m[k]; ok {
		return prev
	}
	c.m[k] = res
	return res
}

func (c *mapCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// TestRunnerWarmFromStore is the acceptance path: a Runner whose
// cache is Tiered(L1, Store) computes a spec once; a second Runner —
// fresh process state, same store directory — serves the same spec
// from disk without re-simulating, byte-identically.
func TestRunnerWarmFromStore(t *testing.T) {
	dir := t.TempDir()
	spec := harness.Spec{Workload: suite.Empty(), Mode: sgx.LibOS, Size: workloads.Low}

	// Progress events fire only for specs the engine actually
	// executes — cache hits complete without one — so the count is the
	// number of simulations.
	run := func() ([]byte, int) {
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		r := harness.NewRunner(256)
		r.Seed = 7
		r.Cache = NewTiered(newMapCache(), l2)
		simulated := 0
		res, err := r.Run(spec, harness.OnProgress(func(harness.Progress) { simulated++ }))
		if err != nil || res.Err != nil {
			t.Fatalf("run: %v / %v", err, res.Err)
		}
		enc, err := harness.EncodeResult(res)
		if err != nil {
			t.Fatal(err)
		}
		return enc, simulated
	}

	first, firstRuns := run()
	if firstRuns != 1 {
		t.Fatalf("first run simulated %d specs, want 1", firstRuns)
	}
	second, secondRuns := run()
	if secondRuns != 0 {
		t.Fatalf("second run simulated %d specs, want 0 (warm from store)", secondRuns)
	}
	if string(first) != string(second) {
		t.Fatalf("warm result differs from computed result:\n %s\n %s", first, second)
	}
}
