// Package store persists completed harness results on disk,
// content-addressed by their spec's canonical key (harness.Key, the
// SHA-256 of the spec's canonical JSON encoding). It is the L2 behind
// the sgxgauged daemon's in-memory LRU: a restarted daemon — or a
// cold node joining a sweep cluster — warms from disk instead of
// re-simulating.
//
// Layout: one file per key under a two-hex-digit fan-out directory,
//
//	<dir>/ab/abcdef….json
//
// mirroring git's object store so no single directory grows
// unboundedly. Writes go to a temp file in the entry's directory and
// land by atomic rename, so readers never observe a half-written
// entry and concurrent writers of the same key are harmless (the
// encoding is canonical, so both rename identical bytes into place).
// An entry that fails to decode — truncated by a crash, edited by
// hand, or written by a build with a different counter schema — is
// quarantined under <dir>/quarantine/ and reported as a miss, never a
// panic: the result is re-simulated and re-written.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"sgxgauge/internal/harness"
)

// quarantineDir is where undecodable entries are moved, preserving
// them for inspection without poisoning lookups.
const quarantineDir = "quarantine"

// Options configures a Store.
type Options struct {
	// Fsync forces every put to sync the entry file (and its
	// directory) before the put is considered durable. Off by default:
	// the store is a cache of reproducible computations, so losing the
	// last few entries to a host crash only costs re-simulation.
	Fsync bool
}

// Store is the on-disk result store. It implements
// harness.ResultCache, so it plugs directly into a Runner — alone or
// as the L2 of a Tiered cache. All methods are safe for concurrent
// use; cross-process sharing of one directory is likewise safe for
// writers (atomic same-content renames) and readers.
type Store struct {
	dir   string
	fsync bool

	// count tracks resident entries: seeded by the opening scan,
	// maintained by Put/quarantine.
	count atomic.Int64

	hits        atomic.Uint64
	misses      atomic.Uint64
	puts        atomic.Uint64
	putErrors   atomic.Uint64
	quarantined atomic.Uint64
}

// envelope is the on-disk file schema: a format version, the entry's
// own key (so a file renamed onto the wrong key is detected as
// corruption rather than served), and the canonical result encoding.
type envelope struct {
	Format int                `json:"format"`
	Key    string             `json:"key"`
	Result harness.ResultWire `json:"result"`
}

// formatVersion identifies the envelope schema; bump it when the
// layout changes incompatibly. Entries with a different version are
// quarantined like any other undecodable file.
const formatVersion = 1

// Open opens (creating if needed) the store rooted at dir and counts
// the resident entries.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, fsync: opts.Fsync}
	n, err := s.scan()
	if err != nil {
		return nil, err
	}
	s.count.Store(n)
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// scan counts entry files under the fan-out directories.
func (s *Store) scan() (int64, error) {
	fanouts, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	var n int64
	for _, fan := range fanouts {
		if !fan.IsDir() || fan.Name() == quarantineDir {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.dir, fan.Name()))
		if err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".json") {
				n++
			}
		}
	}
	return n, nil
}

// path returns the entry file for key; its parent directory may not
// exist yet.
func (s *Store) path(k harness.Key) string {
	hex := k.String()
	return filepath.Join(s.dir, hex[:2], hex+".json")
}

// Get loads the result stored under key. A missing entry is a plain
// miss; an unreadable or undecodable one is quarantined and reported
// as a miss.
func (s *Store) Get(k harness.Key) (*harness.Result, bool) {
	path := s.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	res, err := decodeEntry(k, data)
	if err != nil {
		s.quarantine(k, path)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return res, true
}

// decodeEntry strictly decodes one entry file and checks it actually
// holds key's result.
func decodeEntry(k harness.Key, data []byte) (*harness.Result, error) {
	var env envelope
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("store: decoding entry: %w", err)
	}
	if env.Format != formatVersion {
		return nil, fmt.Errorf("store: entry format %d, want %d", env.Format, formatVersion)
	}
	if env.Key != k.String() {
		return nil, fmt.Errorf("store: entry holds key %s, filed under %s", env.Key, k)
	}
	return env.Result.Result()
}

// quarantine moves a corrupt entry aside. A failed rename falls back
// to removal — the one thing that must not survive is a poisoned
// entry that turns every Get into a decode failure.
func (s *Store) quarantine(k harness.Key, path string) {
	dst := filepath.Join(s.dir, quarantineDir, k.String()+".json")
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
	s.quarantined.Add(1)
	s.count.Add(-1)
}

// Put durably stores res under key. Failed results are not stored
// (matching the in-memory caches: a retry must re-run them), and an
// existing entry is left untouched — the encoding is canonical, so
// rewriting it could only produce the same bytes.
func (s *Store) Put(k harness.Key, res *harness.Result) error {
	if res == nil || res.Err != nil {
		return nil
	}
	path := s.path(k)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	env := envelope{Format: formatVersion, Key: k.String(), Result: res.Wire()}
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("store: encoding entry: %w", err)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if s.fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.fsync {
		if err := syncDir(dir); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	s.puts.Add(1)
	s.count.Add(1)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a host
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Add implements harness.ResultCache. A ResultCache add cannot fail,
// so a put error is swallowed into the put-error counter (the entry
// is simply not persisted; the in-memory layer above still has it)
// and res itself is returned as the canonical pointer.
func (s *Store) Add(k harness.Key, res *harness.Result) *harness.Result {
	if err := s.Put(k, res); err != nil {
		s.putErrors.Add(1)
	}
	return res
}

// Len reports the number of resident entries.
func (s *Store) Len() int { return int(s.count.Load()) }

// Has reports whether an entry file exists for k, without reading or
// validating it (a corrupt entry still answers true; Get quarantines
// it on first read). Journal recovery uses this to tell warm tasks
// from work that must re-enqueue, without deserializing every result.
func (s *Store) Has(k harness.Key) bool {
	_, err := os.Stat(s.path(k))
	return err == nil
}

// Stats returns the store's lifetime counters for /metrics.
func (s *Store) Stats() (hits, misses, puts, putErrors, quarantined uint64) {
	return s.hits.Load(), s.misses.Load(), s.puts.Load(), s.putErrors.Load(), s.quarantined.Load()
}
