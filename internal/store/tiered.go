package store

import "sgxgauge/internal/harness"

// Tiered layers two harness.ResultCaches: a fast bounded L1 (the
// daemon's sharded in-memory LRU) over a complete L2 (this package's
// persistent Store). Gets probe L1 first and promote L2 hits into L1;
// Adds write through to both. A Runner wired to a Tiered cache
// therefore survives restarts: the L1 comes back empty, but every
// previously computed spec is one L2 read — not one simulation —
// away.
type Tiered struct {
	L1, L2 harness.ResultCache
}

// NewTiered returns the layered cache.
func NewTiered(l1, l2 harness.ResultCache) *Tiered {
	return &Tiered{L1: l1, L2: l2}
}

// Get probes L1 then L2, promoting an L2 hit into L1 so repeated
// reads of a warm key stop paying the disk read.
func (t *Tiered) Get(k harness.Key) (*harness.Result, bool) {
	if res, ok := t.L1.Get(k); ok {
		return res, true
	}
	res, ok := t.L2.Get(k)
	if !ok {
		return nil, false
	}
	// L1's put-if-absent keeps one canonical pointer per key even
	// when two goroutines promote the same entry concurrently.
	return t.L1.Add(k, res), true
}

// Add writes through both layers. L1 resolves the canonical pointer
// (put-if-absent); L2 persists it.
func (t *Tiered) Add(k harness.Key, res *harness.Result) *harness.Result {
	res = t.L1.Add(k, res)
	t.L2.Add(k, res)
	return res
}

// Len reports the size of the larger layer. Every add writes through
// to L2 while L1 evicts, so with a persistent L2 this is the number
// of distinct results known to the pair.
func (t *Tiered) Len() int {
	l1, l2 := t.L1.Len(), t.L2.Len()
	if l1 > l2 {
		return l1
	}
	return l2
}
