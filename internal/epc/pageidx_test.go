package epc

import (
	"math/rand"
	"testing"

	"sgxgauge/internal/mem"
)

// TestPageIdxMatchesMap churns a pageIdx and a reference map with the
// same random put/del/get stream and demands identical contents
// throughout — in particular across backward-shift deletions inside
// long probe clusters.
func TestPageIdxMatchesMap(t *testing.T) {
	const capacity = 128
	p := newPageIdx(capacity)
	ref := make(map[mem.PageID]int)
	rng := rand.New(rand.NewSource(42))

	// Small ID universe forces dense clusters and frequent re-put of
	// deleted keys.
	randID := func() mem.PageID {
		return mem.PageID{Enclave: uint32(rng.Intn(3)), VPN: uint64(rng.Intn(200))}
	}

	for step := 0; step < 200000; step++ {
		id := randID()
		switch rng.Intn(3) {
		case 0:
			if len(ref) < capacity {
				idx := rng.Intn(1 << 20)
				p.put(id, idx)
				ref[id] = idx
			}
		case 1:
			p.del(id)
			delete(ref, id)
		case 2:
			got, ok := p.get(id)
			want, wok := ref[id]
			if ok != wok || (ok && got != want) {
				t.Fatalf("step %d: get(%v) = %d,%v want %d,%v", step, id, got, ok, want, wok)
			}
		}
		if p.len() != len(ref) {
			t.Fatalf("step %d: len = %d want %d", step, p.len(), len(ref))
		}
	}
	// Full sweep at the end: every reference entry is retrievable.
	for id, want := range ref {
		if got, ok := p.get(id); !ok || got != want {
			t.Fatalf("final: get(%v) = %d,%v want %d", id, got, ok, want)
		}
	}
}

// TestVerIdxMatchesMap churns a verIdx and a reference map with the
// same random set/del/get/dropEnclave stream and demands identical
// contents throughout, across growth and backward-shift deletion.
func TestVerIdxMatchesMap(t *testing.T) {
	p := newVerIdx()
	ref := make(map[mem.PageID]uint64)
	rng := rand.New(rand.NewSource(7))

	randID := func() mem.PageID {
		return mem.PageID{Enclave: uint32(rng.Intn(3)), VPN: uint64(rng.Intn(300))}
	}

	var scratch []mem.PageID
	for step := 0; step < 200000; step++ {
		id := randID()
		switch rng.Intn(4) {
		case 0:
			v := uint64(rng.Intn(1 << 20))
			v++ // versions are never 0
			p.set(id, v)
			ref[id] = v
		case 1:
			p.del(id)
			delete(ref, id)
		case 2:
			if got, want := p.get(id), ref[id]; got != want {
				t.Fatalf("step %d: get(%v) = %d want %d", step, id, got, want)
			}
		case 3:
			if rng.Intn(100) != 0 {
				continue // occasional enclave teardown
			}
			enc := uint32(rng.Intn(3))
			scratch = p.dropEnclave(enc, scratch)
			for rid := range ref {
				if rid.Enclave == enc {
					delete(ref, rid)
				}
			}
		}
		if p.n != len(ref) {
			t.Fatalf("step %d: n = %d want %d", step, p.n, len(ref))
		}
	}
	for id, want := range ref {
		if got := p.get(id); got != want {
			t.Fatalf("final: get(%v) = %d want %d", id, got, want)
		}
	}
}

// TestPageIdxOverCapacityPanics pins the bookkeeping guard.
func TestPageIdxOverCapacityPanics(t *testing.T) {
	p := newPageIdx(4)
	// Table size is 16; the guard trips at load > 1/2.
	defer func() {
		if recover() == nil {
			t.Fatal("over-capacity put did not panic")
		}
	}()
	for i := 0; i < 16; i++ {
		p.put(mem.PageID{VPN: uint64(i)}, i)
	}
}
