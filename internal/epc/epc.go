// Package epc implements the Enclave Page Cache of the simulated SGX
// machine: a bounded pool of protected page frames, the EPCM metadata
// table, CLOCK-based eviction with 16-page batches, and the four
// driver-level operations the paper instruments (sgx_alloc_page,
// sgx_ewb, sgx_eldu, sgx_do_fault — Appendix A).
//
// Pages evicted from the EPC are genuinely encrypted and MACed by the
// MEE and parked in the untrusted backing store; load-backs decrypt
// and integrity-check them. The EPC-fault storms that dominate the
// paper's evaluation are emergent behaviour of this bounded cache.
package epc

import (
	"errors"
	"fmt"

	"sgxgauge/internal/cycles"
	"sgxgauge/internal/mee"
	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
)

// Typed failures of the paging path. They propagate through Fault and
// AllocPage to the machine, which aborts the owning enclave instead of
// killing the process.
var (
	// ErrEPCExhausted reports that an allocation needed an eviction
	// but no evictable page exists (a degenerate configuration: the
	// EPC cannot hold even one batch of the working set).
	ErrEPCExhausted = errors.New("epc: exhausted: no evictable page found")
	// ErrPageLost reports that a page known to have been evicted has
	// vanished from the untrusted backing store — the OS dropped a
	// sealed page it was trusted to keep.
	ErrPageLost = errors.New("epc: sealed page missing from untrusted store")
)

// BatchEvictPages is how many pages one eviction pass writes back.
// "SGX evicts pages in a batch that is typically 16 pages" (paper
// Appendix A).
const BatchEvictPages = 16

// Op identifies one of the instrumented driver operations.
type Op int

// The four operations of Figure 7.
const (
	OpAlloc Op = iota
	OpEWB
	OpELDU
	OpFault
	numOps
)

// String returns the driver function name used in the paper.
func (o Op) String() string {
	switch o {
	case OpAlloc:
		return "sgx_alloc_page"
	case OpEWB:
		return "sgx_ewb"
	case OpELDU:
		return "sgx_eldu"
	case OpFault:
		return "sgx_do_fault"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// OpStats accumulates latency samples for one operation.
type OpStats struct {
	Samples uint64
	Cycles  uint64
	Min     uint64
	Max     uint64
}

// MeanCycles returns the mean latency in cycles, or 0 with no samples.
func (s OpStats) MeanCycles() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Samples)
}

// MeanMicros returns the mean latency in microseconds.
func (s OpStats) MeanMicros() float64 {
	if s.Samples == 0 {
		return 0
	}
	return cycles.Micros(s.Cycles) / float64(s.Samples)
}

func (s *OpStats) add(c uint64) {
	s.Samples++
	s.Cycles += c
	if s.Min == 0 || c < s.Min {
		s.Min = c
	}
	if c > s.Max {
		s.Max = c
	}
}

// TimelineEvent is one sampled point for Figure 9: cumulative EPC
// activity at a given simulated cycle stamp.
type TimelineEvent struct {
	Cycle     uint64
	Allocs    uint64
	Evictions uint64
	LoadBacks uint64
}

// EPCMEntry mirrors the fields of the hardware Enclave Page Cache Map
// the paper describes in §2.3: for each EPC page, its owner enclave
// and the virtual address it was allocated for. These are checked when
// a TLB entry for the page is installed.
type EPCMEntry struct {
	Owner uint32
	VPN   uint64
	Valid bool
}

// slot is one EPC page slot. It holds no frame pointer: slot i's data
// lives in the arena at frames[i], so the slot table is index-based
// and the per-slot state the eviction sweep walks stays compact.
type slot struct {
	id         mem.PageID
	referenced bool
	used       bool
}

// EPC is the enclave page cache. It is not safe for concurrent use;
// the machine serializes simulated threads.
type EPC struct {
	capacity int
	engine   *mee.Engine
	backing  *mem.BackingStore
	counters *perf.Counters

	// crypt amortizes MEE cipher/HMAC setup across every seal and
	// unseal the EPC performs (see mee.Batch); outputs are
	// byte-identical to the per-call engine path.
	crypt *mee.Batch

	slots []slot
	// frames is the arena backing the slot table: slot i's page data
	// is frames[i]. Pointers into the arena (Lookup results, the
	// machine's page memos) dangle when Resize rebuilds it; the resize
	// hook bounds that lifetime.
	frames   []mem.Frame
	resident *pageIdx
	free     []int
	hand     int

	// evict-batch scratch, reused across eviction storms.
	evIdx    []int
	evIDs    []mem.PageID
	evVers   []uint64
	evFrames []*mem.Frame
	evSealed []*mem.SealedPage

	// versions holds, per page, the version number used for the most
	// recent seal. Load-back must present exactly this version; any
	// other version is a rollback.
	versions *verIdx
	// verScratch collects IDs for verIdx.dropEnclave sweeps.
	verScratch []mem.PageID

	ops [numOps]OpStats

	// onEvict, when set, is called with the VPNs of pages that leave
	// the EPC so the machine can shoot down their TLB entries.
	onEvict func(id mem.PageID)

	// onRemove, when set, is called for each resident page discarded
	// without write-back (enclave teardown); like onEvict it lets the
	// machine invalidate stale TLB entries and cache lines, but no
	// EWB is charged.
	onRemove func(id mem.PageID)

	// onResize, when set, is called after Resize rebuilds the slot
	// table. Pointers into the old table (see LookupRef) are dangling
	// from that moment on; the machine uses this to drop its per-thread
	// page memos.
	onResize func()

	// tree, when set, is the Merkle integrity tree maintained over
	// evicted-page MACs: EWB updates a path, ELDU verifies one, and
	// each uncached level costs TreeLevel cycles (the VAULT-style
	// overhead of §2.2's integrity checking).
	tree *mee.IntegrityTree

	timeline      []TimelineEvent
	timelineEvery uint64
	opsSinceTick  uint64
	clockRef      *cycles.Clock

	jitter uint64
}

// New builds an EPC holding capacityPages pages, backed by the given
// MEE and untrusted store, charging the given counter bank.
func New(capacityPages int, engine *mee.Engine, backing *mem.BackingStore, counters *perf.Counters) *EPC {
	if capacityPages < BatchEvictPages+1 {
		capacityPages = BatchEvictPages + 1
	}
	e := &EPC{
		capacity: capacityPages,
		engine:   engine,
		backing:  backing,
		counters: counters,
		crypt:    engine.NewBatch(),
		slots:    make([]slot, capacityPages),
		frames:   make([]mem.Frame, capacityPages),
		resident: newPageIdx(capacityPages),
		versions: newVerIdx(),
		jitter:   0x9e3779b97f4a7c15,
	}
	e.free = make([]int, capacityPages)
	for i := range e.free {
		e.free[i] = capacityPages - 1 - i
	}
	return e
}

// Capacity returns the number of pages the EPC can hold.
func (e *EPC) Capacity() int { return e.capacity }

// Resident returns the number of pages currently in the EPC.
func (e *EPC) Resident() int { return e.resident.len() }

// SetEvictHook registers fn to be invoked for each page evicted from
// the EPC (the machine uses this to invalidate TLB entries).
func (e *EPC) SetEvictHook(fn func(id mem.PageID)) { e.onEvict = fn }

// SetRemoveHook registers fn to be invoked for each resident page
// discarded by Remove/RemoveEnclave (the machine uses this to shoot
// down TLB entries and cache lines at enclave teardown).
func (e *EPC) SetRemoveHook(fn func(id mem.PageID)) { e.onRemove = fn }

// SetResizeHook registers fn to be invoked after every slot-table
// rebuild (Resize), at which point pointers returned by LookupRef are
// no longer valid.
func (e *EPC) SetResizeHook(fn func()) { e.onResize = fn }

// SetIntegrityTree attaches a Merkle integrity tree; subsequent
// evictions update it and load-backs verify against it.
func (e *EPC) SetIntegrityTree(t *mee.IntegrityTree) { e.tree = t }

// IntegrityTree returns the attached tree, or nil.
func (e *EPC) IntegrityTree() *mee.IntegrityTree { return e.tree }

// EnableTimeline starts recording a TimelineEvent roughly every
// everyOps EPC operations, stamped with clk's cycle count (Figure 9).
func (e *EPC) EnableTimeline(clk *cycles.Clock, everyOps uint64) {
	if everyOps == 0 {
		everyOps = 1
	}
	e.clockRef = clk
	e.timelineEvery = everyOps
	e.timeline = e.timeline[:0]
}

// Timeline returns the recorded samples.
func (e *EPC) Timeline() []TimelineEvent { return e.timeline }

// OpStatsFor returns the latency statistics of op.
func (e *EPC) OpStatsFor(op Op) OpStats { return e.ops[op] }

// EPCMLookup returns the EPCM entry for the page, valid only while the
// page is resident. The TLB fill path consults this (paper Figure 1).
func (e *EPC) EPCMLookup(id mem.PageID) EPCMEntry {
	if idx, ok := e.resident.get(id); ok {
		return EPCMEntry{Owner: id.Enclave, VPN: id.VPN, Valid: e.slots[idx].used}
	}
	return EPCMEntry{}
}

// Lookup returns the frame for id when resident, marking it recently
// used for the CLOCK policy.
func (e *EPC) Lookup(id mem.PageID) (*mem.Frame, bool) {
	idx, ok := e.resident.get(id)
	if !ok {
		return nil, false
	}
	e.slots[idx].referenced = true
	return &e.frames[idx], true
}

// LookupRef is Lookup plus a pointer to the slot's CLOCK reference
// bit, letting the machine's memoized fast path mark later hits on
// the same page recently-used without re-running the resident lookup.
// The pointer — like the frame pointer, which aliases the slot arena —
// is valid only until the page leaves the EPC or the slot table is
// rebuilt (see SetResizeHook); the machine's TLB-shootdown and resize
// hooks bound both lifetimes.
func (e *EPC) LookupRef(id mem.PageID) (*mem.Frame, *bool, bool) {
	idx, ok := e.resident.get(id)
	if !ok {
		return nil, nil, false
	}
	s := &e.slots[idx]
	s.referenced = true
	return &e.frames[idx], &s.referenced, true
}

// WalkResolve is the page-walk combination of Lookup, EPCMLookup and
// LookupRef in a single residency probe: frame, CLOCK reference-bit
// pointer, and the EPCM entry to verify while the TLB entry is
// installed. The machine's fast path uses it to finish a walk with one
// map access instead of three; the simulated semantics (reference bit
// set, same EPCM contents) are identical.
func (e *EPC) WalkResolve(id mem.PageID) (*mem.Frame, *bool, EPCMEntry, bool) {
	idx, ok := e.resident.get(id)
	if !ok {
		return nil, nil, EPCMEntry{}, false
	}
	s := &e.slots[idx]
	s.referenced = true
	return &e.frames[idx], &s.referenced, EPCMEntry{Owner: id.Enclave, VPN: id.VPN, Valid: s.used}, true
}

// nextJitter returns a small deterministic latency perturbation in
// [0, 1/8 of base), so op-latency distributions are non-degenerate as
// in the ftrace samples of Appendix A.
func (e *EPC) nextJitter(base uint64) uint64 {
	e.jitter ^= e.jitter << 13
	e.jitter ^= e.jitter >> 7
	e.jitter ^= e.jitter << 17
	if base < 8 {
		return 0
	}
	return e.jitter % (base / 8)
}

func (e *EPC) tick() {
	if e.timelineEvery == 0 {
		return
	}
	e.opsSinceTick++
	if e.opsSinceTick < e.timelineEvery {
		return
	}
	e.opsSinceTick = 0
	e.timeline = append(e.timeline, TimelineEvent{
		Cycle:     e.clockRef.Cycles(),
		Allocs:    e.counters.Get(perf.EPCAllocs),
		Evictions: e.counters.Get(perf.EPCEvictions),
		LoadBacks: e.counters.Get(perf.EPCLoadBacks),
	})
}

// AllocPage allocates a zeroed EPC page for id (the EAUG path /
// sgx_alloc_page), evicting a batch first when the EPC is full. It
// panics if the page is already resident — callers must Lookup first.
// A full EPC with no evictable page yields ErrEPCExhausted.
func (e *EPC) AllocPage(clk *cycles.Clock, costs *cycles.CostModel, id mem.PageID) (*mem.Frame, error) {
	if _, ok := e.resident.get(id); ok {
		panic(fmt.Sprintf("epc: AllocPage of resident page (%v)", id))
	}
	if len(e.free) == 0 {
		if err := e.evictBatch(clk, costs); err != nil {
			return nil, err
		}
	}
	idx := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	e.slots[idx] = slot{id: id, referenced: true, used: true}
	e.resident.put(id, idx)
	f := &e.frames[idx]
	f.Data = [mem.PageSize]byte{} // arena frames carry a prior occupant's data

	lat := costs.EPCAlloc + e.nextJitter(costs.EPCAlloc)
	clk.Advance(lat)
	e.ops[OpAlloc].add(lat)
	e.counters.Inc(perf.EPCAllocs)
	e.tick()
	return f, nil
}

// evictBatch writes back BatchEvictPages victims chosen by CLOCK.
//
// It runs in two phases so the MEE work of the whole storm is batched
// (through the long-lived crypt batch, byte-identical to
// mee.SealBatch): phase 1 picks and detaches every victim — clearing
// the slot before the next pick, exactly as the one-at-a-time path
// did, so the CLOCK victim sequence is unchanged — and phase 2 seals
// all victims in pick order, then publishes and charges each one in
// that same order (backing store, integrity tree, EWB latency and
// jitter, eviction hook, timeline tick). Every externally observable
// sequence — victim order, version numbers, jitter draws, hook
// invocations, counter and clock values at each hook — is identical
// to evicting the pages one at a time.
func (e *EPC) evictBatch(clk *cycles.Clock, costs *cycles.CostModel) error {
	n := BatchEvictPages
	if n > e.resident.len() {
		n = e.resident.len()
	}
	e.evIdx = e.evIdx[:0]
	e.evIDs = e.evIDs[:0]
	e.evVers = e.evVers[:0]
	e.evFrames = e.evFrames[:0]
	for i := 0; i < n; i++ {
		idx := e.pickVictim()
		if idx < 0 {
			return ErrEPCExhausted
		}
		s := &e.slots[idx]
		id := s.id
		ver := e.versions.get(id) + 1
		e.versions.set(id, ver)
		e.evIdx = append(e.evIdx, idx)
		e.evIDs = append(e.evIDs, id)
		e.evVers = append(e.evVers, ver)
		e.evFrames = append(e.evFrames, &e.frames[idx])
		*s = slot{}
		e.resident.del(id)
		e.free = append(e.free, idx)
	}
	if cap(e.evSealed) < n {
		e.evSealed = make([]*mem.SealedPage, n)
	}
	e.evSealed = e.evSealed[:n]
	for i := range e.evSealed {
		// Recycle a retired sealed page if the store has one, and
		// seal through the EPC's long-lived batch — same bytes as
		// mee.SealBatch, without re-deriving the AEAD per storm.
		sp := e.backing.Reserve()
		if sp == nil {
			sp = &mem.SealedPage{}
		}
		e.crypt.SealPageInto(sp, e.evIDs[i], e.evVers[i], e.evFrames[i])
		e.evSealed[i] = sp
	}
	for i, sp := range e.evSealed {
		e.backing.Put(sp)
		if e.tree != nil {
			if err := e.tree.Update(e.evIDs[i], sp.MAC); err != nil {
				return fmt.Errorf("epc: integrity tree: %w", err)
			}
			clk.Advance(uint64(e.tree.UncachedLevels()) * costs.TreeLevel)
		}
		e.chargeEWB(clk, costs, e.evIDs[i])
	}
	return nil
}

// chargeEWB charges one page's EWB driver latency and fires the
// eviction hook — the tail every eviction path shares.
func (e *EPC) chargeEWB(clk *cycles.Clock, costs *cycles.CostModel, id mem.PageID) {
	// The driver spends the full EWB latency (recorded for Figure 7),
	// but most of it overlaps execution: evictions run in 16-page
	// batches ahead of demand, so the faulting thread only pays the
	// synchronous share.
	lat := costs.EWBPage + e.nextJitter(costs.EWBPage)
	share := costs.AsyncEvictShare
	if share <= 0 || share > 1 {
		share = 1
	}
	clk.Advance(cycles.SatU64(float64(lat) * share))
	e.ops[OpEWB].add(lat)
	e.counters.Inc(perf.EPCEvictions)
	if e.onEvict != nil {
		e.onEvict(id)
	}
	e.tick()
}

// pickVictim runs the CLOCK sweep: clear reference bits until an
// unreferenced used slot is found. Two full sweeps guarantee a victim
// whenever any page is resident; -1 means nothing is evictable.
func (e *EPC) pickVictim() int {
	for sweep := 0; sweep < 2*e.capacity; sweep++ {
		s := &e.slots[e.hand]
		cur := e.hand
		e.hand++
		if e.hand == e.capacity {
			e.hand = 0
		}
		if !s.used {
			continue
		}
		if s.referenced {
			s.referenced = false
			continue
		}
		return cur
	}
	return -1
}

func (e *EPC) evictOne(clk *cycles.Clock, costs *cycles.CostModel) error {
	idx := e.pickVictim()
	if idx < 0 {
		return ErrEPCExhausted
	}
	return e.sealOut(clk, costs, idx)
}

// sealOut performs the EWB path for the page in slot idx: seal it to
// the untrusted store, update the integrity tree, free the slot, and
// charge the driver latency.
func (e *EPC) sealOut(clk *cycles.Clock, costs *cycles.CostModel, idx int) error {
	s := &e.slots[idx]
	id := s.id

	ver := e.versions.get(id) + 1
	e.versions.set(id, ver)
	sp := e.backing.Reserve()
	if sp == nil {
		sp = &mem.SealedPage{}
	}
	e.crypt.SealPageInto(sp, id, ver, &e.frames[idx])
	e.backing.Put(sp)
	if e.tree != nil {
		if err := e.tree.Update(id, sp.MAC); err != nil {
			return fmt.Errorf("epc: integrity tree: %w", err)
		}
		clk.Advance(uint64(e.tree.UncachedLevels()) * costs.TreeLevel)
	}

	*s = slot{}
	e.resident.del(id)
	e.free = append(e.free, idx)

	e.chargeEWB(clk, costs, id)
	return nil
}

// EvictPage forces the page for id out of the EPC through the normal
// EWB path, reporting whether it was resident. Tests use it to place
// a chosen victim in the untrusted store deterministically; the
// ballooning path uses it to shrink capacity.
func (e *EPC) EvictPage(clk *cycles.Clock, costs *cycles.CostModel, id mem.PageID) (bool, error) {
	idx, ok := e.resident.get(id)
	if !ok {
		return false, nil
	}
	if err := e.sealOut(clk, costs, idx); err != nil {
		return false, err
	}
	return true, nil
}

// MinCapacity is the smallest EPC capacity (in pages) the model
// supports: one eviction batch plus one page.
const MinCapacity = BatchEvictPages + 1

// Resize changes the EPC capacity to newCapacity pages (clamped to at
// least MinCapacity), modelling the OS ballooning the EPC mid-run.
// Shrinking evicts pages through the normal EWB path until the
// resident set fits; growing adds free slots. Either way the CLOCK
// hand restarts at slot 0. The EPCResizes counter records the event.
func (e *EPC) Resize(clk *cycles.Clock, costs *cycles.CostModel, newCapacity int) error {
	if newCapacity < MinCapacity {
		newCapacity = MinCapacity
	}
	if newCapacity == e.capacity {
		return nil
	}
	for e.resident.len() > newCapacity {
		if err := e.evictOne(clk, costs); err != nil {
			return err
		}
	}
	// Rebuild the slot table (and its frame arena) at the new
	// capacity, compacting resident pages in slot order so the rebuild
	// is deterministic.
	newSlots := make([]slot, newCapacity)
	newFrames := make([]mem.Frame, newCapacity)
	newResident := newPageIdx(newCapacity)
	next := 0
	for i := range e.slots {
		if e.slots[i].used {
			newSlots[next] = e.slots[i]
			newFrames[next] = e.frames[i]
			newResident.put(e.slots[i].id, next)
			next++
		}
	}
	free := make([]int, 0, newCapacity-next)
	for i := newCapacity - 1; i >= next; i-- {
		free = append(free, i)
	}
	e.slots = newSlots
	e.frames = newFrames
	e.resident = newResident
	e.free = free
	e.capacity = newCapacity
	e.hand = 0
	e.counters.Inc(perf.EPCResizes)
	if e.onResize != nil {
		e.onResize()
	}
	return nil
}

// loadBack performs the ELDU path: fetch the sealed page from the
// untrusted store, decrypt, verify its MAC and version, and install it
// in a free EPC slot.
func (e *EPC) loadBack(clk *cycles.Clock, costs *cycles.CostModel, id mem.PageID, sp *mem.SealedPage) (*mem.Frame, error) {
	if len(e.free) == 0 {
		if err := e.evictBatch(clk, costs); err != nil {
			return nil, err
		}
	}
	// Peek the slot the page would land in and decrypt straight into
	// its arena frame; the slot is only claimed on success, so a
	// verification failure leaves the EPC state untouched (the dirtied
	// free frame is zeroed by the next AllocPage).
	idx := e.free[len(e.free)-1]
	f := &e.frames[idx]
	if e.tree != nil {
		if err := e.tree.Verify(id, sp.MAC); err != nil {
			return nil, err
		}
		clk.Advance(uint64(e.tree.UncachedLevels()) * costs.TreeLevel)
	}
	if err := e.crypt.UnsealPage(sp, e.versions.get(id), f); err != nil {
		return nil, err
	}
	e.free = e.free[:len(e.free)-1]
	e.slots[idx] = slot{id: id, referenced: true, used: true}
	e.resident.put(id, idx)
	e.backing.Delete(id)

	lat := costs.ELDUPage + e.nextJitter(costs.ELDUPage)
	clk.Advance(lat)
	e.ops[OpELDU].add(lat)
	e.counters.Inc(perf.EPCLoadBacks)
	e.tick()
	return f, nil
}

// Fault handles an EPC page fault for id (the sgx_do_fault path): the
// page is either loaded back from the untrusted store or, on first
// touch, allocated fresh. The returned bool reports whether a
// load-back occurred (as opposed to a demand allocation). A page that
// was sealed out but is no longer in the backing store was dropped by
// the untrusted OS: that is ErrPageLost, not a fresh allocation.
func (e *EPC) Fault(clk *cycles.Clock, costs *cycles.CostModel, id mem.PageID) (*mem.Frame, bool, error) {
	if _, ok := e.resident.get(id); ok {
		panic(fmt.Sprintf("epc: Fault on resident page (%v)", id))
	}
	start := clk.Cycles()
	lat := costs.FaultOverhead + e.nextJitter(costs.FaultOverhead)
	clk.Advance(lat)

	var f *mem.Frame
	var loaded bool
	var err error
	if sp := e.backing.Get(id); sp != nil {
		f, err = e.loadBack(clk, costs, id, sp)
		loaded = true
	} else if e.versions.get(id) > 0 {
		return nil, false, fmt.Errorf("%w (%v)", ErrPageLost, id)
	} else {
		f, err = e.AllocPage(clk, costs, id)
	}
	if err != nil {
		return nil, false, err
	}
	e.ops[OpFault].add(clk.Cycles() - start)
	return f, loaded, nil
}

// Remove discards the page for id from the EPC and the backing store
// without writing it back (enclave teardown). Resident pages are
// reported through the remove hook so stale TLB entries and cache
// lines are invalidated — pages already evicted had theirs shot down
// on the way out.
func (e *EPC) Remove(id mem.PageID) {
	if idx, ok := e.resident.get(id); ok {
		e.slots[idx] = slot{}
		e.resident.del(id)
		e.free = append(e.free, idx)
		if e.onRemove != nil {
			e.onRemove(id)
		}
	}
	e.backing.Delete(id)
	e.versions.del(id)
}

// RemoveEnclave discards every page (resident or sealed) belonging to
// the enclave, invalidating residual TLB entries and cache lines for
// the resident ones.
func (e *EPC) RemoveEnclave(enclave uint32) {
	// Walk the slot table (fixed order) rather than the resident map:
	// the remove hook fires per page, and hook-visible side effects
	// (TLB shootdowns, cache invalidations, future tracing) must not
	// inherit map iteration order.
	for idx := range e.slots {
		s := &e.slots[idx]
		if !s.used || s.id.Enclave != enclave {
			continue
		}
		id := s.id
		*s = slot{}
		e.resident.del(id)
		e.free = append(e.free, idx)
		if e.onRemove != nil {
			e.onRemove(id)
		}
	}
	e.backing.DropEnclave(enclave)
	e.verScratch = e.versions.dropEnclave(enclave, e.verScratch)
}
