package epc

import (
	"errors"
	"testing"

	"sgxgauge/internal/cycles"
	"sgxgauge/internal/mee"
	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
)

func newTestEPC(capacity int) (*EPC, *perf.Counters, *cycles.Clock, cycles.CostModel) {
	counters := &perf.Counters{}
	e := New(capacity, mee.New(1), mem.NewBackingStore(), counters)
	return e, counters, &cycles.Clock{}, cycles.DefaultCosts()
}

func id(vpn uint64) mem.PageID { return mem.PageID{Enclave: 1, VPN: vpn} }

// mustAlloc is AllocPage for tests that expect it to succeed.
func mustAlloc(t *testing.T, e *EPC, clk *cycles.Clock, costs *cycles.CostModel, pid mem.PageID) *mem.Frame {
	t.Helper()
	f, err := e.AllocPage(clk, costs, pid)
	if err != nil {
		t.Fatalf("AllocPage(%v): %v", pid, err)
	}
	return f
}

func TestAllocAndLookup(t *testing.T) {
	e, counters, clk, costs := newTestEPC(32)
	f := mustAlloc(t, e, clk, &costs, id(10))
	if f == nil {
		t.Fatal("AllocPage returned nil")
	}
	got, ok := e.Lookup(id(10))
	if !ok || got != f {
		t.Fatal("Lookup did not return the allocated frame")
	}
	if counters.Get(perf.EPCAllocs) != 1 {
		t.Errorf("EPCAllocs = %d, want 1", counters.Get(perf.EPCAllocs))
	}
	if clk.Cycles() == 0 {
		t.Error("AllocPage charged no cycles")
	}
	if e.Resident() != 1 {
		t.Errorf("Resident = %d, want 1", e.Resident())
	}
}

func TestAllocResidentPanics(t *testing.T) {
	e, _, clk, costs := newTestEPC(32)
	mustAlloc(t, e, clk, &costs, id(1))
	defer func() {
		if recover() == nil {
			t.Error("double alloc did not panic")
		}
	}()
	mustAlloc(t, e, clk, &costs, id(1))
}

func TestBatchEvictionOnPressure(t *testing.T) {
	e, counters, clk, costs := newTestEPC(32)
	for vpn := uint64(0); vpn < 32; vpn++ {
		mustAlloc(t, e, clk, &costs, id(vpn))
	}
	if counters.Get(perf.EPCEvictions) != 0 {
		t.Fatal("evictions before capacity exceeded")
	}
	// One more allocation forces a 16-page batch eviction.
	mustAlloc(t, e, clk, &costs, id(100))
	if got := counters.Get(perf.EPCEvictions); got != BatchEvictPages {
		t.Errorf("evictions = %d, want %d (one batch)", got, BatchEvictPages)
	}
	if e.Resident() != 32-BatchEvictPages+1 {
		t.Errorf("Resident = %d", e.Resident())
	}
}

func TestDataSurvivesEvictionAndFault(t *testing.T) {
	e, counters, clk, costs := newTestEPC(32)
	f := mustAlloc(t, e, clk, &costs, id(0))
	for i := range f.Data {
		f.Data[i] = byte(i % 251)
	}
	// Evict page 0 deterministically through the normal EWB path.
	if ok, err := e.EvictPage(clk, &costs, id(0)); err != nil || !ok {
		t.Fatalf("EvictPage: ok=%v err=%v", ok, err)
	}
	if _, ok := e.Lookup(id(0)); ok {
		t.Fatal("page 0 still resident after EvictPage")
	}
	got, loaded, err := e.Fault(clk, &costs, id(0))
	if err != nil {
		t.Fatalf("Fault: %v", err)
	}
	if !loaded {
		t.Fatal("Fault did not load back a previously-evicted page")
	}
	for i := range got.Data {
		if got.Data[i] != byte(i%251) {
			t.Fatalf("byte %d corrupted after evict/load-back: %d", i, got.Data[i])
		}
	}
	if counters.Get(perf.EPCLoadBacks) == 0 {
		t.Error("no load-back counted")
	}
}

func TestFaultFreshAllocation(t *testing.T) {
	e, counters, clk, costs := newTestEPC(32)
	f, loaded, err := e.Fault(clk, &costs, id(7))
	if err != nil {
		t.Fatalf("Fault: %v", err)
	}
	if loaded {
		t.Error("first-touch fault claimed a load-back")
	}
	for _, b := range f.Data[:64] {
		if b != 0 {
			t.Fatal("fresh page not zeroed")
		}
	}
	if counters.Get(perf.EPCLoadBacks) != 0 {
		t.Error("load-back counted for a fresh allocation")
	}
}

func TestFaultResidentPanics(t *testing.T) {
	e, _, clk, costs := newTestEPC(32)
	mustAlloc(t, e, clk, &costs, id(1))
	defer func() {
		if recover() == nil {
			t.Error("Fault on resident page did not panic")
		}
	}()
	e.Fault(clk, &costs, id(1))
}

func TestTamperedBackingStoreDetected(t *testing.T) {
	counters := &perf.Counters{}
	backing := mem.NewBackingStore()
	e := New(32, mee.New(1), backing, counters)
	clk := &cycles.Clock{}
	costs := cycles.DefaultCosts()

	f := mustAlloc(t, e, clk, &costs, id(0))
	f.Data[0] = 0x42
	if ok, err := e.EvictPage(clk, &costs, id(0)); err != nil || !ok {
		t.Fatalf("EvictPage: ok=%v err=%v", ok, err)
	}
	sp := backing.Get(id(0))
	if sp == nil {
		t.Fatal("evicted page missing from backing store")
	}
	sp.Ciphertext[0] ^= 1
	if _, _, err := e.Fault(clk, &costs, id(0)); err == nil {
		t.Fatal("tampered page loaded back without error")
	}
}

func TestDroppedSealedPageDetected(t *testing.T) {
	counters := &perf.Counters{}
	backing := mem.NewBackingStore()
	e := New(32, mee.New(1), backing, counters)
	clk := &cycles.Clock{}
	costs := cycles.DefaultCosts()

	mustAlloc(t, e, clk, &costs, id(0))
	if ok, err := e.EvictPage(clk, &costs, id(0)); err != nil || !ok {
		t.Fatalf("EvictPage: ok=%v err=%v", ok, err)
	}
	// The untrusted OS "loses" the sealed page.
	backing.Delete(id(0))
	_, _, err := e.Fault(clk, &costs, id(0))
	if !errors.Is(err, ErrPageLost) {
		t.Fatalf("Fault after dropped page: err=%v, want ErrPageLost", err)
	}
}

func TestEvictPageNonResident(t *testing.T) {
	e, _, clk, costs := newTestEPC(32)
	if ok, err := e.EvictPage(clk, &costs, id(5)); err != nil || ok {
		t.Fatalf("EvictPage of non-resident page: ok=%v err=%v", ok, err)
	}
}

func TestResizeShrinkAndGrow(t *testing.T) {
	e, counters, clk, costs := newTestEPC(64)
	for vpn := uint64(0); vpn < 64; vpn++ {
		mustAlloc(t, e, clk, &costs, id(vpn))
	}
	if err := e.Resize(clk, &costs, 32); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if e.Capacity() != 32 {
		t.Errorf("capacity = %d, want 32", e.Capacity())
	}
	if e.Resident() > 32 {
		t.Errorf("resident = %d exceeds shrunk capacity", e.Resident())
	}
	if counters.Get(perf.EPCEvictions) < 32 {
		t.Errorf("shrink evicted %d pages, want >= 32", counters.Get(perf.EPCEvictions))
	}
	if counters.Get(perf.EPCResizes) != 1 {
		t.Errorf("EPCResizes = %d, want 1", counters.Get(perf.EPCResizes))
	}
	// Every surviving resident page must still be found, and evicted
	// ones must load back intact.
	for vpn := uint64(0); vpn < 64; vpn++ {
		if _, ok := e.Lookup(id(vpn)); !ok {
			if _, _, err := e.Fault(clk, &costs, id(vpn)); err != nil {
				t.Fatalf("fault after shrink (vpn %d): %v", vpn, err)
			}
		}
	}
	if err := e.Resize(clk, &costs, 96); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if e.Capacity() != 96 {
		t.Errorf("capacity = %d, want 96", e.Capacity())
	}
	for vpn := uint64(100); vpn < 140; vpn++ {
		mustAlloc(t, e, clk, &costs, id(vpn))
	}
	if counters.Get(perf.EPCResizes) != 2 {
		t.Errorf("EPCResizes = %d, want 2", counters.Get(perf.EPCResizes))
	}
}

func TestResizeClampsToMinimum(t *testing.T) {
	e, _, clk, costs := newTestEPC(64)
	if err := e.Resize(clk, &costs, 1); err != nil {
		t.Fatalf("resize: %v", err)
	}
	if e.Capacity() != MinCapacity {
		t.Errorf("capacity = %d, want MinCapacity %d", e.Capacity(), MinCapacity)
	}
}

func TestEPCMLookup(t *testing.T) {
	e, _, clk, costs := newTestEPC(32)
	mustAlloc(t, e, clk, &costs, id(9))
	ent := e.EPCMLookup(id(9))
	if !ent.Valid || ent.Owner != 1 || ent.VPN != 9 {
		t.Errorf("EPCM entry = %+v", ent)
	}
	if e.EPCMLookup(id(10)).Valid {
		t.Error("EPCM entry valid for non-resident page")
	}
}

func TestEvictHookFires(t *testing.T) {
	e, _, clk, costs := newTestEPC(32)
	var evicted []mem.PageID
	e.SetEvictHook(func(pid mem.PageID) { evicted = append(evicted, pid) })
	for vpn := uint64(0); vpn <= 32; vpn++ {
		mustAlloc(t, e, clk, &costs, id(vpn))
	}
	if len(evicted) != BatchEvictPages {
		t.Errorf("hook fired %d times, want %d", len(evicted), BatchEvictPages)
	}
}

func TestOpStats(t *testing.T) {
	e, _, clk, costs := newTestEPC(32)
	for vpn := uint64(0); vpn <= 40; vpn++ {
		mustAlloc(t, e, clk, &costs, id(vpn))
	}
	alloc := e.OpStatsFor(OpAlloc)
	if alloc.Samples != 41 {
		t.Errorf("alloc samples = %d, want 41", alloc.Samples)
	}
	if alloc.MeanCycles() < float64(costs.EPCAlloc) {
		t.Errorf("alloc mean = %v below base cost %d", alloc.MeanCycles(), costs.EPCAlloc)
	}
	ewb := e.OpStatsFor(OpEWB)
	if ewb.Samples == 0 || ewb.Min == 0 || ewb.Max < ewb.Min {
		t.Errorf("ewb stats malformed: %+v", ewb)
	}
	// Figure 7 calibration: mean EWB should sit near 12K cycles and
	// exceed mean ELDU by roughly 16%.
	if m := ewb.MeanCycles(); m < float64(costs.EWBPage) || m > 1.2*float64(costs.EWBPage) {
		t.Errorf("EWB mean = %v, want near %d", m, costs.EWBPage)
	}
	if e.OpStatsFor(OpELDU).Samples != 0 {
		t.Error("phantom ELDU samples")
	}
}

func TestOpStatsEWBELDURatio(t *testing.T) {
	e, _, clk, costs := newTestEPC(32)
	// Drive a thrash pattern so both EWB and ELDU accumulate samples.
	for round := 0; round < 20; round++ {
		for vpn := uint64(0); vpn < 64; vpn++ {
			if _, ok := e.Lookup(id(vpn)); !ok {
				if _, _, err := e.Fault(clk, &costs, id(vpn)); err != nil {
					t.Fatalf("fault: %v", err)
				}
			}
		}
	}
	ewb, eldu := e.OpStatsFor(OpEWB), e.OpStatsFor(OpELDU)
	if ewb.Samples < 100 || eldu.Samples < 100 {
		t.Fatalf("not enough samples: ewb=%d eldu=%d", ewb.Samples, eldu.Samples)
	}
	ratio := ewb.MeanCycles() / eldu.MeanCycles()
	if ratio < 1.10 || ratio > 1.25 {
		t.Errorf("EWB/ELDU mean ratio = %.3f, want ~1.16 (paper Appendix A)", ratio)
	}
}

func TestTimeline(t *testing.T) {
	e, _, clk, costs := newTestEPC(32)
	e.EnableTimeline(clk, 4)
	for vpn := uint64(0); vpn < 40; vpn++ {
		mustAlloc(t, e, clk, &costs, id(vpn))
	}
	tl := e.Timeline()
	if len(tl) == 0 {
		t.Fatal("no timeline samples")
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].Cycle < tl[i-1].Cycle || tl[i].Allocs < tl[i-1].Allocs {
			t.Fatal("timeline is not monotone")
		}
	}
}

func TestRemoveEnclave(t *testing.T) {
	e, _, clk, costs := newTestEPC(32)
	mustAlloc(t, e, clk, &costs, mem.PageID{Enclave: 1, VPN: 0})
	mustAlloc(t, e, clk, &costs, mem.PageID{Enclave: 2, VPN: 0})
	e.RemoveEnclave(1)
	if _, ok := e.Lookup(mem.PageID{Enclave: 1, VPN: 0}); ok {
		t.Error("enclave 1 page survived RemoveEnclave")
	}
	if _, ok := e.Lookup(mem.PageID{Enclave: 2, VPN: 0}); !ok {
		t.Error("enclave 2 page was removed")
	}
}

func TestRemovePage(t *testing.T) {
	e, _, clk, costs := newTestEPC(32)
	mustAlloc(t, e, clk, &costs, id(3))
	e.Remove(id(3))
	if _, ok := e.Lookup(id(3)); ok {
		t.Error("page survived Remove")
	}
	// Removed page faults back as a fresh (zero) page.
	_, loaded, err := e.Fault(clk, &costs, id(3))
	if err != nil || loaded {
		t.Errorf("fault after Remove: loaded=%v err=%v", loaded, err)
	}
}

func TestMinimumCapacity(t *testing.T) {
	e := New(1, mee.New(1), mem.NewBackingStore(), &perf.Counters{})
	if e.Capacity() < BatchEvictPages+1 {
		t.Errorf("capacity = %d, must exceed one eviction batch", e.Capacity())
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		OpAlloc: "sgx_alloc_page",
		OpEWB:   "sgx_ewb",
		OpELDU:  "sgx_eldu",
		OpFault: "sgx_do_fault",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(op), op.String(), want)
		}
	}
}
