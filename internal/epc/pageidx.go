package epc

import "sgxgauge/internal/mem"

// pageIdx maps resident PageIDs to slot indices. It replaces a Go map
// on the EPC's hottest paths (every page walk, fault and eviction
// probes it): open addressing with linear probing and backward-shift
// deletion keeps a lookup to one hash and, at the enforced load
// factor, one or two cache-line touches. The table never iterates —
// the EPC walks its slot array when it needs deterministic order — so
// the only operations are get, put, del and len.
type pageIdx struct {
	ids  []mem.PageID
	idxs []int32 // slot index of ids[i]; -1 marks an empty cell
	mask uint64
	n    int
}

// newPageIdx sizes the table for up to capacity live entries at a
// load factor of at most ½ (the capacity is fixed by the EPC size, so
// the table never needs to grow mid-run).
func newPageIdx(capacity int) *pageIdx {
	size := 16
	for size < 2*capacity {
		size *= 2
	}
	p := &pageIdx{
		ids:  make([]mem.PageID, size),
		idxs: make([]int32, size),
		mask: uint64(size - 1),
	}
	for i := range p.idxs {
		p.idxs[i] = -1
	}
	return p
}

func hashPageID(id mem.PageID) uint64 {
	h := id.VPN*0x9e3779b97f4a7c15 ^ uint64(id.Enclave)*0xc2b2ae3d27d4eb4f
	return h ^ h>>29
}

func (p *pageIdx) len() int { return p.n }

// get returns the slot index stored for id.
func (p *pageIdx) get(id mem.PageID) (int, bool) {
	i := hashPageID(id) & p.mask
	for p.idxs[i] >= 0 {
		if p.ids[i] == id {
			return int(p.idxs[i]), true
		}
		i = (i + 1) & p.mask
	}
	return 0, false
}

// put inserts or updates id's slot index.
func (p *pageIdx) put(id mem.PageID, idx int) {
	i := hashPageID(id) & p.mask
	for p.idxs[i] >= 0 {
		if p.ids[i] == id {
			p.idxs[i] = int32(idx)
			return
		}
		i = (i + 1) & p.mask
	}
	if 2*(p.n+1) > len(p.idxs) {
		// The EPC never holds more pages than the capacity the table
		// was sized for; hitting this means a bookkeeping bug, not
		// load.
		panic("epc: pageIdx over capacity")
	}
	p.ids[i] = id
	p.idxs[i] = int32(idx)
	p.n++
}

// verIdx maps each page that has ever been sealed out to the version
// of its most recent seal. Same open-addressing scheme as pageIdx,
// but growable (the set of ever-evicted pages is not bounded by the
// EPC capacity) and with version 0 marking an empty cell — sealed
// versions start at 1, so 0 never collides with a live entry. get on
// a missing id returns 0, matching the Go-map semantics the EPC's
// version bookkeeping was written against.
type verIdx struct {
	ids  []mem.PageID
	vers []uint64 // vers[i] == 0 marks an empty cell
	mask uint64
	n    int
}

func newVerIdx() *verIdx {
	return &verIdx{
		ids:  make([]mem.PageID, 64),
		vers: make([]uint64, 64),
		mask: 63,
	}
}

// get returns the stored version for id, or 0 when absent.
func (p *verIdx) get(id mem.PageID) uint64 {
	i := hashPageID(id) & p.mask
	for p.vers[i] != 0 {
		if p.ids[i] == id {
			return p.vers[i]
		}
		i = (i + 1) & p.mask
	}
	return 0
}

// set inserts or updates id's version. v must be non-zero.
func (p *verIdx) set(id mem.PageID, v uint64) {
	if v == 0 {
		panic("epc: verIdx version 0")
	}
	i := hashPageID(id) & p.mask
	for p.vers[i] != 0 {
		if p.ids[i] == id {
			p.vers[i] = v
			return
		}
		i = (i + 1) & p.mask
	}
	if 2*(p.n+1) > len(p.vers) {
		p.grow()
		i = hashPageID(id) & p.mask
		for p.vers[i] != 0 {
			i = (i + 1) & p.mask
		}
	}
	p.ids[i] = id
	p.vers[i] = v
	p.n++
}

// grow doubles the table and reinserts every live entry.
func (p *verIdx) grow() {
	oldIDs, oldVers := p.ids, p.vers
	size := 2 * len(oldVers)
	p.ids = make([]mem.PageID, size)
	p.vers = make([]uint64, size)
	p.mask = uint64(size - 1)
	for k, v := range oldVers {
		if v == 0 {
			continue
		}
		i := hashPageID(oldIDs[k]) & p.mask
		for p.vers[i] != 0 {
			i = (i + 1) & p.mask
		}
		p.ids[i] = oldIDs[k]
		p.vers[i] = v
	}
}

// del removes id, if present, with backward-shift compaction.
func (p *verIdx) del(id mem.PageID) {
	i := hashPageID(id) & p.mask
	for {
		if p.vers[i] == 0 {
			return
		}
		if p.ids[i] == id {
			break
		}
		i = (i + 1) & p.mask
	}
	p.n--
	for {
		p.vers[i] = 0
		j := i
		for {
			j = (j + 1) & p.mask
			if p.vers[j] == 0 {
				return
			}
			k := hashPageID(p.ids[j]) & p.mask
			if (j-k)&p.mask >= (j-i)&p.mask {
				p.ids[i] = p.ids[j]
				p.vers[i] = p.vers[j]
				i = j
				break
			}
		}
	}
}

// dropEnclave removes every entry belonging to the enclave. Matches
// are collected before deletion because backward-shift compaction
// moves entries during a sweep. The (possibly grown) scratch slice is
// returned so the caller can reuse its capacity.
func (p *verIdx) dropEnclave(enclave uint32, scratch []mem.PageID) []mem.PageID {
	scratch = scratch[:0]
	for i, v := range p.vers {
		if v != 0 && p.ids[i].Enclave == enclave {
			scratch = append(scratch, p.ids[i])
		}
	}
	for _, id := range scratch {
		p.del(id)
	}
	return scratch
}

// del removes id, compacting the probe cluster (backward-shift
// deletion) so lookups never need tombstones.
func (p *pageIdx) del(id mem.PageID) {
	i := hashPageID(id) & p.mask
	for {
		if p.idxs[i] < 0 {
			return // not present
		}
		if p.ids[i] == id {
			break
		}
		i = (i + 1) & p.mask
	}
	p.n--
	for {
		p.idxs[i] = -1
		j := i
		for {
			j = (j + 1) & p.mask
			if p.idxs[j] < 0 {
				return
			}
			// Entry j may move into the hole at i only if its home
			// cell is not cyclically inside (i, j] — the standard
			// linear-probing invariant.
			k := hashPageID(p.ids[j]) & p.mask
			if (j-k)&p.mask >= (j-i)&p.mask {
				p.ids[i] = p.ids[j]
				p.idxs[i] = p.idxs[j]
				i = j
				break
			}
		}
	}
}
