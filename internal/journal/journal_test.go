package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

func testSpecWire(t *testing.T, seed int64) harness.SpecWire {
	t.Helper()
	w, err := harness.Spec{Workload: suite.Empty(), Mode: sgx.Vanilla, Size: workloads.Low, EPCPages: 1024, Seed: seed}.Wire()
	if err != nil {
		t.Fatalf("Wire: %v", err)
	}
	return w
}

func testKey(t *testing.T, seed int64) string {
	t.Helper()
	k, err := harness.SpecKey(harness.Spec{Workload: suite.Empty(), Mode: sgx.Vanilla, Size: workloads.Low, EPCPages: 1024, Seed: seed})
	if err != nil {
		t.Fatalf("SpecKey: %v", err)
	}
	return k.String()
}

func mustOpen(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})

	job := Job{
		ID:          "j-roundtrip",
		Kind:        "sweep",
		CreatedUnix: 100,
		Specs:       []harness.SpecWire{testSpecWire(t, 1), testSpecWire(t, 2), testSpecWire(t, 3)},
	}
	if err := j.Begin(job); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := j.Task(job.ID, TaskDone{Index: 0, Key: testKey(t, 1)}); err != nil {
		t.Fatalf("Task: %v", err)
	}
	if err := j.Task(job.ID, TaskDone{Index: 2, Key: testKey(t, 3), Error: "boom"}); err != nil {
		t.Fatalf("Task: %v", err)
	}

	// Reopen cold, as a restart would.
	j2 := mustOpen(t, dir, Options{})
	states, err := j2.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(states) != 1 {
		t.Fatalf("Replay returned %d jobs, want 1", len(states))
	}
	st := states[0]
	if st.Finished {
		t.Fatalf("job marked finished without a done record")
	}
	if st.Job.ID != job.ID || st.Job.Kind != "sweep" || len(st.Job.Specs) != 3 {
		t.Fatalf("job header mangled: %+v", st.Job)
	}
	if len(st.Done) != 2 {
		t.Fatalf("got %d done tasks, want 2", len(st.Done))
	}
	if st.Done[0].Key != testKey(t, 1) {
		t.Fatalf("task 0 key = %q", st.Done[0].Key)
	}
	if st.Done[2].Error != "boom" {
		t.Fatalf("task 2 error = %q, want boom", st.Done[2].Error)
	}
	if got := j2.Stats().Replayed; got != 1 {
		t.Fatalf("replayed counter = %d, want 1", got)
	}
	// Round-tripped specs must resolve back to runnable specs.
	if _, err := st.Job.Specs[0].Spec(); err != nil {
		t.Fatalf("replayed spec does not resolve: %v", err)
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	job := Job{ID: "j-torn", Kind: "sweep", CreatedUnix: 1, Specs: []harness.SpecWire{testSpecWire(t, 1)}}
	if err := j.Begin(job); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := j.Task(job.ID, TaskDone{Index: 0, Key: testKey(t, 1)}); err != nil {
		t.Fatalf("Task: %v", err)
	}
	// Simulate a crash mid-append: half a record, no newline.
	f, err := os.OpenFile(filepath.Join(dir, "jobs", "j-torn.ndjson"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.WriteString(`{"format":1,"type":"task","ind`); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	j2 := mustOpen(t, dir, Options{})
	states, err := j2.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(states) != 1 || len(states[0].Done) != 1 {
		t.Fatalf("torn tail corrupted replay: %d jobs", len(states))
	}
	if got := j2.Stats().Quarantined; got != 0 {
		t.Fatalf("torn tail counted as quarantined (%d); it is the expected crash artifact", got)
	}
}

func TestJournalCorruptRecordQuarantined(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	job := Job{ID: "j-corrupt", Kind: "sweep", CreatedUnix: 1, Specs: []harness.SpecWire{testSpecWire(t, 1), testSpecWire(t, 2)}}
	if err := j.Begin(job); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := j.Task(job.ID, TaskDone{Index: 0, Key: testKey(t, 1)}); err != nil {
		t.Fatalf("Task: %v", err)
	}
	path := filepath.Join(dir, "jobs", "j-corrupt.ndjson")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// A fully-written garbage line and a wrong-format line, both
	// newline-terminated: mid-file corruption, not a torn tail.
	if _, err := f.WriteString("{not json}\n{\"format\":99,\"type\":\"task\",\"index\":1}\n"); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := j.Task(job.ID, TaskDone{Index: 1, Key: testKey(t, 2)}); err != nil {
		t.Fatalf("Task after corruption: %v", err)
	}

	j2 := mustOpen(t, dir, Options{})
	states, err := j2.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(states) != 1 || len(states[0].Done) != 2 {
		t.Fatalf("corrupt records broke surrounding replay: %+v", states)
	}
	if got := j2.Stats().Quarantined; got != 2 {
		t.Fatalf("quarantined counter = %d, want 2", got)
	}
}

func TestJournalUnreadableFileQuarantined(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	good := Job{ID: "j-good", Kind: "run", CreatedUnix: 2, Specs: []harness.SpecWire{testSpecWire(t, 1)}}
	if err := j.Begin(good); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	// A job file with no readable header at all.
	bad := filepath.Join(dir, "jobs", "j-bad.ndjson")
	if err := os.WriteFile(bad, []byte("garbage\n"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	states, err := j.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(states) != 1 || states[0].Job.ID != "j-good" {
		t.Fatalf("replay states = %+v, want only j-good", states)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("bad file still in jobs/: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", "j-bad.ndjson")); err != nil {
		t.Fatalf("bad file not quarantined: %v", err)
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	job := Job{ID: "j-compact", Kind: "sweep", CreatedUnix: 1, Specs: []harness.SpecWire{testSpecWire(t, 1), testSpecWire(t, 2)}}
	if err := j.Begin(job); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	// Duplicate task records, as a crash-replay overlap would produce.
	for i := 0; i < 3; i++ {
		if err := j.Task(job.ID, TaskDone{Index: 0, Key: testKey(t, 1)}); err != nil {
			t.Fatalf("Task: %v", err)
		}
		if err := j.Task(job.ID, TaskDone{Index: 1, Key: testKey(t, 2)}); err != nil {
			t.Fatalf("Task: %v", err)
		}
	}
	if err := j.Finish(job.ID, ""); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "jobs", "j-compact.ndjson"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 4 { // job + 2 tasks + done
		t.Fatalf("compacted file has %d lines, want 4:\n%s", len(lines), data)
	}

	j2 := mustOpen(t, dir, Options{})
	states, err := j2.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(states) != 1 || !states[0].Finished || len(states[0].Done) != 2 {
		t.Fatalf("compacted job replays wrong: %+v", states[0])
	}
	if got := j2.Stats().Replayed; got != 0 {
		t.Fatalf("finished job counted as replayed (%d)", got)
	}
}

func TestJournalPruneFinished(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{KeepFinished: 2})
	ids := []string{"j-a", "j-b", "j-c", "j-d"}
	for i, id := range ids {
		job := Job{ID: id, Kind: "run", CreatedUnix: int64(i + 1), Specs: []harness.SpecWire{testSpecWire(t, int64(i + 1))}}
		if err := j.Begin(job); err != nil {
			t.Fatalf("Begin %s: %v", id, err)
		}
		if id != "j-d" { // j-d stays unfinished
			if err := j.Finish(id, ""); err != nil {
				t.Fatalf("Finish %s: %v", id, err)
			}
		}
	}
	states, err := j.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	var got []string
	for _, s := range states {
		got = append(got, s.Job.ID)
	}
	// Oldest finished (j-a) pruned; unfinished j-d always survives.
	want := []string{"j-b", "j-c", "j-d"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("surviving jobs = %v, want %v", got, want)
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", "j-a.ndjson")); !os.IsNotExist(err) {
		t.Fatalf("pruned job file still present: %v", err)
	}
}

func TestJournalPoisonRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	spec := testSpecWire(t, 9)
	key := testKey(t, 9)
	rec := PoisonRecord{Key: key, Spec: &spec, Attempts: []string{"routed to w1", "worker w1 expired"}}
	if err := j.Poison(rec); err != nil {
		t.Fatalf("Poison: %v", err)
	}
	if err := j.Poison(PoisonRecord{Key: "zz-not-a-key"}); err == nil {
		t.Fatalf("Poison accepted an invalid key")
	}

	j2 := mustOpen(t, dir, Options{})
	got := j2.Poisoned()
	if len(got) != 1 {
		t.Fatalf("reloaded %d poison records, want 1", len(got))
	}
	p, ok := got[key]
	if !ok || len(p.Attempts) != 2 || p.Spec == nil || p.Spec.Workload != spec.Workload {
		t.Fatalf("poison record mangled: %+v", p)
	}
	if j2.Stats().Poisoned != 1 {
		t.Fatalf("poisoned stat = %d, want 1", j2.Stats().Poisoned)
	}
}

func TestJournalRejectsBadIDs(t *testing.T) {
	j := mustOpen(t, t.TempDir(), Options{})
	for _, id := range []string{"", "UPPER", "a/b", "../etc", strings.Repeat("x", 65)} {
		if err := j.Begin(Job{ID: id, Kind: "run"}); err == nil {
			t.Fatalf("Begin accepted id %q", id)
		}
		if err := j.Task(id, TaskDone{}); err == nil {
			t.Fatalf("Task accepted id %q", id)
		}
	}
	if err := j.Begin(Job{ID: "j-nokind"}); err == nil {
		t.Fatalf("Begin accepted a job without a kind")
	}
}

func TestJournalMismatchedHeaderQuarantined(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	if err := j.Begin(Job{ID: "j-real", Kind: "run", CreatedUnix: 1}); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	// Copy the valid file under a different name: header names j-real,
	// file claims j-fake.
	data, err := os.ReadFile(filepath.Join(dir, "jobs", "j-real.ndjson"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs", "j-fake.ndjson"), data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	states, err := j.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(states) != 1 || states[0].Job.ID != "j-real" {
		t.Fatalf("mismatched-header file not quarantined: %+v", states)
	}
}
