// Package journal is the daemon's write-ahead log for accepted work.
//
// Every job the sgxgauged API admits — a /v1/run spec, a /v1/sweep
// batch, a figure render — is recorded here before execution starts,
// and every task completion is appended as it lands, so a crashed
// daemon restarted on the same -journal.dir can re-enqueue exactly
// the work that had not finished. The journal records *intent*, not
// results: result payloads live in the content-addressed store
// (internal/store), and a replayed task whose result is already on
// disk short-circuits through the cache without re-simulating.
//
// The package follows internal/store's durability discipline:
//
//   - One append-only NDJSON file per job under <dir>/jobs/<id>.ndjson.
//     Appends are single write(2) calls of one full line, so a crash
//     can tear at most the final line, which replay tolerates.
//   - Every record carries a versioned envelope ({"format":1,...});
//     records from a different format are skipped, never misread.
//   - Corruption is quarantined, never fatal: a bad record mid-file is
//     skipped (and counted), a file whose job header is unreadable is
//     moved to <dir>/quarantine/ and replay continues with the rest.
//   - Rewrites (compaction) are atomic temp+rename; fsync is opt-in,
//     matching the store's -store.fsync posture.
//
// Finished jobs are compacted — the file is rewritten as one job
// header, one record per distinct task, and a terminal done record —
// and pruned oldest-first beyond Options.KeepFinished, bounding the
// directory at a constant number of files per retired job.
//
// The journal also keeps the poison quarantine: a task that exhausts
// its cluster retry budget is written to <dir>/poisoned/<key>.json
// with its attempt history, and every poisoned key is loaded at Open
// so a restarted coordinator fails the spec fast instead of feeding
// it back to the fleet.
package journal

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sgxgauge/internal/harness"
)

// formatVersion is the record envelope version this build writes.
const formatVersion = 1

// DefaultKeepFinished is how many compacted finished jobs Replay
// retains before pruning oldest-first.
const DefaultKeepFinished = 512

// Options configures a Journal.
type Options struct {
	// Fsync makes every append and compaction sync file and directory
	// before returning, trading append latency for power-loss
	// durability; off, the journal still survives process crashes
	// (the write buffer is the kernel's, not the process's).
	Fsync bool
	// KeepFinished bounds how many finished jobs Replay retains
	// (0 selects DefaultKeepFinished).
	KeepFinished int
}

// Job is the journaled identity of one accepted API job.
type Job struct {
	// ID is the stable job identifier clients reattach by. It is used
	// as a filename stem and must match NewID's alphabet.
	ID string `json:"id"`
	// Kind is the API surface that accepted the job: "run", "sweep"
	// or "figure".
	Kind string `json:"kind"`
	// CreatedUnix orders jobs across restarts (host wall clock,
	// seconds). It is operational metadata only and never touches
	// simulated time.
	CreatedUnix int64 `json:"created_unix"`
	// Specs are the job's tasks in input order, in canonical wire
	// form. Empty for figure jobs.
	Specs []harness.SpecWire `json:"specs,omitempty"`
	// Figure names the experiment for figure jobs.
	Figure string `json:"figure,omitempty"`
}

// TaskDone records one task completion within a job.
type TaskDone struct {
	// Index is the task's position in Job.Specs.
	Index int `json:"index"`
	// Key is the task's canonical cache key (hex), when the spec has
	// one; results for it live in the store under the same key.
	Key string `json:"key,omitempty"`
	// Error carries the task's own failure, if any. A failed task is
	// still done — failures are not re-run by replay.
	Error string `json:"error,omitempty"`
}

// JobState is one job as reconstructed by Replay.
type JobState struct {
	Job Job
	// Done maps task index -> completion record for every task that
	// landed before the crash (or finish).
	Done map[int]TaskDone
	// Finished reports whether a terminal done record was journaled.
	Finished bool
	// Err is the job-level error from the done record, if any.
	Err string
}

// PoisonRecord is one quarantined task in <dir>/poisoned/.
type PoisonRecord struct {
	Format int `json:"format"`
	// Key is the task's canonical cache key (hex).
	Key string `json:"key"`
	// Spec is the poisoned spec in wire form, for postmortems.
	Spec *harness.SpecWire `json:"spec,omitempty"`
	// Attempts is the task's attempt history, oldest first.
	Attempts []string `json:"attempts,omitempty"`
}

// record is the decode union of every journal record type.
type record struct {
	Format int    `json:"format"`
	Type   string `json:"type"`
	Job    *Job   `json:"job,omitempty"`
	Index  int    `json:"index"`
	Key    string `json:"key,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Journal is an open write-ahead log rooted at one directory. Methods
// are safe for concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu sync.Mutex
	// poisoned maps key hex -> quarantine record. guarded by mu
	poisoned map[string]PoisonRecord

	records     atomic.Uint64 // records appended by this process
	replayed    atomic.Uint64 // unfinished jobs returned by Replay
	quarantined atomic.Uint64 // corrupt records skipped or files quarantined
}

// Open opens (creating if needed) the journal rooted at dir and loads
// the poison quarantine.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.KeepFinished <= 0 {
		opts.KeepFinished = DefaultKeepFinished
	}
	for _, sub := range []string{jobsDir, quarantineDir, poisonedDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("journal: create %s: %w", sub, err)
		}
	}
	j := &Journal{dir: dir, opts: opts, poisoned: make(map[string]PoisonRecord)}
	if err := j.loadPoisoned(); err != nil {
		return nil, err
	}
	return j, nil
}

const (
	jobsDir       = "jobs"
	quarantineDir = "quarantine"
	poisonedDir   = "poisoned"
)

// Dir returns the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// NewID returns a fresh job identifier: "j-" plus 12 random bytes in
// hex. IDs double as filename stems, so the alphabet is fixed.
func NewID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform entropy source is
		// broken; there is no meaningful fallback for an identifier
		// that must not collide across restarts.
		panic(fmt.Sprintf("journal: entropy source unavailable: %v", err))
	}
	return "j-" + hex.EncodeToString(b[:])
}

// validID reports whether id is safe to use as a filename stem.
func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
		default:
			return false
		}
	}
	return true
}

func (j *Journal) jobPath(id string) string {
	return filepath.Join(j.dir, jobsDir, id+".ndjson")
}

// Begin journals acceptance of a job. It must be called before any
// Task record for the job, and before the job starts executing — the
// whole point of a write-ahead log.
func (j *Journal) Begin(job Job) error {
	if !validID(job.ID) {
		return fmt.Errorf("journal: invalid job id %q", job.ID)
	}
	if job.Kind == "" {
		return fmt.Errorf("journal: job %s has no kind", job.ID)
	}
	return j.append(job.ID, record{Format: formatVersion, Type: "job", Job: &job})
}

// Task journals one task completion within job id.
func (j *Journal) Task(id string, td TaskDone) error {
	if !validID(id) {
		return fmt.Errorf("journal: invalid job id %q", id)
	}
	return j.append(id, record{Format: formatVersion, Type: "task", Index: td.Index, Key: td.Key, Error: td.Error})
}

// Finish journals job completion (jobErr carries a job-level failure,
// "" for success) and compacts the job file to its canonical minimal
// form. The done record is durable even when compaction fails.
func (j *Journal) Finish(id string, jobErr string) error {
	if !validID(id) {
		return fmt.Errorf("journal: invalid job id %q", id)
	}
	if err := j.append(id, record{Format: formatVersion, Type: "done", Error: jobErr}); err != nil {
		return err
	}
	return j.compact(id)
}

// append writes one record as a single NDJSON line.
func (j *Journal) append(id string, rec record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode %s record: %w", rec.Type, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	f, err := os.OpenFile(j.jobPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open job %s: %w", id, err)
	}
	_, werr := f.Write(append(data, '\n'))
	if werr == nil && j.opts.Fsync {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("journal: append to job %s: %w", id, werr)
	}
	j.records.Add(1)
	return nil
}

// compact rewrites a finished job file as job header + one record per
// distinct task index (sorted) + done record, atomically.
func (j *Journal) compact(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	path := j.jobPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: compact job %s: %w", id, err)
	}
	state, bad := parseJob(data)
	j.quarantined.Add(uint64(bad))
	if state == nil {
		return fmt.Errorf("journal: compact job %s: unreadable job header", id)
	}
	var buf strings.Builder
	writeRec := func(rec record) error {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
		return nil
	}
	if err := writeRec(record{Format: formatVersion, Type: "job", Job: &state.Job}); err != nil {
		return fmt.Errorf("journal: compact job %s: %w", id, err)
	}
	idxs := make([]int, 0, len(state.Done))
	for idx := range state.Done {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		td := state.Done[idx]
		if err := writeRec(record{Format: formatVersion, Type: "task", Index: td.Index, Key: td.Key, Error: td.Error}); err != nil {
			return fmt.Errorf("journal: compact job %s: %w", id, err)
		}
	}
	if err := writeRec(record{Format: formatVersion, Type: "done", Error: state.Err}); err != nil {
		return fmt.Errorf("journal: compact job %s: %w", id, err)
	}
	if err := j.writeAtomic(path, []byte(buf.String())); err != nil {
		return fmt.Errorf("journal: compact job %s: %w", id, err)
	}
	return nil
}

// writeAtomic writes data to path via temp+rename in path's
// directory, with opt-in fsync of both file and directory.
func (j *Journal) writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil && j.opts.Fsync {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		// Best-effort cleanup of the temp file after the real error.
		_ = os.Remove(tmpName)
		return werr
	}
	if j.opts.Fsync {
		return syncDir(dir)
	}
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// parseJob decodes one job file. It returns the reconstructed state
// (nil when no usable job header exists) and how many corrupt records
// were skipped. A torn final line — no trailing newline, produced by
// a crash mid-append — is ignored without counting: it is the
// expected crash artifact, not corruption.
func parseJob(data []byte) (state *JobState, bad int) {
	lines := strings.Split(string(data), "\n")
	torn := ""
	if n := len(lines); n > 0 && lines[n-1] != "" {
		torn = lines[n-1]
		lines = lines[:n-1]
	} else if n > 0 {
		lines = lines[:n-1]
	}
	if torn != "" {
		// A complete JSON record that merely lost its newline still
		// counts; a half-written one is dropped silently.
		var rec record
		if err := json.Unmarshal([]byte(torn), &rec); err == nil {
			lines = append(lines, torn)
		}
	}
	for _, line := range lines {
		if line == "" {
			continue
		}
		var rec record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			bad++
			continue
		}
		if rec.Format != formatVersion {
			bad++
			continue
		}
		switch rec.Type {
		case "job":
			if state != nil || rec.Job == nil || !validID(rec.Job.ID) {
				bad++
				continue
			}
			state = &JobState{Job: *rec.Job, Done: make(map[int]TaskDone)}
		case "task":
			if state == nil {
				bad++
				continue
			}
			state.Done[rec.Index] = TaskDone{Index: rec.Index, Key: rec.Key, Error: rec.Error}
		case "done":
			if state == nil {
				bad++
				continue
			}
			state.Finished = true
			state.Err = rec.Error
		default:
			bad++
		}
	}
	return state, bad
}

// Replay reads every job file, quarantining unreadable ones, prunes
// finished jobs beyond KeepFinished (oldest first), and returns the
// surviving states ordered by creation time then ID. The replayed
// counter reflects the unfinished jobs returned — the ones a caller
// will re-enqueue.
func (j *Journal) Replay() ([]*JobState, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	dir := filepath.Join(j.dir, jobsDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: scan jobs: %w", err)
	}
	var states []*JobState
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".ndjson") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("journal: read %s: %w", name, err)
		}
		state, bad := parseJob(data)
		j.quarantined.Add(uint64(bad))
		if state == nil {
			j.quarantineFile(path)
			continue
		}
		if state.Job.ID+".ndjson" != name {
			// A header naming a different job than its file is as
			// untrustworthy as no header.
			j.quarantineFile(path)
			continue
		}
		states = append(states, state)
	}
	sort.Slice(states, func(a, b int) bool {
		if states[a].Job.CreatedUnix != states[b].Job.CreatedUnix {
			return states[a].Job.CreatedUnix < states[b].Job.CreatedUnix
		}
		return states[a].Job.ID < states[b].Job.ID
	})

	// Prune finished jobs beyond the keep budget, oldest first.
	var finished []*JobState
	for _, s := range states {
		if s.Finished {
			finished = append(finished, s)
		}
	}
	if excess := len(finished) - j.opts.KeepFinished; excess > 0 {
		drop := make(map[string]bool, excess)
		for _, s := range finished[:excess] {
			drop[s.Job.ID] = true
			if err := os.Remove(j.jobPath(s.Job.ID)); err != nil {
				return nil, fmt.Errorf("journal: prune job %s: %w", s.Job.ID, err)
			}
		}
		kept := states[:0]
		for _, s := range states {
			if !drop[s.Job.ID] {
				kept = append(kept, s)
			}
		}
		states = kept
	}
	for _, s := range states {
		if !s.Finished {
			j.replayed.Add(1)
		}
	}
	return states, nil
}

// quarantineFile moves an unreadable job file aside, falling back to
// removal so one stuck file cannot wedge replay forever.
func (j *Journal) quarantineFile(path string) {
	j.quarantined.Add(1)
	dst := filepath.Join(j.dir, quarantineDir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		// Best-effort: the file is already counted and skipped.
		_ = os.Remove(path)
	}
}

// Poison quarantines a task key with its attempt history. The record
// is durable before Poison returns and is reloaded by every future
// Open, so a poisoned spec stays fenced across restarts.
func (j *Journal) Poison(rec PoisonRecord) error {
	if _, err := harness.ParseKey(rec.Key); err != nil {
		return fmt.Errorf("journal: poison: %w", err)
	}
	rec.Format = formatVersion
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("journal: encode poison record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	path := filepath.Join(j.dir, poisonedDir, rec.Key+".json")
	if err := j.writeAtomic(path, append(data, '\n')); err != nil {
		return fmt.Errorf("journal: poison %s: %w", rec.Key, err)
	}
	j.poisoned[rec.Key] = rec
	j.records.Add(1)
	return nil
}

// Poisoned returns a copy of the poison quarantine, keyed by hex key.
func (j *Journal) Poisoned() map[string]PoisonRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]PoisonRecord, len(j.poisoned))
	for k, v := range j.poisoned {
		out[k] = v
	}
	return out
}

// loadPoisoned scans <dir>/poisoned/ at Open, quarantining records
// that no longer decode.
func (j *Journal) loadPoisoned() error {
	dir := filepath.Join(j.dir, poisonedDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("journal: scan poisoned: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("journal: read %s: %w", name, err)
		}
		var rec PoisonRecord
		if derr := json.Unmarshal(data, &rec); derr != nil || rec.Format != formatVersion || rec.Key+".json" != name {
			j.quarantineFile(path)
			continue
		}
		if _, kerr := harness.ParseKey(rec.Key); kerr != nil {
			j.quarantineFile(path)
			continue
		}
		j.poisoned[rec.Key] = rec
	}
	return nil
}

// Stats is a point-in-time snapshot of the journal's counters.
type Stats struct {
	// Records counts records appended by this process (job, task,
	// done and poison records alike).
	Records uint64
	// Replayed counts unfinished jobs returned by Replay — the jobs a
	// restart re-enqueued.
	Replayed uint64
	// Quarantined counts corrupt records skipped and unreadable files
	// moved aside.
	Quarantined uint64
	// Poisoned is the current size of the poison quarantine.
	Poisoned int
}

// Stats returns the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	poisoned := len(j.poisoned)
	j.mu.Unlock()
	return Stats{
		Records:     j.records.Load(),
		Replayed:    j.replayed.Load(),
		Quarantined: j.quarantined.Load(),
		Poisoned:    poisoned,
	}
}
