// Integrity tree: an optional Merkle tree over evicted-page MACs,
// modelling the hardware integrity structures the paper's §2.2
// discusses (and that VAULT [Taassori et al., ASPLOS'18] — cited by
// the paper — redesigns to reduce paging overheads).
//
// With the flat scheme, each sealed page carries an independent MAC
// and a version in trusted metadata. With the tree enabled, the MACs
// are additionally hashed into a binary Merkle tree whose root is held
// in trusted storage: sealing updates a leaf-to-root path, unsealing
// verifies one. The simulator charges a configurable cost per
// non-cached tree level, so enabling the tree makes EWB/ELDU visibly
// more expensive — exactly the overhead VAULT attacks by reducing the
// tree's height.

package mee

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"sgxgauge/internal/mem"
)

// ErrTreeMismatch indicates a Merkle path failed verification: some
// node of the tree (kept in untrusted memory, save for the root) was
// tampered with.
var ErrTreeMismatch = errors.New("mee: integrity-tree verification failed")

// IntegrityTree is a binary Merkle tree over page MACs. Leaves are
// assigned to pages on first eviction. The root and the top
// CachedLevels levels are modeled as residing in trusted/on-die
// storage (no per-access charge); deeper levels live in untrusted
// memory and cost one memory access each to touch.
type IntegrityTree struct {
	// CachedLevels is how many levels from the root are held on-die.
	CachedLevels int

	levels [][]uint64 // levels[0] = leaves ... levels[depth-1] = root level
	leafOf map[mem.PageID]int
	depth  int
	cap    int
}

// NewIntegrityTree builds a tree with capacity for at least capPages
// leaves (rounded up to a power of two) and the given number of
// cached top levels.
func NewIntegrityTree(capPages, cachedLevels int) *IntegrityTree {
	if capPages < 2 {
		capPages = 2
	}
	n := 1
	for n < capPages {
		n *= 2
	}
	t := &IntegrityTree{
		CachedLevels: cachedLevels,
		leafOf:       make(map[mem.PageID]int),
		cap:          n,
	}
	for w := n; w >= 1; w /= 2 {
		t.levels = append(t.levels, make([]uint64, w))
	}
	t.depth = len(t.levels)
	// Initialize internal nodes over the all-zero leaves so fresh
	// paths verify.
	for lvl := 1; lvl < t.depth; lvl++ {
		for i := range t.levels[lvl] {
			t.levels[lvl][i] = nodeHash(t.levels[lvl-1][2*i], t.levels[lvl-1][2*i+1])
		}
	}
	return t
}

// Depth returns the number of tree levels (leaves included).
func (t *IntegrityTree) Depth() int { return t.depth }

// Capacity returns the number of leaves.
func (t *IntegrityTree) Capacity() int { return t.cap }

// UncachedLevels returns how many levels of a path must be fetched
// from untrusted memory (the per-operation traffic the tree adds).
func (t *IntegrityTree) UncachedLevels() int {
	u := t.depth - t.CachedLevels
	if u < 0 {
		return 0
	}
	return u
}

func nodeHash(a, b uint64) uint64 {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], a)
	binary.LittleEndian.PutUint64(buf[8:], b)
	s := sha256.Sum256(buf[:])
	return binary.LittleEndian.Uint64(s[:8])
}

func macLeaf(mac [16]byte) uint64 {
	// Fold the page MAC into the 8-byte leaf, never zero (zero marks
	// an unassigned leaf).
	v := binary.LittleEndian.Uint64(mac[:8])
	if v == 0 {
		v = 1
	}
	return v
}

// leaf assigns (or returns) the leaf index for a page.
func (t *IntegrityTree) leaf(id mem.PageID) (int, error) {
	if i, ok := t.leafOf[id]; ok {
		return i, nil
	}
	i := len(t.leafOf)
	if i >= t.cap {
		return 0, fmt.Errorf("mee: integrity tree full (%d leaves)", t.cap)
	}
	t.leafOf[id] = i
	return i, nil
}

// Update records the MAC of a freshly sealed page, rewriting its
// leaf-to-root path.
func (t *IntegrityTree) Update(id mem.PageID, mac [16]byte) error {
	i, err := t.leaf(id)
	if err != nil {
		return err
	}
	t.levels[0][i] = macLeaf(mac)
	for lvl := 1; lvl < t.depth; lvl++ {
		i /= 2
		t.levels[lvl][i] = nodeHash(t.levels[lvl-1][2*i], t.levels[lvl-1][2*i+1])
	}
	return nil
}

// Verify checks a sealed page's MAC against the tree: the leaf must
// match and the path to the root must be consistent.
func (t *IntegrityTree) Verify(id mem.PageID, mac [16]byte) error {
	i, ok := t.leafOf[id]
	if !ok {
		return fmt.Errorf("mee: page %v has no integrity-tree leaf", id)
	}
	if t.levels[0][i] != macLeaf(mac) {
		return ErrTreeMismatch
	}
	for lvl := 1; lvl < t.depth; lvl++ {
		i /= 2
		if t.levels[lvl][i] != nodeHash(t.levels[lvl-1][2*i], t.levels[lvl-1][2*i+1]) {
			return ErrTreeMismatch
		}
	}
	return nil
}

// CorruptNode flips a bit in an internal node (test hook standing in
// for an untrusted-memory attack on the tree itself).
func (t *IntegrityTree) CorruptNode(level, index int) {
	t.levels[level][index] ^= 1
}
