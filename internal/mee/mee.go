// Package mee implements the Memory Encryption Engine of the simulated
// SGX machine.
//
// The real MEE sits between the LLC and DRAM and transparently
// encrypts EPC traffic; on an EPC eviction (EWB) the page is encrypted
// and MACed, and on load-back (ELDU) it is decrypted and
// integrity-checked (paper §2.2). This package performs that work for
// real: AES-128-CTR for confidentiality, HMAC-SHA-256 for integrity,
// and a per-page version counter for freshness (rollback protection).
//
// It also provides the "sealing" primitive of Appendix E: data
// encrypted under a platform key that only the same platform (here,
// the same Engine) can unseal.
package mee

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"sgxgauge/internal/mem"
)

// Errors returned by integrity verification.
var (
	// ErrMACMismatch indicates the page or sealed blob was tampered
	// with while it resided in untrusted memory.
	ErrMACMismatch = errors.New("mee: MAC verification failed")
	// ErrRollback indicates a stale (replayed) version of the page
	// was presented, violating freshness.
	ErrRollback = errors.New("mee: stale page version (rollback detected)")
)

// Engine is the memory encryption engine. One Engine guards one
// platform; the key is generated at machine boot. Engine methods are
// safe for concurrent use after construction because the key material
// is immutable (cipher instances are created per call).
type Engine struct {
	encKey [16]byte
	macKey [32]byte
}

// New creates an Engine with keys derived deterministically from the
// seed, so simulations are reproducible.
func New(seed uint64) *Engine {
	var e Engine
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	h.Write([]byte("sgxgauge-mee-enc"))
	copy(e.encKey[:], h.Sum(nil))
	h.Reset()
	h.Write(b[:])
	h.Write([]byte("sgxgauge-mee-mac"))
	copy(e.macKey[:], h.Sum(nil))
	return &e
}

// nonce derives the 16-byte CTR IV for a page from its identity and
// version, guaranteeing a unique key stream per (page, version).
func nonce(id mem.PageID, version uint64) [aes.BlockSize]byte {
	var iv [aes.BlockSize]byte
	binary.LittleEndian.PutUint32(iv[0:4], id.Enclave)
	binary.LittleEndian.PutUint64(iv[4:12], id.VPN)
	binary.LittleEndian.PutUint32(iv[12:16], uint32(version))
	return iv
}

// SealPage encrypts and MACs one page frame for eviction to untrusted
// memory. The version must be the page's next (monotonically
// increasing) version number.
func (e *Engine) SealPage(id mem.PageID, version uint64, f *mem.Frame) *mem.SealedPage {
	sp := &mem.SealedPage{ID: id, Version: version}
	block, err := aes.NewCipher(e.encKey[:])
	if err != nil {
		panic(fmt.Sprintf("mee: aes init: %v", err)) // key length is fixed; cannot happen
	}
	iv := nonce(id, version)
	cipher.NewCTR(block, iv[:]).XORKeyStream(sp.Ciphertext[:], f.Data[:])
	sp.MAC = e.pageMAC(id, version, &sp.Ciphertext)
	return sp
}

// UnsealPage decrypts sp into f after verifying its MAC and checking
// that its version matches expectVersion (freshness).
func (e *Engine) UnsealPage(sp *mem.SealedPage, expectVersion uint64, f *mem.Frame) error {
	if sp.Version != expectVersion {
		return ErrRollback
	}
	want := e.pageMAC(sp.ID, sp.Version, &sp.Ciphertext)
	if !hmac.Equal(want[:], sp.MAC[:]) {
		return ErrMACMismatch
	}
	block, err := aes.NewCipher(e.encKey[:])
	if err != nil {
		panic(fmt.Sprintf("mee: aes init: %v", err))
	}
	iv := nonce(sp.ID, sp.Version)
	cipher.NewCTR(block, iv[:]).XORKeyStream(f.Data[:], sp.Ciphertext[:])
	return nil
}

func (e *Engine) pageMAC(id mem.PageID, version uint64, ct *[mem.PageSize]byte) [32]byte {
	h := hmac.New(sha256.New, e.macKey[:])
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:4], id.Enclave)
	binary.LittleEndian.PutUint64(hdr[4:12], id.VPN)
	binary.LittleEndian.PutUint64(hdr[12:20], version)
	h.Write(hdr[:])
	h.Write(ct[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// sealOverhead is the number of bytes Seal adds to the plaintext: a
// 16-byte IV slot plus a 32-byte MAC.
const sealOverhead = 48

// Seal encrypts arbitrary data under the platform key, binding it to
// the given enclave identity (Appendix E: sealed data "can only be
// unsealed on the same platform" and optionally by the same enclave).
// context must be unique per (enclave, plaintext slot) — e.g. a file
// chunk identifier — so that key streams are never reused.
func (e *Engine) Seal(enclaveID uint32, context uint64, plaintext []byte) []byte {
	out := make([]byte, sealOverhead+len(plaintext))
	iv := out[:aes.BlockSize]
	binary.LittleEndian.PutUint32(iv[0:4], enclaveID)
	binary.LittleEndian.PutUint64(iv[4:12], context)
	iv[12] = 0x5e // domain separator vs page nonces
	block, err := aes.NewCipher(e.encKey[:])
	if err != nil {
		panic(fmt.Sprintf("mee: aes init: %v", err))
	}
	cipher.NewCTR(block, iv).XORKeyStream(out[aes.BlockSize:aes.BlockSize+len(plaintext)], plaintext)
	h := hmac.New(sha256.New, e.macKey[:])
	h.Write(out[:aes.BlockSize+len(plaintext)])
	copy(out[aes.BlockSize+len(plaintext):], h.Sum(nil))
	return out
}

// Unseal reverses Seal, verifying integrity, the enclave binding and
// the context.
func (e *Engine) Unseal(enclaveID uint32, context uint64, sealed []byte) ([]byte, error) {
	if len(sealed) < sealOverhead {
		return nil, ErrMACMismatch
	}
	n := len(sealed) - sealOverhead
	iv := sealed[:aes.BlockSize]
	if binary.LittleEndian.Uint32(iv[0:4]) != enclaveID ||
		binary.LittleEndian.Uint64(iv[4:12]) != context {
		return nil, ErrMACMismatch
	}
	h := hmac.New(sha256.New, e.macKey[:])
	h.Write(sealed[:aes.BlockSize+n])
	if !hmac.Equal(h.Sum(nil), sealed[aes.BlockSize+n:]) {
		return nil, ErrMACMismatch
	}
	out := make([]byte, n)
	block, err := aes.NewCipher(e.encKey[:])
	if err != nil {
		panic(fmt.Sprintf("mee: aes init: %v", err))
	}
	cipher.NewCTR(block, iv).XORKeyStream(out, sealed[aes.BlockSize:aes.BlockSize+n])
	return out, nil
}
