// Package mee implements the Memory Encryption Engine of the simulated
// SGX machine.
//
// The real MEE sits between the LLC and DRAM and transparently
// encrypts EPC traffic; on an EPC eviction (EWB) the page is encrypted
// and MACed, and on load-back (ELDU) it is decrypted and
// integrity-checked (paper §2.2). This package performs that work for
// real: AES-128-GCM over the page — counter-mode confidentiality plus
// a Carter-Wegman (GHASH) authentication tag, the same MAC family the
// hardware MEE uses — and a per-page version counter for freshness
// (rollback protection). The page identity and version are bound into
// both the nonce and the additional authenticated data.
//
// It also provides the "sealing" primitive of Appendix E: data
// encrypted under a platform key that only the same platform (here,
// the same Engine) can unseal.
package mee

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"sgxgauge/internal/mem"
)

// Errors returned by integrity verification.
var (
	// ErrMACMismatch indicates the page or sealed blob was tampered
	// with while it resided in untrusted memory.
	ErrMACMismatch = errors.New("mee: MAC verification failed")
	// ErrRollback indicates a stale (replayed) version of the page
	// was presented, violating freshness.
	ErrRollback = errors.New("mee: stale page version (rollback detected)")
)

// Engine is the memory encryption engine. One Engine guards one
// platform; the key is generated at machine boot. Engine methods are
// safe for concurrent use after construction because the key material
// is immutable (cipher instances are created per call).
type Engine struct {
	encKey [16]byte
	macKey [32]byte
}

// New creates an Engine with keys derived deterministically from the
// seed, so simulations are reproducible.
func New(seed uint64) *Engine {
	var e Engine
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	h.Write([]byte("sgxgauge-mee-enc"))
	copy(e.encKey[:], h.Sum(nil))
	h.Reset()
	h.Write(b[:])
	h.Write([]byte("sgxgauge-mee-mac"))
	copy(e.macKey[:], h.Sum(nil))
	return &e
}

// nonce derives the 16-byte GCM nonce for a page from its identity
// and version; every (page, version) pair gets a distinct nonce so key
// streams and tags are never reused.
func nonce(id mem.PageID, version uint64) [aes.BlockSize]byte {
	var iv [aes.BlockSize]byte
	binary.LittleEndian.PutUint32(iv[0:4], id.Enclave)
	binary.LittleEndian.PutUint64(iv[4:12], id.VPN)
	binary.LittleEndian.PutUint32(iv[12:16], uint32(version))
	return iv
}

// pageHeader is the additional authenticated data bound into a page's
// GCM tag: full identity and full 64-bit version.
func pageHeader(id mem.PageID, version uint64) [20]byte {
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:4], id.Enclave)
	binary.LittleEndian.PutUint64(hdr[4:12], id.VPN)
	binary.LittleEndian.PutUint64(hdr[12:20], version)
	return hdr
}

// pageAEAD builds the page AEAD: AES-128-GCM with the engine's full
// 16-byte page nonce.
func (e *Engine) pageAEAD() cipher.AEAD {
	block, err := aes.NewCipher(e.encKey[:])
	if err != nil {
		panic(fmt.Sprintf("mee: aes init: %v", err)) // key length is fixed; cannot happen
	}
	aead, err := cipher.NewGCMWithNonceSize(block, aes.BlockSize)
	if err != nil {
		panic(fmt.Sprintf("mee: gcm init: %v", err)) // nonce size is fixed; cannot happen
	}
	return aead
}

// SealPage encrypts and MACs one page frame for eviction to untrusted
// memory. The version must be the page's next (monotonically
// increasing) version number.
func (e *Engine) SealPage(id mem.PageID, version uint64, f *mem.Frame) *mem.SealedPage {
	return sealPage(e.pageAEAD(), &[mem.PageSize + 16]byte{}, id, version, f)
}

// UnsealPage decrypts sp into f after verifying its MAC and checking
// that its version matches expectVersion (freshness).
func (e *Engine) UnsealPage(sp *mem.SealedPage, expectVersion uint64, f *mem.Frame) error {
	return unsealPage(e.pageAEAD(), &[mem.PageSize + 16]byte{}, sp, expectVersion, f)
}

// sealPage runs one GCM seal through the given AEAD into the caller's
// scratch buffer (ciphertext ∥ tag), then splits it into the sealed
// page. Batch passes a long-lived AEAD and scratch; Engine builds
// per-call ones. The output depends only on the keys and inputs, so
// both produce byte-identical sealed pages.
func sealPage(aead cipher.AEAD, scratch *[mem.PageSize + 16]byte, id mem.PageID, version uint64, f *mem.Frame) *mem.SealedPage {
	sp := &mem.SealedPage{}
	sealPageInto(aead, scratch, sp, id, version, f)
	return sp
}

// sealPageInto seals into a caller-provided SealedPage, overwriting
// every field — the destination may be recycled storage with stale
// contents (mem.BackingStore.Reserve).
func sealPageInto(aead cipher.AEAD, scratch *[mem.PageSize + 16]byte, sp *mem.SealedPage, id mem.PageID, version uint64, f *mem.Frame) {
	sp.ID = id
	sp.Version = version
	iv := nonce(id, version)
	hdr := pageHeader(id, version)
	out := aead.Seal(scratch[:0], iv[:], f.Data[:], hdr[:])
	copy(sp.Ciphertext[:], out[:mem.PageSize])
	copy(sp.MAC[:], out[mem.PageSize:])
}

// unsealPage is sealPage's inverse: rollback check, then GCM open
// (which verifies the tag over ciphertext, identity and version before
// releasing any plaintext).
func unsealPage(aead cipher.AEAD, scratch *[mem.PageSize + 16]byte, sp *mem.SealedPage, expectVersion uint64, f *mem.Frame) error {
	if sp.Version != expectVersion {
		return ErrRollback
	}
	iv := nonce(sp.ID, sp.Version)
	hdr := pageHeader(sp.ID, sp.Version)
	n := copy(scratch[:], sp.Ciphertext[:])
	copy(scratch[n:], sp.MAC[:])
	if _, err := aead.Open(f.Data[:0], iv[:], scratch[:], hdr[:]); err != nil {
		return ErrMACMismatch
	}
	return nil
}

// sealOverhead is the number of bytes Seal adds to the plaintext: a
// 16-byte IV slot plus a 32-byte MAC.
const sealOverhead = 48

// Seal encrypts arbitrary data under the platform key, binding it to
// the given enclave identity (Appendix E: sealed data "can only be
// unsealed on the same platform" and optionally by the same enclave).
// context must be unique per (enclave, plaintext slot) — e.g. a file
// chunk identifier — so that key streams are never reused.
func (e *Engine) Seal(enclaveID uint32, context uint64, plaintext []byte) []byte {
	out := make([]byte, sealOverhead+len(plaintext))
	iv := out[:aes.BlockSize]
	binary.LittleEndian.PutUint32(iv[0:4], enclaveID)
	binary.LittleEndian.PutUint64(iv[4:12], context)
	iv[12] = 0x5e // domain separator vs page nonces
	block, err := aes.NewCipher(e.encKey[:])
	if err != nil {
		panic(fmt.Sprintf("mee: aes init: %v", err))
	}
	cipher.NewCTR(block, iv).XORKeyStream(out[aes.BlockSize:aes.BlockSize+len(plaintext)], plaintext)
	h := hmac.New(sha256.New, e.macKey[:])
	h.Write(out[:aes.BlockSize+len(plaintext)])
	copy(out[aes.BlockSize+len(plaintext):], h.Sum(nil))
	return out
}

// Unseal reverses Seal, verifying integrity, the enclave binding and
// the context.
func (e *Engine) Unseal(enclaveID uint32, context uint64, sealed []byte) ([]byte, error) {
	if len(sealed) < sealOverhead {
		return nil, ErrMACMismatch
	}
	n := len(sealed) - sealOverhead
	iv := sealed[:aes.BlockSize]
	if binary.LittleEndian.Uint32(iv[0:4]) != enclaveID ||
		binary.LittleEndian.Uint64(iv[4:12]) != context {
		return nil, ErrMACMismatch
	}
	h := hmac.New(sha256.New, e.macKey[:])
	h.Write(sealed[:aes.BlockSize+n])
	if !hmac.Equal(h.Sum(nil), sealed[aes.BlockSize+n:]) {
		return nil, ErrMACMismatch
	}
	out := make([]byte, n)
	block, err := aes.NewCipher(e.encKey[:])
	if err != nil {
		panic(fmt.Sprintf("mee: aes init: %v", err))
	}
	cipher.NewCTR(block, iv).XORKeyStream(out, sealed[aes.BlockSize:aes.BlockSize+n])
	return out, nil
}
