package mee

import (
	"bytes"
	"testing"
	"testing/quick"

	"sgxgauge/internal/mem"
)

func TestPageSealUnsealRoundTrip(t *testing.T) {
	e := New(42)
	id := mem.PageID{Enclave: 1, VPN: 0x700001}
	var f mem.Frame
	for i := range f.Data {
		f.Data[i] = byte(i * 7)
	}
	sp := e.SealPage(id, 1, &f)
	if bytes.Equal(sp.Ciphertext[:256], f.Data[:256]) {
		t.Fatal("ciphertext equals plaintext")
	}
	var out mem.Frame
	if err := e.UnsealPage(sp, 1, &out); err != nil {
		t.Fatalf("UnsealPage: %v", err)
	}
	if out.Data != f.Data {
		t.Fatal("round trip corrupted the page")
	}
}

func TestPageMACTamperDetected(t *testing.T) {
	e := New(42)
	id := mem.PageID{Enclave: 1, VPN: 5}
	var f mem.Frame
	f.Data[100] = 0x5A
	sp := e.SealPage(id, 1, &f)
	sp.Ciphertext[100] ^= 1 // untrusted memory flips a bit
	var out mem.Frame
	if err := e.UnsealPage(sp, 1, &out); err != ErrMACMismatch {
		t.Fatalf("tampered page unsealed: err=%v, want ErrMACMismatch", err)
	}
}

func TestPageRollbackDetected(t *testing.T) {
	e := New(42)
	id := mem.PageID{Enclave: 1, VPN: 5}
	var f mem.Frame
	f.Data[0] = 1
	old := e.SealPage(id, 1, &f)
	f.Data[0] = 2
	_ = e.SealPage(id, 2, &f)
	// Replaying the version-1 page against expected version 2 is a
	// freshness violation.
	var out mem.Frame
	if err := e.UnsealPage(old, 2, &out); err != ErrRollback {
		t.Fatalf("stale page accepted: err=%v, want ErrRollback", err)
	}
}

func TestDifferentVersionsDifferentCiphertext(t *testing.T) {
	e := New(42)
	id := mem.PageID{Enclave: 1, VPN: 5}
	var f mem.Frame
	a := e.SealPage(id, 1, &f)
	b := e.SealPage(id, 2, &f)
	if a.Ciphertext == b.Ciphertext {
		t.Fatal("same key stream reused across versions")
	}
}

func TestDifferentPagesDifferentCiphertext(t *testing.T) {
	e := New(42)
	var f mem.Frame
	a := e.SealPage(mem.PageID{Enclave: 1, VPN: 5}, 1, &f)
	b := e.SealPage(mem.PageID{Enclave: 1, VPN: 6}, 1, &f)
	c := e.SealPage(mem.PageID{Enclave: 2, VPN: 5}, 1, &f)
	if a.Ciphertext == b.Ciphertext || a.Ciphertext == c.Ciphertext {
		t.Fatal("key stream reused across pages or enclaves")
	}
}

func TestEnginesAreDeterministicPerSeed(t *testing.T) {
	id := mem.PageID{Enclave: 1, VPN: 5}
	var f mem.Frame
	f.Data[9] = 9
	a := New(7).SealPage(id, 1, &f)
	b := New(7).SealPage(id, 1, &f)
	c := New(8).SealPage(id, 1, &f)
	if a.Ciphertext != b.Ciphertext || a.MAC != b.MAC {
		t.Fatal("same seed produced different engines")
	}
	if a.Ciphertext == c.Ciphertext {
		t.Fatal("different seeds share a key")
	}
}

func TestCrossEngineUnsealFails(t *testing.T) {
	id := mem.PageID{Enclave: 1, VPN: 5}
	var f, out mem.Frame
	sp := New(7).SealPage(id, 1, &f)
	if err := New(8).UnsealPage(sp, 1, &out); err != ErrMACMismatch {
		t.Fatalf("foreign platform unsealed the page: %v", err)
	}
}

func TestSealUnsealBlob(t *testing.T) {
	e := New(1)
	plain := []byte("the quick brown fox")
	sealed := e.Seal(9, 1234, plain)
	if bytes.Contains(sealed, plain) {
		t.Fatal("sealed blob leaks plaintext")
	}
	out, err := e.Unseal(9, 1234, sealed)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if !bytes.Equal(out, plain) {
		t.Fatalf("round trip = %q, want %q", out, plain)
	}
}

func TestUnsealWrongEnclaveOrContext(t *testing.T) {
	e := New(1)
	sealed := e.Seal(9, 1234, []byte("data"))
	if _, err := e.Unseal(10, 1234, sealed); err == nil {
		t.Error("unsealed under wrong enclave")
	}
	if _, err := e.Unseal(9, 1235, sealed); err == nil {
		t.Error("unsealed under wrong context")
	}
}

func TestUnsealTamperAndTruncation(t *testing.T) {
	e := New(1)
	sealed := e.Seal(9, 1, []byte("data"))
	sealed[len(sealed)-1] ^= 1
	if _, err := e.Unseal(9, 1, sealed); err != ErrMACMismatch {
		t.Errorf("tampered blob unsealed: %v", err)
	}
	if _, err := e.Unseal(9, 1, []byte("short")); err != ErrMACMismatch {
		t.Errorf("truncated blob unsealed: %v", err)
	}
}

func TestSealEmptyPayload(t *testing.T) {
	e := New(1)
	out, err := e.Unseal(3, 0, e.Seal(3, 0, nil))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty payload round trip: %v, %d bytes", err, len(out))
	}
}

func TestSealRoundTripProperty(t *testing.T) {
	e := New(99)
	f := func(enclave uint32, context uint64, data []byte) bool {
		out, err := e.Unseal(enclave, context, e.Seal(enclave, context, data))
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageRoundTripProperty(t *testing.T) {
	e := New(99)
	f := func(enclave uint32, vpn uint64, version uint64, seedByte byte) bool {
		id := mem.PageID{Enclave: enclave, VPN: vpn}
		var in, out mem.Frame
		for i := range in.Data {
			in.Data[i] = seedByte ^ byte(i)
		}
		sp := e.SealPage(id, version, &in)
		return e.UnsealPage(sp, version, &out) == nil && in.Data == out.Data
	}
	cfg := &quick.Config{MaxCount: 25} // pages are 4 KiB; keep it quick
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
