package mee

import (
	"bytes"
	"errors"
	"testing"

	"sgxgauge/internal/mem"
)

func testFrame(fill byte) *mem.Frame {
	f := &mem.Frame{}
	for i := range f.Data {
		f.Data[i] = fill ^ byte(i*7)
	}
	return f
}

// TestBatchSealIdentical proves a Batch produces byte-identical sealed
// pages to the per-call engine path, including when the cached cipher
// and HMAC state are reused across several pages — the whole point of
// the batch is that only host-side setup is amortized.
func TestBatchSealIdentical(t *testing.T) {
	e := New(42)
	b := e.NewBatch()
	for i := 0; i < 5; i++ {
		id := mem.PageID{Enclave: uint32(i%2 + 1), VPN: uint64(0x1000 + i)}
		ver := uint64(i + 1)
		f := testFrame(byte(i))
		single := e.SealPage(id, ver, f)
		batched := b.SealPage(id, ver, f)
		if single.ID != batched.ID || single.Version != batched.Version {
			t.Fatalf("page %d: metadata mismatch", i)
		}
		if !bytes.Equal(single.Ciphertext[:], batched.Ciphertext[:]) {
			t.Fatalf("page %d: ciphertext differs between single and batched seal", i)
		}
		if single.MAC != batched.MAC {
			t.Fatalf("page %d: MAC differs between single and batched seal", i)
		}
	}
}

// TestBatchUnsealMatchesEngine checks the batched unseal round-trips
// and reports the same typed errors as the per-call path.
func TestBatchUnsealMatchesEngine(t *testing.T) {
	e := New(7)
	b := e.NewBatch()
	id := mem.PageID{Enclave: 3, VPN: 0x44}
	f := testFrame(0xa5)
	sp := e.SealPage(id, 9, f)

	var out mem.Frame
	if err := b.UnsealPage(sp, 9, &out); err != nil {
		t.Fatalf("batched unseal: %v", err)
	}
	if !bytes.Equal(out.Data[:], f.Data[:]) {
		t.Fatal("batched unseal produced wrong plaintext")
	}

	if err := b.UnsealPage(sp, 8, &out); !errors.Is(err, ErrRollback) {
		t.Fatalf("stale version: got %v, want ErrRollback", err)
	}
	tampered := *sp
	tampered.Ciphertext[100] ^= 1
	if err := b.UnsealPage(&tampered, 9, &out); !errors.Is(err, ErrMACMismatch) {
		t.Fatalf("tampered page: got %v, want ErrMACMismatch", err)
	}
	// The batch state must be unpoisoned by the failures.
	if err := b.UnsealPage(sp, 9, &out); err != nil {
		t.Fatalf("unseal after failures: %v", err)
	}
}

// TestSealBatchVerifyBatch runs the multi-page entry points against
// per-page loops.
func TestSealBatchVerifyBatch(t *testing.T) {
	e := New(99)
	const n = BatchPagesForTest
	ids := make([]mem.PageID, n)
	vers := make([]uint64, n)
	frames := make([]*mem.Frame, n)
	for i := range ids {
		ids[i] = mem.PageID{Enclave: 1, VPN: uint64(i)}
		vers[i] = uint64(i + 1)
		frames[i] = testFrame(byte(i * 3))
	}
	out := make([]*mem.SealedPage, n)
	e.SealBatch(ids, vers, frames, out)
	for i := range out {
		want := e.SealPage(ids[i], vers[i], frames[i])
		if !bytes.Equal(want.Ciphertext[:], out[i].Ciphertext[:]) || want.MAC != out[i].MAC {
			t.Fatalf("page %d: SealBatch output differs from SealPage", i)
		}
	}

	dst := make([]*mem.Frame, n)
	for i := range dst {
		dst[i] = &mem.Frame{}
	}
	if err := e.VerifyBatch(out, vers, dst); err != nil {
		t.Fatalf("VerifyBatch: %v", err)
	}
	for i := range dst {
		if !bytes.Equal(dst[i].Data[:], frames[i].Data[:]) {
			t.Fatalf("page %d: VerifyBatch plaintext mismatch", i)
		}
	}

	// A failure mid-batch stops the pass and leaves later frames
	// untouched.
	out[1].MAC[0] ^= 1
	for i := range dst {
		dst[i] = &mem.Frame{}
	}
	err := e.VerifyBatch(out, vers, dst)
	if !errors.Is(err, ErrMACMismatch) {
		t.Fatalf("tampered batch: got %v, want ErrMACMismatch", err)
	}
	if dst[2].Data != (mem.Frame{}).Data {
		t.Fatal("VerifyBatch wrote past the failing page")
	}
}

// BatchPagesForTest is the batch width the tests exercise; matches the
// EPC's 16-page EWB batches.
const BatchPagesForTest = 16
