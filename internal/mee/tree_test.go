package mee

import (
	"testing"
	"testing/quick"

	"sgxgauge/internal/mem"
)

func mac(b byte) [16]byte {
	var m [16]byte
	for i := range m {
		m[i] = b
	}
	return m
}

func TestTreeGeometry(t *testing.T) {
	tr := NewIntegrityTree(100, 4)
	if tr.Capacity() != 128 {
		t.Errorf("capacity = %d, want 128", tr.Capacity())
	}
	if tr.Depth() != 8 { // 128,64,32,16,8,4,2,1
		t.Errorf("depth = %d, want 8", tr.Depth())
	}
	if tr.UncachedLevels() != 4 {
		t.Errorf("uncached = %d, want 4", tr.UncachedLevels())
	}
	// Fully cached tree charges nothing.
	if NewIntegrityTree(4, 100).UncachedLevels() != 0 {
		t.Error("over-cached tree reports uncached levels")
	}
}

func TestUpdateVerifyRoundTrip(t *testing.T) {
	tr := NewIntegrityTree(64, 2)
	id := mem.PageID{Enclave: 1, VPN: 42}
	if err := tr.Update(id, mac(7)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Verify(id, mac(7)); err != nil {
		t.Fatalf("fresh path failed: %v", err)
	}
	// Wrong MAC must fail.
	if err := tr.Verify(id, mac(8)); err != ErrTreeMismatch {
		t.Fatalf("wrong MAC verified: %v", err)
	}
	// Update then verify new value.
	if err := tr.Update(id, mac(9)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Verify(id, mac(9)); err != nil {
		t.Fatalf("updated path failed: %v", err)
	}
	// The stale MAC no longer verifies (replay protection at the
	// tree level).
	if err := tr.Verify(id, mac(7)); err != ErrTreeMismatch {
		t.Fatalf("stale MAC verified: %v", err)
	}
}

func TestVerifyUnknownPage(t *testing.T) {
	tr := NewIntegrityTree(64, 2)
	if err := tr.Verify(mem.PageID{Enclave: 1, VPN: 1}, mac(1)); err == nil {
		t.Fatal("unknown page verified")
	}
}

func TestNodeCorruptionDetected(t *testing.T) {
	tr := NewIntegrityTree(64, 2)
	// Two pages sharing ancestry.
	a := mem.PageID{Enclave: 1, VPN: 0}
	b := mem.PageID{Enclave: 1, VPN: 1}
	if err := tr.Update(a, mac(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Update(b, mac(2)); err != nil {
		t.Fatal(err)
	}
	// Corrupt an internal node on their shared path.
	tr.CorruptNode(1, 0)
	if err := tr.Verify(a, mac(1)); err != ErrTreeMismatch {
		t.Fatalf("corrupted internal node not detected for a: %v", err)
	}
	if err := tr.Verify(b, mac(2)); err != ErrTreeMismatch {
		t.Fatalf("corrupted internal node not detected for b: %v", err)
	}
}

func TestSiblingUpdatesDoNotInterfere(t *testing.T) {
	tr := NewIntegrityTree(64, 2)
	ids := make([]mem.PageID, 16)
	for i := range ids {
		ids[i] = mem.PageID{Enclave: 1, VPN: uint64(i)}
		if err := tr.Update(ids[i], mac(byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Re-update one leaf; every other page must still verify.
	if err := tr.Update(ids[5], mac(99)); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		want := mac(byte(i + 1))
		if i == 5 {
			want = mac(99)
		}
		if err := tr.Verify(id, want); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
	}
}

func TestTreeFull(t *testing.T) {
	tr := NewIntegrityTree(2, 1)
	for i := 0; i < tr.Capacity(); i++ {
		if err := tr.Update(mem.PageID{Enclave: 1, VPN: uint64(i)}, mac(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Update(mem.PageID{Enclave: 1, VPN: 999}, mac(1)); err == nil {
		t.Fatal("over-capacity update accepted")
	}
}

func TestTreeRoundTripProperty(t *testing.T) {
	tr := NewIntegrityTree(256, 3)
	seen := map[mem.PageID][16]byte{}
	f := func(vpn uint16, b byte) bool {
		id := mem.PageID{Enclave: 1, VPN: uint64(vpn % 200)}
		m := mac(b)
		if err := tr.Update(id, m); err != nil {
			return false
		}
		seen[id] = m
		// Every page updated so far still verifies with its latest MAC.
		for pid, pm := range seen {
			if tr.Verify(pid, pm) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
