package mee

import (
	"bytes"
	"errors"
	"testing"

	"sgxgauge/internal/mem"
)

// FuzzSealUnseal drives the sealing primitive with arbitrary
// identities, payloads and corruptions: an untouched blob must round
// trip exactly, and any corrupted byte must surface as ErrMACMismatch
// — never a panic, and never silently wrong plaintext.
func FuzzSealUnseal(f *testing.F) {
	f.Add(uint64(1), uint32(1), uint64(0), []byte("hello enclave"), -1, byte(0))
	f.Add(uint64(2), uint32(7), uint64(99), []byte{}, -1, byte(0))
	f.Add(uint64(3), uint32(0), uint64(5), []byte("tamper me"), 0, byte(0x80))
	f.Add(uint64(4), uint32(42), uint64(7), bytes.Repeat([]byte{0xAA}, 300), 20, byte(1))

	f.Fuzz(func(t *testing.T, seed uint64, enclaveID uint32, context uint64,
		plaintext []byte, corruptAt int, flip byte) {
		e := New(seed)
		sealed := e.Seal(enclaveID, context, plaintext)

		if corruptAt < 0 || flip == 0 {
			// Clean round trip.
			got, err := e.Unseal(enclaveID, context, sealed)
			if err != nil {
				t.Fatalf("unseal of untampered blob: %v", err)
			}
			if !bytes.Equal(got, plaintext) {
				t.Fatalf("round trip mangled data: got %x, want %x", got, plaintext)
			}
			// Wrong identity or context must be rejected.
			if _, err := e.Unseal(enclaveID+1, context, sealed); !errors.Is(err, ErrMACMismatch) {
				t.Fatalf("unseal under wrong enclave: err=%v, want ErrMACMismatch", err)
			}
			if _, err := e.Unseal(enclaveID, context+1, sealed); !errors.Is(err, ErrMACMismatch) {
				t.Fatalf("unseal under wrong context: err=%v, want ErrMACMismatch", err)
			}
			return
		}

		// Corrupt one byte anywhere in the blob (IV, ciphertext or
		// MAC): unseal must reject it.
		sealed[corruptAt%len(sealed)] ^= flip
		if _, err := e.Unseal(enclaveID, context, sealed); !errors.Is(err, ErrMACMismatch) {
			t.Fatalf("unseal of corrupted blob: err=%v, want ErrMACMismatch", err)
		}
	})
}

// FuzzUnsealPage covers the page path the EPC driver uses on
// load-back: ciphertext or MAC corruption must yield ErrMACMismatch,
// a version mismatch must yield ErrRollback, and nothing panics.
func FuzzUnsealPage(f *testing.F) {
	f.Add(uint64(1), uint32(1), uint64(3), uint64(2), uint64(2), -1, byte(0))
	f.Add(uint64(2), uint32(9), uint64(0), uint64(1), uint64(2), -1, byte(0))
	f.Add(uint64(3), uint32(4), uint64(8), uint64(5), uint64(5), 100, byte(0xFF))
	f.Add(uint64(4), uint32(4), uint64(8), uint64(5), uint64(5), mem.PageSize+3, byte(1))

	f.Fuzz(func(t *testing.T, seed uint64, enclave uint32, vpn uint64,
		version, expectVersion uint64, corruptAt int, flip byte) {
		e := New(seed)
		id := mem.PageID{Enclave: enclave, VPN: vpn}
		var src mem.Frame
		for i := range src.Data {
			src.Data[i] = byte(i) ^ byte(vpn)
		}
		sp := e.SealPage(id, version, &src)

		corrupted := corruptAt >= 0 && flip != 0
		if corrupted {
			// Offset spans ciphertext and MAC.
			off := corruptAt % (mem.PageSize + len(sp.MAC))
			if off < mem.PageSize {
				sp.Ciphertext[off] ^= flip
			} else {
				sp.MAC[off-mem.PageSize] ^= flip
			}
		}

		var dst mem.Frame
		err := e.UnsealPage(sp, expectVersion, &dst)
		switch {
		case version != expectVersion:
			if !errors.Is(err, ErrRollback) {
				t.Fatalf("version %d vs expected %d: err=%v, want ErrRollback", version, expectVersion, err)
			}
		case corrupted:
			if !errors.Is(err, ErrMACMismatch) {
				t.Fatalf("corrupted page: err=%v, want ErrMACMismatch", err)
			}
		default:
			if err != nil {
				t.Fatalf("clean page rejected: %v", err)
			}
			if dst.Data != src.Data {
				t.Fatal("page round trip mangled data")
			}
		}
	})
}
