package mee

import (
	"crypto/cipher"
	"fmt"

	"sgxgauge/internal/mem"
)

// Batch amortizes the per-page crypto setup of the MEE across many
// page operations: the AES key schedule, GHASH subkey and scratch
// buffer are built once and reused for every page sealed or unsealed
// through the batch. The output is byte-identical to the per-call
// Engine.SealPage/UnsealPage — only the host-side setup cost is shared
// — so an eviction storm can run its whole 16-page EWB batch (and a
// fault storm its load-backs) through one Batch without changing any
// simulated or cryptographic result.
//
// A Batch is not safe for concurrent use; the EPC drives one from its
// single simulated-machine goroutine.
type Batch struct {
	e       *Engine
	aead    cipher.AEAD
	scratch [mem.PageSize + 16]byte
}

// NewBatch returns a Batch sharing the engine's keys.
func (e *Engine) NewBatch() *Batch {
	return &Batch{e: e, aead: e.pageAEAD()}
}

// SealPage is Engine.SealPage through the batch's cached AEAD; the
// sealed page is byte-identical.
func (b *Batch) SealPage(id mem.PageID, version uint64, f *mem.Frame) *mem.SealedPage {
	return sealPage(b.aead, &b.scratch, id, version, f)
}

// SealPageInto is SealPage writing into a caller-provided (possibly
// recycled) SealedPage. Every field is overwritten; the result is
// byte-identical to SealPage.
func (b *Batch) SealPageInto(sp *mem.SealedPage, id mem.PageID, version uint64, f *mem.Frame) {
	sealPageInto(b.aead, &b.scratch, sp, id, version, f)
}

// UnsealPage is Engine.UnsealPage through the batch's cached state:
// identical verification outcome and plaintext.
func (b *Batch) UnsealPage(sp *mem.SealedPage, expectVersion uint64, f *mem.Frame) error {
	return unsealPage(b.aead, &b.scratch, sp, expectVersion, f)
}

// SealBatch seals len(ids) pages in one pass, amortizing cipher and
// MAC setup across the whole eviction storm. ids, versions, frames and
// out must have equal length; out[i] receives the sealed page for
// ids[i], byte-identical to SealPage(ids[i], versions[i], frames[i]).
// A non-nil out[i] is reused as the destination (every field
// overwritten); a nil out[i] gets a fresh allocation.
func (e *Engine) SealBatch(ids []mem.PageID, versions []uint64, frames []*mem.Frame, out []*mem.SealedPage) {
	if len(versions) != len(ids) || len(frames) != len(ids) || len(out) != len(ids) {
		panic(fmt.Sprintf("mee: SealBatch length mismatch (%d ids, %d versions, %d frames, %d out)",
			len(ids), len(versions), len(frames), len(out)))
	}
	b := e.NewBatch()
	for i, id := range ids {
		if out[i] != nil {
			b.SealPageInto(out[i], id, versions[i], frames[i])
		} else {
			out[i] = b.SealPage(id, versions[i], frames[i])
		}
	}
}

// VerifyBatch decrypts and integrity-checks len(sps) sealed pages in
// one pass (a whole load storm), writing plaintexts into frames. It
// stops at the first failure, returning which page failed and why;
// frames past that index are untouched.
func (e *Engine) VerifyBatch(sps []*mem.SealedPage, expectVersions []uint64, frames []*mem.Frame) error {
	if len(expectVersions) != len(sps) || len(frames) != len(sps) {
		panic(fmt.Sprintf("mee: VerifyBatch length mismatch (%d pages, %d versions, %d frames)",
			len(sps), len(expectVersions), len(frames)))
	}
	b := e.NewBatch()
	for i, sp := range sps {
		if err := b.UnsealPage(sp, expectVersions[i], frames[i]); err != nil {
			return fmt.Errorf("page %v: %w", sp.ID, err)
		}
	}
	return nil
}
