// Package stats provides the aggregation tools the paper's evaluation
// uses: geometric means across workloads (§5.2) and the linear
// regression that ranks performance counters by their influence on
// run time (Appendix C, Table 5).
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the regression system has no unique
// solution.
var ErrSingular = errors.New("stats: singular system (collinear or insufficient samples)")

// GeoMean returns the geometric mean of xs. All values must be
// positive; it panics otherwise (overhead ratios are positive by
// construction).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Standardize maps xs to zero mean and unit variance. Constant columns
// map to all zeros.
func Standardize(xs []float64) []float64 {
	m, sd := Mean(xs), StdDev(xs)
	out := make([]float64, len(xs))
	if sd == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}

// LinReg fits y = X*beta by least squares over standardized columns,
// returning one coefficient per column of X. The magnitude of each
// coefficient reflects the importance of that predictor for the
// response — exactly how Table 5 ranks the hardware counters ("the
// magnitude of these coefficients is correlated with the importance of
// that metric in determining the execution time").
//
// X is sample-major: X[i][j] is predictor j of sample i. A small ridge
// term keeps near-collinear counter columns solvable, as is standard
// when regressing correlated hardware events.
func LinReg(X [][]float64, y []float64) ([]float64, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: LinReg needs matching non-empty X (%d) and y (%d)", n, len(y))
	}
	p := len(X[0])
	for i, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("stats: LinReg row %d has %d columns, want %d", i, len(row), p)
		}
	}
	// Standardize columns and response.
	cols := make([][]float64, p)
	for j := 0; j < p; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = X[i][j]
		}
		cols[j] = Standardize(col)
	}
	ys := Standardize(y)

	// Normal equations with ridge: (A + lambda*I) beta = b.
	const lambda = 1e-6
	A := make([][]float64, p)
	b := make([]float64, p)
	for j := 0; j < p; j++ {
		A[j] = make([]float64, p)
		for k := 0; k < p; k++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += cols[j][i] * cols[k][i]
			}
			A[j][k] = s
		}
		A[j][j] += lambda * float64(n)
		s := 0.0
		for i := 0; i < n; i++ {
			s += cols[j][i] * ys[i]
		}
		b[j] = s
	}
	beta, err := solve(A, b)
	if err != nil {
		return nil, err
	}
	return beta, nil
}

// solve performs Gaussian elimination with partial pivoting on the
// (small) dense system A x = b, destroying A and b.
func solve(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(A[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		A[col], A[pivot] = A[pivot], A[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := A[r][col] / A[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= A[r][c] * x[c]
		}
		x[r] = s / A[r][r]
	}
	return x, nil
}

// Ratio returns a/b, treating a zero denominator the way the harness
// treats counter baselines: 1 when both are zero, else the numerator.
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return a
	}
	return a / b
}
