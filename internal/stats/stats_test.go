package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); !almostEqual(got, 4, 1e-12) {
		t.Errorf("GeoMean(2,8) = %v", got)
	}
	if got := GeoMean([]float64{3}); !almostEqual(got, 3, 1e-12) {
		t.Errorf("GeoMean(3) = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GeoMean(0) did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanBetweenMinAndMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-9 && v < 1e9 && !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		lo, hi := xs[0], xs[0]
		for _, v := range xs {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-input Mean/StdDev nonzero")
	}
}

func TestStandardize(t *testing.T) {
	out := Standardize([]float64{1, 2, 3, 4, 5})
	if !almostEqual(Mean(out), 0, 1e-12) || !almostEqual(StdDev(out), 1, 1e-12) {
		t.Errorf("standardized mean/sd = %v/%v", Mean(out), StdDev(out))
	}
	// Constant column maps to zeros, not NaN.
	for _, v := range Standardize([]float64{7, 7, 7}) {
		if v != 0 {
			t.Error("constant column not zeroed")
		}
	}
}

func TestLinRegRecoversPlantedModel(t *testing.T) {
	// y = 3*x0 + 0*x1 + 1*x2 (+noise): coefficient ranking must put
	// x0 first and x1 last, matching how Table 5 ranks counters.
	rng := rand.New(rand.NewSource(5))
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		x0, x1, x2 := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		X = append(X, []float64{x0, x1, x2})
		y = append(y, 3*x0+x2+0.01*rng.NormFloat64())
	}
	beta, err := LinReg(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if !(math.Abs(beta[0]) > math.Abs(beta[2]) && math.Abs(beta[2]) > math.Abs(beta[1])) {
		t.Errorf("coefficient ranking wrong: %v", beta)
	}
	if math.Abs(beta[1]) > 0.05 {
		t.Errorf("irrelevant predictor got weight %v", beta[1])
	}
}

func TestLinRegHandlesCorrelatedColumns(t *testing.T) {
	// Nearly-collinear predictors (like walk cycles vs dTLB misses)
	// must not blow up thanks to the ridge term.
	rng := rand.New(rand.NewSource(5))
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		x := rng.NormFloat64()
		X = append(X, []float64{x, x + 1e-9*rng.NormFloat64()})
		y = append(y, 2*x)
	}
	beta, err := LinReg(X, y)
	if err != nil {
		t.Fatalf("collinear system failed: %v", err)
	}
	for _, b := range beta {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			t.Fatalf("non-finite coefficient: %v", beta)
		}
	}
}

func TestLinRegInputValidation(t *testing.T) {
	if _, err := LinReg(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := LinReg([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := LinReg([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("Ratio(6,3)")
	}
	if Ratio(0, 0) != 1 {
		t.Error("Ratio(0,0)")
	}
	if Ratio(5, 0) != 5 {
		t.Error("Ratio(5,0)")
	}
}
