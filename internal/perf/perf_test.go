package perf

import (
	"strings"
	"sync"
	"testing"
)

func TestAddIncGet(t *testing.T) {
	var c Counters
	c.Inc(DTLBMisses)
	c.Add(DTLBMisses, 9)
	c.Add(WalkCycles, 120)
	if got := c.Get(DTLBMisses); got != 10 {
		t.Errorf("DTLBMisses = %d, want 10", got)
	}
	if got := c.Get(WalkCycles); got != 120 {
		t.Errorf("WalkCycles = %d, want 120", got)
	}
	if got := c.Get(LLCMisses); got != 0 {
		t.Errorf("LLCMisses = %d, want 0", got)
	}
}

func TestReset(t *testing.T) {
	var c Counters
	for _, e := range Events() {
		c.Add(e, 7)
	}
	c.Reset()
	for _, e := range Events() {
		if c.Get(e) != 0 {
			t.Errorf("%v = %d after reset, want 0", e, c.Get(e))
		}
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Counters
	c.Add(ECalls, 5)
	before := c.Snapshot()
	c.Add(ECalls, 3)
	c.Add(OCalls, 2)
	delta := c.Snapshot().Sub(before)
	if delta.Get(ECalls) != 3 {
		t.Errorf("ECalls delta = %d, want 3", delta.Get(ECalls))
	}
	if delta.Get(OCalls) != 2 {
		t.Errorf("OCalls delta = %d, want 2", delta.Get(OCalls))
	}
}

func TestSnapshotSubClampsUnderflow(t *testing.T) {
	var a, b Snapshot
	a[0] = 5
	b[0] = 10
	d := a.Sub(b)
	if d[0] != 0 {
		t.Errorf("underflowing Sub = %d, want 0", d[0])
	}
}

func TestSnapshotAdd(t *testing.T) {
	var a, b Snapshot
	a[int(AEXs)] = 3
	b[int(AEXs)] = 4
	if got := a.Add(b).Get(AEXs); got != 7 {
		t.Errorf("Add = %d, want 7", got)
	}
}

func TestRatioSemantics(t *testing.T) {
	var s, base Snapshot
	s[int(LLCMisses)] = 30
	base[int(LLCMisses)] = 10
	if got := s.Ratio(base, LLCMisses); got != 3 {
		t.Errorf("ratio = %v, want 3", got)
	}
	// Zero base, zero numerator: unchanged -> 1.
	if got := s.Ratio(base, PageFaults); got != 1 {
		t.Errorf("0/0 ratio = %v, want 1", got)
	}
	// Zero base, nonzero numerator: grew from nothing -> raw value.
	s[int(PageFaults)] = 42
	if got := s.Ratio(base, PageFaults); got != 42 {
		t.Errorf("42/0 ratio = %v, want 42", got)
	}
}

func TestEventNamesUniqueAndParseable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Events() {
		name := e.String()
		if name == "" || strings.HasPrefix(name, "event(") {
			t.Fatalf("event %d has no name", int(e))
		}
		if seen[name] {
			t.Fatalf("duplicate event name %q", name)
		}
		seen[name] = true
		parsed, ok := ParseEvent(name)
		if !ok || parsed != e {
			t.Errorf("ParseEvent(%q) = %v,%v; want %v,true", name, parsed, ok, e)
		}
	}
	if _, ok := ParseEvent("no-such-event"); ok {
		t.Error("ParseEvent accepted an unknown name")
	}
}

func TestUnknownEventString(t *testing.T) {
	if got := Event(999).String(); got != "event(999)" {
		t.Errorf("unknown event renders %q", got)
	}
}

func TestSnapshotString(t *testing.T) {
	var s Snapshot
	s[int(ECalls)] = 2
	s[int(AEXs)] = 1
	str := s.String()
	if !strings.Contains(str, "ecalls=2") || !strings.Contains(str, "aex-exits=1") {
		t.Errorf("String() = %q, missing fields", str)
	}
	if strings.Contains(str, "ocalls") {
		t.Errorf("String() = %q includes zero counters", str)
	}
}

func TestTopRatios(t *testing.T) {
	var s, base Snapshot
	base[int(DTLBMisses)] = 1
	base[int(WalkCycles)] = 1
	base[int(LLCMisses)] = 1
	s[int(DTLBMisses)] = 5
	s[int(WalkCycles)] = 100
	s[int(LLCMisses)] = 10
	order := s.TopRatios(base, []Event{DTLBMisses, WalkCycles, LLCMisses})
	if order[0] != WalkCycles || order[1] != LLCMisses || order[2] != DTLBMisses {
		t.Errorf("TopRatios order = %v", order)
	}
}

func TestConcurrentAdds(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc(Accesses)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(Accesses); got != 8000 {
		t.Errorf("concurrent adds = %d, want 8000", got)
	}
}

func TestShardSumOnRead(t *testing.T) {
	var c Counters
	c.Add(ECalls, 10)
	s1 := c.NewShard()
	s2 := c.NewShard()
	s1.Add(ECalls, 5)
	s2.Inc(ECalls)
	s2.Add(OCalls, 3)

	// Unflushed deltas are visible through every read form.
	if got := c.Get(ECalls); got != 16 {
		t.Errorf("Get(ECalls) = %d, want 16 (10 atomic + 5 + 1 shard)", got)
	}
	snap := c.Snapshot()
	if snap.Get(ECalls) != 16 || snap.Get(OCalls) != 3 {
		t.Errorf("Snapshot = ECalls %d / OCalls %d, want 16 / 3",
			snap.Get(ECalls), snap.Get(OCalls))
	}

	// Flushing moves the deltas without changing observed values.
	s1.Flush()
	if got := c.Get(ECalls); got != 16 {
		t.Errorf("Get(ECalls) after Flush = %d, want 16", got)
	}
	s1.Add(ECalls, 2)
	if got := c.Get(ECalls); got != 18 {
		t.Errorf("Get(ECalls) after post-Flush Add = %d, want 18", got)
	}
	s1.Release()
	s2.Release()
	if got := c.Get(ECalls); got != 18 {
		t.Errorf("Get(ECalls) after Release = %d, want 18", got)
	}
	if got := c.Get(OCalls); got != 3 {
		t.Errorf("Get(OCalls) after Release = %d, want 3", got)
	}
}

func TestShardReleaseUnregisters(t *testing.T) {
	var c Counters
	s := c.NewShard()
	s.Inc(AEXs)
	s.Release()
	// A released shard no longer contributes to reads; its value
	// lives in the atomic bank now. A second registered shard must
	// be unaffected by the removal.
	s2 := c.NewShard()
	s2.Add(AEXs, 4)
	if got := c.Get(AEXs); got != 5 {
		t.Errorf("Get(AEXs) = %d, want 5", got)
	}
	s2.Release()
}

func TestResetClearsShardDeltas(t *testing.T) {
	var c Counters
	s := c.NewShard()
	defer s.Release()
	c.Add(PageFaults, 7)
	s.Add(PageFaults, 9)
	c.Reset()
	if got := c.Get(PageFaults); got != 0 {
		t.Errorf("Get after Reset = %d, want 0", got)
	}
	// The shard remains usable after a reset.
	s.Inc(PageFaults)
	if got := c.Get(PageFaults); got != 1 {
		t.Errorf("Get after post-Reset Inc = %d, want 1", got)
	}
}
