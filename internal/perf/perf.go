// Package perf implements the performance-counter set used throughout
// the simulated machine.
//
// The counters mirror the hardware events SGXGauge reads with perf
// (dTLB misses, page-walk cycles, stall cycles, LLC misses, page
// faults) plus the SGX driver events the paper instruments directly
// (EPC evictions, EPC load-backs, ECALLs, OCALLs, AEX exits).
package perf

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Event identifies one performance counter.
type Event int

// The counter set. The first group corresponds to hardware PMU events,
// the second to SGX driver events, the third to bookkeeping values used
// by the harness.
const (
	DTLBMisses Event = iota
	WalkCycles
	StallCycles
	LLCMisses
	LLCHits
	PageFaults
	EPCEvictions
	EPCLoadBacks
	EPCAllocs
	ECalls
	OCalls
	AEXs
	TLBFlushes
	SwitchlessCalls
	Syscalls
	BytesRead
	BytesWritten
	Accesses
	L1Hits
	L1Misses
	// InjectedAEXs counts forced asynchronous exits raised by the
	// chaos injector (a subset of AEXs).
	InjectedAEXs
	// IntegrityAborts counts enclave aborts caused by integrity
	// failures: tampered, replayed, or dropped sealed pages.
	IntegrityAborts
	// EPCResizes counts chaos-injected EPC capacity changes (the OS
	// ballooning the EPC mid-run).
	EPCResizes
	// TransitionFaults counts injected transient ECALL/OCALL
	// transition failures.
	TransitionFaults
	// BalloonFailures counts chaos-injected EPC resizes that failed
	// partway (the balloon could not evict enough pages, or the
	// integrity structures rejected an eviction). Failures during an
	// enclave access also abort the enclave; failures during
	// untrusted accesses are visible only through this counter.
	BalloonFailures
	// ExtentRuns counts extent executions issued through the
	// Thread.RunExtent family, regardless of whether the machine
	// charged them in bulk or replayed them per access.
	ExtentRuns
	// ExtentAccesses counts the elements those extents carried
	// (before page splitting); the per-chunk traffic still lands in
	// Accesses as usual, so ExtentAccesses/Accesses measures how much
	// of a run's traffic arrived pre-compiled.
	ExtentAccesses
	numEvents
)

// NumEvents is the number of distinct counters.
const NumEvents = int(numEvents)

var eventNames = [...]string{
	DTLBMisses:      "dtlb-misses",
	WalkCycles:      "walk-cycles",
	StallCycles:     "stall-cycles",
	LLCMisses:       "llc-misses",
	LLCHits:         "llc-hits",
	PageFaults:      "page-faults",
	EPCEvictions:    "epc-evictions",
	EPCLoadBacks:    "epc-loadbacks",
	EPCAllocs:       "epc-allocs",
	ECalls:          "ecalls",
	OCalls:          "ocalls",
	AEXs:            "aex-exits",
	TLBFlushes:      "tlb-flushes",
	SwitchlessCalls: "switchless-calls",
	Syscalls:        "syscalls",
	BytesRead:       "bytes-read",
	BytesWritten:    "bytes-written",
	Accesses:         "accesses",
	L1Hits:           "l1-hits",
	L1Misses:         "l1-misses",
	InjectedAEXs:     "injected-aexs",
	IntegrityAborts:  "integrity-aborts",
	EPCResizes:       "epc-resizes",
	TransitionFaults: "transition-faults",
	BalloonFailures:  "balloon-failures",
	ExtentRuns:       "extent-runs",
	ExtentAccesses:   "extent-accesses",
}

// String returns the perf-style name of the event.
func (e Event) String() string {
	if e < 0 || int(e) >= NumEvents {
		return fmt.Sprintf("event(%d)", int(e))
	}
	return eventNames[e]
}

// Counters is a live counter bank. The zero value is ready to use.
//
// Direct Add/Inc calls are atomic and may come from any goroutine.
// Hot-path increments instead go through per-thread Shards (see
// NewShard): plain uint64 deltas owned by one simulated thread, summed
// back in by every observation (Get/Snapshot). Observations therefore
// remain exact at all times without the hot path paying one atomic
// RMW per event — but reading a counter bank with live shards is only
// safe from the goroutine driving its machine, matching the machine's
// own single-threaded discipline.
type Counters struct {
	v [numEvents]atomic.Uint64

	mu     sync.Mutex
	shards []*Shard // guarded by mu
}

// Add increments event e by n.
func (c *Counters) Add(e Event, n uint64) { c.v[e].Add(n) }

// Inc increments event e by one.
func (c *Counters) Inc(e Event) { c.v[e].Add(1) }

// Get returns the current value of event e, including unflushed shard
// deltas.
func (c *Counters) Get(e Event) uint64 {
	v := c.v[e].Load()
	c.mu.Lock()
	for _, s := range c.shards {
		v += s.d[e]
	}
	c.mu.Unlock()
	return v
}

// Reset zeroes every counter, including shard deltas.
func (c *Counters) Reset() {
	for i := range c.v {
		c.v[i].Store(0)
	}
	c.mu.Lock()
	for _, s := range c.shards {
		s.d = [numEvents]uint64{}
	}
	c.mu.Unlock()
}

// Snapshot captures the current value of every counter, including
// unflushed shard deltas.
func (c *Counters) Snapshot() Snapshot {
	var s Snapshot
	for i := range c.v {
		s[i] = c.v[i].Load()
	}
	c.mu.Lock()
	for _, sh := range c.shards {
		for i := range sh.d {
			s[i] += sh.d[i]
		}
	}
	c.mu.Unlock()
	return s
}

// Shard is a bank of plain (non-atomic) counter deltas owned by one
// simulated thread. Incrementing a shard is a single add with no
// memory-ordering traffic — the per-access fast path uses it instead
// of hammering the shared atomic bank. Deltas stay visible through
// the owning Counters' Get/Snapshot at every instant and are folded
// into the atomic bank at transition/sync points (Flush) and when the
// thread retires (Release).
type Shard struct {
	c *Counters
	d [numEvents]uint64
}

// NewShard registers and returns a fresh shard of this bank.
func (c *Counters) NewShard() *Shard {
	s := &Shard{c: c}
	c.mu.Lock()
	c.shards = append(c.shards, s)
	c.mu.Unlock()
	return s
}

// Add increments event e by n.
func (s *Shard) Add(e Event, n uint64) { s.d[e] += n }

// Inc increments event e by one.
func (s *Shard) Inc(e Event) { s.d[e]++ }

// Flush folds the shard's deltas into the shared atomic bank and
// zeroes them. Values observed through Get/Snapshot are unchanged.
func (s *Shard) Flush() {
	for i, v := range s.d {
		if v != 0 {
			s.c.v[i].Add(v)
			s.d[i] = 0
		}
	}
}

// Release flushes the shard and unregisters it from its bank; the
// shard must not be used afterwards.
func (s *Shard) Release() {
	s.Flush()
	s.c.mu.Lock()
	for i, sh := range s.c.shards {
		if sh == s {
			s.c.shards = append(s.c.shards[:i], s.c.shards[i+1:]...)
			break
		}
	}
	s.c.mu.Unlock()
}

// Snapshot is an immutable copy of the counter bank.
type Snapshot [numEvents]uint64

// Get returns the value of event e in the snapshot.
func (s Snapshot) Get(e Event) uint64 { return s[e] }

// Sub returns the element-wise difference s - prev. Values that would
// underflow are clamped to zero (counters are monotone, so underflow
// indicates a reset in between).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	var d Snapshot
	for i := range s {
		if s[i] >= prev[i] {
			d[i] = s[i] - prev[i]
		}
	}
	return d
}

// Add returns the element-wise sum s + other.
func (s Snapshot) Add(other Snapshot) Snapshot {
	var d Snapshot
	for i := range s {
		d[i] = s[i] + other[i]
	}
	return d
}

// Ratio returns s[e] / base[e] as a float. When the base value is zero
// the result is defined as: 1 if s[e] is also zero (no change),
// otherwise the raw numerator (interpreted as "grew from nothing").
func (s Snapshot) Ratio(base Snapshot, e Event) float64 {
	b := base[e]
	n := s[e]
	if b == 0 {
		if n == 0 {
			return 1
		}
		return float64(n)
	}
	return float64(n) / float64(b)
}

// String renders the non-zero counters, sorted by event order.
func (s Snapshot) String() string {
	var b strings.Builder
	for i := 0; i < NumEvents; i++ {
		if s[i] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", Event(i), s[i])
	}
	return b.String()
}

// Events returns all events in declaration order.
func Events() []Event {
	out := make([]Event, NumEvents)
	for i := range out {
		out[i] = Event(i)
	}
	return out
}

// ParseEvent resolves a perf-style event name; it reports false when
// the name is unknown.
func ParseEvent(name string) (Event, bool) {
	for i, n := range eventNames {
		if n == name {
			return Event(i), true
		}
	}
	return 0, false
}

// TopRatios returns the events ordered by decreasing s/base ratio,
// restricted to the given events.
func (s Snapshot) TopRatios(base Snapshot, events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.SliceStable(out, func(i, j int) bool {
		return s.Ratio(base, out[i]) > s.Ratio(base, out[j])
	})
	return out
}
