package workloads

import (
	"sgxgauge/internal/mem"
)

// PagesForRatio returns the page count whose size is ratio x the EPC
// capacity — the suite expresses every Table 2 footprint relative to
// the EPC so the Low/Medium/High phenomena survive EPC scaling.
func PagesForRatio(epcPages int, ratio float64) int {
	n := int(float64(epcPages) * ratio)
	if n < 1 {
		n = 1
	}
	return n
}

// BytesForRatio returns PagesForRatio in bytes.
func BytesForRatio(epcPages int, ratio float64) int64 {
	return int64(PagesForRatio(epcPages, ratio)) * mem.PageSize
}

// Mix64 is a splitmix64 step, used for cheap deterministic data
// generation and checksum folding.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// FoldChecksum accumulates v into sum order-dependently.
func FoldChecksum(sum, v uint64) uint64 {
	return Mix64(sum ^ v)
}
