package svm

import (
	"testing"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/wltest"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "SVM" {
		t.Error("name wrong")
	}
	if w.NativePort() {
		t.Error("SVM must be LibOS-only (paper §4.3)")
	}
}

func TestFeatureCountMatchesTable2(t *testing.T) {
	w := New()
	for _, s := range workloads.Sizes() {
		if got := w.DefaultParams(96, s).MustKnob("features"); got != 128 {
			t.Errorf("%v: features = %d, want 128 (Table 2)", s, got)
		}
	}
}

func TestRowRatiosFollowTable2(t *testing.T) {
	// Table 2 rows are 4000/6000/10000 = 1 : 1.5 : 2.5.
	w := New()
	low := w.DefaultParams(960, workloads.Low).MustKnob("rows")
	med := w.DefaultParams(960, workloads.Medium).MustKnob("rows")
	high := w.DefaultParams(960, workloads.High).MustKnob("rows")
	if r := float64(med) / float64(low); r < 1.4 || r > 1.6 {
		t.Errorf("Medium/Low rows = %.2f, want ~1.5", r)
	}
	if r := float64(high) / float64(low); r < 2.3 || r > 2.7 {
		t.Errorf("High/Low rows = %.2f, want ~2.5", r)
	}
}

func TestTrainsSeparableData(t *testing.T) {
	// The dataset is linearly separable by construction, so the
	// trained model must fit it well.
	params := workloads.Params{
		Size:  workloads.Low,
		Knobs: map[string]int64{"rows": 300, "features": 128},
	}
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla, params, 96)
	out, err := New().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if acc := out.Extra["train_accuracy"]; acc < 0.9 {
		t.Errorf("training accuracy = %v on separable data, want > 0.9", acc)
	}
	if out.Checksum == 0xbad {
		t.Error("training produced NaN weights")
	}
	if out.Ops != 300*epochs {
		t.Errorf("Ops = %d, want rows*epochs", out.Ops)
	}
}

func TestRunAcrossModes(t *testing.T) {
	params := workloads.Params{
		Size:  workloads.Low,
		Knobs: map[string]int64{"rows": 200, "features": 128},
	}
	var sums []uint64
	for _, mode := range []sgx.Mode{sgx.Vanilla, sgx.LibOS} {
		ctx := wltest.NewCtxParams(t, New(), mode, params, 96)
		out, err := New().Run(ctx)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		sums = append(sums, out.Checksum)
	}
	if sums[0] != sums[1] {
		t.Error("modes trained different models")
	}
}

func TestInvalidParams(t *testing.T) {
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla,
		workloads.Params{Knobs: map[string]int64{"rows": 0, "features": 128}}, 96)
	if _, err := New().Run(ctx); err == nil {
		t.Error("zero rows accepted")
	}
}
