// Package svm implements the SVM workload of SGXGauge (§4.2.10),
// modeled on libSVM usage: a linear support-vector machine trained on
// a synthetic separable dataset of configurable rows x 128 features.
// Training runs several full passes over the same input data — "a
// typical pattern of ML workloads" — making it Data/CPU-intensive.
package svm

import (
	"fmt"
	"math"
	"math/rand"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/workloads"
)

const (
	// features matches Table 2 (128 features per row).
	features = 128
	// epochs is the number of passes over the training data.
	epochs = 5
	// lambda is the regularization strength of the Pegasos-style
	// sub-gradient trainer.
	lambda = 1e-4
	// rowBytes: features f64 + 1 label f64.
	rowBytes = (features + 1) * 8
)

// Workload is the SVM benchmark.
type Workload struct{}

// New returns the workload.
func New() *Workload { return &Workload{} }

// Name implements workloads.Workload.
func (*Workload) Name() string { return "SVM" }

// Property implements workloads.Workload.
func (*Workload) Property() string { return "Data/CPU-intensive" }

// NativePort implements workloads.Workload; SVM runs only in Vanilla
// and LibOS modes (§4.3).
func (*Workload) NativePort() bool { return false }

// footprintRatios reflects Table 2's 4000/6000/10000 rows (1:1.5:2.5).
var footprintRatios = map[workloads.Size]float64{
	workloads.Low:    0.50,
	workloads.Medium: 0.75,
	workloads.High:   1.25,
}

// DefaultParams implements workloads.Workload.
func (*Workload) DefaultParams(epcPages int, s workloads.Size) workloads.Params {
	rows := workloads.BytesForRatio(epcPages, footprintRatios[s]) / rowBytes
	return workloads.Params{
		Size:    s,
		Threads: 1,
		Knobs: map[string]int64{
			"rows":     rows,
			"features": features,
		},
	}
}

// FootprintPages implements workloads.Workload.
func (*Workload) FootprintPages(p workloads.Params) (int, error) {
	rows, err := p.Knob("rows")
	if err != nil {
		return 0, err
	}
	bytes := rows*rowBytes + features*8
	return int(bytes/mem.PageSize) + 4, nil
}

// Setup implements workloads.Workload.
func (*Workload) Setup(ctx *workloads.Ctx) error { return nil }

// Run implements workloads.Workload.
func (w *Workload) Run(ctx *workloads.Ctx) (workloads.Output, error) {
	p := ctx.Params
	rows, err := p.Knob("rows")
	if err != nil {
		return workloads.Output{}, err
	}
	if rows <= 0 {
		return workloads.Output{}, fmt.Errorf("svm: rows must be positive, got %d", rows)
	}

	env := ctx.Env
	data, err := env.Alloc(uint64(rows)*rowBytes, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("svm: alloc data: %w", err)
	}
	weights, err := env.Alloc(features*8, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("svm: alloc weights: %w", err)
	}
	t := env.Main
	rng := rand.New(rand.NewSource(ctx.Seed))

	// Generate a separable dataset: labels come from a hidden
	// weight vector.
	wTrue := make([]float64, features)
	for i := range wTrue {
		wTrue[i] = rng.NormFloat64()
	}
	t.ECall(func() {
		row := make([]float64, features)
		for r := int64(0); r < rows; r++ {
			dot := 0.0
			base := data + uint64(r)*rowBytes
			for f := 0; f < features; f++ {
				row[f] = rng.NormFloat64()
				dot += row[f] * wTrue[f]
				t.WriteF64(base+uint64(f)*8, row[f])
			}
			label := 1.0
			if dot < 0 {
				label = -1.0
			}
			t.WriteF64(base+features*8, label)
		}
		for f := 0; f < features; f++ {
			t.WriteF64(weights+uint64(f)*8, 0)
		}
	})

	// Pegasos-style training: epochs full passes, sub-gradient step
	// per sample.
	var step int64 = 1
	t.ECall(func() {
		for e := 0; e < epochs; e++ {
			for r := int64(0); r < rows; r++ {
				base := data + uint64(r)*rowBytes
				label := t.ReadF64(base + features*8)
				margin := 0.0
				for f := 0; f < features; f++ {
					margin += t.ReadF64(base+uint64(f)*8) * t.ReadF64(weights+uint64(f)*8)
					t.Compute(4)
				}
				eta := 1.0 / (lambda * float64(step))
				step++
				if label*margin < 1 {
					for f := 0; f < features; f++ {
						wf := t.ReadF64(weights + uint64(f)*8)
						xf := t.ReadF64(base + uint64(f)*8)
						t.WriteF64(weights+uint64(f)*8, (1-eta*lambda)*wf+eta*label*xf/float64(rows))
						t.Compute(6)
					}
				} else {
					for f := 0; f < features; f++ {
						wf := t.ReadF64(weights + uint64(f)*8)
						t.WriteF64(weights+uint64(f)*8, (1-eta*lambda)*wf)
						t.Compute(4)
					}
				}
			}
		}
	})

	// Evaluate training accuracy and fold the model into a checksum.
	var correct int64
	var checksum uint64
	t.ECall(func() {
		for r := int64(0); r < rows; r++ {
			base := data + uint64(r)*rowBytes
			margin := 0.0
			for f := 0; f < features; f++ {
				margin += t.ReadF64(base+uint64(f)*8) * t.ReadF64(weights+uint64(f)*8)
			}
			label := t.ReadF64(base + features*8)
			if margin*label > 0 {
				correct++
			}
		}
		for f := 0; f < features; f++ {
			wf := t.ReadF64(weights + uint64(f)*8)
			if math.IsNaN(wf) {
				checksum = 0xbad
				return
			}
			checksum = workloads.FoldChecksum(checksum, uint64(int64(wf*1e6)))
		}
	})

	return workloads.Output{
		Checksum: checksum,
		Ops:      rows * epochs,
		Extra:    map[string]float64{"train_accuracy": float64(correct) / float64(rows)},
	}, nil
}

var _ workloads.Workload = (*Workload)(nil)
