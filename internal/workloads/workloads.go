// Package workloads defines the SGXGauge benchmark interface and the
// shared plumbing every suite workload uses. The ten workloads of the
// paper's Table 2 live in subpackages (blockchain, openssl, btree,
// hashjoin, bfs, pagerank, memcached, xsbench, lighttpd, svm), plus
// the "empty" workload of Figure 6a and the iozone workload of
// Figure 10; package suite assembles them.
package workloads

import (
	"fmt"
	"sort"
	"strings"

	"sgxgauge/internal/libos"
	"sgxgauge/internal/osal"
	"sgxgauge/internal/sgx"
)

// Size is the input setting of Table 1: memory footprint below (Low),
// near (Medium), or above (High) the EPC size.
type Size int

const (
	// Low keeps the footprint under the EPC size.
	Low Size = iota
	// Medium sets the footprint near the EPC size.
	Medium
	// High pushes the footprint past the EPC size.
	High
)

// Sizes lists all input settings in order.
func Sizes() []Size { return []Size{Low, Medium, High} }

// String returns the paper's name for the setting.
func (s Size) String() string {
	switch s {
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	case High:
		return "High"
	}
	return fmt.Sprintf("Size(%d)", int(s))
}

// ParseSize resolves an input-setting name (case-insensitively).
// Unknown names yield an error listing the valid ones.
func ParseSize(s string) (Size, error) {
	switch strings.ToLower(s) {
	case "low":
		return Low, nil
	case "medium":
		return Medium, nil
	case "high":
		return High, nil
	}
	return 0, fmt.Errorf("workloads: unknown size %q (valid: Low, Medium, High)", s)
}

// MarshalText encodes the setting as its paper name, so Size fields
// serialize as "Medium" rather than an opaque integer.
func (s Size) MarshalText() ([]byte, error) {
	switch s {
	case Low, Medium, High:
		return []byte(s.String()), nil
	}
	return nil, fmt.Errorf("workloads: cannot encode unknown size %d", int(s))
}

// UnmarshalText decodes a setting name via ParseSize.
func (s *Size) UnmarshalText(text []byte) error {
	v, err := ParseSize(string(text))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Params carries one workload configuration: the input setting plus
// named numeric knobs (element counts, file sizes, request counts...)
// whose meaning is workload-specific, mirroring the knob columns of
// Table 2.
type Params struct {
	Size    Size             `json:"size"`
	Threads int              `json:"threads,omitempty"`
	Knobs   map[string]int64 `json:"knobs,omitempty"`
}

// Knob returns the named knob. A missing knob yields an error listing
// the knobs the Params actually carries, so a misconfigured sweep
// reports which name was wrong instead of killing the process.
func (p Params) Knob(name string) (int64, error) {
	v, ok := p.Knobs[name]
	if !ok {
		names := make([]string, 0, len(p.Knobs))
		//sgxlint:ignore determinism collects keys only; the slice is sorted before any ordered use
		for n := range p.Knobs {
			names = append(names, n)
		}
		sort.Strings(names)
		return 0, fmt.Errorf("workloads: missing knob %q (available: %s)",
			name, strings.Join(names, ", "))
	}
	return v, nil
}

// MustKnob is Knob for callers that construct the Params themselves
// (DefaultParams round-trips, tests): a missing knob is a programming
// error there, so it panics.
func (p Params) MustKnob(name string) int64 {
	v, err := p.Knob(name)
	if err != nil {
		panic(err)
	}
	return v
}

// WithKnob returns a copy of p with one knob overridden.
func (p Params) WithKnob(name string, v int64) Params {
	k := make(map[string]int64, len(p.Knobs)+1)
	for n, x := range p.Knobs {
		k[n] = x
	}
	k[name] = v
	return Params{Size: p.Size, Threads: p.Threads, Knobs: k}
}

// Ctx is everything a workload may touch during a run.
type Ctx struct {
	// Env is the execution environment (mode, enclave, threads).
	Env *sgx.Env
	// FS is the filesystem view appropriate for the mode: the plain
	// untrusted FS in Vanilla/Native mode, the LibOS shim (or
	// protected FS) in LibOS mode.
	FS osal.FileSystem
	// RawFS is the host-side filesystem, for free setup work.
	RawFS *osal.FS
	// LibOS is the library-OS instance in LibOS mode, nil otherwise.
	LibOS *libos.Instance
	// Params is the workload configuration.
	Params Params
	// Seed drives all workload-internal randomness.
	Seed int64
}

// Output is a workload's functional result; the harness layers timing
// and counters on top.
type Output struct {
	// Checksum is a deterministic digest of the computation's
	// result, used by tests to prove the three modes compute the
	// same thing.
	Checksum uint64
	// Ops is the number of completed work units (finds, requests,
	// lookups...).
	Ops int64
	// MeanLatency is the mean per-request latency in cycles, for
	// server-style workloads; zero otherwise.
	MeanLatency float64
	// Extra carries workload-specific measurements.
	Extra map[string]float64
}

// Workload is one SGXGauge benchmark.
type Workload interface {
	// Name is the suite name from Table 2 ("BTree", "Lighttpd"...).
	Name() string
	// Property is the Table 2 characterization ("Data/CPU-intensive").
	Property() string
	// NativePort reports whether the workload has a Native-mode port
	// (6 of the 10 do; the other 4 run only in Vanilla and LibOS
	// modes, §4.3).
	NativePort() bool
	// DefaultParams derives the Table 2 input settings for a machine
	// with the given EPC size, preserving the paper's
	// footprint-to-EPC ratios.
	DefaultParams(epcPages int, s Size) Params
	// FootprintPages estimates the data footprint, used to size
	// Native-mode enclaves. It fails when p lacks a knob the estimate
	// needs, and the failure propagates through workload construction
	// instead of panicking.
	FootprintPages(p Params) (int, error)
	// Setup performs host-side preparation (input files, request
	// streams); it is not measured.
	Setup(ctx *Ctx) error
	// Run executes the measured portion.
	Run(ctx *Ctx) (Output, error)
}

// MustFootprint is FootprintPages for callers whose Params are known
// complete (built by DefaultParams, or tests): it panics on error.
func MustFootprint(w Workload, p Params) int {
	n, err := w.FootprintPages(p)
	if err != nil {
		panic(err)
	}
	return n
}

// NativeImagePages is the image size of a Native-mode enclave: the
// ported binary plus SDK runtime. It is deliberately small so it stays
// negligible against scaled-down EPC sizes, as a real ~hundreds-of-KB
// image is against the real 92 MB EPC.
const NativeImagePages = 16

// EnclaveSlackFactor oversizes Native enclaves relative to the
// estimated footprint, covering allocator and stack slack ("Intel SGX
// recommends setting the enclave size as per the maximum requirement
// of the application", Appendix D).
const EnclaveSlackFactor = 1.3

// NativeEnclaveSize returns the declared enclave size in pages for a
// Native-mode run of a workload with the given footprint.
func NativeEnclaveSize(footprintPages int) int {
	return NativeImagePages + int(float64(footprintPages)*EnclaveSlackFactor) + 16
}
