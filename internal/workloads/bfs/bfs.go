// Package bfs implements the Breadth-First Search workload of
// SGXGauge (§4.2.5), a port of the Rodinia-style BFS: the input
// undirected graph is read into the enclave address space in CSR form
// and every connected component is traversed. The workload is memory-
// and compute-intensive with strong locality (paper Appendix B.5).
package bfs

import (
	"fmt"
	"math/rand"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

// avgDegree is the average vertex degree; the Table 2 graphs have
// roughly 13 edges per node (909K edges / 70K nodes), with "the
// degree at least 3".
const avgDegree = 13

// Bytes per node in CSR form: an 8-byte offset, an 8-byte distance
// slot, plus avgDegree 8-byte edge endpoints (one direction stored).
const bytesPerNode = 8 + 8 + avgDegree*8

// Workload is the BFS benchmark.
type Workload struct{}

// New returns the workload.
func New() *Workload { return &Workload{} }

// Name implements workloads.Workload.
func (*Workload) Name() string { return "BFS" }

// Property implements workloads.Workload.
func (*Workload) Property() string { return "Data-intensive" }

// NativePort implements workloads.Workload.
func (*Workload) NativePort() bool { return true }

// footprintRatios mirrors Table 2's 70K/100K/150K-node graphs against
// the 92 MB EPC (edge ratios 909K : 1.3M : 1.9M).
var footprintRatios = map[workloads.Size]float64{
	workloads.Low:    0.70,
	workloads.Medium: 1.00,
	workloads.High:   1.46,
}

// DefaultParams implements workloads.Workload.
func (*Workload) DefaultParams(epcPages int, s workloads.Size) workloads.Params {
	bytes := workloads.BytesForRatio(epcPages, footprintRatios[s])
	nodes := bytes / bytesPerNode
	return workloads.Params{
		Size:    s,
		Threads: 1,
		Knobs: map[string]int64{
			"nodes": nodes,
			"edges": nodes * avgDegree,
		},
	}
}

// FootprintPages implements workloads.Workload.
func (*Workload) FootprintPages(p workloads.Params) (int, error) {
	n, err := p.Knob("nodes")
	if err != nil {
		return 0, err
	}
	e, err := p.Knob("edges")
	if err != nil {
		return 0, err
	}
	// offsets + distances + queue + edge array
	bytes := (n+1)*8 + n*8 + n*8 + e*8
	return int(bytes/mem.PageSize) + 4, nil
}

// Setup implements workloads.Workload.
func (*Workload) Setup(ctx *workloads.Ctx) error { return nil }

// Run implements workloads.Workload.
func (w *Workload) Run(ctx *workloads.Ctx) (workloads.Output, error) {
	p := ctx.Params
	nodes, err := p.Knob("nodes")
	if err != nil {
		return workloads.Output{}, err
	}
	edges, err := p.Knob("edges")
	if err != nil {
		return workloads.Output{}, err
	}
	if nodes <= 0 || edges < 0 {
		return workloads.Output{}, fmt.Errorf("bfs: invalid graph nodes=%d edges=%d", nodes, edges)
	}

	env := ctx.Env
	offsets, err := env.Alloc(uint64(nodes+1)*8, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("bfs: alloc offsets: %w", err)
	}
	edgeArr, err := env.Alloc(uint64(edges)*8, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("bfs: alloc edges: %w", err)
	}
	dist, err := env.Alloc(uint64(nodes)*8, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("bfs: alloc distances: %w", err)
	}
	queue, err := env.Alloc(uint64(nodes)*8, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("bfs: alloc queue: %w", err)
	}
	t := env.Main
	rng := rand.New(rand.NewSource(ctx.Seed))

	// "It first reads the input graph to the EPC": generate a CSR
	// graph with degree >= 3 directly in the address space. Degrees
	// are computed host-side, edges written in one pass.
	degrees := make([]int32, nodes)
	for i := range degrees {
		degrees[i] = 3
	}
	remaining := edges - 3*nodes
	for remaining > 0 {
		degrees[rng.Int63n(nodes)]++
		remaining--
	}
	t.ECall(func() {
		// Compile the CSR arrays host-side and stream them into the
		// enclave as extents: the offset and edge arrays are written
		// in one dense run each, and the distance array is a fill
		// (0xFF over 8-byte slots is the "unvisited" sentinel).
		offs := make([]uint64, nodes+1)
		var off uint64
		for i := int64(0); i < nodes; i++ {
			offs[i] = off
			off += uint64(degrees[i])
		}
		offs[nodes] = off
		t.WriteU64Run(offsets, offs)
		// Real graphs (and the Rodinia inputs) have strong locality —
		// the paper's BFS "does not observe a large impact with the
		// increase in the input size ... because of the inherent
		// locality in the workload" (Appendix B.5). Most endpoints
		// land in a window around the source; a minority are long
		// links.
		window := nodes / 64
		if window < 4 {
			window = 4
		}
		edgeBuf := make([]uint64, edges)
		for i := int64(0); i < nodes; i++ {
			base := offs[i]
			for j := int32(0); j < degrees[i]; j++ {
				var to uint64
				switch {
				case j == 0:
					// Ring edge keeps components large.
					to = uint64((i + 1) % nodes)
				case rng.Intn(10) == 0:
					to = uint64(rng.Int63n(nodes))
				default:
					to = uint64((i + rng.Int63n(2*window) - window + nodes) % nodes)
				}
				edgeBuf[base+uint64(j)] = to
			}
		}
		t.WriteU64Run(edgeArr, edgeBuf)
		t.RunExtent(sgx.Extent{Addr: dist, Stride: 8, Count: uint64(nodes), Elem: 8, Kind: sgx.ExtentFill, Fill: 0xFF})
	})

	// Traverse every connected component (the ring bias makes one
	// giant component; isolated remainder nodes start fresh BFS
	// roots).
	var visited int64
	var checksum uint64
	t.ECall(func() {
		var nbuf []uint64
		for root := int64(0); root < nodes; root++ {
			if t.ReadU64(dist+uint64(root)*8) != ^uint64(0) {
				continue
			}
			head, tail := uint64(0), uint64(0)
			t.WriteU64(queue+tail*8, uint64(root))
			tail++
			t.WriteU64(dist+uint64(root)*8, 0)
			for head < tail {
				u := t.ReadU64(queue + head*8)
				head++
				visited++
				du := t.ReadU64(dist + u*8)
				checksum = workloads.FoldChecksum(checksum, u^du)
				lo := t.ReadU64(offsets + u*8)
				hi := t.ReadU64(offsets + (u+1)*8)
				// One extent per adjacency list: the neighbor run is
				// contiguous in CSR form.
				if n := hi - lo; uint64(cap(nbuf)) < n {
					nbuf = make([]uint64, n)
				} else {
					nbuf = nbuf[:n]
				}
				t.ReadU64Run(edgeArr+lo*8, nbuf)
				for _, v := range nbuf {
					if t.ReadU64(dist+v*8) == ^uint64(0) {
						t.WriteU64(dist+v*8, du+1)
						t.WriteU64(queue+tail*8, v)
						tail++
					}
				}
			}
			// Queue is fully drained between components; reuse it.
		}
	})

	return workloads.Output{
		Checksum: checksum,
		Ops:      visited,
		Extra:    map[string]float64{"visited": float64(visited)},
	}, nil
}

var _ workloads.Workload = (*Workload)(nil)
