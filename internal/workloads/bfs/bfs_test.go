package bfs

import (
	"testing"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/wltest"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "BFS" || !w.NativePort() {
		t.Error("metadata wrong")
	}
}

func TestDegreeAtLeastThree(t *testing.T) {
	// "The degree is at least 3" (paper §4.2.5): edges >= 3*nodes in
	// every setting.
	w := New()
	for _, s := range workloads.Sizes() {
		p := w.DefaultParams(96, s)
		if p.MustKnob("edges") < 3*p.MustKnob("nodes") {
			t.Errorf("%v: %d edges for %d nodes (degree < 3)", s, p.MustKnob("edges"), p.MustKnob("nodes"))
		}
	}
}

func TestVisitsEveryNode(t *testing.T) {
	// The ring edge makes the graph one connected component, and the
	// traversal covers all components regardless — so visited must
	// equal the node count exactly.
	params := workloads.Params{
		Size:    workloads.Low,
		Threads: 1,
		Knobs:   map[string]int64{"nodes": 2000, "edges": 9000},
	}
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla, params, 96)
	out, err := New().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ops != 2000 {
		t.Errorf("visited %d nodes, want 2000", out.Ops)
	}
}

func TestRunAcrossModes(t *testing.T) {
	out := wltest.RunAllModes(t, New(), workloads.Low)
	van := out[sgx.Vanilla]
	p := New().DefaultParams(wltest.DefaultEPCPages, workloads.Low)
	if van.Ops != p.MustKnob("nodes") {
		t.Errorf("visited %d, want all %d nodes", van.Ops, p.MustKnob("nodes"))
	}
}

func TestInvalidParams(t *testing.T) {
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla,
		workloads.Params{Knobs: map[string]int64{"nodes": 0, "edges": 0}}, 96)
	if _, err := New().Run(ctx); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestDeterministicChecksum(t *testing.T) {
	a := wltest.NewCtx(t, New(), sgx.Vanilla, workloads.Low)
	b := wltest.NewCtx(t, New(), sgx.Vanilla, workloads.Low)
	ra, err := New().Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := New().Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Checksum != rb.Checksum {
		t.Error("same seed, different BFS checksum")
	}
}
