// Package hashjoin implements the HashJoin workload of SGXGauge
// (§4.2.4): the classic two-phase equi-join. The build phase hashes
// every row of the (size-varied) first table into an open-addressing
// table in the simulated enclave address space; the probe phase scans
// the second table and looks each row up. The random probing is what
// gives the workload its many cache misses and stall cycles (paper
// Appendix B.4).
package hashjoin

import (
	"fmt"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/workloads"
)

// Row layout in both tables: (key u64, payload u64) = 16 bytes.
// Hash-table slot layout: (key u64, rowIndex u64) = 16 bytes; key 0
// means empty (generated keys are never 0).
const (
	rowBytes  = 16
	slotBytes = 16
)

// Workload is the HashJoin benchmark.
type Workload struct{}

// New returns the workload.
func New() *Workload { return &Workload{} }

// Name implements workloads.Workload.
func (*Workload) Name() string { return "HashJoin" }

// Property implements workloads.Workload.
func (*Workload) Property() string { return "Data/CPU-intensive" }

// NativePort implements workloads.Workload.
func (*Workload) NativePort() bool { return true }

// footprintRatios mirrors Table 2's 61/91/122 MB build table against
// the 92 MB EPC.
var footprintRatios = map[workloads.Size]float64{
	workloads.Low:    0.66,
	workloads.Medium: 0.99,
	workloads.High:   1.33,
}

// DefaultParams implements workloads.Workload. The build-table row
// count is derived so that rows + hash table (whose slot count rounds
// up to a power of two) + probe table together hit the Table 2
// footprint ratio; the probe table is a fixed quarter of the build
// table, as only the first table's size is varied in the paper.
func (*Workload) DefaultParams(epcPages int, s workloads.Size) workloads.Params {
	target := workloads.BytesForRatio(epcPages, footprintRatios[s])
	// Binary-search the largest row count whose true footprint fits.
	lo, hi := int64(1), target/rowBytes
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if footprintBytes(mid) <= target {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return workloads.Params{
		Size:    s,
		Threads: 1,
		Knobs: map[string]int64{
			"build_rows": lo,
			"probe_rows": lo / 4,
		},
	}
}

// footprintBytes is the true memory footprint for a build-table row
// count, including the power-of-two hash table and the probe table.
func footprintBytes(buildRows int64) int64 {
	slots := int64(1)
	for slots < 2*buildRows {
		slots *= 2
	}
	return buildRows*rowBytes + slots*slotBytes + (buildRows/4)*rowBytes
}

// FootprintPages implements workloads.Workload.
func (*Workload) FootprintPages(p workloads.Params) (int, error) {
	r, err := p.Knob("build_rows")
	if err != nil {
		return 0, err
	}
	s, err := p.Knob("probe_rows")
	if err != nil {
		return 0, err
	}
	slots := int64(1)
	for slots < 2*r {
		slots *= 2
	}
	bytes := r*rowBytes + slots*slotBytes + s*rowBytes
	return int(bytes/mem.PageSize) + 4, nil
}

// Setup implements workloads.Workload.
func (*Workload) Setup(ctx *workloads.Ctx) error { return nil }

// hashKey mixes a key into the slot space.
func hashKey(k uint64, mask uint64) uint64 {
	return workloads.Mix64(k) & mask
}

// Run implements workloads.Workload.
func (w *Workload) Run(ctx *workloads.Ctx) (workloads.Output, error) {
	p := ctx.Params
	buildRows, err := p.Knob("build_rows")
	if err != nil {
		return workloads.Output{}, err
	}
	probeRows, err := p.Knob("probe_rows")
	if err != nil {
		return workloads.Output{}, err
	}
	if buildRows <= 0 || probeRows < 0 {
		return workloads.Output{}, fmt.Errorf("hashjoin: invalid rows build=%d probe=%d", buildRows, probeRows)
	}

	// Slot count: next power of two >= 2*buildRows.
	slots := uint64(1)
	for slots < uint64(2*buildRows) {
		slots *= 2
	}
	mask := slots - 1

	env := ctx.Env
	buildTab, err := env.Alloc(uint64(buildRows)*rowBytes, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("hashjoin: alloc build table: %w", err)
	}
	probeTab, err := env.Alloc(uint64(probeRows)*rowBytes, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("hashjoin: alloc probe table: %w", err)
	}
	ht, err := env.Alloc(slots*slotBytes, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("hashjoin: alloc hash table: %w", err)
	}
	t := env.Main

	// Materialize both tables. Build keys are unique; probe keys are
	// drawn so ~half match.
	t.ECall(func() {
		// Each table is a dense (key, payload) row array: compile it
		// host-side and stream it in as one write extent.
		rows := make([]uint64, 2*buildRows)
		for i := int64(0); i < buildRows; i++ {
			rows[2*i] = workloads.Mix64(uint64(i)) | 1 // never zero
			rows[2*i+1] = uint64(i)
		}
		t.WriteU64Run(buildTab, rows)
		rows = make([]uint64, 2*probeRows)
		for i := int64(0); i < probeRows; i++ {
			r := workloads.Mix64(0xabcd ^ uint64(i))
			var key uint64
			if r&1 == 0 {
				key = workloads.Mix64(r%uint64(buildRows)) | 1 // hit
			} else {
				key = workloads.Mix64(uint64(buildRows)+r%uint64(buildRows)) | 1 // likely miss
			}
			rows[2*i] = key
			rows[2*i+1] = r
		}
		t.WriteU64Run(probeTab, rows)
	})

	insert := func(key, rowIdx uint64) {
		h := hashKey(key, mask)
		for {
			slot := ht + h*slotBytes
			if t.ReadU64(slot) == 0 {
				t.WriteU64(slot, key)
				t.WriteU64(slot+8, rowIdx)
				return
			}
			h = (h + 1) & mask
		}
	}
	lookup := func(key uint64) (uint64, bool) {
		h := hashKey(key, mask)
		for {
			slot := ht + h*slotBytes
			k := t.ReadU64(slot)
			if k == 0 {
				return 0, false
			}
			if k == key {
				return t.ReadU64(slot + 8), true
			}
			h = (h + 1) & mask
		}
	}

	// Build phase: the key column is a strided extent (first word of
	// every 16-byte row); the scattered inserts stay per-access.
	const batch = 4096
	keys := make([]uint64, batch)
	t.ECall(func() {
		for done := int64(0); done < buildRows; done += batch {
			n := int64(batch)
			if buildRows-done < n {
				n = buildRows - done
			}
			t.ReadU64Strided(buildTab+uint64(done)*rowBytes, rowBytes, keys[:n])
			for i := int64(0); i < n; i++ {
				insert(keys[i], uint64(done+i))
			}
		}
	})

	// Probe phase, batched per ECALL like a ported row iterator; each
	// batch bulk-reads its key column, then probes randomly.
	var matches int64
	var checksum uint64
	for done := int64(0); done < probeRows; done += batch {
		n := batch
		if probeRows-done < int64(batch) {
			n = int(probeRows - done)
		}
		start := done
		t.ECall(func() {
			t.ReadU64Strided(probeTab+uint64(start)*rowBytes, rowBytes, keys[:n])
			for i := 0; i < n; i++ {
				if rowIdx, ok := lookup(keys[i]); ok {
					matches++
					// Join output: fold the matched build payload.
					payload := t.ReadU64(buildTab + rowIdx*rowBytes + 8)
					checksum = workloads.FoldChecksum(checksum, payload)
				}
			}
		})
	}

	return workloads.Output{
		Checksum: checksum,
		Ops:      probeRows,
		Extra:    map[string]float64{"matches": float64(matches)},
	}, nil
}

var _ workloads.Workload = (*Workload)(nil)
