package hashjoin

import (
	"testing"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/wltest"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "HashJoin" || !w.NativePort() {
		t.Error("metadata wrong")
	}
}

func TestFootprintRespectsTarget(t *testing.T) {
	w := New()
	for _, s := range workloads.Sizes() {
		p := w.DefaultParams(96, s)
		foot := workloads.MustFootprint(w, p)
		target := workloads.PagesForRatio(96, footprintRatios[s])
		// Sizing accounts for the power-of-two table: the footprint
		// must sit at or below the target, and within 40% of it
		// (pow2 rounding costs at most ~2x on the table component).
		if foot > target+4 {
			t.Errorf("%v: footprint %d pages exceeds target %d", s, foot, target)
		}
		if foot < target*6/10 {
			t.Errorf("%v: footprint %d pages far below target %d", s, foot, target)
		}
	}
}

func TestMatchesAgainstNestedLoopModel(t *testing.T) {
	// Small instance: compare the join's match count with a
	// host-side nested-loop join over the same generated keys.
	params := workloads.Params{
		Size:    workloads.Low,
		Threads: 1,
		Knobs:   map[string]int64{"build_rows": 500, "probe_rows": 300},
	}
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla, params, 96)
	out, err := New().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct both tables exactly as Run generates them.
	buildKeys := map[uint64]bool{}
	for i := int64(0); i < 500; i++ {
		buildKeys[workloads.Mix64(uint64(i))|1] = true
	}
	want := 0
	for i := int64(0); i < 300; i++ {
		r := workloads.Mix64(0xabcd ^ uint64(i))
		var key uint64
		if r&1 == 0 {
			key = workloads.Mix64(r%500) | 1
		} else {
			key = workloads.Mix64(500+r%500) | 1
		}
		if buildKeys[key] {
			want++
		}
	}
	if got := int(out.Extra["matches"]); got != want {
		t.Errorf("matches = %d, nested-loop model says %d", got, want)
	}
}

func TestRunAcrossModes(t *testing.T) {
	out := wltest.RunAllModes(t, New(), workloads.Low)
	van := out[sgx.Vanilla]
	if van.Ops == 0 {
		t.Error("no probes")
	}
	// ~half of the probes hit by construction.
	if m := van.Extra["matches"]; m < float64(van.Ops)*3/10 || m > float64(van.Ops)*7/10 {
		t.Errorf("matches = %v of %d probes", m, van.Ops)
	}
}

func TestHighDoesNotExhaustNativeEnclave(t *testing.T) {
	// Regression test: the pow2 hash table once blew past the
	// enclave size at High.
	ctx := wltest.NewCtx(t, New(), sgx.Native, workloads.High)
	if _, err := New().Run(ctx); err != nil {
		t.Fatalf("High Native run failed: %v", err)
	}
}

func TestInvalidParams(t *testing.T) {
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla,
		workloads.Params{Knobs: map[string]int64{"build_rows": 0, "probe_rows": 1}}, 96)
	if _, err := New().Run(ctx); err == nil {
		t.Error("zero build rows accepted")
	}
}

func TestFootprintBytesMonotone(t *testing.T) {
	prev := int64(0)
	for rows := int64(1); rows < 100000; rows *= 3 {
		fb := footprintBytes(rows)
		if fb <= prev {
			t.Fatalf("footprintBytes(%d) = %d not increasing", rows, fb)
		}
		prev = fb
	}
	_ = mem.PageSize
}
