package iozone

import (
	"testing"

	"sgxgauge/internal/libos"
	"sgxgauge/internal/osal"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/wltest"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "Iozone" || w.NativePort() {
		t.Error("metadata wrong")
	}
}

func TestFileAlwaysExceedsEPC(t *testing.T) {
	// The paper reads/writes 1 GB against a 92 MB EPC; scaled, the
	// file must always be a multiple of the EPC.
	w := New()
	for _, s := range workloads.Sizes() {
		p := w.DefaultParams(96, s)
		if p.MustKnob("file_bytes") < 2*96*4096 {
			t.Errorf("%v: file %d bytes not >> EPC", s, p.MustKnob("file_bytes"))
		}
		if p.MustKnob("file_bytes")%p.MustKnob("block_bytes") != 0 {
			t.Errorf("%v: file not a whole number of blocks", s)
		}
	}
}

func TestAllPhasesRun(t *testing.T) {
	ctx := wltest.NewCtx(t, New(), sgx.Vanilla, workloads.Low)
	out, err := New().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"write", "rewrite", "read", "reread"} {
		if out.Extra[phase+"_cycles"] <= 0 {
			t.Errorf("phase %q consumed no cycles", phase)
		}
	}
	p := New().DefaultParams(wltest.DefaultEPCPages, workloads.Low)
	if out.Ops != 4*p.MustKnob("file_bytes")/p.MustKnob("block_bytes") {
		t.Errorf("Ops = %d", out.Ops)
	}
}

func TestChecksumAgreesAcrossModes(t *testing.T) {
	var sums []uint64
	for _, mode := range []sgx.Mode{sgx.Vanilla, sgx.LibOS} {
		ctx := wltest.NewCtx(t, New(), mode, workloads.Low)
		out, err := New().Run(ctx)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		sums = append(sums, out.Checksum)
	}
	if sums[0] != sums[1] {
		t.Error("modes produced different file contents")
	}
}

// TestFigure10Ordering is the Appendix E shape: Vanilla < LibOS <
// LibOS+PF for every phase.
func TestFigure10Ordering(t *testing.T) {
	phase := func(mode sgx.Mode, pf bool, name string) float64 {
		var ctx *workloads.Ctx
		if pf {
			m := sgx.NewMachine(sgx.Config{EPCPages: 96})
			fs := osal.NewFS()
			ctx = &workloads.Ctx{RawFS: fs, Params: New().DefaultParams(96, workloads.Low), Seed: 42}
			if err := New().Setup(ctx); err != nil {
				t.Fatal(err)
			}
			inst, err := libos.Start(m, fs, libos.Manifest{Binary: "iozone", ProtectedFiles: true})
			if err != nil {
				t.Fatal(err)
			}
			ctx.Env = inst.Env
			ctx.LibOS = inst
			ctx.FS = inst.FS()
		} else {
			ctx = wltest.NewCtx(t, New(), mode, workloads.Low)
		}
		out, err := New().Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return out.Extra[name+"_cycles"]
	}
	for _, name := range []string{"write", "read"} {
		van := phase(sgx.Vanilla, false, name)
		lib := phase(sgx.LibOS, false, name)
		pf := phase(sgx.LibOS, true, name)
		if !(van < lib && lib < pf) {
			t.Errorf("%s phase ordering broken: vanilla=%v libos=%v pf=%v", name, van, lib, pf)
		}
	}
}

func TestInvalidParams(t *testing.T) {
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla,
		workloads.Params{Knobs: map[string]int64{"file_bytes": 100, "block_bytes": 64}}, 96)
	if _, err := New().Run(ctx); err == nil {
		t.Error("non-divisible file/block accepted")
	}
}
