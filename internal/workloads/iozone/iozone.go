// Package iozone implements the Iozone-style filesystem benchmark of
// the paper's Appendix E (Figure 10): sequential write, rewrite,
// sequential read and reread of a large file in fixed-size blocks,
// through whatever filesystem view the mode provides — the plain
// untrusted FS in Vanilla mode, the LibOS shim in LibOS mode, or the
// protected file system when PF is enabled.
package iozone

import (
	"fmt"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/osal"
	"sgxgauge/internal/workloads"
)

const (
	fileName = "iozone.dat"
	// blocksPerPhase fixes the file:block ratio. The paper reads and
	// writes "1 GB of data with 4 M blocks"; what matters for the
	// overhead balance is that per-block syscall costs amortize over
	// the block bytes (the byte-dominated regime), so the scaled
	// block count is kept low enough that blocks stay tens of KB.
	blocksPerPhase = 24
)

// Workload is the Iozone benchmark.
type Workload struct{}

// New returns the workload.
func New() *Workload { return &Workload{} }

// Name implements workloads.Workload.
func (*Workload) Name() string { return "Iozone" }

// Property implements workloads.Workload.
func (*Workload) Property() string { return "IO-intensive" }

// NativePort implements workloads.Workload; Iozone is a LibOS-mode
// appendix workload.
func (*Workload) NativePort() bool { return false }

// fileRatios: the paper uses a 1 GB file against a 92 MB EPC (~11x);
// that is expensive at simulation scale, so the suite uses 4x the EPC,
// still far past it — the file never fits.
var fileRatios = map[workloads.Size]float64{
	workloads.Low:    2.0,
	workloads.Medium: 3.0,
	workloads.High:   4.0,
}

// DefaultParams implements workloads.Workload.
func (*Workload) DefaultParams(epcPages int, s workloads.Size) workloads.Params {
	fileBytes := workloads.BytesForRatio(epcPages, fileRatios[s])
	block := fileBytes / blocksPerPhase
	block = block &^ 4095 // whole pages, matching PF chunking
	if block < 4096 {
		block = 4096
	}
	return workloads.Params{
		Size:    s,
		Threads: 1,
		Knobs: map[string]int64{
			"file_bytes":  fileBytes / block * block,
			"block_bytes": block,
		},
	}
}

// FootprintPages implements workloads.Workload; only one block is
// buffered in memory at a time.
func (*Workload) FootprintPages(p workloads.Params) (int, error) {
	b, err := p.Knob("block_bytes")
	if err != nil {
		return 0, err
	}
	return int(b/mem.PageSize) + 4, nil
}

// Setup implements workloads.Workload.
func (*Workload) Setup(ctx *workloads.Ctx) error {
	ctx.RawFS.Remove(fileName)
	ctx.RawFS.Remove(fileName + ".pfmeta")
	return nil
}

// PhaseCycles records the per-phase cost, keyed by phase name
// ("write", "rewrite", "read", "reread").
type PhaseCycles map[string]uint64

// Run implements workloads.Workload.
func (w *Workload) Run(ctx *workloads.Ctx) (workloads.Output, error) {
	p := ctx.Params
	fileBytes, err := p.Knob("file_bytes")
	if err != nil {
		return workloads.Output{}, err
	}
	blockBytes, err := p.Knob("block_bytes")
	if err != nil {
		return workloads.Output{}, err
	}
	if fileBytes <= 0 || blockBytes <= 0 || fileBytes%blockBytes != 0 {
		return workloads.Output{}, fmt.Errorf("iozone: invalid file_bytes=%d block_bytes=%d", fileBytes, blockBytes)
	}
	blocks := fileBytes / blockBytes

	env := ctx.Env
	buf, err := env.Alloc(uint64(blockBytes), mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("iozone: alloc block buffer: %w", err)
	}
	t := env.Main
	phases := PhaseCycles{}

	// Fill the buffer once with deterministic content.
	var chunk [256]byte
	seed := workloads.Mix64(uint64(ctx.Seed))
	for off := int64(0); off < blockBytes; off += int64(len(chunk)) {
		for i := 0; i < len(chunk); i += 8 {
			seed = workloads.Mix64(seed)
			chunk[i] = byte(seed)
		}
		t.Write(buf+uint64(off), chunk[:])
	}

	writePass := func(name string) error {
		start := t.Clock.Cycles()
		var f osal.Handle
		var err error
		if name == "rewrite" {
			f, err = ctx.FS.Open(t, fileName)
		} else {
			f, err = ctx.FS.CreateFile(t, fileName)
		}
		if err != nil {
			return fmt.Errorf("iozone: %s: %w", name, err)
		}
		for b := int64(0); b < blocks; b++ {
			if _, err := f.WriteAt(t, buf, int(b*blockBytes), int(blockBytes)); err != nil {
				return fmt.Errorf("iozone: %s block %d: %w", name, b, err)
			}
		}
		if err := f.Close(t); err != nil {
			return err
		}
		phases[name] = t.Clock.Cycles() - start
		return nil
	}
	readPass := func(name string) (uint64, error) {
		start := t.Clock.Cycles()
		f, err := ctx.FS.Open(t, fileName)
		if err != nil {
			return 0, fmt.Errorf("iozone: %s: %w", name, err)
		}
		var acc uint64
		for b := int64(0); b < blocks; b++ {
			if _, err := f.ReadAt(t, buf, int(b*blockBytes), int(blockBytes)); err != nil {
				return 0, fmt.Errorf("iozone: %s block %d: %w", name, b, err)
			}
			acc = workloads.FoldChecksum(acc, t.ReadU64(buf))
		}
		if err := f.Close(t); err != nil {
			return 0, err
		}
		phases[name] = t.Clock.Cycles() - start
		return acc, nil
	}

	if err := writePass("write"); err != nil {
		return workloads.Output{}, err
	}
	if err := writePass("rewrite"); err != nil {
		return workloads.Output{}, err
	}
	sum1, err := readPass("read")
	if err != nil {
		return workloads.Output{}, err
	}
	sum2, err := readPass("reread")
	if err != nil {
		return workloads.Output{}, err
	}
	if sum1 != sum2 {
		return workloads.Output{}, fmt.Errorf("iozone: read/reread checksum mismatch: %#x != %#x", sum1, sum2)
	}

	extra := map[string]float64{}
	//sgxlint:ignore determinism map-to-map copy with distinct derived keys; final map state is order-independent
	for name, cyc := range phases {
		extra[name+"_cycles"] = float64(cyc)
	}
	return workloads.Output{
		Checksum: sum1,
		Ops:      blocks * 4,
		Extra:    extra,
	}, nil
}

var _ workloads.Workload = (*Workload)(nil)
