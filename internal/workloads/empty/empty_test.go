package empty

import (
	"testing"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/wltest"
)

func TestRunDoesNothing(t *testing.T) {
	for _, mode := range []sgx.Mode{sgx.Vanilla, sgx.Native, sgx.LibOS} {
		ctx := wltest.NewCtx(t, New(), mode, workloads.Low)
		before := ctx.Env.Elapsed()
		out, err := New().Run(ctx)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if out.Ops != 0 || out.Checksum != 0 {
			t.Errorf("%v: empty workload produced output %+v", mode, out)
		}
		if ctx.Env.Elapsed() != before {
			t.Errorf("%v: empty workload consumed cycles", mode)
		}
	}
}

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "Empty" || workloads.MustFootprint(w, w.DefaultParams(96, workloads.Low)) != 1 {
		t.Error("metadata wrong")
	}
	if err := w.Setup(nil); err != nil {
		t.Error("setup failed")
	}
}
