// Package empty implements the "empty" (return 0;) workload the paper
// uses to characterize pure GrapheneSGX overhead (§5.4.1, Figure 6a):
// the measured portion does nothing, so everything observed is the
// runtime's own activity.
package empty

import "sgxgauge/internal/workloads"

// Workload is the empty benchmark.
type Workload struct{}

// New returns the workload.
func New() *Workload { return &Workload{} }

// Name implements workloads.Workload.
func (*Workload) Name() string { return "Empty" }

// Property implements workloads.Workload.
func (*Workload) Property() string { return "Runtime-overhead probe" }

// NativePort implements workloads.Workload.
func (*Workload) NativePort() bool { return true }

// DefaultParams implements workloads.Workload.
func (*Workload) DefaultParams(epcPages int, s workloads.Size) workloads.Params {
	return workloads.Params{Size: s, Threads: 1, Knobs: map[string]int64{}}
}

// FootprintPages implements workloads.Workload.
func (*Workload) FootprintPages(p workloads.Params) (int, error) { return 1, nil }

// Setup implements workloads.Workload.
func (*Workload) Setup(ctx *workloads.Ctx) error { return nil }

// Run implements workloads.Workload: return 0.
func (*Workload) Run(ctx *workloads.Ctx) (workloads.Output, error) {
	return workloads.Output{Checksum: 0, Ops: 0}, nil
}

var _ workloads.Workload = (*Workload)(nil)
