// Package blockchain implements the Blockchain workload of SGXGauge
// (§4.2.1), modeled on libcatena: a linked list of blocks where each
// block stores the hash of its predecessor, extended by proof-of-work
// mining. The SHA-256 hash computation is the sensitive operation and
// lives inside the enclave; many untrusted threads call it through the
// same ECALL, making this the suite's CPU/ECALL-intensive workload
// (with ~millions of ECALLs at paper scale, Appendix B.1).
package blockchain

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

const (
	// payloadBytes is each block's payload size.
	payloadBytes = 16 * 1024
	// hashedPayload is how much of the payload each proof-of-work
	// attempt hashes along with the header.
	hashedPayload = 1024
	// hashCyclesPerByte approximates SHA-256 throughput in-enclave.
	hashCyclesPerByte = 15
	// defaultDifficultyBits sets the expected attempts per block to
	// 2^bits; the paper's millions of ECALLs per block are scaled
	// down proportionally with everything else.
	defaultDifficultyBits = 9
	// defaultThreads matches the paper's 16 mining threads.
	defaultThreads = 16
)

// Workload is the Blockchain benchmark.
type Workload struct{}

// New returns the workload.
func New() *Workload { return &Workload{} }

// Name implements workloads.Workload.
func (*Workload) Name() string { return "Blockchain" }

// Property implements workloads.Workload.
func (*Workload) Property() string { return "CPU/ECALL-intensive" }

// NativePort implements workloads.Workload; only the hash function is
// moved into the enclave (§4.3).
func (*Workload) NativePort() bool { return true }

// blockCounts mirrors Table 2: 3/5/8 blocks. The workload's memory
// footprint is tiny by design; its cost is compute and transitions.
var blockCounts = map[workloads.Size]int64{
	workloads.Low:    3,
	workloads.Medium: 5,
	workloads.High:   8,
}

// DefaultParams implements workloads.Workload.
func (*Workload) DefaultParams(epcPages int, s workloads.Size) workloads.Params {
	return workloads.Params{
		Size:    s,
		Threads: defaultThreads,
		Knobs: map[string]int64{
			"blocks":          blockCounts[s],
			"difficulty_bits": defaultDifficultyBits,
		},
	}
}

// FootprintPages implements workloads.Workload.
func (*Workload) FootprintPages(p workloads.Params) (int, error) {
	blocks, err := p.Knob("blocks")
	if err != nil {
		return 0, err
	}
	return int(blocks*payloadBytes/mem.PageSize) + 4, nil
}

// Setup implements workloads.Workload.
func (*Workload) Setup(ctx *workloads.Ctx) error { return nil }

// header is the 72-byte mining preimage prefix: previous-block hash
// plus payload digest; the 8-byte nonce follows.
type header struct {
	prev    [32]byte
	payload [32]byte
}

// attemptHash computes the proof-of-work hash for one nonce. The
// simulated cost is charged by the caller.
func attemptHash(h header, nonce uint64, payloadSample []byte) [32]byte {
	d := sha256.New()
	d.Write(h.prev[:])
	d.Write(h.payload[:])
	var nb [8]byte
	binary.LittleEndian.PutUint64(nb[:], nonce)
	d.Write(nb[:])
	d.Write(payloadSample)
	var out [32]byte
	copy(out[:], d.Sum(nil))
	return out
}

// Run implements workloads.Workload.
func (w *Workload) Run(ctx *workloads.Ctx) (workloads.Output, error) {
	p := ctx.Params
	blocks, err := p.Knob("blocks")
	if err != nil {
		return workloads.Output{}, err
	}
	bits, err := p.Knob("difficulty_bits")
	if err != nil {
		return workloads.Output{}, err
	}
	if blocks <= 0 || bits < 0 || bits > 40 {
		return workloads.Output{}, fmt.Errorf("blockchain: invalid blocks=%d difficulty_bits=%d", blocks, bits)
	}
	threads := p.Threads
	if threads <= 0 {
		threads = defaultThreads
	}
	target := ^uint64(0) >> uint(bits)

	env := ctx.Env
	// The chain lives in the application's memory: untrusted in
	// Vanilla/Native mode (only the hash runs inside the enclave),
	// enclave heap in LibOS mode (the whole app is inside).
	var chain uint64
	if env.Mode == sgx.LibOS {
		chain, err = env.Alloc(uint64(blocks)*payloadBytes, mem.PageSize)
	} else {
		chain = env.AllocUntrusted(uint64(blocks)*payloadBytes, mem.PageSize)
	}
	if err != nil {
		return workloads.Output{}, fmt.Errorf("blockchain: alloc chain: %w", err)
	}

	var prevHash [32]byte
	var totalAttempts int64
	var checksum uint64
	var nonces []uint64
	var digests, hashes [][32]byte
	main := env.Main

	for b := int64(0); b < blocks; b++ {
		// Write the block payload (deterministic content).
		payloadAddr := chain + uint64(b)*payloadBytes
		var buf [256]byte
		seed := workloads.Mix64(uint64(ctx.Seed) ^ uint64(b))
		for off := 0; off < payloadBytes; off += len(buf) {
			for i := 0; i < len(buf); i += 8 {
				seed = workloads.Mix64(seed)
				binary.LittleEndian.PutUint64(buf[i:], seed)
			}
			main.Write(payloadAddr+uint64(off), buf[:])
		}
		// Digest the payload once (inside the enclave: it is the
		// sensitive computation).
		var payloadDigest [32]byte
		main.ECall(func() {
			var full []byte
			full = make([]byte, payloadBytes)
			main.Read(payloadAddr, full)
			main.Compute(uint64(payloadBytes) * hashCyclesPerByte)
			payloadDigest = sha256.Sum256(full)
		})

		hdr := header{prev: prevHash, payload: payloadDigest}

		// Mine: `threads` untrusted threads race through disjoint
		// nonce strides, each attempt entering the enclave through
		// the shared hash ECALL. A thread stops once some thread has
		// found a winner at an earlier attempt index (all real
		// threads would have stopped by then).
		bestIdx := int64(1) << 62
		var bestNonce uint64
		var bestHash [32]byte
		env.RunParallel(threads, func(t *sgx.Thread, ti int) {
			sample := make([]byte, hashedPayload)
			for idx := int64(0); idx <= bestIdx; idx++ {
				nonce := uint64(idx)*uint64(threads) + uint64(ti)
				var hv [32]byte
				t.ECall(func() {
					t.Read(payloadAddr, sample)
					t.Compute(uint64(72+8+hashedPayload) * hashCyclesPerByte)
					hv = attemptHash(hdr, nonce, sample)
				})
				totalAttempts++
				if binary.BigEndian.Uint64(hv[:8]) <= target {
					if idx < bestIdx || (idx == bestIdx && nonce < bestNonce) {
						bestIdx = idx
						bestNonce = nonce
						bestHash = hv
					}
					return
				}
			}
		})
		if bestIdx == int64(1)<<62 {
			return workloads.Output{}, fmt.Errorf("blockchain: block %d: no nonce found (difficulty too high for stride)", b)
		}
		prevHash = bestHash
		nonces = append(nonces, bestNonce)
		digests = append(digests, payloadDigest)
		hashes = append(hashes, bestHash)
		checksum = workloads.FoldChecksum(checksum, bestNonce)
	}
	checksum = workloads.FoldChecksum(checksum, binary.LittleEndian.Uint64(prevHash[:8]))

	// Verification pass (libcatena validates the whole chain): walk
	// the blocks inside the enclave, recompute each proof-of-work
	// hash over the stored payload, and check the chain links and
	// difficulty.
	var verifyErr error
	main.ECall(func() {
		var prev [32]byte
		sample := make([]byte, hashedPayload)
		for b := int64(0); b < blocks; b++ {
			main.Read(chain+uint64(b)*payloadBytes, sample)
			main.Compute(uint64(72+8+hashedPayload) * hashCyclesPerByte)
			hv := attemptHash(header{prev: prev, payload: digests[b]}, nonces[b], sample)
			if hv != hashes[b] {
				verifyErr = fmt.Errorf("blockchain: block %d hash mismatch during verification", b)
				return
			}
			if binary.BigEndian.Uint64(hv[:8]) > target {
				verifyErr = fmt.Errorf("blockchain: block %d does not meet difficulty", b)
				return
			}
			prev = hv
		}
	})
	if verifyErr != nil {
		return workloads.Output{}, verifyErr
	}

	return workloads.Output{
		Checksum: checksum,
		Ops:      totalAttempts,
		Extra:    map[string]float64{"attempts": float64(totalAttempts)},
	}, nil
}

var _ workloads.Workload = (*Workload)(nil)
