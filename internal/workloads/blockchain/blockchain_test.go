package blockchain

import (
	"encoding/binary"
	"testing"

	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/wltest"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "Blockchain" || !w.NativePort() {
		t.Error("metadata wrong")
	}
}

func TestBlockCountsMatchTable2(t *testing.T) {
	w := New()
	want := map[workloads.Size]int64{workloads.Low: 3, workloads.Medium: 5, workloads.High: 8}
	for s, n := range want {
		if got := w.DefaultParams(96, s).MustKnob("blocks"); got != n {
			t.Errorf("%v: blocks = %d, want %d (Table 2)", s, got, n)
		}
	}
	if w.DefaultParams(96, workloads.Low).Threads != 16 {
		t.Error("default threads != 16")
	}
}

func TestProofOfWorkValid(t *testing.T) {
	// Mine a tiny chain and verify the winning hashes actually meet
	// the difficulty target (real SHA-256, not a stub).
	params := workloads.Params{
		Size:    workloads.Low,
		Threads: 4,
		Knobs:   map[string]int64{"blocks": 2, "difficulty_bits": 6},
	}
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla, params, 96)
	out, err := New().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ops < 2 {
		t.Errorf("only %d attempts for 2 blocks", out.Ops)
	}
	if out.Checksum == 0 {
		t.Error("empty chain checksum")
	}
}

func TestAttemptHashDeterministic(t *testing.T) {
	var h header
	h.prev[0] = 1
	a := attemptHash(h, 42, []byte("payload"))
	b := attemptHash(h, 42, []byte("payload"))
	if a != b {
		t.Error("attemptHash not deterministic")
	}
	c := attemptHash(h, 43, []byte("payload"))
	if a == c {
		t.Error("nonce does not affect the hash")
	}
	if binary.BigEndian.Uint64(a[:8]) == 0 {
		t.Error("degenerate hash")
	}
}

func TestECallPerAttemptInNativeMode(t *testing.T) {
	params := workloads.Params{
		Size:    workloads.Low,
		Threads: 4,
		Knobs:   map[string]int64{"blocks": 2, "difficulty_bits": 6},
	}
	ctx := wltest.NewCtxParams(t, New(), sgx.Native, params, 96)
	before := ctx.Env.Snapshot()
	out, err := New().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	delta := ctx.Env.Snapshot().Sub(before)
	// One ECALL per hash attempt, one per block for the payload
	// digest, plus the final chain-verification entry (paper §4.2.1:
	// the hash function "is called by many threads from the unsecure
	// region resulting in many ECALLs").
	want := uint64(out.Ops) + 2 + 1
	if got := delta.Get(perf.ECalls); got != want {
		t.Errorf("ECALLs = %d, want %d (attempts+digests+verify)", got, want)
	}
}

func TestRunAcrossModes(t *testing.T) {
	params := workloads.Params{
		Size:    workloads.Low,
		Threads: 4,
		Knobs:   map[string]int64{"blocks": 2, "difficulty_bits": 6},
	}
	var got []workloads.Output
	for _, mode := range []sgx.Mode{sgx.Vanilla, sgx.Native, sgx.LibOS} {
		ctx := wltest.NewCtxParams(t, New(), mode, params, 96)
		out, err := New().Run(ctx)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		got = append(got, out)
	}
	if got[0].Checksum != got[1].Checksum || got[0].Checksum != got[2].Checksum {
		t.Error("modes mined different chains")
	}
	if got[0].Ops != got[1].Ops {
		t.Error("modes performed different attempt counts")
	}
}

func TestMoreBlocksMoreWork(t *testing.T) {
	run := func(blocks int64) int64 {
		params := workloads.Params{
			Size:    workloads.Low,
			Threads: 4,
			Knobs:   map[string]int64{"blocks": blocks, "difficulty_bits": 6},
		}
		ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla, params, 96)
		out, err := New().Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return out.Ops
	}
	if run(6) <= run(2) {
		t.Error("more blocks did not require more attempts")
	}
}

func TestInvalidParams(t *testing.T) {
	for _, knobs := range []map[string]int64{
		{"blocks": 0, "difficulty_bits": 4},
		{"blocks": 2, "difficulty_bits": -1},
		{"blocks": 2, "difficulty_bits": 60},
	} {
		ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla,
			workloads.Params{Threads: 2, Knobs: knobs}, 96)
		if _, err := New().Run(ctx); err == nil {
			t.Errorf("knobs %v accepted", knobs)
		}
	}
}
