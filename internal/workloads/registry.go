package workloads

import (
	"fmt"
	"strings"
	"sync"
)

// Descriptor is one registered benchmark entry: a single-enclave
// workload or a multi-enclave scenario. The registry is the one source
// every valid-name list derives from — wire-codec validation errors,
// /v1/run 400 bodies, CLI help, and the scenario engine all read the
// same table, so an entry registered anywhere is spelled identically
// everywhere (previously the suite, the wire codec and the CLI each
// hand-maintained their own list, which could drift).
type Descriptor struct {
	// Name is the canonical (case-sensitive) registry name: the
	// Table 2 workload name ("BTree") or the scenario name
	// ("attested-session").
	Name string
	// Property is the Table 2-style characterization shown by list
	// commands ("Data-intensive", "Attested multi-enclave"...).
	Property string
	// NativePort reports whether a workload runs in Native mode;
	// meaningless for scenarios (which always simulate Native-mode
	// enclaves).
	NativePort bool
	// Scenario marks a multi-enclave scenario entry. Scenario entries
	// have no New constructor — the scenario engine resolves the name
	// through its own builder table — but share this registry so name
	// validation and listings cover both families.
	Scenario bool
	// New constructs a fresh Workload instance; nil for scenarios.
	New func() Workload
}

var (
	registryMu sync.RWMutex
	// registry holds descriptors in registration order (suite order
	// for workloads, then scenarios), never map order: every listing
	// derived from it must be deterministic. guarded by registryMu
	registry []Descriptor
	// registryIdx indexes registry by name. guarded by registryMu
	registryIdx = make(map[string]int)
)

// Register adds one descriptor to the shared registry. Package init
// functions call it (the suite registers the paper's workloads, the
// scenario package its scenarios); a duplicate or unnamed entry is a
// programming error and panics.
func Register(d Descriptor) {
	if d.Name == "" {
		panic("workloads: Register with empty name")
	}
	if !d.Scenario && d.New == nil {
		panic(fmt.Sprintf("workloads: workload descriptor %q has no constructor", d.Name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registryIdx[d.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate registration of %q", d.Name))
	}
	registryIdx[d.Name] = len(registry)
	registry = append(registry, d)
}

// Lookup resolves a registered name (workload or scenario).
func Lookup(name string) (Descriptor, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	i, ok := registryIdx[name]
	if !ok {
		return Descriptor{}, false
	}
	return registry[i], true
}

// Descriptors returns every registered entry in registration order.
func Descriptors() []Descriptor {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Descriptor, len(registry))
	copy(out, registry)
	return out
}

// WorkloadNames lists the registered single-enclave workload names in
// registration order.
func WorkloadNames() []string { return namesWhere(false) }

// ScenarioNames lists the registered multi-enclave scenario names in
// registration order.
func ScenarioNames() []string { return namesWhere(true) }

func namesWhere(scenario bool) []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	var out []string
	for _, d := range registry {
		if d.Scenario == scenario {
			out = append(out, d.Name)
		}
	}
	return out
}

// ValidWorkloadList renders the workload names for validation errors
// ("unknown workload X (valid: ...)").
func ValidWorkloadList() string { return strings.Join(WorkloadNames(), ", ") }

// ValidScenarioList renders the scenario names for validation errors.
func ValidScenarioList() string { return strings.Join(ScenarioNames(), ", ") }
