// Package scenario implements attested multi-enclave scenarios: N
// workloads running as concurrently simulated enclaves on one machine,
// time-shared by the deterministic sgx.Interleave scheduler and bound
// together by the internal/attest stack (quote handshakes, sealed key
// exchange, encrypted request streams).
//
// Scenarios register in the shared workloads registry (marked
// Scenario), so every valid-name list — wire validation, /v1 errors,
// CLI help — covers them without a second table; their builders live
// in this package's own table, keyed by the same names.
package scenario

import (
	"fmt"
	"sync"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

// SchemaVersion is the scenario wire envelope's current schema
// version. Specs carrying any other version are rejected at decode
// time, so an old daemon never misinterprets a newer envelope.
const SchemaVersion = 1

// maxEnclaves bounds a scenario's enclave count; beyond this a run
// models nothing the paper's contention analysis covers and only
// burns memory.
const maxEnclaves = 64

// Spec is the wire-visible body of a scenario run: the versioned
// envelope embedded in a harness spec's "scenario" field. Field order
// is the canonical encoding order (see harness.SpecWire).
type Spec struct {
	// Version is the envelope schema version; must be SchemaVersion.
	Version int `json:"version"`
	// Name is the registered scenario name.
	Name string `json:"name"`
	// Enclaves configures each simulated enclave. Empty means the
	// scenario's default cast.
	Enclaves []Enclave `json:"enclaves,omitempty"`
	// Quantum overrides the scheduler's slice length in cycles
	// (0 = default).
	Quantum uint64 `json:"quantum,omitempty"`
}

// Enclave is one co-resident enclave's sub-spec.
type Enclave struct {
	// Role is the scenario-defined part this enclave plays ("client",
	// "server", "node", "foreground", "neighbor"); empty means the
	// scenario's default for that slot.
	Role string `json:"role,omitempty"`
	// Size scales the enclave's working set against the EPC, like the
	// Table 1 input settings scale single-enclave workloads.
	Size workloads.Size `json:"size,omitempty"`
	// Ops overrides the enclave's work-unit count (0 = role default).
	Ops int `json:"ops,omitempty"`
}

// Instance is one built scenario, ready to interleave: per-enclave
// environments on the shared machine, their programs, and the
// post-run collector.
type Instance struct {
	// Envs are the per-enclave environments, one per program.
	Envs []*sgx.Env
	// Programs are the enclave bodies, index-aligned with Envs.
	Programs []sgx.Program
	// Quantum is the scheduler slice length (0 = default).
	Quantum uint64
	// Finish runs after every program returned and produces the
	// scenario's functional output.
	Finish func() (workloads.Output, error)
}

// Descriptor is one registered scenario.
type Descriptor struct {
	// Name is the registry name ("attested-session", ...).
	Name string
	// Property is the listing characterization.
	Property string
	// Defaults returns the default enclave cast for n enclaves
	// (n <= 0 means the scenario's preferred count).
	Defaults func(n int) []Enclave
	// Validate checks the scenario-specific shape of a spec (enclave
	// count, roles); nil means any cast is accepted.
	Validate func(sp Spec) error
	// Build constructs the scenario on a freshly booted machine.
	Build func(m *sgx.Machine, sp Spec, seed int64) (*Instance, error)
}

var (
	tableMu sync.RWMutex
	// table holds descriptors in registration order. guarded by tableMu
	table []Descriptor
	// tableIdx indexes table by name. guarded by tableMu
	tableIdx = make(map[string]int)
)

// Register adds a scenario to this package's builder table and to the
// shared workloads registry (as a Scenario entry), so the name shows
// up in every derived listing. Package init calls it; duplicates
// panic.
func Register(d Descriptor) {
	if d.Name == "" || d.Build == nil || d.Defaults == nil {
		panic(fmt.Sprintf("scenario: incomplete descriptor %+v", d))
	}
	workloads.Register(workloads.Descriptor{Name: d.Name, Property: d.Property, Scenario: true})
	tableMu.Lock()
	defer tableMu.Unlock()
	if _, dup := tableIdx[d.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", d.Name))
	}
	tableIdx[d.Name] = len(table)
	table = append(table, d)
}

// Lookup resolves a registered scenario by name.
func Lookup(name string) (Descriptor, bool) {
	tableMu.RLock()
	defer tableMu.RUnlock()
	i, ok := tableIdx[name]
	if !ok {
		return Descriptor{}, false
	}
	return table[i], true
}

// Names lists the registered scenario names in registration order.
func Names() []string {
	tableMu.RLock()
	defer tableMu.RUnlock()
	out := make([]string, len(table))
	for i, d := range table {
		out[i] = d.Name
	}
	return out
}

// Validate checks the envelope: schema version, a registered name
// (unknown names list the valid ones), and a sane enclave count,
// then the scenario's own shape rules.
func (sp Spec) Validate() error {
	if sp.Version != SchemaVersion {
		return fmt.Errorf("scenario: unsupported envelope version %d (this build speaks %d)", sp.Version, SchemaVersion)
	}
	d, ok := Lookup(sp.Name)
	if !ok {
		return fmt.Errorf("scenario: unknown scenario %q (valid: %s)", sp.Name, workloads.ValidScenarioList())
	}
	if len(sp.Enclaves) > maxEnclaves {
		return fmt.Errorf("scenario: %d enclaves exceeds the %d-enclave limit", len(sp.Enclaves), maxEnclaves)
	}
	if d.Validate != nil {
		return d.Validate(sp)
	}
	return nil
}

// Cast resolves the spec's enclave list, substituting the scenario's
// defaults when the list is empty.
func (sp Spec) Cast() []Enclave {
	if len(sp.Enclaves) > 0 {
		return sp.Enclaves
	}
	if d, ok := Lookup(sp.Name); ok {
		return d.Defaults(0)
	}
	return nil
}

// New returns a versioned spec for the named scenario with its
// default cast of n enclaves (n <= 0 means the scenario's preferred
// count). Unknown names yield an error listing the valid ones.
func New(name string, n int) (Spec, error) {
	d, ok := Lookup(name)
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (valid: %s)", name, workloads.ValidScenarioList())
	}
	return Spec{Version: SchemaVersion, Name: name, Enclaves: d.Defaults(n)}, nil
}

// workingSetPages maps an enclave's Size setting to a working set
// relative to the machine's EPC, following the Table 1 convention:
// Low fits comfortably, Medium nears the EPC, High exceeds it — so a
// Medium/High cast of several enclaves contends hard for the EPC even
// though each would fit alone.
func workingSetPages(epcPages int, s workloads.Size) int {
	switch s {
	case workloads.Medium:
		return (epcPages * 3) / 4
	case workloads.High:
		return (epcPages * 3) / 2
	default:
		return epcPages / 4
	}
}

// launchEnclave boots one Native-mode environment with an enclave
// sized for the given working set and returns it with the working
// set's base address.
func launchEnclave(m *sgx.Machine, wsPages int) (*sgx.Env, uint64, error) {
	env := m.NewEnv(sgx.Native)
	size := workloads.NativeImagePages + wsPages + 16
	if _, err := env.LaunchEnclaveReserve(workloads.NativeImagePages, workloads.NativeImagePages, size); err != nil {
		return nil, 0, err
	}
	base, err := env.Alloc(uint64(wsPages)*pageSize, pageSize)
	if err != nil {
		return nil, 0, err
	}
	return env, base, nil
}

// pageSize mirrors mem.PageSize without importing it everywhere.
const pageSize = 4096

// pollCost is the simulated cost of one poll of a shared mailbox or
// barrier while waiting for a co-resident enclave — an OCALL-free spin
// on untrusted shared memory.
const pollCost = 64

// touchPages sweeps the working set [base, base+pages), one write per
// page plus per-page compute, yielding to co-residents as it goes.
// This is the EPC pressure loop every scenario's enclaves apply.
func touchPages(p *sgx.Proc, base uint64, pages, stride int, salt uint64) uint64 {
	t := p.T()
	var sum uint64
	for i := 0; i < pages; i += stride {
		addr := base + uint64(i)*pageSize
		v := t.ReadU64(addr) + salt + uint64(i)
		t.WriteU64(addr, v)
		sum ^= v
		t.Compute(32)
		if i%16 == 0 {
			p.Yield()
		}
	}
	return sum
}
