package scenario

import (
	"fmt"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

// noisy-neighbor: one foreground enclave runs a fixed request loop
// while co-resident neighbor enclaves thrash their own working sets.
// The neighbors' EPC traffic evicts the foreground's pages between its
// quanta, so the foreground pays load-backs it never would alone; the
// scenario reports the interference ratio against a solo baseline run
// on an identically configured machine, making the degradation a
// first-class, reproducible measurement.

func init() {
	Register(Descriptor{
		Name:     "noisy-neighbor",
		Property: "Foreground degraded by co-resident enclaves",
		Defaults: noisyDefaults,
		Validate: noisyValidate,
		Build:    buildNoisy,
	})
}

const (
	noisyDefaultNeighbors = 3
	noisyDefaultOps       = 48
)

func noisyDefaults(n int) []Enclave {
	if n <= 0 {
		n = 1 + noisyDefaultNeighbors
	}
	cast := make([]Enclave, n)
	cast[0] = Enclave{Role: "foreground", Size: workloads.Low}
	for i := 1; i < n; i++ {
		cast[i] = Enclave{Role: "neighbor", Size: workloads.Medium}
	}
	return cast
}

func noisyValidate(sp Spec) error {
	cast := sp.Cast()
	if len(cast) < 2 {
		return fmt.Errorf("scenario: noisy-neighbor needs a foreground and at least 1 neighbor, got %d enclaves", len(cast))
	}
	if cast[0].Role != "" && cast[0].Role != "foreground" {
		return fmt.Errorf("scenario: noisy-neighbor enclave 0 must have role \"foreground\", got %q", cast[0].Role)
	}
	for i := 1; i < len(cast); i++ {
		if cast[i].Role != "" && cast[i].Role != "neighbor" {
			return fmt.Errorf("scenario: noisy-neighbor enclave %d must have role \"neighbor\", got %q", i, cast[i].Role)
		}
	}
	return nil
}

// foregroundLoop is the measured request loop, shared by the contended
// and the solo-baseline run so the two are identical work.
func foregroundLoop(p *sgx.Proc, base uint64, pages, ops int) uint64 {
	t := p.T()
	var sum uint64
	for i := 0; i < ops; i++ {
		t.ECall(func() {
			sum ^= touchPages(p, base, pages, 1, uint64(i))
			t.Compute(1024)
		})
		p.Yield()
	}
	return sum
}

func buildNoisy(m *sgx.Machine, sp Spec, seed int64) (*Instance, error) {
	cast := sp.Cast()
	n := len(cast)
	epc := m.Config().EPCPages

	ops := cast[0].Ops
	if ops <= 0 {
		ops = noisyDefaultOps
	}

	envs := make([]*sgx.Env, n)
	bases := make([]uint64, n)
	ws := make([]int, n)
	for i, e := range cast {
		ws[i] = workingSetPages(epc, e.Size)
		env, base, err := launchEnclave(m, ws[i])
		if err != nil {
			return nil, fmt.Errorf("scenario: launching %s enclave %d: %w", cast[i].Role, i, err)
		}
		envs[i] = env
		bases[i] = base
	}

	var fgCycles, fgSum uint64
	fgDone := false

	programs := make([]sgx.Program, n)
	programs[0] = func(p *sgx.Proc) {
		start := p.T().Clock.Cycles()
		fgSum = foregroundLoop(p, bases[0], ws[0], ops)
		fgCycles = p.T().Clock.Cycles() - start
		fgDone = true
	}
	for i := 1; i < n; i++ {
		idx := i
		programs[i] = func(p *sgx.Proc) {
			t := p.T()
			// Thrash until the foreground finishes; each sweep evicts
			// whatever the foreground had resident.
			for salt := uint64(0); !fgDone; salt++ {
				t.ECall(func() { _ = touchPages(p, bases[idx], ws[idx], 1, salt) })
				p.Yield()
			}
		}
	}

	return &Instance{
		Envs:     envs,
		Programs: programs,
		Quantum:  sp.Quantum,
		Finish: func() (workloads.Output, error) {
			// Solo baseline: the identical foreground loop, alone on an
			// identically configured machine. Deterministic, so the
			// interference ratio is as reproducible as the run itself.
			soloCycles, soloSum, err := soloBaseline(m.Config(), ws[0], ops)
			if err != nil {
				return workloads.Output{}, fmt.Errorf("scenario: solo baseline: %w", err)
			}
			if soloSum != fgSum {
				return workloads.Output{}, fmt.Errorf("scenario: solo baseline diverged: %#x vs %#x", soloSum, fgSum)
			}
			ratio := float64(fgCycles)
			if soloCycles > 0 {
				ratio = float64(fgCycles) / float64(soloCycles)
			}
			return workloads.Output{
				Checksum: fgSum,
				Ops:      int64(ops),
				Extra: map[string]float64{
					"foreground_cycles":  float64(fgCycles),
					"solo_cycles":        float64(soloCycles),
					"interference_ratio": ratio,
					"neighbors":          float64(n - 1),
				},
			}, nil
		},
	}, nil
}

// soloBaseline runs the foreground loop alone on a fresh machine with
// the same configuration and returns its cycles and checksum.
func soloBaseline(cfg sgx.Config, pages, ops int) (uint64, uint64, error) {
	m := sgx.NewMachine(cfg)
	env, base, err := launchEnclave(m, pages)
	if err != nil {
		return 0, 0, err
	}
	start := env.Elapsed()
	var sum uint64
	perr := sgx.Protect(func() {
		sgx.Interleave(cfg.Seed, 0, []*sgx.Env{env}, []sgx.Program{func(p *sgx.Proc) {
			sum = foregroundLoop(p, base, pages, ops)
		}})
	})
	if perr != nil {
		return 0, 0, perr
	}
	return env.Elapsed() - start, sum, nil
}
