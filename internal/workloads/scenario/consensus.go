package scenario

import (
	"encoding/binary"
	"fmt"

	"sgxgauge/internal/attest"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

// consensus: N node enclaves advance a block chain in lockstep rounds.
// Each round every node computes a block over its working set, quotes
// the block hash (the attestation stand-in for a validator signature),
// posts it to the untrusted ledger, then verifies every peer's quote
// and seals its updated chain state. With a Medium/High cast the
// combined working sets exceed the EPC, so the verify-and-seal phase
// lands in the middle of the co-residents' eviction storms — the
// multi-enclave contention figure single-workload runs cannot produce.

func init() {
	Register(Descriptor{
		Name:     "consensus",
		Property: "N attested validators in lockstep rounds",
		Defaults: consensusDefaults,
		Validate: consensusValidate,
		Build:    buildConsensus,
	})
}

const (
	consensusDefaultNodes  = 4
	consensusDefaultRounds = 6
)

func consensusDefaults(n int) []Enclave {
	if n <= 0 {
		n = consensusDefaultNodes
	}
	cast := make([]Enclave, n)
	for i := range cast {
		cast[i] = Enclave{Role: "node", Size: workloads.Medium}
	}
	return cast
}

func consensusValidate(sp Spec) error {
	cast := sp.Cast()
	if len(cast) < 2 {
		return fmt.Errorf("scenario: consensus needs at least 2 nodes, got %d", len(cast))
	}
	for i, e := range cast {
		if e.Role != "" && e.Role != "node" {
			return fmt.Errorf("scenario: consensus enclave %d must have role \"node\", got %q", i, e.Role)
		}
	}
	return nil
}

// post is one node's signed block for one round.
type post struct {
	hash  uint64
	quote attest.Quote
}

func buildConsensus(m *sgx.Machine, sp Spec, seed int64) (*Instance, error) {
	cast := sp.Cast()
	n := len(cast)
	epc := m.Config().EPCPages

	rounds := cast[0].Ops
	if rounds <= 0 {
		rounds = consensusDefaultRounds
	}

	envs := make([]*sgx.Env, n)
	bases := make([]uint64, n)
	ws := make([]int, n)
	for i, e := range cast {
		ws[i] = workingSetPages(epc, e.Size) / n
		if ws[i] < 8 {
			ws[i] = 8
		}
		env, base, err := launchEnclave(m, ws[i])
		if err != nil {
			return nil, fmt.Errorf("scenario: launching node %d: %w", i, err)
		}
		envs[i] = env
		bases[i] = base
	}

	plat := attest.NewPlatform(m.Config().Seed)
	meas := make([]attest.Measurement, n)
	ids := make([]uint32, n)
	for i, env := range envs {
		meas[i] = attest.MeasureEnclave(env.Enclave)
		ids[i] = env.Enclave.ID
	}

	// ledger[r][i] is node i's post for round r; nil until posted.
	// Programs are serialized by the scheduler, so plain slices are
	// race-free and deterministic.
	ledger := make([][]*post, rounds)
	for r := range ledger {
		ledger[r] = make([]*post, n)
	}

	chains := make([]uint64, n)
	committed := make([]int, n)
	var failure error

	programs := make([]sgx.Program, n)
	for i := range programs {
		node := i
		programs[i] = func(p *sgx.Proc) {
			t := p.T()
			for r := 0; r < rounds && failure == nil; r++ {
				// Compute this round's block over the node's working
				// set, inside the enclave.
				var hash uint64
				t.ECall(func() {
					hash = touchPages(p, bases[node], ws[node], 1, uint64(r)<<8|uint64(node))
					hash = hash*0x9e3779b97f4a7c15 + chains[node] + uint64(r)
					t.Compute(2048) // block assembly
				})
				var rd [32]byte
				binary.LittleEndian.PutUint64(rd[:], hash)
				ledger[r][node] = &post{hash: hash, quote: plat.Quote(t, meas[node], rd)}

				// Wait for the round to fill, then verify every peer's
				// quote and fold their blocks into the chain.
				for peer := 0; peer < n; peer++ {
					for ledger[r][peer] == nil {
						t.Compute(pollCost)
						p.Yield()
					}
				}
				next := chains[node]
				for peer := 0; peer < n; peer++ {
					pb := ledger[r][peer]
					if err := plat.VerifyExpected(t, pb.quote, meas[peer]); err != nil {
						failure = fmt.Errorf("node %d rejects node %d's round-%d quote: %w", node, peer, r, err)
						return
					}
					if binary.LittleEndian.Uint64(pb.quote.ReportData[:]) != pb.hash {
						failure = fmt.Errorf("node %d: node %d's round-%d quote binds the wrong block", node, peer, r)
						return
					}
					next = next*31 + pb.hash
				}
				chains[node] = next
				committed[node]++

				// Seal the updated chain state — the persistence write
				// that lands inside the co-residents' eviction storms.
				var st [8]byte
				binary.LittleEndian.PutUint64(st[:], next)
				t.ECall(func() { _ = plat.SealTo(t, ids[node], uint64(r), st[:]) })
				p.Yield()
			}
		}
	}

	return &Instance{
		Envs:     envs,
		Programs: programs,
		Quantum:  sp.Quantum,
		Finish: func() (workloads.Output, error) {
			if failure != nil {
				return workloads.Output{}, failure
			}
			// Consensus check: every node must have converged on the
			// same chain.
			for i := 1; i < n; i++ {
				if chains[i] != chains[0] {
					return workloads.Output{}, fmt.Errorf("scenario: node %d diverged: chain %#x vs %#x", i, chains[i], chains[0])
				}
			}
			blocks := 0
			for _, c := range committed {
				blocks += c
			}
			return workloads.Output{
				Checksum: chains[0],
				Ops:      int64(blocks),
				Extra: map[string]float64{
					"nodes":               float64(n),
					"rounds":              float64(rounds),
					"quote_verifications": float64(n * n * rounds),
				},
			}, nil
		},
	}, nil
}
