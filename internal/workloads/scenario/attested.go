package scenario

import (
	"encoding/binary"
	"fmt"

	"sgxgauge/internal/attest"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

// attested-session: a client and a server enclave on one machine
// perform a mutual quote handshake, exchange a sealed session key,
// and stream encrypted requests through ECALL/OCALL transitions —
// the full attested-service round trip, with both enclaves' EPC
// working sets co-resident.

func init() {
	Register(Descriptor{
		Name:     "attested-session",
		Property: "Attested client/server request stream",
		Defaults: attestedDefaults,
		Validate: attestedValidate,
		Build:    buildAttested,
	})
}

func attestedDefaults(int) []Enclave {
	return []Enclave{
		{Role: "client", Size: workloads.Low},
		{Role: "server", Size: workloads.Medium},
	}
}

func attestedValidate(sp Spec) error {
	cast := sp.Cast()
	if len(cast) != 2 {
		return fmt.Errorf("scenario: attested-session needs exactly 2 enclaves (client, server), got %d", len(cast))
	}
	for i, role := range []string{"client", "server"} {
		if cast[i].Role != "" && cast[i].Role != role {
			return fmt.Errorf("scenario: attested-session enclave %d must have role %q, got %q", i, role, cast[i].Role)
		}
	}
	return nil
}

// mailbox is the untrusted shared channel between the two enclaves.
// Programs are strictly serialized by the scheduler, so plain slices
// are deterministic.
type mailbox struct {
	queue [][]byte
}

func (b *mailbox) send(msg []byte) { b.queue = append(b.queue, msg) }

// recv polls until a message arrives, charging poll cost and yielding
// so the peer can make progress.
func (b *mailbox) recv(p *sgx.Proc) []byte {
	for len(b.queue) == 0 {
		p.T().Compute(pollCost)
		p.Yield()
	}
	msg := b.queue[0]
	b.queue = b.queue[1:]
	return msg
}

const attestedDefaultOps = 96

func buildAttested(m *sgx.Machine, sp Spec, seed int64) (*Instance, error) {
	cast := sp.Cast()
	epc := m.Config().EPCPages

	cliWS := workingSetPages(epc, cast[0].Size)
	srvWS := workingSetPages(epc, cast[1].Size)
	cliEnv, cliBase, err := launchEnclave(m, cliWS)
	if err != nil {
		return nil, fmt.Errorf("scenario: launching client enclave: %w", err)
	}
	srvEnv, srvBase, err := launchEnclave(m, srvWS)
	if err != nil {
		return nil, fmt.Errorf("scenario: launching server enclave: %w", err)
	}

	ops := cast[0].Ops
	if ops <= 0 {
		ops = attestedDefaultOps
	}

	plat := attest.NewPlatform(m.Config().Seed)
	cliMeas := attest.MeasureEnclave(cliEnv.Enclave)
	srvMeas := attest.MeasureEnclave(srvEnv.Enclave)
	cliID, srvID := cliEnv.Enclave.ID, srvEnv.Enclave.ID

	toServer, toClient := &mailbox{}, &mailbox{}
	out := &workloads.Output{Extra: map[string]float64{}}
	var handshakeCycles, latencySum uint64
	var failure error

	client := func(p *sgx.Proc) {
		t := p.T()
		start := t.Clock.Cycles()

		// Handshake: quote, verify the server's quote against its
		// known measurement, then seal the session secret to the
		// server's identity.
		var rd [32]byte
		binary.LittleEndian.PutUint64(rd[:], uint64(seed))
		q := plat.Quote(t, cliMeas, rd)
		toServer.send(append(q.Measurement[:], append(q.ReportData[:], q.Signature[:]...)...))
		sq := decodeQuote(toClient.recv(p))
		if err := plat.VerifyExpected(t, sq, srvMeas); err != nil {
			failure = fmt.Errorf("client rejects server quote: %w", err)
			return
		}
		secret := attest.SessionSecret(seed, cliID, srvID)
		toServer.send(plat.SealTo(t, srvID, uint64(seed), secret))
		sess := attest.NewSession(plat, cliID, srvID, secret)
		handshakeCycles = t.Clock.Cycles() - start

		// Request stream: encrypt inside the enclave, OCALL the
		// ciphertext out to the untrusted channel, poll for the
		// encrypted response.
		var sum uint64
		for i := 0; i < ops; i++ {
			reqStart := t.Clock.Cycles()
			var req [32]byte
			binary.LittleEndian.PutUint64(req[:], uint64(i))
			var ct []byte
			t.ECall(func() {
				binary.LittleEndian.PutUint64(req[8:], touchPages(p, cliBase, cliWS, 8, uint64(i)))
				ct = sess.Encrypt(t, uint64(2*i), req[:])
			})
			t.OCall(func() { toServer.send(ct) })
			resp, err := sess.Decrypt(t, uint64(2*i+1), toClient.recv(p))
			if err != nil {
				failure = fmt.Errorf("client decrypting response %d: %w", i, err)
				return
			}
			sum ^= binary.LittleEndian.Uint64(resp)
			latencySum += t.Clock.Cycles() - reqStart
			p.Yield()
		}
		out.Checksum = sum
		out.Ops = int64(ops)
	}

	server := func(p *sgx.Proc) {
		t := p.T()
		cq := decodeQuote(toServer.recv(p))
		if err := plat.VerifyExpected(t, cq, cliMeas); err != nil {
			failure = fmt.Errorf("server rejects client quote: %w", err)
			return
		}
		var rd [32]byte
		binary.LittleEndian.PutUint64(rd[:], uint64(seed)+1)
		q := plat.Quote(t, srvMeas, rd)
		toClient.send(append(q.Measurement[:], append(q.ReportData[:], q.Signature[:]...)...))
		secret, err := plat.UnsealAt(t, srvID, uint64(seed), toServer.recv(p))
		if err != nil {
			failure = fmt.Errorf("server unsealing session secret: %w", err)
			return
		}
		sess := attest.NewSession(plat, cliID, srvID, secret)

		for i := 0; i < ops; i++ {
			req, err := sess.Decrypt(t, uint64(2*i), toServer.recv(p))
			if err != nil {
				failure = fmt.Errorf("server decrypting request %d: %w", i, err)
				return
			}
			// Service the request inside the enclave: sweep the
			// server's working set (the EPC-pressure half of the
			// scenario) and answer with a digest.
			var resp [16]byte
			t.ECall(func() {
				digest := touchPages(p, srvBase, srvWS, 1, binary.LittleEndian.Uint64(req))
				binary.LittleEndian.PutUint64(resp[:], digest^binary.LittleEndian.Uint64(req[8:]))
			})
			var ct []byte
			t.ECall(func() { ct = sess.Encrypt(t, uint64(2*i+1), resp[:]) })
			t.OCall(func() { toClient.send(ct) })
			p.Yield()
		}
	}

	return &Instance{
		Envs:     []*sgx.Env{cliEnv, srvEnv},
		Programs: []sgx.Program{client, server},
		Quantum:  sp.Quantum,
		Finish: func() (workloads.Output, error) {
			if failure != nil {
				return workloads.Output{}, failure
			}
			if out.Ops > 0 {
				out.MeanLatency = float64(latencySum) / float64(out.Ops)
			}
			out.Extra["handshake_cycles"] = float64(handshakeCycles)
			out.Extra["client_ws_pages"] = float64(cliWS)
			out.Extra["server_ws_pages"] = float64(srvWS)
			return *out, nil
		},
	}, nil
}

// decodeQuote reverses the mailbox encoding of a quote.
func decodeQuote(b []byte) attest.Quote {
	var q attest.Quote
	copy(q.Measurement[:], b[:32])
	copy(q.ReportData[:], b[32:64])
	copy(q.Signature[:], b[64:96])
	return q
}
