package btree

import (
	"math/rand"
	"testing"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/wltest"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "BTree" || !w.NativePort() {
		t.Error("metadata wrong")
	}
	if w.Property() != "Data/CPU-intensive" {
		t.Errorf("property = %q", w.Property())
	}
}

func TestParamsScaleWithEPC(t *testing.T) {
	w := New()
	small := w.DefaultParams(96, workloads.Medium)
	big := w.DefaultParams(192, workloads.Medium)
	if big.MustKnob("elements") <= small.MustKnob("elements") {
		t.Error("elements do not scale with the EPC")
	}
	low := w.DefaultParams(96, workloads.Low)
	high := w.DefaultParams(96, workloads.High)
	if !(low.MustKnob("elements") < small.MustKnob("elements") && small.MustKnob("elements") < high.MustKnob("elements")) {
		t.Error("Low < Medium < High ordering violated")
	}
	// The touched working set (not the slack-padded region) must
	// straddle the EPC: Low below, High above.
	if touched := low.MustKnob("elements") * bytesPerElement / mem.PageSize; touched >= 96 {
		t.Errorf("Low working set %d pages >= EPC", touched)
	}
	if touched := high.MustKnob("elements") * bytesPerElement / mem.PageSize; touched <= 96 {
		t.Errorf("High working set %d pages <= EPC", touched)
	}
}

// TestTreeAgainstMapModel is the model-based property test: the
// in-space B-tree must agree with a Go map on membership for inserted
// and absent keys.
func TestTreeAgainstMapModel(t *testing.T) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 128})
	env := m.NewEnv(sgx.Vanilla)
	region := m.AllocUntrusted(512*mem.PageSize, mem.PageSize)
	tr := newTree(env.Main, region, 512*mem.PageSize)

	rng := rand.New(rand.NewSource(1))
	model := map[uint64]bool{}
	for i := 0; i < 30000; i++ {
		k := uint64(rng.Int63n(1 << 40))
		tr.Insert(k)
		model[k] = true
	}
	for k := range model {
		if !tr.Contains(k) {
			t.Fatalf("inserted key %d missing", k)
		}
	}
	misses := 0
	for i := 0; i < 10000; i++ {
		k := uint64(rng.Int63n(1<<40)) | (1 << 62) // disjoint range
		if tr.Contains(k) {
			t.Fatalf("phantom key %d found", k)
		}
		misses++
	}
	if misses != 10000 {
		t.Fatal("miss loop broken")
	}
}

func TestTreeOrderedInsert(t *testing.T) {
	// Sorted insertion exercises the rightmost-split path.
	m := sgx.NewMachine(sgx.Config{EPCPages: 128})
	env := m.NewEnv(sgx.Vanilla)
	region := m.AllocUntrusted(256*mem.PageSize, mem.PageSize)
	tr := newTree(env.Main, region, 256*mem.PageSize)
	for i := uint64(0); i < 20000; i++ {
		tr.Insert(i)
	}
	for i := uint64(0); i < 20000; i++ {
		if !tr.Contains(i) {
			t.Fatalf("key %d missing after ordered insert", i)
		}
	}
	if tr.Contains(20001) {
		t.Fatal("phantom key after ordered insert")
	}
}

func TestRegionExhaustionPanics(t *testing.T) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 128})
	env := m.NewEnv(sgx.Vanilla)
	region := m.AllocUntrusted(2*mem.PageSize, mem.PageSize)
	tr := newTree(env.Main, region, 2*mem.PageSize)
	defer func() {
		if recover() == nil {
			t.Error("node-region exhaustion did not panic")
		}
	}()
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(i)
	}
}

func TestRunAcrossModes(t *testing.T) {
	out := wltest.RunAllModes(t, New(), workloads.Low)
	van := out[sgx.Vanilla]
	if van.Ops == 0 || van.Checksum == 0 {
		t.Error("empty output")
	}
	// Roughly half the probes hit by construction.
	found := van.Extra["found"]
	if found < float64(van.Ops)*3/10 || found > float64(van.Ops)*7/10 {
		t.Errorf("found = %v of %d probes, want ~half", found, van.Ops)
	}
}

func TestNativeMediumThrashesEPC(t *testing.T) {
	ctx := wltest.NewCtx(t, New(), sgx.Native, workloads.Medium)
	before := ctx.Env.Snapshot()
	if _, err := New().Run(ctx); err != nil {
		t.Fatal(err)
	}
	delta := ctx.Env.Snapshot().Sub(before)
	if delta.Get(perf.EPCEvictions) == 0 {
		t.Error("Medium (~EPC-sized) B-Tree caused no evictions")
	}
}

func TestInvalidParams(t *testing.T) {
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla,
		workloads.Params{Knobs: map[string]int64{"elements": 0, "finds": 0}}, 96)
	if _, err := New().Run(ctx); err == nil {
		t.Error("zero elements accepted")
	}
}
