// Package btree implements the B-Tree workload of SGXGauge (§4.2.3):
// a real B-tree living in the simulated enclave address space, built
// from a configured number of elements and then probed with random
// find operations. Its pointer-chasing page accesses are what make it
// "designed to stress the EPC and the paging system".
package btree

import (
	"fmt"
	"math/rand"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

// Node layout: each node occupies exactly one page.
//
//	offset 0:   u32 nkeys
//	offset 4:   u32 leaf (1 = leaf)
//	offset 8:   keys  [maxKeys]u64
//	offset 8+8*maxKeys: children [maxKeys+1]u64 (page addresses)
const (
	maxKeys     = 200
	minKeys     = maxKeys / 2
	keysOff     = 8
	childrenOff = keysOff + 8*maxKeys
)

// bytesPerElement approximates the tree bytes actually touched per
// stored key at ~70% node fill, used to derive element counts from
// footprint targets. regionBytesPerElement adds allocation slack for
// fill-factor variance; the slack pages are never touched so they do
// not perturb the working set.
const (
	bytesPerElement       = 30
	regionBytesPerElement = 38
)

// Workload is the B-Tree benchmark.
type Workload struct{}

// New returns the workload.
func New() *Workload { return &Workload{} }

// Name implements workloads.Workload.
func (*Workload) Name() string { return "BTree" }

// Property implements workloads.Workload.
func (*Workload) Property() string { return "Data/CPU-intensive" }

// NativePort implements workloads.Workload; B-Tree is one of the six
// ported workloads.
func (*Workload) NativePort() bool { return true }

// footprintRatios mirrors Table 2's 1M/1.5M/2M elements against the
// 92 MB EPC.
var footprintRatios = map[workloads.Size]float64{
	workloads.Low:    0.78,
	workloads.Medium: 1.17,
	workloads.High:   1.56,
}

// DefaultParams implements workloads.Workload.
func (*Workload) DefaultParams(epcPages int, s workloads.Size) workloads.Params {
	bytes := workloads.BytesForRatio(epcPages, footprintRatios[s])
	elements := bytes / bytesPerElement
	return workloads.Params{
		Size:    s,
		Threads: 1,
		Knobs: map[string]int64{
			"elements": elements,
			"finds":    elements / 2,
		},
	}
}

// FootprintPages implements workloads.Workload.
func (*Workload) FootprintPages(p workloads.Params) (int, error) {
	elements, err := p.Knob("elements")
	if err != nil {
		return 0, err
	}
	return int(elements*regionBytesPerElement/mem.PageSize + 8), nil
}

// Setup implements workloads.Workload; B-Tree needs no host-side
// preparation.
func (*Workload) Setup(ctx *workloads.Ctx) error { return nil }

// tree is a B-tree whose nodes live in the simulated address space.
type tree struct {
	t        *sgx.Thread
	root     uint64
	nextPage uint64
	limit    uint64
	// shift is scratch for moveRun's bulk key/child moves.
	shift [maxKeys + 1]uint64
}

// moveRun copies cnt consecutive u64 slots from src to dst as one
// read extent plus one write extent — the bulk form of the shift
// loops in splitChild and Insert. The full run is staged in scratch
// before any write, so overlapping moves are safe in either
// direction; the access count matches the per-slot loop it replaces.
func (tr *tree) moveRun(src, dst uint64, cnt int) {
	if cnt <= 0 {
		return
	}
	buf := tr.shift[:cnt]
	tr.t.ReadU64Run(src, buf)
	tr.t.WriteU64Run(dst, buf)
}

func newTree(t *sgx.Thread, region uint64, regionBytes uint64) *tree {
	tr := &tree{t: t, nextPage: region, limit: region + regionBytes}
	tr.root = tr.allocNode(true)
	return tr
}

func (tr *tree) allocNode(leaf bool) uint64 {
	if tr.nextPage+mem.PageSize > tr.limit {
		panic("btree: node region exhausted")
	}
	addr := tr.nextPage
	tr.nextPage += mem.PageSize
	tr.t.WriteU32(addr, 0)
	l := uint32(0)
	if leaf {
		l = 1
	}
	tr.t.WriteU32(addr+4, l)
	return addr
}

func (tr *tree) nkeys(n uint64) int       { return int(tr.t.ReadU32(n)) }
func (tr *tree) setNKeys(n uint64, v int) { tr.t.WriteU32(n, uint32(v)) }
func (tr *tree) isLeaf(n uint64) bool     { return tr.t.ReadU32(n+4) == 1 }

// header reads a node's packed header — nkeys and the leaf flag are
// adjacent u32s — in a single aligned access, the way a real port
// would pull in the whole header word it is about to branch on.
func (tr *tree) header(n uint64) (nk int, leaf bool) {
	h := tr.t.ReadU64(n)
	return int(uint32(h)), uint32(h>>32) == 1
}
func (tr *tree) key(n uint64, i int) uint64 {
	return tr.t.ReadU64(n + keysOff + uint64(8*i))
}
func (tr *tree) setKey(n uint64, i int, k uint64) {
	tr.t.WriteU64(n+keysOff+uint64(8*i), k)
}
func (tr *tree) child(n uint64, i int) uint64 {
	return tr.t.ReadU64(n + childrenOff + uint64(8*i))
}
func (tr *tree) setChild(n uint64, i int, c uint64) {
	tr.t.WriteU64(n+childrenOff+uint64(8*i), c)
}

// findSlot binary-searches node n (holding nk keys) for k, returning
// the first index with key >= k. The caller supplies nk from its
// header read so the header is touched once per level.
func (tr *tree) findSlot(n uint64, nk int, k uint64) int {
	lo, hi := 0, nk
	for lo < hi {
		mid := (lo + hi) / 2
		if tr.key(n, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Contains reports whether k is in the tree.
func (tr *tree) Contains(k uint64) bool {
	n := tr.root
	for {
		nk, leaf := tr.header(n)
		i := tr.findSlot(n, nk, k)
		if i < nk && tr.key(n, i) == k {
			return true
		}
		if leaf {
			return false
		}
		n = tr.child(n, i)
	}
}

// splitChild splits the full i-th child of parent, which holds pn
// keys (from the caller's header read).
func (tr *tree) splitChild(parent uint64, i, pn int) {
	full := tr.child(parent, i)
	leaf := tr.isLeaf(full)
	right := tr.allocNode(leaf)
	midKey := tr.key(full, minKeys)

	// Move the upper keys (and children) of full to right, one bulk
	// run each.
	rk := maxKeys - minKeys - 1
	tr.moveRun(full+keysOff+uint64(8*(minKeys+1)), right+keysOff, rk)
	if !leaf {
		tr.moveRun(full+childrenOff+uint64(8*(minKeys+1)), right+childrenOff, rk+1)
	}
	tr.setNKeys(right, rk)
	tr.setNKeys(full, minKeys)

	// Shift parent entries to make room.
	tr.moveRun(parent+keysOff+uint64(8*i), parent+keysOff+uint64(8*(i+1)), pn-i)
	tr.moveRun(parent+childrenOff+uint64(8*(i+1)), parent+childrenOff+uint64(8*(i+2)), pn-i)
	tr.setKey(parent, i, midKey)
	tr.setChild(parent, i+1, right)
	tr.setNKeys(parent, pn+1)
}

// Insert adds k to the tree (duplicates are kept; the workload's keys
// are unique by construction). Each level reads its node header once
// and carries (nkeys, leaf) down the descent.
func (tr *tree) Insert(k uint64) {
	nk, leaf := tr.header(tr.root)
	if nk == maxKeys {
		newRoot := tr.allocNode(false)
		tr.setChild(newRoot, 0, tr.root)
		tr.root = newRoot
		tr.splitChild(newRoot, 0, 0)
		nk, leaf = tr.header(tr.root)
	}
	n := tr.root
	for {
		i := tr.findSlot(n, nk, k)
		if leaf {
			tr.moveRun(n+keysOff+uint64(8*i), n+keysOff+uint64(8*(i+1)), nk-i)
			tr.setKey(n, i, k)
			tr.setNKeys(n, nk+1)
			return
		}
		if i < nk && tr.key(n, i) == k {
			i++ // equal keys descend right
		}
		child := tr.child(n, i)
		cnk, cleaf := tr.header(child)
		if cnk == maxKeys {
			tr.splitChild(n, i, nk)
			if k > tr.key(n, i) {
				i++
			}
			child = tr.child(n, i)
			cnk, cleaf = tr.header(child)
		}
		n, nk, leaf = child, cnk, cleaf
	}
}

// Run implements workloads.Workload.
func (w *Workload) Run(ctx *workloads.Ctx) (workloads.Output, error) {
	p := ctx.Params
	elements, err := p.Knob("elements")
	if err != nil {
		return workloads.Output{}, err
	}
	finds, err := p.Knob("finds")
	if err != nil {
		return workloads.Output{}, err
	}
	if elements <= 0 {
		return workloads.Output{}, fmt.Errorf("btree: elements must be positive, got %d", elements)
	}

	foot, err := w.FootprintPages(p)
	if err != nil {
		return workloads.Output{}, err
	}
	regionBytes := uint64(foot) * mem.PageSize
	region, err := ctx.Env.Alloc(regionBytes, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("btree: allocating node region: %w", err)
	}
	t := ctx.Env.Main
	rng := rand.New(rand.NewSource(ctx.Seed))

	var tr *tree
	// Build phase: one enclave entry covers the whole build in the
	// ported version.
	t.ECall(func() {
		tr = newTree(t, region, regionBytes)
		for i := int64(0); i < elements; i++ {
			tr.Insert(workloads.Mix64(uint64(i)))
		}
	})

	// Find phase: batches of lookups per ECALL, half hitting, half
	// missing.
	var checksum uint64
	var found int64
	const batch = 256
	for done := int64(0); done < finds; done += batch {
		n := batch
		if finds-done < batch {
			n = int(finds - done)
		}
		keys := make([]uint64, n)
		for i := range keys {
			if rng.Intn(2) == 0 {
				keys[i] = workloads.Mix64(uint64(rng.Int63n(elements)))
			} else {
				keys[i] = workloads.Mix64(uint64(elements + rng.Int63n(elements)))
			}
		}
		t.ECall(func() {
			for _, k := range keys {
				if tr.Contains(k) {
					found++
					checksum = workloads.FoldChecksum(checksum, k)
				}
			}
		})
	}
	return workloads.Output{
		Checksum: checksum,
		Ops:      finds,
		Extra:    map[string]float64{"found": float64(found)},
	}, nil
}
