package workloads

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSizeString(t *testing.T) {
	if Low.String() != "Low" || Medium.String() != "Medium" || High.String() != "High" {
		t.Error("size names wrong")
	}
	if Size(9).String() != "Size(9)" {
		t.Error("unknown size name wrong")
	}
	if len(Sizes()) != 3 {
		t.Error("Sizes() wrong length")
	}
}

func TestKnobMissingListsAvailable(t *testing.T) {
	p := Params{Knobs: map[string]int64{"alpha": 1, "beta": 2}}
	if v, err := p.Knob("alpha"); err != nil || v != 1 {
		t.Errorf("Knob(alpha) = %d, %v", v, err)
	}
	_, err := p.Knob("gamma")
	if err == nil {
		t.Fatal("missing knob did not error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"gamma"`) ||
		!strings.Contains(msg, "alpha, beta") {
		t.Errorf("error %q does not name the missing knob and list the available ones", msg)
	}
}

func TestMustKnobPanicsWhenMissing(t *testing.T) {
	p := Params{Knobs: map[string]int64{"a": 1}}
	if p.MustKnob("a") != 1 {
		t.Error("Knob lookup failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("missing knob did not panic")
		}
	}()
	p.MustKnob("b")
}

func TestWithKnobCopies(t *testing.T) {
	p := Params{Size: Medium, Threads: 4, Knobs: map[string]int64{"a": 1}}
	q := p.WithKnob("a", 2)
	if q.MustKnob("a") != 2 || p.MustKnob("a") != 1 {
		t.Error("WithKnob mutated the original")
	}
	if q.Size != Medium || q.Threads != 4 {
		t.Error("WithKnob dropped fields")
	}
	r := p.WithKnob("b", 9)
	if r.MustKnob("b") != 9 || r.MustKnob("a") != 1 {
		t.Error("WithKnob add failed")
	}
}

func TestPagesForRatio(t *testing.T) {
	if PagesForRatio(100, 0.5) != 50 {
		t.Error("PagesForRatio(100, 0.5)")
	}
	if PagesForRatio(100, 0.001) != 1 {
		t.Error("tiny ratio must clamp to 1 page")
	}
	if BytesForRatio(100, 1.0) != 100*4096 {
		t.Error("BytesForRatio")
	}
}

func TestNativeEnclaveSize(t *testing.T) {
	got := NativeEnclaveSize(100)
	if got <= 100+NativeImagePages {
		t.Errorf("NativeEnclaveSize(100) = %d, must include slack", got)
	}
}

func TestMix64Properties(t *testing.T) {
	// Injective-ish: no collisions across a contiguous range.
	seen := map[uint64]bool{}
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
	// Deterministic.
	f := func(x uint64) bool { return Mix64(x) == Mix64(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Avalanche: flipping one input bit flips many output bits.
	diff := Mix64(0) ^ Mix64(1)
	bits := 0
	for ; diff != 0; diff &= diff - 1 {
		bits++
	}
	if bits < 16 {
		t.Errorf("Mix64(0)^Mix64(1) differs in only %d bits", bits)
	}
}

func TestFoldChecksumOrderDependent(t *testing.T) {
	a := FoldChecksum(FoldChecksum(0, 1), 2)
	b := FoldChecksum(FoldChecksum(0, 2), 1)
	if a == b {
		t.Error("FoldChecksum is order-independent; reordering bugs would go unnoticed")
	}
}
