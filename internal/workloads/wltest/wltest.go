// Package wltest provides helpers for workload tests: it assembles a
// machine, environment, filesystem and (for LibOS mode) a library-OS
// instance the way the harness does, at test-friendly scale.
package wltest

import (
	"testing"

	"sgxgauge/internal/libos"
	"sgxgauge/internal/osal"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

// DefaultEPCPages is the test-scale EPC size.
const DefaultEPCPages = 96

// NewCtx builds a ready-to-run context for the workload in the given
// mode at test scale. Setup is executed; a Native enclave (sized like
// the harness does) or a LibOS instance is prepared as needed.
func NewCtx(t *testing.T, w workloads.Workload, mode sgx.Mode, size workloads.Size) *workloads.Ctx {
	t.Helper()
	return NewCtxEPC(t, w, mode, size, DefaultEPCPages)
}

// NewCtxEPC is NewCtx with an explicit EPC size.
func NewCtxEPC(t *testing.T, w workloads.Workload, mode sgx.Mode, size workloads.Size, epcPages int) *workloads.Ctx {
	t.Helper()
	params := w.DefaultParams(epcPages, size)
	return NewCtxParams(t, w, mode, params, epcPages)
}

// NewCtxParams is NewCtx with explicit parameters.
func NewCtxParams(t *testing.T, w workloads.Workload, mode sgx.Mode, params workloads.Params, epcPages int) *workloads.Ctx {
	t.Helper()
	m := sgx.NewMachine(sgx.Config{EPCPages: epcPages})
	fs := osal.NewFS()
	ctx := &workloads.Ctx{RawFS: fs, Params: params, Seed: 42}
	if err := w.Setup(ctx); err != nil {
		t.Fatalf("setup: %v", err)
	}
	switch mode {
	case sgx.Vanilla:
		ctx.Env = m.NewEnv(sgx.Vanilla)
		ctx.FS = fs
	case sgx.Native:
		env := m.NewEnv(sgx.Native)
		foot, err := w.FootprintPages(params)
		if err != nil {
			t.Fatalf("footprint: %v", err)
		}
		sz := workloads.NativeEnclaveSize(foot)
		if _, err := env.LaunchEnclaveReserve(sz, workloads.NativeImagePages, sz); err != nil {
			t.Fatalf("launch: %v", err)
		}
		ctx.Env = env
		ctx.FS = fs
	case sgx.LibOS:
		inst, err := libos.Start(m, fs, libos.Manifest{Binary: w.Name(), Files: fs.List()})
		if err != nil {
			t.Fatalf("libos start: %v", err)
		}
		ctx.Env = inst.Env
		ctx.LibOS = inst
		ctx.FS = inst.FS()
	}
	return ctx
}

// Modes returns the execution modes a workload supports.
func Modes(w workloads.Workload) []sgx.Mode {
	if w.NativePort() {
		return []sgx.Mode{sgx.Vanilla, sgx.Native, sgx.LibOS}
	}
	return []sgx.Mode{sgx.Vanilla, sgx.LibOS}
}

// RunAllModes runs the workload at the given size in every supported
// mode and asserts the functional checksums agree, returning the
// per-mode outputs.
func RunAllModes(t *testing.T, w workloads.Workload, size workloads.Size) map[sgx.Mode]workloads.Output {
	t.Helper()
	out := map[sgx.Mode]workloads.Output{}
	for _, mode := range Modes(w) {
		ctx := NewCtx(t, w, mode, size)
		res, err := w.Run(ctx)
		if err != nil {
			t.Fatalf("%v mode: %v", mode, err)
		}
		out[mode] = res
	}
	want := out[sgx.Vanilla].Checksum
	for _, mode := range Modes(w) {
		if res := out[mode]; res.Checksum != want {
			t.Errorf("%v-mode checksum %#x differs from Vanilla %#x — modes computed different results", mode, res.Checksum, want)
		}
	}
	return out
}
