// Package xsbench implements the XSBench workload of SGXGauge
// (§4.2.8): the macroscopic-cross-section lookup kernel of Monte Carlo
// neutron transport. A unionized energy grid of configurable size is
// built in the simulated address space; each lookup binary-searches
// the grid for a random energy and accumulates the micro cross
// sections of every nuclide at that grid point. The random grid hits
// make it CPU-intensive with a tunable memory footprint.
package xsbench

import (
	"fmt"
	"math"
	"math/rand"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/workloads"
)

const (
	// nuclides is the number of nuclides in the material, each
	// contributing one (index, cross-section) pair per grid point.
	nuclides = 32
	// bytesPerPoint: one f64 energy plus nuclides f64 cross
	// sections.
	bytesPerPoint = 8 + nuclides*8
	// lookupsPerPointNum/Den scale lookups with grid size so the
	// run phase does meaningful work at any scale.
	lookupsPerPointNum = 1
	lookupsPerPointDen = 4
)

// Workload is the XSBench benchmark.
type Workload struct{}

// New returns the workload.
func New() *Workload { return &Workload{} }

// Name implements workloads.Workload.
func (*Workload) Name() string { return "XSBench" }

// Property implements workloads.Workload.
func (*Workload) Property() string { return "CPU-intensive" }

// NativePort implements workloads.Workload; XSBench runs only in
// Vanilla and LibOS modes (§4.3).
func (*Workload) NativePort() bool { return false }

// footprintRatios reflects Table 2's 53K/88K/768K grid points: Low and
// Medium sit below/near the EPC while High jumps far past it.
var footprintRatios = map[workloads.Size]float64{
	workloads.Low:    0.60,
	workloads.Medium: 1.00,
	workloads.High:   3.00,
}

// DefaultParams implements workloads.Workload.
func (*Workload) DefaultParams(epcPages int, s workloads.Size) workloads.Params {
	points := workloads.BytesForRatio(epcPages, footprintRatios[s]) / bytesPerPoint
	return workloads.Params{
		Size:    s,
		Threads: 1,
		Knobs: map[string]int64{
			"gridpoints": points,
			"lookups":    points * lookupsPerPointNum / lookupsPerPointDen,
		},
	}
}

// FootprintPages implements workloads.Workload.
func (*Workload) FootprintPages(p workloads.Params) (int, error) {
	points, err := p.Knob("gridpoints")
	if err != nil {
		return 0, err
	}
	return int(points*bytesPerPoint/mem.PageSize) + 4, nil
}

// Setup implements workloads.Workload.
func (*Workload) Setup(ctx *workloads.Ctx) error { return nil }

// Run implements workloads.Workload.
func (w *Workload) Run(ctx *workloads.Ctx) (workloads.Output, error) {
	p := ctx.Params
	points, err := p.Knob("gridpoints")
	if err != nil {
		return workloads.Output{}, err
	}
	lookups, err := p.Knob("lookups")
	if err != nil {
		return workloads.Output{}, err
	}
	if points <= 1 || lookups < 0 {
		return workloads.Output{}, fmt.Errorf("xsbench: invalid gridpoints=%d lookups=%d", points, lookups)
	}

	env := ctx.Env
	energies, err := env.Alloc(uint64(points)*8, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("xsbench: alloc energy grid: %w", err)
	}
	xs, err := env.Alloc(uint64(points)*nuclides*8, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("xsbench: alloc cross sections: %w", err)
	}
	t := env.Main
	rng := rand.New(rand.NewSource(ctx.Seed))

	// Build the unionized grid: sorted energies (uniform spacing
	// with jitter keeps them sorted without an explicit sort) and
	// per-nuclide cross sections.
	t.ECall(func() {
		// Stream the grid in as dense extents, chunked so host-side
		// staging stays bounded at any footprint.
		const chunkPoints = 2048
		ebuf := make([]uint64, 0, chunkPoints)
		xbuf := make([]uint64, 0, chunkPoints*nuclides)
		flush := func(start int64) {
			if len(ebuf) == 0 {
				return
			}
			t.WriteU64Run(energies+uint64(start)*8, ebuf)
			t.WriteU64Run(xs+uint64(start*nuclides)*8, xbuf)
			ebuf = ebuf[:0]
			xbuf = xbuf[:0]
		}
		chunkStart := int64(0)
		for i := int64(0); i < points; i++ {
			e := (float64(i) + 0.5*float64(workloads.Mix64(uint64(i))%1000)/1000.0) / float64(points)
			ebuf = append(ebuf, math.Float64bits(e))
			for nuc := int64(0); nuc < nuclides; nuc++ {
				v := float64(workloads.Mix64(uint64(i*nuclides+nuc))%100000) / 100000.0
				xbuf = append(xbuf, math.Float64bits(v))
			}
			if len(ebuf) == chunkPoints {
				flush(chunkStart)
				chunkStart = i + 1
			}
		}
		flush(chunkStart)
	})

	// Lookup kernel: binary search the energy grid, then accumulate
	// all nuclide cross sections at the bracketing grid point.
	var macroSum float64
	var checksum uint64
	t.ECall(func() {
		row := make([]uint64, nuclides)
		for l := int64(0); l < lookups; l++ {
			target := rng.Float64()
			lo, hi := int64(0), points-1
			for lo < hi {
				mid := (lo + hi) / 2
				if t.ReadF64(energies+uint64(mid)*8) < target {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			// The nuclide row at the bracketing grid point is
			// contiguous: one read extent, one batched FLOP charge.
			t.ReadU64Run(xs+uint64(lo*nuclides)*8, row)
			var macro float64
			for _, bits := range row {
				macro += math.Float64frombits(bits)
			}
			t.Compute(8 * nuclides) // FLOPs of the interpolation
			macroSum += macro
			checksum = workloads.FoldChecksum(checksum, uint64(macro*1e9))
		}
	})

	return workloads.Output{
		Checksum: checksum,
		Ops:      lookups,
		Extra:    map[string]float64{"macro_sum": macroSum},
	}, nil
}

var _ workloads.Workload = (*Workload)(nil)
