package xsbench

import (
	"testing"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/wltest"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "XSBench" {
		t.Error("name wrong")
	}
	if w.NativePort() {
		t.Error("XSBench must be LibOS-only (paper §4.3)")
	}
	if w.Property() != "CPU-intensive" {
		t.Errorf("property = %q", w.Property())
	}
}

func TestHighFarExceedsEPC(t *testing.T) {
	// Table 2: 53K/88K/768K grid points — High jumps far past the
	// EPC while Low/Medium sit below/near it.
	w := New()
	low := workloads.MustFootprint(w, w.DefaultParams(96, workloads.Low))
	med := workloads.MustFootprint(w, w.DefaultParams(96, workloads.Medium))
	high := workloads.MustFootprint(w, w.DefaultParams(96, workloads.High))
	if !(low < 96 && med <= 96+8 && high >= 2*96) {
		t.Errorf("footprints %d/%d/%d break the Table 2 shape", low, med, high)
	}
}

func TestMacroXSPositiveAndDeterministic(t *testing.T) {
	run := func() workloads.Output {
		ctx := wltest.NewCtx(t, New(), sgx.Vanilla, workloads.Low)
		out, err := New().Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Extra["macro_sum"] <= 0 {
		t.Error("macroscopic cross sections sum to zero")
	}
	if a.Checksum != b.Checksum {
		t.Error("lookups not deterministic")
	}
	// Mean macro XS per lookup is an average of `nuclides` values in
	// [0,1); it must land in (0, nuclides).
	mean := a.Extra["macro_sum"] / float64(a.Ops)
	if mean <= 0 || mean >= nuclides {
		t.Errorf("mean macro XS = %v out of range", mean)
	}
}

func TestRunAcrossModes(t *testing.T) {
	wltest.RunAllModes(t, New(), workloads.Low)
}

func TestInvalidParams(t *testing.T) {
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla,
		workloads.Params{Knobs: map[string]int64{"gridpoints": 1, "lookups": 5}}, 96)
	if _, err := New().Run(ctx); err == nil {
		t.Error("degenerate grid accepted")
	}
}
