// Package lighttpd implements the Lighttpd workload of SGXGauge
// (§4.2.9): a single-threaded web server hosting a 20 KB page, driven
// by an ab-style closed-loop client pool with configurable
// concurrency. Each request costs receive/send system calls plus a
// scan of the page — in SGX modes every syscall is an enclave
// transition, so latency balloons with concurrency (paper Figure 3).
package lighttpd

import (
	"fmt"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/netsim"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

const (
	// pageBytes is the hosted page size ("a web-page of size 20 KB,
	// similar to [HotCalls]").
	pageBytes = 20 * 1024
	// requestHeaderBytes is the HTTP request size.
	requestHeaderBytes = 512
	// defaultThreads matches Table 2 (16 concurrent ab threads).
	defaultThreads = 16
)

// Workload is the Lighttpd benchmark.
type Workload struct{}

// New returns the workload.
func New() *Workload { return &Workload{} }

// Name implements workloads.Workload.
func (*Workload) Name() string { return "Lighttpd" }

// Property implements workloads.Workload.
func (*Workload) Property() string { return "ECALL-intensive" }

// NativePort implements workloads.Workload; Lighttpd runs only in
// Vanilla and LibOS modes (§4.3).
func (*Workload) NativePort() bool { return false }

// requestScale: Table 2 issues 50K/60K/70K requests; scale them with
// the EPC so run times stay proportional.
var requestScale = map[workloads.Size]int64{
	workloads.Low:    50,
	workloads.Medium: 60,
	workloads.High:   70,
}

// DefaultParams implements workloads.Workload.
func (*Workload) DefaultParams(epcPages int, s workloads.Size) workloads.Params {
	return workloads.Params{
		Size:    s,
		Threads: defaultThreads,
		Knobs: map[string]int64{
			"requests": requestScale[s] * int64(epcPages) / 10,
		},
	}
}

// FootprintPages implements workloads.Workload.
func (*Workload) FootprintPages(p workloads.Params) (int, error) {
	return pageBytes/mem.PageSize + 8, nil
}

// Setup implements workloads.Workload.
func (*Workload) Setup(ctx *workloads.Ctx) error { return nil }

// Run implements workloads.Workload.
func (w *Workload) Run(ctx *workloads.Ctx) (workloads.Output, error) {
	p := ctx.Params
	requests, err := p.Knob("requests")
	if err != nil {
		return workloads.Output{}, err
	}
	threads := p.Threads
	if requests < 0 || threads <= 0 {
		return workloads.Output{}, fmt.Errorf("lighttpd: invalid requests=%d threads=%d", requests, threads)
	}

	env := ctx.Env
	page, err := env.Alloc(pageBytes, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("lighttpd: alloc page: %w", err)
	}
	t := env.Main

	// Install the hosted page.
	var buf [256]byte
	seed := workloads.Mix64(uint64(ctx.Seed))
	for off := 0; off < pageBytes; off += len(buf) {
		for i := 0; i < len(buf); i += 8 {
			seed = workloads.Mix64(seed)
			buf[i] = byte(seed)
		}
		t.Write(page+uint64(off), buf[:])
	}

	// Serve: each request receives the header, scans the page (the
	// server's sendfile-style copy), and sends the response.
	var served int64
	var checksum uint64
	scratch := make([]byte, 1024)
	res, err := netsim.Run(env, netsim.Load{Clients: threads, Requests: int(requests)}, func(t *sgx.Thread, reqID int) {
		t.Syscall(requestHeaderBytes) // recv request
		var acc uint64
		for off := 0; off < pageBytes; off += len(scratch) {
			t.Read(page+uint64(off), scratch)
			acc ^= uint64(scratch[0])
		}
		t.Syscall(pageBytes) // send response body
		served++
		checksum = workloads.FoldChecksum(checksum, acc^uint64(reqID))
	})
	if err != nil {
		return workloads.Output{}, err
	}

	return workloads.Output{
		Checksum:    checksum,
		Ops:         served,
		MeanLatency: res.MeanLatency,
		Extra: map[string]float64{
			"mean_latency": res.MeanLatency,
			"max_latency":  float64(res.MaxLatency),
		},
	}, nil
}

var _ workloads.Workload = (*Workload)(nil)
