package lighttpd

import (
	"testing"

	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/wltest"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "Lighttpd" {
		t.Error("name wrong")
	}
	if w.NativePort() {
		t.Error("Lighttpd must be LibOS-only (paper §4.3)")
	}
	if w.Property() != "ECALL-intensive" {
		t.Errorf("property = %q", w.Property())
	}
	if w.DefaultParams(96, workloads.Low).Threads != 16 {
		t.Error("default concurrency != 16 (Table 2)")
	}
}

func TestRequestCountsScale(t *testing.T) {
	w := New()
	low := w.DefaultParams(96, workloads.Low).MustKnob("requests")
	high := w.DefaultParams(96, workloads.High).MustKnob("requests")
	// Table 2 issues 50K/60K/70K requests: the 7:5 High:Low ratio
	// must survive scaling.
	if high*5 != low*7 {
		t.Errorf("requests %d/%d do not preserve the 70:50 ratio", low, high)
	}
}

func smallParams(threads int) workloads.Params {
	return workloads.Params{
		Size:    workloads.Medium,
		Threads: threads,
		Knobs:   map[string]int64{"requests": 300},
	}
}

func TestServesAllRequests(t *testing.T) {
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla, smallParams(4), 96)
	out, err := New().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ops != 300 {
		t.Errorf("served %d of 300 requests", out.Ops)
	}
	if out.MeanLatency <= 0 {
		t.Error("no latency measured")
	}
}

func TestChecksumAgreesAcrossModes(t *testing.T) {
	var sums []uint64
	for _, mode := range []sgx.Mode{sgx.Vanilla, sgx.LibOS} {
		ctx := wltest.NewCtxParams(t, New(), mode, smallParams(4), 96)
		out, err := New().Run(ctx)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		sums = append(sums, out.Checksum)
	}
	if sums[0] != sums[1] {
		t.Error("modes served different content")
	}
}

// TestLatencyGrowsWithConcurrency is the Figure 3 shape: the
// SGX-to-Vanilla latency ratio must grow with the number of
// concurrent clients.
func TestLatencyGrowsWithConcurrency(t *testing.T) {
	ratio := func(threads int) float64 {
		lat := map[sgx.Mode]float64{}
		for _, mode := range []sgx.Mode{sgx.Vanilla, sgx.LibOS} {
			ctx := wltest.NewCtxParams(t, New(), mode, smallParams(threads), 96)
			out, err := New().Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			lat[mode] = out.MeanLatency
		}
		return lat[sgx.LibOS] / lat[sgx.Vanilla]
	}
	r1, r16 := ratio(1), ratio(16)
	if r16 <= r1 {
		t.Errorf("latency ratio does not grow with concurrency: 1 thread %.2fx, 16 threads %.2fx", r1, r16)
	}
	if r16 < 3 || r16 > 12 {
		t.Errorf("16-thread ratio = %.2fx, paper reports ~7x", r16)
	}
}

func TestSyscallsPerRequest(t *testing.T) {
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla, smallParams(2), 96)
	before := ctx.Env.Snapshot()
	if _, err := New().Run(ctx); err != nil {
		t.Fatal(err)
	}
	delta := ctx.Env.Snapshot().Sub(before)
	// recv + send per request.
	if got := delta.Get(perf.Syscalls); got != 600 {
		t.Errorf("syscalls = %d, want 600 (2 per request)", got)
	}
}

func TestInvalidParams(t *testing.T) {
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla,
		workloads.Params{Threads: 0, Knobs: map[string]int64{"requests": 10}}, 96)
	if _, err := New().Run(ctx); err == nil {
		t.Error("zero threads accepted")
	}
}
