package suite

import (
	"testing"

	"sgxgauge/internal/workloads"
)

func TestTenWorkloadsInTable2Order(t *testing.T) {
	want := []string{
		"Blockchain", "OpenSSL", "BTree", "HashJoin", "BFS",
		"PageRank", "Memcached", "XSBench", "Lighttpd", "SVM",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("suite has %d workloads, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("workload %d = %s, want %s (Table 2 order)", i, got[i], want[i])
		}
	}
}

func TestSixNativePorts(t *testing.T) {
	native := Native()
	if len(native) != 6 {
		t.Fatalf("%d native ports, want 6 (paper §4.3)", len(native))
	}
	ported := map[string]bool{
		"Blockchain": true, "OpenSSL": true, "BTree": true,
		"HashJoin": true, "BFS": true, "PageRank": true,
	}
	for _, w := range native {
		if !ported[w.Name()] {
			t.Errorf("%s should not have a native port", w.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range append(Names(), "Empty", "Iozone") {
		w, err := ByName(name)
		if err != nil || w.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, w, err)
		}
	}
	if _, err := ByName("Redis"); err == nil {
		t.Error("ByName accepted a discarded workload")
	}
}

func TestEveryWorkloadHasSaneDefaults(t *testing.T) {
	const epcPages = 96
	for _, w := range All() {
		for _, s := range workloads.Sizes() {
			p := w.DefaultParams(epcPages, s)
			if p.Size != s {
				t.Errorf("%s/%v: params carry size %v", w.Name(), s, p.Size)
			}
			if p.Threads < 0 {
				t.Errorf("%s/%v: negative threads", w.Name(), s)
			}
			for name, v := range p.Knobs {
				if v < 0 {
					t.Errorf("%s/%v: knob %s = %d", w.Name(), s, name, v)
				}
			}
			if workloads.MustFootprint(w, p) < 1 {
				t.Errorf("%s/%v: zero footprint", w.Name(), s)
			}
		}
	}
}

func TestFootprintsGrowWithSize(t *testing.T) {
	const epcPages = 96
	for _, w := range All() {
		if w.Name() == "Blockchain" || w.Name() == "Lighttpd" {
			continue // footprint fixed by design; size varies work
		}
		low := workloads.MustFootprint(w, w.DefaultParams(epcPages, workloads.Low))
		med := workloads.MustFootprint(w, w.DefaultParams(epcPages, workloads.Medium))
		high := workloads.MustFootprint(w, w.DefaultParams(epcPages, workloads.High))
		if !(low <= med && med <= high) {
			t.Errorf("%s: footprints %d/%d/%d not monotone", w.Name(), low, med, high)
		}
	}
}

func TestPropertiesCoverSGXComponents(t *testing.T) {
	// §4: the suite must cover all three overhead sources. At least
	// one ECALL-intensive, one CPU-intensive and several
	// data-intensive workloads.
	var ecall, cpu, data int
	for _, w := range All() {
		p := w.Property()
		if contains(p, "ECALL") {
			ecall++
		}
		if contains(p, "CPU") {
			cpu++
		}
		if contains(p, "Data") {
			data++
		}
	}
	if ecall < 2 || cpu < 3 || data < 4 {
		t.Errorf("coverage: ecall=%d cpu=%d data=%d", ecall, cpu, data)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
