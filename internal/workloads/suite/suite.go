// Package suite assembles the SGXGauge workloads into the benchmark
// suite: the ten Table 2 workloads in paper order, plus the auxiliary
// empty and iozone workloads used by Figures 6a and 10. Importing the
// package registers every workload in the shared typed registry
// (workloads.Register), which the wire codec, the daemon and the CLI
// all derive their valid-name lists from.
package suite

import (
	"fmt"

	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/bfs"
	"sgxgauge/internal/workloads/blockchain"
	"sgxgauge/internal/workloads/btree"
	"sgxgauge/internal/workloads/empty"
	"sgxgauge/internal/workloads/hashjoin"
	"sgxgauge/internal/workloads/iozone"
	"sgxgauge/internal/workloads/lighttpd"
	"sgxgauge/internal/workloads/memcached"
	"sgxgauge/internal/workloads/openssl"
	"sgxgauge/internal/workloads/pagerank"
	"sgxgauge/internal/workloads/svm"
	"sgxgauge/internal/workloads/xsbench"
)

// tableOrder is the Table 2 suite in paper order; the auxiliary Empty
// and Iozone workloads follow it in the registry.
var tableOrder = []func() workloads.Workload{
	func() workloads.Workload { return blockchain.New() },
	func() workloads.Workload { return openssl.New() },
	func() workloads.Workload { return btree.New() },
	func() workloads.Workload { return hashjoin.New() },
	func() workloads.Workload { return bfs.New() },
	func() workloads.Workload { return pagerank.New() },
	func() workloads.Workload { return memcached.New() },
	func() workloads.Workload { return xsbench.New() },
	func() workloads.Workload { return lighttpd.New() },
	func() workloads.Workload { return svm.New() },
}

// auxiliary are the non-Table-2 workloads (Figures 6a and 10).
var auxiliary = []func() workloads.Workload{
	func() workloads.Workload { return empty.New() },
	func() workloads.Workload { return iozone.New() },
}

func init() {
	for _, ctor := range append(append([]func() workloads.Workload{}, tableOrder...), auxiliary...) {
		w := ctor()
		workloads.Register(workloads.Descriptor{
			Name:       w.Name(),
			Property:   w.Property(),
			NativePort: w.NativePort(),
			New:        ctor,
		})
	}
}

// All returns the ten suite workloads in Table 2 order.
func All() []workloads.Workload {
	out := make([]workloads.Workload, len(tableOrder))
	for i, ctor := range tableOrder {
		out[i] = ctor()
	}
	return out
}

// Native returns the six workloads with Native-mode ports.
func Native() []workloads.Workload {
	var out []workloads.Workload
	for _, w := range All() {
		if w.NativePort() {
			out = append(out, w)
		}
	}
	return out
}

// Empty returns the runtime-overhead probe of Figure 6a.
func Empty() workloads.Workload { return empty.New() }

// Iozone returns the filesystem benchmark of Figure 10.
func Iozone() workloads.Workload { return iozone.New() }

// ByName resolves a workload by its registry name (case-sensitive),
// including the auxiliary Empty and Iozone workloads. Unknown — or
// scenario — names yield an error listing every valid workload name,
// so a mistyped CLI flag or wire request reports what would have
// worked.
func ByName(name string) (workloads.Workload, error) {
	d, ok := workloads.Lookup(name)
	if !ok || d.Scenario {
		return nil, fmt.Errorf("suite: unknown workload %q (valid: %s)", name, workloads.ValidWorkloadList())
	}
	return d.New(), nil
}

// Names returns the names of the ten suite workloads in order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name())
	}
	return out
}
