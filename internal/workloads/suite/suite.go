// Package suite assembles the SGXGauge workloads into the benchmark
// suite: the ten Table 2 workloads in paper order, plus the auxiliary
// empty and iozone workloads used by Figures 6a and 10.
package suite

import (
	"fmt"

	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/bfs"
	"sgxgauge/internal/workloads/blockchain"
	"sgxgauge/internal/workloads/btree"
	"sgxgauge/internal/workloads/empty"
	"sgxgauge/internal/workloads/hashjoin"
	"sgxgauge/internal/workloads/iozone"
	"sgxgauge/internal/workloads/lighttpd"
	"sgxgauge/internal/workloads/memcached"
	"sgxgauge/internal/workloads/openssl"
	"sgxgauge/internal/workloads/pagerank"
	"sgxgauge/internal/workloads/svm"
	"sgxgauge/internal/workloads/xsbench"
)

// All returns the ten suite workloads in Table 2 order.
func All() []workloads.Workload {
	return []workloads.Workload{
		blockchain.New(),
		openssl.New(),
		btree.New(),
		hashjoin.New(),
		bfs.New(),
		pagerank.New(),
		memcached.New(),
		xsbench.New(),
		lighttpd.New(),
		svm.New(),
	}
}

// Native returns the six workloads with Native-mode ports.
func Native() []workloads.Workload {
	var out []workloads.Workload
	for _, w := range All() {
		if w.NativePort() {
			out = append(out, w)
		}
	}
	return out
}

// Empty returns the runtime-overhead probe of Figure 6a.
func Empty() workloads.Workload { return empty.New() }

// Iozone returns the filesystem benchmark of Figure 10.
func Iozone() workloads.Workload { return iozone.New() }

// ByName resolves a workload by its Table 2 name (case-sensitive),
// including the auxiliary Empty and Iozone workloads.
func ByName(name string) (workloads.Workload, error) {
	for _, w := range append(All(), Empty(), Iozone()) {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("suite: unknown workload %q", name)
}

// Names returns the names of the ten suite workloads in order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name())
	}
	return out
}
