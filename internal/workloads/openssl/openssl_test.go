package openssl

import (
	"bytes"
	"testing"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/wltest"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "OpenSSL" || !w.NativePort() {
		t.Error("metadata wrong")
	}
}

func TestFileSizesMatchTable2Ratios(t *testing.T) {
	// Table 2: 76/88/151 MB against a 92 MB EPC. The scaled files
	// must keep those proportions: Low and Medium below the EPC,
	// High well above.
	w := New()
	epcBytes := int64(96) * 4096
	low := w.DefaultParams(96, workloads.Low).MustKnob("file_bytes")
	med := w.DefaultParams(96, workloads.Medium).MustKnob("file_bytes")
	high := w.DefaultParams(96, workloads.High).MustKnob("file_bytes")
	if !(low < med && med < epcBytes && high > epcBytes*3/2) {
		t.Errorf("file sizes %d/%d/%d vs EPC %d break Table 2 shape", low, med, high, epcBytes)
	}
}

func TestSetupCreatesCiphertext(t *testing.T) {
	ctx := wltest.NewCtx(t, New(), sgx.Vanilla, workloads.Low)
	raw := ctx.RawFS.Raw(inputFile)
	if raw == nil {
		t.Fatal("setup created no input file")
	}
	// The input must be encrypted: decrypting it with the workload
	// key yields the generated plaintext, and the raw bytes differ
	// from it.
	plain := make([]byte, len(raw))
	ctr(key(ctx.Seed), 1).XORKeyStream(plain, raw)
	if bytes.Equal(plain[:256], raw[:256]) {
		t.Error("input file appears to be plaintext")
	}
}

func TestOutputDecryptsToTransformedInput(t *testing.T) {
	ctx := wltest.NewCtx(t, New(), sgx.Vanilla, workloads.Low)
	if _, err := New().Run(ctx); err != nil {
		t.Fatal(err)
	}
	in := ctx.RawFS.Raw(inputFile)
	out := ctx.RawFS.Raw(outputFile)
	if out == nil || len(out) != len(in) {
		t.Fatalf("output file missing or wrong size: %d vs %d", len(out), len(in))
	}
	// Decrypt both with their respective nonces: the workload
	// re-encrypts the same plaintext, so the decryptions must match.
	k := key(ctx.Seed)
	plainIn := make([]byte, len(in))
	ctr(k, 1).XORKeyStream(plainIn, in)
	plainOut := make([]byte, len(out))
	ctr(k, 2).XORKeyStream(plainOut, out)
	if !bytes.Equal(plainIn, plainOut) {
		t.Fatal("output does not decrypt to the input plaintext")
	}
	if bytes.Equal(in, out) {
		t.Fatal("output bytes identical to input (nonce reuse)")
	}
}

func TestRunAcrossModes(t *testing.T) {
	wltest.RunAllModes(t, New(), workloads.Low)
}

func TestInvalidParams(t *testing.T) {
	w := New()
	ctx := &workloads.Ctx{
		Params: workloads.Params{Knobs: map[string]int64{"file_bytes": 0}},
	}
	if err := w.Setup(ctx); err == nil {
		t.Error("zero-byte file accepted")
	}
}
