// Package openssl implements the OpenSSL workload of SGXGauge
// (§4.2.2), modeled on Intel SGX-SSL usage: the workload reads an
// encrypted input file into the enclave, decrypts it there, performs a
// small compute task over the plaintext, re-encrypts the result and
// writes it back to the untrusted filesystem. When the file exceeds
// the EPC size the in-enclave buffers stress the paging machinery.
package openssl

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/workloads"
)

const (
	inputFile  = "openssl.in"
	outputFile = "openssl.out"
	// chunk is the streaming I/O unit.
	chunk = 64 * 1024
	// aesCyclesPerByte approximates in-enclave AES-CTR throughput.
	aesCyclesPerByte = 1
)

// Workload is the OpenSSL benchmark.
type Workload struct{}

// New returns the workload.
func New() *Workload { return &Workload{} }

// Name implements workloads.Workload.
func (*Workload) Name() string { return "OpenSSL" }

// Property implements workloads.Workload.
func (*Workload) Property() string { return "Data-intensive" }

// NativePort implements workloads.Workload.
func (*Workload) NativePort() bool { return true }

// footprintRatios mirrors Table 2's 76/88/151 MB files against the
// 92 MB EPC.
var footprintRatios = map[workloads.Size]float64{
	workloads.Low:    0.83,
	workloads.Medium: 0.96,
	workloads.High:   1.64,
}

// DefaultParams implements workloads.Workload.
func (*Workload) DefaultParams(epcPages int, s workloads.Size) workloads.Params {
	return workloads.Params{
		Size:    s,
		Threads: 1,
		Knobs: map[string]int64{
			"file_bytes": workloads.BytesForRatio(epcPages, footprintRatios[s]),
		},
	}
}

// FootprintPages implements workloads.Workload; the whole file is
// buffered in the enclave and transformed in place.
func (*Workload) FootprintPages(p workloads.Params) (int, error) {
	n, err := p.Knob("file_bytes")
	if err != nil {
		return 0, err
	}
	return int(n/mem.PageSize) + 2, nil
}

// key returns the workload's AES key, derived from the seed.
func key(seed int64) []byte {
	sum := sha256.Sum256(binary.LittleEndian.AppendUint64([]byte("openssl-wl"), uint64(seed)))
	return sum[:16]
}

// ctr returns an AES-CTR stream for the given nonce word.
func ctr(k []byte, nonce uint64) cipher.Stream {
	block, err := aes.NewCipher(k)
	if err != nil {
		panic(fmt.Sprintf("openssl: aes init: %v", err))
	}
	var iv [16]byte
	binary.LittleEndian.PutUint64(iv[:8], nonce)
	return cipher.NewCTR(block, iv[:])
}

// Setup implements workloads.Workload: it creates the encrypted input
// file host-side.
func (w *Workload) Setup(ctx *workloads.Ctx) error {
	n, err := ctx.Params.Knob("file_bytes")
	if err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("openssl: file_bytes must be positive, got %d", n)
	}
	plain := make([]byte, n)
	seed := workloads.Mix64(uint64(ctx.Seed))
	for i := 0; i+8 <= len(plain); i += 8 {
		seed = workloads.Mix64(seed)
		binary.LittleEndian.PutUint64(plain[i:], seed)
	}
	enc := make([]byte, n)
	ctr(key(ctx.Seed), 1).XORKeyStream(enc, plain)
	ctx.RawFS.Create(inputFile, enc)
	ctx.RawFS.Remove(outputFile)
	return nil
}

// Run implements workloads.Workload.
func (w *Workload) Run(ctx *workloads.Ctx) (workloads.Output, error) {
	n, err := ctx.Params.Knob("file_bytes")
	if err != nil {
		return workloads.Output{}, err
	}
	env := ctx.Env
	t := env.Main

	buf, err := env.Alloc(uint64(n), mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("openssl: alloc file buffer: %w", err)
	}

	in, err := ctx.FS.Open(t, inputFile)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("openssl: %w", err)
	}
	// Phase 1: read the encrypted file into the enclave buffer.
	var readErr error
	t.ECall(func() {
		for off := int64(0); off < n; off += chunk {
			want := int64(chunk)
			if n-off < want {
				want = n - off
			}
			if _, err := in.ReadAt(t, buf+uint64(off), int(off), int(want)); err != nil {
				readErr = err
				return
			}
		}
	})
	if readErr != nil {
		return workloads.Output{}, fmt.Errorf("openssl: reading input: %w", readErr)
	}
	if err := in.Close(t); err != nil {
		return workloads.Output{}, err
	}

	k := key(ctx.Seed)
	var checksum uint64
	var wordSum uint64
	// Phase 2+3: decrypt in place inside the enclave, then run the
	// compute task (a rolling sum over the plaintext words).
	t.ECall(func() {
		dec := ctr(k, 1)
		scratch := make([]byte, chunk)
		for off := int64(0); off < n; off += chunk {
			m := int64(chunk)
			if n-off < m {
				m = n - off
			}
			t.Read(buf+uint64(off), scratch[:m])
			dec.XORKeyStream(scratch[:m], scratch[:m])
			t.Compute(uint64(m) * aesCyclesPerByte)
			t.Write(buf+uint64(off), scratch[:m])
		}
		for off := int64(0); off+8 <= n; off += 64 {
			wordSum += t.ReadU64(buf + uint64(off))
		}
		checksum = workloads.FoldChecksum(checksum, wordSum)
	})

	// Phase 4: re-encrypt (fresh nonce) and write the output file.
	out, err := ctx.FS.CreateFile(t, outputFile)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("openssl: %w", err)
	}
	var writeErr error
	t.ECall(func() {
		enc := ctr(k, 2)
		scratch := make([]byte, chunk)
		for off := int64(0); off < n; off += chunk {
			m := int64(chunk)
			if n-off < m {
				m = n - off
			}
			t.Read(buf+uint64(off), scratch[:m])
			enc.XORKeyStream(scratch[:m], scratch[:m])
			t.Compute(uint64(m) * aesCyclesPerByte)
			t.Write(buf+uint64(off), scratch[:m])
			if _, err := out.WriteAt(t, buf+uint64(off), int(off), int(m)); err != nil {
				writeErr = err
				return
			}
		}
	})
	if writeErr != nil {
		return workloads.Output{}, fmt.Errorf("openssl: writing output: %w", writeErr)
	}
	if err := out.Close(t); err != nil {
		return workloads.Output{}, err
	}

	return workloads.Output{
		Checksum: checksum,
		Ops:      n / chunk,
		Extra:    map[string]float64{"bytes": float64(n)},
	}, nil
}

var _ workloads.Workload = (*Workload)(nil)
