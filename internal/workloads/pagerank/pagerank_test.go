package pagerank

import (
	"math"
	"testing"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/wltest"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "PageRank" || !w.NativePort() {
		t.Error("metadata wrong")
	}
}

func TestOutDegreeAtLeastOne(t *testing.T) {
	// "a connected directed graph ... with an out-degree of at least
	// 1" (paper §4.2.6).
	w := New()
	for _, s := range workloads.Sizes() {
		p := w.DefaultParams(96, s)
		if p.MustKnob("edges") < p.MustKnob("nodes") {
			t.Errorf("%v: %d edges < %d nodes", s, p.MustKnob("edges"), p.MustKnob("nodes"))
		}
	}
}

func TestRankMassConserved(t *testing.T) {
	// With every node having out-degree >= 1 there are no dangling
	// nodes, so total rank mass stays 1 under power iteration.
	ctx := wltest.NewCtx(t, New(), sgx.Vanilla, workloads.Low)
	out, err := New().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if mass := out.Extra["rank_mass"]; math.Abs(mass-1.0) > 1e-6 {
		t.Errorf("rank mass = %v, want 1.0", mass)
	}
}

func TestRunAcrossModes(t *testing.T) {
	out := wltest.RunAllModes(t, New(), workloads.Low)
	if out[sgx.Vanilla].Ops == 0 {
		t.Error("no edge relaxations")
	}
}

func TestSizesNearEPCBoundary(t *testing.T) {
	// Table 2's PageRank inputs bracket the EPC tightly (10.1M to
	// 12.5M edges against 92 MB); the ratios must stay ordered and
	// close together.
	w := New()
	low := workloads.MustFootprint(w, w.DefaultParams(960, workloads.Low))
	med := workloads.MustFootprint(w, w.DefaultParams(960, workloads.Medium))
	high := workloads.MustFootprint(w, w.DefaultParams(960, workloads.High))
	if !(low < med && med < high) {
		t.Errorf("footprints not ordered: %d/%d/%d", low, med, high)
	}
	if float64(high)/float64(low) > 1.5 {
		t.Errorf("High/Low footprint ratio %v too wide for PageRank", float64(high)/float64(low))
	}
}

func TestInvalidParams(t *testing.T) {
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla,
		workloads.Params{Knobs: map[string]int64{"nodes": 10, "edges": 5}}, 96)
	if _, err := New().Run(ctx); err == nil {
		t.Error("graph with out-degree < 1 accepted")
	}
}
