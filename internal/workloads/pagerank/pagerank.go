// Package pagerank implements the PageRank workload of SGXGauge
// (§4.2.6): a directed graph is loaded into the enclave address space
// in adjacency-list (CSR) form, every page starts with a default rank,
// and a fixed number of power-iteration rounds propagate rank along
// out-links. Table 2 uses few nodes with millions of edges (dense
// adjacency), so the edge scans dominate.
package pagerank

import (
	"fmt"
	"math"
	"math/rand"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/workloads"
)

const (
	// damping is the standard PageRank damping factor.
	damping = 0.85
	// iterations is the fixed round count ("repeated a fixed number
	// of times").
	iterations = 10
)

// Workload is the PageRank benchmark.
type Workload struct{}

// New returns the workload.
func New() *Workload { return &Workload{} }

// Name implements workloads.Workload.
func (*Workload) Name() string { return "PageRank" }

// Property implements workloads.Workload.
func (*Workload) Property() string { return "Data-intensive" }

// NativePort implements workloads.Workload.
func (*Workload) NativePort() bool { return true }

// footprintRatios mirrors Table 2's 10.1M/11.2M/12.5M-edge graphs
// against the 92 MB EPC: Medium sits at the EPC boundary and High is
// only ~12% past it, which is why PageRank's counters move less than
// other workloads' between Medium and High (paper Appendix B.6).
var footprintRatios = map[workloads.Size]float64{
	workloads.Low:    0.90,
	workloads.Medium: 1.00,
	workloads.High:   1.12,
}

// nodesPerEdgeBytes: Table 2 graphs average ~2350 edges per node
// (11.2M/4750); we keep the same density shape with a dense-out-degree
// synthetic graph of degree = nodes/2 capped to keep node counts sane
// at small scale.
const minNodes = 64

// DefaultParams implements workloads.Workload.
func (*Workload) DefaultParams(epcPages int, s workloads.Size) workloads.Params {
	bytes := workloads.BytesForRatio(epcPages, footprintRatios[s])
	// footprint ~= edges*8 (edge array, u64 targets) + 3*nodes*8.
	edges := bytes / 9
	nodes := int64(math.Sqrt(float64(edges) * 2)) // dense: degree ~ nodes/2
	if nodes < minNodes {
		nodes = minNodes
	}
	return workloads.Params{
		Size:    s,
		Threads: 1,
		Knobs: map[string]int64{
			"nodes": nodes,
			"edges": edges,
		},
	}
}

// FootprintPages implements workloads.Workload.
func (*Workload) FootprintPages(p workloads.Params) (int, error) {
	n, err := p.Knob("nodes")
	if err != nil {
		return 0, err
	}
	e, err := p.Knob("edges")
	if err != nil {
		return 0, err
	}
	bytes := (n+1)*8 + e*8 + 2*n*8 + n*8
	return int(bytes/mem.PageSize) + 4, nil
}

// Setup implements workloads.Workload.
func (*Workload) Setup(ctx *workloads.Ctx) error { return nil }

// Run implements workloads.Workload.
func (w *Workload) Run(ctx *workloads.Ctx) (workloads.Output, error) {
	p := ctx.Params
	nodes, err := p.Knob("nodes")
	if err != nil {
		return workloads.Output{}, err
	}
	edges, err := p.Knob("edges")
	if err != nil {
		return workloads.Output{}, err
	}
	if nodes <= 0 || edges < nodes {
		return workloads.Output{}, fmt.Errorf("pagerank: need out-degree >= 1, got nodes=%d edges=%d", nodes, edges)
	}

	env := ctx.Env
	offsets, err := env.Alloc(uint64(nodes+1)*8, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("pagerank: alloc offsets: %w", err)
	}
	edgeArr, err := env.Alloc(uint64(edges)*8, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("pagerank: alloc edges: %w", err)
	}
	rankOld, err := env.Alloc(uint64(nodes)*8, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("pagerank: alloc ranks: %w", err)
	}
	rankNew, err := env.Alloc(uint64(nodes)*8, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("pagerank: alloc ranks: %w", err)
	}
	t := env.Main
	rng := rand.New(rand.NewSource(ctx.Seed))

	// Load the graph: every node gets at least one out-link
	// ("out-degree of at least 1"), the rest are uniform random.
	degrees := make([]int64, nodes)
	for i := range degrees {
		degrees[i] = 1
	}
	for r := edges - nodes; r > 0; r-- {
		degrees[rng.Int63n(nodes)]++
	}
	t.ECall(func() {
		// Stream the CSR arrays in as extents: offsets in one run,
		// each adjacency list in one run, initial ranks in one run.
		offs := make([]uint64, nodes+1)
		var off uint64
		for i := int64(0); i < nodes; i++ {
			offs[i] = off
			off += uint64(degrees[i])
		}
		offs[nodes] = off
		t.WriteU64Run(offsets, offs)
		var ebuf []uint64
		for i := int64(0); i < nodes; i++ {
			if int64(cap(ebuf)) < degrees[i] {
				ebuf = make([]uint64, degrees[i])
			} else {
				ebuf = ebuf[:degrees[i]]
			}
			for j := range ebuf {
				ebuf[j] = uint64(rng.Int63n(nodes))
			}
			t.WriteU64Run(edgeArr+offs[i]*8, ebuf)
		}
		rinit := make([]uint64, nodes)
		bits := math.Float64bits(1.0 / float64(nodes))
		for i := range rinit {
			rinit[i] = bits
		}
		t.WriteU64Run(rankOld, rinit)
	})

	// Power iteration: push each page's rank share along its
	// out-links.
	t.ECall(func() {
		baseInit := make([]uint64, nodes)
		var ebuf []uint64
		for it := 0; it < iterations; it++ {
			base := (1 - damping) / float64(nodes)
			bits := math.Float64bits(base)
			for i := range baseInit {
				baseInit[i] = bits
			}
			t.WriteU64Run(rankNew, baseInit)
			for i := int64(0); i < nodes; i++ {
				lo := t.ReadU64(offsets + uint64(i)*8)
				hi := t.ReadU64(offsets + uint64(i+1)*8)
				if hi == lo {
					continue
				}
				share := damping * t.ReadF64(rankOld+uint64(i)*8) / float64(hi-lo)
				// Bulk-read the adjacency list; the rank updates stay
				// per-access (random scatter).
				if n := hi - lo; uint64(cap(ebuf)) < n {
					ebuf = make([]uint64, n)
				} else {
					ebuf = ebuf[:hi-lo]
				}
				t.ReadU64Run(edgeArr+lo*8, ebuf)
				for _, v := range ebuf {
					t.WriteF64(rankNew+v*8, t.ReadF64(rankNew+v*8)+share)
				}
			}
			rankOld, rankNew = rankNew, rankOld
		}
	})

	// Checksum: quantized rank mass distribution.
	var checksum uint64
	var total float64
	t.ECall(func() {
		ranks := make([]uint64, nodes)
		t.ReadU64Run(rankOld, ranks)
		for _, bits := range ranks {
			r := math.Float64frombits(bits)
			total += r
			checksum = workloads.FoldChecksum(checksum, uint64(r*1e12))
		}
	})

	return workloads.Output{
		Checksum: checksum,
		Ops:      edges * iterations,
		Extra:    map[string]float64{"rank_mass": total},
	}, nil
}

var _ workloads.Workload = (*Workload)(nil)
