// Package memcached implements the Memcached workload of SGXGauge
// (§4.2.7): an in-memory key-value store driven by a YCSB-style
// client. The load phase populates the store with a configured number
// of records; the run phase issues a fixed number of read/update
// operations over zipfian-distributed keys through a closed-loop
// request/response layer, so every operation pays the mode's
// network-syscall costs (Data/ECALL-intensive).
package memcached

import (
	"encoding/binary"
	"fmt"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/netsim"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/ycsb"
)

const (
	// valueBytes is the record payload size (1 KiB records, so the
	// paper's 50K/100K/200K records bracket the EPC).
	valueBytes = 1024
	// entryHeader: key, chain next, LRU prev, LRU next (u64 each).
	entryHeader = 32
	entryBytes  = entryHeader + valueBytes
	// clients is the YCSB client concurrency.
	clients = 8
	// requestBytes/ackBytes are the wire sizes of one operation.
	requestBytes = 64
	ackBytes     = 16
	// parseCycles is the per-operation protocol work (command
	// parsing, key hashing, slab bookkeeping) Memcached performs
	// regardless of mode — a couple of microseconds per operation.
	parseCycles = 6000
)

// Workload is the Memcached benchmark.
type Workload struct{}

// New returns the workload.
func New() *Workload { return &Workload{} }

// Name implements workloads.Workload.
func (*Workload) Name() string { return "Memcached" }

// Property implements workloads.Workload.
func (*Workload) Property() string { return "Data/ECALL-intensive" }

// NativePort implements workloads.Workload; Memcached is one of the
// four real-world workloads evaluated only in LibOS mode (§4.3).
func (*Workload) NativePort() bool { return false }

// recordRatios mirrors Table 2's 50K/100K/200K 1-KiB records against
// the 92 MB EPC.
var recordRatios = map[workloads.Size]float64{
	workloads.Low:    0.55,
	workloads.Medium: 1.10,
	workloads.High:   2.20,
}

// DefaultParams implements workloads.Workload. The operation count is
// fixed across sizes, like the paper's constant 800K operations.
func (*Workload) DefaultParams(epcPages int, s workloads.Size) workloads.Params {
	records := workloads.BytesForRatio(epcPages, recordRatios[s]) / entryBytes
	ops := workloads.BytesForRatio(epcPages, 1.0) / entryBytes * 8
	return workloads.Params{
		Size:    s,
		Threads: clients,
		Knobs: map[string]int64{
			"records":    records,
			"operations": ops,
		},
	}
}

// FootprintPages implements workloads.Workload.
func (*Workload) FootprintPages(p workloads.Params) (int, error) {
	r, err := p.Knob("records")
	if err != nil {
		return 0, err
	}
	buckets := bucketCount(r)
	bytes := r*entryBytes + int64(buckets)*8
	return int(bytes/mem.PageSize) + 4, nil
}

func bucketCount(records int64) uint64 {
	b := uint64(1)
	for int64(b) < records {
		b *= 2
	}
	return b
}

// Setup implements workloads.Workload.
func (*Workload) Setup(ctx *workloads.Ctx) error { return nil }

// Run implements workloads.Workload.
func (w *Workload) Run(ctx *workloads.Ctx) (workloads.Output, error) {
	p := ctx.Params
	records, err := p.Knob("records")
	if err != nil {
		return workloads.Output{}, err
	}
	operations, err := p.Knob("operations")
	if err != nil {
		return workloads.Output{}, err
	}
	if records <= 0 || operations < 0 {
		return workloads.Output{}, fmt.Errorf("memcached: invalid records=%d operations=%d", records, operations)
	}

	gen := ycsb.NewGenerator(ycsb.Workload{
		Records:          int(records),
		Operations:       int(operations),
		ReadProportion:   0.45,
		InsertProportion: 0.10,
		Dist:             ycsb.Zipfian,
		ValueSize:        valueBytes,
		Seed:             ctx.Seed,
	})

	env := ctx.Env
	buckets := bucketCount(records)
	bucketAddr, err := env.Alloc(buckets*8, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("memcached: alloc buckets: %w", err)
	}
	entryRegion, err := env.Alloc(uint64(records)*entryBytes+mem.PageSize, mem.PageSize)
	if err != nil {
		return workloads.Output{}, fmt.Errorf("memcached: alloc entries: %w", err)
	}
	t := env.Main
	s := &store{
		t:       t,
		buckets: bucketAddr,
		mask:    buckets - 1,
		base:    entryRegion,
		next:    entryRegion,
		limit:   entryRegion + uint64(records)*entryBytes + mem.PageSize,
	}

	// Load phase: YCSB populates the store.
	value := make([]byte, valueBytes)
	var loadErr error
	t.ECall(func() {
		for i := int64(0); i < records; i++ {
			binary.LittleEndian.PutUint64(value, workloads.Mix64(uint64(i)))
			if err := s.insert(uint64(i), value); err != nil {
				loadErr = err
				return
			}
		}
	})
	if loadErr != nil {
		return workloads.Output{}, loadErr
	}

	// Run phase: closed-loop request/response service.
	var checksum uint64
	var hits int64
	scratch := make([]byte, valueBytes)
	res, err := netsim.Run(env, netsim.Load{Clients: clients, Requests: int(operations)}, func(t *sgx.Thread, reqID int) {
		op := gen.Next()
		t.Syscall(requestBytes) // recv
		t.Compute(parseCycles)
		t.ECall(func() {
			switch op.Kind {
			case ycsb.OpInsert:
				binary.LittleEndian.PutUint64(scratch, workloads.Mix64(op.Key))
				if err := s.insert(op.Key, scratch); err != nil {
					return
				}
				hits++
			case ycsb.OpRead:
				if e := s.get(op.Key); e != 0 {
					t.Read(e+entryHeader, scratch)
					hits++
					checksum = workloads.FoldChecksum(checksum, binary.LittleEndian.Uint64(scratch))
				}
			default: // update
				if e := s.get(op.Key); e != 0 {
					binary.LittleEndian.PutUint64(scratch, workloads.Mix64(op.Key^uint64(reqID)))
					t.Write(e+entryHeader, scratch)
					hits++
				}
			}
		})
		if op.Kind == ycsb.OpRead {
			t.Syscall(valueBytes) // send value
		} else {
			t.Syscall(ackBytes) // send ack
		}
	})
	if err != nil {
		return workloads.Output{}, err
	}

	return workloads.Output{
		Checksum:    checksum,
		Ops:         operations,
		MeanLatency: res.MeanLatency,
		Extra: map[string]float64{
			"hits":          float64(hits),
			"mean_latency":  res.MeanLatency,
			"lru_evictions": float64(s.evictions),
			"live_entries":  float64(s.live()),
		},
	}, nil
}

var _ workloads.Workload = (*Workload)(nil)
