package memcached

import (
	"fmt"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

// store is the in-space key-value store: a chained hash table whose
// entries are threaded onto a doubly-linked LRU list, like real
// memcached's slab LRU. When the entry region is exhausted, the least
// recently used entry is evicted to make room — so insert-heavy
// traffic continuously recycles memory, churning the EPC.
//
// Entry layout (entryHeader bytes of metadata, then the value):
//
//	offset 0:  key u64
//	offset 8:  chain next (0 = end)
//	offset 16: LRU prev   (0 = none)
//	offset 24: LRU next   (0 = none)
//	offset 32: value [valueBytes]
type store struct {
	t       *sgx.Thread
	buckets uint64
	mask    uint64
	base    uint64 // start of the entry region
	next    uint64 // bump pointer
	limit   uint64

	lruHead uint64
	lruTail uint64
	free    []uint64 // recycled entry addresses

	evictions int64
}

const (
	offKey     = 0
	offChain   = 8
	offLRUPrev = 16
	offLRUNext = 24
)

func (s *store) bucketAddr(key uint64) uint64 {
	return s.buckets + (workloads.Mix64(key)&s.mask)*8
}

// lruUnlink removes e from the LRU list.
func (s *store) lruUnlink(e uint64) {
	prev := s.t.ReadU64(e + offLRUPrev)
	next := s.t.ReadU64(e + offLRUNext)
	if prev != 0 {
		s.t.WriteU64(prev+offLRUNext, next)
	} else {
		s.lruHead = next
	}
	if next != 0 {
		s.t.WriteU64(next+offLRUPrev, prev)
	} else {
		s.lruTail = prev
	}
}

// lruPush puts e at the head (most recently used).
func (s *store) lruPush(e uint64) {
	s.t.WriteU64(e+offLRUPrev, 0)
	s.t.WriteU64(e+offLRUNext, s.lruHead)
	if s.lruHead != 0 {
		s.t.WriteU64(s.lruHead+offLRUPrev, e)
	}
	s.lruHead = e
	if s.lruTail == 0 {
		s.lruTail = e
	}
}

// touch marks e most recently used.
func (s *store) touch(e uint64) {
	if s.lruHead == e {
		return
	}
	s.lruUnlink(e)
	s.lruPush(e)
}

// chainUnlink removes e from its bucket chain.
func (s *store) chainUnlink(e uint64) {
	key := s.t.ReadU64(e + offKey)
	b := s.bucketAddr(key)
	cur := s.t.ReadU64(b)
	if cur == e {
		s.t.WriteU64(b, s.t.ReadU64(e+offChain))
		return
	}
	for cur != 0 {
		next := s.t.ReadU64(cur + offChain)
		if next == e {
			s.t.WriteU64(cur+offChain, s.t.ReadU64(e+offChain))
			return
		}
		cur = next
	}
	panic(fmt.Sprintf("memcached: entry %#x missing from its chain", e))
}

// evictLRU reclaims the least recently used entry.
func (s *store) evictLRU() {
	victim := s.lruTail
	if victim == 0 {
		panic("memcached: evictLRU on empty store")
	}
	s.chainUnlink(victim)
	s.lruUnlink(victim)
	s.free = append(s.free, victim)
	s.evictions++
}

// allocEntry returns space for one entry, evicting if needed.
func (s *store) allocEntry() uint64 {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free = s.free[:n-1]
		return e
	}
	if s.next+entryBytes <= s.limit {
		e := s.next
		s.next += entryBytes
		return e
	}
	s.evictLRU()
	return s.allocEntry()
}

// insert adds (or replaces) key with the given value.
func (s *store) insert(key uint64, value []byte) error {
	if e := s.find(key); e != 0 {
		s.t.Write(e+entryHeader, value)
		s.touch(e)
		return nil
	}
	e := s.allocEntry()
	b := s.bucketAddr(key)
	s.t.WriteU64(e+offKey, key)
	s.t.WriteU64(e+offChain, s.t.ReadU64(b))
	s.t.Write(e+entryHeader, value)
	s.t.WriteU64(b, e)
	s.lruPush(e)
	return nil
}

// find returns the entry address for key (0 if absent), without
// touching the LRU.
func (s *store) find(key uint64) uint64 {
	e := s.t.ReadU64(s.bucketAddr(key))
	for e != 0 {
		if s.t.ReadU64(e+offKey) == key {
			return e
		}
		e = s.t.ReadU64(e + offChain)
	}
	return 0
}

// get returns the entry for key, marking it recently used.
func (s *store) get(key uint64) uint64 {
	e := s.find(key)
	if e != 0 {
		s.touch(e)
	}
	return e
}

// live returns how many entries are currently stored.
func (s *store) live() int64 {
	allocated := int64((s.next - s.base) / entryBytes)
	return allocated - int64(len(s.free))
}
