package memcached

import (
	"encoding/binary"
	"testing"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/wltest"
)

func TestMetadata(t *testing.T) {
	w := New()
	if w.Name() != "Memcached" {
		t.Error("name wrong")
	}
	if w.NativePort() {
		t.Error("Memcached must be LibOS-only (paper §4.3)")
	}
}

func TestRecordScalingBracketsEPC(t *testing.T) {
	// Table 2: 50K/100K/200K records bracket the EPC (ratios
	// 0.55/1.1/2.2).
	w := New()
	low := workloads.MustFootprint(w, w.DefaultParams(96, workloads.Low))
	med := workloads.MustFootprint(w, w.DefaultParams(96, workloads.Medium))
	high := workloads.MustFootprint(w, w.DefaultParams(96, workloads.High))
	if !(low < 96 && med > 96 && high > 2*96-20) {
		t.Errorf("footprints %d/%d/%d do not bracket the 96-page EPC", low, med, high)
	}
}

func TestOperationsConstantAcrossSizes(t *testing.T) {
	// The paper fixes 800K operations for all record counts.
	w := New()
	ops := w.DefaultParams(96, workloads.Low).MustKnob("operations")
	for _, s := range workloads.Sizes() {
		if got := w.DefaultParams(96, s).MustKnob("operations"); got != ops {
			t.Errorf("%v: operations = %d, want constant %d", s, got, ops)
		}
	}
}

func TestStoreReadYourWrites(t *testing.T) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 96})
	env := m.NewEnv(sgx.Vanilla)
	tr := env.Main
	buckets := m.AllocUntrusted(64*8, mem.PageSize)
	entries := m.AllocUntrusted(100*entryBytes, mem.PageSize)
	s := &store{
		t: tr, buckets: buckets, mask: 63,
		base: entries, next: entries, limit: entries + 100*entryBytes,
	}
	val := make([]byte, valueBytes)
	for k := uint64(0); k < 50; k++ {
		binary.LittleEndian.PutUint64(val, k*7)
		if err := s.insert(k, val); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 50; k++ {
		e := s.find(k)
		if e == 0 {
			t.Fatalf("key %d missing", k)
		}
		if got := tr.ReadU64(e + entryHeader); got != k*7 {
			t.Fatalf("key %d value = %d, want %d", k, got, k*7)
		}
	}
	if s.find(999) != 0 {
		t.Error("phantom key found")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 96})
	env := m.NewEnv(sgx.Vanilla)
	tr := env.Main
	buckets := m.AllocUntrusted(8*8, mem.PageSize)
	entries := m.AllocUntrusted(2*entryBytes, mem.PageSize)
	s := &store{t: tr, buckets: buckets, mask: 7, base: entries, next: entries, limit: entries + 2*entryBytes}
	val := make([]byte, valueBytes)
	if err := s.insert(1, val); err != nil {
		t.Fatal(err)
	}
	if err := s.insert(2, val); err != nil {
		t.Fatal(err)
	}
	// Touch key 1 so key 2 becomes the LRU victim.
	if s.get(1) == 0 {
		t.Fatal("key 1 missing")
	}
	if err := s.insert(3, val); err != nil {
		t.Fatal(err)
	}
	if s.evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.evictions)
	}
	if s.get(2) != 0 {
		t.Error("LRU victim (key 2) survived")
	}
	if s.get(1) == 0 || s.get(3) == 0 {
		t.Error("recently-used keys were evicted")
	}
	if s.live() != 2 {
		t.Errorf("live = %d, want 2", s.live())
	}
}

func TestStoreLRUChurnKeepsChainsConsistent(t *testing.T) {
	// Heavy insert churn through a small region: every lookup after
	// the churn must be consistent with a host-side model.
	m := sgx.NewMachine(sgx.Config{EPCPages: 96})
	env := m.NewEnv(sgx.Vanilla)
	tr := env.Main
	buckets := m.AllocUntrusted(16*8, mem.PageSize)
	entries := m.AllocUntrusted(8*entryBytes, mem.PageSize)
	s := &store{t: tr, buckets: buckets, mask: 15, base: entries, next: entries, limit: entries + 8*entryBytes}
	val := make([]byte, valueBytes)
	for k := uint64(0); k < 100; k++ {
		if err := s.insert(k, val); err != nil {
			t.Fatal(err)
		}
	}
	// The 8 most recently inserted keys are resident; older ones are
	// gone.
	for k := uint64(92); k < 100; k++ {
		if s.get(k) == 0 {
			t.Errorf("recent key %d missing", k)
		}
	}
	for k := uint64(0); k < 92; k++ {
		if s.get(k) != 0 {
			t.Errorf("stale key %d resident", k)
		}
	}
	if s.evictions != 92 {
		t.Errorf("evictions = %d, want 92", s.evictions)
	}
}

func TestRunAcrossModes(t *testing.T) {
	params := workloads.Params{
		Size:    workloads.Low,
		Threads: 4,
		Knobs:   map[string]int64{"records": 200, "operations": 1000},
	}
	var sums []uint64
	for _, mode := range []sgx.Mode{sgx.Vanilla, sgx.LibOS} {
		ctx := wltest.NewCtxParams(t, New(), mode, params, 96)
		out, err := New().Run(ctx)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if out.Extra["hits"] < 800 {
			t.Errorf("%v: hits = %v of 1000 ops over loaded keys", mode, out.Extra["hits"])
		}
		if out.MeanLatency <= 0 {
			t.Errorf("%v: no latency recorded", mode)
		}
		sums = append(sums, out.Checksum)
	}
	if sums[0] != sums[1] {
		t.Error("modes served different values")
	}
}

func TestLatencyHigherUnderLibOS(t *testing.T) {
	params := workloads.Params{
		Size:    workloads.Low,
		Threads: 4,
		Knobs:   map[string]int64{"records": 200, "operations": 500},
	}
	lat := map[sgx.Mode]float64{}
	for _, mode := range []sgx.Mode{sgx.Vanilla, sgx.LibOS} {
		ctx := wltest.NewCtxParams(t, New(), mode, params, 96)
		out, err := New().Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		lat[mode] = out.MeanLatency
	}
	if lat[sgx.LibOS] <= lat[sgx.Vanilla] {
		t.Errorf("LibOS latency (%v) not above Vanilla (%v)", lat[sgx.LibOS], lat[sgx.Vanilla])
	}
}

func TestInvalidParams(t *testing.T) {
	ctx := wltest.NewCtxParams(t, New(), sgx.Vanilla,
		workloads.Params{Knobs: map[string]int64{"records": 0, "operations": 10}}, 96)
	if _, err := New().Run(ctx); err == nil {
		t.Error("zero records accepted")
	}
}
