package sgx

import (
	"encoding/binary"
	"math"

	"sgxgauge/internal/cache"
	"sgxgauge/internal/cycles"
	"sgxgauge/internal/enclave"
	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/tlb"
)

// memoWays is the size of the per-thread page memo: large enough to
// cover the few streams a workload interleaves (e.g. Memcpy's
// alternating source and destination pages), small enough to scan in
// a couple of cache lines.
const memoWays = 4

// memoEntry caches the complete resolution of one virtual page: its
// owning enclave (nil for untrusted pages), backing frame, and — for
// EPC pages — a pointer to the slot's CLOCK reference bit so memo
// hits keep marking the page recently-used. An entry is only valid
// while its TLB entry and EPC slot both live; see Thread.memoStore.
type memoEntry struct {
	// key is the entry's VPN biased by 1; 0 marks an invalid entry,
	// so a lookup is a single compare with no separate valid flag.
	key   uint64
	enc   *enclave.Enclave
	frame *mem.Frame
	ref   *bool
}

// Thread is one simulated hardware thread. Each thread owns a private
// dTLB and cycle clock; the LLC, EPC and counters are shared through
// the machine. Threads are simulated sequentially, so none of this is
// concurrency-sensitive.
type Thread struct {
	// ID distinguishes threads within an Env.
	ID int
	// Clock counts the cycles this thread has consumed.
	Clock cycles.Clock

	env          *Env
	tlb          *tlb.DTLB
	l1           *cache.L1
	shard        *perf.Shard
	enclaveDepth int

	memo     [memoWays]memoEntry
	memoNext uint8
	memoMRU  uint8
}

// memoLookup returns the memo entry for vpn, or nil. The
// most-recently-hit way is probed first: same-page streaks — the
// dominant access pattern — then cost one compare instead of a scan.
// The MRU index is a pure lookup-order hint; it never affects which
// entry is found, so simulated semantics are untouched.
func (t *Thread) memoLookup(vpn uint64) *memoEntry {
	k := vpn + 1
	if e := &t.memo[t.memoMRU]; e.key == k {
		return e
	}
	for i := range t.memo {
		if e := &t.memo[i]; e.key == k {
			t.memoMRU = uint8(i)
			return e
		}
	}
	return nil
}

// memoStore records a fresh page resolution, displacing the oldest
// entry. Callers must only store resolutions that are also present in
// the thread's TLB: every event that can kill a TLB entry (flush,
// shootdown, round-robin displacement) or an EPC slot (eviction,
// slot-table rebuild) invalidates the corresponding memo entries, so
// a memo hit soundly stands in for TLB probe + residency lookup.
func (t *Thread) memoStore(vpn uint64, enc *enclave.Enclave, frame *mem.Frame, ref *bool) {
	t.memo[t.memoNext] = memoEntry{key: vpn + 1, enc: enc, frame: frame, ref: ref}
	t.memoMRU = t.memoNext
	t.memoNext = (t.memoNext + 1) % memoWays
}

// memoClear drops every memo entry (TLB flush, EPC slot-table
// rebuild).
func (t *Thread) memoClear() {
	for i := range t.memo {
		t.memo[i].key = 0
	}
}

// memoInvalidate drops the memo entry for vpn if present (TLB
// shootdown or displacement of that page).
func (t *Thread) memoInvalidate(vpn uint64) {
	k := vpn + 1
	for i := range t.memo {
		if t.memo[i].key == k {
			t.memo[i].key = 0
		}
	}
}

// InEnclave reports whether the thread currently executes inside an
// enclave (between ECALL entry and exit, outside any OCALL).
func (t *Thread) InEnclave() bool { return t.enclaveDepth > 0 }

// Env returns the environment the thread belongs to.
func (t *Thread) Env() *Env { return t.env }

func (t *Thread) flushTLB() {
	t.tlb.Flush()
	t.memoClear()
	m := t.env.M
	t.shard.Inc(perf.TLBFlushes)
	// Transitions pollute the LLC: the kernel/microcode path
	// displaces a slice of the cache (part of the "cache pollution"
	// cost of frequent enclave transitions, paper §2.3).
	if d := m.Costs.PollutionDenom; d > 0 {
		m.LLC.EvictEveryNth(d, m.pollutionPhase)
		m.pollutionPhase++
	}
}

// transitionCost scales a base exit-path transition cost by the
// current concurrency level (paper §3.2.2: SGX overheads "can change
// drastically based on the number of threads"; Figure 3 shows Lighttpd
// latency growing ~7x with 16 concurrent clients). The contention is
// applied on the OCALL/syscall path, where concurrent requests pile up
// on kernel-side work and TLB shootdowns.
func (t *Thread) transitionCost(base uint64) uint64 {
	n := t.env.concurrency
	if n <= 1 {
		return base
	}
	f := 1 + t.env.M.Costs.ContentionFactor*float64(n-1)
	// The float64 product can exceed uint64 range for large base costs
	// at high concurrency; converting such a value is undefined (and
	// wraps to garbage on common targets). Saturate instead: a clamped
	// cost stays an upper bound, a wrapped one becomes nonsense.
	return cycles.SatU64(float64(base) * f)
}

// ECall enters the environment's enclave, runs fn inside it, and
// returns. Only ported (Native-mode) applications perform ECALLs; in
// Vanilla mode the call is direct, and in LibOS mode the unmodified
// application already runs entirely inside the enclave, so the call is
// also direct. Entering and leaving flush the thread's TLB (§2.3).
func (t *Thread) ECall(fn func()) {
	if t.env.Mode != Native {
		fn()
		return
	}
	c := &t.env.M.Costs
	if enc := t.env.Enclave; enc != nil && enc.Aborted() {
		// EENTER to an aborted enclave fails (abort-page semantics).
		panic(Fault(&AbortError{EnclaveID: enc.ID, Cause: enc.AbortCause()}))
	}
	t.env.M.transitionFault("ECALL")
	t.shard.Inc(perf.ECalls)
	t.env.M.trace(TraceECall, t, 0)
	t.Clock.Advance(c.ECallEnter)
	t.flushTLB()
	t.enclaveDepth++
	fn()
	t.enclaveDepth--
	t.Clock.Advance(c.ECallExit)
	t.flushTLB()
}

// OCall leaves the enclave to run fn in the untrusted region and
// returns. When the machine runs in switchless mode the call is
// instead handed to a proxy thread over shared memory and the enclave
// is never exited — no TLB flush (paper §5.6). Outside an enclave it
// degenerates to a plain call.
func (t *Thread) OCall(fn func()) {
	if !t.InEnclave() {
		fn()
		return
	}
	c := &t.env.M.Costs
	if t.env.M.cfg.Switchless && t.env.M.admitSwitchless() {
		t.shard.Inc(perf.SwitchlessCalls)
		// The proxy performs the work while the enclave thread
		// waits; the wait time equals the proxied work, which fn
		// charges to this clock.
		t.Clock.Advance(c.SwitchlessCall)
		depth := t.enclaveDepth
		t.enclaveDepth = 0 // proxied work happens outside
		fn()
		t.enclaveDepth = depth
		t.Clock.Advance(c.SwitchlessCall)
		return
	}
	t.env.M.transitionFault("OCALL")
	t.shard.Inc(perf.OCalls)
	t.env.M.trace(TraceOCall, t, 0)
	t.Clock.Advance(t.transitionCost(c.OCallExit))
	t.flushTLB()
	depth := t.enclaveDepth
	t.enclaveDepth = 0
	fn()
	t.enclaveDepth = depth
	t.Clock.Advance(t.transitionCost(c.OCallReturn))
	t.flushTLB()
}

// Syscall charges one system call that transfers n payload bytes,
// routed according to the execution mode: directly in Vanilla mode,
// through an OCALL in Native mode, and through the LibOS shim plus an
// OCALL in LibOS mode (paper §2.3, §2.4).
func (t *Thread) Syscall(n uint64) {
	c := &t.env.M.Costs
	t.shard.Inc(perf.Syscalls)
	t.env.M.trace(TraceSyscall, t, 0)
	work := func() {
		t.Clock.Advance(c.SyscallDirect + n*c.ByteCopy)
	}
	switch t.env.Mode {
	case Vanilla:
		work()
	case Native:
		t.OCall(work)
	case LibOS:
		t.Clock.Advance(c.SyscallShim)
		t.OCall(work)
	}
}

// SyscallInternal charges a system call the LibOS handles entirely
// inside the enclave (no exit) — e.g. memory management. In other
// modes it behaves like Syscall.
func (t *Thread) SyscallInternal(n uint64) {
	if t.env.Mode != LibOS {
		t.Syscall(n)
		return
	}
	c := &t.env.M.Costs
	t.shard.Inc(perf.Syscalls)
	t.Clock.Advance(c.SyscallShim + n*c.ByteCopy)
}

// Read copies len(p) bytes at addr from the simulated address space.
// A machine fault (aborted enclave, injected failure) unwinds as a
// typed Fault recoverable with Protect.
func (t *Thread) Read(addr uint64, p []byte) { t.env.M.access(t, addr, p, false) }

// Write copies p into the simulated address space at addr. Faults
// unwind as with Read.
func (t *Thread) Write(addr uint64, p []byte) { t.env.M.access(t, addr, p, true) }

// TryRead is Read with an ordinary error return instead of a Fault
// unwind, for callers that thread errors explicitly.
func (t *Thread) TryRead(addr uint64, p []byte) error {
	return t.env.M.tryAccess(t, addr, p, false)
}

// TryWrite is Write with an ordinary error return.
func (t *Thread) TryWrite(addr uint64, p []byte) error {
	return t.env.M.tryAccess(t, addr, p, true)
}

// ReadU64 reads a little-endian uint64 at addr. Aligned words whose
// page resolution is memoized take the machine's word fast path,
// which skips the general access dispatch and its staging buffer (see
// Machine.wordFast); the simulated charges are identical either way.
func (t *Thread) ReadU64(addr uint64) uint64 {
	m := t.env.M
	if m.fastWords && addr&7 == 0 {
		if f, ok := m.wordFast(t, addr, 8, false); ok {
			return binary.LittleEndian.Uint64(f.Data[addr&(mem.PageSize-1):])
		}
	}
	var b [8]byte
	m.access(t, addr, b[:], false)
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64 writes a little-endian uint64 at addr.
func (t *Thread) WriteU64(addr uint64, v uint64) {
	m := t.env.M
	if m.fastWords && addr&7 == 0 {
		if f, ok := m.wordFast(t, addr, 8, true); ok {
			binary.LittleEndian.PutUint64(f.Data[addr&(mem.PageSize-1):], v)
			return
		}
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.access(t, addr, b[:], true)
}

// ReadU32 reads a little-endian uint32 at addr.
func (t *Thread) ReadU32(addr uint64) uint32 {
	m := t.env.M
	if m.fastWords && addr&3 == 0 {
		if f, ok := m.wordFast(t, addr, 4, false); ok {
			return binary.LittleEndian.Uint32(f.Data[addr&(mem.PageSize-1):])
		}
	}
	var b [4]byte
	m.access(t, addr, b[:], false)
	return binary.LittleEndian.Uint32(b[:])
}

// WriteU32 writes a little-endian uint32 at addr.
func (t *Thread) WriteU32(addr uint64, v uint32) {
	m := t.env.M
	if m.fastWords && addr&3 == 0 {
		if f, ok := m.wordFast(t, addr, 4, true); ok {
			binary.LittleEndian.PutUint32(f.Data[addr&(mem.PageSize-1):], v)
			return
		}
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.access(t, addr, b[:], true)
}

// ReadF64 reads a float64 at addr.
func (t *Thread) ReadF64(addr uint64) float64 {
	return math.Float64frombits(t.ReadU64(addr))
}

// WriteF64 writes a float64 at addr.
func (t *Thread) WriteF64(addr uint64, v float64) {
	t.WriteU64(addr, math.Float64bits(v))
}

// ReadU8 reads one byte at addr.
func (t *Thread) ReadU8(addr uint64) byte {
	m := t.env.M
	if m.fastWords {
		if f, ok := m.wordFast(t, addr, 1, false); ok {
			return f.Data[addr&(mem.PageSize-1)]
		}
	}
	var b [1]byte
	m.access(t, addr, b[:], false)
	return b[0]
}

// WriteU8 writes one byte at addr.
func (t *Thread) WriteU8(addr uint64, v byte) {
	m := t.env.M
	if m.fastWords {
		if f, ok := m.wordFast(t, addr, 1, true); ok {
			f.Data[addr&(mem.PageSize-1)] = v
			return
		}
	}
	b := [1]byte{v}
	m.access(t, addr, b[:], true)
}

// Memset fills n bytes at addr with v. The fill is issued as one
// simulated access per page run (the hardware-stream equivalent of a
// rep-stos loop), writing straight into the backing frames instead of
// staging hundreds of small buffer writes.
func (t *Thread) Memset(addr uint64, v byte, n uint64) {
	t.env.M.fill(t, addr, v, n)
}

// Memcpy copies n bytes from src to dst within the simulated address
// space, one page-bounded chunk at a time (each chunk is one simulated
// read access plus one write access). The regions must not overlap.
// The source bytes are staged through a buffer because resolving the
// destination page can fault, evict, or recycle frames — including the
// source's.
func (t *Thread) Memcpy(dst, src, n uint64) {
	var buf [mem.PageSize]byte
	for n > 0 {
		c := mem.PageSize - (src & (mem.PageSize - 1))
		if d := mem.PageSize - (dst & (mem.PageSize - 1)); d < c {
			c = d
		}
		if c > n {
			c = n
		}
		t.Read(src, buf[:c])
		t.Write(dst, buf[:c])
		dst += c
		src += c
		n -= c
	}
}

// Compute charges n cycles of pure computation (no memory traffic).
func (t *Thread) Compute(n uint64) { t.Clock.Advance(n) }
