package sgx

import "sgxgauge/internal/perf"

// The Runtime* methods are the transition primitives used by trusted
// runtime code (the LibOS loader) rather than by applications. Unlike
// ECall, they perform the transition in every SGX mode.

// RuntimeECall performs a real enclave entry/exit around fn,
// regardless of execution mode.
func (t *Thread) RuntimeECall(fn func()) {
	c := &t.env.M.Costs
	t.shard.Inc(perf.ECalls)
	t.Clock.Advance(c.ECallEnter)
	t.flushTLB()
	t.enclaveDepth++
	fn()
	t.enclaveDepth--
	t.Clock.Advance(c.ECallExit)
	t.flushTLB()
}

// RuntimeOCall performs a real enclave exit/re-entry around fn,
// bypassing the switchless machinery.
func (t *Thread) RuntimeOCall(fn func()) {
	c := &t.env.M.Costs
	t.shard.Inc(perf.OCalls)
	t.Clock.Advance(t.transitionCost(c.OCallExit))
	t.flushTLB()
	depth := t.enclaveDepth
	t.enclaveDepth = 0
	fn()
	t.enclaveDepth = depth
	t.Clock.Advance(t.transitionCost(c.OCallReturn))
	t.flushTLB()
}

// RuntimeAEX records one asynchronous enclave exit (interrupt,
// exception) with its cost and TLB flush.
func (t *Thread) RuntimeAEX() {
	c := &t.env.M.Costs
	t.shard.Inc(perf.AEXs)
	t.Clock.Advance(c.AEX)
	t.flushTLB()
}
