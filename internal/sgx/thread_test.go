package sgx

import (
	"testing"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
)

// nativeEnv builds a Native-mode env with a small launched enclave.
func nativeEnv(t *testing.T, epcPages int) (*Machine, *Env) {
	t.Helper()
	m := NewMachine(Config{EPCPages: epcPages})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(2, epcPages*2); err != nil {
		t.Fatal(err)
	}
	return m, env
}

func TestECallCostsAndFlushes(t *testing.T) {
	m, env := nativeEnv(t, 64)
	tr := env.Main
	flushes := m.Counters.Get(perf.TLBFlushes)
	before := tr.Clock.Cycles()
	var inside bool
	tr.ECall(func() { inside = tr.InEnclave() })
	if !inside {
		t.Error("not in enclave during ECall body")
	}
	if tr.InEnclave() {
		t.Error("still in enclave after ECall")
	}
	c := m.Costs
	if got := tr.Clock.Cycles() - before; got != c.ECallEnter+c.ECallExit {
		t.Errorf("ECall cost = %d, want %d", got, c.ECallEnter+c.ECallExit)
	}
	if m.Counters.Get(perf.TLBFlushes) != flushes+2 {
		t.Error("ECall did not flush on both transitions")
	}
	if m.Counters.Get(perf.ECalls) != 1 {
		t.Errorf("ECalls = %d", m.Counters.Get(perf.ECalls))
	}
}

func TestECallIsDirectOutsideNativeMode(t *testing.T) {
	for _, mode := range []Mode{Vanilla, LibOS} {
		m := NewMachine(Config{EPCPages: 64})
		env := m.NewEnv(mode)
		if mode == LibOS {
			if _, err := env.LaunchEnclave(2, 64); err != nil {
				t.Fatal(err)
			}
			env.EnterPermanently()
		}
		tr := env.Main
		before := tr.Clock.Cycles()
		tr.ECall(func() {})
		if m.Counters.Get(perf.ECalls) != 0 {
			t.Errorf("%v: app-level ECall performed a transition", mode)
		}
		if tr.Clock.Cycles() != before {
			t.Errorf("%v: app-level ECall charged cycles", mode)
		}
	}
}

func TestOCallFromEnclave(t *testing.T) {
	m, env := nativeEnv(t, 64)
	tr := env.Main
	var outside bool
	tr.ECall(func() {
		tr.OCall(func() { outside = !tr.InEnclave() })
		if !tr.InEnclave() {
			t.Error("enclave depth lost after OCall return")
		}
	})
	if !outside {
		t.Error("OCall body ran inside the enclave")
	}
	if m.Counters.Get(perf.OCalls) != 1 {
		t.Errorf("OCalls = %d", m.Counters.Get(perf.OCalls))
	}
}

func TestOCallOutsideEnclaveIsDirect(t *testing.T) {
	m, env := nativeEnv(t, 64)
	env.Main.OCall(func() {})
	if m.Counters.Get(perf.OCalls) != 0 {
		t.Error("OCall outside enclave performed a transition")
	}
}

func TestSwitchlessOCallSkipsFlush(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64, Switchless: true})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(2, 64); err != nil {
		t.Fatal(err)
	}
	tr := env.Main
	tr.ECall(func() {
		flushes := m.Counters.Get(perf.TLBFlushes)
		tr.OCall(func() {})
		if m.Counters.Get(perf.TLBFlushes) != flushes {
			t.Error("switchless OCall flushed the TLB")
		}
	})
	if m.Counters.Get(perf.OCalls) != 0 {
		t.Error("switchless OCall counted as a regular OCall")
	}
	if m.Counters.Get(perf.SwitchlessCalls) != 1 {
		t.Errorf("SwitchlessCalls = %d", m.Counters.Get(perf.SwitchlessCalls))
	}
}

func TestSwitchlessIsCheaper(t *testing.T) {
	cost := func(switchless bool) uint64 {
		m := NewMachine(Config{EPCPages: 64, Switchless: switchless})
		env := m.NewEnv(Native)
		if _, err := env.LaunchEnclave(2, 64); err != nil {
			t.Fatal(err)
		}
		tr := env.Main
		var delta uint64
		tr.ECall(func() {
			before := tr.Clock.Cycles()
			tr.OCall(func() {})
			delta = tr.Clock.Cycles() - before
		})
		return delta
	}
	if s, d := cost(true), cost(false); s*4 > d {
		t.Errorf("switchless OCall (%d cycles) not clearly cheaper than default (%d)", s, d)
	}
}

func TestSyscallRoutingPerMode(t *testing.T) {
	// Vanilla: no transitions. Native: one OCALL. LibOS: shim + OCALL.
	counts := func(mode Mode) (ocalls, syscalls uint64) {
		m := NewMachine(Config{EPCPages: 64})
		env := m.NewEnv(mode)
		tr := env.Main
		if mode != Vanilla {
			if _, err := env.LaunchEnclave(2, 64); err != nil {
				t.Fatal(err)
			}
		}
		if mode == LibOS {
			env.EnterPermanently()
		}
		run := func() { tr.Syscall(64) }
		if mode == Native {
			tr.ECall(run)
		} else {
			run()
		}
		return m.Counters.Get(perf.OCalls), m.Counters.Get(perf.Syscalls)
	}
	if o, s := counts(Vanilla); o != 0 || s != 1 {
		t.Errorf("Vanilla: ocalls=%d syscalls=%d", o, s)
	}
	if o, s := counts(Native); o != 1 || s != 1 {
		t.Errorf("Native: ocalls=%d syscalls=%d", o, s)
	}
	if o, s := counts(LibOS); o != 1 || s != 1 {
		t.Errorf("LibOS: ocalls=%d syscalls=%d", o, s)
	}
}

func TestSyscallInternalAvoidsExitInLibOS(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(LibOS)
	if _, err := env.LaunchEnclave(2, 64); err != nil {
		t.Fatal(err)
	}
	env.EnterPermanently()
	env.Main.SyscallInternal(64)
	if m.Counters.Get(perf.OCalls) != 0 {
		t.Error("internally-handled syscall exited the enclave")
	}
	if m.Counters.Get(perf.Syscalls) != 1 {
		t.Error("internal syscall not counted")
	}
}

func TestEPCFaultRaisesAEXOnlyInsideEnclave(t *testing.T) {
	m, env := nativeEnv(t, 32)
	tr := env.Main
	heap := env.MustAlloc(8*mem.PageSize, mem.PageSize)

	// Touch from outside the enclave (loader-style): no AEX.
	tr.WriteU8(heap, 1)
	if m.Counters.Get(perf.AEXs) != 0 {
		t.Error("fault outside enclave raised AEX")
	}
	// Touch a fresh page from inside: AEX.
	tr.ECall(func() { tr.WriteU8(heap+mem.PageSize, 1) })
	if m.Counters.Get(perf.AEXs) != 1 {
		t.Errorf("AEXs = %d, want 1", m.Counters.Get(perf.AEXs))
	}
}

func TestEvictionShootsDownTLB(t *testing.T) {
	m, env := nativeEnv(t, 32)
	tr := env.Main
	// Working set bigger than the EPC: pages the TLB knows about get
	// evicted, and re-access must fault (not serve stale frames).
	heap := env.MustAlloc(48*mem.PageSize, mem.PageSize)
	for p := uint64(0); p < 48; p++ {
		tr.WriteU64(heap+p*mem.PageSize, p)
	}
	// Page 0 was certainly evicted; its TLB entry must be gone, and
	// the access must load the right data back.
	faults := m.Counters.Get(perf.PageFaults)
	if got := tr.ReadU64(heap); got != 0 {
		t.Fatalf("page 0 = %d after shootdown, want 0", got)
	}
	if m.Counters.Get(perf.PageFaults) == faults {
		t.Error("re-access of evicted page did not fault (stale TLB entry)")
	}
}

func TestContentionScalesOCallCost(t *testing.T) {
	m, env := nativeEnv(t, 64)
	tr := env.Main
	measure := func() uint64 {
		var delta uint64
		tr.ECall(func() {
			before := tr.Clock.Cycles()
			tr.OCall(func() {})
			delta = tr.Clock.Cycles() - before
		})
		return delta
	}
	solo := measure()
	env.SetConcurrency(16)
	contended := measure()
	env.SetConcurrency(1)
	if contended <= solo {
		t.Errorf("16-way contended OCall (%d) not costlier than solo (%d)", contended, solo)
	}
	want := 1 + m.Costs.ContentionFactor*15
	got := float64(contended) / float64(solo)
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("contention multiplier = %.2f, want ~%.2f", got, want)
	}
}

func TestRunParallelClockSemantics(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Vanilla)
	base := env.Main.Clock.Cycles()
	env.RunParallel(4, func(tr *Thread, i int) {
		tr.Compute(uint64(1000 * (i + 1)))
	})
	// Elapsed advances by the max thread duration, not the sum.
	if got := env.Main.Clock.Cycles() - base; got != 4000 {
		t.Errorf("parallel elapsed = %d, want 4000 (max thread)", got)
	}
}

func TestRunParallelSingleThreadUsesMain(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Vanilla)
	var seen *Thread
	env.RunParallel(1, func(tr *Thread, i int) { seen = tr })
	if seen != env.Main {
		t.Error("RunParallel(1) spawned a new thread")
	}
}

func TestRunParallelThreadsSeeEnclaveState(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(LibOS)
	if _, err := env.LaunchEnclave(2, 64); err != nil {
		t.Fatal(err)
	}
	env.EnterPermanently()
	env.RunParallel(3, func(tr *Thread, i int) {
		if !tr.InEnclave() {
			t.Errorf("thread %d not inside enclave under LibOS", i)
		}
	})
	_ = m
}

func TestEnterPermanently(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(LibOS)
	if _, err := env.LaunchEnclave(2, 64); err != nil {
		t.Fatal(err)
	}
	if env.Main.InEnclave() {
		t.Error("in enclave before EnterPermanently")
	}
	env.EnterPermanently()
	if !env.Main.InEnclave() {
		t.Error("not in enclave after EnterPermanently")
	}
}

func TestModeString(t *testing.T) {
	if Vanilla.String() != "Vanilla" || Native.String() != "Native" || LibOS.String() != "LibOS" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode name wrong")
	}
}

func TestAllocModeRouting(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	van := m.NewEnv(Vanilla)
	a, err := van.Alloc(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a >= enclaveRegion {
		t.Error("Vanilla Alloc returned an enclave address")
	}
	nat := m.NewEnv(Native)
	if _, err := nat.Alloc(100, 0); err == nil {
		t.Error("Native Alloc before LaunchEnclave succeeded")
	}
	if _, err := nat.LaunchEnclave(2, 32); err != nil {
		t.Fatal(err)
	}
	b, err := nat.Alloc(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b < enclaveRegion {
		t.Error("Native Alloc returned an untrusted address")
	}
	if u := nat.AllocUntrusted(100, 0); u >= enclaveRegion {
		t.Error("AllocUntrusted returned an enclave address")
	}
}

func TestRuntimeTransitions(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(LibOS)
	if _, err := env.LaunchEnclave(2, 64); err != nil {
		t.Fatal(err)
	}
	tr := env.Main
	tr.RuntimeECall(func() {
		if !tr.InEnclave() {
			t.Error("RuntimeECall did not enter")
		}
		tr.RuntimeOCall(func() {
			if tr.InEnclave() {
				t.Error("RuntimeOCall did not exit")
			}
		})
	})
	tr.RuntimeAEX()
	c := m.Counters
	if c.Get(perf.ECalls) != 1 || c.Get(perf.OCalls) != 1 || c.Get(perf.AEXs) != 1 {
		t.Errorf("transition counters = %d/%d/%d", c.Get(perf.ECalls), c.Get(perf.OCalls), c.Get(perf.AEXs))
	}
}
