package sgx

import (
	"errors"
	"fmt"
)

// Fault is a recoverable machine fault. The Thread API (Read, Write,
// ECall, OCall...) has no error returns — workloads are written like
// application code — so when the machine hits a fault on that path it
// raises the typed Fault as a panic, and Protect converts it back to
// an ordinary error at the harness boundary. No Fault ever escapes a
// Protect frame, so no fault class kills the process.
type Fault interface {
	error
	machineFault()
}

// AbortError reports that an enclave has transitioned to the aborted
// state: an integrity violation (tampered, replayed, or dropped sealed
// page) or unrecoverable paging failure poisoned it, mirroring real
// SGX abort-page semantics. Every subsequent access to the enclave
// raises an AbortError with the same cause; sibling enclaves on the
// machine are unaffected.
type AbortError struct {
	// EnclaveID identifies the aborted enclave.
	EnclaveID uint32
	// Cause is the first failure that aborted the enclave (e.g.
	// mee.ErrMACMismatch, mee.ErrRollback, epc.ErrPageLost,
	// epc.ErrEPCExhausted).
	Cause error
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("sgx: enclave %d aborted: %v", e.EnclaveID, e.Cause)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *AbortError) Unwrap() error { return e.Cause }

func (*AbortError) machineFault() {}

// TransientError reports a transient, retryable fault: an injected
// ECALL/OCALL transition failure. The enclave is NOT aborted — a
// fresh run of the same spec may succeed, which is why the harness
// retries specs whose Result.Err is transient.
type TransientError struct {
	// Op names the failed transition ("ECALL" or "OCALL").
	Op string
	// Cause is the underlying fault (chaos.ErrTransition).
	Cause error
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("sgx: transient %s failure: %v", e.Op, e.Cause)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Cause }

func (*TransientError) machineFault() {}

// IsTransient reports whether err is (or wraps) a transient machine
// fault worth retrying.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// IsAbort reports whether err is (or wraps) an enclave abort.
func IsAbort(err error) bool {
	var ae *AbortError
	return errors.As(err, &ae)
}

// Protect runs fn, converting a machine Fault raised inside it into
// the returned error. Any other panic propagates unchanged. The
// harness wraps every simulated phase (enclave launch, LibOS boot,
// workload run) in Protect, so faults surface as per-spec errors
// while the machine — and every sibling enclave on it — keeps
// running.
func Protect(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(Fault); ok {
				err = f
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}
