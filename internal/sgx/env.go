package sgx

import (
	"fmt"

	"sgxgauge/internal/cache"
	"sgxgauge/internal/enclave"
	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/tlb"
)

// Env is one application's execution environment on a machine: a mode,
// an optional enclave, and a main thread. Workloads receive an Env and
// interact with simulated memory and the OS exclusively through it.
type Env struct {
	// M is the machine this environment runs on.
	M *Machine
	// Mode selects Vanilla / Native / LibOS behaviour.
	Mode Mode
	// Enclave is the environment's enclave; nil in Vanilla mode
	// until LaunchEnclave is called (and always nil if never called).
	Enclave *enclave.Enclave
	// Main is the initial thread.
	Main *Thread

	concurrency     int
	nextThread      int
	insideByDefault bool
}

// NewEnv creates an environment in the given mode with its main
// thread.
func (m *Machine) NewEnv(mode Mode) *Env {
	e := &Env{M: m, Mode: mode, concurrency: 1}
	e.Main = e.newThread()
	return e
}

func (e *Env) newThread() *Thread {
	t := &Thread{
		ID:    e.nextThread,
		env:   e,
		tlb:   tlb.New(e.M.cfg.TLBEntries, e.M.cfg.TLBWays),
		shard: e.M.Counters.NewShard(),
	}
	if e.M.cfg.L1Bytes > 0 {
		t.l1 = cache.NewL1(e.M.cfg.L1Bytes)
	}
	if e.insideByDefault {
		t.enclaveDepth = 1
	}
	e.nextThread++
	e.M.threads = append(e.M.threads, t)
	return t
}

func (e *Env) dropThread(t *Thread) {
	// Fold the retiring thread's counter deltas into the shared bank;
	// the Counters keep reporting them after the shard is gone.
	t.shard.Release()
	for i, cur := range e.M.threads {
		if cur == t {
			e.M.threads = append(e.M.threads[:i], e.M.threads[i+1:]...)
			return
		}
	}
}

// LaunchEnclave builds and initializes an enclave whose measured image
// occupies imagePages pages and whose total declared size is sizePages
// pages. The heap starts right after the image.
//
// The build loads every image page through the EPC and extends the
// measurement — for images larger than the EPC this is where the
// launch-time eviction storm of Figure 6a comes from ("prior to its
// execution [an enclave] is loaded completely in the EPC to verify its
// content", paper §3.2.1). The heap region [imagePages, sizePages) is
// demand-allocated on first touch (SGX v2 EAUG behaviour, Appendix D).
func (e *Env) LaunchEnclave(imagePages, sizePages int) (*enclave.Enclave, error) {
	return e.LaunchEnclaveReserve(imagePages, imagePages, sizePages)
}

// LaunchEnclaveReserve is LaunchEnclave with independent control over
// how much of the measured image is reserved (kept out of the heap).
// A Graphene-style loader measures the entire declared enclave —
// including what will become application heap — but reserves only its
// own loader footprint, so heap accesses after launch hit pages that
// were EADDed and then evicted (load-backs rather than fresh
// allocations, paper Appendix D / Figure 9).
func (e *Env) LaunchEnclaveReserve(imagePages, reservePages, sizePages int) (*enclave.Enclave, error) {
	if e.Mode == Vanilla {
		return nil, fmt.Errorf("sgx: LaunchEnclave in Vanilla mode")
	}
	if e.Enclave != nil {
		return nil, fmt.Errorf("sgx: environment already has an enclave")
	}
	if imagePages > sizePages {
		return nil, fmt.Errorf("sgx: image (%d pages) exceeds enclave size (%d pages)", imagePages, sizePages)
	}
	if reservePages > imagePages {
		return nil, fmt.Errorf("sgx: reserve (%d pages) exceeds image (%d pages)", reservePages, imagePages)
	}
	enc := e.M.newEnclave(sizePages)
	t := e.Main
	c := &e.M.Costs

	// EADD + EEXTEND each image page. The reserved (loader/binary)
	// pages get deterministic pseudo-content standing in for the
	// binary; the remaining measured pages are zero heap pages, as a
	// Graphene-style loader EADDs them.
	for i := 0; i < imagePages; i++ {
		id := mem.PageID{Enclave: enc.ID, VPN: mem.PageNumber(enc.Base) + uint64(i)}
		f, err := e.M.EPC.AllocPage(&t.Clock, c, id)
		if err != nil {
			// A degenerate EPC cannot even host the build; the
			// enclave never becomes usable.
			e.M.DestroyEnclave(enc)
			return nil, fmt.Errorf("sgx: building enclave page %d: %w", i, err)
		}
		if i < reservePages {
			fillImagePage(f, uint64(i))
		}
		enc.ExtendMeasurement(id.VPN, f)
		// EEXTEND measures the page in 256-byte chunks; charge a
		// nominal hashing cost per page, plus the copy/hash cache
		// traffic of moving the page through the LLC.
		t.Clock.Advance(c.Compute * 64)
		e.M.chargePageLoad(t, enc.Base+uint64(i)*mem.PageSize)
	}
	// Reserve the loader/binary region so the heap starts after it.
	if reservePages > 0 {
		if _, err := enc.Alloc(uint64(reservePages)*mem.PageSize, 1); err != nil {
			return nil, fmt.Errorf("sgx: reserving image region: %w", err)
		}
	}
	enc.FinishLaunch()
	// EINIT: verify the measurement against the author's signature.
	t.Clock.Advance(c.ECallEnter)
	e.Enclave = enc
	return enc, nil
}

// DestroyEnclave tears down the environment's enclave, releasing its
// EPC and backing pages and invalidating stale TLB entries and cache
// lines, after which the environment may launch a fresh enclave (a
// create→destroy→create service lifecycle). No-op without an enclave.
func (e *Env) DestroyEnclave() {
	if e.Enclave == nil {
		return
	}
	e.M.DestroyEnclave(e.Enclave)
	e.Enclave = nil
}

// fillImagePage writes deterministic pseudo-content so measurements
// are stable and non-trivial.
func fillImagePage(f *mem.Frame, idx uint64) {
	x := idx*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	for i := 0; i < mem.PageSize; i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		f.Data[i] = byte(x)
	}
}

// Alloc reserves n bytes of workload memory: enclave heap in Native
// and LibOS modes, untrusted memory in Vanilla mode. align must be a
// power of two (0 means 8).
func (e *Env) Alloc(n, align uint64) (uint64, error) {
	if e.Mode != Vanilla {
		if e.Enclave == nil {
			return 0, fmt.Errorf("sgx: Alloc before LaunchEnclave in %v mode", e.Mode)
		}
		return e.Enclave.Alloc(n, align)
	}
	return e.M.AllocUntrusted(n, align), nil
}

// MustAlloc is Alloc that panics on failure; workloads size their
// enclaves up front, so failure indicates a harness bug.
func (e *Env) MustAlloc(n, align uint64) uint64 {
	a, err := e.Alloc(n, align)
	if err != nil {
		panic(err)
	}
	return a
}

// AllocUntrusted reserves untrusted memory regardless of mode (I/O
// staging buffers, host-side data).
func (e *Env) AllocUntrusted(n, align uint64) uint64 {
	return e.M.AllocUntrusted(n, align)
}

// Concurrency returns the number of logical threads currently entering
// the enclave concurrently (used for the contention model).
func (e *Env) Concurrency() int { return e.concurrency }

// SetConcurrency overrides the contention level directly; most callers
// should use RunParallel instead.
func (e *Env) SetConcurrency(n int) {
	if n < 1 {
		n = 1
	}
	e.concurrency = n
}

// RunParallel simulates n logical threads running fn concurrently.
// Threads execute sequentially (keeping the simulation deterministic),
// each with a private dTLB and clock started at the caller's current
// time; the caller's clock then advances by the maximum thread
// duration, modelling the parallel phase's wall-clock contribution.
// Enclave transition costs inside the phase are scaled by the
// contention model.
func (e *Env) RunParallel(n int, fn func(t *Thread, i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(e.Main, 0)
		return
	}
	base := e.Main.Clock.Cycles()
	prev := e.concurrency
	e.concurrency = n
	var maxDelta uint64
	for i := 0; i < n; i++ {
		t := e.newThread()
		t.Clock.Advance(base)
		fn(t, i)
		if d := t.Clock.Cycles() - base; d > maxDelta {
			maxDelta = d
		}
		e.dropThread(t)
	}
	e.concurrency = prev
	e.Main.Clock.Advance(maxDelta)
}

// EnterPermanently marks the environment as executing inside the
// enclave from now on: all current and future threads run in-enclave
// until they OCALL out. The LibOS runtime calls this once its enclave
// is initialized, since under a library OS the entire unmodified
// application lives inside the enclave (paper §2.4).
func (e *Env) EnterPermanently() {
	e.insideByDefault = true
	for _, t := range e.M.threads {
		if t.env == e && t.enclaveDepth == 0 {
			t.enclaveDepth = 1
		}
	}
}

// Elapsed returns the cycles consumed on the main thread so far.
func (e *Env) Elapsed() uint64 { return e.Main.Clock.Cycles() }

// Snapshot captures the machine's counters.
func (e *Env) Snapshot() perf.Snapshot { return e.M.Counters.Snapshot() }
