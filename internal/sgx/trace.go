package sgx

// TraceKind identifies one traced SGX event, mirroring the event
// taxonomy of the enclave profilers the paper surveys (sgx-perf,
// TEEMon — §3.1.2): transitions, faults, and paging activity.
type TraceKind int

// The traced event kinds.
const (
	TraceECall TraceKind = iota
	TraceOCall
	TraceAEX
	TraceFault
	TraceEvict
	TraceLoadBack
	TraceSyscall
	numTraceKinds
)

// NumTraceKinds is the number of distinct trace kinds.
const NumTraceKinds = int(numTraceKinds)

// String returns the profiler-style event name.
func (k TraceKind) String() string {
	switch k {
	case TraceECall:
		return "ecall"
	case TraceOCall:
		return "ocall"
	case TraceAEX:
		return "aex"
	case TraceFault:
		return "fault"
	case TraceEvict:
		return "evict"
	case TraceLoadBack:
		return "loadback"
	case TraceSyscall:
		return "syscall"
	}
	return "unknown"
}

// TraceEvent is one recorded event.
type TraceEvent struct {
	// Kind is the event type.
	Kind TraceKind
	// Cycle is the issuing thread's clock at the event.
	Cycle uint64
	// Thread is the issuing thread's ID.
	Thread int
	// Addr is the page-aligned address for paging events, 0 for
	// transitions.
	Addr uint64
}

// SetTracer installs fn to observe SGX events as they happen; nil
// disables tracing. Tracing costs nothing in simulated time (the
// profilers the paper cites instrument the driver, outside the
// enclave).
func (m *Machine) SetTracer(fn func(TraceEvent)) { m.tracer = fn }

func (m *Machine) trace(k TraceKind, t *Thread, addr uint64) {
	if m.tracer == nil {
		return
	}
	m.tracer(TraceEvent{Kind: k, Cycle: t.Clock.Cycles(), Thread: t.ID, Addr: addr})
}
