package sgx

import (
	"testing"

	"sgxgauge/internal/mem"
)

// thrashEnclave builds an enclave with a working set twice the EPC
// and sweeps it, forcing evict/load-back traffic.
func thrashEnclave(t *testing.T, cfg Config) uint64 {
	t.Helper()
	m := NewMachine(cfg)
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(1, 3*cfg.EPCPages); err != nil {
		t.Fatal(err)
	}
	tr := env.Main
	pages := 2 * cfg.EPCPages
	heap := env.MustAlloc(uint64(pages)*mem.PageSize, mem.PageSize)
	for pass := 0; pass < 3; pass++ {
		for p := 0; p < pages; p++ {
			addr := heap + uint64(p)*mem.PageSize
			if pass == 0 {
				tr.WriteU64(addr, uint64(p))
			} else if got := tr.ReadU64(addr); got != uint64(p) {
				t.Fatalf("pass %d page %d corrupted: %d", pass, p, got)
			}
		}
	}
	return tr.Clock.Cycles()
}

func TestIntegrityTreePreservesCorrectness(t *testing.T) {
	// Identical data survives thrash with the tree enabled.
	thrashEnclave(t, Config{EPCPages: 32, IntegrityTree: true})
}

func TestIntegrityTreeCostsCycles(t *testing.T) {
	flat := thrashEnclave(t, Config{EPCPages: 32})
	tree := thrashEnclave(t, Config{EPCPages: 32, IntegrityTree: true})
	if tree <= flat {
		t.Errorf("integrity tree added no paging cost: %d vs %d", tree, flat)
	}
	// The overhead should be a meaningful but bounded fraction —
	// VAULT's motivation is that tree walks hurt paging, not that
	// they dominate everything.
	ratio := float64(tree) / float64(flat)
	if ratio > 1.6 {
		t.Errorf("integrity-tree overhead = %.2fx, implausibly high", ratio)
	}
}

func TestIntegrityTreeCachedLevelsReduceCost(t *testing.T) {
	// VAULT-style ablation: caching more tree levels (a shallower
	// uncached path) makes paging cheaper.
	shallow := thrashEnclave(t, Config{EPCPages: 32, IntegrityTree: true, TreeCachedLevels: 9})
	deep := thrashEnclave(t, Config{EPCPages: 32, IntegrityTree: true, TreeCachedLevels: 1})
	if shallow >= deep {
		t.Errorf("caching tree levels did not help: cached=%d vs uncached=%d", shallow, deep)
	}
}

func TestIntegrityTreeDetectsCrossPageSplice(t *testing.T) {
	// Attack the tree itself: corrupt an internal node and verify
	// the next load-back panics.
	m := NewMachine(Config{EPCPages: 32, IntegrityTree: true})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(1, 128); err != nil {
		t.Fatal(err)
	}
	tr := env.Main
	heap := env.MustAlloc(64*mem.PageSize, mem.PageSize)
	for p := uint64(0); p < 64; p++ {
		tr.WriteU64(heap+p*mem.PageSize, p)
	}
	m.EPC.IntegrityTree().CorruptNode(2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("load-back after tree corruption did not panic")
		}
	}()
	// Sweep until some evicted page under the corrupted subtree is
	// touched.
	for p := uint64(0); p < 64; p++ {
		tr.ReadU64(heap + p*mem.PageSize)
	}
}
