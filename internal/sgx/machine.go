// Package sgx ties the simulated substrates together into a machine
// with three execution modes — Vanilla, Native and LibOS — matching
// Table 1 of the paper.
//
// A Machine owns the EPC, the MEE, the shared LLC, the untrusted
// memory, and the performance-counter bank. Threads (each with its own
// dTLB and cycle clock) issue memory accesses against the machine;
// every access walks the full hierarchy: dTLB lookup, page walk with
// EPCM verification, EPC fault handling with AEX, LLC lookup with MEE
// charges for enclave lines. The counter explosions the paper reports
// are emergent behaviour of this path.
package sgx

import (
	"errors"
	"fmt"
	"strings"

	"sgxgauge/internal/cache"
	"sgxgauge/internal/chaos"
	"sgxgauge/internal/cycles"
	"sgxgauge/internal/enclave"
	"sgxgauge/internal/epc"
	"sgxgauge/internal/mee"
	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
)

// Mode is the execution mode of Table 1.
type Mode int

const (
	// Vanilla executes without SGX support.
	Vanilla Mode = iota
	// Native executes inside SGX after porting (explicit ECALLs).
	Native
	// LibOS executes unmodified under a library OS shim.
	LibOS
)

// String returns the paper's name for the mode.
func (m Mode) String() string {
	switch m {
	case Vanilla:
		return "Vanilla"
	case Native:
		return "Native"
	case LibOS:
		return "LibOS"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode resolves a mode name (case-insensitively). Unknown names
// yield an error listing the valid ones, so a mistyped wire request
// reports what would have worked.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "vanilla":
		return Vanilla, nil
	case "native":
		return Native, nil
	case "libos":
		return LibOS, nil
	}
	return 0, fmt.Errorf("sgx: unknown mode %q (valid: Vanilla, Native, LibOS)", s)
}

// MarshalText encodes the mode as its paper name, making Mode fields
// render as "Native" rather than an opaque integer in JSON.
func (m Mode) MarshalText() ([]byte, error) {
	switch m {
	case Vanilla, Native, LibOS:
		return []byte(m.String()), nil
	}
	return nil, fmt.Errorf("sgx: cannot encode unknown mode %d", int(m))
}

// UnmarshalText decodes a mode name via ParseMode.
func (m *Mode) UnmarshalText(text []byte) error {
	v, err := ParseMode(string(text))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// PaperEPCPages is the EPC size of the paper's platform: 92 MB.
const PaperEPCPages = 92 * 1024 * 1024 / mem.PageSize

// DefaultEPCPages is the default simulated EPC size. The suite keeps
// every footprint proportional to the EPC, so a small EPC preserves
// all Low/Medium/High ratios while running quickly. 512 pages = 2 MiB.
const DefaultEPCPages = 512

// LibOSEnclaveFactor is the ratio of the LibOS enclave size to the EPC
// size: the paper uses a 4 GB Graphene enclave against a 92 MB EPC
// (~44.5x), which is what produces the ~1M-eviction startup storm of
// Figure 6a.
const LibOSEnclaveFactor = 44

// Config parameterizes a Machine. The zero value is usable: every
// field has a sensible default derived from the EPC size, mirroring
// the proportions of the paper's Xeon E-2186G (Table 3).
type Config struct {
	// EPCPages is the EPC capacity in 4 KiB pages (default
	// DefaultEPCPages; the paper's hardware has PaperEPCPages).
	EPCPages int `json:"epc_pages,omitempty"`
	// Seed drives all deterministic key generation.
	Seed uint64 `json:"seed,omitempty"`
	// Costs is the cycle cost model (default cycles.DefaultCosts).
	Costs cycles.CostModel `json:"costs,omitempty"`
	// TLBEntries and TLBWays size each thread's dTLB. The default
	// scales with the EPC: entries = 2x EPCPages (4-way). On the
	// paper's machine the ~1.5K-entry STLB covers each workload's
	// *hot set* in Vanilla mode while SGX's transition flushes keep
	// it cold — that warm-vs-cold contrast is what produces the
	// 8-90x dTLB-miss ratios of Figures 2/5/8. The suite's
	// scaled-down workloads have flatter locality than the real
	// applications, so preserving the contrast requires the scaled
	// TLB to reach the scaled footprints.
	TLBEntries int `json:"tlb_entries,omitempty"`
	TLBWays    int `json:"tlb_ways,omitempty"`
	// LLCBytes and LLCWays size the shared LLC. The default scales
	// with the EPC (EPC bytes / 2, 16-way). Like the TLB default, the
	// proportion is chosen so the LLC covers a Vanilla run's hot set
	// the way the paper machine's 12 MB LLC covers the real
	// applications' — EPC eviction then visibly costs extra LLC
	// misses, reproducing the 1.8-3x LLC-miss ratios of Table 4.
	LLCBytes int `json:"llc_bytes,omitempty"`
	LLCWays  int `json:"llc_ways,omitempty"`
	// L1Bytes enables an optional per-thread first-level cache in
	// front of the LLC (0 = off, the calibrated default). The paper
	// machine has 384 KB of L1 against its 12 MB LLC (Table 3); a
	// proportional scaled setting is LLCBytes/32.
	L1Bytes int `json:"l1_bytes,omitempty"`
	// Switchless enables switchless OCALLs handled by proxy threads
	// (paper §5.6).
	Switchless bool `json:"switchless,omitempty"`
	// IntegrityTree maintains a Merkle tree over evicted-page MACs,
	// making EWB/ELDU pay per uncached tree level (the integrity
	// structures §2.2 describes; VAULT's target). Off by default:
	// the flat MAC+version scheme already provides
	// integrity+freshness in the model.
	IntegrityTree bool `json:"integrity_tree,omitempty"`
	// TreeCachedLevels is how many top tree levels are held on-die
	// (default 4).
	TreeCachedLevels int `json:"tree_cached_levels,omitempty"`
	// Chaos, when non-nil and enabled, attaches a deterministic fault
	// injector modelling an adversarial OS (package chaos): forced
	// AEX storms, EPC ballooning, attacks on evicted pages, and
	// transient transition failures.
	Chaos *chaos.Config `json:"chaos,omitempty"`
	// SlowPath routes every memory access through the straight-line
	// reference implementation (no memoization, no counter sharding,
	// no batched charging). Simulated results are identical to the
	// default fast path — the differential tests exist to prove it —
	// so the only reason to set this is those tests.
	SlowPath bool `json:"slow_path,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.EPCPages == 0 {
		c.EPCPages = DefaultEPCPages
	}
	if c.Costs == (cycles.CostModel{}) {
		c.Costs = cycles.DefaultCosts()
	}
	if c.TLBEntries == 0 {
		c.TLBEntries = 2 * c.EPCPages
		if c.TLBEntries < 64 {
			c.TLBEntries = 64
		}
	}
	if c.TLBWays == 0 {
		c.TLBWays = 4
	}
	if c.LLCBytes == 0 {
		c.LLCBytes = c.EPCPages * mem.PageSize / 2
		if c.LLCBytes < 64*1024 {
			c.LLCBytes = 64 * 1024
		}
	}
	if c.LLCWays == 0 {
		c.LLCWays = 16
	}
	return c
}

// untrustedBase is where the untrusted heap starts.
const untrustedBase uint64 = 0x0000_1000_0000

// enclaveRegion is where enclave address ranges start; successive
// enclaves are placed at enclaveStride intervals.
const (
	enclaveRegion uint64 = 0x7000_0000_0000
	enclaveStride uint64 = 0x0000_4000_0000 // 1 GiB of VA per enclave slot
)

// Machine is one simulated SGX platform.
type Machine struct {
	cfg      Config
	Costs    cycles.CostModel
	Counters *perf.Counters
	Engine   *mee.Engine
	Backing  *mem.BackingStore
	EPC      *epc.EPC
	LLC      *cache.LLC

	untrusted     map[uint64]*mem.Frame // vpn -> frame
	pool          mem.Pool
	untrustedNext uint64

	enclaves    []*enclave.Enclave
	nextEnclave uint32
	enclaveNext uint64 // next free enclave VA (stride-aligned cursor)

	threads        []*Thread
	pollutionPhase uint64
	switchlessSeq  uint64
	tracer         func(TraceEvent)

	// chaos, when non-nil, is the adversarial-OS fault injector;
	// rollbackStash keeps the stale sealed pages it replays.
	chaos         *chaos.Injector
	rollbackStash map[mem.PageID]*mem.SealedPage

	// fastWords enables the word fast path and bulk extent charging:
	// true iff the machine runs neither the SlowPath reference nor a
	// chaos injector (chaos draws are consumed per access, so chaotic
	// machines replay extents access by access).
	fastWords bool
}

// switchlessFallback is how often a switchless call finds the proxy
// queue full and falls back to a real OCALL (1 in every N calls). The
// proxy pool is finite, so under load a fraction of calls still exits
// the enclave — which is why the paper measures a 60% (not 100%)
// dTLB-miss reduction in switchless mode (§5.6).
const switchlessFallback = 4

// admitSwitchless reports whether the next OCALL can be handled by a
// proxy thread; every switchlessFallback-th call overflows the queue.
func (m *Machine) admitSwitchless() bool {
	m.switchlessSeq++
	return m.switchlessSeq%switchlessFallback != 0
}

// transitionFault consults the chaos injector on an enclave
// transition and, when a transient failure is injected, raises it as
// a recoverable TransientError (the enclave is not aborted; a retry
// of the run may succeed).
func (m *Machine) transitionFault(op string) {
	if m.chaos == nil || !m.chaos.Fire(chaos.TransitionFault) {
		return
	}
	m.Counters.Inc(perf.TransitionFaults)
	panic(Fault(&TransientError{Op: op, Cause: chaos.ErrTransition}))
}

// NewMachine boots a machine with the given configuration.
func NewMachine(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	counters := &perf.Counters{}
	engine := mee.New(cfg.Seed)
	backing := mem.NewBackingStore()
	m := &Machine{
		cfg:           cfg,
		Costs:         cfg.Costs,
		Counters:      counters,
		Engine:        engine,
		Backing:       backing,
		EPC:           epc.New(cfg.EPCPages, engine, backing, counters),
		LLC:           cache.NewLLC(cfg.LLCBytes, cfg.LLCWays),
		untrusted:     make(map[uint64]*mem.Frame),
		untrustedNext: untrustedBase,
		nextEnclave:   1, // enclave 0 is reserved for untrusted memory
		enclaveNext:   enclaveRegion,
	}
	if cfg.IntegrityTree {
		cached := cfg.TreeCachedLevels
		if cached == 0 {
			cached = 4
		}
		// Capacity covers every page that can ever be evicted: the
		// LibOS enclave alone measures 44x the EPC.
		m.EPC.SetIntegrityTree(mee.NewIntegrityTree(cfg.EPCPages*(LibOSEnclaveFactor+20), cached))
	}
	m.EPC.SetEvictHook(func(id mem.PageID) {
		if m.tracer != nil {
			// Evictions happen on the driver's behalf; no issuing
			// thread is attributed.
			m.tracer(TraceEvent{Kind: TraceEvict, Thread: -1, Addr: id.VPN * mem.PageSize})
		}
		m.shootdown(id)
		// The page now sits sealed in untrusted memory — exactly
		// where an adversarial OS can reach it.
		if m.chaos != nil && id.Enclave != 0 && m.chaos.Fire(chaos.MemTamper) {
			m.tamperSealed(id)
		}
	})
	// Teardown discards pages without an EWB, but the stale
	// translations and cache lines must go the same way.
	m.EPC.SetRemoveHook(m.shootdown)
	// A resize rebuilds the EPC slot table, dangling the reference-bit
	// pointers the per-thread page memos hold (see epc.LookupRef).
	m.EPC.SetResizeHook(func() {
		for _, t := range m.threads {
			t.memoClear()
		}
	})
	if cfg.Chaos != nil && cfg.Chaos.Enabled() {
		m.chaos = chaos.New(*cfg.Chaos)
		m.rollbackStash = make(map[mem.PageID]*mem.SealedPage)
	}
	m.fastWords = !cfg.SlowPath && m.chaos == nil
	return m
}

// Chaos returns the machine's fault injector, or nil when chaos is
// not configured.
func (m *Machine) Chaos() *chaos.Injector { return m.chaos }

// tamperSealed mounts one untrusted-memory attack on the sealed page
// for id, chosen deterministically by the injector. The damage is
// detected later — on load-back (MAC mismatch, rollback) or fault-in
// (dropped page) — exactly like a real tamper attempt.
func (m *Machine) tamperSealed(id mem.PageID) {
	sp := m.Backing.Get(id)
	if sp == nil {
		return
	}
	switch m.chaos.NextTamper() {
	case chaos.TamperBitFlip:
		sp.Ciphertext[m.chaos.PickOffset(mem.PageSize)] ^= 1 << uint(m.chaos.PickOffset(8))
	case chaos.TamperMAC:
		sp.MAC[m.chaos.PickOffset(len(sp.MAC))] ^= 1 << uint(m.chaos.PickOffset(8))
	case chaos.TamperDrop:
		m.Backing.Delete(id)
	case chaos.TamperRollback:
		if stale, ok := m.rollbackStash[id]; ok {
			// Replay the stale version captured on an earlier
			// eviction of this page.
			cp := *stale
			m.Backing.Put(&cp)
		} else {
			// First strike on this page: capture the current sealed
			// image to replay on a later eviction.
			cp := *sp
			m.rollbackStash[id] = &cp
		}
	}
}

// shootdown invalidates every trace a page leaves in the translation
// and cache hierarchy: its dTLB entries in all threads and its lines
// in the LLC and any L1s. Called when a page leaves the EPC, whether
// evicted by the driver or discarded at enclave teardown — a later
// reuse of the VA range must start cold, not hit stale state.
func (m *Machine) shootdown(id mem.PageID) {
	// TLB shootdown: translations for the departed page vanish, along
	// with any memoized resolution of them.
	for _, t := range m.threads {
		t.tlb.Evict(id.VPN)
		t.memoInvalidate(id.VPN)
	}
	// The page's cache lines leave the LLC (and any L1s) as the
	// MEE encrypts the page out to untrusted memory; re-touching
	// it after a load-back misses again.
	m.LLC.InvalidateRange(id.VPN*mem.PageSize/mem.LineSize, mem.PageSize/mem.LineSize)
	for _, t := range m.threads {
		if t.l1 != nil {
			t.l1.InvalidateRange(id.VPN*mem.PageSize/mem.LineSize, mem.PageSize/mem.LineSize)
		}
	}
}

// Config returns the effective (defaulted) configuration.
func (m *Machine) Config() Config { return m.cfg }

// EPCBytes returns the EPC capacity in bytes.
func (m *Machine) EPCBytes() uint64 {
	return uint64(m.cfg.EPCPages) * mem.PageSize
}

// AllocUntrusted reserves n bytes of untrusted memory with the given
// power-of-two alignment (0 means 8) and returns its base address.
func (m *Machine) AllocUntrusted(n, align uint64) uint64 {
	if align == 0 {
		align = 8
	}
	addr := (m.untrustedNext + align - 1) &^ (align - 1)
	m.untrustedNext = addr + n
	return addr
}

// enclaveSpan returns the stride-aligned VA footprint of an enclave
// of sizePages pages.
func enclaveSpan(sizePages int) uint64 {
	need := (uint64(sizePages)*mem.PageSize + enclaveStride - 1) / enclaveStride
	if need == 0 {
		need = 1
	}
	return need * enclaveStride
}

// newEnclave reserves an ID and address range for an enclave of
// sizePages pages. Ranges come from a cumulative cursor, not a
// per-enclave stride multiple: an enclave spanning several stride
// slots (a LibOS enclave is ~44x the EPC) must push the next
// enclave's base past its whole range, or the ranges overlap.
func (m *Machine) newEnclave(sizePages int) *enclave.Enclave {
	id := m.nextEnclave
	m.nextEnclave++
	base := m.enclaveNext
	m.enclaveNext = base + enclaveSpan(sizePages)
	e := enclave.New(id, base, sizePages)
	m.enclaves = append(m.enclaves, e)
	return e
}

// enclaveFor returns the enclave owning addr, or nil for untrusted
// addresses.
func (m *Machine) enclaveFor(addr uint64) *enclave.Enclave {
	if addr < enclaveRegion {
		return nil
	}
	for _, e := range m.enclaves {
		if e.Contains(addr) {
			return e
		}
	}
	return nil
}

// DestroyEnclave releases every EPC and backing page of the enclave.
// The EPC's remove hook shoots down the pages' TLB entries and cache
// lines, so a later enclave reusing the VA range starts cold instead
// of panicking on a stale TLB hit.
func (m *Machine) DestroyEnclave(e *enclave.Enclave) {
	m.EPC.RemoveEnclave(e.ID)
	for i, cur := range m.enclaves {
		if cur == e {
			m.enclaves = append(m.enclaves[:i], m.enclaves[i+1:]...)
			break
		}
	}
	// Reclaim the VA slot when the destroyed enclave was the topmost
	// allocation (the common create→destroy→create service pattern);
	// the teardown shootdown above makes the reuse safe.
	if e.Base+enclaveSpan(e.SizePages) == m.enclaveNext {
		m.enclaveNext = e.Base
	}
}

// lookupResident resolves addr to its backing frame if the page is
// resident right now, marking EPC pages recently-used for CLOCK. For
// enclave pages it also returns the slot's reference-bit pointer for
// the caller's memo. ok is false when the page is not resident — which
// after a TLB hit means the entry is stale (it outlived an eviction
// performed without the machine's shootdown, e.g. under a test hook);
// callers must then fall back to the page-walk path rather than trust
// the stale translation.
func (m *Machine) lookupResident(enc *enclave.Enclave, addr uint64) (*mem.Frame, *bool, bool) {
	if enc != nil {
		return m.EPC.LookupRef(enc.PageID(addr))
	}
	f := m.untrusted[mem.PageNumber(addr)]
	return f, nil, f != nil
}

// ensureResident makes the page containing addr resident, handling
// EPC faults (with AEX when t executes inside an enclave) and
// demand allocation of untrusted pages. A paging or integrity
// failure aborts the owning enclave and returns the typed AbortError;
// the machine itself stays healthy.
func (m *Machine) ensureResident(t *Thread, enc *enclave.Enclave, addr uint64) (*mem.Frame, error) {
	c := &m.Costs
	if enc == nil {
		vpn := mem.PageNumber(addr)
		if f := m.untrusted[vpn]; f != nil {
			return f, nil
		}
		// First touch of an untrusted page: minor page fault.
		t.shard.Inc(perf.PageFaults)
		t.Clock.Advance(c.FaultOverhead)
		f := m.pool.Get()
		m.untrusted[vpn] = f
		return f, nil
	}

	id := enc.PageID(addr)
	if f, ok := m.EPC.Lookup(id); ok {
		return f, nil
	}
	// EPC fault. If the faulting thread is executing inside the
	// enclave this raises an asynchronous exit, which flushes the
	// TLB (paper §2.3 and Appendix B.3).
	t.shard.Inc(perf.PageFaults)
	m.trace(TraceFault, t, mem.PageBase(addr))
	if t.InEnclave() {
		t.shard.Inc(perf.AEXs)
		m.trace(TraceAEX, t, 0)
		t.Clock.Advance(c.AEX)
		t.flushTLB()
	}
	f, loaded, err := m.EPC.Fault(&t.Clock, c, id)
	if err != nil {
		return nil, m.abortEnclave(enc, fmt.Errorf("page %v: %w", id, err))
	}
	if loaded {
		m.trace(TraceLoadBack, t, mem.PageBase(addr))
	}
	return f, nil
}

// abortEnclave poisons the enclave with the given cause and returns
// the AbortError subsequent accesses will keep reporting. Integrity
// violations — the tamper/replay/drop vectors §2.2's MEE exists to
// detect — are counted separately from resource failures.
func (m *Machine) abortEnclave(enc *enclave.Enclave, cause error) error {
	if !enc.Aborted() {
		enc.Abort(cause)
		if errors.Is(cause, mee.ErrMACMismatch) || errors.Is(cause, mee.ErrRollback) ||
			errors.Is(cause, epc.ErrPageLost) {
			m.Counters.Inc(perf.IntegrityAborts)
		}
	}
	return &AbortError{EnclaveID: enc.ID, Cause: enc.AbortCause()}
}

// ForceEvict pushes the enclave page containing addr out of the EPC
// through the normal EWB path, reporting whether it was resident.
// Tests use it to park a chosen victim in the untrusted store
// deterministically instead of thrashing and hoping.
func (m *Machine) ForceEvict(t *Thread, addr uint64) bool {
	enc := m.enclaveFor(addr)
	if enc == nil {
		return false
	}
	evicted, err := m.EPC.EvictPage(&t.Clock, &m.Costs, enc.PageID(addr))
	if err != nil {
		panic(fmt.Sprintf("sgx: ForceEvict of %#x: %v", addr, err))
	}
	return evicted
}

// chargePageLoad models the cache-visible cost of loading one enclave
// page at build time (EADD + EEXTEND): the page is copied and hashed
// through the LLC, paying MEE latency per line. This launch traffic is
// part of why Native-mode runs show inflated LLC-miss and stall-cycle
// counts even at the Low setting (Table 4).
func (m *Machine) chargePageLoad(t *Thread, base uint64) {
	c := &m.Costs
	first := mem.LineNumber(base)
	hits, misses := m.LLC.AccessRun(first, mem.PageSize/mem.LineSize)
	if hits != 0 {
		t.shard.Add(perf.LLCHits, hits)
		t.Clock.Advance(hits * c.LLCHit)
	}
	if misses != 0 {
		// Plain DRAM latency: the MEE work of moving the page into
		// the EPC is already covered by the flat EPCAlloc/EWB charges
		// of the paging path.
		t.shard.Add(perf.LLCMisses, misses)
		t.Clock.Advance(misses * c.DRAMAccess)
		t.shard.Add(perf.StallCycles, misses*c.DRAMAccess)
	}
}

// pageOp selects what a single-page access does with the resolved
// frame bytes.
type pageOp int

const (
	opRead pageOp = iota
	opWrite
	opFill
)

// chaosStep runs the per-access fault-injection draws. Both the fast
// and the slow access path call it, so the injector's deterministic
// PRNG stream is consumed identically regardless of which path runs.
// A balloon failure during an enclave access aborts the enclave;
// outside any enclave the machine survives and the BalloonFailures
// counter records the partial resize.
func (m *Machine) chaosStep(t *Thread, enc *enclave.Enclave) error {
	c := &m.Costs
	if enc != nil && t.InEnclave() && m.chaos.Fire(chaos.AEXStorm) {
		// Injected interrupt storm: the OS forces an
		// asynchronous exit, flushing the thread's TLB (§2.3).
		m.Counters.Inc(perf.InjectedAEXs)
		m.Counters.Inc(perf.AEXs)
		m.trace(TraceAEX, t, 0)
		t.Clock.Advance(c.AEX)
		t.flushTLB()
	}
	if m.chaos.Fire(chaos.EPCBalloon) {
		// The OS balloons the EPC to a new capacity; Resize
		// evicts through the normal EWB path when shrinking.
		target := m.chaos.BalloonTarget(m.cfg.EPCPages, epc.MinCapacity)
		if err := m.EPC.Resize(&t.Clock, c, target); err != nil {
			m.Counters.Inc(perf.BalloonFailures)
			if enc != nil {
				return m.abortEnclave(enc, err)
			}
		}
	}
	return nil
}

// pageOpDispatch routes one single-page access to the fast path or,
// under Config.SlowPath, the straight-line reference implementation.
// For op opRead/opWrite, p holds the n payload bytes; for opFill, p is
// nil and v is the fill byte.
func (m *Machine) pageOpDispatch(t *Thread, addr, n uint64, p []byte, v byte, op pageOp) error {
	if m.cfg.SlowPath {
		return m.accessPageSlow(t, addr, n, p, v, op)
	}
	return m.accessPage(t, addr, n, p, v, op)
}

// accessPage performs one access confined to a single page. It
// returns a typed Fault error when the access hits an aborted
// enclave or trips an (injected or organic) failure.
//
// This is the simulator's hottest function; it stays cheap three ways,
// none of which may change simulated semantics (accessPageSlow is the
// straight-line reference, and TestFastSlowEquivalence holds the two
// to identical counters and cycles):
//
//   - counters go to the thread's perf.Shard (plain adds summed back
//     in by every Counters read) instead of the shared atomic bank;
//   - the thread's page memo caches the full resolution of the last
//     few pages (owning enclave, frame, CLOCK reference bit), so
//     same-page streaks skip the enclave scan, the TLB probe, and the
//     EPC residency map. A memo hit implies a TLB hit: entries die
//     with their TLB entry (flush, shootdown, victim displacement)
//     and with the EPC slot table (resize);
//   - LLC line charges for a run of lines are batched (AccessRun) and
//     clock advances are accumulated per kind.
func (m *Machine) accessPage(t *Thread, addr, n uint64, p []byte, v byte, op pageOp) error {
	c := &m.Costs
	sh := t.shard
	sh.Inc(perf.Accesses)
	// Clock advances accumulate in pend and land in one Advance call
	// per stretch; pend is drained before any EPC operation so code
	// that reads the clock mid-access (the EPC timeline) sees exactly
	// the value the slow path produces.
	pend := c.Compute

	vpn := mem.PageNumber(addr)
	me := t.memoLookup(vpn)
	var enc *enclave.Enclave
	if me != nil {
		enc = me.enc
	} else {
		enc = m.enclaveFor(addr)
	}
	if enc != nil && enc.Aborted() {
		// Abort-page semantics: the poisoned enclave stays dead, but
		// the access fails with a typed error rather than the
		// process; other enclaves are untouched.
		t.Clock.Advance(pend)
		return &AbortError{EnclaveID: enc.ID, Cause: enc.AbortCause()}
	}
	if m.chaos != nil {
		t.Clock.Advance(pend)
		pend = 0
		if err := m.chaosStep(t, enc); err != nil {
			return err
		}
		// An injected flush, shootdown or resize invalidates memos
		// through the machine's hooks; re-consult rather than trust.
		me = t.memoLookup(vpn)
	}

	var frame *mem.Frame
	if me != nil {
		pend += c.TLBHit
		frame = me.frame
		if me.ref != nil {
			*me.ref = true // keep the CLOCK reference bit warm
		}
	} else {
		var ref *bool
		resolved := false
		if t.tlb.Lookup(vpn) {
			if f, r, ok := m.lookupResident(enc, addr); ok {
				pend += c.TLBHit
				frame, ref, resolved = f, r, true
			} else {
				// Stale TLB entry that outlived an eviction: drop it
				// and take the page-walk path below instead of
				// trusting the dead translation.
				t.tlb.Evict(vpn)
			}
		}
		if !resolved {
			sh.Inc(perf.DTLBMisses)
			walk := c.PageWalk
			if enc != nil {
				// The EPCM entry is verified while installing a TLB
				// entry for an EPC page (paper Figure 1).
				walk += c.EPCMCheck
			}
			sh.Add(perf.WalkCycles, walk)
			t.Clock.Advance(pend + walk)
			pend = 0
			var err error
			frame, err = m.ensureResident(t, enc, addr)
			if err != nil {
				return err
			}
			if enc != nil {
				// One combined probe covers the EPCM verification and
				// the CLOCK reference-bit fetch (same semantics as
				// EPCMLookup + LookupRef; see epc.WalkResolve).
				_, r, ent, ok := m.EPC.WalkResolve(enc.PageID(addr))
				if !ok || !ent.Valid || ent.Owner != enc.ID || ent.VPN != vpn {
					panic(fmt.Sprintf("sgx: EPCM verification failed for %#x", addr))
				}
				ref = r
			}
			if victim, evicted := t.tlb.Insert(vpn); evicted {
				// The displaced translation may be memoized; a memo
				// hit must keep implying a TLB hit.
				t.memoInvalidate(victim)
			}
		}
		t.memoStore(vpn, enc, frame, ref)
	}

	// LLC traffic. Enclave lines pay the MEE encryption/decryption
	// latency on their way between LLC and DRAM (paper §2.2).
	first := mem.LineNumber(addr)
	lines := mem.LineNumber(addr+n-1) - first + 1
	if t.l1 == nil {
		if lines == 1 {
			// The overwhelmingly common case: a word-sized access
			// touching one line.
			if m.LLC.Access(first) {
				sh.Inc(perf.LLCHits)
				pend += c.LLCHit
			} else {
				extra := c.DRAMAccess
				if enc != nil {
					extra += c.MEELine
				}
				sh.Inc(perf.LLCMisses)
				sh.Add(perf.StallCycles, extra)
				pend += extra
			}
		} else {
			hits, misses := m.LLC.AccessRun(first, lines)
			if hits != 0 {
				sh.Add(perf.LLCHits, hits)
				pend += hits * c.LLCHit
			}
			if misses != 0 {
				extra := c.DRAMAccess
				if enc != nil {
					extra += c.MEELine
				}
				sh.Add(perf.LLCMisses, misses)
				sh.Add(perf.StallCycles, misses*extra)
				pend += misses * extra
			}
		}
	} else {
		for line := first; line < first+lines; line++ {
			if t.l1.Access(line) {
				sh.Inc(perf.L1Hits)
				pend += c.L1Hit
				continue
			}
			sh.Inc(perf.L1Misses)
			if m.LLC.Access(line) {
				sh.Inc(perf.LLCHits)
				pend += c.LLCHit
			} else {
				extra := c.DRAMAccess
				if enc != nil {
					extra += c.MEELine
				}
				sh.Inc(perf.LLCMisses)
				sh.Add(perf.StallCycles, extra)
				pend += extra
			}
		}
	}
	t.Clock.Advance(pend)

	off := addr & (mem.PageSize - 1)
	switch op {
	case opRead:
		copy(p, frame.Data[off:off+n])
		sh.Add(perf.BytesRead, n)
	case opWrite:
		copy(frame.Data[off:], p)
		sh.Add(perf.BytesWritten, n)
	case opFill:
		s := frame.Data[off : off+n]
		for i := range s {
			s[i] = v
		}
		sh.Add(perf.BytesWritten, n)
	}
	return nil
}

// wordFast handles the hottest access shape — an aligned word-sized
// load or store (n ≤ 8, addr aligned to n, so no line or page span)
// whose page resolution is memoized — without the general path's
// dispatch layers and staging buffer. It replicates accessPage's
// memo-hit branch exactly: one access, one TLB-hit charge, one LLC
// (or L1) line, identical counters and cycles. Anything else — memo
// miss, aborted enclave — reports ok=false with zero side effects and
// the caller falls back to the general path. Callers must check
// m.fastWords (no SlowPath, no chaos) and alignment first.
//
// The caller performs the data movement on the returned frame, which
// keeps the 8-byte staging buffer and memmove out of the loop.
func (m *Machine) wordFast(t *Thread, addr, n uint64, write bool) (*mem.Frame, bool) {
	me := t.memoLookup(mem.PageNumber(addr))
	if me == nil {
		return nil, false
	}
	if me.enc != nil && me.enc.Aborted() {
		return nil, false // rare: take the general path's exact error flow
	}
	c := &m.Costs
	sh := t.shard
	sh.Inc(perf.Accesses)
	pend := c.Compute + c.TLBHit
	if me.ref != nil {
		*me.ref = true
	}
	line := mem.LineNumber(addr)
	if t.l1 == nil {
		if m.LLC.Access(line) {
			sh.Inc(perf.LLCHits)
			pend += c.LLCHit
		} else {
			extra := c.DRAMAccess
			if me.enc != nil {
				extra += c.MEELine
			}
			sh.Inc(perf.LLCMisses)
			sh.Add(perf.StallCycles, extra)
			pend += extra
		}
	} else {
		if t.l1.Access(line) {
			sh.Inc(perf.L1Hits)
			pend += c.L1Hit
		} else {
			sh.Inc(perf.L1Misses)
			if m.LLC.Access(line) {
				sh.Inc(perf.LLCHits)
				pend += c.LLCHit
			} else {
				extra := c.DRAMAccess
				if me.enc != nil {
					extra += c.MEELine
				}
				sh.Inc(perf.LLCMisses)
				sh.Add(perf.StallCycles, extra)
				pend += extra
			}
		}
	}
	t.Clock.Advance(pend)
	if write {
		sh.Add(perf.BytesWritten, n)
	} else {
		sh.Add(perf.BytesRead, n)
	}
	return me.frame, true
}

// access performs a possibly page-spanning access, raising any Fault
// as a recoverable typed panic (see Protect): the Thread API the
// workloads program against has no error returns, and a faulted
// access cannot meaningfully continue the computation that issued it.
func (m *Machine) access(t *Thread, addr uint64, p []byte, write bool) {
	// Word-sized loads and stores never span a page; skip the
	// page-splitting loop for them.
	if len(p) > 0 && uint64(len(p)) <= mem.PageSize-addr&(mem.PageSize-1) {
		op := opRead
		if write {
			op = opWrite
		}
		if err := m.pageOpDispatch(t, addr, uint64(len(p)), p, 0, op); err != nil {
			panic(err.(Fault))
		}
		return
	}
	if err := m.tryAccess(t, addr, p, write); err != nil {
		panic(err.(Fault))
	}
}

// tryAccess is access with an ordinary error return, for callers that
// thread errors instead of unwinding.
func (m *Machine) tryAccess(t *Thread, addr uint64, p []byte, write bool) error {
	op := opRead
	if write {
		op = opWrite
	}
	for len(p) > 0 {
		pageOff := addr & (mem.PageSize - 1)
		chunk := int(mem.PageSize - pageOff)
		if chunk > len(p) {
			chunk = len(p)
		}
		if err := m.pageOpDispatch(t, addr, uint64(chunk), p[:chunk], 0, op); err != nil {
			return err
		}
		addr += uint64(chunk)
		p = p[chunk:]
	}
	return nil
}

// fill is the bulk Memset path: one simulated access per page run
// writes the fill byte straight into the backing frames, instead of
// staging thousands of small buffer writes through tryAccess. Faults
// unwind like access.
func (m *Machine) fill(t *Thread, addr uint64, v byte, n uint64) {
	for n > 0 {
		pageOff := addr & (mem.PageSize - 1)
		chunk := mem.PageSize - pageOff
		if chunk > n {
			chunk = n
		}
		if err := m.pageOpDispatch(t, addr, chunk, nil, v, opFill); err != nil {
			panic(err.(Fault))
		}
		addr += chunk
		n -= chunk
	}
}
