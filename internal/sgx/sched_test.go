package sgx

import (
	"errors"
	"reflect"
	"testing"
)

var errTestAbort = errors.New("injected test abort")

// interleaveTrace runs k compute-loop programs on one machine and
// records the order slots ran in (one mark per executed chunk).
func interleaveTrace(t *testing.T, seed uint64, k, chunks int) ([]int, []uint64) {
	t.Helper()
	m := NewMachine(Config{EPCPages: 256, Seed: seed})
	envs := make([]*Env, k)
	programs := make([]Program, k)
	var order []int
	for i := 0; i < k; i++ {
		env := m.NewEnv(Native)
		if _, err := env.LaunchEnclave(2, 16); err != nil {
			t.Fatalf("launch %d: %v", i, err)
		}
		envs[i] = env
		idx := i
		programs[i] = func(p *Proc) {
			for c := 0; c < chunks; c++ {
				order = append(order, idx)
				p.T().ECall(func() {
					p.T().Compute(512 * uint64(idx+1))
				})
				p.Yield()
			}
		}
	}
	// The quantum spans several chunks so the seed-derived jitter
	// actually moves preemption points between chunk boundaries.
	Interleave(seed, 65536, envs, programs)
	clocks := make([]uint64, k)
	for i, env := range envs {
		clocks[i] = env.Elapsed()
	}
	return order, clocks
}

func TestInterleaveDeterministic(t *testing.T) {
	o1, c1 := interleaveTrace(t, 42, 3, 64)
	o2, c2 := interleaveTrace(t, 42, 3, 64)
	if !reflect.DeepEqual(o1, o2) {
		t.Fatal("same seed produced different interleavings")
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("same seed produced different clocks: %v vs %v", c1, c2)
	}
	o3, _ := interleaveTrace(t, 43, 3, 64)
	if reflect.DeepEqual(o1, o3) {
		t.Fatal("different seeds produced identical interleavings (quantum jitter inert)")
	}
}

func TestInterleaveActuallyInterleaves(t *testing.T) {
	order, _ := interleaveTrace(t, 7, 2, 32)
	// A broken scheduler runs one program to completion before the
	// next; a working one alternates. Count switches between slots.
	switches := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			switches++
		}
	}
	if switches < 8 {
		t.Fatalf("only %d slot switches across %d chunks — programs ran back-to-back", switches, len(order))
	}
}

func TestInterleaveQuantumMergeBalancesClocks(t *testing.T) {
	// Slot 1's chunks cost ~2x slot 0's; lowest-clock-first scheduling
	// must still advance both through virtual time together, so the
	// final clocks stay within a few quanta of each other relative to
	// total runtime.
	_, clocks := interleaveTrace(t, 5, 2, 128)
	lo, hi := clocks[0], clocks[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo == 0 || hi > lo*2 {
		t.Fatalf("clocks diverged despite quantum merge: %v", clocks)
	}
}

func TestInterleaveAbortUnwindsAll(t *testing.T) {
	m := NewMachine(Config{EPCPages: 256, Seed: 1})
	mk := func() *Env {
		env := m.NewEnv(Native)
		if _, err := env.LaunchEnclave(2, 16); err != nil {
			t.Fatalf("launch: %v", err)
		}
		return env
	}
	envs := []*Env{mk(), mk()}
	survivorChunks := 0
	err := Protect(func() {
		Interleave(9, 1024, envs, []Program{
			func(p *Proc) {
				for {
					p.T().Compute(256)
					p.Yield()
					survivorChunks++
				}
			},
			func(p *Proc) {
				p.T().Compute(4096)
				p.Yield()
				panic(&AbortError{EnclaveID: p.Env.Enclave.ID, Cause: errTestAbort})
			},
		})
	})
	if err == nil {
		t.Fatal("abort in one program did not surface from Interleave")
	}
	if survivorChunks == 0 {
		t.Fatal("survivor never ran before the abort")
	}
}
