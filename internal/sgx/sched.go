package sgx

import (
	"fmt"
	"sync"
)

// This file implements the deterministic multi-enclave scheduler the
// scenario engine runs on: N enclave programs time-share one simulated
// machine under a seed-derived round-robin quantum merge. Programs
// execute strictly one at a time (control is handed over channels, so
// there is never true parallelism inside a machine), which makes an
// interleaved run bit-identical across GOMAXPROCS settings and -j
// levels — the same guarantee every single-enclave workload already
// has, extended to co-resident enclaves.

// Program is one enclave's body under Interleave. It runs on its
// environment's main thread and must call p.Yield() inside its loops;
// Yield is a cheap no-op until the program's current quantum is spent,
// at which point control passes to the co-resident enclave whose
// simulated clock is furthest behind.
type Program func(p *Proc)

// Proc is one scheduled enclave program's handle: its slot index, its
// environment on the shared machine, and the yield point.
type Proc struct {
	// Index is the program's position in the Interleave call.
	Index int
	// Env is the program's environment (its own enclave) on the
	// machine every co-scheduled program shares.
	Env *Env

	limit  uint64        // park once Env.Main's clock passes this
	resume chan struct{} // scheduler → program: run one quantum
	parked chan struct{} // program → scheduler: quantum spent or done
	done   bool
	killed bool
	fault  any // recovered panic (enclave abort), replayed by Interleave
}

// T returns the thread the program executes on.
func (p *Proc) T() *Thread { return p.Env.Main }

// procKilled unwinds a parked program whose scenario is being torn
// down after a co-resident enclave aborted.
type procKilled struct{}

// Yield is the preemption point: a no-op while the current quantum
// has cycles left, otherwise it parks the program and blocks until the
// scheduler hands the machine back.
func (p *Proc) Yield() {
	if p.Env.Main.Clock.Cycles() < p.limit {
		return
	}
	p.parked <- struct{}{}
	<-p.resume
	if p.killed {
		panic(procKilled{})
	}
}

// defaultQuantum is the slice length, in simulated cycles, when the
// caller passes quantum 0. Big enough that transition costs dominate
// scheduling noise, small enough that eviction storms from one enclave
// land inside another's execution window.
const defaultQuantum = 4096

// Interleave runs one program per environment, all on one machine,
// under a deterministic quantum scheduler seeded by seed. Each slice
// resumes the runnable program whose simulated clock is furthest
// behind (ties to the lowest index), for a quantum jittered around the
// base by a seed-derived xorshift stream — so co-residents' EPC and
// cache traffic interleave differently per seed but identically per
// rerun. It returns when every program has; if a program panics (an
// enclave abort under chaos), the remaining programs are unwound and
// the abort is re-raised in the caller, so the usual Protect wrapper
// sees exactly what a single-enclave run would.
func Interleave(seed, quantum uint64, envs []*Env, programs []Program) {
	if len(envs) != len(programs) {
		panic(fmt.Sprintf("sgx: Interleave with %d envs, %d programs", len(envs), len(programs)))
	}
	if len(programs) == 0 {
		return
	}
	if quantum == 0 {
		quantum = defaultQuantum
	}

	procs := make([]*Proc, len(programs))
	var wg sync.WaitGroup
	for i := range programs {
		p := &Proc{
			Index:  i,
			Env:    envs[i],
			resume: make(chan struct{}),
			parked: make(chan struct{}),
		}
		procs[i] = p
		prog := programs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-p.resume
			if p.killed {
				p.done = true
				p.parked <- struct{}{}
				return
			}
			defer func() {
				if r := recover(); r != nil {
					if _, torndown := r.(procKilled); !torndown {
						p.fault = r
					}
				}
				p.done = true
				p.parked <- struct{}{}
			}()
			prog(p)
		}()
	}

	// xorshift64 stream jittering each slice's quantum; seeded so a
	// zero seed still produces a non-degenerate sequence.
	rng := seed*0x9e3779b97f4a7c15 + 0x1079
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}

	var fault any
	alive := len(procs)
	for alive > 0 {
		// Quantum merge: resume the runnable program with the lowest
		// simulated clock, so co-residents advance through virtual
		// time together no matter how lopsided their per-slice work is.
		var pick *Proc
		for _, p := range procs {
			if p.done {
				continue
			}
			if pick == nil || p.Env.Main.Clock.Cycles() < pick.Env.Main.Clock.Cycles() {
				pick = p
			}
		}
		q := quantum/2 + next()%quantum
		pick.limit = pick.Env.Main.Clock.Cycles() + q
		pick.killed = fault != nil
		pick.resume <- struct{}{}
		<-pick.parked
		if pick.done {
			alive--
			if pick.fault != nil && fault == nil {
				fault = pick.fault
			}
		}
	}
	wg.Wait()
	if fault != nil {
		panic(fault)
	}
}
