package sgx

import (
	"testing"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
)

func TestL1DisabledByDefault(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Vanilla)
	addr := m.AllocUntrusted(4096, 8)
	env.Main.ReadU64(addr)
	env.Main.ReadU64(addr)
	if m.Counters.Get(perf.L1Hits)+m.Counters.Get(perf.L1Misses) != 0 {
		t.Error("L1 traffic counted with L1 disabled")
	}
}

func TestL1FiltersRepeatedAccesses(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64, L1Bytes: 8 * 1024})
	env := m.NewEnv(Vanilla)
	addr := m.AllocUntrusted(4096, 64)

	env.Main.ReadU64(addr) // cold: L1 miss, LLC miss
	llcBefore := m.Counters.Get(perf.LLCHits) + m.Counters.Get(perf.LLCMisses)
	for i := 0; i < 10; i++ {
		env.Main.ReadU64(addr) // warm: L1 hits, no LLC traffic
	}
	if got := m.Counters.Get(perf.LLCHits) + m.Counters.Get(perf.LLCMisses); got != llcBefore {
		t.Errorf("warm accesses reached the LLC (%d -> %d)", llcBefore, got)
	}
	if m.Counters.Get(perf.L1Hits) != 10 {
		t.Errorf("L1 hits = %d, want 10", m.Counters.Get(perf.L1Hits))
	}
}

func TestL1MakesRunsCheaper(t *testing.T) {
	run := func(l1 int) uint64 {
		m := NewMachine(Config{EPCPages: 64, L1Bytes: l1})
		env := m.NewEnv(Vanilla)
		tr := env.Main
		addr := m.AllocUntrusted(mem.PageSize, mem.PageSize)
		// Hot loop over one line.
		for i := 0; i < 1000; i++ {
			tr.ReadU64(addr)
		}
		return tr.Clock.Cycles()
	}
	with, without := run(8*1024), run(0)
	if with >= without {
		t.Errorf("L1 did not speed up a hot loop: %d vs %d", with, without)
	}
}

func TestL1InvalidatedOnEPCEviction(t *testing.T) {
	m := NewMachine(Config{EPCPages: 32, L1Bytes: 64 * 1024})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(1, 128); err != nil {
		t.Fatal(err)
	}
	tr := env.Main
	victim := env.MustAlloc(mem.PageSize, mem.PageSize)
	spare := env.MustAlloc(64*mem.PageSize, mem.PageSize)

	tr.WriteU64(victim, 42)
	for p := uint64(0); p < 64; p++ {
		tr.WriteU8(spare+p*mem.PageSize, 1)
	}
	// If the victim was evicted, its L1 line must be gone too; the
	// re-read must fault and still return correct data (a stale L1
	// line would not be a correctness bug in the tag-only model, but
	// the counters must show the refetch).
	misses := m.Counters.Get(perf.L1Misses)
	if got := tr.ReadU64(victim); got != 42 {
		t.Fatalf("victim = %d", got)
	}
	if m.Counters.Get(perf.L1Misses) == misses {
		t.Error("re-access of evicted page hit a stale L1 line")
	}
}
