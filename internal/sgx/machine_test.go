package sgx

import (
	"testing"
	"testing/quick"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
)

func TestConfigDefaults(t *testing.T) {
	m := NewMachine(Config{})
	cfg := m.Config()
	if cfg.EPCPages != DefaultEPCPages {
		t.Errorf("EPCPages = %d", cfg.EPCPages)
	}
	if cfg.TLBEntries != 2*DefaultEPCPages {
		t.Errorf("TLBEntries = %d, want %d", cfg.TLBEntries, 2*DefaultEPCPages)
	}
	if cfg.LLCBytes != DefaultEPCPages*mem.PageSize/2 {
		t.Errorf("LLCBytes = %d", cfg.LLCBytes)
	}
	if m.EPCBytes() != uint64(DefaultEPCPages)*mem.PageSize {
		t.Errorf("EPCBytes = %d", m.EPCBytes())
	}
}

func TestConfigMinimums(t *testing.T) {
	m := NewMachine(Config{EPCPages: 1})
	cfg := m.Config()
	if cfg.TLBEntries < 64 || cfg.LLCBytes < 64*1024 {
		t.Errorf("tiny machine got TLB=%d LLC=%d", cfg.TLBEntries, cfg.LLCBytes)
	}
}

func TestUntrustedReadWrite(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Vanilla)
	tr := env.Main

	addr := m.AllocUntrusted(64, 8)
	tr.WriteU64(addr, 0xdeadbeefcafef00d)
	if got := tr.ReadU64(addr); got != 0xdeadbeefcafef00d {
		t.Fatalf("ReadU64 = %#x", got)
	}
	tr.WriteU32(addr+8, 0x12345678)
	if got := tr.ReadU32(addr + 8); got != 0x12345678 {
		t.Fatalf("ReadU32 = %#x", got)
	}
	tr.WriteU8(addr+12, 0xAB)
	if got := tr.ReadU8(addr + 12); got != 0xAB {
		t.Fatalf("ReadU8 = %#x", got)
	}
	tr.WriteF64(addr+16, 3.25)
	if got := tr.ReadF64(addr + 16); got != 3.25 {
		t.Fatalf("ReadF64 = %v", got)
	}
}

func TestPageSpanningAccess(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Vanilla)
	tr := env.Main

	addr := m.AllocUntrusted(3*mem.PageSize, mem.PageSize)
	data := make([]byte, 2*mem.PageSize)
	for i := range data {
		data[i] = byte(i % 253)
	}
	// Write straddling two page boundaries.
	tr.Write(addr+mem.PageSize/2, data)
	out := make([]byte, len(data))
	tr.Read(addr+mem.PageSize/2, out)
	for i := range out {
		if out[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, out[i], data[i])
		}
	}
}

func TestMemsetMemcpy(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Vanilla)
	tr := env.Main

	a := m.AllocUntrusted(8192, mem.PageSize)
	b := m.AllocUntrusted(8192, mem.PageSize)
	tr.Memset(a, 0x5A, 5000)
	tr.Memcpy(b, a, 5000)
	buf := make([]byte, 5000)
	tr.Read(b, buf)
	for i, v := range buf {
		if v != 0x5A {
			t.Fatalf("byte %d = %#x after Memcpy", i, v)
		}
	}
	if tr.ReadU8(b+5000) != 0 {
		t.Error("Memcpy overran")
	}
}

func TestFirstTouchCountsPageFault(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Vanilla)
	tr := env.Main
	addr := m.AllocUntrusted(mem.PageSize, mem.PageSize)

	before := m.Counters.Get(perf.PageFaults)
	tr.WriteU8(addr, 1)
	if m.Counters.Get(perf.PageFaults) != before+1 {
		t.Error("first touch did not fault")
	}
	tr.WriteU8(addr+8, 1)
	if m.Counters.Get(perf.PageFaults) != before+1 {
		t.Error("second touch faulted again")
	}
}

func TestTLBMissThenHit(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Vanilla)
	tr := env.Main
	addr := m.AllocUntrusted(mem.PageSize, mem.PageSize)

	tr.ReadU8(addr)
	misses := m.Counters.Get(perf.DTLBMisses)
	if misses != 1 {
		t.Fatalf("first access: %d dTLB misses, want 1", misses)
	}
	tr.ReadU8(addr + 100)
	if m.Counters.Get(perf.DTLBMisses) != misses {
		t.Error("same-page access missed the TLB")
	}
	if m.Counters.Get(perf.WalkCycles) == 0 {
		t.Error("no walk cycles charged")
	}
}

func TestVanillaHasNoSGXCosts(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Vanilla)
	tr := env.Main
	addr := m.AllocUntrusted(16*mem.PageSize, mem.PageSize)
	tr.ECall(func() {
		tr.Memset(addr, 1, 16*mem.PageSize)
	})
	tr.Syscall(100)
	c := m.Counters
	for _, e := range []perf.Event{perf.ECalls, perf.OCalls, perf.AEXs, perf.EPCEvictions, perf.EPCAllocs, perf.TLBFlushes} {
		if c.Get(e) != 0 {
			t.Errorf("%v = %d in Vanilla mode, want 0", e, c.Get(e))
		}
	}
	if c.Get(perf.Syscalls) != 1 {
		t.Errorf("Syscalls = %d, want 1", c.Get(perf.Syscalls))
	}
}

func TestLaunchEnclaveMeasuresImage(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Native)
	enc, err := env.LaunchEnclave(8, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !enc.Launched() {
		t.Error("enclave not launched")
	}
	if enc.Measurement == [32]byte{} {
		t.Error("empty measurement")
	}
	if got := m.Counters.Get(perf.EPCAllocs); got != 8 {
		t.Errorf("EPCAllocs = %d, want 8 (image pages)", got)
	}
}

func TestLaunchStormWhenImageExceedsEPC(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(LibOS)
	// A 3x-EPC image must evict roughly imagePages - capacity pages.
	if _, err := env.LaunchEnclaveReserve(192, 8, 192); err != nil {
		t.Fatal(err)
	}
	evic := m.Counters.Get(perf.EPCEvictions)
	if evic < 100 {
		t.Errorf("launch storm evicted only %d pages", evic)
	}
}

func TestLaunchErrors(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	if _, err := m.NewEnv(Vanilla).LaunchEnclave(1, 2); err == nil {
		t.Error("LaunchEnclave in Vanilla mode succeeded")
	}
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(4, 2); err == nil {
		t.Error("image > size accepted")
	}
	if _, err := env.LaunchEnclaveReserve(2, 3, 4); err == nil {
		t.Error("reserve > image accepted")
	}
	if _, err := env.LaunchEnclave(1, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := env.LaunchEnclave(1, 8); err == nil {
		t.Error("second enclave in one env accepted")
	}
}

func TestEnclaveDataIntegrityUnderThrash(t *testing.T) {
	// Working set 2x the EPC: every page round-trips through
	// evict/load-back, and every byte must survive.
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(1, 256); err != nil {
		t.Fatal(err)
	}
	tr := env.Main
	base := env.MustAlloc(128*mem.PageSize, mem.PageSize)
	for pass := 0; pass < 3; pass++ {
		for p := uint64(0); p < 128; p++ {
			addr := base + p*mem.PageSize
			if pass == 0 {
				tr.WriteU64(addr, p*1000)
			} else if got := tr.ReadU64(addr); got != p*1000 {
				t.Fatalf("pass %d page %d: %d, want %d", pass, p, got, p*1000)
			}
		}
	}
	if m.Counters.Get(perf.EPCEvictions) == 0 {
		t.Fatal("thrash test did not evict — EPC too large for the test to mean anything")
	}
}

func TestEnclaveRandomAccessProperty(t *testing.T) {
	m := NewMachine(Config{EPCPages: 32})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(1, 128); err != nil {
		t.Fatal(err)
	}
	tr := env.Main
	base := env.MustAlloc(96*mem.PageSize, 8)
	model := map[uint64]uint64{}
	f := func(slot uint16, val uint64) bool {
		addr := base + uint64(slot)%((96*mem.PageSize-8)/8)*8
		tr.WriteU64(addr, val)
		model[addr] = val
		// Read back a previously written address (this one).
		return tr.ReadU64(addr) == model[addr]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Re-verify the full model at the end (after arbitrary thrash).
	for addr, val := range model {
		if got := tr.ReadU64(addr); got != val {
			t.Fatalf("addr %#x = %d, want %d", addr, got, val)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, perf.Snapshot) {
		m := NewMachine(Config{EPCPages: 64, Seed: 3})
		env := m.NewEnv(Native)
		if _, err := env.LaunchEnclave(4, 192); err != nil {
			t.Fatal(err)
		}
		tr := env.Main
		base := env.MustAlloc(150*mem.PageSize, mem.PageSize)
		tr.ECall(func() {
			for p := uint64(0); p < 150; p++ {
				tr.WriteU64(base+p*mem.PageSize+8, p)
			}
			for p := uint64(0); p < 150; p += 3 {
				tr.ReadU64(base + p*mem.PageSize + 8)
			}
		})
		return tr.Clock.Cycles(), m.Counters.Snapshot()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 {
		t.Errorf("cycles differ across identical runs: %d vs %d", c1, c2)
	}
	if s1 != s2 {
		t.Errorf("counters differ across identical runs")
	}
}

func TestDestroyEnclaveFreesEPC(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Native)
	enc, err := env.LaunchEnclave(32, 48)
	if err != nil {
		t.Fatal(err)
	}
	if m.EPC.Resident() == 0 {
		t.Fatal("nothing resident after launch")
	}
	m.DestroyEnclave(enc)
	if m.EPC.Resident() != 0 {
		t.Errorf("%d pages resident after destroy", m.EPC.Resident())
	}
	if m.enclaveFor(enc.Base) != nil {
		t.Error("destroyed enclave still resolves")
	}
}
