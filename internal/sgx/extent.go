package sgx

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"sgxgauge/internal/enclave"
	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
)

// This file implements the access-stream extent compiler: workloads
// describe whole runs of accesses as Extents — (address, stride,
// element size, count, kind) — and the machine charges each
// page-confined stretch of a run in bulk, generalizing the LLC's
// AccessRun to the full access path. One page resolution (memo probe,
// or TLB probe + page walk + EPCM check) covers every access that the
// run makes to that page, because between two accesses of a
// page-confined run nothing can change the translation: faults, AEX
// flushes, evictions and shootdowns all happen inside the resolution
// step at the head of a run, never between the uniform accesses behind
// it. The charges are computed arithmetically but remain
// access-for-access identical to issuing each element through
// accessPage — the differential and fuzz tests hold the compiler to
// the naive replay bit for bit.
//
// Fallback conditions (the replay path, one pageOpDispatch per
// element chunk, is used instead of bulk charging):
//
//   - Config.SlowPath: the straight-line reference path must see
//     every access individually;
//   - chaos enabled: the injector consumes one PRNG draw per access
//     and may fault anywhere inside a run, so bulk charging would
//     both desynchronize the chaos stream and misattribute the fault;
//     replaying per access keeps fault attribution exact (the access
//     that trips the injector is the one charged);
//   - Stride < Elem (self-overlapping runs): the line-touch sequence
//     is no longer monotone, so repeats are not provably streak hits.

// ExtentKind selects what an extent does with memory.
type ExtentKind uint8

const (
	// ExtentRead reads Count elements into the payload.
	ExtentRead ExtentKind = iota
	// ExtentWrite writes Count elements from the payload.
	ExtentWrite
	// ExtentFill writes the Fill byte across every element (no
	// payload; the rep-stos analogue at element granularity).
	ExtentFill
)

// String returns a short name for the kind.
func (k ExtentKind) String() string {
	switch k {
	case ExtentRead:
		return "read"
	case ExtentWrite:
		return "write"
	case ExtentFill:
		return "fill"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Extent describes Count simulated accesses of Elem bytes each, the
// i-th at Addr + i*Stride. Semantically an extent IS its per-element
// access sequence (elements that straddle a page boundary split into
// per-page chunks, exactly as a plain Read/Write of Elem bytes
// would); the machine merely charges page-confined stretches of that
// sequence in bulk when it can prove the outcome identical.
type Extent struct {
	// Addr is the address of element 0.
	Addr uint64
	// Stride is the distance in bytes between consecutive elements.
	// Stride > Elem leaves gaps (strided column walks); Stride < Elem
	// overlaps and falls back to per-access replay.
	Stride uint64
	// Count is the number of elements.
	Count uint64
	// Elem is the size of one element in bytes.
	Elem uint32
	// Kind selects read, write, or fill.
	Kind ExtentKind
	// Fill is the byte written by ExtentFill.
	Fill byte
	// Data is the packed payload (Count*Elem bytes): destination for
	// reads, source for writes. Exactly one of Data/U64 must be set
	// for Read/Write extents; Fill takes neither.
	Data []byte
	// U64 is the payload as little-endian 64-bit words, valid only
	// when Elem == 8 (one word per element). It saves workloads that
	// operate on word slices the byte-repacking round trip.
	U64 []uint64
}

// ExtentPlan is a compiled sequence of extents, executed in order.
type ExtentPlan []Extent

// validate panics when the extent is malformed. Validation happens
// before any dispatch, so fast, slow and replay paths reject the same
// extents identically, having charged nothing.
func (x *Extent) validate() {
	if x.Elem == 0 {
		panic("sgx: extent with zero element size")
	}
	if x.Kind > ExtentFill {
		panic(fmt.Sprintf("sgx: unknown extent kind %d", x.Kind))
	}
	if x.Count == 0 {
		return
	}
	hi, payload := bits.Mul64(x.Count, uint64(x.Elem))
	if hi != 0 {
		panic("sgx: extent payload overflows")
	}
	switch x.Kind {
	case ExtentFill:
		if x.Data != nil || x.U64 != nil {
			panic("sgx: fill extent carries a payload")
		}
	default:
		switch {
		case x.U64 != nil:
			if x.Data != nil {
				panic("sgx: extent carries both Data and U64 payloads")
			}
			if x.Elem != 8 {
				panic(fmt.Sprintf("sgx: U64 payload with %d-byte elements", x.Elem))
			}
			if uint64(len(x.U64)) < x.Count {
				panic(fmt.Sprintf("sgx: U64 payload holds %d words, extent needs %d", len(x.U64), x.Count))
			}
		case x.Data != nil:
			if uint64(len(x.Data)) < payload {
				panic(fmt.Sprintf("sgx: Data payload holds %d bytes, extent needs %d", len(x.Data), payload))
			}
		default:
			panic("sgx: read/write extent without payload")
		}
	}
	// The last element must not wrap the address space.
	hi, span := bits.Mul64(x.Count-1, x.Stride)
	if hi != 0 {
		panic("sgx: extent stride span overflows")
	}
	end, carry := bits.Add64(x.Addr, span, 0)
	end, carry2 := bits.Add64(end, uint64(x.Elem), carry)
	if carry2 != 0 || end < x.Addr {
		panic("sgx: extent overflows the address space")
	}
}

// runExtent executes one extent, choosing bulk charging or per-access
// replay (see the file comment for the fallback conditions).
func (m *Machine) runExtent(t *Thread, x *Extent) error {
	x.validate()
	if x.Count == 0 {
		return nil
	}
	if !m.fastWords || x.Stride < uint64(x.Elem) {
		return m.replayExtent(t, x)
	}
	e := uint64(x.Elem)
	if x.Stride == e && e <= mem.LineSize && mem.LineSize%e == 0 && x.Addr%e == 0 {
		return m.bulkDense(t, x)
	}
	return m.bulkStrided(t, x)
}

// replayExtent is the reference execution: one pageOpDispatch per
// element chunk, exactly as if the workload had issued each element
// through Read/Write/Memset. Under SlowPath this routes to
// accessPageSlow; under chaos it routes to accessPage so the
// injector's PRNG stream advances once per access and an injected
// fault lands on — and is attributed to — the precise element that
// tripped it.
func (m *Machine) replayExtent(t *Thread, x *Extent) error {
	elem := uint64(x.Elem)
	op := opRead
	if x.Kind == ExtentWrite {
		op = opWrite
	}
	var word [8]byte
	for i := uint64(0); i < x.Count; i++ {
		a := x.Addr + i*x.Stride
		var p []byte
		if x.Kind != ExtentFill {
			if x.U64 != nil {
				if x.Kind == ExtentWrite {
					binary.LittleEndian.PutUint64(word[:], x.U64[i])
				}
				p = word[:]
			} else {
				p = x.Data[i*elem : (i+1)*elem]
			}
		}
		rem := elem
		off := uint64(0)
		for rem > 0 {
			n := mem.PageSize - a&(mem.PageSize-1)
			if n > rem {
				n = rem
			}
			var err error
			if x.Kind == ExtentFill {
				err = m.pageOpDispatch(t, a, n, nil, x.Fill, opFill)
			} else {
				err = m.pageOpDispatch(t, a, n, p[off:off+n], 0, op)
			}
			if err != nil {
				return err
			}
			a += n
			off += n
			rem -= n
		}
		if x.Kind == ExtentRead && x.U64 != nil {
			x.U64[i] = binary.LittleEndian.Uint64(word[:])
		}
	}
	return nil
}

// extentResolve performs the first access of a page-confined run: the
// exact resolution sequence of accessPage (memo probe, TLB probe with
// stale-entry fallback, page walk with EPCM verification and fault
// handling), charging that one access's Compute. It returns the
// resolved frame and enclave plus the pending (not yet advanced)
// cycle charge; on a fault or abort the clock is fully drained, as
// accessPage leaves it.
func (m *Machine) extentResolve(t *Thread, addr uint64) (*mem.Frame, *enclave.Enclave, uint64, error) {
	c := &m.Costs
	sh := t.shard
	sh.Inc(perf.Accesses)
	pend := c.Compute

	vpn := mem.PageNumber(addr)
	me := t.memoLookup(vpn)
	var enc *enclave.Enclave
	if me != nil {
		enc = me.enc
	} else {
		enc = m.enclaveFor(addr)
	}
	if enc != nil && enc.Aborted() {
		t.Clock.Advance(pend)
		return nil, nil, 0, &AbortError{EnclaveID: enc.ID, Cause: enc.AbortCause()}
	}
	if me != nil {
		pend += c.TLBHit
		if me.ref != nil {
			*me.ref = true
		}
		return me.frame, enc, pend, nil
	}

	var frame *mem.Frame
	var ref *bool
	resolved := false
	if t.tlb.Lookup(vpn) {
		if f, r, ok := m.lookupResident(enc, addr); ok {
			pend += c.TLBHit
			frame, ref, resolved = f, r, true
		} else {
			t.tlb.Evict(vpn)
		}
	}
	if !resolved {
		sh.Inc(perf.DTLBMisses)
		walk := c.PageWalk
		if enc != nil {
			walk += c.EPCMCheck
		}
		sh.Add(perf.WalkCycles, walk)
		t.Clock.Advance(pend + walk)
		pend = 0
		var err error
		frame, err = m.ensureResident(t, enc, addr)
		if err != nil {
			return nil, nil, 0, err
		}
		if enc != nil {
			_, r, ent, ok := m.EPC.WalkResolve(enc.PageID(addr))
			if !ok || !ent.Valid || ent.Owner != enc.ID || ent.VPN != vpn {
				panic(fmt.Sprintf("sgx: EPCM verification failed for %#x", addr))
			}
			ref = r
		}
		if victim, evicted := t.tlb.Insert(vpn); evicted {
			t.memoInvalidate(victim)
		}
	}
	t.memoStore(vpn, enc, frame, ref)
	return frame, enc, pend, nil
}

// bulkDense charges a dense extent (Stride == Elem, element-aligned,
// elements never straddle a line): the run is one contiguous byte
// range, so each page-confined stretch is resolved once, its distinct
// lines charged with one AccessRun, the remaining touches counted as
// streak hits, and its payload moved with one copy.
func (m *Machine) bulkDense(t *Thread, x *Extent) error {
	c := &m.Costs
	sh := t.shard
	elem := uint64(x.Elem)
	addr := x.Addr
	total := x.Count * elem
	payOff := uint64(0)
	for total > 0 {
		n := mem.PageSize - addr&(mem.PageSize-1)
		if n > total {
			n = total
		}
		accs := n / elem
		frame, enc, pend, err := m.extentResolve(t, addr)
		if err != nil {
			return err
		}
		sh.Add(perf.Accesses, accs-1)
		pend += (accs - 1) * (c.Compute + c.TLBHit)

		first := mem.LineNumber(addr)
		lines := mem.LineNumber(addr+n-1) - first + 1
		rep := accs - lines // elem == LineSize means one touch per line
		if t.l1 == nil {
			hits, misses := m.LLC.AccessRun(first, lines)
			if rep > 0 {
				m.LLC.NoteStreakHits(rep)
				hits += rep
			}
			if hits != 0 {
				sh.Add(perf.LLCHits, hits)
				pend += hits * c.LLCHit
			}
			if misses != 0 {
				extra := c.DRAMAccess
				if enc != nil {
					extra += c.MEELine
				}
				sh.Add(perf.LLCMisses, misses)
				sh.Add(perf.StallCycles, misses*extra)
				pend += misses * extra
			}
		} else {
			for line := first; line < first+lines; line++ {
				if t.l1.Access(line) {
					sh.Inc(perf.L1Hits)
					pend += c.L1Hit
					continue
				}
				sh.Inc(perf.L1Misses)
				if m.LLC.Access(line) {
					sh.Inc(perf.LLCHits)
					pend += c.LLCHit
				} else {
					extra := c.DRAMAccess
					if enc != nil {
						extra += c.MEELine
					}
					sh.Inc(perf.LLCMisses)
					sh.Add(perf.StallCycles, extra)
					pend += extra
				}
			}
			if rep > 0 {
				// Repeated touches of a just-probed line always hit
				// the L1 in the reference path.
				t.l1.NoteStreakHits(rep)
				sh.Add(perf.L1Hits, rep)
				pend += rep * c.L1Hit
			}
		}

		off := addr & (mem.PageSize - 1)
		switch x.Kind {
		case ExtentRead:
			if x.U64 != nil {
				w := x.U64[payOff/8 : payOff/8+n/8]
				src := frame.Data[off : off+n]
				for k := range w {
					w[k] = binary.LittleEndian.Uint64(src)
					src = src[8:]
				}
			} else {
				copy(x.Data[payOff:payOff+n], frame.Data[off:off+n])
			}
			sh.Add(perf.BytesRead, n)
		case ExtentWrite:
			if x.U64 != nil {
				w := x.U64[payOff/8 : payOff/8+n/8]
				dst := frame.Data[off : off+n]
				for _, v := range w {
					binary.LittleEndian.PutUint64(dst, v)
					dst = dst[8:]
				}
			} else {
				copy(frame.Data[off:off+n], x.Data[payOff:payOff+n])
			}
			sh.Add(perf.BytesWritten, n)
		case ExtentFill:
			// Exponential self-copy: memmove-speed fill at any byte.
			s := frame.Data[off : off+n]
			s[0] = x.Fill
			for fi := 1; fi < len(s); fi *= 2 {
				copy(s[fi:], s[:fi])
			}
			sh.Add(perf.BytesWritten, n)
		}
		t.Clock.Advance(pend)
		addr += n
		total -= n
		payOff += n
	}
	return nil
}

// bulkStrided charges a non-overlapping strided extent (Stride >=
// Elem, arbitrary alignment). Element addresses are monotone, so the
// line-touch sequence is nondecreasing: a chunk's first line either
// repeats the previous touch (a guaranteed streak hit) or moves
// forward (a real probe). Page resolutions happen once per run, at
// every page transition, exactly where the replay's walk would.
func (m *Machine) bulkStrided(t *Thread, x *Extent) error {
	c := &m.Costs
	sh := t.shard
	elem := uint64(x.Elem)
	var (
		frame    *mem.Frame
		enc      *enclave.Enclave
		curVPN   = ^uint64(0)
		pend     uint64
		lastLine = ^uint64(0)
	)
	// Line-strided word sweeps (the classic one-word-per-line page
	// touch pattern) visit consecutive cache lines, so each
	// page-confined stretch collapses to one resolve, one bulk
	// AccessRun over its lines and batched counter adds — identical
	// state and charges to the scalar walk: elements stay on distinct
	// consecutive lines (no streaks), and AccessRun is defined as
	// Access-in-a-loop.
	if x.Stride == mem.LineSize && x.Elem == 8 && x.U64 != nil && x.Addr&7 == 0 && t.l1 == nil {
		for i := uint64(0); i < x.Count; {
			a := x.Addr + i*mem.LineSize
			if pend != 0 {
				t.Clock.Advance(pend)
				pend = 0
			}
			var err error
			var rp uint64
			frame, enc, rp, err = m.extentResolve(t, a)
			if err != nil {
				return err
			}
			pend += rp
			pOff := a & (mem.PageSize - 1)
			run := (mem.PageSize - pOff + mem.LineSize - 1) / mem.LineSize
			if run > x.Count-i {
				run = x.Count - i
			}
			sh.Add(perf.Accesses, run-1)
			pend += (run - 1) * (c.Compute + c.TLBHit)
			h, miss := m.LLC.AccessRun(mem.LineNumber(a), run)
			sh.Add(perf.LLCHits, h)
			pend += h * c.LLCHit
			if miss != 0 {
				extra := c.DRAMAccess
				if enc != nil {
					extra += c.MEELine
				}
				sh.Add(perf.LLCMisses, miss)
				sh.Add(perf.StallCycles, miss*extra)
				pend += miss * extra
			}
			if x.Kind == ExtentRead {
				for k := uint64(0); k < run; k++ {
					x.U64[i+k] = binary.LittleEndian.Uint64(frame.Data[pOff+k*mem.LineSize:])
				}
				sh.Add(perf.BytesRead, 8*run)
			} else {
				for k := uint64(0); k < run; k++ {
					binary.LittleEndian.PutUint64(frame.Data[pOff+k*mem.LineSize:], x.U64[i+k])
				}
				sh.Add(perf.BytesWritten, 8*run)
			}
			i += run
		}
		if pend != 0 {
			t.Clock.Advance(pend)
		}
		return nil
	}

	// Aligned 8-byte elements on a word-aligned stride never straddle
	// a line or a page, so each element is exactly one resolve check,
	// one line charge and one direct word move — the general loop
	// below performs the same steps through its page-split machinery
	// and staging buffer, with identical counters, cycles and bytes.
	if x.Elem == 8 && x.U64 != nil && x.Addr&7 == 0 && x.Stride&7 == 0 {
		for i := uint64(0); i < x.Count; i++ {
			a := x.Addr + i*x.Stride
			if vpn := mem.PageNumber(a); vpn != curVPN {
				if pend != 0 {
					t.Clock.Advance(pend)
					pend = 0
				}
				var err error
				var rp uint64
				frame, enc, rp, err = m.extentResolve(t, a)
				if err != nil {
					return err
				}
				pend += rp
				curVPN = vpn
			} else {
				sh.Inc(perf.Accesses)
				pend += c.Compute + c.TLBHit
			}
			line := mem.LineNumber(a)
			if line == lastLine {
				if t.l1 != nil {
					t.l1.NoteStreakHits(1)
					sh.Inc(perf.L1Hits)
					pend += c.L1Hit
				} else {
					m.LLC.NoteStreakHits(1)
					sh.Inc(perf.LLCHits)
					pend += c.LLCHit
				}
			} else {
				hit := false
				if t.l1 != nil {
					if t.l1.Access(line) {
						sh.Inc(perf.L1Hits)
						pend += c.L1Hit
						hit = true
					} else {
						sh.Inc(perf.L1Misses)
					}
				}
				if !hit {
					if m.LLC.Access(line) {
						sh.Inc(perf.LLCHits)
						pend += c.LLCHit
					} else {
						extra := c.DRAMAccess
						if enc != nil {
							extra += c.MEELine
						}
						sh.Inc(perf.LLCMisses)
						sh.Add(perf.StallCycles, extra)
						pend += extra
					}
				}
				lastLine = line
			}
			pOff := a & (mem.PageSize - 1)
			if x.Kind == ExtentRead {
				x.U64[i] = binary.LittleEndian.Uint64(frame.Data[pOff:])
				sh.Add(perf.BytesRead, 8)
			} else {
				binary.LittleEndian.PutUint64(frame.Data[pOff:], x.U64[i])
				sh.Add(perf.BytesWritten, 8)
			}
		}
		if pend != 0 {
			t.Clock.Advance(pend)
		}
		return nil
	}

	var word [8]byte
	for i := uint64(0); i < x.Count; i++ {
		a := x.Addr + i*x.Stride
		var p []byte
		if x.Kind != ExtentFill {
			if x.U64 != nil {
				if x.Kind == ExtentWrite {
					binary.LittleEndian.PutUint64(word[:], x.U64[i])
				}
				p = word[:]
			} else {
				p = x.Data[i*elem : (i+1)*elem]
			}
		}
		rem := elem
		off := uint64(0)
		for rem > 0 {
			n := mem.PageSize - a&(mem.PageSize-1)
			if n > rem {
				n = rem
			}
			if vpn := mem.PageNumber(a); vpn != curVPN {
				if pend != 0 {
					t.Clock.Advance(pend)
					pend = 0
				}
				var err error
				var rp uint64
				frame, enc, rp, err = m.extentResolve(t, a)
				if err != nil {
					return err
				}
				pend += rp
				curVPN = vpn
			} else {
				sh.Inc(perf.Accesses)
				pend += c.Compute + c.TLBHit
			}

			line := mem.LineNumber(a)
			last := mem.LineNumber(a + n - 1)
			if line == lastLine && line <= last {
				if t.l1 != nil {
					t.l1.NoteStreakHits(1)
					sh.Inc(perf.L1Hits)
					pend += c.L1Hit
				} else {
					m.LLC.NoteStreakHits(1)
					sh.Inc(perf.LLCHits)
					pend += c.LLCHit
				}
				line++
			}
			for ; line <= last; line++ {
				if t.l1 != nil {
					if t.l1.Access(line) {
						sh.Inc(perf.L1Hits)
						pend += c.L1Hit
						continue
					}
					sh.Inc(perf.L1Misses)
				}
				if m.LLC.Access(line) {
					sh.Inc(perf.LLCHits)
					pend += c.LLCHit
				} else {
					extra := c.DRAMAccess
					if enc != nil {
						extra += c.MEELine
					}
					sh.Inc(perf.LLCMisses)
					sh.Add(perf.StallCycles, extra)
					pend += extra
				}
			}
			lastLine = last

			pOff := a & (mem.PageSize - 1)
			switch x.Kind {
			case ExtentRead:
				copy(p[off:off+n], frame.Data[pOff:pOff+n])
				sh.Add(perf.BytesRead, n)
			case ExtentWrite:
				copy(frame.Data[pOff:], p[off:off+n])
				sh.Add(perf.BytesWritten, n)
			case ExtentFill:
				s := frame.Data[pOff : pOff+n]
				for k := range s {
					s[k] = x.Fill
				}
				sh.Add(perf.BytesWritten, n)
			}
			a += n
			off += n
			rem -= n
		}
		if x.Kind == ExtentRead && x.U64 != nil {
			x.U64[i] = binary.LittleEndian.Uint64(word[:])
		}
	}
	if pend != 0 {
		t.Clock.Advance(pend)
	}
	return nil
}

// TryRunExtent executes one extent on this thread, returning a fault
// instead of panicking. The extent counters are charged up front —
// they count issued extents, whether or not a fault cuts one short.
func (t *Thread) TryRunExtent(x Extent) error {
	t.shard.Inc(perf.ExtentRuns)
	t.shard.Add(perf.ExtentAccesses, x.Count)
	return t.env.M.runExtent(t, &x)
}

// RunExtent executes one extent, panicking with the Fault on error
// (the convention of Read/Write: workloads treat faults as fatal
// unless they opt into the Try variants).
func (t *Thread) RunExtent(x Extent) {
	if err := t.TryRunExtent(x); err != nil {
		panic(err.(Fault))
	}
}

// TryRunPlan executes the plan's extents in order, stopping at the
// first fault.
func (t *Thread) TryRunPlan(p ExtentPlan) error {
	for i := range p {
		if err := t.TryRunExtent(p[i]); err != nil {
			return err
		}
	}
	return nil
}

// RunPlan executes the plan's extents in order, panicking on fault.
func (t *Thread) RunPlan(p ExtentPlan) {
	for i := range p {
		t.RunExtent(p[i])
	}
}

// ReadU64Run reads len(dst) consecutive u64 words starting at addr.
func (t *Thread) ReadU64Run(addr uint64, dst []uint64) {
	t.RunExtent(Extent{Addr: addr, Stride: 8, Count: uint64(len(dst)), Elem: 8, Kind: ExtentRead, U64: dst})
}

// WriteU64Run writes the words of src consecutively starting at addr.
func (t *Thread) WriteU64Run(addr uint64, src []uint64) {
	t.RunExtent(Extent{Addr: addr, Stride: 8, Count: uint64(len(src)), Elem: 8, Kind: ExtentWrite, U64: src})
}

// ReadU64Strided reads len(dst) u64 words, the i-th at addr+i*stride.
func (t *Thread) ReadU64Strided(addr, stride uint64, dst []uint64) {
	t.RunExtent(Extent{Addr: addr, Stride: stride, Count: uint64(len(dst)), Elem: 8, Kind: ExtentRead, U64: dst})
}

// WriteU64Strided writes the words of src, the i-th at addr+i*stride.
func (t *Thread) WriteU64Strided(addr, stride uint64, src []uint64) {
	t.RunExtent(Extent{Addr: addr, Stride: stride, Count: uint64(len(src)), Elem: 8, Kind: ExtentWrite, U64: src})
}
