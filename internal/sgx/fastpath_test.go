package sgx

import (
	"errors"
	"math"
	"testing"

	"sgxgauge/internal/chaos"
	"sgxgauge/internal/mee"
	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
)

// The fast access path (counter shards, page memos, batched charging)
// must be invisible in simulated results. These tests drive identical
// scripts through the optimized path and the Config.SlowPath reference
// and require bit-identical counters, cycles and data after every
// step, across configurations chosen to stress each shortcut: a tiny
// TLB (memo entries displaced by TLB round-robin), an L1 (per-line
// charging branch), chaos (injected flushes/resizes invalidating
// memos mid-access), and the integrity tree (aborts).

// diffState is the per-machine script state; addresses are allocated
// identically on both machines because the allocation sequence is.
type diffState struct {
	env  *Env
	ubuf uint64 // 8 untrusted pages
	ebuf uint64 // enclave buffer, bigger than the EPC
	sum  uint64 // data checksum accumulated by read steps
}

const (
	diffUPages = 8
	diffEPages = 80
)

type diffStep struct {
	name string
	run  func(s *diffState)
}

func diffScript() []diffStep {
	return []diffStep{
		{"alloc-untrusted", func(s *diffState) {
			s.ubuf = s.env.AllocUntrusted(diffUPages*mem.PageSize, mem.PageSize)
			for i := uint64(0); i < diffUPages*mem.PageSize/8; i += 7 {
				s.env.Main.WriteU64(s.ubuf+i*8, i*0x9e3779b9+1)
			}
		}},
		{"launch", func(s *diffState) {
			if _, err := s.env.LaunchEnclave(8, 120); err != nil {
				panic(err)
			}
			s.ebuf = s.env.MustAlloc(diffEPages*mem.PageSize, mem.PageSize)
		}},
		{"fill-enclave-seq", func(s *diffState) {
			s.env.Main.ECall(func() {
				for p := uint64(0); p < diffEPages; p++ {
					for off := uint64(0); off < mem.PageSize; off += 512 {
						s.env.Main.WriteU64(s.ebuf+p*mem.PageSize+off, p<<32|off)
					}
				}
			})
		}},
		{"read-strided", func(s *diffState) {
			s.env.Main.ECall(func() {
				for off := uint64(0); off < mem.PageSize; off += 1024 {
					for p := uint64(0); p < diffEPages; p += 3 {
						s.sum += s.env.Main.ReadU64(s.ebuf + p*mem.PageSize + off)
					}
				}
			})
		}},
		{"ocall-syscall", func(s *diffState) {
			s.env.Main.ECall(func() {
				s.sum += s.env.Main.ReadU64(s.ebuf)
				s.env.Main.OCall(func() {
					s.env.Main.WriteU64(s.ubuf, s.sum)
				})
				s.env.Main.Syscall(4096)
			})
		}},
		{"memset", func(s *diffState) {
			// Unaligned start, page-spanning length.
			s.env.Main.Memset(s.ebuf+100, 0xA5, 3*mem.PageSize+700)
			s.env.Main.Memset(s.ubuf+9, 0x5A, 2*mem.PageSize)
		}},
		{"memcpy", func(s *diffState) {
			// Cross domain both ways, unaligned.
			s.env.Main.Memcpy(s.ebuf+5*mem.PageSize+13, s.ubuf+29, 2*mem.PageSize+77)
			s.env.Main.Memcpy(s.ubuf+3, s.ebuf+40*mem.PageSize+9, mem.PageSize+500)
		}},
		{"span-read-write", func(s *diffState) {
			var big [3*mem.PageSize + 40]byte
			s.env.Main.Read(s.ebuf+mem.PageSize-20, big[:])
			for i := range big {
				big[i] ^= 0x3C
			}
			s.env.Main.Write(s.ebuf+60*mem.PageSize-17, big[:])
		}},
		{"parallel", func(s *diffState) {
			s.env.RunParallel(4, func(t *Thread, i int) {
				base := s.ebuf + uint64(i)*16*mem.PageSize
				t.ECall(func() {
					for off := uint64(0); off < 8*mem.PageSize; off += 256 {
						t.WriteU64(base+off, uint64(i)<<48|off)
					}
				})
			})
		}},
		{"force-evict-reload", func(s *diffState) {
			addr := s.ebuf + 2*mem.PageSize
			s.sum += s.env.Main.ReadU64(addr)
			s.env.M.ForceEvict(s.env.Main, addr)
			s.sum += s.env.Main.ReadU64(addr) // load-back
		}},
		{"readback", func(s *diffState) {
			for i := uint64(0); i < diffUPages*mem.PageSize/8; i += 5 {
				s.sum += s.env.Main.ReadU64(s.ubuf + i*8)
			}
			for p := uint64(0); p < diffEPages; p += 2 {
				s.sum += s.env.Main.ReadU64(s.ebuf + p*mem.PageSize + 64)
			}
		}},
		{"extent-dense", func(s *diffState) {
			s.env.Main.ECall(func() {
				w := make([]uint64, 3*mem.PageSize/8+11)
				for i := range w {
					w[i] = uint64(i)*0x9e37 + 5
				}
				s.env.Main.WriteU64Run(s.ebuf+2*mem.PageSize+16, w)
				r := make([]uint64, len(w))
				s.env.Main.ReadU64Run(s.ebuf+2*mem.PageSize+16, r)
				for _, v := range r {
					s.sum += v
				}
			})
			// Byte-granular dense run, unaligned start and odd length.
			b := make([]byte, 2*mem.PageSize+333)
			for i := range b {
				b[i] = byte(i * 7)
			}
			s.env.Main.RunExtent(Extent{Addr: s.ubuf + 123, Stride: 1, Count: uint64(len(b)), Elem: 1, Kind: ExtentWrite, Data: b})
			rb := make([]byte, len(b))
			s.env.Main.RunExtent(Extent{Addr: s.ubuf + 123, Stride: 1, Count: uint64(len(rb)), Elem: 1, Kind: ExtentRead, Data: rb})
			for _, v := range rb {
				s.sum += uint64(v)
			}
		}},
		{"extent-strided", func(s *diffState) {
			s.env.Main.ECall(func() {
				r := make([]uint64, 700)
				s.env.Main.ReadU64Strided(s.ebuf+40, 88, r) // stride not a line multiple
				for _, v := range r {
					s.sum += v
				}
				w := make([]uint64, 300)
				for i := range w {
					w[i] = uint64(i) ^ 0xabcdef
				}
				s.env.Main.WriteU64Strided(s.ebuf+5, 1032, w) // page-crossing stride
				col := make([]uint64, diffEPages)
				s.env.Main.ReadU64Strided(s.ebuf+512, mem.PageSize, col) // one element per page
				for _, v := range col {
					s.sum += v
				}
			})
		}},
		{"extent-misaligned", func(s *diffState) {
			// Elem 8 at addr%8 != 0: elements straddle lines and pages.
			s.env.Main.ECall(func() {
				w := make([]uint64, 900)
				for i := range w {
					w[i] = uint64(i)*3 + 1
				}
				s.env.Main.RunExtent(Extent{Addr: s.ebuf + 10*mem.PageSize + 61, Stride: 8, Count: 900, Elem: 8, Kind: ExtentWrite, U64: w})
				r := make([]uint64, 900)
				s.env.Main.RunExtent(Extent{Addr: s.ebuf + 10*mem.PageSize + 61, Stride: 8, Count: 900, Elem: 8, Kind: ExtentRead, U64: r})
				for _, v := range r {
					s.sum += v
				}
			})
		}},
		{"extent-bigelem", func(s *diffState) {
			b := make([]byte, 256*40)
			for i := range b {
				b[i] = byte(i*13 + 1)
			}
			s.env.Main.ECall(func() {
				s.env.Main.RunExtent(Extent{Addr: s.ebuf + 30*mem.PageSize + 17, Stride: 640, Count: 40, Elem: 256, Kind: ExtentWrite, Data: b})
				rb := make([]byte, len(b))
				s.env.Main.RunExtent(Extent{Addr: s.ebuf + 30*mem.PageSize + 17, Stride: 640, Count: 40, Elem: 256, Kind: ExtentRead, Data: rb})
				for _, v := range rb {
					s.sum += uint64(v)
				}
				// Element bigger than a page: every element splits.
				big := make([]byte, 3*(mem.PageSize+200))
				for i := range big {
					big[i] = byte(i ^ 0x55)
				}
				s.env.Main.RunExtent(Extent{Addr: s.ebuf + 50*mem.PageSize + 1000, Stride: mem.PageSize + 512, Count: 3, Elem: mem.PageSize + 200, Kind: ExtentWrite, Data: big})
			})
		}},
		{"extent-fill", func(s *diffState) {
			s.env.Main.ECall(func() {
				s.env.Main.RunExtent(Extent{Addr: s.ebuf + 61*mem.PageSize, Stride: 32, Count: 400, Elem: 32, Kind: ExtentFill, Fill: 0x7E})
				s.env.Main.RunExtent(Extent{Addr: s.ebuf + 64*mem.PageSize + 3, Stride: 96, Count: 200, Elem: 48, Kind: ExtentFill, Fill: 0xC3})
			})
			s.sum += s.env.Main.ReadU64(s.ebuf + 61*mem.PageSize + 128)
		}},
		{"extent-overlap", func(s *diffState) {
			// Stride < Elem: self-overlapping, must take the replay
			// fallback on both machines.
			b := make([]byte, 16*50)
			for i := range b {
				b[i] = byte(i + 3)
			}
			s.env.Main.ECall(func() {
				s.env.Main.RunExtent(Extent{Addr: s.ebuf + 70*mem.PageSize + 9, Stride: 8, Count: 50, Elem: 16, Kind: ExtentWrite, Data: b})
				rb := make([]byte, len(b))
				s.env.Main.RunExtent(Extent{Addr: s.ebuf + 70*mem.PageSize + 9, Stride: 8, Count: 50, Elem: 16, Kind: ExtentRead, Data: rb})
				for _, v := range rb {
					s.sum += uint64(v)
				}
			})
		}},
		{"extent-plan", func(s *diffState) {
			w := make([]uint64, 512)
			for i := range w {
				w[i] = uint64(i) * 17
			}
			r := make([]uint64, 512)
			s.env.Main.ECall(func() {
				s.env.Main.RunPlan(ExtentPlan{
					{Addr: s.ebuf + 44*mem.PageSize, Stride: 8, Count: 512, Elem: 8, Kind: ExtentWrite, U64: w},
					{Addr: s.ebuf + 44*mem.PageSize, Stride: 16, Count: 256, Elem: 8, Kind: ExtentRead, U64: r},
					{Addr: s.ebuf + 46*mem.PageSize, Stride: 64, Count: 128, Elem: 64, Kind: ExtentFill, Fill: 1},
				})
			})
			for _, v := range r[:256] {
				s.sum += v
			}
		}},
		{"pagegrain-memops", func(s *diffState) {
			// Exact page-aligned and off-by-one partial first/last pages:
			// the page-granular Memset/Memcpy fast paths must charge MEE
			// and LLC identically to SlowPath on every boundary shape.
			s.env.Main.ECall(func() {
				s.env.Main.Memset(s.ebuf+20*mem.PageSize, 0x33, 2*mem.PageSize)
				s.env.Main.Memset(s.ebuf+23*mem.PageSize-1, 0x44, mem.PageSize+2)
				s.env.Main.Memcpy(s.ebuf+25*mem.PageSize, s.ebuf+20*mem.PageSize, mem.PageSize)
				s.env.Main.Memcpy(s.ebuf+27*mem.PageSize+1, s.ebuf+23*mem.PageSize-1, mem.PageSize)
			})
			s.env.Main.Memcpy(s.ubuf, s.ebuf+25*mem.PageSize, mem.PageSize)
			s.sum += s.env.Main.ReadU64(s.ubuf + 8)
		}},
		{"relaunch", func(s *diffState) {
			s.env.DestroyEnclave()
			if _, err := s.env.LaunchEnclave(4, 30); err != nil {
				panic(err)
			}
			a := s.env.MustAlloc(4*mem.PageSize, mem.PageSize)
			s.env.Main.ECall(func() {
				s.env.Main.Memset(a, 0x11, 4*mem.PageSize)
				s.sum += s.env.Main.ReadU64(a + 3*mem.PageSize)
			})
		}},
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func runLockstep(t *testing.T, cfg Config) {
	t.Helper()
	slowCfg := cfg
	slowCfg.SlowPath = true
	fast := NewMachine(cfg)
	slow := NewMachine(slowCfg)
	fs := &diffState{env: fast.NewEnv(Native)}
	ss := &diffState{env: slow.NewEnv(Native)}

	for _, step := range diffScript() {
		errF := Protect(func() { step.run(fs) })
		errS := Protect(func() { step.run(ss) })
		if errString(errF) != errString(errS) {
			t.Fatalf("%s: fast err %q, slow err %q", step.name, errString(errF), errString(errS))
		}
		cf, cs := fast.Counters.Snapshot(), slow.Counters.Snapshot()
		if cf != cs {
			for _, e := range perf.Events() {
				if cf.Get(e) != cs.Get(e) {
					t.Errorf("%s: %v fast=%d slow=%d", step.name, e, cf.Get(e), cs.Get(e))
				}
			}
			t.FailNow()
		}
		if fc, sc := fs.env.Main.Clock.Cycles(), ss.env.Main.Clock.Cycles(); fc != sc {
			t.Fatalf("%s: cycles fast=%d slow=%d (drift %d)", step.name, fc, sc, int64(fc)-int64(sc))
		}
		if fast.EPC.Resident() != slow.EPC.Resident() {
			t.Fatalf("%s: EPC resident fast=%d slow=%d", step.name,
				fast.EPC.Resident(), slow.EPC.Resident())
		}
	}
	if fs.sum != ss.sum {
		t.Fatalf("data checksum diverged: fast %#x, slow %#x", fs.sum, ss.sum)
	}
}

func TestFastSlowEquivalence(t *testing.T) {
	configs := map[string]Config{
		"base":    {EPCPages: 48, Seed: 7},
		"tinyTLB": {EPCPages: 48, Seed: 7, TLBEntries: 8, TLBWays: 2},
		"l1":      {EPCPages: 48, Seed: 7, L1Bytes: 16 * 1024},
		"tree":    {EPCPages: 48, Seed: 7, IntegrityTree: true},
		"chaos": {EPCPages: 48, Seed: 7, Chaos: &chaos.Config{
			Seed: 3, Rate: 0.01,
			AEXStorm: true, EPCBalloon: true, MemTamper: true, TransitionFault: true,
		}},
		"chaos-heavy": {EPCPages: 48, Seed: 9, IntegrityTree: true, Chaos: &chaos.Config{
			Seed: 11, Rate: 0.08,
			AEXStorm: true, EPCBalloon: true, MemTamper: true,
		}},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) { runLockstep(t, cfg) })
	}
}

// A TLB entry can outlive its page's residency when an eviction
// bypasses the machine's shootdown (as tests forcing eviction order
// do with SetEvictHook). The access path must then fall back to the
// walk-and-fault path instead of dereferencing the dead translation.
func TestStaleTLBEntryFallsBackToWalk(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Native)
	enc, err := env.LaunchEnclave(2, 40)
	if err != nil {
		t.Fatal(err)
	}
	buf := env.MustAlloc(16*mem.PageSize, mem.PageSize)
	tr := env.Main

	tr.WriteU64(buf, 0xfeed) // install TLB entry + memo for page 0
	// Push page 0 out of the (memoWays-deep) memo while keeping its
	// TLB entry warm.
	for i := uint64(1); i <= memoWays; i++ {
		tr.WriteU64(buf+i*mem.PageSize, i)
	}
	// Evict page 0 behind the TLB's back: the hook override suppresses
	// the machine's shootdown.
	m.EPC.SetEvictHook(func(mem.PageID) {})
	if evicted, err := m.EPC.EvictPage(&tr.Clock, &m.Costs, enc.PageID(buf)); err != nil || !evicted {
		t.Fatalf("EvictPage = %v, %v; want eviction", evicted, err)
	}

	misses := m.Counters.Get(perf.DTLBMisses)
	loads := m.Counters.Get(perf.EPCLoadBacks)
	if got := tr.ReadU64(buf); got != 0xfeed { // must not panic
		t.Fatalf("read after stale-TLB fallback = %#x, want 0xfeed", got)
	}
	if m.Counters.Get(perf.DTLBMisses) != misses+1 {
		t.Errorf("DTLBMisses = %d, want %d (stale entry must count as a miss)",
			m.Counters.Get(perf.DTLBMisses), misses+1)
	}
	if m.Counters.Get(perf.EPCLoadBacks) != loads+1 {
		t.Errorf("EPCLoadBacks = %d, want %d (page must be faulted back)",
			m.Counters.Get(perf.EPCLoadBacks), loads+1)
	}
}

// balloonFailureMachine builds a machine where every access fires an
// EPC-balloon shrink whose evictions fail: the integrity tree has
// capacity for a single page, so the second EWB errors out of Resize.
func balloonFailureMachine(t *testing.T) (*Machine, *Env, uint64) {
	t.Helper()
	m := NewMachine(Config{EPCPages: 64, Chaos: &chaos.Config{
		Seed:       5,
		EPCBalloon: true, BalloonRate: 1.0,
		BalloonMinFrac: 0.3, BalloonMaxFrac: 0.3,
	}})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(40, 56); err != nil {
		t.Fatal(err)
	}
	ebuf := env.MustAlloc(8*mem.PageSize, mem.PageSize)
	// From here on, any eviction beyond the first dies in the tree.
	m.EPC.SetIntegrityTree(mee.NewIntegrityTree(1, 0))
	return m, env, ebuf
}

// A balloon resize that fails during an access *outside* any enclave
// used to be dropped on the floor (err != nil && enc != nil guarded
// the whole error path). It must surface in the BalloonFailures
// counter while leaving the machine usable.
func TestBalloonFailureOutsideEnclaveIsCounted(t *testing.T) {
	m, env, _ := balloonFailureMachine(t)
	ubuf := env.AllocUntrusted(mem.PageSize, mem.PageSize)

	if err := env.Main.TryWrite(ubuf, []byte{1, 2, 3}); err != nil {
		t.Fatalf("untrusted write after failed balloon: %v", err)
	}
	if got := m.Counters.Get(perf.BalloonFailures); got == 0 {
		t.Fatal("BalloonFailures = 0, want > 0 after a failed untrusted-side resize")
	}
	// The machine survived: the same access still works and the
	// enclave is untouched.
	var b [3]byte
	if err := env.Main.TryRead(ubuf, b[:]); err != nil {
		t.Fatalf("machine unusable after counted balloon failure: %v", err)
	}
	if env.Enclave.Aborted() {
		t.Error("untrusted-side balloon failure aborted the enclave")
	}
}

// The same failure during an enclave access aborts that enclave (the
// OS destroyed pages the enclave depends on) — and is also counted.
func TestBalloonFailureInsideEnclaveAborts(t *testing.T) {
	m, env, ebuf := balloonFailureMachine(t)

	err := env.Main.TryWrite(ebuf, []byte{1})
	if err == nil {
		t.Fatal("enclave access with failing balloon resize succeeded")
	}
	var abort *AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("err = %v (%T), want *AbortError", err, err)
	}
	if !env.Enclave.Aborted() {
		t.Error("enclave not marked aborted")
	}
	if m.Counters.Get(perf.BalloonFailures) == 0 {
		t.Error("BalloonFailures = 0, want > 0")
	}
}

// transitionCost multiplies through float64; gigantic base costs at
// high concurrency used to overflow the uint64 conversion and wrap to
// garbage. It must saturate instead.
func TestTransitionCostSaturates(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Native)
	tr := env.Main

	env.SetConcurrency(1) // no contention: identity
	if got := tr.transitionCost(12345); got != 12345 {
		t.Errorf("uncontended cost = %d, want 12345", got)
	}

	env.SetConcurrency(1 << 20)
	m.Costs.ContentionFactor = 1e12
	if got := tr.transitionCost(math.MaxUint64 / 2); got != math.MaxUint64 {
		t.Errorf("overflowing cost = %d, want MaxUint64 saturation", got)
	}
	// Just below the boundary stays exact-ish (no clamp).
	m.Costs.ContentionFactor = 0.5
	env.SetConcurrency(3)
	if got := tr.transitionCost(1000); got != 2000 {
		t.Errorf("cost(1000, f=2.0) = %d, want 2000", got)
	}
	// A (nonsensical) negative factor must not wrap around either.
	m.Costs.ContentionFactor = -10
	env.SetConcurrency(1000)
	if got := tr.transitionCost(1000); got != 0 {
		t.Errorf("negative-factor cost = %d, want 0", got)
	}
}

// The memo must die with its TLB entry when round-robin displacement
// (not a flush or shootdown) evicts the translation: with a 2-entry
// direct-conflict TLB, alternating pages must keep producing the same
// counters as the slow path — covered by TestFastSlowEquivalence's
// tinyTLB config — and, checked directly here, a displaced page's
// re-access must be a TLB miss, not a phantom memo hit.
func TestMemoDisplacedWithTLBVictim(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64, TLBEntries: 1, TLBWays: 1})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(2, 40); err != nil {
		t.Fatal(err)
	}
	buf := env.MustAlloc(4*mem.PageSize, mem.PageSize)
	tr := env.Main

	tr.WriteU64(buf, 1) // page 0: miss, installs sole TLB entry
	misses := m.Counters.Get(perf.DTLBMisses)
	tr.WriteU64(buf+mem.PageSize, 2) // page 1 displaces page 0
	if got := m.Counters.Get(perf.DTLBMisses); got != misses+1 {
		t.Fatalf("DTLBMisses after displacement = %d, want %d", got, misses+1)
	}
	tr.WriteU64(buf, 3) // page 0 again: must be a genuine miss
	if got := m.Counters.Get(perf.DTLBMisses); got != misses+2 {
		t.Fatalf("DTLBMisses after re-access = %d, want %d (memo outlived TLB entry)",
			got, misses+2)
	}
}

func TestSlowPathConfigRoundTrip(t *testing.T) {
	m := NewMachine(Config{EPCPages: 48, SlowPath: true})
	if !m.Config().SlowPath {
		t.Fatal("SlowPath lost by withDefaults")
	}
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(2, 20); err != nil {
		t.Fatal(err)
	}
	a := env.MustAlloc(mem.PageSize, mem.PageSize)
	env.Main.WriteU64(a, 42)
	if got := env.Main.ReadU64(a); got != 42 {
		t.Fatalf("slow-path read = %d, want 42", got)
	}
}
