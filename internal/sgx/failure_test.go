package sgx

import (
	"errors"
	"strings"
	"testing"

	"sgxgauge/internal/epc"
	"sgxgauge/internal/mee"
	"sgxgauge/internal/mem"
)

// These tests inject untrusted-memory attacks and verify the machine
// refuses to continue — the security properties §2.2 ascribes to the
// MEE (confidentiality, integrity, freshness) as observed end-to-end
// through the access path. Victim pages are evicted deterministically
// with ForceEvict, and faults are observed as typed errors through
// Protect.

func launchVictim(t *testing.T) (*Machine, *Env, *Thread, uint64) {
	t.Helper()
	m := NewMachine(Config{EPCPages: 32})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(1, 128); err != nil {
		t.Fatal(err)
	}
	victim := env.MustAlloc(mem.PageSize, mem.PageSize)
	return m, env, env.Main, victim
}

func TestTamperedEvictedPageAbortsEnclave(t *testing.T) {
	m, env, tr, victim := launchVictim(t)
	tr.WriteU64(victim, 0x1234)
	if !m.ForceEvict(tr, victim) {
		t.Fatal("victim page was not resident")
	}

	id := mem.PageID{Enclave: env.Enclave.ID, VPN: mem.PageNumber(victim)}
	sp := m.Backing.Get(id)
	if sp == nil {
		t.Fatal("evicted page missing from backing store")
	}
	sp.Ciphertext[8] ^= 0xFF // the untrusted OS flips bits

	err := Protect(func() { tr.ReadU64(victim) })
	if err == nil {
		t.Fatal("access to tampered page succeeded")
	}
	if !errors.Is(err, mee.ErrMACMismatch) {
		t.Fatalf("err = %v, want wrapped mee.ErrMACMismatch", err)
	}
	if !IsAbort(err) {
		t.Fatalf("err = %v, want AbortError", err)
	}
	if !env.Enclave.Aborted() {
		t.Fatal("enclave not marked aborted after integrity failure")
	}
	// The abort is sticky: any further access fails the same way,
	// including accesses to pages that were never tampered.
	err = Protect(func() { tr.ReadU64(victim + 8) })
	if !IsAbort(err) {
		t.Fatalf("second access: err = %v, want AbortError", err)
	}
	// ECALLs into the aborted enclave fail too.
	err = Protect(func() { tr.ECall(func() {}) })
	if !IsAbort(err) {
		t.Fatalf("ECall into aborted enclave: err = %v, want AbortError", err)
	}
}

func TestReplayedEvictedPageAbortsEnclave(t *testing.T) {
	m, env, tr, victim := launchVictim(t)
	id := mem.PageID{Enclave: env.Enclave.ID, VPN: mem.PageNumber(victim)}

	// Version 1: write, evict, capture the sealed page.
	tr.WriteU64(victim, 1)
	if !m.ForceEvict(tr, victim) {
		t.Fatal("victim not resident on first eviction")
	}
	old := m.Backing.Get(id)
	if old == nil {
		t.Fatal("evicted page missing from backing store")
	}
	stale := *old

	// Version 2: fault it back, change it, evict again.
	tr.WriteU64(victim, 2)
	if !m.ForceEvict(tr, victim) {
		t.Fatal("victim not resident on second eviction")
	}

	// The untrusted OS replays the stale version-1 page.
	m.Backing.Put(&stale)

	err := Protect(func() { tr.ReadU64(victim) })
	if !errors.Is(err, mee.ErrRollback) {
		t.Fatalf("err = %v, want wrapped mee.ErrRollback (rollback undetected)", err)
	}
	if !env.Enclave.Aborted() {
		t.Fatal("enclave not marked aborted after replay")
	}
}

func TestDroppedSealedPageAbortsEnclave(t *testing.T) {
	m, env, tr, victim := launchVictim(t)
	id := mem.PageID{Enclave: env.Enclave.ID, VPN: mem.PageNumber(victim)}

	tr.WriteU64(victim, 7)
	if !m.ForceEvict(tr, victim) {
		t.Fatal("victim page was not resident")
	}
	// The untrusted OS "loses" the sealed page.
	m.Backing.Delete(id)

	err := Protect(func() { tr.ReadU64(victim) })
	if !errors.Is(err, epc.ErrPageLost) {
		t.Fatalf("err = %v, want wrapped epc.ErrPageLost", err)
	}
	if !env.Enclave.Aborted() {
		t.Fatal("enclave not marked aborted after dropped page")
	}
}

func TestAbortLeavesSiblingEnclaveRunning(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})

	envA := m.NewEnv(Native)
	if _, err := envA.LaunchEnclave(1, 64); err != nil {
		t.Fatal(err)
	}
	envB := m.NewEnv(Native)
	if _, err := envB.LaunchEnclave(1, 64); err != nil {
		t.Fatal(err)
	}

	trA, trB := envA.Main, envB.Main
	victimA := envA.MustAlloc(mem.PageSize, mem.PageSize)
	addrB := envB.MustAlloc(mem.PageSize, mem.PageSize)
	trB.WriteU64(addrB, 42)

	// Tamper enclave A's evicted page; A aborts.
	trA.WriteU64(victimA, 1)
	if !m.ForceEvict(trA, victimA) {
		t.Fatal("victim page was not resident")
	}
	sp := m.Backing.Get(mem.PageID{Enclave: envA.Enclave.ID, VPN: mem.PageNumber(victimA)})
	if sp == nil {
		t.Fatal("evicted page missing from backing store")
	}
	sp.MAC[0] ^= 1
	if err := Protect(func() { trA.ReadU64(victimA) }); !IsAbort(err) {
		t.Fatalf("enclave A: err = %v, want AbortError", err)
	}

	// Enclave B on the same machine is unaffected.
	if envB.Enclave.Aborted() {
		t.Fatal("sibling enclave B aborted")
	}
	err := Protect(func() {
		if got := trB.ReadU64(addrB); got != 42 {
			t.Errorf("enclave B read %d, want 42", got)
		}
		trB.ECall(func() { trB.WriteU64(addrB, 43) })
	})
	if err != nil {
		t.Fatalf("sibling enclave B faulted: %v", err)
	}
}

func TestEvictedDataConfidential(t *testing.T) {
	// Secret data written to enclave memory must never appear in
	// plaintext in the untrusted backing store.
	m, env, tr, victim := launchVictim(t)

	secret := []byte("TOP-SECRET-ENCLAVE-DATA-0123456789")
	tr.Write(victim, secret)
	if !m.ForceEvict(tr, victim) {
		t.Fatal("victim page was not resident")
	}

	id := mem.PageID{Enclave: env.Enclave.ID, VPN: mem.PageNumber(victim)}
	sp := m.Backing.Get(id)
	if sp == nil {
		t.Fatal("evicted page missing from backing store")
	}
	if strings.Contains(string(sp.Ciphertext[:]), string(secret)) {
		t.Fatal("secret visible in plaintext in untrusted memory")
	}
	// And it still reads back correctly.
	got := make([]byte, len(secret))
	tr.Read(victim, got)
	if string(got) != string(secret) {
		t.Fatal("secret corrupted after eviction round trip")
	}
}
