package sgx

import (
	"strings"
	"testing"

	"sgxgauge/internal/mem"
)

// These tests inject untrusted-memory attacks and verify the machine
// refuses to continue — the security properties §2.2 ascribes to the
// MEE (confidentiality, integrity, freshness) as observed end-to-end
// through the access path.

// thrashOut evicts the page containing addr by touching a large
// working set.
func thrashOut(t *testing.T, env *Env, spare uint64, pages int) {
	t.Helper()
	tr := env.Main
	for p := 0; p < pages; p++ {
		tr.WriteU8(spare+uint64(p)*mem.PageSize, 1)
	}
}

func TestTamperedEvictedPagePanicsOnAccess(t *testing.T) {
	m := NewMachine(Config{EPCPages: 32})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(1, 128); err != nil {
		t.Fatal(err)
	}
	tr := env.Main
	victim := env.MustAlloc(mem.PageSize, mem.PageSize)
	spare := env.MustAlloc(64*mem.PageSize, mem.PageSize)

	tr.WriteU64(victim, 0x1234)
	thrashOut(t, env, spare, 64)

	id := mem.PageID{Enclave: env.Enclave.ID, VPN: mem.PageNumber(victim)}
	sp := m.Backing.Get(id)
	if sp == nil {
		t.Skip("victim page stayed resident under this eviction order")
	}
	sp.Ciphertext[8] ^= 0xFF // the untrusted OS flips bits

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("access to tampered page did not panic")
		}
		if !strings.Contains(r.(string), "integrity") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	tr.ReadU64(victim)
}

func TestReplayedEvictedPagePanicsOnAccess(t *testing.T) {
	m := NewMachine(Config{EPCPages: 32})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(1, 128); err != nil {
		t.Fatal(err)
	}
	tr := env.Main
	victim := env.MustAlloc(mem.PageSize, mem.PageSize)
	spare := env.MustAlloc(64*mem.PageSize, mem.PageSize)
	id := mem.PageID{Enclave: env.Enclave.ID, VPN: mem.PageNumber(victim)}

	// Version 1: write, evict, capture the sealed page.
	tr.WriteU64(victim, 1)
	thrashOut(t, env, spare, 64)
	old := m.Backing.Get(id)
	if old == nil {
		t.Skip("victim page stayed resident")
	}
	stale := *old

	// Version 2: fault it back, change it, evict again.
	tr.WriteU64(victim, 2)
	thrashOut(t, env, spare, 64)
	if m.Backing.Get(id) == nil {
		t.Skip("victim page stayed resident on second pass")
	}

	// The untrusted OS replays the stale version-1 page.
	m.Backing.Put(&stale)

	defer func() {
		if recover() == nil {
			t.Fatal("access to replayed page did not panic (rollback undetected)")
		}
	}()
	tr.ReadU64(victim)
}

func TestEvictedDataConfidential(t *testing.T) {
	// Secret data written to enclave memory must never appear in
	// plaintext in the untrusted backing store.
	m := NewMachine(Config{EPCPages: 32})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(1, 128); err != nil {
		t.Fatal(err)
	}
	tr := env.Main
	victim := env.MustAlloc(mem.PageSize, mem.PageSize)
	spare := env.MustAlloc(64*mem.PageSize, mem.PageSize)

	secret := []byte("TOP-SECRET-ENCLAVE-DATA-0123456789")
	tr.Write(victim, secret)
	thrashOut(t, env, spare, 64)

	id := mem.PageID{Enclave: env.Enclave.ID, VPN: mem.PageNumber(victim)}
	sp := m.Backing.Get(id)
	if sp == nil {
		t.Skip("victim page stayed resident")
	}
	if strings.Contains(string(sp.Ciphertext[:]), string(secret)) {
		t.Fatal("secret visible in plaintext in untrusted memory")
	}
	// And it still reads back correctly.
	got := make([]byte, len(secret))
	tr.Read(victim, got)
	if string(got) != string(secret) {
		t.Fatal("secret corrupted after eviction round trip")
	}
}
