package sgx

import (
	"testing"

	"sgxgauge/internal/mem"
)

// TestEnclaveRangesDisjoint is the regression test for the VA-overlap
// bug: newEnclave used to place enclave i at
// enclaveRegion + (i-1)*stride*need with the *current* enclave's
// stride count, so an enclave spanning several 1 GiB slots overlapped
// its successor's range. Two large enclaves must get disjoint
// [Base, Limit()) ranges.
func TestEnclaveRangesDisjoint(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	// Each enclave spans ~2.5 stride slots (1 GiB = 262144 pages).
	big := int(2*enclaveStride/mem.PageSize) + 1000
	a := m.newEnclave(big)
	b := m.newEnclave(big)
	c := m.newEnclave(16) // small enclave after the large ones
	encs := []struct {
		name string
		base uint64
		lim  uint64
	}{
		{"a", a.Base, a.Limit()},
		{"b", b.Base, b.Limit()},
		{"c", c.Base, c.Limit()},
	}
	for i := range encs {
		for j := i + 1; j < len(encs); j++ {
			x, y := encs[i], encs[j]
			if x.base < y.lim && y.base < x.lim {
				t.Errorf("enclaves %s [%#x,%#x) and %s [%#x,%#x) overlap",
					x.name, x.base, x.lim, y.name, y.base, y.lim)
			}
		}
	}
	// The machine must still attribute addresses to the right owner.
	if got := m.enclaveFor(b.Base); got != b {
		t.Errorf("enclaveFor(b.Base) = %v, want enclave %d", got, b.ID)
	}
	if got := m.enclaveFor(b.Limit() - 1); got != b {
		t.Errorf("enclaveFor(b.Limit()-1) = %v, want enclave %d", got, b.ID)
	}
}

// TestCreateDestroyCreate is the regression test for the teardown
// shootdown bug: DestroyEnclave used to discard EPC pages without
// invalidating dTLB entries or cache lines, so relaunching an enclave
// over the reused VA range panicked with "TLB hit for non-resident
// enclave page" on the first heap touch.
func TestCreateDestroyCreate(t *testing.T) {
	m := NewMachine(Config{EPCPages: 64})
	env := m.NewEnv(Native)
	tr := env.Main

	launchAndTouch := func(pattern uint64) uint64 {
		enc, err := env.LaunchEnclave(4, 32)
		if err != nil {
			t.Fatalf("LaunchEnclave: %v", err)
		}
		heap, err := env.Alloc(16*mem.PageSize, mem.PageSize)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		tr.ECall(func() {
			for p := uint64(0); p < 16; p++ {
				tr.WriteU64(heap+p*mem.PageSize, pattern+p)
			}
		})
		if enc.Base == 0 {
			t.Fatal("enclave has zero base")
		}
		return heap
	}

	firstHeap := launchAndTouch(0x1111)
	firstBase := env.Enclave.Base
	env.DestroyEnclave()
	if env.Enclave != nil {
		t.Fatal("DestroyEnclave left the env's enclave set")
	}

	// The relaunch reuses the VA slot (topmost allocation rollback);
	// without the shootdown the stale TLB entries panic on first use.
	secondHeap := launchAndTouch(0x2222)
	if env.Enclave.Base != firstBase {
		t.Fatalf("relaunch base %#x, want reused slot %#x", env.Enclave.Base, firstBase)
	}
	if secondHeap != firstHeap {
		t.Fatalf("relaunch heap %#x, want reused %#x", secondHeap, firstHeap)
	}
	// Fresh incarnation: the old contents are gone, the new ones read
	// back.
	var got uint64
	tr.ECall(func() { got = tr.ReadU64(secondHeap) })
	if got != 0x2222 {
		t.Fatalf("heap after relaunch = %#x, want %#x", got, 0x2222)
	}
}

// TestDestroyEvictedEnclave covers teardown of an enclave with pages
// already sealed in the backing store: the versions and sealed pages
// must be dropped, and relaunching must demand-allocate fresh zero
// pages rather than load back the dead incarnation's contents.
func TestDestroyEvictedEnclave(t *testing.T) {
	m := NewMachine(Config{EPCPages: 48}) // small EPC forces eviction
	env := m.NewEnv(Native)
	tr := env.Main

	if _, err := env.LaunchEnclave(2, 128); err != nil {
		t.Fatalf("LaunchEnclave: %v", err)
	}
	heap, err := env.Alloc(100*mem.PageSize, mem.PageSize)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	tr.ECall(func() {
		for p := uint64(0); p < 100; p++ {
			tr.WriteU64(heap+p*mem.PageSize, 0xAA00+p)
		}
	})
	if m.EPC.Resident() == 0 {
		t.Fatal("nothing resident after touching the heap")
	}
	env.DestroyEnclave()
	if m.EPC.Resident() != 0 {
		t.Fatalf("%d pages still resident after teardown", m.EPC.Resident())
	}

	if _, err := env.LaunchEnclave(2, 128); err != nil {
		t.Fatalf("relaunch: %v", err)
	}
	heap2, err := env.Alloc(100*mem.PageSize, mem.PageSize)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	var got uint64
	tr.ECall(func() { got = tr.ReadU64(heap2) })
	if got != 0 {
		t.Fatalf("relaunched heap reads %#x, want zero page", got)
	}
}
