package sgx

import (
	"bytes"
	"encoding/binary"
	"testing"

	"sgxgauge/internal/chaos"
	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
)

// extentFuzzPages is the enclave buffer size used by the fuzz
// differential; the EPC is kept smaller so runs fault and evict.
const extentFuzzPages = 40

// fuzzMachine builds one machine + enclave buffer with deterministic
// page contents.
func fuzzMachine(cfg Config) (*Machine, *Env, uint64) {
	m := NewMachine(cfg)
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(4, extentFuzzPages+8); err != nil {
		panic(err)
	}
	buf := env.MustAlloc(extentFuzzPages*mem.PageSize, mem.PageSize)
	seed := make([]byte, extentFuzzPages*mem.PageSize)
	for i := range seed {
		seed[i] = byte(i*2654435761 + 97)
	}
	env.Main.Write(buf, seed)
	return m, env, buf
}

// FuzzExtentCompiler holds the bulk-charging extent executor to the
// naive replay semantics: an arbitrary (offset, stride, count, elem,
// kind) extent must leave counters, cycles, payloads and memory
// byte-identical between the fast machine and the SlowPath reference,
// which routes the same extent through one accessPageSlow call per
// element chunk.
func FuzzExtentCompiler(f *testing.F) {
	f.Add(uint32(16), uint32(8), uint16(2000), uint8(8), uint8(0))    // dense words
	f.Add(uint32(61), uint32(8), uint16(900), uint8(8), uint8(1))     // misaligned words
	f.Add(uint32(123), uint32(1), uint16(5000), uint8(1), uint8(1))   // dense bytes
	f.Add(uint32(17), uint32(640), uint16(40), uint8(255), uint8(0))  // multi-line elems
	f.Add(uint32(9), uint32(4), uint16(50), uint8(16), uint8(2))      // overlap -> replay
	f.Add(uint32(512), uint32(4096), uint16(39), uint8(8), uint8(0))  // page column
	f.Add(uint32(4090), uint32(96), uint16(300), uint8(48), uint8(2)) // straddling fill
	f.Fuzz(func(t *testing.T, addrOff, stride uint32, count uint16, elemRaw, kindRaw uint8) {
		elem := uint64(elemRaw)%128 + 1
		kind := ExtentKind(kindRaw % 3)
		str := uint64(stride) % (elem*3 + mem.PageSize/2)
		off := uint64(addrOff) % (8 * mem.PageSize)
		cnt := uint64(count) % 3000
		// Clamp the span inside the enclave buffer.
		bufBytes := uint64(extentFuzzPages * mem.PageSize)
		if off+elem > bufBytes {
			cnt = 0
		} else if str > 0 {
			if max := (bufBytes-off-elem)/str + 1; cnt > max {
				cnt = max
			}
		}

		type result struct {
			err      string
			pay      []byte
			readback []byte
			snap     perf.Snapshot
			cycles   uint64
		}
		run := func(cfg Config) result {
			m, env, buf := fuzzMachine(cfg)
			x := Extent{Addr: buf + off, Stride: str, Count: cnt, Elem: uint32(elem), Kind: kind}
			if kind == ExtentFill {
				x.Fill = byte(addrOff)
			} else {
				x.Data = make([]byte, cnt*elem)
				if kind == ExtentWrite {
					for i := range x.Data {
						x.Data[i] = byte(i*31 + 11)
					}
				}
			}
			err := env.Main.TryRunExtent(x)
			// Read the whole buffer back so written state is compared
			// too (a second extent, exercising the dense read path).
			rb := make([]byte, bufBytes)
			rerr := env.Main.TryRunExtent(Extent{Addr: buf, Stride: 1, Count: bufBytes, Elem: 1, Kind: ExtentRead, Data: rb})
			return result{
				err:      errString(err) + "|" + errString(rerr),
				pay:      x.Data,
				readback: rb,
				snap:     m.Counters.Snapshot(),
				cycles:   env.Main.Clock.Cycles(),
			}
		}

		cfg := Config{EPCPages: 24, Seed: 5}
		slowCfg := cfg
		slowCfg.SlowPath = true
		fast, slow := run(cfg), run(slowCfg)

		if fast.err != slow.err {
			t.Fatalf("errors diverged: fast %q, slow %q", fast.err, slow.err)
		}
		if !bytes.Equal(fast.pay, slow.pay) {
			t.Fatal("read payloads diverged")
		}
		if !bytes.Equal(fast.readback, slow.readback) {
			t.Fatal("memory state diverged")
		}
		if fast.snap != slow.snap {
			for _, e := range perf.Events() {
				if fast.snap.Get(e) != slow.snap.Get(e) {
					t.Errorf("%v: fast=%d slow=%d", e, fast.snap.Get(e), slow.snap.Get(e))
				}
			}
			t.FailNow()
		}
		if fast.cycles != slow.cycles {
			t.Fatalf("cycles diverged: fast=%d slow=%d", fast.cycles, slow.cycles)
		}
	})
}

// Satellite regression: a fault landing inside a bulk-charged run must
// attribute counters and abort state to the page offset that actually
// faulted. Under chaos the extent executor falls back to per-access
// replay precisely so the injector's fault lands on the element that
// tripped it; this test drives a tampering injector over whole-buffer
// extents and requires the fast machine to match the SlowPath
// reference on the error, the partially-filled payload (byte-exact
// fault position), counters and cycles — and requires that at least
// one seed actually faults mid-extent, so the attribution path is
// exercised, not vacuous.
func TestExtentChaosFaultAttribution(t *testing.T) {
	const pages = 60
	fill := make([]byte, pages*mem.PageSize)
	for i := range fill {
		fill[i] = byte(i*31 + 7)
	}
	run := func(cfg Config) (werr, rerr string, dst []byte, snap perf.Snapshot, cyc uint64) {
		m := NewMachine(cfg)
		env := m.NewEnv(Native)
		if _, err := env.LaunchEnclave(8, pages+8); err != nil {
			t.Fatal(err)
		}
		buf := env.MustAlloc(pages*mem.PageSize, mem.PageSize)
		we := env.Main.TryRunExtent(Extent{Addr: buf, Stride: 1, Count: uint64(len(fill)), Elem: 1, Kind: ExtentWrite, Data: fill})
		dst = make([]byte, len(fill))
		re := env.Main.TryRunExtent(Extent{Addr: buf, Stride: 1, Count: uint64(len(dst)), Elem: 1, Kind: ExtentRead, Data: dst})
		return errString(we), errString(re), dst, m.Counters.Snapshot(), env.Main.Clock.Cycles()
	}

	sawMidExtent := false
	for seed := uint64(1); seed <= 6; seed++ {
		cfg := Config{EPCPages: 32, Seed: 7, IntegrityTree: true, Chaos: &chaos.Config{
			Seed: seed, Rate: 0.004, MemTamper: true, AEXStorm: true,
		}}
		slowCfg := cfg
		slowCfg.SlowPath = true
		fw, fr, fd, fs, fc := run(cfg)
		sw, sr, sd, ss, sc := run(slowCfg)
		if fw != sw || fr != sr {
			t.Fatalf("seed %d: errors diverged: fast (%q,%q) slow (%q,%q)", seed, fw, fr, sw, sr)
		}
		if !bytes.Equal(fd, sd) {
			i := 0
			for i < len(fd) && fd[i] == sd[i] {
				i++
			}
			t.Fatalf("seed %d: fault position diverged at byte %d (page %d, offset %d)",
				seed, i, i/mem.PageSize, i%mem.PageSize)
		}
		if fs != ss {
			for _, e := range perf.Events() {
				if fs.Get(e) != ss.Get(e) {
					t.Errorf("seed %d: %v fast=%d slow=%d", seed, e, fs.Get(e), ss.Get(e))
				}
			}
			t.FailNow()
		}
		if fc != sc {
			t.Fatalf("seed %d: cycles diverged: fast=%d slow=%d", seed, fc, sc)
		}
		// Did the read fault strictly mid-extent? Then the payload is a
		// partial prefix: some pages filled, the rest untouched.
		if fw == "" && fr != "" {
			n := 0
			for n < len(fd) && fd[n] == fill[n] {
				n++
			}
			if n > 0 && n < len(fd) {
				sawMidExtent = true
				if n%mem.PageSize != 0 {
					// The replay fallback copies whole element chunks;
					// with 1-byte elements the cut must be page-exact
					// only when the fault was a page fault — a tamper
					// abort surfaces at a load-back, i.e. a page edge.
					t.Logf("seed %d: fault cut at byte %d inside page %d", seed, n, n/mem.PageSize)
				}
			}
		}
	}
	if !sawMidExtent {
		t.Fatal("no seed produced a mid-extent fault; attribution path untested")
	}
}

// Satellite regression: EPC.Resize rebuilds the slot arena, so any
// frame pointer cached by a thread memo dangles afterwards. The resize
// hook must invalidate every thread's memo. The write below would land
// in the dead arena if the memo survived, and the authoritative frame
// (fetched straight from the EPC) would still hold the old value.
func TestResizeInvalidatesThreadMemos(t *testing.T) {
	m := NewMachine(Config{EPCPages: 32})
	env := m.NewEnv(Native)
	enc, err := env.LaunchEnclave(4, 20)
	if err != nil {
		t.Fatal(err)
	}
	buf := env.MustAlloc(4*mem.PageSize, mem.PageSize)
	tr := env.Main
	tr.WriteU64(buf, 0x1111) // memoize page 0 (arena frame pointer)
	// Grow the EPC: the frame arena is reallocated wholesale.
	if err := m.EPC.Resize(&tr.Clock, &m.Costs, 64); err != nil {
		t.Fatal(err)
	}
	tr.WriteU64(buf, 0x2222)
	f, ok := m.EPC.Lookup(enc.PageID(buf))
	if !ok {
		t.Fatal("page not resident after resize")
	}
	if got := binary.LittleEndian.Uint64(f.Data[:8]); got != 0x2222 {
		t.Fatalf("authoritative frame holds %#x, want 0x2222 (stale memo wrote the dead arena)", got)
	}
}

// Satellite proof pin: a bulk-charged extent can never observe an EPC
// resize mid-run. Resize is reachable only from chaosStep, and a
// machine with chaos enabled clears fastWords, which routes every
// extent through per-access replay — where each access revalidates
// residency through the normal path. Simulated threads execute
// sequentially (RunParallel documents this), so no goroutine exists
// that could race a resize against an in-flight extent; the -race run
// of this package is the mechanical check of that claim.
func TestExtentResizeRoutingPinned(t *testing.T) {
	if m := NewMachine(Config{EPCPages: 48, Chaos: &chaos.Config{Seed: 1, Rate: 0.5, EPCBalloon: true}}); m.fastWords {
		t.Fatal("machine with chaos enabled must not take the bulk extent path")
	}
	if m := NewMachine(Config{EPCPages: 48, SlowPath: true}); m.fastWords {
		t.Fatal("SlowPath machine must not take the bulk extent path")
	}
	if m := NewMachine(Config{EPCPages: 48}); !m.fastWords {
		t.Fatal("plain machine should take the bulk extent path")
	}
}

// Extents replayed under a ballooning injector keep data integrity
// while the EPC is resized out from under them: every resize fires the
// memo-invalidation hook mid-extent. Run with -race this doubles as
// the mechanical half of the impossibility argument above.
func TestExtentsUnderBalloonChaos(t *testing.T) {
	m := NewMachine(Config{EPCPages: 48, Seed: 3, Chaos: &chaos.Config{
		Seed: 9, Rate: 0.03, EPCBalloon: true, AEXStorm: true,
	}})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(4, 70); err != nil {
		t.Fatal(err)
	}
	buf := env.MustAlloc(64*mem.PageSize, mem.PageSize)
	w := make([]uint64, 4096)
	r := make([]uint64, len(w))
	for iter := 0; iter < 30; iter++ {
		for i := range w {
			w[i] = uint64(iter)<<32 | uint64(i)
		}
		if err := env.Main.TryRunExtent(Extent{Addr: buf, Stride: 16, Count: uint64(len(w)), Elem: 8, Kind: ExtentWrite, U64: w}); err != nil {
			t.Fatalf("iter %d: write: %v", iter, err)
		}
		if err := env.Main.TryRunExtent(Extent{Addr: buf, Stride: 16, Count: uint64(len(r)), Elem: 8, Kind: ExtentRead, U64: r}); err != nil {
			t.Fatalf("iter %d: read: %v", iter, err)
		}
		for i := range r {
			if r[i] != w[i] {
				t.Fatalf("iter %d: word %d = %#x, want %#x", iter, i, r[i], w[i])
			}
		}
		if m.Counters.Get(perf.EPCResizes) == 0 && iter == 29 {
			t.Fatal("no EPC resize fired; chaos coverage vacuous")
		}
	}
}
