package sgx

import (
	"testing"

	"sgxgauge/internal/chaos"
	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
)

// Integration tests for the adversarial-OS fault injector wired into
// the machine: each fault class surfaces as counters plus (at worst) a
// typed Fault caught by Protect — never a process panic.

func TestChaosAEXStormCountsAndFlushes(t *testing.T) {
	m := NewMachine(Config{
		EPCPages: 64,
		Chaos:    &chaos.Config{Seed: 1, AEXStorm: true, AEXRate: 1},
	})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(1, 64); err != nil {
		t.Fatal(err)
	}
	tr := env.Main
	addr := env.MustAlloc(mem.PageSize, mem.PageSize)

	err := Protect(func() {
		tr.ECall(func() {
			for i := 0; i < 100; i++ {
				tr.WriteU64(addr+uint64(i)*8, uint64(i))
			}
		})
	})
	if err != nil {
		t.Fatalf("AEX storm faulted the run: %v", err)
	}
	injected := m.Counters.Get(perf.InjectedAEXs)
	if injected == 0 {
		t.Fatal("no AEXs injected at rate 1")
	}
	if total := m.Counters.Get(perf.AEXs); total < injected {
		t.Fatalf("AEXs (%d) < InjectedAEXs (%d)", total, injected)
	}
	// Every injected AEX flushes the TLB, so the dTLB can never
	// carry a hit across two in-enclave accesses.
	if m.Counters.Get(perf.TLBFlushes) < injected {
		t.Fatalf("TLBFlushes (%d) < injected AEXs (%d)",
			m.Counters.Get(perf.TLBFlushes), injected)
	}
}

func TestChaosBalloonResizesAndPreservesData(t *testing.T) {
	m := NewMachine(Config{
		EPCPages: 128,
		Chaos: &chaos.Config{
			Seed: 2, EPCBalloon: true, BalloonRate: 0.05,
			BalloonMinFrac: 0.3,
		},
	})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(1, 256); err != nil {
		t.Fatal(err)
	}
	tr := env.Main
	const pages = 96
	base := env.MustAlloc(pages*mem.PageSize, mem.PageSize)

	err := Protect(func() {
		for p := uint64(0); p < pages; p++ {
			tr.WriteU64(base+p*mem.PageSize, p^0xdead)
		}
		for p := uint64(0); p < pages; p++ {
			if got := tr.ReadU64(base + p*mem.PageSize); got != p^0xdead {
				t.Errorf("page %d read %#x, want %#x", p, got, p^0xdead)
			}
		}
	})
	if err != nil {
		t.Fatalf("balloon run faulted: %v", err)
	}
	if m.Counters.Get(perf.EPCResizes) == 0 {
		t.Fatal("no EPC resizes at balloon rate 0.05 over ~1500 accesses")
	}
	if m.EPC.Capacity() > 128 {
		t.Fatalf("ballooned capacity %d exceeds configured 128", m.EPC.Capacity())
	}
}

func TestChaosTamperAbortsVictimOnly(t *testing.T) {
	m := NewMachine(Config{
		EPCPages: 64,
		Chaos:    &chaos.Config{Seed: 3, MemTamper: true, TamperRate: 1},
	})
	victimEnv := m.NewEnv(Native)
	if _, err := victimEnv.LaunchEnclave(1, 256); err != nil {
		t.Fatal(err)
	}
	sibling := m.NewEnv(Native)
	if _, err := sibling.LaunchEnclave(1, 32); err != nil {
		t.Fatal(err)
	}
	sibAddr := sibling.MustAlloc(mem.PageSize, mem.PageSize)
	sibling.Main.WriteU64(sibAddr, 99)

	// Thrash a working set larger than the EPC; every eviction is
	// tampered, so a load-back must eventually hit damage.
	tr := victimEnv.Main
	const pages = 128
	base := victimEnv.MustAlloc(pages*mem.PageSize, mem.PageSize)
	err := Protect(func() {
		for round := 0; round < 4; round++ {
			for p := uint64(0); p < pages; p++ {
				tr.WriteU64(base+p*mem.PageSize, p)
			}
		}
	})
	if err == nil {
		t.Fatal("full-rate tampering never tripped an integrity failure")
	}
	if !IsAbort(err) {
		t.Fatalf("err = %v, want AbortError", err)
	}
	if !victimEnv.Enclave.Aborted() {
		t.Fatal("victim enclave not marked aborted")
	}
	if m.Counters.Get(perf.IntegrityAborts) == 0 {
		t.Fatal("IntegrityAborts counter not incremented")
	}

	// Sibling enclave on the same machine still works. Its evicted
	// pages are tampered too, so only its still-resident page is
	// guaranteed readable; that is enough to show the machine and the
	// sibling survived the victim's abort.
	if sibling.Enclave.Aborted() {
		t.Fatal("sibling enclave aborted")
	}
	if got := m.EPC.Resident(); got == 0 {
		t.Fatal("EPC empty after abort")
	}
}

func TestChaosTransitionFaultIsTransient(t *testing.T) {
	m := NewMachine(Config{
		EPCPages: 64,
		Chaos:    &chaos.Config{Seed: 4, TransitionFault: true, TransitionRate: 1},
	})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(1, 64); err != nil {
		t.Fatal(err)
	}
	ran := false
	err := Protect(func() { env.Main.ECall(func() { ran = true }) })
	if err == nil {
		t.Fatal("ECALL succeeded at transition-fault rate 1")
	}
	if !IsTransient(err) {
		t.Fatalf("err = %v, want TransientError", err)
	}
	if IsAbort(err) {
		t.Fatalf("transition fault misclassified as abort: %v", err)
	}
	if ran {
		t.Fatal("ECALL body ran despite the injected entry failure")
	}
	if env.Enclave.Aborted() {
		t.Fatal("transient fault aborted the enclave")
	}
	if m.Counters.Get(perf.TransitionFaults) == 0 {
		t.Fatal("TransitionFaults counter not incremented")
	}
	// The enclave is still usable once the fault clears — and a
	// retried attempt uses a reseeded injector, so the same fault
	// need not recur.
	cfg := chaos.Config{Seed: 4, TransitionFault: true, TransitionRate: 0.5}
	succeeded := false
	for attempt := 0; attempt < 20 && !succeeded; attempt++ {
		ac := cfg.WithAttempt(attempt)
		rm := NewMachine(Config{EPCPages: 64, Chaos: &ac})
		renv := rm.NewEnv(Native)
		if _, err := renv.LaunchEnclave(1, 64); err != nil {
			t.Fatal(err)
		}
		if Protect(func() { renv.Main.ECall(func() {}) }) == nil {
			succeeded = true
		}
	}
	if !succeeded {
		t.Fatal("no retry attempt succeeded at rate 0.5 in 20 reseeded tries")
	}
}

// chaosRun drives one deterministic mixed workload under full chaos
// and returns the final counter snapshot and main-thread cycles.
func chaosRun(t *testing.T, seed uint64) (perf.Snapshot, uint64) {
	t.Helper()
	cc := chaos.Config{Seed: seed, Rate: 0.02}.EnableAll()
	m := NewMachine(Config{EPCPages: 64, Chaos: &cc})
	env := m.NewEnv(Native)
	if _, err := env.LaunchEnclave(1, 256); err != nil {
		t.Fatal(err)
	}
	tr := env.Main
	const pages = 96
	base := env.MustAlloc(pages*mem.PageSize, mem.PageSize)
	for round := 0; round < 3; round++ {
		err := Protect(func() {
			tr.ECall(func() {
				for p := uint64(0); p < pages; p++ {
					tr.WriteU64(base+p*mem.PageSize, p)
				}
			})
		})
		// Faults (transient or abort) are part of the schedule; a
		// deterministic run reproduces them identically, so just
		// keep going.
		_ = err
	}
	return m.Counters.Snapshot(), tr.Clock.Cycles()
}

func TestChaosSameSeedByteIdentical(t *testing.T) {
	s1, c1 := chaosRun(t, 12345)
	s2, c2 := chaosRun(t, 12345)
	if s1 != s2 {
		t.Fatalf("same seed produced different counter snapshots:\n%v\n%v", s1, s2)
	}
	if c1 != c2 {
		t.Fatalf("same seed produced different cycle counts: %d vs %d", c1, c2)
	}
	s3, _ := chaosRun(t, 54321)
	if s1 == s3 {
		t.Fatal("different seeds produced identical snapshots (injector inert?)")
	}
}
