package sgx

import (
	"fmt"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
)

// accessPageSlow is the straight-line reference implementation of a
// single-page access, selected by Config.SlowPath. It performs every
// step the architecture description dictates, one at a time: scan for
// the owning enclave, probe the TLB, look the page up in the EPC
// residency map, charge each cache line individually, and count every
// event on the shared atomic bank.
//
// It exists so the optimized accessPage has something to be measured
// against: the differential tests drive identical workloads down both
// paths and require counter-for-counter and cycle-for-cycle identical
// results. Any change to simulated semantics must be made to both
// functions — if only one is touched, those tests fail.
func (m *Machine) accessPageSlow(t *Thread, addr, n uint64, p []byte, v byte, op pageOp) error {
	c := &m.Costs
	m.Counters.Inc(perf.Accesses)
	t.Clock.Advance(c.Compute)

	enc := m.enclaveFor(addr)
	if enc != nil && enc.Aborted() {
		// Abort-page semantics, as in the fast path.
		return &AbortError{EnclaveID: enc.ID, Cause: enc.AbortCause()}
	}
	if m.chaos != nil {
		if err := m.chaosStep(t, enc); err != nil {
			return err
		}
	}

	vpn := mem.PageNumber(addr)
	var frame *mem.Frame
	resolved := false
	if t.tlb.Lookup(vpn) {
		if f, _, ok := m.lookupResident(enc, addr); ok {
			t.Clock.Advance(c.TLBHit)
			frame, resolved = f, true
		} else {
			// Stale TLB entry that outlived an eviction: fall back to
			// the walk below, exactly like the fast path.
			t.tlb.Evict(vpn)
		}
	}
	if !resolved {
		m.Counters.Inc(perf.DTLBMisses)
		walk := c.PageWalk
		if enc != nil {
			// EPCM verification is part of installing a TLB entry
			// for an EPC page (paper Figure 1).
			walk += c.EPCMCheck
		}
		t.Clock.Advance(walk)
		m.Counters.Add(perf.WalkCycles, walk)
		var err error
		frame, err = m.ensureResident(t, enc, addr)
		if err != nil {
			return err
		}
		if enc != nil {
			ent := m.EPC.EPCMLookup(enc.PageID(addr))
			if !ent.Valid || ent.Owner != enc.ID || ent.VPN != vpn {
				panic(fmt.Sprintf("sgx: EPCM verification failed for %#x", addr))
			}
		}
		t.tlb.Insert(vpn)
	}

	// LLC traffic, line by line. Enclave lines pay the MEE
	// encryption/decryption latency on their way between LLC and
	// DRAM (paper §2.2).
	first := mem.LineNumber(addr)
	last := mem.LineNumber(addr + n - 1)
	for line := first; line <= last; line++ {
		if t.l1 != nil {
			if t.l1.Access(line) {
				m.Counters.Inc(perf.L1Hits)
				t.Clock.Advance(c.L1Hit)
				continue
			}
			m.Counters.Inc(perf.L1Misses)
		}
		if m.LLC.Access(line) {
			m.Counters.Inc(perf.LLCHits)
			t.Clock.Advance(c.LLCHit)
		} else {
			m.Counters.Inc(perf.LLCMisses)
			extra := c.DRAMAccess
			if enc != nil {
				extra += c.MEELine
			}
			t.Clock.Advance(extra)
			m.Counters.Add(perf.StallCycles, extra)
		}
	}

	off := addr & (mem.PageSize - 1)
	switch op {
	case opRead:
		copy(p, frame.Data[off:off+n])
		m.Counters.Add(perf.BytesRead, n)
	case opWrite:
		copy(frame.Data[off:], p)
		m.Counters.Add(perf.BytesWritten, n)
	case opFill:
		s := frame.Data[off : off+n]
		for i := range s {
			s[i] = v
		}
		m.Counters.Add(perf.BytesWritten, n)
	}
	return nil
}
