package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// detachedRe matches the goroleak acknowledgement pragma. Like
// sgxlint:ignore, it must open the comment with no space after "//".
var detachedRe = regexp.MustCompile(`^//sgxlint:detached(\s.*)?$`)

// GoroLeak enforces that every spawned goroutine has a tracked join.
// Motivated by the idle-worker leak: a worker goroutine that returned
// without deregistering left the coordinator routing tasks to a ghost
// until the liveness TTL fired, and nothing in the tree stated whether
// that goroutine was supposed to outlive its spawner. A `go` statement
// is accepted when it is joined through a sync.WaitGroup pair — an
// Add in the spawning function and a Done in the goroutine body (or in
// a named callee, via its call-graph summary) on the same WaitGroup —
// and otherwise must carry an explicit lifecycle statement:
//
//	//sgxlint:detached <reason>
//
// on the `go` statement's line or the line above. Detached goroutines
// still surface in the -suppressed audit with their written reason.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement must be joined via a sync.WaitGroup Add/Done " +
		"pair or annotated //sgxlint:detached <reason>",
	Run: runGoroLeak,
}

// detachedPragma is one parsed //sgxlint:detached comment.
type detachedPragma struct {
	pos    token.Pos
	line   int
	reason string
	used   bool
}

func runGoroLeak(pass *Pass) {
	for _, f := range pass.Files {
		pragmas := collectDetached(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			adds := waitGroupAdds(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, gs, adds, pragmas)
				return true
			})
			return false
		})
		for _, p := range pragmas {
			if !p.used {
				pass.Reportf(p.pos,
					"sgxlint:detached pragma marks no go statement; delete it")
			}
		}
	}
}

// collectDetached parses a file's //sgxlint:detached pragmas,
// reporting reason-less ones (which then cover nothing).
func collectDetached(pass *Pass, f *ast.File) []*detachedPragma {
	var pragmas []*detachedPragma
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := detachedRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			reason := strings.TrimSpace(m[1])
			if reason == "" {
				pass.Reportf(c.Pos(),
					"sgxlint:detached requires a written reason stating who owns the goroutine's lifecycle")
				continue
			}
			pragmas = append(pragmas, &detachedPragma{
				pos:    c.Pos(),
				line:   pass.Fset.Position(c.Pos()).Line,
				reason: reason,
			})
		}
	}
	return pragmas
}

// waitGroupAdds collects the WaitGroup objects fd calls Add on,
// anywhere in its body (nested literals included).
func waitGroupAdds(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	adds := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if !isWaitGroup(pass.Info.Types[sel.X].Type) {
			return true
		}
		if obj := waitGroupObject(pass, sel.X); obj != nil {
			adds[obj] = true
		}
		return true
	})
	return adds
}

// waitGroupObject resolves the identity of a WaitGroup expression: the
// variable object for `wg`, the field object for `s.leaders`. Distinct
// instances sharing a field are conflated — acceptable for a join
// check that enforces the pairing discipline, not a happens-before
// proof.
func waitGroupObject(pass *Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return pass.Info.Uses[e]
	case *ast.SelectorExpr:
		return pass.Info.Uses[e.Sel]
	}
	return nil
}

// checkGoStmt judges one go statement against the join rule.
func checkGoStmt(pass *Pass, gs *ast.GoStmt, adds map[types.Object]bool, pragmas []*detachedPragma) {
	if goStmtJoined(pass, gs, adds) {
		return
	}
	line := pass.Fset.Position(gs.Pos()).Line
	for _, p := range pragmas {
		if p.line == line || p.line == line-1 {
			p.used = true
			pass.ReportSuppressedf(gs.Pos(), p.reason,
				"go statement runs detached from any join (acknowledged)")
			return
		}
	}
	pass.Reportf(gs.Pos(),
		"go statement is not joined: pair it with a sync.WaitGroup Add/Done or annotate //sgxlint:detached <reason>")
}

// goStmtJoined reports whether the spawned goroutine signals a
// WaitGroup the spawning function Adds to. For `go func(){...}()` the
// literal body is scanned for a Done on an Added WaitGroup; for
// `go f(...)` the callee's call-graph summary must record a
// WaitGroup Done (the interprocedural case — the Add site and the
// Done live in different functions, possibly different packages).
func goStmtJoined(pass *Pass, gs *ast.GoStmt, adds map[types.Object]bool) bool {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		done := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" {
				return true
			}
			if !isWaitGroup(pass.Info.Types[sel.X].Type) {
				return true
			}
			if obj := waitGroupObject(pass, sel.X); obj != nil && adds[obj] {
				done = true
			}
			return true
		})
		return done
	}
	callee := staticCallee(pass.Info, gs.Call)
	if node := pass.Graph.NodeOf(callee); node != nil {
		return node.Summary.WaitGroupDone && len(adds) > 0
	}
	return false
}
