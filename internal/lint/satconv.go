package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// cycleCostPkgs are the packages whose arithmetic lands in the cycle
// accounting: an overflowing conversion there corrupts clocks,
// latencies, and every figure derived from them.
var cycleCostPkgs = []string{
	"internal/cycles",
	"internal/sgx",
	"internal/epc",
	"internal/mee",
	"internal/tlb",
	"internal/cache",
	"internal/enclave",
	"internal/perf",
	"internal/chaos",
}

// SatConv enforces saturating float-to-integer conversion in
// cycle-cost code. Motivated by the transitionCost overflow: scaling a
// base cost by the contention factor produced a float64 above 2^64,
// and the direct uint64(...) conversion of an out-of-range float is
// undefined — on amd64 it wraps to garbage, silently corrupting every
// downstream cycle count. All such conversions must go through the
// cycles.Sat* helpers, which clamp instead of wrapping.
var SatConv = &Analyzer{
	Name: "satconv",
	Doc: "float-to-integer conversions in cycle-cost packages must use " +
		"the saturating cycles.Sat* helpers",
	Appliesf: func(pkgPath string) bool { return underPkgs(pkgPath, cycleCostPkgs) },
	Run:      runSatConv,
}

func runSatConv(pass *Pass) {
	// The helpers themselves are the one approved home for the raw
	// conversion: package internal/cycles, function name Sat*.
	approvedHere := underPkgs(pass.PkgPath, []string{"internal/cycles"})
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if isFunc && fd.Body == nil {
				continue
			}
			if isFunc && approvedHere && strings.HasPrefix(fd.Name.Name, "Sat") {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkConversion(pass, call)
				return true
			})
		}
	}
}

// checkConversion reports call when it converts a non-constant
// floating-point expression directly to an integer type.
func checkConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	target, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || target.Info()&types.IsInteger == 0 {
		return
	}
	argTV, ok := pass.Info.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return
	}
	// Constant conversions are range-checked by the compiler itself.
	if argTV.Value != nil {
		return
	}
	src, ok := argTV.Type.Underlying().(*types.Basic)
	if !ok || src.Info()&types.IsFloat == 0 {
		return
	}
	pass.Reportf(call.Pos(),
		"%s(%s expr) in cycle-cost code wraps on out-of-range values (the transitionCost bug class); convert through cycles.SatU64/cycles.SatDuration instead",
		types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), src.Name())
}
