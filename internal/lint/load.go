package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a fully parsed and type-checked Go module.
type Module struct {
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Path is the module path declared in go.mod.
	Path string
	// Fset resolves positions across every package.
	Fset *token.FileSet
	// Packages holds every package of the module, sorted by import
	// path.
	Packages []*Package
}

// Package is one loaded package of the module.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's directory.
	Dir string
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the checker's resolution tables.
	Info *types.Info
	// TypeErrors collects type-check failures; analyzers still run on
	// what was resolvable, but the driver fails the lint.
	TypeErrors []error
}

// loader resolves and memoizes the module's packages, delegating
// out-of-module imports (the standard library) to the stdlib source
// importer — the module itself is dependency-free, so anything not
// under the module path must be std.
type loader struct {
	fset       *token.FileSet
	dir        string // module root
	path       string // module path
	pkgs       map[string]*Package
	inProgress map[string]bool
	std        types.ImporterFrom
}

// LoadModule locates the module containing dir (walking up to go.mod),
// then parses and type-checks every package under it. Directories
// named testdata, hidden directories, and _test.go files are skipped,
// mirroring the go tool.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:       token.NewFileSet(),
		dir:        root,
		path:       modPath,
		pkgs:       map[string]*Package{},
		inProgress: map[string]bool{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)

	var pkgPaths []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			rel, err := filepath.Rel(root, p)
			if err != nil {
				return err
			}
			if rel == "." {
				pkgPaths = append(pkgPaths, modPath)
			} else {
				pkgPaths = append(pkgPaths, modPath+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(pkgPaths)

	mod := &Module{Dir: root, Path: modPath, Fset: l.fset}
	for _, p := range pkgPaths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", p, err)
		}
		mod.Packages = append(mod.Packages, pkg)
	}
	return mod, nil
}

// FindModule walks up from dir to the enclosing go.mod and returns
// the module root and module path, without loading any packages.
func FindModule(dir string) (root, path string, err error) {
	return findModule(dir)
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isLintableGoFile(e.Name()) {
			return true
		}
	}
	return false
}

// isLintableGoFile reports whether name is a non-test Go source file.
func isLintableGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.dir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from the module tree, everything else from the standard library.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.path || strings.HasPrefix(path, l.path+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("package %s has type errors: %v", path, pkg.TypeErrors[0])
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, 0)
}

// load parses and type-checks the module package at importPath,
// memoizing the result.
func (l *loader) load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.inProgress[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.inProgress[importPath] = true
	defer delete(l.inProgress, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.path), "/")
	dir := filepath.Join(l.dir, filepath.FromSlash(rel))
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	pkg, err := check(l.fset, importPath, dir, files, l)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// parseDir parses every lintable source file of dir, in name order.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && isLintableGoFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// check type-checks one package's files with the given importer.
func check(fset *token.FileSet, importPath, dir string, files []*ast.File, imp types.ImporterFrom) (*Package, error) {
	pkg := &Package{Path: importPath, Dir: dir, Files: files}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	// The checker reports errors through conf.Error and keeps going;
	// its own returned error duplicates the first collected one.
	tpkg, _ := conf.Check(importPath, fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// CheckDirAs parses and type-checks the single package in dir under
// the given synthetic import path and runs the analyzers over it. It
// exists for the golden-file corpus: the corpus lives under testdata
// (invisible to the module walk) but must be checked as if it sat at
// a real module path so package-scoped analyzers apply.
func CheckDirAs(dir, importPath, modulePath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	std := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	pkg, err := check(fset, importPath, dir, files, std)
	if err != nil {
		return nil, err
	}
	if len(pkg.TypeErrors) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s: %v", dir, pkg.TypeErrors)
	}
	mod := &Module{Dir: dir, Path: modulePath, Fset: fset, Packages: []*Package{pkg}}
	diags := RunAnalyzers(mod, analyzers)
	return diags, nil
}
