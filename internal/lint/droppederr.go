package lint

import (
	"go/ast"
	"go/types"
)

// DroppedErr enforces that no error produced inside the module is
// silently discarded. Motivated by the EPC balloon-resize bug: an
// `EPC.Resize` error dropped on the untrusted-side ballooning path let
// a partial resize masquerade as a successful one, silently skewing
// every downstream counter. Errors from module-internal calls must be
// handled, returned, or explicitly suppressed with a written reason —
// never assigned to `_` or ignored as a bare statement.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc: "forbid discarding error results of module-internal calls " +
		"(expression statements, go/defer, or assignment to _)",
	Run: runDroppedErr,
}

func runDroppedErr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDiscardedCall(pass, n.X, "result of %s discarded; handle, return, or suppress with a reason")
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call, "error result of %s is lost in go statement; wrap the goroutine body to handle it")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call, "error result of %s is lost in defer; wrap in a closure that handles it")
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, n)
			}
			return true
		})
	}
}

// checkDiscardedCall reports call when it is a module-internal call
// with an error among its results.
func checkDiscardedCall(pass *Pass, expr ast.Expr, format string) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return
	}
	fn := moduleInternalCallee(pass, call)
	if fn == nil {
		return
	}
	if errorResultIndex(fn) < 0 {
		return
	}
	pass.Reportf(call.Pos(), format, "error-returning "+fn.Name()+" call")
}

// checkBlankErrAssign reports error-typed results of module-internal
// calls assigned to the blank identifier, in both the tuple form
// `v, _ := f()` and the single form `_ = f()`.
func checkBlankErrAssign(pass *Pass, assign *ast.AssignStmt) {
	// Tuple form: one multi-result call on the right.
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		fn := moduleInternalCallee(pass, call)
		if fn == nil {
			return
		}
		results := fn.Type().(*types.Signature).Results()
		for i, lhs := range assign.Lhs {
			if !isBlank(lhs) || i >= results.Len() {
				continue
			}
			if isErrorType(results.At(i).Type()) {
				pass.Reportf(lhs.Pos(),
					"error result of %s assigned to _; handle it or suppress with a reason", fn.Name())
			}
		}
		return
	}
	// Parallel form: `_ = f()` (possibly among several pairs).
	for i, lhs := range assign.Lhs {
		if !isBlank(lhs) || i >= len(assign.Rhs) {
			continue
		}
		call, ok := assign.Rhs[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := moduleInternalCallee(pass, call)
		if fn == nil {
			continue
		}
		if t := pass.Info.Types[call].Type; t != nil && isErrorType(t) {
			pass.Reportf(lhs.Pos(),
				"error result of %s assigned to _; handle it or suppress with a reason", fn.Name())
		}
	}
}

// moduleInternalCallee resolves the called function or method when it
// is declared inside this module; nil otherwise (external calls,
// indirect calls through non-module function values, conversions,
// builtins).
func moduleInternalCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if !pass.InModule(fn.Pkg().Path()) {
		return nil
	}
	return fn
}

// errorResultIndex returns the index of the first error-typed result
// of fn, or -1.
func errorResultIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return i
		}
	}
	return -1
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
