// Package corpus is the goroleak analyzer's golden corpus: every go
// statement must be WaitGroup-joined or explicitly detached.
package corpus

import "sync"

// pool mimics the serve layer's leader tracking.
type pool struct {
	wg sync.WaitGroup
}

// leakBug reproduces the motivating idle-worker leak: a goroutine with
// no join and no stated owner.
func leakBug(ch chan int) {
	go func() { // want "not joined"
		ch <- 1
	}()
}

// leakNamedBug spawns a named function that signals nothing.
func leakNamedBug() {
	go fireAndForget() // want "not joined"
}

func fireAndForget() {}

// halfPairBug calls Done in the goroutine but never Adds, so Wait
// can't be tracking it.
func halfPairBug(ch chan int) {
	var wg sync.WaitGroup
	go func() { // want "not joined"
		defer wg.Done()
		ch <- 1
	}()
}

// joinedOK is the canonical Add/Done pair on a field WaitGroup.
func (p *pool) joinedOK(ch chan int) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		ch <- 1
	}()
	p.wg.Wait()
}

// joinedLocalOK pairs a local WaitGroup across a worker fan-out.
func joinedLocalOK(n int, f func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

// run signals the pool's WaitGroup itself.
func (p *pool) run() {
	defer p.wg.Done()
}

// joinedCalleeOK is the interprocedural case: the Done lives in the
// named callee, visible only through its call-graph summary.
func (p *pool) joinedCalleeOK() {
	p.wg.Add(1)
	go p.run()
	p.wg.Wait()
}

// detachedOK states its goroutine's lifecycle explicitly; the finding
// survives, suppressed, for the audit trail.
func detachedOK(ch chan int) {
	//sgxlint:detached forwarder exits when ch closes; owned by the producer side
	go func() {
		for range ch {
		}
	}()
}

// stale pragma below marks nothing and must be reported.
//sgxlint:detached leftover excuse for a goroutine deleted long ago // want "marks no go statement"
func staleOK() {}
