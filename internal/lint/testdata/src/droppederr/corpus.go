// Package corpus is the droppederr analyzer's golden corpus, loaded
// under a synthetic module-internal import path so in-package calls
// count as module-internal.
package corpus

import (
	"errors"
	"os"
)

// EPC mimics the simulator's page cache; Resize mirrors the
// balloon-resize path whose silently dropped error motivated this
// analyzer.
type EPC struct{ capacity int }

// Resize changes the capacity, failing below the minimum.
func (e *EPC) Resize(n int) error {
	if n < 17 {
		return errors.New("too small")
	}
	e.capacity = n
	return nil
}

func pair() (int, error) { return 0, nil }

func errOnly() error { return nil }

// balloonBug reproduces the historical bug: the untrusted-side
// ballooning path called Resize as a bare statement, so a partial
// resize masqueraded as a successful one.
func balloonBug(e *EPC, n int) {
	e.Resize(n) // want "discarded"
}

func blankAssign(e *EPC, n int) {
	_ = e.Resize(n) // want "assigned to _"
}

func tupleBlank() int {
	v, _ := pair() // want "assigned to _"
	return v
}

func deferred(e *EPC) {
	defer e.Resize(100) // want "lost in defer"
}

func goStmt(e *EPC) {
	go e.Resize(100) // want "lost in go statement"
}

func plainCall() {
	errOnly() // want "discarded"
}

// handledOK threads the error as required.
func handledOK(e *EPC, n int) error {
	if err := e.Resize(n); err != nil {
		return err
	}
	return nil
}

// externalOK: errors of non-module calls are another linter's job.
func externalOK() {
	os.Remove("/nonexistent-sgxlint-corpus-path")
}

// suppressedOK shows an acknowledged exception with its reason.
func suppressedOK(e *EPC) {
	//sgxlint:ignore droppederr best-effort teardown; the owning enclave is already gone and the EPC state is discarded next
	e.Resize(100)
}
