// Package corpus is the golden corpus for lockdiscipline's
// interprocedural call-path check: a function annotated
// `caller holds <mu>` may only be reached from callers that actually
// hold the lock.
package corpus

import "sync"

// table mimics the coordinator's mu-guarded state with *Locked
// helpers.
type table struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// bumpLocked increments the counter.
//
// caller holds mu
func (t *table) bumpLocked() {
	t.n++
}

// bump is the locked entry point.
func (t *table) bump() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bumpLocked()
}

// sneakBug reproduces the escape this check exists to stop: a refactor
// reaches the *Locked helper without taking the lock.
func (t *table) sneakBug() {
	t.bumpLocked() // want "neither locks mu"
}

// chainLocked: a caller-holds function may call further caller-holds
// functions — the obligation propagates, it doesn't re-trigger.
//
// caller holds mu
func (t *table) chainLocked() {
	t.bumpLocked()
}

// chain discharges the whole chain's obligation at the top.
func (t *table) chain() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.chainLocked()
}

// closureOK: a call from a literal inside a locking function counts as
// held under the flow-insensitive model.
func (t *table) closureOK() func() {
	t.mu.Lock()
	defer t.mu.Unlock()
	f := func() { t.bumpLocked() }
	f()
	return f
}

// suppressedOK shows an acknowledged exception with its reason.
func newTable() *table {
	t := &table{}
	//sgxlint:ignore lockdiscipline construction path; t has not escaped, no concurrent caller can exist
	t.bumpLocked()
	return t
}
