// Package corpus is the streamerr analyzer's golden corpus: streaming
// loops must check each write's error and stop at the first failure.
package corpus

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
)

// encodeBug reproduces the motivating NDJSON bug: every result line
// keeps going to a dead client because the Encode error is discarded.
func encodeBug(enc *json.Encoder, results []int) {
	for _, r := range results {
		enc.Encode(r) // want "json.Encoder.Encode error discarded"
	}
}

// writeBug drops raw write errors the same way.
func writeBug(w io.Writer, chunks [][]byte) {
	for _, c := range chunks {
		w.Write(c) // want "error discarded"
	}
}

// blankBug launders the error through the blank identifier.
func blankBug(w io.Writer, chunks [][]byte) {
	for _, c := range chunks {
		_, _ = w.Write(c) // want "error assigned to _"
	}
}

// literalBug crosses a function-literal boundary inside the loop — the
// per-iteration goroutine shape.
func literalBug(w io.Writer, chunks [][]byte) {
	for _, c := range chunks {
		c := c
		go func() {
			w.Write(c) // want "error discarded"
		}()
	}
}

// checkedOK stops at the first failure.
func checkedOK(w io.Writer, chunks [][]byte) error {
	for _, c := range chunks {
		if _, err := w.Write(c); err != nil {
			return err
		}
	}
	return nil
}

// capturedOK keeps only the first error and stops encoding.
func capturedOK(enc *json.Encoder, results []int) error {
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// bufferOK: in-memory buffers cannot fail; unchecked loops are fine.
func bufferOK(chunks [][]byte) []byte {
	var buf bytes.Buffer
	for _, c := range chunks {
		buf.Write(c)
	}
	return buf.Bytes()
}

// builderOK: strings.Builder writes cannot fail either.
func builderOK(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}

// singleOK is not a loop; one unchecked write is droppederr's
// jurisdiction (module-internal calls), not a streaming failure mode.
func singleOK(w io.Writer, c []byte) {
	w.Write(c)
}

// suppressedOK shows an acknowledged exception with its reason.
func suppressedOK(w io.Writer, chunks [][]byte) {
	for _, c := range chunks {
		//sgxlint:ignore streamerr best-effort debug mirror; the primary stream checks errors
		w.Write(c)
	}
}
