// Package corpus is the atomicfield analyzer's golden corpus: a field
// touched by sync/atomic anywhere must be touched atomically
// everywhere.
package corpus

import "sync/atomic"

// counters mimics the perf counter bank's shard totals.
type counters struct {
	hits  uint64
	drops uint64
	size  uint64
}

// observe charges hits atomically on the hot path.
func observe(c *counters) {
	atomic.AddUint64(&c.hits, 1)
}

// snapshotBug reproduces the motivating race: the reporter reads the
// hot counter with a plain load.
func snapshotBug(c *counters) uint64 {
	return c.hits // want "accessed plainly here"
}

// resetBug writes the hot counter plainly.
func resetBug(c *counters) {
	c.hits = 0 // want "accessed plainly here"
}

// drop and drained keep drops consistently atomic: no findings.
func drop(c *counters) {
	atomic.AddUint64(&c.drops, 1)
}

func drained(c *counters) uint64 {
	return atomic.LoadUint64(&c.drops)
}

// grow keeps size consistently plain: also no findings — the rule is
// consistency, not atomics everywhere.
func grow(c *counters) {
	c.size++
}

// construction is exempt by shape: composite-literal keys are not
// selector accesses, and the value hasn't escaped yet.
func fresh() *counters {
	return &counters{hits: 0, drops: 0}
}

// suppressedOK shows an acknowledged exception with its reason.
func suppressedOK(c *counters) uint64 {
	//sgxlint:ignore atomicfield read runs after the worker pool's Wait; no concurrent writers remain
	return c.hits
}
