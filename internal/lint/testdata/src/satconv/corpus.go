// Package corpus is the satconv analyzer's golden corpus, loaded
// under a synthetic cycle-cost-package import path.
package corpus

// transitionCostBug reproduces the motivating overflow: scaling a
// base cycle cost by a contention factor and converting the float64
// product directly to uint64, which wraps past 2^64 instead of
// clamping.
func transitionCostBug(base uint64, factor float64) uint64 {
	return uint64(float64(base) * factor) // want "wraps on out-of-range"
}

func toInt(v float64) int {
	return int(v) // want "wraps on out-of-range"
}

func toSigned(v float32) int64 {
	return int64(v) // want "wraps on out-of-range"
}

// constOK: constant conversions are range-checked by the compiler.
func constOK() uint64 {
	return uint64(1e9)
}

// floatToFloatOK: widening float conversions cannot wrap.
func floatToFloatOK(v float32) float64 {
	return float64(v)
}

// intToIntOK: integer-to-integer conversions are out of satconv's
// scope (byte packing and index arithmetic are pervasive and
// reviewed case by case).
func intToIntOK(v uint64) uint32 {
	return uint32(v)
}

// intToFloatOK: the reverse direction loses precision, not range.
func intToFloatOK(v uint64) float64 {
	return float64(v)
}

// suppressedOK shows an acknowledged exception with its reason.
func suppressedOK(v float64) uint64 {
	//sgxlint:ignore satconv v is a ratio in [0,1] scaled by a bounded constant; the product cannot leave uint64 range
	return uint64(v * 255)
}
