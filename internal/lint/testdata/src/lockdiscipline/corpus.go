// Package corpus is the lockdiscipline analyzer's golden corpus.
package corpus

import "sync"

// Bank mimics perf.Counters: a shard registry read by every
// observation and mutated on registration — the unguarded-append race
// this analyzer exists to stop.
type Bank struct {
	mu     sync.Mutex
	shards []int // guarded by mu
	open   bool
}

// registerBug reproduces the motivating race: appending to the
// registry without holding the bank's mutex.
func (b *Bank) registerBug(s int) {
	b.shards = append(b.shards, s) // want "guarded by"
}

// registerOK brackets the access properly.
func (b *Bank) registerOK(s int) {
	b.mu.Lock()
	b.shards = append(b.shards, s)
	b.mu.Unlock()
}

// sumLocked folds the shards; caller holds mu.
func (b *Bank) sumLocked() int {
	n := 0
	for _, s := range b.shards {
		n += s
	}
	return n
}

// sum locks around the annotated helper.
func (b *Bank) sum() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sumLocked()
}

// unguardedOK: fields without an annotation are not checked.
func (b *Bank) unguardedOK() bool { return b.open }

// RWBank exercises the RLock form.
type RWBank struct {
	mu   sync.RWMutex
	data map[string]int // guarded by mu
}

func (b *RWBank) readOK(k string) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.data[k]
}

func (b *RWBank) writeBug(k string, v int) {
	b.data[k] = v // want "guarded by"
}

// nestedOK: the guard may be reached through a longer selector path;
// matching is by mutex name.
type wrapper struct{ b *Bank }

func (w *wrapper) drain() []int {
	w.b.mu.Lock()
	defer w.b.mu.Unlock()
	out := append([]int(nil), w.b.shards...)
	w.b.shards = nil
	return out
}

// suppressedOK shows an acknowledged exception with its reason.
func (b *Bank) suppressedOK() int {
	//sgxlint:ignore lockdiscipline constructor-time read before the bank is shared; no concurrent registration can exist yet
	return len(b.shards)
}
