// Package corpus verifies the satconv approved-helper exemption: this
// file is loaded under the import path of internal/cycles, where
// functions named Sat* are the sanctioned home of the raw conversion.
package corpus

import "math"

// SatU64 mirrors the real saturating helper; the raw conversion
// inside it must not be flagged.
func SatU64(v float64) uint64 {
	if !(v > 0) {
		return 0
	}
	if v >= float64(math.MaxUint64) {
		return math.MaxUint64
	}
	return uint64(v)
}

// SatInt likewise.
func SatInt(v float64) int {
	if !(v > 0) {
		return 0
	}
	if v >= float64(math.MaxInt) {
		return math.MaxInt
	}
	return int(v)
}
