// Package corpus is the determinism analyzer's golden corpus. It is
// loaded by the lint tests under a synthetic in-scope import path
// (see lint_test.go); the want comments are exact-line diagnostic
// expectations.
package corpus

import (
	"math/rand"
	"time"
)

// globalRand reproduces the historical workloads/ycsb bug class:
// package-level math/rand draws from the process-global source, so
// two identical runs produce different request streams.
func globalRand() int {
	return rand.Intn(10) // want "process-global source"
}

// seededOK is the sanctioned form: an explicitly seeded generator.
func seededOK(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func moreGlobals() float64 {
	rand.Shuffle(3, func(i, j int) {}) // want "process-global source"
	return rand.Float64()              // want "process-global source"
}

func wallClock() time.Time {
	return time.Now() // want "host wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "host wall clock"
}

// derivedTimeOK: arithmetic on an injected instant is deterministic.
func derivedTimeOK(t0 time.Time) time.Time {
	return t0.Add(3 * time.Second)
}

// mapOrderSum: iteration order leaks into nothing here, but the
// analyzer is deliberately strict — an aggregation loop is one edit
// away from an order-dependent one.
func mapOrderSum(m map[string]uint64) uint64 {
	var sum uint64
	for _, v := range m { // want "map iteration order"
		sum += v
	}
	return sum
}

// mapCopyOK is the one recognized provably order-independent form.
func mapCopyOK(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sliceRangeOK: slice iteration is ordered.
func sliceRangeOK(s []int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}

// suppressedSweep shows an acknowledged exception: the pragma must
// carry a reason, and the finding is recorded as suppressed.
func suppressedSweep(m map[int]int) {
	//sgxlint:ignore determinism delete-only sweep; final map state is order-independent
	for k := range m {
		delete(m, k)
	}
}
