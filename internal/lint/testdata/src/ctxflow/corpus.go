// Package corpus is the ctxflow analyzer's golden corpus: blocking
// operations in the service layer must be cancellable.
package corpus

import (
	"context"
	"net/http"
	"time"
)

// sleepBug reproduces the motivating worker-retry bug: a raw backoff
// sleep that outlives its cancelled context.
func sleepBug(ctx context.Context, backoff time.Duration) {
	time.Sleep(backoff) // want "time.Sleep blocks without a cancellation path"
}

// requestBug builds a poll request nothing can abort.
func requestBug(url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want "uncancellable request"
}

// afterBug blocks on a bare timer with no way out.
func afterBug(d time.Duration) {
	<-time.After(d) // want "bare receive from time.After"
}

// selectBug waits on a timer but forgot the ctx case.
func selectBug(ctx context.Context, ch chan int) {
	select {
	case <-ch:
	case <-time.After(time.Second): // want "no ctx.Done"
	}
}

// tickBug leaks its ticker forever.
func tickBug(f func()) {
	for range time.Tick(time.Minute) { // want "time.Tick leaks its ticker"
		f()
	}
}

// selectOK pairs the timeout with a Done case.
func selectOK(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Second):
		return -1
	case <-ctx.Done():
		return 0
	}
}

// sleepOK is the canonical cancellable sleep.
func sleepOK(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// requestOK threads the context through.
func requestOK(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, "GET", url, nil)
}

// deadlineOK: assigning the channel is fine; the select that drains it
// is judged on its own.
func deadlineOK(ctx context.Context, ch chan int) {
	timeout := time.After(time.Second)
	select {
	case <-ch:
	case <-timeout:
	case <-ctx.Done():
	}
}

// suppressedOK shows an acknowledged exception with its reason.
func suppressedOK() {
	//sgxlint:ignore ctxflow one-shot startup settle before any context exists to cancel
	time.Sleep(time.Millisecond)
}
