package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxflowPkgs are the service-layer packages where every blocking
// operation must be cancellable: the daemon/cluster code and the
// harness engine that runs underneath it. The simulator core is
// excluded — it is single-threaded per run and already barred from
// wall-clock use by the determinism analyzer.
var ctxflowPkgs = []string{
	"internal/serve",
	"internal/harness",
}

// CtxFlow enforces that service-layer blocking operations honor
// cancellation. Motivated by the worker retry path: a raw time.Sleep
// in the backoff loop kept a drained worker pinned for the full
// exponential schedule after its context was already cancelled, and a
// context-free http.NewRequest made the poll request impossible to
// abort at all. Long waits must select on ctx.Done() (a time.Timer in
// a select, or the serve.sleepCtx helper) and requests must be built
// with http.NewRequestWithContext.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "blocking operations in the service layer (time.Sleep, time.After, " +
		"time.Tick, http.NewRequest) must be cancellable via ctx.Done()",
	Appliesf: func(pkgPath string) bool { return underPkgs(pkgPath, ctxflowPkgs) },
	Run:      runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Files {
		// First pass: classify every time.After call that appears as a
		// select case, so the generic walk below doesn't double-report
		// them; a select is judged as a whole.
		inSelect := map[*ast.CallExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			checkSelect(pass, sel, inSelect)
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := stdlibCallee(pass, call)
			if fn == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
				pass.Reportf(call.Pos(),
					"time.Sleep blocks without a cancellation path; select on ctx.Done() alongside a time.Timer (serve.sleepCtx is the canonical helper)")
			case fn.Pkg().Path() == "time" && fn.Name() == "Tick":
				pass.Reportf(call.Pos(),
					"time.Tick leaks its ticker and cannot be cancelled; use time.NewTicker with a ctx.Done() select and a deferred Stop")
			case fn.Pkg().Path() == "net/http" && fn.Name() == "NewRequest":
				pass.Reportf(call.Pos(),
					"http.NewRequest builds an uncancellable request; use http.NewRequestWithContext so in-flight calls die with their context")
			case fn.Pkg().Path() == "time" && fn.Name() == "After" && !inSelect[call]:
				if bareReceiveOfAfter(f, call) {
					pass.Reportf(call.Pos(),
						"bare receive from time.After blocks without a cancellation path; select on ctx.Done() alongside the timer")
				}
			}
			return true
		})
	}
}

// checkSelect judges one select statement: a time.After (or Timer.C)
// wait inside it is fine exactly when a sibling case receives from a
// Done-style channel. Every time.After call seen as a case is recorded
// in inSelect so the generic walk skips it.
func checkSelect(pass *Pass, sel *ast.SelectStmt, inSelect map[*ast.CallExpr]bool) {
	var afters []*ast.CallExpr
	hasDone := false
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		recv := commReceive(comm.Comm)
		if recv == nil {
			continue
		}
		if call, ok := ast.Unparen(recv).(*ast.CallExpr); ok {
			if fn := stdlibCallee(pass, call); fn != nil && fn.Pkg().Path() == "time" && fn.Name() == "After" {
				inSelect[call] = true
				afters = append(afters, call)
				continue
			}
			if isDoneChannel(pass, call) {
				hasDone = true
			}
		}
	}
	if hasDone {
		return
	}
	for _, call := range afters {
		pass.Reportf(call.Pos(),
			"select waits on time.After with no ctx.Done() case; long waits in the service layer must be cancellable")
	}
}

// commReceive extracts the received channel expression from a select
// comm statement (`<-ch`, `v := <-ch`, `v, ok := <-ch`), or nil for
// send cases.
func commReceive(stmt ast.Stmt) ast.Expr {
	var expr ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	unary, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || unary.Op != token.ARROW {
		return nil
	}
	return unary.X
}

// isDoneChannel reports whether call is a zero-argument Done() method
// call returning <-chan struct{} — context.Context.Done and every
// structurally identical local variant.
func isDoneChannel(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" || len(call.Args) != 0 {
		return false
	}
	ch, ok := pass.Info.Types[call].Type.(*types.Chan)
	if !ok || ch.Dir() != types.RecvOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// bareReceiveOfAfter reports whether call appears under a unary
// receive (`<-time.After(d)`) somewhere in f — the blocking form. An
// assignment of the channel for later use is left alone; the eventual
// select is judged on its own.
func bareReceiveOfAfter(f *ast.File, call *ast.CallExpr) bool {
	blocking := false
	ast.Inspect(f, func(n ast.Node) bool {
		unary, ok := n.(*ast.UnaryExpr)
		if !ok || unary.Op != token.ARROW {
			return true
		}
		if ast.Unparen(unary.X) == call {
			blocking = true
		}
		return true
	})
	return blocking
}

// stdlibCallee resolves call's target when it is a package-level
// function declared outside this module; nil otherwise.
func stdlibCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fn := staticCallee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || pass.InModule(fn.Pkg().Path()) {
		return nil
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}
