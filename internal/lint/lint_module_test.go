package lint

import "testing"

// TestShippedTreeLintsClean runs the full analyzer suite — the
// interprocedural call-graph pass included — over the live module, so
// tier-1 `go test ./...` gates on the invariants without the separate
// CI lint job. The repository's own sources must produce zero
// unsuppressed findings, and every suppression must carry a reason.
func TestShippedTreeLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow; skipped in -short mode")
	}
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	for _, pkg := range mod.Packages {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("type error in %s: %v", pkg.Path, terr)
		}
	}
	for _, d := range RunAnalyzers(mod, All()) {
		if d.Suppressed {
			if d.Reason == "" {
				t.Errorf("suppression without reason: %s", d)
			}
			continue
		}
		t.Errorf("shipped tree has lint finding: %s", d)
	}
}

// TestModuleCallGraphSanity pins structural facts of the live module's
// call graph that every interprocedural analyzer depends on: the
// coordinator's *Locked helpers must be resolvable graph nodes with
// their caller-holds summaries intact, and they must have at least one
// statically resolved caller. If summary extraction or method
// resolution silently breaks, lockdiscipline's call-path check (and
// goroleak's callee summaries) would pass vacuously — this test fails
// instead.
func TestModuleCallGraphSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow; skipped in -short mode")
	}
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	g := BuildGraph(mod)

	var annotated, called int
	for fn, node := range g.nodes {
		if len(node.Summary.CallerHolds) == 0 {
			continue
		}
		annotated++
		if len(g.CallersOf(fn)) > 0 {
			called++
		}
	}
	// The serve coordinator alone ships several `caller holds mu`
	// helpers (routeLocked, expireLocked, finishLocked, ...); if the
	// summaries vanish, the interprocedural lock check has nothing to
	// verify.
	if annotated < 5 {
		t.Errorf("call graph found %d caller-holds functions, want >= 5", annotated)
	}
	if called == 0 {
		t.Errorf("no caller-holds function has a resolved caller; static call resolution is broken")
	}
}
