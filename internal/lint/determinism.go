package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// deterministicPkgs are the module-relative package prefixes whose
// code must be bit-for-bit reproducible from a seed: everything that
// feeds simulated state, counters, or rendered experiment output.
// internal/harness is included deliberately — its wall-clock use is
// confined to the injectable Clock boundary, which carries an explicit
// sgxlint:ignore instead of a blanket package exemption.
var deterministicPkgs = []string{
	"internal/sgx",
	"internal/attest",
	"internal/epc",
	"internal/mee",
	"internal/tlb",
	"internal/cache",
	"internal/cycles",
	"internal/enclave",
	"internal/perf",
	"internal/chaos",
	"internal/workloads",
	"internal/ycsb",
	"internal/harness",
}

// underPkgs reports whether the module-relative part of pkgPath is one
// of (or nested under one of) the given prefixes.
func underPkgs(pkgPath string, prefixes []string) bool {
	// Strip "<module>/"; the module root package itself has no slash.
	i := strings.Index(pkgPath, "/")
	if i < 0 {
		return false
	}
	rel := pkgPath[i+1:]
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// sanctionedRandFuncs are the math/rand package-level functions that
// construct explicitly seeded generators; everything else at package
// level draws from the process-global source.
var sanctionedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"NewPCG":    true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Determinism enforces that simulation state and experiment output are
// a pure function of the configured seed. Motivated by the class of
// bugs where a run's counters or report text silently varied between
// invocations: wall-clock reads, the process-seeded global math/rand
// source, and map iteration order all smuggle nondeterminism into
// results that the differential and chaos tests assume are
// bit-identical per seed.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand, and ordered use of " +
		"map iteration inside the simulator core",
	Appliesf: func(pkgPath string) bool { return underPkgs(pkgPath, deterministicPkgs) },
	Run:      runDeterminism,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkDeterministicUse(pass, n)
			case *ast.RangeStmt:
				if t := pass.Info.Types[n.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && !isPureMapCopy(pass, n) {
						pass.Reportf(n.Pos(),
							"map iteration order is nondeterministic and must not feed simulation state or output; iterate a sorted key slice (or suppress with a written order-independence argument)")
					}
				}
			}
			return true
		})
	}
}

// isPureMapCopy recognizes the one map-range form that is provably
// order-independent without a pragma: `for k, v := range m { dst[k] = v }`
// with dst a map. Every source key is distinct, each iteration writes
// exactly one distinct destination key, and nothing else happens, so
// the final dst is the same for every iteration order.
func isPureMapCopy(pass *Pass, rng *ast.RangeStmt) bool {
	key, ok1 := rng.Key.(*ast.Ident)
	val, ok2 := rng.Value.(*ast.Ident)
	if !ok1 || !ok2 || key.Name == "_" || val.Name == "_" || rng.Tok != token.DEFINE {
		return false
	}
	if rng.Body == nil || len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	idx, ok := assign.Lhs[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	dstT := pass.Info.Types[idx.X].Type
	if dstT == nil {
		return false
	}
	if _, isMap := dstT.Underlying().(*types.Map); !isMap {
		return false
	}
	idxID, ok := idx.Index.(*ast.Ident)
	if !ok || pass.Info.Uses[idxID] == nil || pass.Info.Uses[idxID] != pass.Info.Defs[key] {
		return false
	}
	rhsID, ok := assign.Rhs[0].(*ast.Ident)
	return ok && pass.Info.Uses[rhsID] != nil && pass.Info.Uses[rhsID] == pass.Info.Defs[val]
}

// checkDeterministicUse flags selector uses of wall-clock and
// global-source randomness functions.
func checkDeterministicUse(pass *Pass, sel *ast.SelectorExpr) {
	obj, ok := pass.Info.Uses[sel.Sel]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Package-level functions only: methods like (*rand.Rand).Intn or
	// (time.Time).Sub are the sanctioned, explicitly seeded/derived
	// forms.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
			pass.Reportf(sel.Pos(),
				"time.%s reads the host wall clock, which breaks run-to-run determinism; use the simulated cycle clock, or the injectable harness clock at reporting boundaries", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !sanctionedRandFuncs[fn.Name()] {
			pass.Reportf(sel.Pos(),
				"%s.%s draws from the process-global source; the only sanctioned randomness is an explicitly seeded rand.New(rand.NewSource(seed))", fn.Pkg().Name(), fn.Name())
		}
	}
}
