package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts `// want "regex"` expectation comments from corpus
// source lines. Multiple want comments on one line are all honored.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// expectation is one parsed want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// parseWants scans every Go file in dir for want comments.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus dir %s: %v", dir, err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("opening %s: %v", path, err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, &expectation{
					file: path,
					line: line,
					re:   regexp.MustCompile(m[1]),
				})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scanning %s: %v", path, err)
		}
		f.Close()
	}
	return wants
}

// TestGolden runs each analyzer over its corpus and asserts the exact
// diagnostic set: every want comment must be matched by a finding on
// its line, every unsuppressed finding must be covered by a want, and
// the corpus's //sgxlint:ignore pragmas must suppress (each suppressed
// finding carries the pragma's reason and produces no unsuppressed
// finding, which the want matching would otherwise catch).
func TestGolden(t *testing.T) {
	cases := []struct {
		analyzer   string
		dir        string
		importPath string // synthetic in-scope module path
		suppressed int    // exact count of suppressed findings
	}{
		{"atomicfield", "testdata/src/atomicfield", "sgxgauge/internal/perf/corpus", 1},
		{"ctxflow", "testdata/src/ctxflow", "sgxgauge/internal/serve/corpus", 1},
		{"determinism", "testdata/src/determinism", "sgxgauge/internal/sgx/corpus", 1},
		{"droppederr", "testdata/src/droppederr", "sgxgauge/internal/epc/corpus", 1},
		{"goroleak", "testdata/src/goroleak", "sgxgauge/internal/serve/corpus", 1},
		{"lockdiscipline", "testdata/src/lockdiscipline", "sgxgauge/internal/perf/corpus", 1},
		{"lockdiscipline", "testdata/src/lockinterproc", "sgxgauge/internal/serve/corpus", 1},
		{"satconv", "testdata/src/satconv", "sgxgauge/internal/sgx/corpus", 1},
		{"streamerr", "testdata/src/streamerr", "sgxgauge/internal/journal/corpus", 1},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			a, ok := ByName(tc.analyzer)
			if !ok {
				t.Fatalf("unknown analyzer %q", tc.analyzer)
			}
			diags, err := CheckDirAs(tc.dir, tc.importPath, "sgxgauge", []*Analyzer{a})
			if err != nil {
				t.Fatalf("CheckDirAs(%s): %v", tc.dir, err)
			}
			wants := parseWants(t, tc.dir)
			if len(wants) == 0 {
				t.Fatalf("corpus %s has no want comments", tc.dir)
			}
			var suppressed int
			for _, d := range diags {
				if d.Suppressed {
					suppressed++
					if d.Reason == "" {
						t.Errorf("suppressed finding without a reason: %s", d)
					}
					continue
				}
				if d.Analyzer == "sgxlint" {
					t.Errorf("driver-level problem in corpus: %s", d)
					continue
				}
				matched := false
				for _, w := range wants {
					if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.matched = true
						matched = true
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("missing finding at %s:%d matching %q", w.file, w.line, w.re)
				}
			}
			if suppressed != tc.suppressed {
				t.Errorf("suppressed findings = %d, want %d", suppressed, tc.suppressed)
			}
		})
	}
}

// TestApprovedHelperExempt checks satconv's one sanctioned home for
// the raw conversion: Sat* functions in internal/cycles itself.
func TestApprovedHelperExempt(t *testing.T) {
	diags, err := CheckDirAs("testdata/src/satconv_approved", "sgxgauge/internal/cycles", "sgxgauge", []*Analyzer{SatConv})
	if err != nil {
		t.Fatalf("CheckDirAs: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding in approved helper corpus: %s", d)
	}
}

// TestScopedAnalyzerSkipsForeignPackages loads the determinism corpus
// under an out-of-scope import path: the analyzer must not run, and
// its now-pointless pragma must be reported as unused.
func TestScopedAnalyzerSkipsForeignPackages(t *testing.T) {
	diags, err := CheckDirAs("testdata/src/determinism", "sgxgauge/cmd/outofscope", "sgxgauge", []*Analyzer{Determinism})
	if err != nil {
		t.Fatalf("CheckDirAs: %v", err)
	}
	var unused int
	for _, d := range diags {
		switch {
		case d.Analyzer == "determinism":
			t.Errorf("determinism ran out of scope: %s", d)
		case d.Analyzer == "sgxlint" && strings.Contains(d.Message, "suppresses nothing"):
			unused++
		default:
			t.Errorf("unexpected finding: %s", d)
		}
	}
	if unused != 1 {
		t.Errorf("unused-pragma findings = %d, want 1", unused)
	}
}

// TestPragmaValidation exercises the driver's pragma diagnostics:
// missing analyzer, unknown analyzer, missing reason, and a valid but
// unused pragma.
func TestPragmaValidation(t *testing.T) {
	dir := t.TempDir()
	src := `package corpus

//sgxlint:ignore
var a = 1

//sgxlint:ignore nosuch because reasons
var b = 2

//sgxlint:ignore droppederr
var c = 3

//sgxlint:ignore droppederr stale excuse for code that is long gone
var d = 4
`
	if err := os.WriteFile(filepath.Join(dir, "corpus.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := CheckDirAs(dir, "sgxgauge/internal/epc/corpus", "sgxgauge", All())
	if err != nil {
		t.Fatalf("CheckDirAs: %v", err)
	}
	wantSubstrings := []string{
		"missing analyzer name",
		"unknown analyzer \"nosuch\"",
		"requires a written reason",
		"suppresses nothing",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range diags {
			if d.Analyzer == "sgxlint" && strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no sgxlint diagnostic containing %q; got %v", want, diags)
		}
	}
	if len(diags) != len(wantSubstrings) {
		t.Errorf("diagnostics = %d, want %d: %v", len(diags), len(wantSubstrings), diags)
	}
}

// TestDetachedPragmaValidation exercises goroleak's own annotation
// grammar: a reason-less //sgxlint:detached is reported and covers
// nothing (the go statement stays flagged), and a valid pragma turns
// the finding into a suppressed one carrying the reason.
func TestDetachedPragmaValidation(t *testing.T) {
	dir := t.TempDir()
	src := `package corpus

func bad(ch chan int) {
	//sgxlint:detached
	go func() {
		<-ch
	}()
}

func good(ch chan int) {
	//sgxlint:detached drained by the producer closing ch
	go func() {
		<-ch
	}()
}
`
	if err := os.WriteFile(filepath.Join(dir, "corpus.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := CheckDirAs(dir, "sgxgauge/internal/serve/corpus", "sgxgauge", []*Analyzer{GoroLeak})
	if err != nil {
		t.Fatalf("CheckDirAs: %v", err)
	}
	var missingReason, unjoined, suppressed int
	for _, d := range diags {
		switch {
		case d.Suppressed:
			suppressed++
			if d.Reason != "drained by the producer closing ch" {
				t.Errorf("suppressed finding carries reason %q", d.Reason)
			}
		case strings.Contains(d.Message, "requires a written reason"):
			missingReason++
		case strings.Contains(d.Message, "not joined"):
			unjoined++
		default:
			t.Errorf("unexpected finding: %s", d)
		}
	}
	if missingReason != 1 || unjoined != 1 || suppressed != 1 {
		t.Errorf("missingReason=%d unjoined=%d suppressed=%d, want 1/1/1: %v",
			missingReason, unjoined, suppressed, diags)
	}
}

// TestGraphResolvesInterproceduralJoin pins the call-graph summary
// path: weaken BuildGraph's WaitGroup Done detection and the joined
// named-callee case regresses into a false positive.
func TestGraphResolvesInterproceduralJoin(t *testing.T) {
	dir := t.TempDir()
	src := `package corpus

import "sync"

type pool struct{ wg sync.WaitGroup }

func (p *pool) run() { defer p.wg.Done() }

func (p *pool) spawn() {
	p.wg.Add(1)
	go p.run()
	p.wg.Wait()
}
`
	if err := os.WriteFile(filepath.Join(dir, "corpus.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := CheckDirAs(dir, "sgxgauge/internal/serve/corpus", "sgxgauge", []*Analyzer{GoroLeak})
	if err != nil {
		t.Fatalf("CheckDirAs: %v", err)
	}
	for _, d := range diags {
		t.Errorf("WaitGroup-joined named callee reported: %s", d)
	}
}
