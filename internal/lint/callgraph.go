package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural layer under the analyzer suite: a
// module-wide static call graph with per-function summaries, built
// once per RunAnalyzers invocation and handed to every analyzer
// through Pass.Graph. Analyzers stay per-package — each reports only
// findings located in its own package — but judge those findings
// against module-wide facts: who calls whom, which functions lock
// which mutexes, which struct fields are touched atomically anywhere.
//
// Resolution is static and deliberately conservative. A call resolves
// to a FuncNode only when the type checker binds it to a concrete
// declared function or method of this module — plain calls, method
// calls through named types (including promoted methods), and method
// values the checker can pin down. Calls through interfaces, function
// variables, or external packages produce no module edge; an analyzer
// relying on edges therefore never reports on the strength of a guess.

// Graph is the module-wide call graph plus the interprocedural fact
// tables shared by all analyzers.
type Graph struct {
	// nodes maps every declared function or method of the module to
	// its node.
	nodes map[*types.Func]*FuncNode
	// callers indexes call sites by callee.
	callers map[*types.Func][]*CallSite
	// Fields carries the module-wide struct-field access facts.
	Fields *FieldFacts
}

// FuncNode is one declared function or method of the module.
type FuncNode struct {
	// Fn is the type-checker object for the declaration.
	Fn *types.Func
	// Decl is the source declaration.
	Decl *ast.FuncDecl
	// PkgPath is the declaring package's import path.
	PkgPath string
	// Calls are the statically resolved call sites inside the body
	// (function literals included — a closure's calls belong to the
	// function that lexically contains it, matching the suite's
	// flow-insensitive lock model).
	Calls []*CallSite
	// Summary holds the per-function facts analyzers consume.
	Summary Summary
}

// CallSite is one statically resolved call.
type CallSite struct {
	// Caller is the function whose body (or nested literal) contains
	// the call.
	Caller *FuncNode
	// Callee is the resolved target; it has a node in the graph only
	// when declared in this module.
	Callee *types.Func
	// Pos locates the call expression.
	Pos token.Pos
	// InLiteral marks a call site inside a function literal nested in
	// the caller (a goroutine body, an AfterFunc callback, a deferred
	// closure) rather than in the caller's own statement list.
	InLiteral bool
}

// Summary is the per-function fact sheet the analyzers consume.
type Summary struct {
	// Locks names every mutex the function locks anywhere in its body
	// (Lock or RLock, nested literals included) — the flow-insensitive
	// "held" set lockdiscipline already used intra-procedurally.
	Locks map[string]bool
	// CallerHolds names the mutexes the function's doc comment
	// declares held on entry (`// caller holds <mu>`).
	CallerHolds map[string]bool
	// WaitGroupDone reports that the function calls Done on a
	// sync.WaitGroup — goroleak accepts `go f()` as joined when f
	// signals a WaitGroup itself.
	WaitGroupDone bool
}

// FieldFacts records, module-wide, how each struct field is accessed:
// through the sync/atomic package-level functions (`atomic.AddUint64
// (&x.f, 1)`), or plainly. A field appearing in both sets is a data
// race waiting for an unlucky interleaving; atomicfield reports every
// plain site of such a field.
type FieldFacts struct {
	// Atomic maps a field object to the positions where its address is
	// passed to a sync/atomic function.
	Atomic map[types.Object][]token.Pos
	// Plain maps a field object to the positions of its ordinary
	// selector accesses.
	Plain map[types.Object][]token.Pos
}

// NodeOf returns the graph node for fn, or nil when fn is not a
// declared function of this module.
func (g *Graph) NodeOf(fn *types.Func) *FuncNode {
	if g == nil || fn == nil {
		return nil
	}
	return g.nodes[fn]
}

// CallersOf returns every statically resolved call site targeting fn.
func (g *Graph) CallersOf(fn *types.Func) []*CallSite {
	if g == nil {
		return nil
	}
	return g.callers[fn]
}

// BuildGraph constructs the call graph and fact tables for the
// module's loaded packages.
func BuildGraph(mod *Module) *Graph {
	g := &Graph{
		nodes:   map[*types.Func]*FuncNode{},
		callers: map[*types.Func][]*CallSite{},
		Fields: &FieldFacts{
			Atomic: map[types.Object][]token.Pos{},
			Plain:  map[types.Object][]token.Pos{},
		},
	}
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, PkgPath: pkg.Path}
				node.Summary = summarize(pkg.Info, fd)
				g.nodes[fn] = node
			}
		}
	}
	// Second pass: edges (needs every node to exist first only for
	// clarity; callee nodes are looked up lazily by analyzers).
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				node := g.nodes[fn]
				if node == nil {
					continue
				}
				collectCalls(g, pkg.Info, node)
			}
		}
		collectFieldFacts(g.Fields, pkg.Info, pkg.Files)
	}
	return g
}

// summarize computes one function's fact sheet.
func summarize(info *types.Info, fd *ast.FuncDecl) Summary {
	s := Summary{Locks: map[string]bool{}, CallerHolds: map[string]bool{}}
	if fd.Doc != nil {
		for _, m := range callerHoldsRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
			s.CallerHolds[m[1]] = true
		}
	}
	if fd.Body == nil {
		return s
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			switch recv := ast.Unparen(sel.X).(type) {
			case *ast.Ident:
				s.Locks[recv.Name] = true
			case *ast.SelectorExpr:
				s.Locks[recv.Sel.Name] = true
			}
		case "Done":
			if isWaitGroup(info.Types[sel.X].Type) {
				s.WaitGroupDone = true
			}
		}
		return true
	})
	return s
}

// collectCalls records node's statically resolved call sites,
// attributing calls inside nested function literals to node itself.
func collectCalls(g *Graph, info *types.Info, node *FuncNode) {
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			depth++
			ast.Inspect(n.Body, walk)
			depth--
			return false
		case *ast.CallExpr:
			callee := staticCallee(info, n)
			if callee == nil {
				return true
			}
			cs := &CallSite{Caller: node, Callee: callee, Pos: n.Pos(), InLiteral: depth > 0}
			node.Calls = append(node.Calls, cs)
			g.callers[callee] = append(g.callers[callee], cs)
		}
		return true
	}
	ast.Inspect(node.Decl.Body, walk)
}

// staticCallee resolves the declared function or method a call
// expression statically targets, or nil for indirect calls,
// conversions, and builtins. Method calls resolve through the
// receiver's named type; interface method calls resolve to the
// interface's method object, which has no module node.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// collectFieldFacts classifies every struct-field selector access in
// the files as atomic (its address is an argument to a sync/atomic
// package-level function) or plain. Composite-literal field keys are
// not selector expressions and so never count — the `&T{f: v}`
// construction idiom predates publication and is safe.
func collectFieldFacts(facts *FieldFacts, info *types.Info, files []*ast.File) {
	atomicArgs := map[*ast.SelectorExpr]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				if sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr); ok {
					atomicArgs[sel] = true
				}
			}
			return true
		})
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			obj := selection.Obj()
			if atomicArgs[sel] {
				facts.Atomic[obj] = append(facts.Atomic[obj], sel.Sel.Pos())
			} else {
				facts.Plain[obj] = append(facts.Plain[obj], sel.Sel.Pos())
			}
			return true
		})
	}
}

// isAtomicCall reports whether call targets a package-level function
// of sync/atomic.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
		fn.Type().(*types.Signature).Recv() == nil
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
