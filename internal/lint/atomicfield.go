package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// AtomicField enforces all-or-nothing atomicity per struct field: a
// field whose address is passed to a sync/atomic function anywhere in
// the module must be accessed through sync/atomic everywhere in the
// module. Motivated by the counter-bank risk the per-thread shard work
// left behind: one shard total updated with atomic.AddUint64 on the
// hot path and read with a plain load in the reporter is exactly the
// mixed access the race detector only catches under a lucky
// interleaving, and on non-TSO hardware the plain read can observe a
// torn or stale value forever. This is the suite's first genuinely
// module-wide analyzer: the atomic site and the plain site are usually
// in different functions and often in different packages, so the facts
// come from the call-graph layer's FieldFacts table rather than the
// current package alone.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "a struct field touched by sync/atomic anywhere must be touched " +
		"atomically everywhere (typed atomics are exempt by construction)",
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) {
	facts := pass.Graph.Fields
	if facts == nil {
		return
	}
	// Findings belong to the package whose files contain the plain
	// access; restrict to this pass so per-package suppressions apply
	// and nothing is reported twice.
	inPass := map[string]bool{}
	for _, f := range pass.Files {
		inPass[pass.Fset.Position(f.Pos()).Filename] = true
	}
	// Deterministic field order: sort by the first atomic site.
	fields := make([]types.Object, 0, len(facts.Atomic))
	for obj := range facts.Atomic {
		if len(facts.Plain[obj]) > 0 {
			fields = append(fields, obj)
		}
	}
	sort.Slice(fields, func(i, j int) bool {
		return facts.Atomic[fields[i]][0] < facts.Atomic[fields[j]][0]
	})
	for _, obj := range fields {
		for _, pos := range facts.Plain[obj] {
			if !inPass[pass.Fset.Position(pos).Filename] {
				continue
			}
			pass.Reportf(pos,
				"field %s is updated through sync/atomic at %d site(s) (first: %s) but accessed plainly here; make every access atomic, or drop atomics for a mutex",
				obj.Name(), len(facts.Atomic[obj]), relPos(pass.Fset, facts.Atomic[obj][0]))
		}
	}
}

// relPos renders pos as file:line with only the base file name, for
// embedding in a message without machine-specific absolute paths.
func relPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
