package lint

import (
	"go/ast"
	"go/types"
)

// streamerrPkgs are the packages that stream bytes to peers or disk in
// loops: the daemon/cluster layer, the write-ahead journal, and the
// result store. Everything else keeps its writes short and checked by
// droppederr (for module-internal calls) or inspection.
var streamerrPkgs = []string{
	"internal/serve",
	"internal/journal",
	"internal/store",
}

// streamerrExemptPkgs declare Write methods that cannot fail:
// in-memory buffers and hashes always return a nil error by contract,
// so looping over them unchecked is fine.
var streamerrExemptPkgs = map[string]bool{
	"bytes":   true,
	"strings": true,
	"hash":    true,
}

// StreamErr enforces first-write-error handling in streaming loops.
// Motivated by the PR 7 NDJSON bug: the sweep handler kept encoding
// result lines to a dead client for the whole sweep because every
// enc.Encode error inside the loop was discarded — thousands of
// doomed serializations, a flusher hammering a closed connection, and
// no signal anywhere that the peer was gone. A loop that writes to an
// io.Writer or *json.Encoder must look at each write's error so the
// first failure can short-circuit the stream (the serve.ndjsonStream
// helper is the canonical fix).
var StreamErr = &Analyzer{
	Name: "streamerr",
	Doc: "loops writing to an io.Writer or *json.Encoder must check each " +
		"write's error and stop at the first failure",
	Appliesf: func(pkgPath string) bool { return underPkgs(pkgPath, streamerrPkgs) },
	Run:      runStreamErr,
}

func runStreamErr(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkStreamLoops(pass, fd.Body, 0)
		}
	}
}

// checkStreamLoops walks stmts tracking loop depth. Function literals
// do NOT reset the depth: a goroutine or callback spawned inside a
// loop still writes once per iteration, which is exactly the shape of
// the original bug.
func checkStreamLoops(pass *Pass, root ast.Node, depth int) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Init != nil {
				ast.Inspect(n.Init, walk)
			}
			if n.Cond != nil {
				ast.Inspect(n.Cond, walk)
			}
			if n.Post != nil {
				ast.Inspect(n.Post, walk)
			}
			checkStreamLoops(pass, n.Body, depth+1)
			return false
		case *ast.RangeStmt:
			if n.X != nil {
				ast.Inspect(n.X, walk)
			}
			checkStreamLoops(pass, n.Body, depth+1)
			return false
		case *ast.ExprStmt:
			if depth > 0 {
				checkDiscardedWrite(pass, n.X)
			}
		case *ast.GoStmt:
			if depth > 0 {
				checkDiscardedWrite(pass, n.Call)
			}
		case *ast.DeferStmt:
			if depth > 0 {
				checkDiscardedWrite(pass, n.Call)
			}
		case *ast.AssignStmt:
			if depth > 0 {
				checkBlankWrite(pass, n)
			}
		}
		return true
	}
	ast.Inspect(root, walk)
}

// checkDiscardedWrite reports expr when it is a stream-write call
// whose error result is fully discarded.
func checkDiscardedWrite(pass *Pass, expr ast.Expr) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	if name := streamWriteCall(pass, call); name != "" {
		pass.Reportf(call.Pos(),
			"%s error discarded inside a loop; check it and stop the stream at the first failure (see serve.ndjsonStream)", name)
	}
}

// checkBlankWrite reports stream-write calls whose error lands in the
// blank identifier, e.g. `_, _ = w.Write(b)`.
func checkBlankWrite(pass *Pass, assign *ast.AssignStmt) {
	for _, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		name := streamWriteCall(pass, call)
		if name == "" {
			continue
		}
		allBlank := true
		for _, lhs := range assign.Lhs {
			if !isBlank(lhs) {
				allBlank = false
			}
		}
		if allBlank {
			pass.Reportf(call.Pos(),
				"%s error assigned to _ inside a loop; check it and stop the stream at the first failure", name)
		}
	}
}

// streamWriteCall classifies call: the display name of the write-like
// method when call is a stream write whose error matters, "" otherwise.
// Covered: Encode on *encoding/json.Encoder, and Write/WriteString
// methods returning an error — except on the exempt in-memory types.
func streamWriteCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn := staticCallee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	switch sel.Sel.Name {
	case "Encode":
		if fn.Pkg().Path() == "encoding/json" {
			return "json.Encoder.Encode"
		}
		return ""
	case "Write", "WriteString":
		if streamerrExemptPkgs[fn.Pkg().Path()] {
			return ""
		}
		if errorResultIndex(fn) < 0 {
			return ""
		}
		return fn.Pkg().Name() + "." + recvTypeName(recv) + "." + sel.Sel.Name
	}
	return ""
}

// recvTypeName names a method receiver's type for diagnostics,
// trimming pointers and package qualifiers to a compact label.
func recvTypeName(recv *types.Var) string {
	s := recv.Type().String()
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}
