package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
)

// guardedByRe matches the field annotation, e.g. "guarded by mu".
var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// callerHoldsRe matches the function annotation, e.g.
// "caller holds mu".
var callerHoldsRe = regexp.MustCompile(`caller holds (\w+)`)

// LockDiscipline enforces annotated mutex protection: a struct field
// carrying a `// guarded by <mu>` comment may only be accessed inside
// functions that lock <mu> (a `<mu>.Lock()` or `<mu>.RLock()` call
// anywhere in the function) or that declare `// caller holds <mu>` in
// their doc comment. Motivated by the per-thread shard work: the
// counter bank's shard registry is read by every observation, and one
// unguarded append from a worker goroutine is a data race the race
// detector only catches when a test happens to interleave it. The
// check is flow-insensitive by design — it enforces the annotation
// discipline, not a happens-before proof.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "fields annotated `guarded by <mu>` may only be accessed in " +
		"functions that lock <mu> or are annotated `caller holds <mu>`; " +
		"`caller holds` functions may only be called with the lock held",
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	guards := collectGuardedFields(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if len(guards) > 0 {
				checkFuncLocks(pass, fd, guards)
			}
			checkCallPaths(pass, fd)
		}
	}
}

// checkCallPaths is the interprocedural half of the discipline: a
// function whose doc declares `caller holds <mu>` may only be reached
// from call sites whose enclosing function either locks <mu> itself
// or declares <mu> held in turn. The original analyzer took the
// annotation on faith — the annotated callee was checked, but nothing
// stopped an unlocked caller from reaching it, which is exactly how a
// *Locked helper escapes its lock over a refactor. Matching is by
// mutex name, consistent with the flow-insensitive field check.
func checkCallPaths(pass *Pass, fd *ast.FuncDecl) {
	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	node := pass.Graph.NodeOf(fn)
	if node == nil {
		return
	}
	held := node.Summary.Locks
	for _, cs := range node.Calls {
		callee := pass.Graph.NodeOf(cs.Callee)
		if callee == nil || len(callee.Summary.CallerHolds) == 0 {
			continue
		}
		mus := make([]string, 0, len(callee.Summary.CallerHolds))
		for mu := range callee.Summary.CallerHolds {
			mus = append(mus, mu)
		}
		sort.Strings(mus)
		for _, mu := range mus {
			if held[mu] || node.Summary.CallerHolds[mu] {
				continue
			}
			pass.Reportf(cs.Pos,
				"%s declares `caller holds %s`, but %s neither locks %s nor declares `caller holds %s`",
				cs.Callee.Name(), mu, funcLabel(fd), mu, mu)
		}
	}
}

// collectGuardedFields maps each annotated struct field object to the
// name of its guarding mutex, harvested from the field's line comment
// or doc comment.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := fieldGuard(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guards[obj] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

// fieldGuard extracts the guard name from a field's comments.
func fieldGuard(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkFuncLocks verifies every guarded-field access in fd against the
// set of mutexes the function locks or declares held.
func checkFuncLocks(pass *Pass, fd *ast.FuncDecl, guards map[types.Object]string) {
	held := map[string]bool{}
	if fd.Doc != nil {
		for _, m := range callerHoldsRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
			held[m[1]] = true
		}
	}
	// First pass: every mutex this function locks anywhere in its body
	// (including function literals — a nested closure's Lock still
	// brackets the accesses around it under this flow-insensitive
	// model).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch recv := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			held[recv.Name] = true
		case *ast.SelectorExpr:
			held[recv.Sel.Name] = true
		}
		return true
	})
	// Second pass: guarded-field accesses.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		guard, guarded := guards[selection.Obj()]
		if !guarded || held[guard] {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"field %s is guarded by %q, but %s neither locks %s nor declares `caller holds %s`",
			sel.Sel.Name, guard, funcLabel(fd), guard, guard)
		return true
	})
}

// funcLabel names fd for diagnostics, including the receiver type.
func funcLabel(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
