// Package lint is sgxgauge's in-tree static-analysis driver: a small,
// dependency-free framework (go/parser + go/types only) that
// type-checks every package in the module, builds a module-wide static
// call graph (callgraph.go), and runs a pluggable set of analyzers
// enforcing the simulator's cross-cutting invariants — determinism,
// error propagation, lock discipline, saturating cycle arithmetic,
// context-aware blocking, goroutine join tracking, atomic-field
// consistency, and stream write-error handling. See DESIGN.md §8 for
// the invariant catalogue and the historical bugs each analyzer exists
// to prevent.
//
// Findings are reported as "file:line: [analyzer] message". A finding
// can be acknowledged in place with a pragma on the offending line or
// the line directly above it:
//
//	//sgxlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory: an unexplained suppression is itself
// reported. Suppressed findings are retained (marked Suppressed) so
// tooling can audit them.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding (or the
	// pseudo-analyzer "sgxlint" for driver-level problems such as
	// malformed pragmas).
	Analyzer string
	// Message describes the violated invariant.
	Message string
	// Suppressed reports that an //sgxlint:ignore pragma acknowledged
	// this finding; Reason carries the pragma's written justification.
	Suppressed bool
	Reason     string
}

// String renders the finding in the canonical file:line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Fset resolves token positions for every file of the package.
	Fset *token.FileSet
	// PkgPath is the package's import path within the module.
	PkgPath string
	// ModulePath is the module's root import path ("sgxgauge").
	ModulePath string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Files are the package's parsed sources (tests excluded).
	Files []*ast.File
	// Info holds the type-checker's resolution tables.
	Info *types.Info
	// Graph is the module-wide call graph and fact tables, shared by
	// every pass of one RunAnalyzers invocation. Analyzers still report
	// only on the current package but may judge it against facts from
	// anywhere in the module.
	Graph *Graph

	report           func(pos token.Pos, msg string)
	reportSuppressed func(pos token.Pos, msg, reason string)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// ReportSuppressedf records a finding at pos that is born suppressed
// with the given reason — used by analyzers whose own annotation
// grammar (goroleak's //sgxlint:detached) acknowledges a finding
// without the generic ignore pragma, so the -suppressed audit still
// surfaces it.
func (p *Pass) ReportSuppressedf(pos token.Pos, reason, format string, args ...any) {
	p.reportSuppressed(pos, fmt.Sprintf(format, args...), reason)
}

// InModule reports whether pkgPath belongs to this module.
func (p *Pass) InModule(pkgPath string) bool {
	return pkgPath == p.ModulePath || strings.HasPrefix(pkgPath, p.ModulePath+"/")
}

// Analyzer is one pluggable invariant checker.
type Analyzer struct {
	// Name is the identifier used in findings and ignore pragmas.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Appliesf, when non-nil, restricts the analyzer to packages whose
	// module-relative import path it accepts.
	Appliesf func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Applies reports whether the analyzer covers the package.
func (a *Analyzer) Applies(pkgPath string) bool {
	return a.Appliesf == nil || a.Appliesf(pkgPath)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicField,
		CtxFlow,
		Determinism,
		DroppedErr,
		GoroLeak,
		LockDiscipline,
		SatConv,
		StreamErr,
	}
}

// ByName resolves one analyzer from All, reporting false when unknown.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// suppression is one parsed //sgxlint:ignore pragma.
type suppression struct {
	analyzers map[string]bool
	reason    string
	line      int
	used      bool
}

// pragmaRe matches the ignore pragma. Like go:build directives, the
// pragma must open the comment with no space after "//" — prose that
// merely mentions the pragma does not trigger it.
var pragmaRe = regexp.MustCompile(`^//sgxlint:ignore(\s.*)?$`)

// fileSuppressions indexes a file's pragmas by the source line they
// cover: a pragma covers its own line (trailing comment) and, when it
// stands alone, the line directly below it.
type fileSuppressions struct {
	byLine map[int][]*suppression
	all    []*suppression
}

// collectSuppressions parses every //sgxlint:ignore pragma in the
// file. Malformed pragmas (no analyzer, unknown analyzer, or a missing
// reason) are reported as "sgxlint" diagnostics through report.
func collectSuppressions(fset *token.FileSet, f *ast.File, known func(string) bool, report func(pos token.Pos, msg string)) *fileSuppressions {
	fs := &fileSuppressions{byLine: map[int][]*suppression{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := pragmaRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			fields := strings.Fields(m[1])
			if len(fields) == 0 {
				report(c.Pos(), "malformed sgxlint:ignore pragma: missing analyzer name")
				continue
			}
			names := strings.Split(fields[0], ",")
			s := &suppression{analyzers: map[string]bool{}, line: fset.Position(c.Pos()).Line}
			bad := false
			for _, n := range names {
				if !known(n) {
					report(c.Pos(), fmt.Sprintf("sgxlint:ignore names unknown analyzer %q", n))
					bad = true
				}
				s.analyzers[n] = true
			}
			s.reason = strings.Join(fields[1:], " ")
			if s.reason == "" {
				report(c.Pos(), "sgxlint:ignore requires a written reason after the analyzer name")
				bad = true
			}
			if bad {
				continue
			}
			fs.all = append(fs.all, s)
			fs.byLine[s.line] = append(fs.byLine[s.line], s)
			// A pragma on its own line covers the next line.
			fs.byLine[s.line+1] = append(fs.byLine[s.line+1], s)
		}
	}
	return fs
}

// match returns the pragma covering (analyzer, line), or nil.
func (fs *fileSuppressions) match(analyzer string, line int) *suppression {
	for _, s := range fs.byLine[line] {
		if s.analyzers[analyzer] {
			s.used = true
			return s
		}
	}
	return nil
}

// RunAnalyzers runs every applicable analyzer over every package of
// the module and returns all findings (including suppressed ones),
// sorted by position. Unused pragmas are reported so stale
// suppressions cannot linger after the code they excused is gone.
func RunAnalyzers(mod *Module, analyzers []*Analyzer) []Diagnostic {
	known := func(name string) bool {
		for _, a := range analyzers {
			if a.Name == name {
				return true
			}
		}
		return false
	}
	graph := BuildGraph(mod)
	var diags []Diagnostic
	for _, pkg := range mod.Packages {
		diags = append(diags, runPackage(mod, graph, pkg, analyzers, known)...)
	}
	sortDiagnostics(diags)
	return diags
}

// runPackage runs the applicable analyzers over one loaded package.
func runPackage(mod *Module, graph *Graph, pkg *Package, analyzers []*Analyzer, known func(string) bool) []Diagnostic {
	var diags []Diagnostic
	sups := map[string]*fileSuppressions{} // filename -> pragmas
	for _, f := range pkg.Files {
		name := mod.Fset.Position(f.Pos()).Filename
		sups[name] = collectSuppressions(mod.Fset, f, known, func(pos token.Pos, msg string) {
			diags = append(diags, Diagnostic{
				Pos:      mod.Fset.Position(pos),
				Analyzer: "sgxlint",
				Message:  msg,
			})
		})
	}
	for _, a := range analyzers {
		if !a.Applies(pkg.Path) {
			continue
		}
		pass := &Pass{
			Fset:       mod.Fset,
			PkgPath:    pkg.Path,
			ModulePath: mod.Path,
			Pkg:        pkg.Types,
			Files:      pkg.Files,
			Info:       pkg.Info,
			Graph:      graph,
		}
		pass.report = func(pos token.Pos, msg string) {
			d := Diagnostic{
				Pos:      mod.Fset.Position(pos),
				Analyzer: a.Name,
				Message:  msg,
			}
			if fs := sups[d.Pos.Filename]; fs != nil {
				if s := fs.match(a.Name, d.Pos.Line); s != nil {
					d.Suppressed = true
					d.Reason = s.reason
				}
			}
			diags = append(diags, d)
		}
		pass.reportSuppressed = func(pos token.Pos, msg, reason string) {
			diags = append(diags, Diagnostic{
				Pos:        mod.Fset.Position(pos),
				Analyzer:   a.Name,
				Message:    msg,
				Suppressed: true,
				Reason:     reason,
			})
		}
		a.Run(pass)
	}
	for _, f := range pkg.Files {
		name := mod.Fset.Position(f.Pos()).Filename
		for _, s := range sups[name].all {
			if !s.used {
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: name, Line: s.line},
					Analyzer: "sgxlint",
					Message:  "sgxlint:ignore pragma suppresses nothing; delete it",
				})
			}
		}
	}
	return diags
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
