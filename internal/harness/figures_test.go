package harness

import (
	"strings"
	"testing"

	"sgxgauge/internal/epc"
	"sgxgauge/internal/workloads"
)

// runner is shared across figure tests so runs are cached between
// them, the way sgxreport shares them between experiments.
var testRunner = func() *Runner {
	r := NewRunner(testEPC)
	r.Seed = 1
	return r
}()

func TestFigure2Shape(t *testing.T) {
	d, err := testRunner.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	// Crossing the EPC boundary must blow up evictions relative to
	// Low and increase the overhead monotonically.
	if d.EvictRatio[workloads.High] < 10 {
		t.Errorf("High/Low eviction ratio = %.1f, want an explosion (paper: ~100x)", d.EvictRatio[workloads.High])
	}
	if !(d.Overhead[workloads.Low] < d.Overhead[workloads.High]) {
		t.Errorf("overhead not increasing: %v", d.Overhead)
	}
	// dTLB misses must be strongly amplified past the boundary; the
	// Low->Medium->High progression is monotone at report scale but
	// the High point is TLB-geometry-sensitive at test scale.
	if d.DTLBRatio[workloads.Medium] <= d.DTLBRatio[workloads.Low] {
		t.Errorf("dTLB ratio not increasing at the boundary: %v", d.DTLBRatio)
	}
	if d.DTLBRatio[workloads.High] < 5 {
		t.Errorf("High dTLB ratio = %.1f, want strong amplification", d.DTLBRatio[workloads.High])
	}
	if s := d.Render(); !strings.Contains(s, "Figure 2") {
		t.Error("render missing title")
	}
}

func TestFigure3Shape(t *testing.T) {
	pts, err := testRunner.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.Threads != 16 {
		t.Errorf("last point at %d threads", last.Threads)
	}
	// Figure 3: the SGX latency penalty grows with concurrency, up
	// to ~7x at 16 threads.
	if last.Ratio <= first.Ratio {
		t.Errorf("latency ratio flat: %v -> %v", first.Ratio, last.Ratio)
	}
	if last.Ratio < 3 || last.Ratio > 12 {
		t.Errorf("16-thread ratio = %.1fx, paper reports ~7x", last.Ratio)
	}
	if s := RenderFigure3(pts); !strings.Contains(s, "Threads") {
		t.Error("render malformed")
	}
}

func TestFigure4Shape(t *testing.T) {
	rows, err := testRunner.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6 native workloads", len(rows))
	}
	// The paper's point: the LibOS's impact depends on the workload —
	// it clearly helps some while leaving others at (or beyond)
	// parity. Require a spread, not a uniform shift.
	min, max := 10.0, 0.0
	for _, row := range rows {
		for _, s := range workloads.Sizes() {
			if row.Ratio[s] < min {
				min = row.Ratio[s]
			}
			if row.Ratio[s] > max {
				max = row.Ratio[s]
			}
			// And LibOS stays within a sane band of Native overall.
			if row.Ratio[s] < 0.1 || row.Ratio[s] > 3 {
				t.Errorf("%s/%v: LibOS/Native = %.2f out of band", row.Name, s, row.Ratio[s])
			}
		}
	}
	if min > 0.95 {
		t.Errorf("LibOS never helps (min ratio %.2f); Figure 4's point is lost", min)
	}
	if max < 0.95 || max/min < 1.3 {
		t.Errorf("LibOS impact uniform (min %.2f, max %.2f); Figure 4 expects workload-dependent spread", min, max)
	}
	_ = RenderFigure4(rows)
}

func TestTable4Shape(t *testing.T) {
	d, err := testRunner.Table4()
	if err != nil {
		t.Fatal(err)
	}
	nv := d.NativeVsVanilla
	// Overheads grow with input size and sit in the paper's band.
	if !(nv.Overhead[workloads.Low] < nv.Overhead[workloads.High]) {
		t.Errorf("Native overhead not increasing: %v", nv.Overhead)
	}
	if nv.Overhead[workloads.Low] < 1.3 || nv.Overhead[workloads.Low] > 4 {
		t.Errorf("Native Low overhead = %.2fx, paper reports 2.0x", nv.Overhead[workloads.Low])
	}
	if nv.Overhead[workloads.High] < 2 || nv.Overhead[workloads.High] > 9 {
		t.Errorf("Native High overhead = %.2fx, paper reports 3.4x", nv.Overhead[workloads.High])
	}
	// LibOS stays within ~±20% of Native (paper: ~±10%).
	ln := d.LibOSVsNative
	for _, s := range workloads.Sizes() {
		if ln.Overhead[s] < 0.7 || ln.Overhead[s] > 1.3 {
			t.Errorf("LibOS/Native %v = %.2fx, want ~1.0", s, ln.Overhead[s])
		}
	}
	// LibOS eviction counts are dominated by the startup storm.
	if ln.EPCEvictions[workloads.Low] < float64(testEPC)*10 {
		t.Errorf("LibOS evictions = %v, want startup-storm scale", ln.EPCEvictions[workloads.Low])
	}
	if s := d.Render(); !strings.Contains(s, "Native Mode w.r.t Vanilla") {
		t.Error("render malformed")
	}
}

func TestFigure5Shape(t *testing.T) {
	rows, err := testRunner.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		if row.Overhead[workloads.Low] <= 1 {
			t.Errorf("%s: Low overhead %.2fx <= 1", row.Name, row.Overhead[workloads.Low])
		}
	}
	// Per the paper, data-bound workloads jump sharply Low->Medium.
	for _, row := range rows {
		if row.Name == "BTree" && row.Evictions[workloads.Medium] < 10*max64(row.Evictions[workloads.Low], 1) {
			t.Errorf("BTree evictions %v do not jump at the boundary", row.Evictions)
		}
	}
	_ = RenderFigure5(rows)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func TestFigure6aShape(t *testing.T) {
	d, err := testRunner.Figure6a()
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6a: ~300 ECALLs, ~1000 OCALLs, ~1000 AEXs, evictions of
	// enclave-size scale, and only a small number of load-backs.
	if d.ECalls < 295 || d.ECalls > 320 {
		t.Errorf("ECALLs = %d, want ~300", d.ECalls)
	}
	if d.OCalls < 990 || d.OCalls > 1100 {
		t.Errorf("OCALLs = %d, want ~1000", d.OCalls)
	}
	if d.AEXs < 990 || d.AEXs > 1100 {
		t.Errorf("AEXs = %d, want ~1000", d.AEXs)
	}
	enclavePages := uint64(44 * testEPC)
	if d.EPCEvictions < enclavePages*8/10 {
		t.Errorf("evictions = %d, want ~%d (full enclave load)", d.EPCEvictions, enclavePages)
	}
	if d.EPCLoadBacks >= d.EPCEvictions/10 {
		t.Errorf("load-backs = %d of %d evictions; paper: only a tiny fraction returns", d.EPCLoadBacks, d.EPCEvictions)
	}
	if d.RunCycles != 0 {
		t.Errorf("empty body consumed %d cycles", d.RunCycles)
	}
	_ = d.Render()
}

func TestFigure6bcShape(t *testing.T) {
	rows, err := testRunner.Figure6bc()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows, want 10", len(rows))
	}
	for _, row := range rows {
		if row.Overhead[workloads.Low] <= 0.9 {
			t.Errorf("%s: LibOS Low overhead %.2f", row.Name, row.Overhead[workloads.Low])
		}
	}
	_ = RenderFigure6bc(rows)
}

func TestFigure6dShape(t *testing.T) {
	d, err := testRunner.Figure6d()
	if err != nil {
		t.Fatal(err)
	}
	// §5.6: switchless mode cuts dTLB misses (paper: -60%) and
	// improves latency (paper: -30%).
	if d.SwitchlessDTLB >= d.DefaultDTLB {
		t.Error("switchless did not reduce dTLB misses")
	}
	if d.SwitchlessLatency >= d.DefaultLatency {
		t.Error("switchless did not improve latency")
	}
	drop := 1 - d.SwitchlessLatency/d.DefaultLatency
	if drop < 0.1 || drop > 0.9 {
		t.Errorf("latency improvement = %.0f%%, paper reports ~30%%", drop*100)
	}
	_ = d.Render()
}

func TestFigure7Shape(t *testing.T) {
	rows, err := testRunner.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	got := map[epc.Op]Figure7Row{}
	for _, row := range rows {
		got[row.Op] = row
	}
	// Latencies are "in the range of a few micro-seconds"
	// (Appendix A) and EWB ~= 1.16x ELDU.
	for _, op := range []epc.Op{epc.OpEWB, epc.OpELDU, epc.OpFault} {
		if us := got[op].MeanUS; us < 0.5 || us > 20 {
			t.Errorf("%v latency = %.2f us, want a few us", op, us)
		}
	}
	ratio := got[epc.OpEWB].MeanUS / got[epc.OpELDU].MeanUS
	if ratio < 1.1 || ratio > 1.25 {
		t.Errorf("EWB/ELDU = %.3f, paper reports ~1.16", ratio)
	}
	// The paper averages 40K+ samples at full scale; at test scale
	// just require a statistically meaningful count.
	if got[epc.OpEWB].Samples < 100 {
		t.Errorf("only %d EWB samples", got[epc.OpEWB].Samples)
	}
	_ = RenderFigure7(rows)
}

func TestFigure8Shape(t *testing.T) {
	d, err := testRunner.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Workloads) != 6 {
		t.Fatalf("%d workloads", len(d.Workloads))
	}
	// Blockchain's dTLB misses must tower over Vanilla (paper
	// Appendix B.1: ~2000x from ECALL-driven flushes).
	bc := d.Ratio["Blockchain"][workloads.Low][figure8Events[0]]
	if bc < 50 {
		t.Errorf("Blockchain dTLB ratio = %.0fx, want very large", bc)
	}
	_ = d.Render()
}

func TestTable2Rows(t *testing.T) {
	rows, err := testRunner.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	if !strings.Contains(RenderTable2(rows), "Blockchain") {
		t.Error("render missing workloads")
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := testRunner.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		nonzero := false
		for _, c := range row.Coeff {
			if c != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			t.Errorf("%s: all-zero regression", row.Name)
		}
	}
	if !strings.Contains(RenderTable5(rows), "*") {
		t.Error("render does not mark top counters")
	}
}

func TestFigure9Shape(t *testing.T) {
	d, err := testRunner.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Native) == 0 || len(d.LibOS) == 0 {
		t.Fatal("missing timelines")
	}
	// The LibOS timeline front-loads the eviction storm: by the end
	// of startup it has evicted far more than the Native run ever
	// does.
	libAtStartup := uint64(0)
	for _, ev := range d.LibOS {
		if ev.Cycle <= d.LibOSStartup {
			libAtStartup = ev.Evictions
		}
	}
	natTotal := d.Native[len(d.Native)-1].Evictions
	if float64(libAtStartup) < 1.5*float64(natTotal) {
		t.Errorf("LibOS startup evictions (%d) do not dominate Native total (%d)", libAtStartup, natTotal)
	}
	_ = d.Render()
}

func TestFigure10Shape(t *testing.T) {
	rows, err := testRunner.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	van, lib, pf := rows[0], rows[1], rows[2]
	for _, phase := range []string{"write", "rewrite", "read", "reread"} {
		if !(van.PhaseCycles[phase] < lib.PhaseCycles[phase] && lib.PhaseCycles[phase] < pf.PhaseCycles[phase]) {
			t.Errorf("%s: ordering broken: %v / %v / %v", phase,
				van.PhaseCycles[phase], lib.PhaseCycles[phase], pf.PhaseCycles[phase])
		}
	}
	// PF mode multiplies boundary crossings (Figure 10c/d).
	if pf.OCalls <= lib.OCalls {
		t.Error("PF mode did not increase OCALLs")
	}
	if pf.ECalls <= lib.ECalls {
		t.Error("PF mode did not increase ECALLs")
	}
	_ = RenderFigure10(rows)
}
