package harness

import "time"

// Clock abstracts the host wall clock the engine stamps Progress.Wall
// with. Wall time is reporting-only — it never feeds a Result — but
// the determinism analyzer still (rightly) refuses bare time.Now in
// harness code; this interface is the one sanctioned crossing point,
// and tests inject a fake to keep engine behaviour reproducible.
type Clock interface {
	// Now returns the current wall-clock instant.
	Now() time.Time
	// Since returns the elapsed wall time since t.
	Since(t time.Time) time.Duration
}

// RealClock is the production Clock: the host's actual wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time {
	//sgxlint:ignore determinism the injectable-clock boundary: Progress.Wall is host-side reporting that never enters a Result
	return time.Now()
}

// Since implements Clock.
func (RealClock) Since(t time.Time) time.Duration {
	//sgxlint:ignore determinism the injectable-clock boundary: Progress.Wall is host-side reporting that never enters a Result
	return time.Since(t)
}
