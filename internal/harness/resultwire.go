package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"sgxgauge/internal/epc"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

// ResultWire is the JSON-round-trippable form of a Result: the full
// measurement — every counter bank, the timeline, the per-operation
// latency stats — with nothing summarized away. It is the storage
// schema of the persistent result store (internal/store) and the
// format workers use to ship results back to a sweep coordinator, so
// a result decoded from either source must be indistinguishable from
// one the local engine just produced.
//
// Encoding is canonical by construction, like SpecWire: struct fields
// serialize in declaration order, counter banks serialize as
// name-keyed maps with sorted keys (encoding/json's documented map
// behavior), and enums serialize as their paper names. Counter and
// operation *names* — not ordinal positions — are the schema, so an
// entry written before a counter was added (or reordered) still
// decodes, while an entry naming an event this build has never heard
// of is rejected rather than silently misfiled.
type ResultWire struct {
	Name   string           `json:"name"`
	Mode   sgx.Mode         `json:"mode"`
	Params workloads.Params `json:"params"`

	Cycles        uint64            `json:"cycles"`
	Counters      map[string]uint64 `json:"counters,omitempty"`
	TotalCounters map[string]uint64 `json:"total_counters,omitempty"`
	Output        workloads.Output  `json:"output"`

	StartupCycles   uint64               `json:"startup_cycles,omitempty"`
	StartupCounters map[string]uint64    `json:"startup_counters,omitempty"`
	Timeline        []epc.TimelineEvent  `json:"timeline,omitempty"`
	OpStats         map[string]epc.OpStats `json:"op_stats,omitempty"`

	Error    string `json:"error,omitempty"`
	Attempts int    `json:"attempts"`
}

// Wire extracts the result's serializable form. Two equivalences are
// canonicalized rather than preserved: Err flattens to its message
// (a decoded failure compares equal by text but not by errors.Is
// identity — which is why the persistent store only ever holds
// Err == nil results), and empty collections decode as nil (absence
// and emptiness mean the same thing everywhere a Result is read).
func (r *Result) Wire() ResultWire {
	return ResultWire{
		Name:            r.Name,
		Mode:            r.Mode,
		Params:          r.Params,
		Cycles:          r.Cycles,
		Counters:        snapshotWire(r.Counters),
		TotalCounters:   snapshotWire(r.TotalCounters),
		Output:          r.Output,
		StartupCycles:   r.StartupCycles,
		StartupCounters: snapshotWire(r.StartupCounters),
		Timeline:        r.Timeline,
		OpStats:         opStatsWire(r.OpStats),
		Error:           errString(r.Err),
		Attempts:        r.Attempts,
	}
}

// Result resolves the wire form back into a Result. Unknown counter
// or operation names are errors: an entry from a different schema
// must be rejected (and quarantined by the store), not decoded into
// the wrong counter.
func (w ResultWire) Result() (*Result, error) {
	counters, err := snapshotFromWire(w.Counters)
	if err != nil {
		return nil, err
	}
	total, err := snapshotFromWire(w.TotalCounters)
	if err != nil {
		return nil, err
	}
	startup, err := snapshotFromWire(w.StartupCounters)
	if err != nil {
		return nil, err
	}
	opStats, err := opStatsFromWire(w.OpStats)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:            w.Name,
		Mode:            w.Mode,
		Params:          w.Params,
		Cycles:          w.Cycles,
		Counters:        counters,
		TotalCounters:   total,
		Output:          w.Output,
		StartupCycles:   w.StartupCycles,
		StartupCounters: startup,
		Timeline:        w.Timeline,
		OpStats:         opStats,
		Attempts:        w.Attempts,
	}
	if w.Error != "" {
		res.Err = errors.New(w.Error)
	}
	return res, nil
}

// EncodeResult renders the result's canonical JSON encoding.
func EncodeResult(r *Result) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("harness: cannot encode nil result")
	}
	return json.Marshal(r.Wire())
}

// DecodeResult parses a canonical result encoding. Decoding is
// strict — unknown fields, counter names and operation names are all
// errors — so a corrupt or foreign entry is detected rather than
// half-loaded.
func DecodeResult(data []byte) (*Result, error) {
	var w ResultWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("harness: decoding result: %w", err)
	}
	return w.Result()
}

// snapshotWire renders a counter bank as a name-keyed map, dropping
// zero counters (absence and zero are equivalent in a Snapshot).
func snapshotWire(s perf.Snapshot) map[string]uint64 {
	var m map[string]uint64
	for _, e := range perf.Events() {
		if v := s.Get(e); v != 0 {
			if m == nil {
				m = make(map[string]uint64)
			}
			m[e.String()] = v
		}
	}
	return m
}

// snapshotFromWire resolves a name-keyed counter map back into a
// Snapshot, rejecting names this build does not define.
func snapshotFromWire(m map[string]uint64) (perf.Snapshot, error) {
	var s perf.Snapshot
	//sgxlint:ignore determinism distinct source keys parse to distinct array slots and nothing else happens; the final snapshot is order-independent
	for name, v := range m {
		e, ok := perf.ParseEvent(name)
		if !ok {
			return s, fmt.Errorf("harness: unknown counter %q in result encoding", name)
		}
		s[e] = v
	}
	return s, nil
}

// wireOps lists the instrumented driver operations in a fixed order
// for name round-tripping.
var wireOps = []epc.Op{epc.OpAlloc, epc.OpEWB, epc.OpELDU, epc.OpFault}

func opStatsWire(m map[epc.Op]epc.OpStats) map[string]epc.OpStats {
	if m == nil {
		return nil
	}
	out := make(map[string]epc.OpStats, len(m))
	for _, op := range wireOps {
		if s, ok := m[op]; ok {
			out[op.String()] = s
		}
	}
	return out
}

func opStatsFromWire(m map[string]epc.OpStats) (map[epc.Op]epc.OpStats, error) {
	if m == nil {
		return nil, nil
	}
	out := make(map[epc.Op]epc.OpStats, len(m))
	//sgxlint:ignore determinism map-to-map copy with distinct parsed keys; final map state is order-independent
	for name, s := range m {
		op, ok := parseOp(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown EPC operation %q in result encoding", name)
		}
		out[op] = s
	}
	return out, nil
}

func parseOp(name string) (epc.Op, bool) {
	for _, op := range wireOps {
		if op.String() == name {
			return op, true
		}
	}
	return 0, false
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
