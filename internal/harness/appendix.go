package harness

import (
	"fmt"

	"sgxgauge/internal/cycles"
	"sgxgauge/internal/epc"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// Figure9Data is the EPC activity timeline of B-Tree in Native and
// LibOS modes (Appendix D): the LibOS run front-loads a huge eviction
// storm while measuring its enclave, after which both modes converge
// to the same allocation/eviction pattern.
type Figure9Data struct {
	Native []epc.TimelineEvent
	LibOS  []epc.TimelineEvent
	// NativeStartup/LibOSStartup mark where initialization ends on
	// each timeline (cycles).
	NativeStartup uint64
	LibOSStartup  uint64
}

// Figure9 regenerates the timeline with ~timelineSamples points per
// run.
func (r *Runner) Figure9() (*Figure9Data, error) {
	w, err := suite.ByName("BTree")
	if err != nil {
		return nil, err
	}
	// Sampling cadence: roughly every 64 EPC ops keeps the trace
	// small while resolving the startup storm.
	results, err := r.batch([]Spec{
		{Workload: w, Mode: sgx.Native, Size: workloads.Medium, Timeline: 64},
		{Workload: w, Mode: sgx.LibOS, Size: workloads.Medium, Timeline: 64},
	})
	if err != nil {
		return nil, err
	}
	nat, lib := results[0], results[1]
	return &Figure9Data{
		Native:        nat.Timeline,
		LibOS:         lib.Timeline,
		NativeStartup: nat.StartupCycles,
		LibOSStartup:  lib.StartupCycles,
	}, nil
}

// Render renders coarse timelines (10 buckets per mode).
func (d *Figure9Data) Render() string {
	t := Table{
		Title:  "Figure 9: EPC activity timeline, B-Tree (cumulative counts)",
		Header: []string{"Mode", "Phase", "Time (ms)", "Allocs", "Evictions", "Load-backs"},
	}
	addRows := func(mode string, tl []epc.TimelineEvent, startup uint64) {
		if len(tl) == 0 {
			return
		}
		step := len(tl) / 8
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(tl); i += step {
			ev := tl[i]
			phase := "init"
			if ev.Cycle > startup {
				phase = "exec"
			}
			t.AddRow(mode, phase,
				fmt.Sprintf("%.2f", cycles.Micros(ev.Cycle)/1000),
				fc(float64(ev.Allocs)), fc(float64(ev.Evictions)), fc(float64(ev.LoadBacks)))
		}
		last := tl[len(tl)-1]
		t.AddRow(mode, "end",
			fmt.Sprintf("%.2f", cycles.Micros(last.Cycle)/1000),
			fc(float64(last.Allocs)), fc(float64(last.Evictions)), fc(float64(last.LoadBacks)))
	}
	addRows("Native", d.Native, d.NativeStartup)
	addRows("LibOS", d.LibOS, d.LibOSStartup)
	t.AddNote("LibOS front-loads ~enclave-size evictions during measurement, then converges to the Native pattern")
	return t.String()
}

// Figure10Row is one Iozone configuration's per-phase costs.
type Figure10Row struct {
	Config string
	// PhaseCycles maps write/rewrite/read/reread to cycles.
	PhaseCycles map[string]float64
	ECalls      uint64
	OCalls      uint64
}

// Figure10 regenerates Appendix E: Iozone under Vanilla, LibOS
// (plaintext shim) and LibOS with protected files.
func (r *Runner) Figure10() ([]Figure10Row, error) {
	w := suite.Iozone()
	configs := []struct {
		name string
		mode sgx.Mode
		pf   bool
	}{
		{"Vanilla", sgx.Vanilla, false},
		{"LibOS (S-G)", sgx.LibOS, false},
		{"LibOS+PF (S-P)", sgx.LibOS, true},
	}
	specs := make([]Spec, len(configs))
	for i, c := range configs {
		specs[i] = Spec{Workload: w, Mode: c.mode, Size: workloads.Medium, ProtectedFiles: c.pf}
	}
	results, err := r.batch(specs)
	if err != nil {
		return nil, err
	}
	var out []Figure10Row
	for i, c := range configs {
		res := results[i]
		row := Figure10Row{
			Config:      c.name,
			PhaseCycles: map[string]float64{},
			ECalls:      res.Counters.Get(perf.ECalls),
			OCalls:      res.Counters.Get(perf.OCalls),
		}
		for _, phase := range []string{"write", "rewrite", "read", "reread"} {
			row.PhaseCycles[phase] = res.Output.Extra[phase+"_cycles"]
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFigure10 renders the I/O comparison, with overheads against
// Vanilla.
func RenderFigure10(rows []Figure10Row) string {
	t := Table{
		Title:  "Figure 10: Iozone I/O with GrapheneSGX and protected files",
		Header: []string{"Config", "write", "rewrite", "read", "reread", "ECALLs", "OCALLs"},
	}
	var base map[string]float64
	for i, row := range rows {
		if i == 0 {
			base = row.PhaseCycles
		}
		cells := []string{row.Config}
		for _, phase := range []string{"write", "rewrite", "read", "reread"} {
			v := row.PhaseCycles[phase]
			if i == 0 {
				cells = append(cells, fmt.Sprintf("%.1fms", cycles.Micros(uint64(v))/1000))
			} else {
				cells = append(cells, fmt.Sprintf("%+.0f%%", 100*(v-base[phase])/base[phase]))
			}
		}
		cells = append(cells, fc(float64(row.ECalls)), fc(float64(row.OCalls)))
		t.AddRow(cells...)
	}
	t.AddNote("percentages are overhead vs Vanilla for the same phase")
	return t.String()
}
