package harness

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sgxgauge/internal/chaos"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// testGrid is a small but mixed batch: two workloads across three
// modes and two sizes, at the test EPC so paging paths are exercised.
func testGrid(t *testing.T) []Spec {
	t.Helper()
	btree, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	memcached, err := suite.ByName("Memcached")
	if err != nil {
		t.Fatal(err)
	}
	specs := GridSpecs(
		[]workloads.Workload{btree, memcached},
		[]sgx.Mode{sgx.Vanilla, sgx.Native, sgx.LibOS},
		[]workloads.Size{workloads.Low, workloads.Medium},
	)
	for i := range specs {
		specs[i].EPCPages = testEPC
		specs[i].Seed = 7
	}
	return specs
}

// mustExec pushes specs through the uncached engine, failing the test
// on an engine-level error (which only context cancellation produces).
func mustExec(t *testing.T, specs []Spec, opts ...Option) []Result {
	t.Helper()
	results, err := execBatch(specs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// TestParallelMatchesSerial is the determinism contract: a parallel
// batch must be byte-identical to running the same specs serially, in
// input order.
func TestParallelMatchesSerial(t *testing.T) {
	specs := testGrid(t)
	serial := mustExec(t, specs, Workers(1))
	parallel := mustExec(t, specs, Workers(4))
	if len(serial) != len(specs) || len(parallel) != len(specs) {
		t.Fatalf("lengths: serial %d, parallel %d, want %d", len(serial), len(parallel), len(specs))
	}
	for i := range specs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("spec %d: unexpected errors %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("spec %d (%s/%v/%v): parallel result differs from serial",
				i, serial[i].Name, specs[i].Mode, specs[i].Size)
		}
	}
}

// panicWorkload satisfies workloads.Workload but panics when run.
type panicWorkload struct{}

func (panicWorkload) Name() string     { return "PanicStub" }
func (panicWorkload) Property() string { return "always panics" }
func (panicWorkload) NativePort() bool { return true }
func (panicWorkload) DefaultParams(epcPages int, s workloads.Size) workloads.Params {
	return workloads.Params{Knobs: map[string]int64{}}
}
func (panicWorkload) FootprintPages(p workloads.Params) (int, error) { return 8, nil }
func (panicWorkload) Setup(ctx *workloads.Ctx) error                 { return nil }
func (panicWorkload) Run(ctx *workloads.Ctx) (workloads.Output, error) {
	panic("injected failure")
}

// TestPanicIsolation: a panicking spec must surface as a failed Result
// with Err set, without aborting or corrupting its siblings.
func TestPanicIsolation(t *testing.T) {
	w, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	good := Spec{Workload: w, Mode: sgx.Native, Size: workloads.Low, EPCPages: testEPC, Seed: 7}
	bad := Spec{Workload: panicWorkload{}, Mode: sgx.Native, Size: workloads.Low, EPCPages: testEPC, Seed: 7}
	results := mustExec(t, []Spec{good, bad, good}, Workers(3))

	if results[1].Err == nil {
		t.Fatal("panicking spec: want Err set, got nil")
	}
	if !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Errorf("Err = %v, want mention of the panic", results[1].Err)
	}
	if results[1].Name != "PanicStub" {
		t.Errorf("failed result Name = %q, want PanicStub", results[1].Name)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("sibling %d aborted: %v", i, results[i].Err)
		}
		if results[i].Name != "BTree" || results[i].Cycles == 0 {
			t.Errorf("sibling %d: got %q/%d cycles, want a complete BTree run",
				i, results[i].Name, results[i].Cycles)
		}
	}
	if !reflect.DeepEqual(results[0], results[2]) {
		t.Error("identical sibling specs produced different results alongside a panic")
	}
}

// TestProgressEvents: the callback sees every spec exactly once, with
// Completed counting 1..Total and Index covering the input positions.
func TestProgressEvents(t *testing.T) {
	specs := testGrid(t)
	var events []Progress
	mustExec(t, specs, Workers(4), OnProgress(func(p Progress) {
		events = append(events, p) // serialized by the engine, no lock needed
	}))
	if len(events) != len(specs) {
		t.Fatalf("got %d progress events, want %d", len(events), len(specs))
	}
	seen := make([]bool, len(specs))
	for i, ev := range events {
		if ev.Completed != i+1 || ev.Total != len(specs) {
			t.Errorf("event %d: Completed/Total = %d/%d, want %d/%d",
				i, ev.Completed, ev.Total, i+1, len(specs))
		}
		if ev.Index < 0 || ev.Index >= len(specs) || seen[ev.Index] {
			t.Fatalf("event %d: bad or repeated Index %d", i, ev.Index)
		}
		seen[ev.Index] = true
		if ev.Err != nil {
			t.Errorf("event %d: unexpected Err %v", i, ev.Err)
		}
	}
}

// TestRunnerRunAllCacheAndDedup: duplicate specs in a batch run once,
// batches populate the cache for later Get calls, and input order is
// preserved.
func TestRunnerRunAllCacheAndDedup(t *testing.T) {
	w, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(testEPC)
	r.Seed = 7
	r.Jobs = 4
	var runs atomic.Int64
	r.Progress = func(Progress) { runs.Add(1) } // one event per actual run

	spec := Spec{Workload: w, Mode: sgx.LibOS, Size: workloads.Low}
	other := Spec{Workload: w, Mode: sgx.Vanilla, Size: workloads.Low}
	results, err := r.RunAll([]Spec{spec, other, spec, spec})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("batch ran %d specs, want 2 (duplicates deduped)", got)
	}
	if results[0] != results[2] || results[0] != results[3] {
		t.Error("duplicate specs did not share one cached Result")
	}
	if results[1].Mode != sgx.Vanilla || results[0].Mode != sgx.LibOS {
		t.Errorf("input order lost: got modes %v, %v", results[0].Mode, results[1].Mode)
	}

	cached, err := r.Get(w, sgx.LibOS, workloads.Low)
	if err != nil {
		t.Fatal(err)
	}
	if cached != results[0] {
		t.Error("Get after RunAll re-ran instead of hitting the cache")
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("Get re-ran a cached spec (%d runs total)", got)
	}
}

// TestRunnerRunAllErrorContract: a spec's own failure lands in its
// Result.Err (the error return is engine-level only), siblings still
// complete, and failed cells are not cached (a retry re-runs them).
func TestRunnerRunAllErrorContract(t *testing.T) {
	w, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(testEPC)
	r.Seed = 7
	r.Jobs = 2
	good := Spec{Workload: w, Mode: sgx.Vanilla, Size: workloads.Low}
	bad := Spec{Workload: panicWorkload{}, Mode: sgx.Native, Size: workloads.Low}
	results, err := r.RunAll([]Spec{good, bad})
	if err != nil {
		t.Fatalf("per-spec failure leaked into the engine-level error: %v", err)
	}
	if results[0] == nil || results[0].Err != nil {
		t.Fatalf("sibling did not complete cleanly: %+v", results[0])
	}
	if results[1] == nil || results[1].Err == nil {
		t.Fatal("panicked spec's Result.Err not set")
	}
	if !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Errorf("Result.Err = %v, want mention of the panic", results[1].Err)
	}

	// The failure must not be cached: a second batch re-runs it.
	var runs atomic.Int64
	r.Progress = func(Progress) { runs.Add(1) }
	again, err := r.RunAll([]Spec{bad})
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Err == nil {
		t.Fatal("retry of the failed spec should fail again")
	}
	if runs.Load() != 1 {
		t.Error("failed spec was cached instead of re-run")
	}
}

// TestRunnerRunPromotesNothing: Runner.Run returns the Result with its
// own Err set rather than promoting it into the error return.
func TestRunnerRunPromotesNothing(t *testing.T) {
	r := NewRunner(testEPC)
	bad := Spec{Workload: panicWorkload{}, Mode: sgx.Native, Size: workloads.Low, Seed: 7}
	res, err := r.Run(bad)
	if err != nil {
		t.Fatalf("engine-level error for a per-spec failure: %v", err)
	}
	if res == nil || res.Err == nil {
		t.Fatal("failed spec's Result.Err not set")
	}
}

// TestWithContextCancellation: once the context is cancelled, no new
// spec starts — unstarted specs complete immediately with the context
// error in their Result.Err — and the batch reports the context error
// as its engine-level error.
func TestWithContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch starts
	specs := testGrid(t)
	results, err := execBatch(specs, Workers(2), WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("engine error = %v, want context.Canceled", err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(results), len(specs))
	}
	for i, res := range results {
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("spec %d: Err = %v, want context.Canceled", i, res.Err)
		}
	}

	// An uncancelled context changes nothing.
	clean, err := execBatch(specs[:1], WithContext(context.Background()))
	if err != nil || clean[0].Err != nil {
		t.Fatalf("live-context batch failed: %v / %v", err, clean[0].Err)
	}
}

// TestRetryBackoffHonorsCancellation pins the ctxflow fix: a cancelled
// batch context must abort the retry backoff sleep immediately. Before
// the fix, runWithRetry slept the raw exponential schedule — with an
// hour-scale backoff, a drained worker sat pinned long after its
// context died. The spec fails transiently on every attempt
// (TransitionRate 1), so without cancellation this test would block
// for the full hour backoff; the deadline below is its regression
// tripwire.
func TestRetryBackoffHonorsCancellation(t *testing.T) {
	w, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Workload: w, Mode: sgx.Native, Size: workloads.Low, EPCPages: testEPC, Seed: 7}
	spec.Chaos = &chaos.Config{Seed: 5, TransitionFault: true, TransitionRate: 1}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []Result, 1)
	go func() {
		res, _ := execBatch([]Spec{spec}, Workers(1), Retry(3), RetryBackoff(time.Hour), WithContext(ctx))
		done <- res
	}()
	// Let the first attempt start, then cancel mid-backoff. The first
	// simulated run takes well under the 10s guard; the backoff after
	// its transient failure is where the batch must notice the cancel.
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case res := <-done:
		r := res[0]
		if r.Err == nil || !sgx.IsTransient(r.Err) {
			t.Fatalf("Err = %v, want the transient fault from the aborted retry loop", r.Err)
		}
		if r.Attempts < 1 || r.Attempts > 3 {
			t.Errorf("Attempts = %d, want >= 1 and < the full retry budget of 4", r.Attempts)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch still blocked 10s after cancellation; retry backoff is not context-aware")
	}
}
