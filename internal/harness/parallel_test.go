package harness

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// testGrid is a small but mixed batch: two workloads across three
// modes and two sizes, at the test EPC so paging paths are exercised.
func testGrid(t *testing.T) []Spec {
	t.Helper()
	btree, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	memcached, err := suite.ByName("Memcached")
	if err != nil {
		t.Fatal(err)
	}
	specs := GridSpecs(
		[]workloads.Workload{btree, memcached},
		[]sgx.Mode{sgx.Vanilla, sgx.Native, sgx.LibOS},
		[]workloads.Size{workloads.Low, workloads.Medium},
	)
	for i := range specs {
		specs[i].EPCPages = testEPC
		specs[i].Seed = 7
	}
	return specs
}

// TestParallelMatchesSerial is the determinism contract: a parallel
// RunAll batch must be byte-identical to running the same specs
// serially, in input order.
func TestParallelMatchesSerial(t *testing.T) {
	specs := testGrid(t)
	serial := RunAll(specs, Workers(1))
	parallel := RunAll(specs, Workers(4))
	if len(serial) != len(specs) || len(parallel) != len(specs) {
		t.Fatalf("lengths: serial %d, parallel %d, want %d", len(serial), len(parallel), len(specs))
	}
	for i := range specs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("spec %d: unexpected errors %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("spec %d (%s/%v/%v): parallel result differs from serial",
				i, serial[i].Name, specs[i].Mode, specs[i].Size)
		}
	}
}

// panicWorkload satisfies workloads.Workload but panics when run.
type panicWorkload struct{}

func (panicWorkload) Name() string     { return "PanicStub" }
func (panicWorkload) Property() string { return "always panics" }
func (panicWorkload) NativePort() bool { return true }
func (panicWorkload) DefaultParams(epcPages int, s workloads.Size) workloads.Params {
	return workloads.Params{Knobs: map[string]int64{}}
}
func (panicWorkload) FootprintPages(p workloads.Params) (int, error) { return 8, nil }
func (panicWorkload) Setup(ctx *workloads.Ctx) error        { return nil }
func (panicWorkload) Run(ctx *workloads.Ctx) (workloads.Output, error) {
	panic("injected failure")
}

// TestPanicIsolation: a panicking spec must surface as a failed Result
// with Err set, without aborting or corrupting its siblings.
func TestPanicIsolation(t *testing.T) {
	w, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	good := Spec{Workload: w, Mode: sgx.Native, Size: workloads.Low, EPCPages: testEPC, Seed: 7}
	bad := Spec{Workload: panicWorkload{}, Mode: sgx.Native, Size: workloads.Low, EPCPages: testEPC, Seed: 7}
	results := RunAll([]Spec{good, bad, good}, Workers(3))

	if results[1].Err == nil {
		t.Fatal("panicking spec: want Err set, got nil")
	}
	if !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Errorf("Err = %v, want mention of the panic", results[1].Err)
	}
	if results[1].Name != "PanicStub" {
		t.Errorf("failed result Name = %q, want PanicStub", results[1].Name)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("sibling %d aborted: %v", i, results[i].Err)
		}
		if results[i].Name != "BTree" || results[i].Cycles == 0 {
			t.Errorf("sibling %d: got %q/%d cycles, want a complete BTree run",
				i, results[i].Name, results[i].Cycles)
		}
	}
	if !reflect.DeepEqual(results[0], results[2]) {
		t.Error("identical sibling specs produced different results alongside a panic")
	}
}

// TestProgressEvents: the callback sees every spec exactly once, with
// Completed counting 1..Total and Index covering the input positions.
func TestProgressEvents(t *testing.T) {
	specs := testGrid(t)
	var events []Progress
	RunAll(specs, Workers(4), OnProgress(func(p Progress) {
		events = append(events, p) // serialized by RunAll, no lock needed
	}))
	if len(events) != len(specs) {
		t.Fatalf("got %d progress events, want %d", len(events), len(specs))
	}
	seen := make([]bool, len(specs))
	for i, ev := range events {
		if ev.Completed != i+1 || ev.Total != len(specs) {
			t.Errorf("event %d: Completed/Total = %d/%d, want %d/%d",
				i, ev.Completed, ev.Total, i+1, len(specs))
		}
		if ev.Index < 0 || ev.Index >= len(specs) || seen[ev.Index] {
			t.Fatalf("event %d: bad or repeated Index %d", i, ev.Index)
		}
		seen[ev.Index] = true
		if ev.Err != nil {
			t.Errorf("event %d: unexpected Err %v", i, ev.Err)
		}
	}
}

// TestRunnerRunAllCacheAndDedup: duplicate specs in a batch run once,
// batches populate the cache for later Get calls, and input order is
// preserved.
func TestRunnerRunAllCacheAndDedup(t *testing.T) {
	w, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(testEPC)
	r.Seed = 7
	r.Jobs = 4
	var runs atomic.Int64
	r.Progress = func(Progress) { runs.Add(1) } // one event per actual run

	spec := Spec{Workload: w, Mode: sgx.LibOS, Size: workloads.Low}
	other := Spec{Workload: w, Mode: sgx.Vanilla, Size: workloads.Low}
	results, err := r.RunAll([]Spec{spec, other, spec, spec})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("batch ran %d specs, want 2 (duplicates deduped)", got)
	}
	if results[0] != results[2] || results[0] != results[3] {
		t.Error("duplicate specs did not share one cached Result")
	}
	if results[1].Mode != sgx.Vanilla || results[0].Mode != sgx.LibOS {
		t.Errorf("input order lost: got modes %v, %v", results[0].Mode, results[1].Mode)
	}

	cached, err := r.Get(w, sgx.LibOS, workloads.Low)
	if err != nil {
		t.Fatal(err)
	}
	if cached != results[0] {
		t.Error("Get after RunAll re-ran instead of hitting the cache")
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("Get re-ran a cached spec (%d runs total)", got)
	}
}

// TestRunnerRunAllErrorContract: failures surface as the first
// input-order error, siblings still complete, and failed cells are not
// cached (a retry re-runs them).
func TestRunnerRunAllErrorContract(t *testing.T) {
	w, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(testEPC)
	r.Seed = 7
	r.Jobs = 2
	good := Spec{Workload: w, Mode: sgx.Vanilla, Size: workloads.Low}
	bad := Spec{Workload: panicWorkload{}, Mode: sgx.Native, Size: workloads.Low}
	results, err := r.RunAll([]Spec{good, bad})
	if err == nil {
		t.Fatal("want the batch to report the panicked spec's error")
	}
	if results[0] == nil || results[0].Err != nil {
		t.Fatalf("sibling did not complete cleanly: %+v", results[0])
	}
	if results[1] == nil || !errors.Is(err, results[1].Err) {
		t.Errorf("returned error %v does not match the failed result's Err", err)
	}

	// The failure must not be cached: a second batch re-runs it.
	var runs atomic.Int64
	r.Progress = func(Progress) { runs.Add(1) }
	if _, err := r.RunAll([]Spec{bad}); err == nil {
		t.Fatal("retry of the failed spec should fail again")
	}
	if runs.Load() != 1 {
		t.Error("failed spec was cached instead of re-run")
	}
}
