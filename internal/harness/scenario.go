package harness

import (
	"fmt"

	"sgxgauge/internal/epc"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/scenario"
)

// NewScenarioSpec builds a runnable spec for the named scenario with
// its default cast of n enclaves (n <= 0 means the scenario's
// preferred count). The spec flows through RunAll, the cache, the
// store and the cluster exactly like a workload spec.
func NewScenarioSpec(name string, n int) (Spec, error) {
	sp, err := scenario.New(name, n)
	if err != nil {
		return Spec{}, err
	}
	return Spec{Scenario: &sp, Mode: sgx.Native}, nil
}

// scenarioSchedSeed decorrelates the scheduler's quantum stream from
// the machine seed derived from the same spec seed.
const scenarioSchedSeed = 0x7363686564 // "sched"

// maxElapsed returns the furthest simulated clock across the
// scenario's environments — the wall-clock of the interleaved phase,
// since every enclave ran on the same time-shared machine.
func maxElapsed(envs []*sgx.Env) uint64 {
	var max uint64
	for _, env := range envs {
		if e := env.Elapsed(); e > max {
			max = e
		}
	}
	return max
}

// runScenario executes a multi-enclave scenario spec on a fresh
// machine: the engine-primitive sibling of the single-workload path in
// runOne. The scenario's enclaves are built in the startup window
// (like the LibOS boot the paper excludes), then their programs run
// interleaved under the deterministic quantum scheduler as the
// measured window. The Result carries the scenario's name and Output,
// so everything downstream — result wire encoding, the store, the
// cluster — handles it with zero special cases.
func runScenario(spec Spec) (*Result, error) {
	sp := spec.Scenario
	if spec.Workload != nil {
		return nil, fmt.Errorf("harness: spec has both a workload and a scenario")
	}
	if spec.Mode != sgx.Native {
		return nil, fmt.Errorf("harness: scenario specs run in Native mode, got %v", spec.Mode)
	}
	if err := sp.Validate(); err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	desc, ok := scenario.Lookup(sp.Name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown scenario %q (valid: %s)", sp.Name, workloads.ValidScenarioList())
	}

	var cfg sgx.Config
	if spec.Machine != nil {
		cfg = *spec.Machine
	}
	cfg.EPCPages = spec.EPCPages
	cfg.Seed = uint64(spec.Seed) ^ 0x5067617567 // "gauge", same derivation as runOne
	cfg.Switchless = spec.Switchless
	cfg.Chaos = spec.Chaos
	m := sgx.NewMachine(cfg)
	if spec.Hooks.OnMachine != nil {
		spec.Hooks.OnMachine(m)
	}

	// Build phase: launch every enclave of the cast. A fault here
	// (chaos ballooning away the EPC mid-build) fails the spec before
	// anything is measured, like a failed LibOS boot.
	var inst *scenario.Instance
	var buildErr error
	if perr := sgx.Protect(func() {
		inst, buildErr = desc.Build(m, *sp, spec.Seed)
	}); perr != nil {
		buildErr = perr
	}
	if buildErr != nil {
		return nil, fmt.Errorf("harness: building scenario %s: %w", sp.Name, buildErr)
	}
	if len(inst.Envs) == 0 || len(inst.Envs) != len(inst.Programs) {
		return nil, fmt.Errorf("harness: scenario %s built %d envs, %d programs", sp.Name, len(inst.Envs), len(inst.Programs))
	}
	if spec.Timeline > 0 {
		m.EPC.EnableTimeline(&inst.Envs[0].Main.Clock, spec.Timeline)
	}

	res := &Result{
		Name:            sp.Name,
		Mode:            sgx.Native,
		Params:          workloads.Params{Size: spec.Size, Threads: len(inst.Envs)},
		Attempts:        1,
		StartupCycles:   maxElapsed(inst.Envs),
		StartupCounters: m.Counters.Snapshot(),
	}

	// Measured window: all programs interleave on the shared machine
	// under the seed-derived quantum scheduler, then the scenario
	// collects its output. Faults (an enclave aborting under chaos,
	// the scheduler unwinding its co-residents) surface as this spec's
	// error with partial measurements attached.
	var out workloads.Output
	var runErr error
	if perr := sgx.Protect(func() {
		sgx.Interleave(uint64(spec.Seed)^scenarioSchedSeed, inst.Quantum, inst.Envs, inst.Programs)
		out, runErr = inst.Finish()
	}); perr != nil {
		runErr = perr
	}
	if runErr != nil {
		res.Err = fmt.Errorf("harness: running scenario %s: %w", sp.Name, runErr)
		res.Cycles = maxElapsed(inst.Envs) - res.StartupCycles
		res.TotalCounters = m.Counters.Snapshot()
		res.Counters = res.TotalCounters.Sub(res.StartupCounters)
		res.Timeline = m.EPC.Timeline()
		return res, res.Err
	}

	res.Output = out
	res.Cycles = maxElapsed(inst.Envs) - res.StartupCycles
	res.TotalCounters = m.Counters.Snapshot()
	res.Counters = res.TotalCounters.Sub(res.StartupCounters)
	res.Timeline = m.EPC.Timeline()
	res.OpStats = map[epc.Op]epc.OpStats{
		epc.OpAlloc: m.EPC.OpStatsFor(epc.OpAlloc),
		epc.OpEWB:   m.EPC.OpStatsFor(epc.OpEWB),
		epc.OpELDU:  m.EPC.OpStatsFor(epc.OpELDU),
		epc.OpFault: m.EPC.OpStatsFor(epc.OpFault),
	}
	return res, nil
}
