package harness

import (
	"fmt"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
)

// MultiEnclavePoint is one point of the multi-enclave interference
// experiment: the paper notes that "multiple instances of an enclave
// with a small memory footprint may also cause a number of EPC
// faults" because every instance is fully loaded into the shared EPC
// (§3.2.1). The experiment runs K identical enclaves, each with a
// footprint well below the EPC, interleaving their accesses; once the
// *sum* of footprints crosses the EPC, faults and run time explode
// even though no single instance exceeds it.
type MultiEnclavePoint struct {
	// Instances is K, the number of concurrently active enclaves.
	Instances int
	// CombinedFootprint is K x the per-instance footprint, in pages.
	CombinedFootprint int
	// CyclesPerInstance is the per-instance run time.
	CyclesPerInstance uint64
	// PageFaults and EPCEvictions are machine-wide totals.
	PageFaults   uint64
	EPCEvictions uint64
}

// MultiEnclave runs the interference sweep on one machine per point.
// Each instance's footprint is fixed at ~35% of the EPC, so one or two
// instances fit while four or more thrash. The points are independent
// machines, so they run concurrently on the runner's worker pool;
// results keep the input order.
func (r *Runner) MultiEnclave(counts []int) ([]MultiEnclavePoint, error) {
	epcPages := r.EPCPages
	if epcPages == 0 {
		epcPages = sgx.DefaultEPCPages
	}
	footprint := epcPages * 35 / 100
	out := make([]MultiEnclavePoint, len(counts))
	errs := make([]error, len(counts))
	forEach(len(counts), r.Jobs, func(i int) {
		defer func() {
			if rec := recover(); rec != nil {
				errs[i] = fmt.Errorf("harness: %d-enclave point panicked: %v", counts[i], rec)
			}
		}()
		out[i], errs[i] = runMultiEnclave(epcPages, footprint, counts[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runMultiEnclave boots one machine hosting k enclaves and interleaves
// strided sweeps over each enclave's heap for a fixed number of
// rounds, modelling k co-scheduled secure services.
func runMultiEnclave(epcPages, footprintPages, k int) (MultiEnclavePoint, error) {
	if k < 1 {
		return MultiEnclavePoint{}, fmt.Errorf("harness: need at least one enclave, got %d", k)
	}
	m := sgx.NewMachine(sgx.Config{EPCPages: epcPages})
	type instance struct {
		env  *sgx.Env
		heap uint64
	}
	insts := make([]instance, k)
	for i := range insts {
		env := m.NewEnv(sgx.Native)
		size := footprintPages + 8
		if _, err := env.LaunchEnclave(2, size); err != nil {
			return MultiEnclavePoint{}, fmt.Errorf("harness: enclave %d: %w", i, err)
		}
		heap, err := env.Alloc(uint64(footprintPages)*mem.PageSize, mem.PageSize)
		if err != nil {
			return MultiEnclavePoint{}, err
		}
		insts[i] = instance{env: env, heap: heap}
	}

	start := m.Counters.Snapshot()
	const rounds = 6
	const touchesPerRound = 4 // touches per page per round
	var total uint64
	for round := 0; round < rounds; round++ {
		for i := range insts {
			env := insts[i].env
			tr := env.Main
			before := tr.Clock.Cycles()
			tr.ECall(func() {
				for p := 0; p < footprintPages; p++ {
					base := insts[i].heap + uint64(p)*mem.PageSize
					for touch := 0; touch < touchesPerRound; touch++ {
						tr.WriteU64(base+uint64(touch)*512, uint64(round*p+touch))
					}
				}
			})
			total += tr.Clock.Cycles() - before
		}
	}
	delta := m.Counters.Snapshot().Sub(start)
	return MultiEnclavePoint{
		Instances:         k,
		CombinedFootprint: k * footprintPages,
		CyclesPerInstance: total / uint64(k),
		PageFaults:        delta.Get(perf.PageFaults),
		EPCEvictions:      delta.Get(perf.EPCEvictions),
	}, nil
}

// RenderMultiEnclave renders the sweep.
func RenderMultiEnclave(points []MultiEnclavePoint, epcPages int) string {
	t := Table{
		Title:  "Multi-enclave interference (per-instance footprint ~35% of the EPC)",
		Header: []string{"Enclaves", "Combined footprint", "Cycles/instance", "Page faults", "EPC evictions"},
	}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.Instances),
			fmt.Sprintf("%d pages (%.0f%% EPC)", p.CombinedFootprint, 100*float64(p.CombinedFootprint)/float64(epcPages)),
			fc(float64(p.CyclesPerInstance)),
			fc(float64(p.PageFaults)),
			fc(float64(p.EPCEvictions)),
		)
	}
	t.AddNote("small enclaves interfere once their combined footprint crosses the EPC (paper §3.2.1)")
	return t.String()
}
