package harness

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// TestResultWireRoundTrip: a real run's Result survives
// Encode/Decode bit-for-bit — every counter, op-stat and output
// field — so a result served from the persistent store or shipped
// back by a cluster worker is indistinguishable from a fresh run.
func TestResultWireRoundTrip(t *testing.T) {
	r := NewRunner(256)
	r.Seed = 7
	for _, mode := range []sgx.Mode{sgx.Vanilla, sgx.LibOS} {
		res, err := r.Run(Spec{Workload: suite.Empty(), Mode: mode, Size: workloads.Low, Timeline: 64})
		if err != nil || res.Err != nil {
			t.Fatalf("%v run: %v / %v", mode, err, res.Err)
		}
		data, err := EncodeResult(res)
		if err != nil {
			t.Fatalf("%v encode: %v", mode, err)
		}
		back, err := DecodeResult(data)
		if err != nil {
			t.Fatalf("%v decode: %v", mode, err)
		}
		if want := scrubEmpty(res); !reflect.DeepEqual(want, back) {
			t.Errorf("%v: decoded result differs:\n got %#v\nwant %#v", mode, back, want)
		}
		// Canonical: re-encoding the decoded result reproduces the bytes.
		again, err := EncodeResult(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%v: re-encoding is not canonical:\n %s\n %s", mode, data, again)
		}
	}
}

// scrubEmpty maps empty collections to nil, the canonical form the
// wire encoding preserves (absence and emptiness are equivalent).
func scrubEmpty(r *Result) *Result {
	c := *r
	if len(c.Params.Knobs) == 0 {
		c.Params.Knobs = nil
	}
	if len(c.Output.Extra) == 0 {
		c.Output.Extra = nil
	}
	if len(c.Timeline) == 0 {
		c.Timeline = nil
	}
	if len(c.OpStats) == 0 {
		c.OpStats = nil
	}
	return &c
}

// TestResultWireError: a failed result's error flattens to its
// message and comes back as a plain error.
func TestResultWireError(t *testing.T) {
	res := &Result{Name: "X", Mode: sgx.Native, Err: errors.New("boom"), Attempts: 2}
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Err == nil || back.Err.Error() != "boom" {
		t.Fatalf("decoded error = %v, want boom", back.Err)
	}
	if back.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", back.Attempts)
	}
}

// TestDecodeResultRejectsForeign: entries naming counters, operations
// or fields this build does not define are decode errors (the store
// quarantines them), never silently misfiled data.
func TestDecodeResultRejectsForeign(t *testing.T) {
	cases := []struct{ name, data string }{
		{"unknown-field", `{"name":"X","mode":"Native","params":{"size":"Low"},"cycles":1,"output":{},"attempts":1,"bogus":1}`},
		{"unknown-counter", `{"name":"X","mode":"Native","params":{"size":"Low"},"cycles":1,"counters":{"no-such-event":3},"output":{},"attempts":1}`},
		{"unknown-op", `{"name":"X","mode":"Native","params":{"size":"Low"},"cycles":1,"output":{},"op_stats":{"sgx_frobnicate":{}},"attempts":1}`},
		{"not-json", `{"name":`},
	}
	for _, c := range cases {
		if _, err := DecodeResult([]byte(c.data)); err == nil {
			t.Errorf("%s: decoded without error", c.name)
		}
	}
}
