package harness

import (
	"strings"
	"testing"

	"sgxgauge/internal/chaos"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

func chaosBaseSpec(t *testing.T) Spec {
	t.Helper()
	w, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	return Spec{Workload: w, Mode: sgx.Native, Size: workloads.Low, EPCPages: testEPC, Seed: 7}
}

// TestChaosSweepDeterministic: the whole sweep — results, counters,
// and the rendered table — must be byte-identical across repeats and
// worker counts.
func TestChaosSweepDeterministic(t *testing.T) {
	base := chaosBaseSpec(t)
	template := chaos.Config{Seed: 11}.EnableAll()
	rates := []float64{0, 0.001, 0.01}

	pa, err := ChaosSweep(base, template, rates, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ChaosSweep(base, template, rates, Workers(3))
	if err != nil {
		t.Fatal(err)
	}
	a := RenderChaosTable(pa)
	b := RenderChaosTable(pb)
	if a != b {
		t.Fatalf("same-seed sweeps differ:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}
	if !strings.Contains(a, "ok") {
		t.Errorf("table has no clean baseline row:\n%s", a)
	}
}

// TestChaosSweepDegrades: injected faults must be visible in the
// fault report, and the rate-0 baseline must stay clean.
func TestChaosSweepDegrades(t *testing.T) {
	base := chaosBaseSpec(t)
	template := chaos.Config{Seed: 11}.EnableAll()
	points, err := ChaosSweep(base, template, []float64{0, 0.01}, Workers(2))
	if err != nil {
		t.Fatal(err)
	}

	clean := points[0].Result
	if clean.Err != nil {
		t.Fatalf("baseline failed: %v", clean.Err)
	}
	if f := clean.Faults(); f != (FaultReport{}) {
		t.Errorf("baseline reports injected faults: %+v", f)
	}

	chaotic := points[1].Result
	f := chaotic.Faults()
	if f.InjectedAEXs == 0 && f.EPCResizes == 0 && f.TransitionFaults == 0 && f.IntegrityAborts == 0 {
		t.Errorf("rate 0.01 injected nothing: %+v", f)
	}
	// Whatever happened, the partial measurements survive.
	if chaotic.Cycles == 0 {
		t.Error("chaotic run carries no cycle measurement")
	}
}

// TestRetryExhaustsOnPermanentTransient: at transition rate 1 every
// reseeded attempt fails, so the engine uses all attempts and reports
// the transient error.
func TestRetryExhaustsOnPermanentTransient(t *testing.T) {
	spec := chaosBaseSpec(t)
	spec.Chaos = &chaos.Config{Seed: 5, TransitionFault: true, TransitionRate: 1}
	res := mustExec(t, []Spec{spec}, Workers(1), Retry(2))[0]
	if res.Err == nil {
		t.Fatal("run succeeded at transition rate 1")
	}
	if !sgx.IsTransient(res.Err) {
		t.Fatalf("Err = %v, want transient", res.Err)
	}
	if res.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (1 + 2 retries)", res.Attempts)
	}
}

// TestNoRetryOnAbort: integrity aborts are not transient; the engine
// must not burn retries on them.
func TestNoRetryOnAbort(t *testing.T) {
	spec := chaosBaseSpec(t)
	spec.Chaos = &chaos.Config{Seed: 5, MemTamper: true, TamperRate: 1}
	res := mustExec(t, []Spec{spec}, Workers(1), Retry(3))[0]
	if res.Err == nil {
		t.Fatal("run survived full-rate tampering")
	}
	if !sgx.IsAbort(res.Err) {
		t.Fatalf("Err = %v, want abort", res.Err)
	}
	if res.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 (aborts are not retryable)", res.Attempts)
	}
	// The partial result still carries the measurements up to the
	// abort.
	if res.Cycles == 0 || res.TotalCounters.Get(0) == 0 {
		t.Error("aborted run carries no partial measurements")
	}
}

// TestRetryReseedsEventuallySucceeds: with a moderate transition rate
// an attempt's failure is not destiny — some reseeded retry gets
// through, and the result is the successful run's.
func TestRetryReseedsEventuallySucceeds(t *testing.T) {
	w, err := suite.ByName("OpenSSL")
	if err != nil {
		t.Fatal(err)
	}
	// OpenSSL in Native mode does a handful of ECALLs, so at rate
	// 0.05 most attempts succeed; generous retries make the overall
	// success deterministic in practice across seeds.
	spec := Spec{Workload: w, Mode: sgx.Native, Size: workloads.Low, EPCPages: testEPC, Seed: 7}
	spec.Chaos = &chaos.Config{Seed: 1, TransitionFault: true, TransitionRate: 0.05}
	res := mustExec(t, []Spec{spec}, Workers(1), Retry(10))[0]
	if res.Err != nil {
		t.Fatalf("no attempt succeeded: %v (attempts %d)", res.Err, res.Attempts)
	}
	if res.Attempts < 1 || res.Attempts > 11 {
		t.Errorf("Attempts = %d out of range", res.Attempts)
	}
}
