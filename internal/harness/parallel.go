package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// Progress reports one completed spec to a RunAll progress callback.
// Callbacks are serialized (never invoked concurrently), so they may
// write to a terminal without their own locking.
type Progress struct {
	// Completed is the number of specs finished so far, including
	// this one; Total is the batch size.
	Completed int
	Total     int
	// Index is this spec's position in the input slice.
	Index int
	// Name and Mode identify the spec.
	Name string
	Mode sgx.Mode
	// Wall is the host wall-clock time this spec took. It is
	// reporting-only and never part of a Result, so results stay
	// bit-for-bit deterministic.
	Wall time.Duration
	// Err is non-nil when the spec failed or panicked.
	Err error
	// Cached marks a spec served from the runner's result cache
	// without executing. Such events are emitted only when the batch
	// opts in via ProgressCached.
	Cached bool
}

type engineOpts struct {
	workers        int
	progress       func(Progress)
	progressCached bool
	retries        int
	backoff        time.Duration
	clock          Clock
	ctx            context.Context
	exec           func(Spec) (*Result, error)
}

// Option configures a Runner.RunAll batch (and the Run/Get wrappers
// over it).
type Option func(*engineOpts)

// Workers sets the worker-pool size; n <= 0 selects GOMAXPROCS.
func Workers(n int) Option {
	return func(o *engineOpts) { o.workers = n }
}

// OnProgress registers fn to be called after each spec completes.
func OnProgress(fn func(Progress)) Option {
	return func(o *engineOpts) { o.progress = fn }
}

// ProgressCached makes RunAll emit a progress event (Cached: true)
// for every spec it serves straight from the result cache, before the
// engine batch starts. The default — cache hits are silent — is kept
// for interactive progress bars, where "N specs ran" should mean N
// simulations; journaling consumers opt in so a warm resume still
// records every task as it lands.
func ProgressCached() Option {
	return func(o *engineOpts) { o.progressCached = true }
}

// Retry re-runs a spec up to n extra times when it fails with a
// transient machine fault (an injected ECALL/OCALL transition
// failure). Each retry derives a fresh chaos seed via
// chaos.Config.WithAttempt, so the retried run faces new — but still
// deterministic — adversity rather than deterministically replaying
// the fault that killed it. Non-transient failures are never retried.
func Retry(n int) Option {
	return func(o *engineOpts) {
		if n > 0 {
			o.retries = n
		}
	}
}

// RetryBackoff sets the base delay slept before each retry; the delay
// doubles with every subsequent attempt (exponential backoff). The
// sleep is host wall-clock only — it never touches simulated time, so
// results remain bit-for-bit deterministic regardless of backoff.
func RetryBackoff(d time.Duration) Option {
	return func(o *engineOpts) {
		if d > 0 {
			o.backoff = d
		}
	}
}

// WithClock sets the wall clock used to stamp Progress.Wall (default
// RealClock). Tests inject a fake so progress events are reproducible.
func WithClock(c Clock) Option {
	return func(o *engineOpts) {
		if c != nil {
			o.clock = c
		}
	}
}

// WithContext binds the batch to ctx: once ctx is cancelled, no new
// spec starts (unstarted specs complete immediately with ctx's error
// in their Result.Err) and the batch returns ctx's error as its
// engine-level error. A spec already executing runs to completion —
// simulated machines are not interruptible — so cancellation bounds
// the remaining work at one in-flight run per worker.
func WithContext(ctx context.Context) Option {
	return func(o *engineOpts) {
		if ctx != nil {
			o.ctx = ctx
		}
	}
}

// runBatch is the parallel engine every harness entry point feeds:
// it executes every spec on the worker pool, booting one independent
// simulated machine per spec in its own goroutine. Results are
// returned in input order regardless of completion order, and each
// spec's deterministic seeding is untouched, so a batch is
// bit-for-bit identical to running the same specs serially. A spec
// that errors or panics yields a Result with Err set instead of
// aborting its siblings; the error return is engine-level only
// (context cancellation).
func runBatch(specs []Spec, o engineOpts) ([]Result, error) {
	if o.clock == nil {
		o.clock = RealClock{}
	}
	ctx := o.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(specs))
	var mu sync.Mutex
	completed := 0
	forEach(len(specs), o.workers, func(i int) {
		start := o.clock.Now()
		if err := ctx.Err(); err != nil {
			results[i] = failedResult(specs[i], err)
		} else if o.exec != nil && specs[i].Hooks.empty() {
			// Remote execution: the executor's Result already carries
			// the spec's own failure and attempt count; a transport
			// failure (nil result) becomes this spec's error.
			res, err := o.exec(specs[i])
			if res != nil {
				results[i] = *res
				if results[i].Err == nil && err != nil {
					results[i].Err = err
				}
			} else {
				if err == nil {
					err = fmt.Errorf("harness: remote executor returned no result")
				}
				results[i] = failedResult(specs[i], err)
			}
			if results[i].Attempts == 0 {
				results[i].Attempts = 1
			}
		} else {
			res, attempts, err := runWithRetry(ctx, specs[i], &o)
			if res != nil {
				results[i] = *res
				results[i].Err = err
			} else {
				results[i] = failedResult(specs[i], err)
			}
			results[i].Attempts = attempts
		}
		wall := o.clock.Since(start)
		if o.progress != nil {
			mu.Lock()
			completed++
			o.progress(Progress{
				Completed: completed,
				Total:     len(specs),
				Index:     i,
				Name:      results[i].Name,
				Mode:      specs[i].Mode,
				Wall:      wall,
				Err:       results[i].Err,
			})
			mu.Unlock()
		}
	})
	return results, ctx.Err()
}

// execBatch runs specs through the engine with per-call options and
// no cache — the in-package form ChaosSweep and tests use.
func execBatch(specs []Spec, opts ...Option) ([]Result, error) {
	o := engineOpts{clock: RealClock{}}
	for _, opt := range opts {
		opt(&o)
	}
	return runBatch(specs, o)
}

// runWithRetry executes the spec, re-running it on transient injected
// faults per the engine's retry policy. It returns the last attempt's
// result (possibly a partial, fault-bearing one), how many attempts
// ran, and the last error. Backoff sleeps are bound to the batch
// context: a cancelled batch stops waiting immediately and surfaces
// the last attempt's transient error instead of sleeping out the rest
// of an exponential schedule nobody will read.
func runWithRetry(ctx context.Context, spec Spec, o *engineOpts) (*Result, int, error) {
	var res *Result
	var err error
	for attempt := 0; ; attempt++ {
		s := spec
		if attempt > 0 && s.Chaos != nil {
			derived := s.Chaos.WithAttempt(attempt)
			s.Chaos = &derived
		}
		res, err = runSafe(s)
		if err == nil || attempt >= o.retries || !sgx.IsTransient(err) {
			return res, attempt + 1, err
		}
		if o.backoff > 0 && !sleepCtx(ctx, o.backoff<<uint(attempt)) {
			return res, attempt + 1, err
		}
	}
}

// sleepCtx blocks for d or until ctx is cancelled, reporting whether
// the full delay elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runSafe is Run with panic containment: one bad config surfaces as
// an error instead of killing the whole sweep.
func runSafe(spec Spec) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("harness: run panicked: %v", r)
		}
	}()
	return runOne(spec)
}

// failedResult echoes what identification the spec offers alongside
// the error.
func failedResult(spec Spec, err error) Result {
	name := spec.WorkloadName()
	if name == "" {
		name = "<nil>"
	}
	return Result{Name: name, Mode: spec.Mode, Err: err}
}

// forEach runs fn(i) for every i in [0, n) on up to workers
// goroutines (workers <= 0 selects GOMAXPROCS). It returns once all
// calls complete.
func forEach(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// MatrixSpecs returns the paper's main experiment grid — every suite
// workload in every supported mode at every input setting — as one
// RunAll batch. Native-mode cells are skipped for the four workloads
// without a Native port.
func MatrixSpecs() []Spec {
	return GridSpecs(suite.All(), []sgx.Mode{sgx.Vanilla, sgx.Native, sgx.LibOS}, workloads.Sizes())
}

// GridSpecs returns one Spec per (workload, mode, size) cell, in
// workload-major order, skipping Native cells for workloads without a
// Native port.
func GridSpecs(ws []workloads.Workload, modes []sgx.Mode, sizes []workloads.Size) []Spec {
	specs := make([]Spec, 0, len(ws)*len(modes)*len(sizes))
	for _, w := range ws {
		for _, mode := range modes {
			if mode == sgx.Native && !w.NativePort() {
				continue
			}
			for _, size := range sizes {
				specs = append(specs, Spec{Workload: w, Mode: mode, Size: size})
			}
		}
	}
	return specs
}
