package harness

import (
	"strings"
	"testing"
)

func TestParseComponent(t *testing.T) {
	for _, c := range Components() {
		got, err := ParseComponent(string(c))
		if err != nil || got != c {
			t.Errorf("ParseComponent(%q) = %v, %v", c, got, err)
		}
	}
	if _, err := ParseComponent("gpu"); err == nil {
		t.Error("unknown component accepted")
	}
}

func TestRecommendRanksSensibly(t *testing.T) {
	r := NewRunner(testEPC)
	r.Seed = 1

	rank := func(c Component) []string {
		recs, err := r.Recommend(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 10 {
			t.Fatalf("%d recommendations", len(recs))
		}
		names := make([]string, len(recs))
		for i, rec := range recs {
			names[i] = rec.Name
		}
		// Intensities must be sorted descending.
		for i := 1; i < len(recs); i++ {
			if recs[i].Intensity > recs[i-1].Intensity {
				t.Fatalf("%v ranking not sorted", c)
			}
		}
		return names
	}

	pos := func(names []string, w string) int {
		for i, n := range names {
			if n == w {
				return i
			}
		}
		t.Fatalf("%s missing from ranking", w)
		return -1
	}

	// Transition-heavy workloads must top the transitions ranking.
	trans := rank(ComponentTransitions)
	if p := pos(trans, "Lighttpd"); p > 3 {
		t.Errorf("Lighttpd ranked %d for transitions; it is the ECALL-intensive workload", p+1)
	}
	// The paging ranking must put an EPC-stressing data workload well
	// above the tiny-footprint Blockchain.
	epcRank := rank(ComponentEPC)
	if pos(epcRank, "Blockchain") < pos(epcRank, "BTree") {
		t.Error("Blockchain outranked BTree for EPC stress")
	}
	// Syscall ranking: the server workloads lead.
	sys := rank(ComponentSyscalls)
	if p := pos(sys, "Memcached"); p > 3 {
		t.Errorf("Memcached ranked %d for syscalls", p+1)
	}

	out := RenderRecommendations(ComponentEPC, mustRecs(t, r, ComponentEPC))
	if !strings.Contains(out, "Rank") {
		t.Error("render malformed")
	}
}

func mustRecs(t *testing.T, r *Runner, c Component) []Recommendation {
	t.Helper()
	recs, err := r.Recommend(c)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}
