package harness

import (
	"fmt"
	"strings"

	"sgxgauge/internal/chaos"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
)

// ChaosPoint is one cell of a chaos sweep: the fault rate the machine
// ran under plus the measured outcome at that intensity.
type ChaosPoint struct {
	// Rate is the per-opportunity fault probability (0 = clean
	// baseline).
	Rate float64
	// Result is the measured run, possibly partial when the run died
	// to an enclave abort.
	Result Result
}

// FaultReport extracts the injector-related counters from a result —
// the per-result fault report the chaos table is built from. Counts
// come from the whole machine lifetime, so faults injected during
// enclave launch are included.
type FaultReport struct {
	InjectedAEXs     uint64
	EPCResizes       uint64
	TransitionFaults uint64
	IntegrityAborts  uint64
}

// Faults returns the result's fault report.
func (r *Result) Faults() FaultReport {
	return FaultReport{
		InjectedAEXs:     r.TotalCounters.Get(perf.InjectedAEXs),
		EPCResizes:       r.TotalCounters.Get(perf.EPCResizes),
		TransitionFaults: r.TotalCounters.Get(perf.TransitionFaults),
		IntegrityAborts:  r.TotalCounters.Get(perf.IntegrityAborts),
	}
}

// ChaosSweep runs the base spec once per rate with the chaos template
// armed at that intensity (rate 0 leaves the injector off — the clean
// baseline). The template's per-class enables and seed carry over to
// every point; everything is deterministic, so a repeated sweep with
// the same inputs is byte-identical. Per-point failures (degraded or
// aborted runs are the whole point of a chaos sweep) live in each
// point's Result.Err; the error return is engine-level only (context
// cancellation via WithContext).
func ChaosSweep(base Spec, template chaos.Config, rates []float64, opts ...Option) ([]ChaosPoint, error) {
	specs := make([]Spec, len(rates))
	for i, r := range rates {
		s := base
		if r > 0 {
			cc := template
			cc.Rate = r
			s.Chaos = &cc
		} else {
			s.Chaos = nil
		}
		specs[i] = s
	}
	results, err := execBatch(specs, opts...)
	points := make([]ChaosPoint, len(rates))
	for i := range rates {
		points[i] = ChaosPoint{Rate: rates[i], Result: results[i]}
	}
	return points, err
}

// RenderChaosTable formats a sweep as the degradation table the chaos
// subcommand prints: one row per fault intensity with run time,
// slowdown against the sweep's rate-0 baseline, the fault report, and
// how the run ended. Output contains no wall-clock values, so a
// deterministic sweep renders to identical bytes.
func RenderChaosTable(points []ChaosPoint) string {
	var base uint64
	for _, p := range points {
		if p.Rate == 0 && p.Result.Err == nil {
			base = p.Result.Cycles
			break
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %14s %9s %8s %8s %8s %7s %8s  %s\n",
		"rate", "cycles", "slowdown", "aex", "resizes", "transit", "aborts", "attempts", "status")
	for _, p := range points {
		r := &p.Result
		f := r.Faults()
		slow := "-"
		if base > 0 && r.Cycles > 0 {
			slow = fmt.Sprintf("%.2fx", float64(r.Cycles)/float64(base))
		}
		status := "ok"
		switch {
		case r.Err != nil && sgx.IsAbort(r.Err):
			status = "aborted"
		case r.Err != nil && sgx.IsTransient(r.Err):
			status = "transient"
		case r.Err != nil:
			status = "failed"
		}
		fmt.Fprintf(&b, "%-8.4g %14d %9s %8d %8d %8d %7d %8d  %s\n",
			p.Rate, r.Cycles, slow,
			f.InjectedAEXs, f.EPCResizes, f.TransitionFaults, f.IntegrityAborts,
			r.Attempts, status)
	}
	return b.String()
}
