package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"sgxgauge/internal/chaos"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// SpecWire is the JSON-round-trippable form of a Spec: every
// behavior-affecting field except the Hooks, with the workload
// referenced by its suite name instead of an interface value. It is
// the wire schema of the sgxgauged daemon and the canonical encoding
// the result cache keys on.
//
// Encoding is canonical by construction: struct fields serialize in
// declaration order, map-valued knobs serialize with sorted keys
// (encoding/json's documented behavior), and enum fields serialize as
// their paper names ("Native", "Medium"), so equal specs always
// produce equal bytes.
type SpecWire struct {
	Workload       string            `json:"workload"`
	Mode           sgx.Mode          `json:"mode"`
	Size           workloads.Size    `json:"size"`
	EPCPages       int               `json:"epc_pages,omitempty"`
	Seed           int64             `json:"seed,omitempty"`
	Switchless     bool              `json:"switchless,omitempty"`
	ProtectedFiles bool              `json:"protected_files,omitempty"`
	Timeline       uint64            `json:"timeline,omitempty"`
	Params         *workloads.Params `json:"params,omitempty"`
	Machine        *sgx.Config       `json:"machine,omitempty"`
	Chaos          *chaos.Config     `json:"chaos,omitempty"`
}

// Wire extracts the spec's serializable side. It fails when the spec
// has no workload (nothing to name on the wire).
func (s Spec) Wire() (SpecWire, error) {
	if s.Workload == nil {
		return SpecWire{}, fmt.Errorf("harness: spec has no workload to encode")
	}
	return SpecWire{
		Workload:       s.Workload.Name(),
		Mode:           s.Mode,
		Size:           s.Size,
		EPCPages:       s.EPCPages,
		Seed:           s.Seed,
		Switchless:     s.Switchless,
		ProtectedFiles: s.ProtectedFiles,
		Timeline:       s.Timeline,
		Params:         s.Params,
		Machine:        s.Machine,
		Chaos:          s.Chaos,
	}, nil
}

// Spec resolves the wire form back into a runnable Spec. The workload
// name is resolved against the suite (including the auxiliary Empty
// and Iozone workloads); an unknown name yields an error listing the
// valid ones. Hooks are always zero — they do not travel.
func (w SpecWire) Spec() (Spec, error) {
	if w.Workload == "" {
		return Spec{}, fmt.Errorf("harness: wire spec has no workload (valid: %s)", validWorkloads())
	}
	wl, err := suite.ByName(w.Workload)
	if err != nil {
		return Spec{}, fmt.Errorf("harness: unknown workload %q (valid: %s)", w.Workload, validWorkloads())
	}
	return Spec{
		Workload:       wl,
		Mode:           w.Mode,
		Size:           w.Size,
		EPCPages:       w.EPCPages,
		Seed:           w.Seed,
		Switchless:     w.Switchless,
		ProtectedFiles: w.ProtectedFiles,
		Timeline:       w.Timeline,
		Params:         w.Params,
		Machine:        w.Machine,
		Chaos:          w.Chaos,
	}, nil
}

// validWorkloads lists every resolvable workload name, for validation
// errors.
func validWorkloads() string {
	names := append(suite.Names(), suite.Empty().Name(), suite.Iozone().Name())
	return strings.Join(names, ", ")
}

// MarshalJSON encodes the spec's canonical wire form. Hooks are
// dropped (they have no encoding); everything else round-trips.
func (s Spec) MarshalJSON() ([]byte, error) {
	w, err := s.Wire()
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a wire-form spec. Decoding is strict: unknown
// fields, unknown workload names, and unknown mode or size names are
// all errors that list what would have been valid.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var w SpecWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("harness: decoding spec: %w", err)
	}
	spec, err := w.Spec()
	if err != nil {
		return err
	}
	*s = spec
	return nil
}

// Key is a spec's canonical identity: the SHA-256 digest of its
// canonical JSON encoding. Results are content-addressed by Key in
// the runner's cache and over the daemon's /v1/results endpoint.
type Key [sha256.Size]byte

// String renders the key as lowercase hex, the form the daemon's
// /v1/results/{key} endpoint accepts.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return Key{}, fmt.Errorf("harness: malformed result key %q (want %d hex bytes)", s, len(k))
	}
	copy(k[:], b)
	return k, nil
}

// SpecKey returns the spec's canonical key. It fails when the spec
// cannot be canonically encoded (no workload); specs carrying hooks
// encode fine — the hook is simply not part of the identity, which is
// why the runner never serves them from cache.
func SpecKey(spec Spec) (Key, error) {
	enc, err := spec.MarshalJSON()
	if err != nil {
		return Key{}, err
	}
	return sha256.Sum256(enc), nil
}
