package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"sgxgauge/internal/chaos"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/scenario"
	"sgxgauge/internal/workloads/suite"
)

// SpecWire is the JSON-round-trippable form of a Spec: every
// behavior-affecting field except the Hooks, with the workload
// referenced by its suite name instead of an interface value. It is
// the wire schema of the sgxgauged daemon and the canonical encoding
// the result cache keys on.
//
// Encoding is canonical by construction: struct fields serialize in
// declaration order, map-valued knobs serialize with sorted keys
// (encoding/json's documented behavior), and enum fields serialize as
// their paper names ("Native", "Medium"), so equal specs always
// produce equal bytes.
type SpecWire struct {
	Workload       string            `json:"workload,omitempty"`
	Mode           sgx.Mode          `json:"mode"`
	Size           workloads.Size    `json:"size"`
	EPCPages       int               `json:"epc_pages,omitempty"`
	Seed           int64             `json:"seed,omitempty"`
	Switchless     bool              `json:"switchless,omitempty"`
	ProtectedFiles bool              `json:"protected_files,omitempty"`
	Timeline       uint64            `json:"timeline,omitempty"`
	Params         *workloads.Params `json:"params,omitempty"`
	Machine        *sgx.Config       `json:"machine,omitempty"`
	Chaos          *chaos.Config     `json:"chaos,omitempty"`
	// Scenario is the versioned multi-enclave envelope; exactly one of
	// Workload and Scenario is set. Appended after every pre-existing
	// field with omitempty, so legacy single-workload specs encode —
	// and key — byte-identically to before the field existed (the
	// golden-key test pins this).
	Scenario *scenario.Spec `json:"scenario,omitempty"`
}

// Wire extracts the spec's serializable side. It fails when the spec
// names nothing to run (neither workload nor scenario) or is
// ambiguous (both).
func (s Spec) Wire() (SpecWire, error) {
	if s.Workload == nil && s.Scenario == nil {
		return SpecWire{}, fmt.Errorf("harness: spec has no workload or scenario to encode")
	}
	if s.Workload != nil && s.Scenario != nil {
		return SpecWire{}, fmt.Errorf("harness: spec has both a workload (%s) and a scenario (%s)", s.Workload.Name(), s.Scenario.Name)
	}
	var name string
	if s.Workload != nil {
		name = s.Workload.Name()
	}
	return SpecWire{
		Workload:       name,
		Mode:           s.Mode,
		Size:           s.Size,
		EPCPages:       s.EPCPages,
		Seed:           s.Seed,
		Switchless:     s.Switchless,
		ProtectedFiles: s.ProtectedFiles,
		Timeline:       s.Timeline,
		Params:         s.Params,
		Machine:        s.Machine,
		Chaos:          s.Chaos,
		Scenario:       s.Scenario,
	}, nil
}

// Spec resolves the wire form back into a runnable Spec. The workload
// name is resolved against the shared registry (including the
// auxiliary Empty and Iozone workloads); scenario envelopes are
// validated strictly (schema version, registered scenario name, cast
// shape). Unknown names yield errors listing the valid ones. Hooks
// are always zero — they do not travel.
func (w SpecWire) Spec() (Spec, error) {
	if w.Scenario != nil {
		if w.Workload != "" {
			return Spec{}, fmt.Errorf("harness: wire spec has both a workload (%q) and a scenario (%q)", w.Workload, w.Scenario.Name)
		}
		if w.Mode != sgx.Native {
			return Spec{}, fmt.Errorf("harness: scenario specs run in Native mode, got %v", w.Mode)
		}
		if w.Params != nil || w.ProtectedFiles {
			return Spec{}, fmt.Errorf("harness: params and protected_files do not apply to scenario specs (per-enclave settings live in the scenario envelope)")
		}
		if err := w.Scenario.Validate(); err != nil {
			return Spec{}, fmt.Errorf("harness: %w", err)
		}
		return Spec{
			Scenario:   w.Scenario,
			Mode:       w.Mode,
			Size:       w.Size,
			EPCPages:   w.EPCPages,
			Seed:       w.Seed,
			Switchless: w.Switchless,
			Timeline:   w.Timeline,
			Machine:    w.Machine,
			Chaos:      w.Chaos,
		}, nil
	}
	if w.Workload == "" {
		return Spec{}, fmt.Errorf("harness: wire spec has no workload or scenario (valid workloads: %s; valid scenarios: %s)",
			validWorkloads(), workloads.ValidScenarioList())
	}
	wl, err := suite.ByName(w.Workload)
	if err != nil {
		return Spec{}, fmt.Errorf("harness: unknown workload %q (valid: %s)", w.Workload, validWorkloads())
	}
	return Spec{
		Workload:       wl,
		Mode:           w.Mode,
		Size:           w.Size,
		EPCPages:       w.EPCPages,
		Seed:           w.Seed,
		Switchless:     w.Switchless,
		ProtectedFiles: w.ProtectedFiles,
		Timeline:       w.Timeline,
		Params:         w.Params,
		Machine:        w.Machine,
		Chaos:          w.Chaos,
	}, nil
}

// validWorkloads lists every resolvable workload name, for validation
// errors. Derived from the shared registry, so the list can never
// drift from what ByName actually resolves.
func validWorkloads() string { return workloads.ValidWorkloadList() }

// MarshalJSON encodes the spec's canonical wire form. Hooks are
// dropped (they have no encoding); everything else round-trips.
func (s Spec) MarshalJSON() ([]byte, error) {
	w, err := s.Wire()
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a wire-form spec. Decoding is strict: unknown
// fields, unknown workload names, and unknown mode or size names are
// all errors that list what would have been valid.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var w SpecWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("harness: decoding spec: %w", err)
	}
	spec, err := w.Spec()
	if err != nil {
		return err
	}
	*s = spec
	return nil
}

// Key is a spec's canonical identity: the SHA-256 digest of its
// canonical JSON encoding. Results are content-addressed by Key in
// the runner's cache and over the daemon's /v1/results endpoint.
type Key [sha256.Size]byte

// String renders the key as lowercase hex, the form the daemon's
// /v1/results/{key} endpoint accepts.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return Key{}, fmt.Errorf("harness: malformed result key %q (want %d hex bytes)", s, len(k))
	}
	copy(k[:], b)
	return k, nil
}

// SpecKey returns the spec's canonical key. It fails when the spec
// cannot be canonically encoded (no workload); specs carrying hooks
// encode fine — the hook is simply not part of the identity, which is
// why the runner never serves them from cache.
func SpecKey(spec Spec) (Key, error) {
	enc, err := spec.MarshalJSON()
	if err != nil {
		return Key{}, err
	}
	return sha256.Sum256(enc), nil
}
