package harness

import (
	"testing"

	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

const testEPC = 96

func mustRun(t *testing.T, spec Spec) *Result {
	t.Helper()
	if spec.EPCPages == 0 {
		spec.EPCPages = testEPC
	}
	res, err := runOne(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunRejectsBadSpecs(t *testing.T) {
	if _, err := runOne(Spec{}); err == nil {
		t.Error("nil workload accepted")
	}
	lighttpd, _ := suite.ByName("Lighttpd")
	if _, err := runOne(Spec{Workload: lighttpd, Mode: sgx.Native}); err == nil {
		t.Error("Native run of a LibOS-only workload accepted")
	}
}

func TestVanillaRunHasNoStartup(t *testing.T) {
	w, _ := suite.ByName("BTree")
	res := mustRun(t, Spec{Workload: w, Mode: sgx.Vanilla, Size: workloads.Low})
	if res.StartupCycles != 0 {
		t.Errorf("Vanilla startup = %d cycles", res.StartupCycles)
	}
	if res.Cycles == 0 {
		t.Error("no run time measured")
	}
}

func TestNativeLaunchInsideMeasuredWindow(t *testing.T) {
	// Native-mode enclave builds are part of the measured run (only
	// LibOS startup is excluded, Appendix D).
	w, _ := suite.ByName("BTree")
	res := mustRun(t, Spec{Workload: w, Mode: sgx.Native, Size: workloads.Low})
	if res.StartupCycles != 0 {
		t.Errorf("Native startup = %d cycles, want 0 (launch is measured)", res.StartupCycles)
	}
	if res.Counters.Get(perf.EPCAllocs) == 0 {
		t.Error("measured window saw no EPC allocations")
	}
}

func TestLibOSStartupExcluded(t *testing.T) {
	w, _ := suite.ByName("BTree")
	res := mustRun(t, Spec{Workload: w, Mode: sgx.LibOS, Size: workloads.Low})
	if res.StartupCycles == 0 {
		t.Error("LibOS startup not recorded")
	}
	// The startup eviction storm must be in startup counters, not in
	// the measured delta.
	enclavePages := uint64(sgx.LibOSEnclaveFactor * testEPC)
	if got := res.StartupCounters.Get(perf.EPCEvictions); got < enclavePages/2 {
		t.Errorf("startup evictions = %d, want the launch storm", got)
	}
	if got := res.Counters.Get(perf.EPCEvictions); got >= enclavePages/2 {
		t.Errorf("measured delta contains the startup storm (%d evictions)", got)
	}
	// TotalCounters covers both.
	if res.TotalCounters.Get(perf.EPCEvictions) < res.StartupCounters.Get(perf.EPCEvictions) {
		t.Error("TotalCounters smaller than startup counters")
	}
}

func TestOverheadOrdering(t *testing.T) {
	w, _ := suite.ByName("HashJoin")
	van := mustRun(t, Spec{Workload: w, Mode: sgx.Vanilla, Size: workloads.High})
	nat := mustRun(t, Spec{Workload: w, Mode: sgx.Native, Size: workloads.High})
	if ovh := Overhead(nat, van); ovh <= 1.5 {
		t.Errorf("Native High overhead = %.2fx, want clearly above Vanilla", ovh)
	}
	if van.Output.Checksum != nat.Output.Checksum {
		t.Error("modes computed different results")
	}
}

func TestEPCBoundaryJump(t *testing.T) {
	// The paper's core observation: counters jump abruptly when the
	// footprint crosses the EPC size.
	w, _ := suite.ByName("BTree")
	low := mustRun(t, Spec{Workload: w, Mode: sgx.Native, Size: workloads.Low})
	med := mustRun(t, Spec{Workload: w, Mode: sgx.Native, Size: workloads.Medium})
	lowF := low.Counters.Get(perf.PageFaults)
	medF := med.Counters.Get(perf.PageFaults)
	if medF < 3*lowF {
		t.Errorf("page faults Low->Medium: %d -> %d, want an abrupt jump", lowF, medF)
	}
	if med.Counters.Get(perf.EPCLoadBacks) == 0 {
		t.Error("Medium run had no load-backs")
	}
}

func TestRunnerCaching(t *testing.T) {
	r := NewRunner(testEPC)
	r.Seed = 1
	w, _ := suite.ByName("BTree")
	a, err := r.Get(w, sgx.Vanilla, workloads.Low)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Get(w, sgx.Vanilla, workloads.Low)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical specs were re-run instead of cached")
	}
	c, err := r.Get(w, sgx.Vanilla, workloads.Medium)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different sizes shared a cache entry")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	w, _ := suite.ByName("HashJoin")
	spec := Spec{Workload: w, Mode: sgx.Native, Size: workloads.Low, EPCPages: testEPC, Seed: 9}
	a, err := runOne(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runOne(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Counters != b.Counters || a.Output.Checksum != b.Output.Checksum {
		t.Error("identical specs produced different results")
	}
}

func TestTimelineRecorded(t *testing.T) {
	w, _ := suite.ByName("BTree")
	res := mustRun(t, Spec{Workload: w, Mode: sgx.LibOS, Size: workloads.Medium, Timeline: 32})
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	last := res.Timeline[len(res.Timeline)-1]
	if last.Evictions == 0 || last.Allocs == 0 {
		t.Error("timeline missing activity")
	}
}

func TestSwitchlessReducesLatency(t *testing.T) {
	w, _ := suite.ByName("Lighttpd")
	def := mustRun(t, Spec{Workload: w, Mode: sgx.LibOS, Size: workloads.Low})
	sw := mustRun(t, Spec{Workload: w, Mode: sgx.LibOS, Size: workloads.Low, Switchless: true})
	if sw.Output.MeanLatency >= def.Output.MeanLatency {
		t.Errorf("switchless latency %v not below default %v", sw.Output.MeanLatency, def.Output.MeanLatency)
	}
	if sw.Counters.Get(perf.DTLBMisses) >= def.Counters.Get(perf.DTLBMisses) {
		t.Error("switchless mode did not reduce dTLB misses")
	}
}

// TestCacheKeysOnCanonicalEncodingNotPointer is the regression test
// for the pointer-identity audit: two specs carrying DISTINCT but
// structurally equal *Params (and *Config) pointers must resolve to
// the same canonical key and share one cache entry. Nothing in the
// cache path may ever compare the pointers themselves.
func TestCacheKeysOnCanonicalEncodingNotPointer(t *testing.T) {
	w, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	mkSpec := func() Spec {
		return Spec{
			Workload: w, Mode: sgx.Native, Size: workloads.Low, EPCPages: testEPC,
			Params:  &workloads.Params{Size: workloads.Low, Knobs: map[string]int64{"elements": 2000, "finds": 200}},
			Machine: &sgx.Config{TLBEntries: 64, TLBWays: 4},
		}
	}
	a, b := mkSpec(), mkSpec()
	if a.Params == b.Params || a.Machine == b.Machine {
		t.Fatal("test needs distinct pointers")
	}
	ka, err := SpecKey(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := SpecKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("equal specs with distinct pointers keyed differently: %s vs %s", ka, kb)
	}

	r := NewRunner(testEPC)
	resA, err := r.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := r.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if resA != resB {
		t.Fatal("second spec re-ran instead of hitting the first's cache entry")
	}
	if n := r.Cache.Len(); n != 1 {
		t.Fatalf("cache holds %d entries, want 1", n)
	}
}
