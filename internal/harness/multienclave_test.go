package harness

import (
	"strings"
	"testing"
)

func TestMultiEnclaveInterference(t *testing.T) {
	r := NewRunner(testEPC)
	points, err := r.MultiEnclave([]int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	// One or two instances fit (35% each): minimal eviction traffic.
	if points[0].EPCEvictions > 100 {
		t.Errorf("single small enclave evicted %d pages", points[0].EPCEvictions)
	}
	// Eight instances (280% of EPC combined) must thrash hard even
	// though each is individually small — the §3.2.1 observation.
	last := points[len(points)-1]
	if last.EPCEvictions < 50*max64(points[0].EPCEvictions, 1) {
		t.Errorf("8 enclaves evicted only %d pages (1 enclave: %d)", last.EPCEvictions, points[0].EPCEvictions)
	}
	// Per-instance time degrades as instances are added.
	if last.CyclesPerInstance < 2*points[0].CyclesPerInstance {
		t.Errorf("per-instance time %d vs solo %d: no interference visible",
			last.CyclesPerInstance, points[0].CyclesPerInstance)
	}
	// Monotone combined footprint.
	for i := 1; i < len(points); i++ {
		if points[i].CombinedFootprint <= points[i-1].CombinedFootprint {
			t.Error("combined footprint not increasing")
		}
	}
	out := RenderMultiEnclave(points, testEPC)
	if !strings.Contains(out, "Enclaves") {
		t.Error("render malformed")
	}
}

func TestMultiEnclaveRejectsZero(t *testing.T) {
	r := NewRunner(testEPC)
	if _, err := r.MultiEnclave([]int{0}); err == nil {
		t.Error("zero enclaves accepted")
	}
}

func TestMultiEnclaveDeterministic(t *testing.T) {
	r := NewRunner(testEPC)
	a, err := r.MultiEnclave([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.MultiEnclave([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Error("multi-enclave run not deterministic")
	}
}
