// Package harness runs SGXGauge workloads under controlled conditions
// and regenerates every table and figure of the paper's evaluation
// (the per-experiment index lives in DESIGN.md).
//
// A Run boots a fresh machine, prepares the workload host-side, sets
// up the requested execution mode (launching an enclave for Native
// mode, booting the library OS for LibOS mode), and measures only the
// workload's run portion — GrapheneSGX-style startup is recorded
// separately and excluded, exactly as the paper does (Appendix D).
//
// Each run's machine is fully independent, so batches of specs run
// concurrently through RunAll on a worker pool; all simulated time
// comes from per-run seeded state, so a parallel batch is bit-for-bit
// identical to running the same specs serially.
package harness

import (
	"fmt"

	"sgxgauge/internal/chaos"
	"sgxgauge/internal/epc"
	"sgxgauge/internal/libos"
	"sgxgauge/internal/osal"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/scenario"
)

// Spec describes one measured run.
type Spec struct {
	// Workload is the benchmark to run.
	Workload workloads.Workload
	// Mode is the execution mode.
	Mode sgx.Mode
	// Size is the input setting; ignored when Params is set.
	Size workloads.Size
	// EPCPages overrides the simulated EPC size (0 = default).
	EPCPages int
	// Seed drives all randomness (0 is a valid, fixed seed).
	Seed int64
	// Switchless enables switchless OCALLs (Figure 6d).
	Switchless bool
	// ProtectedFiles enables the LibOS protected file system
	// (Figure 10); LibOS mode only.
	ProtectedFiles bool
	// Params overrides the workload's DefaultParams when non-nil.
	Params *workloads.Params
	// Timeline enables EPC activity sampling (Figure 9) roughly
	// every Timeline EPC operations (0 = off).
	Timeline uint64
	// Machine, when non-nil, is the base machine configuration —
	// used by ablation studies to vary cost-model constants, cache
	// and TLB geometry, or enable the integrity tree. EPCPages, Seed
	// and Switchless from the Spec still apply on top.
	Machine *sgx.Config
	// Chaos, when non-nil and enabled, arms the adversarial-OS fault
	// injector on the spec's machine. Injection is a pure function of
	// the chaos seed and settings, so a chaotic run is as reproducible
	// as a clean one.
	Chaos *chaos.Config
	// Scenario, when non-nil, makes this a multi-enclave scenario
	// spec: Workload must be nil, Mode must be Native, and the run
	// interleaves the scenario's enclaves on one machine (see
	// runScenario). Scenario specs travel, cache and cluster exactly
	// like workload specs — the canonical encoding simply carries the
	// scenario envelope instead of a workload name.
	Scenario *scenario.Spec
	// Hooks carries the spec's non-serializable callbacks. Everything
	// else on a Spec round-trips through JSON (see MarshalJSON);
	// hooks deliberately do not, and a spec carrying one bypasses the
	// runner's result cache because a function value has no canonical
	// encoding to key on.
	Hooks Hooks
}

// WorkloadName returns the spec's registry name: the workload's, or
// the scenario's for multi-enclave specs. Empty for a zero spec.
func (s Spec) WorkloadName() string {
	if s.Scenario != nil {
		return s.Scenario.Name
	}
	if s.Workload != nil {
		return s.Workload.Name()
	}
	return ""
}

// Hooks is the non-serializable side of a Spec: callbacks that observe
// or instrument a run. Hooks never travel over the wire and never
// participate in the spec's canonical encoding or cache key.
type Hooks struct {
	// OnMachine, when non-nil, is invoked with the freshly booted
	// machine before any environment exists — the hook profilers use
	// to attach a tracer.
	OnMachine func(*sgx.Machine)
}

// empty reports whether the spec carries no hooks at all (such specs
// are safe to cache by canonical encoding).
func (h Hooks) empty() bool { return h.OnMachine == nil }

// Empty reports whether the spec carries no hooks at all. Only
// hook-free specs can be cached or shipped to a remote executor — a
// callback has no canonical encoding and cannot travel.
func (h Hooks) Empty() bool { return h.empty() }

// Result is one measured run.
type Result struct {
	// Name, Mode and Params echo the effective configuration.
	Name   string
	Mode   sgx.Mode
	Params workloads.Params

	// Cycles is the simulated duration of the measured portion.
	Cycles uint64
	// Counters is the counter delta over the measured portion.
	Counters perf.Snapshot
	// TotalCounters is the counter state over the whole machine
	// lifetime, including LibOS startup. The paper's driver-level
	// instrumentation observes the whole process even though startup
	// *time* is excluded, which is why its LibOS rows report
	// startup-storm-sized EPC eviction counts (Table 4).
	TotalCounters perf.Snapshot
	// Output is the workload's functional result.
	Output workloads.Output

	// StartupCycles is the excluded setup time: enclave build and
	// (in LibOS mode) the library-OS initialization.
	StartupCycles uint64
	// StartupCounters is the counter delta over startup.
	StartupCounters perf.Snapshot
	// Timeline is the EPC activity trace when requested.
	Timeline []epc.TimelineEvent
	// OpStats reports the EPC driver-operation latencies observed
	// over the whole machine lifetime (Figure 7).
	OpStats map[epc.Op]epc.OpStats

	// Err is set when the spec failed or its run panicked — the
	// per-spec half of the Runner error convention. When the failure
	// is a machine fault (enclave abort, injected transient failure)
	// the Result still carries the cycles and counters accumulated up
	// to the fault, so degraded runs remain measurable.
	Err error
	// Attempts is the number of times RunAll executed the spec: 1
	// normally, more when transient injected faults were retried.
	Attempts int
}

// fail records a machine fault on the result, capturing the state the
// run reached before dying so chaos reports can still be built.
func (r *Result) fail(env *sgx.Env, m *sgx.Machine, err error) {
	r.Err = err
	r.Cycles = env.Elapsed() - r.StartupCycles
	r.TotalCounters = env.Snapshot()
	r.Counters = r.TotalCounters.Sub(r.StartupCounters)
	r.Timeline = m.EPC.Timeline()
}

// runOne executes one spec on a fresh machine. It is the engine
// primitive under the Runner API: unlike Runner.Run it is uncached,
// retries nothing, and reports the spec's own failure through the
// error return (runWithRetry moves it into Result.Err).
func runOne(spec Spec) (*Result, error) {
	if spec.Scenario != nil {
		return runScenario(spec)
	}
	if spec.Workload == nil {
		return nil, fmt.Errorf("harness: spec has no workload")
	}
	if spec.Mode == sgx.Native && !spec.Workload.NativePort() {
		return nil, fmt.Errorf("harness: %s has no Native-mode port", spec.Workload.Name())
	}

	var cfg sgx.Config
	if spec.Machine != nil {
		cfg = *spec.Machine
	}
	cfg.EPCPages = spec.EPCPages
	cfg.Seed = uint64(spec.Seed) ^ 0x5067617567 // "gauge"
	cfg.Switchless = spec.Switchless
	cfg.Chaos = spec.Chaos
	m := sgx.NewMachine(cfg)
	if spec.Hooks.OnMachine != nil {
		spec.Hooks.OnMachine(m)
	}
	epcPages := m.Config().EPCPages

	params := spec.Workload.DefaultParams(epcPages, spec.Size)
	if spec.Params != nil {
		params = *spec.Params
	}

	rawFS := osal.NewFS()
	ctx := &workloads.Ctx{
		RawFS:  rawFS,
		Params: params,
		Seed:   spec.Seed,
	}
	// Host-side preparation happens before any environment exists,
	// so LibOS manifest processing sees the input files.
	if err := spec.Workload.Setup(ctx); err != nil {
		return nil, fmt.Errorf("harness: setup of %s: %w", spec.Workload.Name(), err)
	}

	var env *sgx.Env
	switch spec.Mode {
	case sgx.Vanilla:
		env = m.NewEnv(sgx.Vanilla)
		ctx.FS = rawFS
	case sgx.Native:
		env = m.NewEnv(sgx.Native)
		if spec.Timeline > 0 {
			m.EPC.EnableTimeline(&env.Main.Clock, spec.Timeline)
		}
		ctx.FS = rawFS
	case sgx.LibOS:
		// The manifest trusts every file present after setup.
		man := libos.Manifest{
			Binary:         spec.Workload.Name(),
			Files:          rawFS.List(),
			ProtectedFiles: spec.ProtectedFiles,
		}
		var inst *libos.Instance
		var bootErr error
		if perr := sgx.Protect(func() {
			inst, bootErr = startLibOS(m, rawFS, man, spec.Timeline)
		}); perr != nil {
			bootErr = perr
		}
		if bootErr != nil {
			return nil, fmt.Errorf("harness: booting LibOS: %w", bootErr)
		}
		env = inst.Env
		ctx.LibOS = inst
		ctx.FS = inst.FS()
	default:
		return nil, fmt.Errorf("harness: unknown mode %v", spec.Mode)
	}
	ctx.Env = env

	res := &Result{
		Name:            spec.Workload.Name(),
		Mode:            spec.Mode,
		Params:          params,
		Attempts:        1,
		StartupCycles:   env.Elapsed(),
		StartupCounters: env.Snapshot(),
	}

	// A Native-mode run launches its enclave inside the measured
	// window: SGX loads the entire declared enclave through the EPC
	// to verify it ("an enclave prior to its execution is loaded
	// completely in the EPC", §3.2.1), and unlike the one-time LibOS
	// boot the paper excludes (Appendix D), this launch is part of
	// running the ported application.
	if spec.Mode == sgx.Native {
		foot, err := spec.Workload.FootprintPages(params)
		if err != nil {
			return nil, fmt.Errorf("harness: sizing Native enclave: %w", err)
		}
		size := workloads.NativeEnclaveSize(foot)
		var launchErr error
		if perr := sgx.Protect(func() {
			_, launchErr = env.LaunchEnclaveReserve(size, workloads.NativeImagePages, size)
		}); perr != nil {
			launchErr = perr
		}
		if launchErr != nil {
			res.fail(env, m, fmt.Errorf("harness: launching Native enclave: %w", launchErr))
			return res, res.Err
		}
	}

	// The measured window runs under Protect: a machine fault
	// (enclave abort, injected transient failure) surfaces as this
	// spec's error with its partial measurements attached, while the
	// machine — and any sibling work — is unaffected.
	var out workloads.Output
	var runErr error
	if perr := sgx.Protect(func() {
		out, runErr = spec.Workload.Run(ctx)
	}); perr != nil {
		runErr = perr
	}
	if runErr != nil {
		res.fail(env, m, fmt.Errorf("harness: running %s in %v mode: %w", spec.Workload.Name(), spec.Mode, runErr))
		return res, res.Err
	}

	res.Output = out
	res.Cycles = env.Elapsed() - res.StartupCycles
	res.TotalCounters = env.Snapshot()
	res.Counters = res.TotalCounters.Sub(res.StartupCounters)
	res.Timeline = m.EPC.Timeline()
	res.OpStats = map[epc.Op]epc.OpStats{
		epc.OpAlloc: m.EPC.OpStatsFor(epc.OpAlloc),
		epc.OpEWB:   m.EPC.OpStatsFor(epc.OpEWB),
		epc.OpELDU:  m.EPC.OpStatsFor(epc.OpELDU),
		epc.OpFault: m.EPC.OpStatsFor(epc.OpFault),
	}
	return res, nil
}

// startLibOS boots the library OS, arranging the EPC timeline to use
// the LibOS environment's main clock from the start.
func startLibOS(m *sgx.Machine, fs *osal.FS, man libos.Manifest, timeline uint64) (*libos.Instance, error) {
	inst, err := libos.StartWithTimeline(m, fs, man, timeline)
	if err != nil {
		return nil, err
	}
	return inst, nil
}

// Overhead returns the runtime overhead of res relative to base
// (res.Cycles / base.Cycles).
func Overhead(res, base *Result) float64 {
	if base.Cycles == 0 {
		return float64(res.Cycles)
	}
	return float64(res.Cycles) / float64(base.Cycles)
}
