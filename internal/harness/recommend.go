package harness

import (
	"fmt"
	"sort"
	"strings"

	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// Component names an SGX cost source a researcher's proposal targets.
// Appendix C frames exactly this use case: "a generic approach for the
// developer to select correct benchmarks from SGXGauge as per the
// requirement".
type Component string

// The three overhead sources of §1/§4, plus the syscall interface.
const (
	ComponentEPC         Component = "epc"         // paging: EPC faults, evictions
	ComponentTransitions Component = "transitions" // ECALL/OCALL/AEX costs
	ComponentMEE         Component = "mee"         // encrypted-memory traffic
	ComponentSyscalls    Component = "syscalls"    // OS-interface interception
)

// Components lists the valid component names.
func Components() []Component {
	return []Component{ComponentEPC, ComponentTransitions, ComponentMEE, ComponentSyscalls}
}

// ParseComponent resolves a component name.
func ParseComponent(s string) (Component, error) {
	for _, c := range Components() {
		if string(c) == strings.ToLower(s) {
			return c, nil
		}
	}
	return "", fmt.Errorf("harness: unknown component %q (want epc, transitions, mee or syscalls)", s)
}

// Recommendation ranks one workload for a component.
type Recommendation struct {
	Name string
	// Intensity is the component-relevant stress score from a
	// LibOS-mode Medium run: total paging/MEE event counts for the
	// volume-driven components, and events per thousand memory
	// accesses for the interface components (so expensive events are
	// not self-discounting).
	Intensity float64
}

// Recommend ranks the ten suite workloads by how hard they exercise
// the given SGX component, measured (not hard-coded) from LibOS-mode
// Medium runs: a researcher optimizing that component should evaluate
// with the top-ranked workloads.
func (r *Runner) Recommend(c Component) ([]Recommendation, error) {
	if err := r.prefetch(GridSpecs(suite.All(),
		[]sgx.Mode{sgx.LibOS}, []workloads.Size{workloads.Medium})); err != nil {
		return nil, err
	}
	var out []Recommendation
	for _, w := range suite.All() {
		res, err := r.get(w, sgx.LibOS, workloads.Medium)
		if err != nil {
			return nil, err
		}
		var events uint64
		switch c {
		case ComponentEPC:
			events = res.Counters.Get(perf.EPCEvictions) + res.Counters.Get(perf.EPCLoadBacks) +
				res.Counters.Get(perf.PageFaults)
		case ComponentTransitions:
			events = res.Counters.Get(perf.ECalls) + res.Counters.Get(perf.OCalls) +
				res.Counters.Get(perf.AEXs) + res.Counters.Get(perf.SwitchlessCalls)
		case ComponentMEE:
			events = res.Counters.Get(perf.LLCMisses)
		case ComponentSyscalls:
			events = res.Counters.Get(perf.Syscalls)
		default:
			return nil, fmt.Errorf("harness: unknown component %q", c)
		}
		intensity := float64(events)
		if c == ComponentTransitions || c == ComponentSyscalls {
			work := float64(res.Counters.Get(perf.Accesses)) / 1e3
			if work == 0 {
				work = 1
			}
			intensity /= work
		}
		out = append(out, Recommendation{Name: w.Name(), Intensity: intensity})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Intensity > out[j].Intensity })
	return out, nil
}

// RenderRecommendations renders the ranking.
func RenderRecommendations(c Component, recs []Recommendation) string {
	t := Table{
		Title:  fmt.Sprintf("Benchmark selection for the %q component (Appendix C)", c),
		Header: []string{"Rank", "Workload", "Intensity"},
	}
	for i, rec := range recs {
		t.AddRow(fmt.Sprintf("%d", i+1), rec.Name, fmt.Sprintf("%.1f", rec.Intensity))
	}
	t.AddNote("measured from LibOS-mode Medium runs; pick the top entries to stress this component")
	return t.String()
}
