package harness

import (
	"bytes"
	"strings"
	"testing"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/scenario"
)

// scenarioSpec builds a runnable spec for one scenario with a small
// EPC so the casts contend without the tests taking minutes.
func scenarioSpec(t *testing.T, name string, n int, seed int64) Spec {
	t.Helper()
	spec, err := NewScenarioSpec(name, n)
	if err != nil {
		t.Fatalf("building %s spec: %v", name, err)
	}
	spec.EPCPages = testEPC
	spec.Seed = seed
	return spec
}

// allScenarioSpecs covers every registered scenario; a scenario added
// without showing up here fails the count check.
func allScenarioSpecs(t *testing.T, seed int64) map[string]Spec {
	t.Helper()
	specs := map[string]Spec{
		"attested-session": scenarioSpec(t, "attested-session", 0, seed),
		"consensus":        scenarioSpec(t, "consensus", 3, seed),
		"noisy-neighbor":   scenarioSpec(t, "noisy-neighbor", 3, seed),
	}
	if got := len(scenario.Names()); len(specs) != got {
		t.Fatalf("test covers %d scenarios, registry has %d (%v)", len(specs), got, scenario.Names())
	}
	return specs
}

// encodeForCompare canonicalizes a result to bytes; two runs are
// "bit-identical" exactly when these agree.
func encodeForCompare(t *testing.T, res *Result) []byte {
	t.Helper()
	enc, err := EncodeResult(res)
	if err != nil {
		t.Fatalf("encoding result: %v", err)
	}
	return enc
}

// TestScenarioRerunBitIdentical proves a scenario run is a pure
// function of its spec: same seed, same bytes.
func TestScenarioRerunBitIdentical(t *testing.T) {
	for name, spec := range allScenarioSpecs(t, 42) {
		t.Run(name, func(t *testing.T) {
			a, errA := runOne(spec)
			b, errB := runOne(spec)
			if errA != nil || errB != nil {
				t.Fatalf("runs failed: %v / %v", errA, errB)
			}
			if a.Output.Ops == 0 {
				t.Fatal("scenario completed zero ops")
			}
			if !bytes.Equal(encodeForCompare(t, a), encodeForCompare(t, b)) {
				t.Fatalf("rerun diverged:\n a %+v\n b %+v", a, b)
			}
		})
	}
}

// TestScenarioSerialParallelIdentical proves RunAll produces the same
// bytes at -j 1 and -j 8 — scenario interleaving is inside one spec's
// machine, so batch parallelism cannot perturb it.
func TestScenarioSerialParallelIdentical(t *testing.T) {
	var specs []Spec
	for _, spec := range allScenarioSpecs(t, 7) {
		specs = append(specs, spec)
	}
	// Map order is not deterministic; fix it by name so both batches
	// run the same slice.
	for i := range specs {
		for j := i + 1; j < len(specs); j++ {
			if specs[j].Scenario.Name < specs[i].Scenario.Name {
				specs[i], specs[j] = specs[j], specs[i]
			}
		}
	}

	serial, err := (&Runner{EPCPages: testEPC}).RunAll(specs, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{EPCPages: testEPC}).RunAll(specs, Workers(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("%s failed: serial %v, parallel %v", specs[i].Scenario.Name, serial[i].Err, parallel[i].Err)
		}
		if !bytes.Equal(encodeForCompare(t, serial[i]), encodeForCompare(t, parallel[i])) {
			t.Errorf("%s: -j 1 and -j 8 diverged", specs[i].Scenario.Name)
		}
	}
}

// TestScenarioFastSlowEquivalence is the scenario counterpart of
// TestWorkloadFastSlowEquivalence: the optimized access path and
// Config.SlowPath must agree bit-for-bit on interleaved multi-enclave
// traffic too.
func TestScenarioFastSlowEquivalence(t *testing.T) {
	for name, spec := range allScenarioSpecs(t, 11) {
		t.Run(name, func(t *testing.T) { runDifferential(t, spec) })
	}
}

// TestScenarioSpecWireRoundTrip proves scenario specs travel the wire
// like workload specs: encode → decode → same key.
func TestScenarioSpecWireRoundTrip(t *testing.T) {
	spec := scenarioSpec(t, "consensus", 4, 5)
	enc, err := spec.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := back.UnmarshalJSON(enc); err != nil {
		t.Fatalf("decoding %s: %v", enc, err)
	}
	k1, err := SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := SpecKey(back)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("round trip moved the key: %s vs %s", k1, k2)
	}
}

// TestScenarioWireValidation locks the strict-decode behavior: bad
// envelopes are rejected with errors that name what would have been
// valid.
func TestScenarioWireValidation(t *testing.T) {
	cases := map[string]struct {
		body string
		want string
	}{
		"unknown-scenario": {
			`{"mode":"Native","size":"Low","scenario":{"version":1,"name":"nope"}}`,
			"valid: " + workloads.ValidScenarioList(),
		},
		"bad-version": {
			`{"mode":"Native","size":"Low","scenario":{"version":9,"name":"consensus"}}`,
			"version 9",
		},
		"workload-and-scenario": {
			`{"workload":"BTree","mode":"Native","size":"Low","scenario":{"version":1,"name":"consensus"}}`,
			"both",
		},
		"wrong-mode": {
			`{"mode":"LibOS","size":"Low","scenario":{"version":1,"name":"consensus"}}`,
			"Native mode",
		},
		"params-on-scenario": {
			`{"mode":"Native","size":"Low","params":{"size":"Low"},"scenario":{"version":1,"name":"consensus"}}`,
			"do not apply",
		},
		"bad-cast": {
			`{"mode":"Native","size":"Low","scenario":{"version":1,"name":"attested-session","enclaves":[{"role":"client"}]}}`,
			"exactly 2",
		},
		"nothing-to-run": {
			`{"mode":"Native","size":"Low"}`,
			"valid scenarios: " + workloads.ValidScenarioList(),
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var s Spec
			err := s.UnmarshalJSON([]byte(tc.body))
			if err == nil {
				t.Fatalf("decode of %s succeeded", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestScenarioThroughRunnerCache proves scenario specs flow through
// the LRU/result cache with zero special cases: the second RunAll is
// served from cache (same pointer), and the cache holds one entry.
func TestScenarioThroughRunnerCache(t *testing.T) {
	r := NewRunner(testEPC)
	spec := scenarioSpec(t, "attested-session", 0, 3)
	first, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatal("second scenario run was not served from cache")
	}
	if n := r.Cache.Len(); n != 1 {
		t.Fatalf("cache holds %d entries, want 1", n)
	}
}

// TestScenarioResultShape sanity-checks the per-scenario outputs the
// docs advertise.
func TestScenarioResultShape(t *testing.T) {
	res, err := runOne(scenarioSpec(t, "noisy-neighbor", 3, 9))
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Output.Extra["interference_ratio"]
	if ratio < 1.0 {
		t.Fatalf("noisy-neighbor interference ratio %v < 1 — neighbors sped the foreground up?", ratio)
	}
	if res.Output.Extra["neighbors"] != 2 {
		t.Fatalf("expected 2 neighbors, got %v", res.Output.Extra["neighbors"])
	}
	if res.Name != "noisy-neighbor" || res.Mode != sgx.Native {
		t.Fatalf("result mislabeled: %s / %v", res.Name, res.Mode)
	}

	cres, err := runOne(scenarioSpec(t, "consensus", 3, 9))
	if err != nil {
		t.Fatal(err)
	}
	if cres.Output.Extra["nodes"] != 3 {
		t.Fatalf("expected 3 nodes, got %v", cres.Output.Extra["nodes"])
	}
}
