package harness

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table used by every report emitter.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// fx formats a ratio as "12.3x".
func fx(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0fx", v)
	case v >= 10:
		return fmt.Sprintf("%.1fx", v)
	default:
		return fmt.Sprintf("%.2fx", v)
	}
}

// fc formats a large count compactly ("49.6K", "1.8M").
func fc(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
