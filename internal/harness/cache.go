package harness

import (
	"fmt"
	"sync"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

// Runner caches Results so the report generators can share runs
// between tables and figures (every figure of the paper draws from the
// same experiment grid). The generators batch their grids through
// RunAll, so independent cells run concurrently on the worker pool;
// the cache itself is safe for concurrent use.
type Runner struct {
	// EPCPages is the simulated EPC size used for all runs
	// (0 = machine default).
	EPCPages int
	// Seed is the base seed.
	Seed int64
	// Jobs is the worker-pool size used when a generator batches
	// specs through RunAll (0 = GOMAXPROCS).
	Jobs int
	// Progress, when non-nil, receives one event per spec completed
	// by a RunAll batch (completed/total and per-spec wall time).
	Progress func(Progress)

	mu    sync.Mutex
	cache map[string]*Result // guarded by mu
}

// NewRunner returns a Runner for the given EPC size.
func NewRunner(epcPages int) *Runner {
	return &Runner{EPCPages: epcPages, cache: make(map[string]*Result)}
}

func specKey(spec Spec) string {
	pf := ""
	if spec.Params != nil {
		pf = fmt.Sprintf("%v", *spec.Params)
	}
	mc := ""
	if spec.Machine != nil {
		mc = fmt.Sprintf("%+v", *spec.Machine)
	}
	return fmt.Sprintf("%s|%v|%v|%d|%d|%v|%v|%d|%s|%s",
		spec.Workload.Name(), spec.Mode, spec.Size, spec.EPCPages,
		spec.Seed, spec.Switchless, spec.ProtectedFiles, spec.Timeline, pf, mc)
}

// normalize forces the runner's EPC size and seed onto a spec that
// leaves them zero.
func (r *Runner) normalize(spec Spec) Spec {
	if spec.EPCPages == 0 {
		spec.EPCPages = r.EPCPages
	}
	if spec.Seed == 0 {
		spec.Seed = r.Seed
	}
	return spec
}

// Run executes (or returns the cached result of) a spec, forcing the
// runner's EPC size and seed when the spec leaves them zero.
func (r *Runner) Run(spec Spec) (*Result, error) {
	spec = r.normalize(spec)
	key := specKey(spec)
	r.mu.Lock()
	res, ok := r.cache[key]
	r.mu.Unlock()
	if ok {
		return res, nil
	}
	res, err := Run(spec)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	// A concurrent miss may have stored the same key; determinism
	// makes the results identical, but keep the first pointer so
	// callers comparing identities still see one entry.
	if prev, ok := r.cache[key]; ok {
		res = prev
	} else {
		r.cache[key] = res
	}
	r.mu.Unlock()
	return res, nil
}

// RunAll executes the specs through the parallel engine, sharing the
// runner's cache: already-cached cells are not re-run, duplicate
// specs within the batch run once, and fresh results are cached for
// later Run/Get calls. Results keep input order. All specs complete
// even when some fail; the first failure (in input order) is returned
// as the error, matching the serial generators' abort-on-error
// contract.
func (r *Runner) RunAll(specs []Spec) ([]*Result, error) {
	out := make([]*Result, len(specs))
	keys := make([]string, len(specs))
	var missSpecs []Spec
	missPos := map[string]int{} // key -> index in missSpecs

	r.mu.Lock()
	for i, spec := range specs {
		spec = r.normalize(spec)
		keys[i] = specKey(spec)
		if res, ok := r.cache[keys[i]]; ok {
			out[i] = res
			continue
		}
		if _, dup := missPos[keys[i]]; !dup {
			missPos[keys[i]] = len(missSpecs)
			missSpecs = append(missSpecs, spec)
		}
	}
	r.mu.Unlock()

	if len(missSpecs) > 0 {
		opts := []Option{Workers(r.Jobs)}
		if r.Progress != nil {
			opts = append(opts, OnProgress(r.Progress))
		}
		batch := RunAll(missSpecs, opts...)
		r.mu.Lock()
		for j := range batch {
			if batch[j].Err != nil {
				continue // failures are not cached, so a retry re-runs
			}
			key := specKey(missSpecs[j])
			if _, ok := r.cache[key]; !ok {
				r.cache[key] = &batch[j]
			}
		}
		r.mu.Unlock()
		var firstErr error
		for i := range out {
			if out[i] != nil {
				continue
			}
			res := &batch[missPos[keys[i]]]
			out[i] = res
			if res.Err != nil && firstErr == nil {
				firstErr = res.Err
			}
		}
		if firstErr != nil {
			return out, firstErr
		}
	}
	return out, nil
}

// prefetch batches the specs through RunAll so the generator's
// subsequent Get/Run calls are cache hits; the serial part of a
// generator is then only table assembly.
func (r *Runner) prefetch(specs []Spec) error {
	_, err := r.RunAll(specs)
	return err
}

// Get runs workload w in the given mode and size with default
// parameters.
func (r *Runner) Get(w workloads.Workload, mode sgx.Mode, size workloads.Size) (*Result, error) {
	return r.Run(Spec{Workload: w, Mode: mode, Size: size})
}
