package harness

import (
	"fmt"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

// Runner caches Results so the report generators can share runs
// between tables and figures (every figure of the paper draws from the
// same experiment grid).
type Runner struct {
	// EPCPages is the simulated EPC size used for all runs
	// (0 = machine default).
	EPCPages int
	// Seed is the base seed.
	Seed int64

	cache map[string]*Result
}

// NewRunner returns a Runner for the given EPC size.
func NewRunner(epcPages int) *Runner {
	return &Runner{EPCPages: epcPages, cache: make(map[string]*Result)}
}

func specKey(spec Spec) string {
	pf := ""
	if spec.Params != nil {
		pf = fmt.Sprintf("%v", *spec.Params)
	}
	mc := ""
	if spec.Machine != nil {
		mc = fmt.Sprintf("%+v", *spec.Machine)
	}
	return fmt.Sprintf("%s|%v|%v|%d|%d|%v|%v|%d|%s|%s",
		spec.Workload.Name(), spec.Mode, spec.Size, spec.EPCPages,
		spec.Seed, spec.Switchless, spec.ProtectedFiles, spec.Timeline, pf, mc)
}

// Run executes (or returns the cached result of) a spec, forcing the
// runner's EPC size and seed when the spec leaves them zero.
func (r *Runner) Run(spec Spec) (*Result, error) {
	if spec.EPCPages == 0 {
		spec.EPCPages = r.EPCPages
	}
	if spec.Seed == 0 {
		spec.Seed = r.Seed
	}
	key := specKey(spec)
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	res, err := Run(spec)
	if err != nil {
		return nil, err
	}
	r.cache[key] = res
	return res, nil
}

// Get runs workload w in the given mode and size with default
// parameters.
func (r *Runner) Get(w workloads.Workload, mode sgx.Mode, size workloads.Size) (*Result, error) {
	return r.Run(Spec{Workload: w, Mode: mode, Size: size})
}
