package harness

import (
	"sync"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
)

// ResultCache stores completed Results keyed by canonical spec
// identity (Key). Implementations must be safe for concurrent use.
// The default runner cache is an unbounded in-process map; the
// sgxgauged daemon swaps in a sharded, size-bounded implementation
// (internal/serve).
type ResultCache interface {
	// Get returns the cached result for key, if present.
	Get(Key) (*Result, bool)
	// Add stores res under key unless the key is already present and
	// returns the entry the cache now holds — the earlier one on a
	// duplicate insert, so callers comparing identities always see
	// one canonical pointer per key.
	Add(Key, *Result) *Result
	// Len reports the number of cached results.
	Len() int
}

// mapCache is the default unbounded ResultCache.
type mapCache struct {
	mu sync.Mutex
	m  map[Key]*Result // guarded by mu
}

func newMapCache() *mapCache { return &mapCache{m: make(map[Key]*Result)} }

func (c *mapCache) Get(k Key) (*Result, bool) {
	c.mu.Lock()
	res, ok := c.m[k]
	c.mu.Unlock()
	return res, ok
}

func (c *mapCache) Add(k Key, res *Result) *Result {
	c.mu.Lock()
	if prev, ok := c.m[k]; ok {
		res = prev
	} else {
		c.m[k] = res
	}
	c.mu.Unlock()
	return res
}

func (c *mapCache) Len() int {
	c.mu.Lock()
	n := len(c.m)
	c.mu.Unlock()
	return n
}

// Runner caches Results so the report generators can share runs
// between tables and figures (every figure of the paper draws from the
// same experiment grid), and is the module's single batch-execution
// surface: Run, Get and the figure/table generators are all thin
// wrappers over RunAll, which feeds the options-based parallel engine.
//
// Error convention (uniform across Run/RunAll/Get): a spec's own
// failure lands in its Result.Err — the batch always returns one
// Result per spec — while the error return is reserved for
// engine-level failure, i.e. the batch being cut short by context
// cancellation (WithContext).
type Runner struct {
	// EPCPages is the simulated EPC size used for all runs
	// (0 = machine default).
	EPCPages int
	// Seed is the base seed.
	Seed int64
	// Jobs is the default worker-pool size for RunAll batches
	// (0 = GOMAXPROCS); the Workers option overrides it per call.
	Jobs int
	// Progress, when non-nil, receives one event per spec completed
	// by a RunAll batch; the OnProgress option overrides it per call.
	Progress func(Progress)
	// Cache stores completed results, keyed by the SHA-256 of each
	// normalized spec's canonical JSON encoding. NewRunner installs
	// the default unbounded map; replace it before first use to bound
	// or share the cache. Failed runs and specs carrying Hooks are
	// never cached.
	Cache ResultCache
	// Exec, when non-nil, replaces local machine execution for
	// hook-free specs: the engine calls it instead of booting a
	// simulated machine, and everything around execution — cache
	// probes, in-batch deduplication, progress events, result
	// caching — still happens in this Runner. The sgxgauged
	// coordinator uses it to farm execution out to a worker fleet.
	// Specs carrying Hooks always execute in-process (a callback
	// cannot travel), as do the engine's retry and chaos-reseed
	// policies, which belong to whoever actually runs the machine.
	// Exec must be safe for concurrent use; it receives normalized
	// specs and returns the spec's own failure inside the Result,
	// reserving the error return for transport-level trouble.
	Exec func(Spec) (*Result, error)

	initOnce sync.Once
}

// NewRunner returns a Runner for the given EPC size.
func NewRunner(epcPages int) *Runner {
	return &Runner{EPCPages: epcPages, Cache: newMapCache()}
}

// cache returns the runner's result cache, installing the default on
// first use so a zero Runner still works.
func (r *Runner) cache() ResultCache {
	r.initOnce.Do(func() {
		if r.Cache == nil {
			r.Cache = newMapCache()
		}
	})
	return r.Cache
}

// Normalize returns the spec as the runner actually files and runs
// it: the runner's EPC size and seed forced onto fields the spec
// leaves zero. Remote executors call it so the spec they ship is the
// one the key was computed from.
func (r *Runner) Normalize(spec Spec) Spec { return r.normalize(spec) }

// normalize forces the runner's EPC size and seed onto a spec that
// leaves them zero.
func (r *Runner) normalize(spec Spec) Spec {
	if spec.EPCPages == 0 {
		spec.EPCPages = r.EPCPages
	}
	if spec.Seed == 0 {
		spec.Seed = r.Seed
	}
	return spec
}

// Key returns the canonical cache key the runner files spec under:
// the SHA-256 of the normalized spec's canonical JSON encoding. It
// fails when the spec cannot be canonically encoded (no workload).
func (r *Runner) Key(spec Spec) (Key, error) {
	return SpecKey(r.normalize(spec))
}

// engineOpts merges the runner's defaults with per-call options.
func (r *Runner) engineOpts(opts []Option) engineOpts {
	o := engineOpts{clock: RealClock{}, workers: r.Jobs, progress: r.Progress, exec: r.Exec}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// RunAll is the module's one batch entry point: it executes the specs
// through the parallel engine, sharing the runner's cache. Cached
// cells are not re-run, duplicate specs within the batch run once,
// and fresh successful results are cached for later calls. Results
// keep input order and are never nil; a spec's failure is recorded in
// its Result.Err without aborting siblings. The error return is
// engine-level only: it is non-nil exactly when a WithContext context
// was cancelled, in which case unstarted specs carry the context
// error in their Result.Err.
//
// Two spec classes bypass the cache: specs carrying Hooks (a function
// value has no canonical encoding to key on) and specs that cannot be
// canonically encoded at all (no workload). Both still execute;
// their results are simply never stored or shared.
func (r *Runner) RunAll(specs []Spec, opts ...Option) ([]*Result, error) {
	o := r.engineOpts(opts)
	cache := r.cache()

	out := make([]*Result, len(specs))
	posOf := make([]int, len(specs)) // out index -> missSpecs index
	var missSpecs []Spec
	var missKeys []Key
	var missCacheable []bool
	missPos := map[Key]int{} // key -> index in missSpecs

	hits := 0
	for i, spec := range specs {
		spec = r.normalize(spec)
		key, kerr := SpecKey(spec)
		cacheable := kerr == nil && spec.Hooks.empty()
		if cacheable {
			if res, ok := cache.Get(key); ok {
				out[i] = res
				hits++
				// Cache-hit events precede the engine batch and are
				// emitted from this single goroutine, so the serialized-
				// callback contract holds without extra locking.
				if o.progressCached && o.progress != nil {
					o.progress(Progress{
						Completed: hits,
						Total:     len(specs),
						Index:     i,
						Name:      res.Name,
						Mode:      spec.Mode,
						Err:       res.Err,
						Cached:    true,
					})
				}
				continue
			}
			if j, dup := missPos[key]; dup {
				posOf[i] = j
				continue
			}
			missPos[key] = len(missSpecs)
		}
		posOf[i] = len(missSpecs)
		missSpecs = append(missSpecs, spec)
		missKeys = append(missKeys, key)
		missCacheable = append(missCacheable, cacheable)
	}

	if len(missSpecs) == 0 {
		return out, nil
	}
	batch, engineErr := runBatch(missSpecs, o)
	canon := make([]*Result, len(batch))
	for j := range batch {
		res := &batch[j]
		// Failures are not cached, so a retry re-runs them.
		if res.Err == nil && missCacheable[j] {
			res = cache.Add(missKeys[j], res)
		}
		canon[j] = res
	}
	for i := range out {
		if out[i] == nil {
			out[i] = canon[posOf[i]]
		}
	}
	return out, engineErr
}

// Run executes (or serves from cache) one spec: a thin wrapper over
// RunAll with the same conventions — the returned Result is non-nil
// and carries the spec's own failure in Err; the error return is
// engine-level (context cancellation) only.
func (r *Runner) Run(spec Spec, opts ...Option) (*Result, error) {
	results, err := r.RunAll([]Spec{spec}, opts...)
	return results[0], err
}

// Get runs workload w in the given mode and size with default
// parameters, under Run's conventions.
func (r *Runner) Get(w workloads.Workload, mode sgx.Mode, size workloads.Size) (*Result, error) {
	return r.Run(Spec{Workload: w, Mode: mode, Size: size})
}

// run is Run with the spec's own failure promoted into the error
// return — the abort-on-first-error form the report generators use.
func (r *Runner) run(spec Spec) (*Result, error) {
	res, err := r.Run(spec)
	if err != nil {
		return nil, err
	}
	if res.Err != nil {
		return nil, res.Err
	}
	return res, nil
}

// get is Get with the same promotion as run.
func (r *Runner) get(w workloads.Workload, mode sgx.Mode, size workloads.Size) (*Result, error) {
	return r.run(Spec{Workload: w, Mode: mode, Size: size})
}

// batch is RunAll with the first per-spec failure (in input order)
// promoted into the error return, preserving the generators'
// abort-on-error contract.
func (r *Runner) batch(specs []Spec) ([]*Result, error) {
	results, err := r.RunAll(specs)
	if err != nil {
		return results, err
	}
	for _, res := range results {
		if res.Err != nil {
			return results, res.Err
		}
	}
	return results, nil
}

// prefetch batches the specs through RunAll so the generator's
// subsequent get/run calls are cache hits; the serial part of a
// generator is then only table assembly.
func (r *Runner) prefetch(specs []Spec) error {
	_, err := r.batch(specs)
	return err
}
