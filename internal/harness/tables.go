package harness

import (
	"fmt"
	"sort"

	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/stats"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// table4Events are the counter columns of Table 4.
var table4Events = []perf.Event{
	perf.DTLBMisses, perf.WalkCycles, perf.StallCycles, perf.LLCMisses,
}

// Table4Block is one block of Table 4: a mode comparison aggregated
// over workloads, per input setting.
type Table4Block struct {
	// Label names the comparison ("Native Mode w.r.t Vanilla ...").
	Label string
	// Overhead[size] is the geomean runtime overhead.
	Overhead map[workloads.Size]float64
	// CounterRatio[size][event] is the geomean counter ratio.
	CounterRatio map[workloads.Size]map[perf.Event]float64
	// EPCEvictions[size] is the mean EPC eviction count of the
	// numerator mode (the paper reports the average raw value).
	EPCEvictions map[workloads.Size]float64
}

// Table4Data is the full Table 4.
type Table4Data struct {
	NativeVsVanilla Table4Block
	LibOSVsVanilla  Table4Block
	LibOSVsNative   Table4Block
}

// Table4 reproduces Table 4: geometric-mean overheads and counter
// ratios across the suite for the three mode comparisons.
func (r *Runner) Table4() (*Table4Data, error) {
	// All three mode comparisons draw from the same grid; one
	// parallel batch fills the cache for every block.
	if err := r.prefetch(MatrixSpecs()); err != nil {
		return nil, err
	}
	d := &Table4Data{}
	var err error
	d.NativeVsVanilla, err = r.table4Block("Native Mode w.r.t Vanilla (6 workloads)", suite.Native(), sgx.Native, sgx.Vanilla)
	if err != nil {
		return nil, err
	}
	d.LibOSVsVanilla, err = r.table4Block("LibOS Mode w.r.t Vanilla (10 workloads)", suite.All(), sgx.LibOS, sgx.Vanilla)
	if err != nil {
		return nil, err
	}
	d.LibOSVsNative, err = r.table4Block("LibOS Mode w.r.t Native (6 workloads)", suite.Native(), sgx.LibOS, sgx.Native)
	if err != nil {
		return nil, err
	}
	return d, nil
}

func (r *Runner) table4Block(label string, ws []workloads.Workload, num, den sgx.Mode) (Table4Block, error) {
	b := Table4Block{
		Label:        label,
		Overhead:     map[workloads.Size]float64{},
		CounterRatio: map[workloads.Size]map[perf.Event]float64{},
		EPCEvictions: map[workloads.Size]float64{},
	}
	for _, size := range workloads.Sizes() {
		var ovh []float64
		ratios := map[perf.Event][]float64{}
		var evict []float64
		for _, w := range ws {
			nres, err := r.get(w, num, size)
			if err != nil {
				return b, err
			}
			dres, err := r.get(w, den, size)
			if err != nil {
				return b, err
			}
			ovh = append(ovh, Overhead(nres, dres))
			// Counter ratios use whole-lifetime counters: the
			// paper's driver instrumentation sees LibOS startup
			// activity even though startup time is excluded.
			for _, e := range table4Events {
				rt := nres.TotalCounters.Ratio(dres.TotalCounters, e)
				if rt <= 0 {
					rt = 1
				}
				ratios[e] = append(ratios[e], rt)
			}
			evict = append(evict, float64(nres.TotalCounters.Get(perf.EPCEvictions)))
		}
		b.Overhead[size] = stats.GeoMean(ovh)
		b.CounterRatio[size] = map[perf.Event]float64{}
		for _, e := range table4Events {
			b.CounterRatio[size][e] = stats.GeoMean(ratios[e])
		}
		b.EPCEvictions[size] = stats.Mean(evict)
	}
	return b, nil
}

// Render returns Table 4 in the paper's layout.
func (d *Table4Data) Render() string {
	out := ""
	for _, blk := range []Table4Block{d.NativeVsVanilla, d.LibOSVsVanilla, d.LibOSVsNative} {
		t := Table{
			Title:  blk.Label,
			Header: []string{"", "Overhead", "dTLB misses", "Walk cycles", "Stall cycles", "LLC misses", "EPC evictions"},
		}
		for _, size := range workloads.Sizes() {
			t.AddRow(size.String(),
				fx(blk.Overhead[size]),
				fx(blk.CounterRatio[size][perf.DTLBMisses]),
				fx(blk.CounterRatio[size][perf.WalkCycles]),
				fx(blk.CounterRatio[size][perf.StallCycles]),
				fx(blk.CounterRatio[size][perf.LLCMisses]),
				fc(blk.EPCEvictions[size]),
			)
		}
		out += t.String() + "\n"
	}
	return out
}

// Table2Row is one workload's entry in the settings table.
type Table2Row struct {
	Name     string
	Property string
	Modes    string
	Settings map[workloads.Size]workloads.Params
}

// Table2 reproduces Table 2: the workload inventory with the concrete
// Low/Medium/High settings for the runner's EPC size.
func (r *Runner) Table2() ([]Table2Row, error) {
	epcPages := r.EPCPages
	if epcPages == 0 {
		epcPages = sgx.DefaultEPCPages
	}
	var rows []Table2Row
	for _, w := range suite.All() {
		modes := "Vanilla, LibOS"
		if w.NativePort() {
			modes = "Vanilla, Native, LibOS"
		}
		row := Table2Row{
			Name:     w.Name(),
			Property: w.Property(),
			Modes:    modes,
			Settings: map[workloads.Size]workloads.Params{},
		}
		for _, s := range workloads.Sizes() {
			row.Settings[s] = w.DefaultParams(epcPages, s)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable2 renders the settings table.
func RenderTable2(rows []Table2Row) string {
	t := Table{
		Title:  "Table 2: workloads and input settings (scaled to the simulated EPC)",
		Header: []string{"Workload", "Property", "Modes", "Low", "Medium", "High"},
	}
	for _, row := range rows {
		cells := []string{row.Name, row.Property, row.Modes}
		for _, s := range workloads.Sizes() {
			cells = append(cells, knobString(row.Settings[s]))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

func knobString(p workloads.Params) string {
	names := make([]string, 0, len(p.Knobs))
	//sgxlint:ignore determinism collects keys only; the slice is sorted before any ordered use
	for n := range p.Knobs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%s", n, fc(float64(p.Knobs[n])))
	}
	if out == "" {
		out = "-"
	}
	return out
}

// Table5Row is one workload's regression coefficients.
type Table5Row struct {
	Name  string
	Mode  sgx.Mode
	Coeff map[perf.Event]float64
	// Top is the most important counter (largest |coefficient|).
	Top perf.Event
}

// table5Events are the predictors of Table 5.
var table5Events = []perf.Event{
	perf.WalkCycles, perf.StallCycles, perf.PageFaults,
	perf.DTLBMisses, perf.LLCMisses, perf.EPCEvictions,
}

// Table5 reproduces Table 5: per workload, a linear regression of run
// time on the six counters over a grid of runs (sizes x modes x
// seeds); coefficient magnitude ranks counter importance.
func (r *Runner) Table5() ([]Table5Row, error) {
	var specs []Spec
	for _, w := range suite.All() {
		mode := sgx.LibOS
		if w.NativePort() {
			mode = sgx.Native
		}
		for _, size := range workloads.Sizes() {
			for _, seed := range []int64{1, 2, 3} {
				specs = append(specs, Spec{Workload: w, Mode: mode, Size: size, Seed: seed})
			}
		}
	}
	if err := r.prefetch(specs); err != nil {
		return nil, err
	}
	var rows []Table5Row
	for _, w := range suite.All() {
		mode := sgx.LibOS
		if w.NativePort() {
			mode = sgx.Native
		}
		var X [][]float64
		var y []float64
		for _, size := range workloads.Sizes() {
			for _, seed := range []int64{1, 2, 3} {
				res, err := r.run(Spec{Workload: w, Mode: mode, Size: size, Seed: seed})
				if err != nil {
					return nil, err
				}
				row := make([]float64, len(table5Events))
				for i, e := range table5Events {
					row[i] = float64(res.Counters.Get(e))
				}
				X = append(X, row)
				y = append(y, float64(res.Cycles))
			}
		}
		beta, err := stats.LinReg(X, y)
		if err != nil {
			return nil, fmt.Errorf("harness: Table 5 regression for %s: %w", w.Name(), err)
		}
		row := Table5Row{Name: w.Name(), Mode: mode, Coeff: map[perf.Event]float64{}}
		best := 0.0
		for i, e := range table5Events {
			row.Coeff[e] = beta[i]
			if a := abs(beta[i]); a > best {
				best = a
				row.Top = e
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// RenderTable5 renders the regression table, marking each workload's
// most important counter with a '*'.
func RenderTable5(rows []Table5Row) string {
	t := Table{
		Title:  "Table 5: counter importance by linear regression (standardized coefficients)",
		Header: []string{"Workload", "Mode", "Walk cycles", "Stall cycles", "Page faults", "dTLB misses", "LLC misses", "EPC evictions"},
	}
	for _, row := range rows {
		cells := []string{row.Name, row.Mode.String()}
		for _, e := range table5Events {
			mark := ""
			if e == row.Top {
				mark = "*"
			}
			cells = append(cells, fmt.Sprintf("%+.2f%s", row.Coeff[e], mark))
		}
		t.AddRow(cells...)
	}
	t.AddNote("'*' marks the counter with the largest |coefficient| (bold in the paper)")
	return t.String()
}
