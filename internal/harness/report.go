package harness

import (
	"fmt"

	"sgxgauge/internal/sgx"
)

// Experiment is one regenerable table or figure of the paper's
// evaluation: an id ("fig2", "tab4"...) plus the generator that runs
// its grid through a Runner and renders the result.
type Experiment struct {
	// ID is the short name used by sgxreport -exp and the daemon's
	// /v1/figures endpoint.
	ID string
	// Figure is the paper's figure/table number ("2".."10" for
	// figures, "t2"/"t4"/"t5" for tables), used to group experiments
	// that share a figure (6a/6bc/6d).
	Figure string
	// Render regenerates the experiment through r.
	Render func(r *Runner) (string, error)
}

// Experiments returns every regenerable experiment in report order.
// The list is rebuilt per call, so callers may not mutate shared
// state through it.
func Experiments() []Experiment {
	return []Experiment{
		{"tab2", "t2", func(r *Runner) (string, error) {
			rows, err := r.Table2()
			if err != nil {
				return "", err
			}
			return RenderTable2(rows), nil
		}},
		{"fig2", "2", func(r *Runner) (string, error) {
			d, err := r.Figure2()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"fig3", "3", func(r *Runner) (string, error) {
			pts, err := r.Figure3()
			if err != nil {
				return "", err
			}
			return RenderFigure3(pts), nil
		}},
		{"fig4", "4", func(r *Runner) (string, error) {
			rows, err := r.Figure4()
			if err != nil {
				return "", err
			}
			return RenderFigure4(rows), nil
		}},
		{"tab4", "t4", func(r *Runner) (string, error) {
			d, err := r.Table4()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"fig5", "5", func(r *Runner) (string, error) {
			rows, err := r.Figure5()
			if err != nil {
				return "", err
			}
			return RenderFigure5(rows), nil
		}},
		{"fig6a", "6", func(r *Runner) (string, error) {
			d, err := r.Figure6a()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"fig6bc", "6", func(r *Runner) (string, error) {
			rows, err := r.Figure6bc()
			if err != nil {
				return "", err
			}
			return RenderFigure6bc(rows), nil
		}},
		{"fig6d", "6", func(r *Runner) (string, error) {
			d, err := r.Figure6d()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"fig7", "7", func(r *Runner) (string, error) {
			rows, err := r.Figure7()
			if err != nil {
				return "", err
			}
			return RenderFigure7(rows), nil
		}},
		{"fig8", "8", func(r *Runner) (string, error) {
			d, err := r.Figure8()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"tab5", "t5", func(r *Runner) (string, error) {
			rows, err := r.Table5()
			if err != nil {
				return "", err
			}
			return RenderTable5(rows), nil
		}},
		{"fig9", "9", func(r *Runner) (string, error) {
			d, err := r.Figure9()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"fig10", "10", func(r *Runner) (string, error) {
			rows, err := r.Figure10()
			if err != nil {
				return "", err
			}
			return RenderFigure10(rows), nil
		}},
		{"multi", "", func(r *Runner) (string, error) {
			points, err := r.MultiEnclave([]int{1, 2, 4, 8})
			if err != nil {
				return "", err
			}
			epcPages := r.EPCPages
			if epcPages == 0 {
				epcPages = sgx.DefaultEPCPages
			}
			return RenderMultiEnclave(points, epcPages), nil
		}},
	}
}

// RenderFigure regenerates every experiment belonging to the paper
// figure/table labelled fig ("2".."10", "t2", "t4", "t5"),
// concatenating multi-panel figures (6a/6bc/6d) in panel order. An
// unknown label yields an error listing the valid ones.
func RenderFigure(r *Runner, fig string) (string, error) {
	out := ""
	for _, e := range Experiments() {
		if e.Figure != fig || e.Figure == "" {
			continue
		}
		s, err := e.Render(r)
		if err != nil {
			return "", fmt.Errorf("harness: rendering %s: %w", e.ID, err)
		}
		if out != "" {
			out += "\n"
		}
		out += s
	}
	if out == "" {
		return "", fmt.Errorf("harness: unknown figure %q (valid: 2-10, t2, t4, t5)", fig)
	}
	return out, nil
}
