package harness

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := Table{
		Title:  "T",
		Header: []string{"a", "bbbb"},
	}
	tab.AddRow("xxxxx", "y")
	tab.AddNote("note %d", 7)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, row, note.
	if len(lines) != 6 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "=") {
		t.Error("missing title underline")
	}
	// Header and row columns align: the second column starts at the
	// same offset.
	hIdx := strings.Index(lines[2], "bbbb")
	rIdx := strings.Index(lines[4], "y")
	if hIdx != rIdx {
		t.Errorf("columns misaligned: header at %d, row at %d", hIdx, rIdx)
	}
	if !strings.Contains(lines[5], "note 7") {
		t.Error("note not rendered")
	}
}

func TestFormatRatios(t *testing.T) {
	cases := map[float64]string{
		1.234:  "1.23x",
		12.34:  "12.3x",
		123.4:  "123x",
		0.5:    "0.50x",
		999.99: "1000x",
	}
	for in, want := range cases {
		if got := fx(in); got != want {
			t.Errorf("fx(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatCounts(t *testing.T) {
	cases := map[float64]string{
		5:       "5",
		999:     "999",
		1500:    "1.5K",
		49600:   "49.6K",
		1792000: "1.79M",
		2.5e9:   "2.50G",
	}
	for in, want := range cases {
		if got := fc(in); got != want {
			t.Errorf("fc(%v) = %q, want %q", in, got, want)
		}
	}
}
