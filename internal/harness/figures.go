package harness

import (
	"fmt"
	"strings"

	"sgxgauge/internal/cycles"
	"sgxgauge/internal/epc"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// Figure2Data reproduces Figure 2: stressing the EPC with an
// EPC-bound workload (HashJoin). Overheads are against Vanilla at the
// same input size; EPC evictions are against the Low setting.
type Figure2Data struct {
	// Overhead[size]: Native runtime / Vanilla runtime.
	Overhead map[workloads.Size]float64
	// DTLBRatio/WalkRatio[size]: Native counter / Vanilla counter.
	DTLBRatio map[workloads.Size]float64
	WalkRatio map[workloads.Size]float64
	// EvictRatio[size]: Native evictions at size / at Low.
	EvictRatio map[workloads.Size]float64
}

// Figure2 regenerates the motivation experiment of §3.2.1. B-Tree is
// the EPC stressor: its footprint brackets the EPC and its random
// lookups surface the boundary crossing in every paging counter.
func (r *Runner) Figure2() (*Figure2Data, error) {
	w, err := suite.ByName("BTree")
	if err != nil {
		return nil, err
	}
	d := &Figure2Data{
		Overhead:   map[workloads.Size]float64{},
		DTLBRatio:  map[workloads.Size]float64{},
		WalkRatio:  map[workloads.Size]float64{},
		EvictRatio: map[workloads.Size]float64{},
	}
	if err := r.prefetch(GridSpecs([]workloads.Workload{w},
		[]sgx.Mode{sgx.Native, sgx.Vanilla}, workloads.Sizes())); err != nil {
		return nil, err
	}
	low, err := r.get(w, sgx.Native, workloads.Low)
	if err != nil {
		return nil, err
	}
	lowEvict := float64(low.Counters.Get(perf.EPCEvictions))
	if lowEvict == 0 {
		lowEvict = 1 // Low fits in the EPC; avoid dividing by zero
	}
	for _, size := range workloads.Sizes() {
		nat, err := r.get(w, sgx.Native, size)
		if err != nil {
			return nil, err
		}
		van, err := r.get(w, sgx.Vanilla, size)
		if err != nil {
			return nil, err
		}
		d.Overhead[size] = Overhead(nat, van)
		d.DTLBRatio[size] = nat.Counters.Ratio(van.Counters, perf.DTLBMisses)
		d.WalkRatio[size] = nat.Counters.Ratio(van.Counters, perf.WalkCycles)
		d.EvictRatio[size] = float64(nat.Counters.Get(perf.EPCEvictions)) / lowEvict
	}
	return d, nil
}

// Render renders Figure 2 as a table.
func (d *Figure2Data) Render() string {
	t := Table{
		Title:  "Figure 2: crossing the EPC boundary (BTree, Native vs Vanilla)",
		Header: []string{"", "Overhead", "dTLB misses", "Walk cycles", "EPC evictions (vs Low)"},
	}
	for _, size := range workloads.Sizes() {
		t.AddRow(size.String(), fx(d.Overhead[size]), fx(d.DTLBRatio[size]), fx(d.WalkRatio[size]), fx(d.EvictRatio[size]))
	}
	return t.String()
}

// Figure3Point is Lighttpd latency at one concurrency level.
type Figure3Point struct {
	Threads        int
	VanillaLatency float64 // cycles
	SGXLatency     float64 // cycles (LibOS mode)
	Ratio          float64
}

// Figure3 regenerates §3.2.2: Lighttpd latency vs concurrent clients,
// SGX (LibOS) against Vanilla.
func (r *Runner) Figure3() ([]Figure3Point, error) {
	w, err := suite.ByName("Lighttpd")
	if err != nil {
		return nil, err
	}
	threadCounts := []int{1, 2, 4, 8, 16}
	epcPages := r.EPCPages
	if epcPages == 0 {
		epcPages = sgx.DefaultEPCPages
	}
	// One Vanilla/LibOS spec pair per concurrency level; the whole
	// sweep runs as one parallel batch.
	specs := make([]Spec, 0, 2*len(threadCounts))
	for _, threads := range threadCounts {
		params := w.DefaultParams(epcPages, workloads.Medium)
		params.Threads = threads
		specs = append(specs,
			Spec{Workload: w, Mode: sgx.Vanilla, Params: &params},
			Spec{Workload: w, Mode: sgx.LibOS, Params: &params})
	}
	results, err := r.batch(specs)
	if err != nil {
		return nil, err
	}
	var out []Figure3Point
	for i, threads := range threadCounts {
		van, lib := results[2*i], results[2*i+1]
		p := Figure3Point{
			Threads:        threads,
			VanillaLatency: van.Output.MeanLatency,
			SGXLatency:     lib.Output.MeanLatency,
		}
		if p.VanillaLatency > 0 {
			p.Ratio = p.SGXLatency / p.VanillaLatency
		}
		out = append(out, p)
	}
	return out, nil
}

// RenderFigure3 renders the latency sweep.
func RenderFigure3(points []Figure3Point) string {
	t := Table{
		Title:  "Figure 3: Lighttpd latency vs concurrent clients (LibOS vs Vanilla)",
		Header: []string{"Threads", "Vanilla latency (us)", "SGX latency (us)", "Ratio"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Threads),
			fmt.Sprintf("%.1f", cycles.Micros(uint64(p.VanillaLatency))),
			fmt.Sprintf("%.1f", cycles.Micros(uint64(p.SGXLatency))),
			fx(p.Ratio))
	}
	return t.String()
}

// Figure4Row compares LibOS against Native for one workload.
type Figure4Row struct {
	Name string
	// Ratio is LibOS runtime / Native runtime at Medium size: below
	// 1.0 the library OS helps, above it hurts.
	Ratio map[workloads.Size]float64
}

// Figure4 regenerates §3.2.3: the library OS can help or hurt
// depending on the workload.
func (r *Runner) Figure4() ([]Figure4Row, error) {
	if err := r.prefetch(GridSpecs(suite.Native(),
		[]sgx.Mode{sgx.LibOS, sgx.Native}, workloads.Sizes())); err != nil {
		return nil, err
	}
	var out []Figure4Row
	for _, w := range suite.Native() {
		row := Figure4Row{Name: w.Name(), Ratio: map[workloads.Size]float64{}}
		for _, size := range workloads.Sizes() {
			lib, err := r.get(w, sgx.LibOS, size)
			if err != nil {
				return nil, err
			}
			nat, err := r.get(w, sgx.Native, size)
			if err != nil {
				return nil, err
			}
			row.Ratio[size] = Overhead(lib, nat)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFigure4 renders the LibOS-vs-Native comparison.
func RenderFigure4(rows []Figure4Row) string {
	t := Table{
		Title:  "Figure 4: LibOS runtime relative to Native (<1 helps, >1 hurts)",
		Header: []string{"Workload", "Low", "Medium", "High"},
	}
	for _, row := range rows {
		t.AddRow(row.Name, fx(row.Ratio[workloads.Low]), fx(row.Ratio[workloads.Medium]), fx(row.Ratio[workloads.High]))
	}
	return t.String()
}

// Figure5Row is one workload's Native-mode overheads and evictions.
type Figure5Row struct {
	Name string
	// Overhead[size] is Native/Vanilla runtime (Figure 5a).
	Overhead map[workloads.Size]float64
	// Evictions[size] is the raw Native eviction count (Figure 5b).
	Evictions map[workloads.Size]uint64
}

// Figure5 regenerates Figures 5a and 5b over the six ported
// workloads.
func (r *Runner) Figure5() ([]Figure5Row, error) {
	if err := r.prefetch(GridSpecs(suite.Native(),
		[]sgx.Mode{sgx.Native, sgx.Vanilla}, workloads.Sizes())); err != nil {
		return nil, err
	}
	var out []Figure5Row
	for _, w := range suite.Native() {
		row := Figure5Row{
			Name:      w.Name(),
			Overhead:  map[workloads.Size]float64{},
			Evictions: map[workloads.Size]uint64{},
		}
		for _, size := range workloads.Sizes() {
			nat, err := r.get(w, sgx.Native, size)
			if err != nil {
				return nil, err
			}
			van, err := r.get(w, sgx.Vanilla, size)
			if err != nil {
				return nil, err
			}
			row.Overhead[size] = Overhead(nat, van)
			row.Evictions[size] = nat.Counters.Get(perf.EPCEvictions)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFigure5 renders both panels.
func RenderFigure5(rows []Figure5Row) string {
	a := Table{
		Title:  "Figure 5a: Native-mode runtime overhead vs Vanilla",
		Header: []string{"Workload", "Low", "Medium", "High"},
	}
	b := Table{
		Title:  "Figure 5b: Native-mode EPC evictions",
		Header: []string{"Workload", "Low", "Medium", "High"},
	}
	for _, row := range rows {
		a.AddRow(row.Name, fx(row.Overhead[workloads.Low]), fx(row.Overhead[workloads.Medium]), fx(row.Overhead[workloads.High]))
		b.AddRow(row.Name, fc(float64(row.Evictions[workloads.Low])), fc(float64(row.Evictions[workloads.Medium])), fc(float64(row.Evictions[workloads.High])))
	}
	return a.String() + "\n" + b.String()
}

// Figure6aData characterizes pure LibOS overhead with the empty
// workload (§5.4.1).
type Figure6aData struct {
	ECalls       uint64
	OCalls       uint64
	AEXs         uint64
	EPCEvictions uint64
	EPCLoadBacks uint64
	// StartupCycles is the initialization time (excluded from
	// workload timings).
	StartupCycles uint64
	// RunCycles is the measured time of the empty body.
	RunCycles uint64
}

// Figure6a regenerates the empty-workload characterization. The
// counters are the LibOS startup counters: everything the runtime did
// before handing control to the (empty) application.
func (r *Runner) Figure6a() (*Figure6aData, error) {
	res, err := r.run(Spec{Workload: suite.Empty(), Mode: sgx.LibOS})
	if err != nil {
		return nil, err
	}
	s := res.StartupCounters
	return &Figure6aData{
		ECalls:        s.Get(perf.ECalls),
		OCalls:        s.Get(perf.OCalls),
		AEXs:          s.Get(perf.AEXs),
		EPCEvictions:  s.Get(perf.EPCEvictions),
		EPCLoadBacks:  s.Get(perf.EPCLoadBacks),
		StartupCycles: res.StartupCycles,
		RunCycles:     res.Cycles,
	}, nil
}

// Render renders Figure 6a.
func (d *Figure6aData) Render() string {
	t := Table{
		Title:  "Figure 6a: GrapheneSGX statistics for an empty workload",
		Header: []string{"Metric", "Value"},
	}
	t.AddRow("ECALLs", fc(float64(d.ECalls)))
	t.AddRow("OCALLs", fc(float64(d.OCalls)))
	t.AddRow("AEX exits", fc(float64(d.AEXs)))
	t.AddRow("EPC evictions", fc(float64(d.EPCEvictions)))
	t.AddRow("EPC load-backs", fc(float64(d.EPCLoadBacks)))
	t.AddRow("Startup time", fmt.Sprintf("%.1f ms", cycles.Micros(d.StartupCycles)/1000))
	t.AddNote("startup activity is excluded from workload run times (Appendix D)")
	return t.String()
}

// Figure6bcRow is one workload's LibOS-mode overhead and load-backs.
type Figure6bcRow struct {
	Name string
	// Overhead[size] is LibOS/Vanilla runtime (Figure 6b).
	Overhead map[workloads.Size]float64
	// LoadBacks[size] is the raw load-back count (Figure 6c).
	LoadBacks map[workloads.Size]uint64
}

// Figure6bc regenerates Figures 6b and 6c over the full suite.
func (r *Runner) Figure6bc() ([]Figure6bcRow, error) {
	if err := r.prefetch(GridSpecs(suite.All(),
		[]sgx.Mode{sgx.LibOS, sgx.Vanilla}, workloads.Sizes())); err != nil {
		return nil, err
	}
	var out []Figure6bcRow
	for _, w := range suite.All() {
		row := Figure6bcRow{
			Name:      w.Name(),
			Overhead:  map[workloads.Size]float64{},
			LoadBacks: map[workloads.Size]uint64{},
		}
		for _, size := range workloads.Sizes() {
			lib, err := r.get(w, sgx.LibOS, size)
			if err != nil {
				return nil, err
			}
			van, err := r.get(w, sgx.Vanilla, size)
			if err != nil {
				return nil, err
			}
			row.Overhead[size] = Overhead(lib, van)
			row.LoadBacks[size] = lib.Counters.Get(perf.EPCLoadBacks)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFigure6bc renders both panels.
func RenderFigure6bc(rows []Figure6bcRow) string {
	b := Table{
		Title:  "Figure 6b: LibOS-mode runtime overhead vs Vanilla",
		Header: []string{"Workload", "Low", "Medium", "High"},
	}
	c := Table{
		Title:  "Figure 6c: LibOS-mode EPC page load-backs",
		Header: []string{"Workload", "Low", "Medium", "High"},
	}
	for _, row := range rows {
		b.AddRow(row.Name, fx(row.Overhead[workloads.Low]), fx(row.Overhead[workloads.Medium]), fx(row.Overhead[workloads.High]))
		c.AddRow(row.Name, fc(float64(row.LoadBacks[workloads.Low])), fc(float64(row.LoadBacks[workloads.Medium])), fc(float64(row.LoadBacks[workloads.High])))
	}
	return b.String() + "\n" + c.String()
}

// Figure6dData compares default and switchless OCALLs on Lighttpd.
type Figure6dData struct {
	DefaultLatency    float64
	SwitchlessLatency float64
	DefaultDTLB       uint64
	SwitchlessDTLB    uint64
}

// Figure6d regenerates §5.6: switchless calls avoid enclave exits and
// their TLB flushes.
func (r *Runner) Figure6d() (*Figure6dData, error) {
	w, err := suite.ByName("Lighttpd")
	if err != nil {
		return nil, err
	}
	results, err := r.batch([]Spec{
		{Workload: w, Mode: sgx.LibOS, Size: workloads.Medium},
		{Workload: w, Mode: sgx.LibOS, Size: workloads.Medium, Switchless: true},
	})
	if err != nil {
		return nil, err
	}
	def, sw := results[0], results[1]
	return &Figure6dData{
		DefaultLatency:    def.Output.MeanLatency,
		SwitchlessLatency: sw.Output.MeanLatency,
		DefaultDTLB:       def.Counters.Get(perf.DTLBMisses),
		SwitchlessDTLB:    sw.Counters.Get(perf.DTLBMisses),
	}, nil
}

// Render renders Figure 6d.
func (d *Figure6dData) Render() string {
	t := Table{
		Title:  "Figure 6d: Lighttpd with switchless OCALLs (LibOS, Medium)",
		Header: []string{"", "Default", "Switchless", "Change"},
	}
	t.AddRow("Mean latency (us)",
		fmt.Sprintf("%.1f", cycles.Micros(uint64(d.DefaultLatency))),
		fmt.Sprintf("%.1f", cycles.Micros(uint64(d.SwitchlessLatency))),
		fmt.Sprintf("%+.0f%%", 100*(d.SwitchlessLatency-d.DefaultLatency)/d.DefaultLatency))
	t.AddRow("dTLB misses",
		fc(float64(d.DefaultDTLB)), fc(float64(d.SwitchlessDTLB)),
		fmt.Sprintf("%+.0f%%", 100*(float64(d.SwitchlessDTLB)-float64(d.DefaultDTLB))/float64(d.DefaultDTLB)))
	return t.String()
}

// Figure7Row is one EPC driver operation's latency.
type Figure7Row struct {
	Op      epc.Op
	Samples uint64
	MeanUS  float64
}

// Figure7 regenerates Appendix A: the latencies of the core SGX
// driver operations, sampled from an EPC-thrashing run (HashJoin,
// High, Native).
func (r *Runner) Figure7() ([]Figure7Row, error) {
	w, err := suite.ByName("HashJoin")
	if err != nil {
		return nil, err
	}
	res, err := r.get(w, sgx.Native, workloads.High)
	if err != nil {
		return nil, err
	}
	var out []Figure7Row
	for _, op := range []epc.Op{epc.OpAlloc, epc.OpEWB, epc.OpELDU, epc.OpFault} {
		st := res.OpStats[op]
		out = append(out, Figure7Row{Op: op, Samples: st.Samples, MeanUS: st.MeanMicros()})
	}
	return out, nil
}

// RenderFigure7 renders the operation latencies.
func RenderFigure7(rows []Figure7Row) string {
	t := Table{
		Title:  "Figure 7: latency of core Intel SGX operations",
		Header: []string{"Operation", "Samples", "Mean latency (us)"},
	}
	for _, row := range rows {
		t.AddRow(row.Op.String(), fc(float64(row.Samples)), fmt.Sprintf("%.2f", row.MeanUS))
	}
	var ewb, eldu float64
	for _, row := range rows {
		switch row.Op {
		case epc.OpEWB:
			ewb = row.MeanUS
		case epc.OpELDU:
			eldu = row.MeanUS
		}
	}
	if eldu > 0 {
		t.AddNote("EWB/ELDU latency ratio: %.2f (paper: ~1.16)", ewb/eldu)
	}
	return t.String()
}

// Figure8Cell is one workload x counter overhead ratio in Native mode
// relative to Vanilla.
type Figure8Data struct {
	Workloads []string
	Events    []perf.Event
	// Ratio[workload][size][event]
	Ratio map[string]map[workloads.Size]map[perf.Event]float64
}

// figure8Events are the heat-map columns.
var figure8Events = []perf.Event{
	perf.DTLBMisses, perf.WalkCycles, perf.StallCycles,
	perf.PageFaults, perf.LLCMisses, perf.EPCEvictions,
}

// Figure8 regenerates the Native-mode counter heat map of Appendix B.
func (r *Runner) Figure8() (*Figure8Data, error) {
	d := &Figure8Data{
		Events: figure8Events,
		Ratio:  map[string]map[workloads.Size]map[perf.Event]float64{},
	}
	if err := r.prefetch(GridSpecs(suite.Native(),
		[]sgx.Mode{sgx.Native, sgx.Vanilla}, workloads.Sizes())); err != nil {
		return nil, err
	}
	for _, w := range suite.Native() {
		d.Workloads = append(d.Workloads, w.Name())
		d.Ratio[w.Name()] = map[workloads.Size]map[perf.Event]float64{}
		for _, size := range workloads.Sizes() {
			nat, err := r.get(w, sgx.Native, size)
			if err != nil {
				return nil, err
			}
			van, err := r.get(w, sgx.Vanilla, size)
			if err != nil {
				return nil, err
			}
			m := map[perf.Event]float64{}
			for _, e := range figure8Events {
				m[e] = nat.Counters.Ratio(van.Counters, e)
			}
			d.Ratio[w.Name()][size] = m
		}
	}
	return d, nil
}

// Render renders the heat map as per-size tables with a log-scale
// shade character per cell.
func (d *Figure8Data) Render() string {
	var b strings.Builder
	for _, size := range workloads.Sizes() {
		t := Table{
			Title:  fmt.Sprintf("Figure 8 (%s): Native-mode counter overheads vs Vanilla", size),
			Header: []string{"Workload"},
		}
		for _, e := range d.Events {
			t.Header = append(t.Header, e.String())
		}
		for _, name := range d.Workloads {
			cells := []string{name}
			for _, e := range d.Events {
				v := d.Ratio[name][size][e]
				cells = append(cells, fmt.Sprintf("%s %s", shade(v), fx(v)))
			}
			t.AddRow(cells...)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// shade maps a ratio to a log-scale heat character.
func shade(v float64) string {
	switch {
	case v >= 100:
		return "@"
	case v >= 10:
		return "#"
	case v >= 3:
		return "+"
	case v >= 1.5:
		return "."
	default:
		return " "
	}
}
