package harness

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"sgxgauge/internal/chaos"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// TestSpecJSONRoundTrip: Spec -> JSON -> Spec must be identical for
// every serializable field, and re-encoding must reproduce the exact
// bytes (the canonical-encoding property the cache key rests on).
func TestSpecJSONRoundTrip(t *testing.T) {
	w, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{
		{Workload: w, Mode: sgx.Native, Size: workloads.Medium},
		{
			Workload:       w,
			Mode:           sgx.LibOS,
			Size:           workloads.High,
			EPCPages:       1024,
			Seed:           42,
			Switchless:     true,
			ProtectedFiles: true,
			Timeline:       7,
			Params: &workloads.Params{
				Size:    workloads.Low,
				Threads: 2,
				Knobs:   map[string]int64{"ops": 500, "keys": 100},
			},
			Machine: &sgx.Config{EPCPages: 1024, TLBEntries: 64, Switchless: true},
			Chaos:   &chaos.Config{Seed: 9, Rate: 0.01, AEXStorm: true},
		},
	}
	for i, spec := range specs {
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("spec %d: marshal: %v", i, err)
		}
		var back Spec
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("spec %d: unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Errorf("spec %d: round trip drifted:\n  in:  %+v\n  out: %+v", i, spec, back)
		}
		re, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("spec %d: re-marshal: %v", i, err)
		}
		if string(enc) != string(re) {
			t.Errorf("spec %d: encoding not canonical:\n  first:  %s\n  second: %s", i, enc, re)
		}
	}
}

// TestSpecJSONEnumNames: enums travel as paper names, not integers.
func TestSpecJSONEnumNames(t *testing.T) {
	w, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(Spec{Workload: w, Mode: sgx.LibOS, Size: workloads.High})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"workload":"BTree"`, `"mode":"LibOS"`, `"size":"High"`} {
		if !strings.Contains(string(enc), want) {
			t.Errorf("encoding %s lacks %s", enc, want)
		}
	}
}

// TestSpecJSONValidation: unknown workloads, modes, sizes and fields
// are rejected with errors that list the valid names.
func TestSpecJSONValidation(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"workload", `{"workload":"NoSuch","mode":"Native","size":"Low"}`, "valid: "},
		{"mode", `{"workload":"BTree","mode":"Turbo","size":"Low"}`, "Vanilla, Native, LibOS"},
		{"size", `{"workload":"BTree","mode":"Native","size":"Huge"}`, "Low, Medium, High"},
		{"field", `{"workload":"BTree","mode":"Native","size":"Low","bogus":1}`, "bogus"},
		{"missing", `{"mode":"Native","size":"Low"}`, "no workload"},
	}
	for _, c := range cases {
		var s Spec
		err := json.Unmarshal([]byte(c.in), &s)
		if err == nil {
			t.Errorf("%s: decode of %s succeeded, want error", c.name, c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// TestKeyHexRoundTrip: Key <-> hex string.
func TestKeyHexRoundTrip(t *testing.T) {
	w, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	k, err := SpecKey(Spec{Workload: w, Mode: sgx.Native, Size: workloads.Low})
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseKey(k.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != k {
		t.Errorf("hex round trip drifted: %v != %v", back, k)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Error("malformed key parsed")
	}
}

// TestSpecKeyDistinguishesChaos is the regression test for the old
// string cache key, which ignored the Chaos config entirely: two specs
// differing only in fault injection shared one cache slot, so a chaos
// run could be served a clean cached result (and vice versa).
func TestSpecKeyDistinguishesChaos(t *testing.T) {
	w, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	base := Spec{Workload: w, Mode: sgx.Native, Size: workloads.Low, EPCPages: testEPC, Seed: 7}
	chaotic := base
	chaotic.Chaos = &chaos.Config{Seed: 11, Rate: 0.01, AEXStorm: true}
	otherRate := base
	otherRate.Chaos = &chaos.Config{Seed: 11, Rate: 0.05, AEXStorm: true}

	kBase, err := SpecKey(base)
	if err != nil {
		t.Fatal(err)
	}
	kChaos, err := SpecKey(chaotic)
	if err != nil {
		t.Fatal(err)
	}
	kOther, err := SpecKey(otherRate)
	if err != nil {
		t.Fatal(err)
	}
	if kBase == kChaos || kChaos == kOther {
		t.Fatal("specs differing only in chaos config share a cache key")
	}

	// End to end: the runner must not serve the clean result for the
	// chaotic spec.
	r := NewRunner(testEPC)
	clean, err := r.Run(base)
	if err != nil || clean.Err != nil {
		t.Fatalf("clean run failed: %v / %v", err, clean.Err)
	}
	res, err := r.Run(chaotic)
	if err != nil {
		t.Fatal(err)
	}
	if res == clean {
		t.Fatal("chaotic spec served the clean spec's cached result")
	}
}

// TestHookedSpecsBypassCache: a spec carrying Hooks must execute every
// time (a function value is not part of the canonical identity, so
// serving it from cache would skip the hook — the other half of the
// old cache-key bug), and its result must not poison the cache for the
// hookless identical spec.
func TestHookedSpecsBypassCache(t *testing.T) {
	w, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(testEPC)
	r.Seed = 7
	var hooked atomic.Int64
	spec := Spec{Workload: w, Mode: sgx.Native, Size: workloads.Low}
	withHook := spec
	withHook.Hooks = Hooks{OnMachine: func(*sgx.Machine) { hooked.Add(1) }}

	for i := 0; i < 2; i++ {
		if _, err := r.Run(withHook); err != nil {
			t.Fatal(err)
		}
	}
	if got := hooked.Load(); got != 2 {
		t.Fatalf("hook ran %d times, want 2 (hooked specs must not be cached)", got)
	}
	if n := r.Cache.Len(); n != 0 {
		t.Fatalf("hooked runs landed in the cache (%d entries)", n)
	}

	// The hookless spec still caches normally afterwards.
	a, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("hookless spec not served from cache")
	}
	if got := hooked.Load(); got != 2 {
		t.Errorf("hookless runs invoked the hook (%d calls)", got)
	}
}
