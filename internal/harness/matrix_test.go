package harness

import (
	"testing"

	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// TestFullMatrix runs every workload in every supported mode at every
// input setting and checks (a) nothing errors, (b) the functional
// checksums agree across modes, and (c) overheads are ordered sanely.
func TestFullMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow; run without -short")
	}
	r := NewRunner(testEPC)
	r.Seed = 1
	for _, w := range suite.All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			for _, size := range workloads.Sizes() {
				modes := []sgx.Mode{sgx.Vanilla, sgx.LibOS}
				if w.NativePort() {
					modes = []sgx.Mode{sgx.Vanilla, sgx.Native, sgx.LibOS}
				}
				results := map[sgx.Mode]*Result{}
				for _, mode := range modes {
					res, err := r.Get(w, mode, size)
					if err != nil {
						t.Fatalf("%v/%v: %v", mode, size, err)
					}
					results[mode] = res
				}
				base := results[sgx.Vanilla]
				for _, mode := range modes[1:] {
					res := results[mode]
					if res.Output.Checksum != base.Output.Checksum {
						t.Errorf("%v/%v: checksum %#x != Vanilla %#x",
							mode, size, res.Output.Checksum, base.Output.Checksum)
					}
					if ovh := Overhead(res, base); ovh < 1.0 {
						t.Errorf("%v/%v: SGX mode faster than Vanilla (%.2fx)", mode, size, ovh)
					}
				}
			}
		})
	}
}
