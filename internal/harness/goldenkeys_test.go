package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sgxgauge/internal/chaos"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// goldenKeyEntry pins one legacy spec's canonical encoding and key.
// The golden file was generated before the scenario wire envelope
// existed, so this test is the proof that extending SpecWire never
// moves a pre-existing spec's cache/store/cluster identity: every
// result persisted by an older daemon must stay addressable.
type goldenKeyEntry struct {
	// Label names the entry in failures.
	Label string `json:"label"`
	// Spec is the spec's canonical JSON encoding at generation time.
	Spec json.RawMessage `json:"spec"`
	// Key is hex(SHA-256(Spec)) — what SpecKey returned then.
	Key string `json:"key"`
}

const goldenKeysPath = "testdata/golden_keys.json"

// compactJSON strips the indentation MarshalIndent applies to the
// embedded raw spec documents, so encodings compare structurally while
// the hex key still pins the exact canonical bytes.
func compactJSON(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compacting %s: %v", raw, err)
	}
	return buf.String()
}

// goldenKeySpecs returns the legacy spec corpus the golden file pins:
// one spec per wire feature that existed before the scenario envelope
// (modes, sizes, knobs, machine config, chaos config, aux workloads).
func goldenKeySpecs(t *testing.T) []struct {
	Label string
	Spec  Spec
} {
	t.Helper()
	byName := func(name string) workloads.Workload {
		w, err := suite.ByName(name)
		if err != nil {
			t.Fatalf("golden workload %s: %v", name, err)
		}
		return w
	}
	return []struct {
		Label string
		Spec  Spec
	}{
		{"btree-native-medium", Spec{Workload: byName("BTree"), Mode: sgx.Native, Size: workloads.Medium}},
		{"blockchain-vanilla-low-seeded", Spec{Workload: byName("Blockchain"), Mode: sgx.Vanilla, Size: workloads.Low, Seed: 7, EPCPages: 256}},
		{"lighttpd-libos-high-pf-switchless", Spec{Workload: byName("Lighttpd"), Mode: sgx.LibOS, Size: workloads.High, ProtectedFiles: true, Switchless: true}},
		{"memcached-params-knobs", Spec{
			Workload: byName("Memcached"), Mode: sgx.LibOS, Size: workloads.Low,
			Params: &workloads.Params{
				Size:    workloads.Medium,
				Threads: 4,
				Knobs:   map[string]int64{"ops": 512, "records": 1024},
			},
		}},
		{"hashjoin-machine-config", Spec{
			Workload: byName("HashJoin"), Mode: sgx.Native, Size: workloads.Medium,
			Machine: &sgx.Config{EPCPages: 384, TLBEntries: 128, TLBWays: 4, IntegrityTree: true},
		}},
		{"bfs-chaos", Spec{
			Workload: byName("BFS"), Mode: sgx.Native, Size: workloads.Low, Seed: 11,
			Chaos: &chaos.Config{Seed: 17, Rate: 0.01, AEXStorm: true, MemTamper: true},
		}},
		{"empty-native-timeline", Spec{Workload: suite.Empty(), Mode: sgx.Native, Size: workloads.Low, Timeline: 64}},
		{"iozone-libos", Spec{Workload: suite.Iozone(), Mode: sgx.LibOS, Size: workloads.Medium}},
	}
}

// TestGoldenSpecKeysUnchanged locks every legacy spec's canonical
// encoding and SHA-256 key to the committed golden file. Regenerate
// deliberately (only when an intentional, migration-managed schema
// break is shipped) with:
//
//	SGXGAUGE_UPDATE_GOLDEN=1 go test ./internal/harness -run TestGoldenSpecKeys
func TestGoldenSpecKeysUnchanged(t *testing.T) {
	specs := goldenKeySpecs(t)
	current := make([]goldenKeyEntry, 0, len(specs))
	for _, s := range specs {
		enc, err := json.Marshal(s.Spec)
		if err != nil {
			t.Fatalf("%s: encoding: %v", s.Label, err)
		}
		key, err := SpecKey(s.Spec)
		if err != nil {
			t.Fatalf("%s: key: %v", s.Label, err)
		}
		current = append(current, goldenKeyEntry{Label: s.Label, Spec: enc, Key: key.String()})
	}

	if os.Getenv("SGXGAUGE_UPDATE_GOLDEN") != "" {
		out, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenKeysPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenKeysPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d entries", goldenKeysPath, len(current))
		return
	}

	data, err := os.ReadFile(goldenKeysPath)
	if err != nil {
		t.Fatalf("reading golden keys (regenerate with SGXGAUGE_UPDATE_GOLDEN=1): %v", err)
	}
	var golden []goldenKeyEntry
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("parsing %s: %v", goldenKeysPath, err)
	}
	if len(golden) != len(current) {
		t.Fatalf("golden file has %d entries, corpus has %d", len(golden), len(current))
	}
	for i, want := range golden {
		got := current[i]
		if got.Label != want.Label {
			t.Fatalf("entry %d: label %q, golden %q", i, got.Label, want.Label)
		}
		if compactJSON(t, got.Spec) != compactJSON(t, want.Spec) {
			t.Errorf("%s: canonical encoding changed:\n got %s\nwant %s", want.Label, got.Spec, want.Spec)
		}
		if got.Key != want.Key {
			t.Errorf("%s: SpecKey changed: got %s, want %s", want.Label, got.Key, want.Key)
		}
	}
}
