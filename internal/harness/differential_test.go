package harness

import (
	"reflect"
	"testing"

	"sgxgauge/internal/chaos"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// Whole-workload differential runs: the same spec executed through the
// machine's optimized access path and through Config.SlowPath must
// produce bit-identical simulated results — cycles, every counter,
// startup split and functional output. This is the end-to-end
// counterpart of the sgx package's lockstep test: it covers the real
// workloads' access mixes (ECALL batches, Memset/Memcpy bulk paths,
// parallel phases, LibOS startup storms) rather than a synthetic
// script.

func runDifferential(t *testing.T, spec Spec) {
	t.Helper()
	fastSpec, slowSpec := spec, spec
	slowMachine := sgx.Config{}
	if spec.Machine != nil {
		slowMachine = *spec.Machine
	}
	slowMachine.SlowPath = true
	slowSpec.Machine = &slowMachine

	fast, errF := runOne(fastSpec)
	slow, errS := runOne(slowSpec)
	if (errF == nil) != (errS == nil) || (errF != nil && errF.Error() != errS.Error()) {
		t.Fatalf("errors diverged: fast %v, slow %v", errF, errS)
	}
	if errF != nil {
		// Both failed identically (a chaos spec may abort); the
		// partial results must still agree.
		if fast == nil || slow == nil {
			return
		}
	}
	if fast.Cycles != slow.Cycles {
		t.Errorf("Cycles: fast %d, slow %d (drift %d)",
			fast.Cycles, slow.Cycles, int64(fast.Cycles)-int64(slow.Cycles))
	}
	if fast.StartupCycles != slow.StartupCycles {
		t.Errorf("StartupCycles: fast %d, slow %d", fast.StartupCycles, slow.StartupCycles)
	}
	if fast.Counters != slow.Counters {
		t.Errorf("measured counters diverged:\nfast %v\nslow %v", fast.Counters, slow.Counters)
	}
	if fast.TotalCounters != slow.TotalCounters {
		t.Errorf("total counters diverged:\nfast %v\nslow %v", fast.TotalCounters, slow.TotalCounters)
	}
	if fast.StartupCounters != slow.StartupCounters {
		t.Errorf("startup counters diverged:\nfast %v\nslow %v",
			fast.StartupCounters, slow.StartupCounters)
	}
	if fast.Output.Checksum != slow.Output.Checksum {
		t.Errorf("Checksum: fast %#x, slow %#x", fast.Output.Checksum, slow.Output.Checksum)
	}
	if fast.Output.Ops != slow.Output.Ops {
		t.Errorf("Ops: fast %d, slow %d", fast.Output.Ops, slow.Output.Ops)
	}
	if fast.Output.MeanLatency != slow.Output.MeanLatency {
		t.Errorf("MeanLatency: fast %v, slow %v", fast.Output.MeanLatency, slow.Output.MeanLatency)
	}
	if !reflect.DeepEqual(fast.Output.Extra, slow.Output.Extra) {
		t.Errorf("Extra: fast %v, slow %v", fast.Output.Extra, slow.Output.Extra)
	}
}

func TestWorkloadFastSlowEquivalence(t *testing.T) {
	btree, err := suite.ByName("BTree")
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]Spec{
		"btree-vanilla": {Workload: btree, Mode: sgx.Vanilla, Size: workloads.Low, EPCPages: testEPC},
		"btree-native":  {Workload: btree, Mode: sgx.Native, Size: workloads.Low, EPCPages: testEPC},
		"btree-libos":   {Workload: btree, Mode: sgx.LibOS, Size: workloads.Low, EPCPages: testEPC},
		"btree-native-chaos": {
			Workload: btree, Mode: sgx.Native, Size: workloads.Low, EPCPages: testEPC,
			Seed: 3,
			Chaos: &chaos.Config{
				Seed: 17, Rate: 0.01,
				AEXStorm: true, EPCBalloon: true,
			},
		},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) { runDifferential(t, spec) })
	}
}

// TestExtentWorkloadFastSlowEquivalence runs every workload that
// emits compiled access-stream extents (ExtentPlan) through the same
// whole-run differential: the bulk-charged extent path versus
// SlowPath's per-access replay must be bit-identical in cycles,
// counters and functional output — also under mid-run chaos, where
// the machine must fall back to per-access replay with the same
// results.
func TestExtentWorkloadFastSlowEquivalence(t *testing.T) {
	for _, name := range []string{"BFS", "PageRank", "HashJoin", "XSBench"} {
		w, err := suite.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name+"-native", func(t *testing.T) {
			runDifferential(t, Spec{
				Workload: w, Mode: sgx.Native, Size: workloads.Low, EPCPages: testEPC,
			})
		})
		t.Run(name+"-native-chaos", func(t *testing.T) {
			runDifferential(t, Spec{
				Workload: w, Mode: sgx.Native, Size: workloads.Low, EPCPages: testEPC,
				Seed: 5,
				Chaos: &chaos.Config{
					Seed: 23, Rate: 0.01,
					AEXStorm: true, EPCBalloon: true,
				},
			})
		})
	}
}
