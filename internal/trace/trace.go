// Package trace implements an sgx-perf/TEEMon-style event collector
// for the simulated machine (the enclave-profiling tools the paper
// surveys in §3.1.2): it records SGX events (transitions, faults,
// paging) as they happen, summarizes them per kind, and exports the
// raw stream as CSV for offline analysis.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"sgxgauge/internal/cycles"
	"sgxgauge/internal/sgx"
)

// Collector accumulates trace events. Attach with Attach; it is not
// safe for concurrent use (the machine serializes simulated threads).
type Collector struct {
	// Keep bounds the number of retained raw events (0 = unlimited).
	Keep int

	events  []sgx.TraceEvent
	dropped uint64
	counts  [sgx.NumTraceKinds]uint64
	last    [sgx.NumTraceKinds]uint64
	gapSum  [sgx.NumTraceKinds]uint64
	gapN    [sgx.NumTraceKinds]uint64
}

// New returns a collector retaining up to keep raw events.
func New(keep int) *Collector {
	return &Collector{Keep: keep}
}

// Attach registers the collector on the machine, replacing any
// previous tracer.
func (c *Collector) Attach(m *sgx.Machine) {
	m.SetTracer(c.record)
}

func (c *Collector) record(ev sgx.TraceEvent) {
	k := ev.Kind
	c.counts[k]++
	if ev.Thread >= 0 { // events with a meaningful clock
		if c.last[k] != 0 && ev.Cycle >= c.last[k] {
			c.gapSum[k] += ev.Cycle - c.last[k]
			c.gapN[k]++
		}
		c.last[k] = ev.Cycle
	}
	if c.Keep > 0 && len(c.events) >= c.Keep {
		c.dropped++
		return
	}
	c.events = append(c.events, ev)
}

// Count returns how many events of kind k were observed (including
// any whose raw records were dropped).
func (c *Collector) Count(k sgx.TraceKind) uint64 { return c.counts[k] }

// Events returns the retained raw events in arrival order.
func (c *Collector) Events() []sgx.TraceEvent { return c.events }

// Dropped returns how many raw events were discarded due to Keep.
func (c *Collector) Dropped() uint64 { return c.dropped }

// MeanGap returns the mean inter-arrival time (in cycles) between
// consecutive events of kind k, or 0 with fewer than two events.
func (c *Collector) MeanGap(k sgx.TraceKind) float64 {
	if c.gapN[k] == 0 {
		return 0
	}
	return float64(c.gapSum[k]) / float64(c.gapN[k])
}

// Summary renders a per-kind count/inter-arrival table, the view an
// enclave developer uses to find transition-heavy phases.
func (c *Collector) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %16s\n", "event", "count", "mean gap (us)")
	kinds := make([]sgx.TraceKind, 0, sgx.NumTraceKinds)
	for k := sgx.TraceKind(0); int(k) < sgx.NumTraceKinds; k++ {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return c.counts[kinds[i]] > c.counts[kinds[j]] })
	for _, k := range kinds {
		if c.counts[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %10d %16.2f\n", k, c.counts[k], cycles.Micros(uint64(c.MeanGap(k))))
	}
	if c.dropped > 0 {
		fmt.Fprintf(&b, "(%d raw events dropped beyond Keep=%d)\n", c.dropped, c.Keep)
	}
	return b.String()
}

// CSV renders the retained raw events as "cycle,kind,thread,addr"
// rows with a header, for offline tooling.
func (c *Collector) CSV() string {
	var b strings.Builder
	b.WriteString("cycle,kind,thread,addr\n")
	for _, ev := range c.events {
		fmt.Fprintf(&b, "%d,%s,%d,%#x\n", ev.Cycle, ev.Kind, ev.Thread, ev.Addr)
	}
	return b.String()
}

// Reset clears all state.
func (c *Collector) Reset() {
	c.events = c.events[:0]
	c.dropped = 0
	for i := range c.counts {
		c.counts[i] = 0
		c.last[i] = 0
		c.gapSum[i] = 0
		c.gapN[i] = 0
	}
}
