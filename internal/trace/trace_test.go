package trace

import (
	"strings"
	"testing"

	"sgxgauge/internal/mem"
	"sgxgauge/internal/sgx"
)

// driveActivity produces a deterministic mix of SGX events.
func driveActivity(t *testing.T, m *sgx.Machine) {
	t.Helper()
	env := m.NewEnv(sgx.Native)
	if _, err := env.LaunchEnclave(2, 96); err != nil {
		t.Fatal(err)
	}
	tr := env.Main
	heap := env.MustAlloc(48*mem.PageSize, mem.PageSize)
	for i := 0; i < 4; i++ {
		tr.ECall(func() {
			for p := uint64(0); p < 48; p++ {
				tr.WriteU64(heap+p*mem.PageSize, p)
			}
			tr.Syscall(100)
		})
	}
}

func TestCollectorCountsAndEvents(t *testing.T) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 32})
	c := New(0)
	c.Attach(m)
	driveActivity(t, m)

	if c.Count(sgx.TraceECall) != 4 {
		t.Errorf("ecalls = %d, want 4", c.Count(sgx.TraceECall))
	}
	if c.Count(sgx.TraceOCall) != 4 { // one syscall OCALL per ECALL
		t.Errorf("ocalls = %d, want 4", c.Count(sgx.TraceOCall))
	}
	if c.Count(sgx.TraceFault) == 0 || c.Count(sgx.TraceEvict) == 0 {
		t.Error("no paging events recorded under thrash")
	}
	if c.Count(sgx.TraceAEX) != c.Count(sgx.TraceFault) {
		t.Errorf("AEX (%d) != in-enclave faults (%d)", c.Count(sgx.TraceAEX), c.Count(sgx.TraceFault))
	}
	// Raw events arrive in causal order with monotone cycles per
	// thread.
	var lastCycle uint64
	for _, ev := range c.Events() {
		if ev.Thread < 0 {
			continue
		}
		if ev.Cycle < lastCycle {
			t.Fatal("trace cycles not monotone")
		}
		lastCycle = ev.Cycle
	}
}

func TestFaultAddressesArePageAligned(t *testing.T) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 32})
	c := New(0)
	c.Attach(m)
	driveActivity(t, m)
	for _, ev := range c.Events() {
		if ev.Kind == sgx.TraceFault && ev.Addr%mem.PageSize != 0 {
			t.Fatalf("fault address %#x not page aligned", ev.Addr)
		}
	}
}

func TestKeepBoundsMemory(t *testing.T) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 32})
	c := New(10)
	c.Attach(m)
	driveActivity(t, m)
	if len(c.Events()) != 10 {
		t.Errorf("retained %d events, want 10", len(c.Events()))
	}
	if c.Dropped() == 0 {
		t.Error("no drops recorded despite Keep bound")
	}
	// Counts still cover everything.
	if c.Count(sgx.TraceECall) != 4 {
		t.Error("counts lost under Keep bound")
	}
}

func TestSummaryAndCSV(t *testing.T) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 32})
	c := New(0)
	c.Attach(m)
	driveActivity(t, m)

	sum := c.Summary()
	for _, want := range []string{"ecall", "fault", "count"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	csv := c.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "cycle,kind,thread,addr" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines)-1 != len(c.Events()) {
		t.Errorf("csv rows = %d, events = %d", len(lines)-1, len(c.Events()))
	}
}

func TestMeanGapAndReset(t *testing.T) {
	m := sgx.NewMachine(sgx.Config{EPCPages: 32})
	c := New(0)
	c.Attach(m)
	driveActivity(t, m)
	if c.MeanGap(sgx.TraceECall) <= 0 {
		t.Error("no inter-arrival gap for repeated ECALLs")
	}
	c.Reset()
	if c.Count(sgx.TraceECall) != 0 || len(c.Events()) != 0 {
		t.Error("Reset left state behind")
	}
}

func TestUntracedMachineHasNoOverhead(t *testing.T) {
	// A machine without a tracer must behave identically (tracing
	// costs nothing in simulated time either way).
	run := func(attach bool) uint64 {
		m := sgx.NewMachine(sgx.Config{EPCPages: 32})
		if attach {
			New(0).Attach(m)
		}
		env := m.NewEnv(sgx.Native)
		if _, err := env.LaunchEnclave(2, 96); err != nil {
			t.Fatal(err)
		}
		tr := env.Main
		heap := env.MustAlloc(48*mem.PageSize, mem.PageSize)
		tr.ECall(func() {
			for p := uint64(0); p < 48; p++ {
				tr.WriteU64(heap+p*mem.PageSize, p)
			}
		})
		return tr.Clock.Cycles()
	}
	if run(true) != run(false) {
		t.Error("tracing changed simulated time")
	}
}
