// Package mem provides the physical-memory primitives of the simulated
// machine: fixed-size page frames, a frame pool, and the untrusted
// backing store that holds pages evicted from the EPC.
package mem

import (
	"fmt"
	"sync"
)

// PageSize is the size of one page in bytes (4 KiB, as on x86 and as
// assumed throughout the paper: a 4 GB enclave is "1 M * 4 KB").
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// LineSize is the size of one cache line in bytes.
const LineSize = 64

// PageBase returns the page-aligned base of addr.
func PageBase(addr uint64) uint64 { return addr &^ (PageSize - 1) }

// PageNumber returns the virtual page number of addr.
func PageNumber(addr uint64) uint64 { return addr >> PageShift }

// LineNumber returns the cache-line number of addr.
func LineNumber(addr uint64) uint64 { return addr / LineSize }

// Frame is one physical page frame.
type Frame struct {
	Data [PageSize]byte
}

// Pool recycles page frames to keep allocation pressure low during
// long simulations. It is safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	free []*Frame // guarded by mu
}

// Get returns a zeroed frame, reusing a recycled one when available.
func (p *Pool) Get() *Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		f.Data = [PageSize]byte{}
		return f
	}
	return &Frame{}
}

// Put returns a frame to the pool.
func (p *Pool) Put(f *Frame) {
	if f == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, f)
}

// PageID identifies an enclave page: the owning enclave and the
// virtual page number within it. Enclave 0 is reserved for untrusted
// (non-enclave) memory.
type PageID struct {
	Enclave uint32
	VPN     uint64
}

func (id PageID) String() string {
	return fmt.Sprintf("enclave %d vpn %#x", id.Enclave, id.VPN)
}

// SealedPage is an encrypted page together with the metadata the MEE
// needs to verify it on load-back (paper §2.2: pages are evicted "in an
// encrypted form" with a MAC, and integrity-checked when brought back).
// The MAC is the MEE's 128-bit AES-GCM tag.
type SealedPage struct {
	ID         PageID
	Version    uint64
	Ciphertext [PageSize]byte
	MAC        [16]byte
}

// BackingStore is the untrusted main memory region that receives
// evicted (sealed) EPC pages. It is safe for concurrent use.
//
// A *SealedPage obtained from Get stays valid until that entry is
// deleted or replaced; afterwards its storage may be recycled through
// Reserve and overwritten by a later seal. Callers that need a sealed
// image beyond that point (e.g. to replay it later) must copy the
// struct, not hold the pointer.
type BackingStore struct {
	mu    sync.Mutex
	pages map[PageID]*SealedPage // guarded by mu
	// free recycles the storage of dead entries: evicting a page
	// allocates a 4 KiB+ SealedPage, and an EPC-thrashing run retires
	// one per load-back, so recycling removes the dominant allocation
	// of the whole simulation. Bounded so enclave teardown cannot pin
	// an arbitrary amount of dead memory.
	free []*SealedPage // guarded by mu
}

// maxFreeSealed bounds the recycling list: enough to feed several
// eviction storms (the EPC seals 16 pages per batch) without
// retaining more than ~¼ MiB of dead pages.
const maxFreeSealed = 64

// NewBackingStore returns an empty backing store.
func NewBackingStore() *BackingStore {
	return &BackingStore{pages: make(map[PageID]*SealedPage)}
}

// recycle adds a dead entry to the free list; caller holds mu.
func (b *BackingStore) recycle(p *SealedPage) {
	if len(b.free) < maxFreeSealed {
		b.free = append(b.free, p)
	}
}

// Reserve returns a SealedPage whose storage may be recycled from a
// dead entry, or nil when none is available (the caller allocates).
// Every field must be overwritten before the page is stored.
func (b *BackingStore) Reserve() *SealedPage {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n := len(b.free); n > 0 {
		p := b.free[n-1]
		b.free = b.free[:n-1]
		return p
	}
	return nil
}

// Put stores the sealed page, replacing any previous version.
func (b *BackingStore) Put(p *SealedPage) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if old := b.pages[p.ID]; old != nil && old != p {
		b.recycle(old)
	}
	b.pages[p.ID] = p
}

// Get returns the sealed page for id, or nil when the page was never
// evicted.
func (b *BackingStore) Get(id PageID) *SealedPage {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pages[id]
}

// Delete removes the sealed page for id, if present.
func (b *BackingStore) Delete(id PageID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if old := b.pages[id]; old != nil {
		b.recycle(old)
		delete(b.pages, id)
	}
}

// Len returns the number of sealed pages currently stored.
func (b *BackingStore) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pages)
}

// DropEnclave removes every sealed page belonging to the enclave.
func (b *BackingStore) DropEnclave(enclave uint32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, p := range b.pages {
		if id.Enclave == enclave {
			b.recycle(p)
			delete(b.pages, id)
		}
	}
}
