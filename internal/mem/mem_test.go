package mem

import (
	"testing"
	"testing/quick"
)

func TestPageMath(t *testing.T) {
	cases := []struct {
		addr       uint64
		base, vpn  uint64
		lineNumber uint64
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 0},
		{4095, 0, 0, 63},
		{4096, 4096, 1, 64},
		{0x7000_0000_1234, 0x7000_0000_1000, 0x7000_0000_1, 0x1C0_0000_0048},
	}
	for _, c := range cases {
		if got := PageBase(c.addr); got != c.base {
			t.Errorf("PageBase(%#x) = %#x, want %#x", c.addr, got, c.base)
		}
		if got := PageNumber(c.addr); got != c.vpn {
			t.Errorf("PageNumber(%#x) = %#x, want %#x", c.addr, got, c.vpn)
		}
		if got := LineNumber(c.addr); got != c.lineNumber {
			t.Errorf("LineNumber(%#x) = %#x, want %#x", c.addr, got, c.lineNumber)
		}
	}
}

func TestPageMathProperties(t *testing.T) {
	f := func(addr uint64) bool {
		return PageBase(addr)%PageSize == 0 &&
			PageBase(addr) <= addr &&
			addr-PageBase(addr) < PageSize &&
			PageNumber(addr) == PageBase(addr)/PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoolRecyclesZeroed(t *testing.T) {
	var p Pool
	f := p.Get()
	f.Data[0] = 0xAA
	f.Data[PageSize-1] = 0xBB
	p.Put(f)
	g := p.Get()
	if g != f {
		t.Fatal("pool did not recycle the frame")
	}
	if g.Data[0] != 0 || g.Data[PageSize-1] != 0 {
		t.Error("recycled frame was not zeroed")
	}
}

func TestPoolPutNil(t *testing.T) {
	var p Pool
	p.Put(nil) // must not panic
	if f := p.Get(); f == nil {
		t.Fatal("Get returned nil")
	}
}

func TestBackingStoreRoundTrip(t *testing.T) {
	b := NewBackingStore()
	id := PageID{Enclave: 3, VPN: 0x123}
	if b.Get(id) != nil {
		t.Fatal("empty store returned a page")
	}
	sp := &SealedPage{ID: id, Version: 7}
	b.Put(sp)
	if got := b.Get(id); got != sp {
		t.Fatal("Get returned wrong page")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
	// Replacement keeps one entry.
	sp2 := &SealedPage{ID: id, Version: 8}
	b.Put(sp2)
	if got := b.Get(id); got != sp2 || b.Len() != 1 {
		t.Fatal("Put did not replace")
	}
	b.Delete(id)
	if b.Get(id) != nil || b.Len() != 0 {
		t.Fatal("Delete did not remove")
	}
	b.Delete(id) // idempotent
}

func TestBackingStoreDropEnclave(t *testing.T) {
	b := NewBackingStore()
	for vpn := uint64(0); vpn < 10; vpn++ {
		b.Put(&SealedPage{ID: PageID{Enclave: 1, VPN: vpn}})
		b.Put(&SealedPage{ID: PageID{Enclave: 2, VPN: vpn}})
	}
	b.DropEnclave(1)
	if b.Len() != 10 {
		t.Fatalf("Len = %d after DropEnclave, want 10", b.Len())
	}
	if b.Get(PageID{Enclave: 1, VPN: 3}) != nil {
		t.Error("enclave 1 page survived DropEnclave")
	}
	if b.Get(PageID{Enclave: 2, VPN: 3}) == nil {
		t.Error("enclave 2 page was dropped")
	}
}

func TestPageIDString(t *testing.T) {
	s := PageID{Enclave: 5, VPN: 0x10}.String()
	if s != "enclave 5 vpn 0x10" {
		t.Errorf("String = %q", s)
	}
}
