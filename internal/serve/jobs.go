package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/journal"
)

// maxResidentJobs bounds how many finished jobs stay resident (and
// reattachable) in memory; older ones are evicted oldest-first. After
// a restart every journaled job is reattachable again via the lazy
// replay path, so eviction only narrows the in-process window.
const maxResidentJobs = 256

// DefaultMaxQueue is the admission high-water mark: the number of
// admitted-but-unfinished specs past which new jobs are shed with 429.
const DefaultMaxQueue = 4096

// errOverloaded marks admission-control rejections so handlers map
// them to 429 + Retry-After instead of 500.
var errOverloaded = errors.New("serve: queue full, retry later")

// job is one accepted unit of API work — a run, a sweep, or a figure
// render — executing detached from any client connection. Its event
// log is the single source every attached stream reads: handleSweep
// streams it live, GET /v1/jobs/{id} replays it from any offset, and
// a client that disconnects loses nothing but its TCP stream.
//
// A lazy job is a finished job reconstructed from the journal after a
// restart: it has no resident event log, and its result events are
// rebuilt on demand from the content-addressed results (re-executing
// any evicted key — deterministic simulation makes the bytes
// identical either way).
type job struct {
	id     string
	kind   string // "run", "sweep", "figure"
	specs  []harness.Spec
	keys   []harness.Key
	keyOK  []bool
	figure string
	// weight is the job's admission debit, released when it finishes.
	weight int
	lazy   bool

	mu sync.Mutex
	// events is the ordered log of everything the job has emitted.
	// guarded by mu
	events []sweepEvent
	// finished marks the terminal event appended. guarded by mu
	finished bool
	// termErr is the lazy-job terminal error (journaled job-level
	// failure). guarded by mu
	termErr string
	// output is a figure job's rendered text. guarded by mu
	output string
	// notify is closed and replaced on every append, waking streamers.
	// guarded by mu
	notify chan struct{}

	// recMu guards recorded: task indexes already journaled, seeded
	// from the replayed journal state so recovery appends no
	// duplicates.
	recMu sync.Mutex
	// recorded maps task index -> journaled completion. guarded by recMu
	recorded map[int]journal.TaskDone
}

func (jb *job) append(ev sweepEvent) {
	jb.mu.Lock()
	jb.events = append(jb.events, ev)
	if ev.Event == "done" || ev.Event == "error" {
		jb.finished = true
	}
	close(jb.notify)
	jb.notify = make(chan struct{})
	jb.mu.Unlock()
}

// snapshotFrom returns the events appended since index from, whether
// the job is finished, and the channel that will close on the next
// append. The channel is captured under the same lock as the events,
// so a streamer that sees no new events cannot miss the wakeup for
// one appended just after.
func (jb *job) snapshotFrom(from int) ([]sweepEvent, bool, <-chan struct{}) {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	var evs []sweepEvent
	if from < len(jb.events) {
		evs = jb.events[from:len(jb.events):len(jb.events)]
	}
	return evs, jb.finished, jb.notify
}

// waitDone blocks until the job appends its terminal event or ctx
// ends, reporting whether the job finished.
func (jb *job) waitDone(ctx context.Context) bool {
	for {
		jb.mu.Lock()
		finished := jb.finished
		ch := jb.notify
		jb.mu.Unlock()
		if finished {
			return true
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return false
		}
	}
}

// terminalEvent returns the job's terminal event; only meaningful
// after waitDone reported true.
func (jb *job) terminalEvent() sweepEvent {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	if n := len(jb.events); n > 0 {
		return jb.events[n-1]
	}
	return sweepEvent{Event: "error", Error: "serve: job produced no events"}
}

// resultEvent returns the job's result event for task index i.
func (jb *job) resultEvent(i int) (sweepEvent, bool) {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	for _, ev := range jb.events {
		if ev.Event == "result" && ev.Index == i {
			return ev, true
		}
	}
	return sweepEvent{}, false
}

func (jb *job) figureOutput() string {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return jb.output
}

// newJob builds a job shell: specs normalized, keys precomputed.
func (s *Server) newJob(id, kind string, specs []harness.Spec, figure string) *job {
	jb := &job{
		id:       id,
		kind:     kind,
		specs:    make([]harness.Spec, len(specs)),
		keys:     make([]harness.Key, len(specs)),
		keyOK:    make([]bool, len(specs)),
		figure:   figure,
		weight:   max(len(specs), 1),
		notify:   make(chan struct{}),
		recorded: make(map[int]journal.TaskDone),
	}
	for i, spec := range specs {
		spec = s.runner.Normalize(spec)
		jb.specs[i] = spec
		if key, err := harness.SpecKey(spec); err == nil {
			jb.keys[i], jb.keyOK[i] = key, true
		}
	}
	return jb
}

// admit debits n specs against the queue high-water mark, reporting
// whether the job may start. Recovered jobs bypass the check (they
// were admitted before the crash) but still occupy the queue.
func (s *Server) admit(n int) bool {
	if s.queued.Add(int64(n)) > int64(s.maxQueue) {
		s.queued.Add(int64(-n))
		s.metrics.admissionRejected.Add(1)
		return false
	}
	return true
}

// retryAfter estimates (in whole seconds) how long a shed client
// should wait before retrying: the queue depth divided by the local
// worker pool, clamped to [1s, 120s]. It is deliberately coarse — the
// point is backpressure, not a schedule.
func (s *Server) retryAfter() int {
	per := s.metrics.workers
	if per < 1 {
		per = 1
	}
	sec := int(s.queued.Load()) / per
	if sec < 1 {
		sec = 1
	}
	if sec > 120 {
		sec = 120
	}
	return sec
}

// startJob admits, journals and launches one detached job. The
// journal record is durable before execution starts — write-ahead —
// so a crash at any later point replays the job. The returned job is
// already registered for GET /v1/jobs/{id}.
func (s *Server) startJob(kind string, specs []harness.Spec, figure string) (*job, error) {
	jb := s.newJob(journal.NewID(), kind, specs, figure)
	if !s.admit(jb.weight) {
		return nil, fmt.Errorf("%w (queue depth %d, high-water mark %d)", errOverloaded, s.queued.Load(), s.maxQueue)
	}
	if s.journal != nil {
		rec := journal.Job{ID: jb.id, Kind: kind, CreatedUnix: time.Now().Unix(), Figure: figure}
		wireable := true
		for _, spec := range jb.specs {
			wire, err := spec.Wire()
			if err != nil {
				wireable = false
				break
			}
			rec.Specs = append(rec.Specs, wire)
		}
		if wireable {
			if err := s.journal.Begin(rec); err != nil {
				s.queued.Add(int64(-jb.weight))
				return nil, fmt.Errorf("serve: journal begin: %w", err)
			}
		} else {
			// A spec with no canonical encoding cannot be journaled; the
			// job still runs, it just will not survive a crash.
			log.Printf("sgxgauged: job %s has unencodable specs; running unjournaled", jb.id)
		}
	}
	s.registerJob(jb)
	s.launchJob(jb)
	return jb, nil
}

// registerJob makes the job visible to GET /v1/jobs/{id}.
func (s *Server) registerJob(jb *job) {
	s.jobsMu.Lock()
	s.jobs[jb.id] = jb
	s.jobsMu.Unlock()
}

// launchJob runs the job detached, tracked by the leaders group so
// Drain waits for it.
func (s *Server) launchJob(jb *job) {
	s.leaders.Add(1)
	go func() {
		defer s.leaders.Done()
		defer s.retireJob(jb)
		switch jb.kind {
		case "sweep":
			s.runSweepJob(jb)
		case "run":
			s.runRunJob(jb)
		case "figure":
			s.runFigureJob(jb)
		default:
			jb.append(sweepEvent{Event: "error", Error: fmt.Sprintf("serve: unknown job kind %q", jb.kind)})
		}
	}()
}

// retireJob releases the job's admission debit and evicts the oldest
// finished jobs beyond the residency cap.
func (s *Server) retireJob(jb *job) {
	s.queued.Add(int64(-jb.weight))
	s.jobsMu.Lock()
	s.finishedJobs = append(s.finishedJobs, jb.id)
	for len(s.finishedJobs) > maxResidentJobs {
		delete(s.jobs, s.finishedJobs[0])
		s.finishedJobs = s.finishedJobs[1:]
	}
	s.jobsMu.Unlock()
}

// lookupJob returns the registered job for id.
func (s *Server) lookupJob(id string) (*job, bool) {
	s.jobsMu.Lock()
	jb, ok := s.jobs[id]
	s.jobsMu.Unlock()
	return jb, ok
}

// journalTask appends one task-completion record, once per index.
func (s *Server) journalTask(jb *job, idx int, taskErr error) {
	if s.journal == nil {
		return
	}
	jb.recMu.Lock()
	defer jb.recMu.Unlock()
	if _, ok := jb.recorded[idx]; ok {
		return
	}
	td := journal.TaskDone{Index: idx}
	if idx < len(jb.keyOK) && jb.keyOK[idx] {
		td.Key = jb.keys[idx].String()
	}
	if taskErr != nil {
		td.Error = taskErr.Error()
	}
	jb.recorded[idx] = td
	if err := s.journal.Task(jb.id, td); err != nil {
		log.Printf("sgxgauged: journal task %s[%d]: %v", jb.id, idx, err)
	}
}

// journalFinish appends the job's terminal record and compacts it.
func (s *Server) journalFinish(jb *job, jobErr string) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Finish(jb.id, jobErr); err != nil {
		log.Printf("sgxgauged: journal finish %s: %v", jb.id, err)
	}
}

// runSweepJob executes a sweep batch through the unified Runner —
// shared cache, dedup, worker pool, remote dispatch on a coordinator —
// appending progress events as specs complete (including cache-hit
// specs, so a warm resume still journals every task), then result
// events in input order, then the terminal event.
func (s *Server) runSweepJob(jb *job) {
	s.metrics.inflight.Add(1)
	results, err := s.runner.RunAll(jb.specs,
		harness.ProgressCached(),
		harness.OnProgress(func(p harness.Progress) {
			s.journalTask(jb, p.Index, p.Err)
			ev := sweepEvent{
				Event:     "progress",
				Completed: p.Completed,
				Total:     p.Total,
				Index:     p.Index,
				Name:      p.Name,
				Mode:      p.Mode.String(),
				Cached:    p.Cached,
			}
			if p.Err != nil {
				ev.Error = p.Err.Error()
			}
			jb.append(ev)
		}))
	s.metrics.inflight.Add(-1)

	for i, res := range results {
		s.journalTask(jb, i, res.Err)
		ev := sweepEvent{Event: "result", Index: i, Result: wireResult(res)}
		if jb.keyOK[i] {
			ev.Key = jb.keys[i].String()
		}
		jb.append(ev)
	}
	if err != nil {
		// Engine-level failure: the job ran without a cancellable
		// context, so this is unreachable in practice, but the terminal
		// contract holds regardless.
		jb.append(sweepEvent{Event: "error", Total: len(jb.specs), Error: err.Error()})
		s.journalFinish(jb, err.Error())
		return
	}
	jb.append(sweepEvent{Event: "done", Total: len(jb.specs), OK: true})
	s.journalFinish(jb, "")
}

// runRunJob executes a single-spec job through the singleflight path,
// so identical concurrent /v1/run jobs still coalesce onto one
// execution.
func (s *Server) runRunJob(jb *job) {
	key, res, cached, err := s.execute(context.Background(), jb.specs[0])
	if err != nil {
		jb.append(sweepEvent{Event: "error", Total: 1, Error: err.Error()})
		s.journalFinish(jb, err.Error())
		return
	}
	s.journalTask(jb, 0, res.Err)
	jb.append(sweepEvent{Event: "result", Index: 0, Key: key.String(), Cached: cached, Result: wireResult(res)})
	jb.append(sweepEvent{Event: "done", Total: 1, OK: true})
	s.journalFinish(jb, "")
}

// runFigureJob renders one paper figure; the runs behind it flow
// through the shared runner (and on a coordinator, the fleet).
func (s *Server) runFigureJob(jb *job) {
	out, err := harness.RenderFigure(s.runner, jb.figure)
	if err != nil {
		jb.append(sweepEvent{Event: "error", Error: err.Error()})
		s.journalFinish(jb, err.Error())
		return
	}
	jb.mu.Lock()
	jb.output = out
	jb.mu.Unlock()
	jb.append(sweepEvent{Event: "done", OK: true})
	s.journalFinish(jb, "")
}

// Recover replays the journal: every unfinished job is re-enqueued
// for detached execution (tasks whose results already sit in the
// store complete as cache hits without re-simulating), and finished
// jobs are registered lazily so clients can still reattach to them by
// ID. Callers that configure a Journal must call Recover exactly
// once, after the listener is up — the server answers /healthz with
// 503 from New until Recover clears the recovering flag, so load
// balancers keep sweeps away from a half-recovered coordinator.
func (s *Server) Recover() error {
	if s.journal == nil {
		return nil
	}
	defer s.recovering.Store(false)
	states, err := s.journal.Replay()
	if err != nil {
		return err
	}
	requeued, warm := 0, 0
	for _, st := range states {
		jb, ok := s.rebuildJob(st)
		if !ok {
			continue
		}
		s.registerJob(jb)
		if st.Finished {
			continue
		}
		s.queued.Add(int64(jb.weight))
		requeued++
		for i := range jb.specs {
			if jb.keyOK[i] && s.hasResult(jb.keys[i]) {
				warm++
			}
		}
		s.launchJob(jb)
	}
	if requeued > 0 {
		log.Printf("sgxgauged: journal replay re-enqueued %d unfinished jobs (%d tasks already warm in the store)", requeued, warm)
	}
	return nil
}

// hasResult probes the lookup stack for key without loading the
// result into the in-memory cache.
func (s *Server) hasResult(key harness.Key) bool {
	if s.store != nil && s.store.Has(key) {
		return true
	}
	_, ok := s.cache.Get(key)
	return ok
}

// rebuildJob resolves one replayed journal state back into a job. A
// job whose specs no longer resolve (workload renamed between builds)
// is retired in the journal rather than replayed forever.
func (s *Server) rebuildJob(st *journal.JobState) (*job, bool) {
	specs := make([]harness.Spec, 0, len(st.Job.Specs))
	for _, wire := range st.Job.Specs {
		spec, err := wire.Spec()
		if err != nil {
			log.Printf("sgxgauged: journal job %s: unresolvable spec: %v (retiring)", st.Job.ID, err)
			if ferr := s.journal.Finish(st.Job.ID, fmt.Sprintf("unresolvable spec: %v", err)); ferr != nil {
				log.Printf("sgxgauged: journal finish %s: %v", st.Job.ID, ferr)
			}
			return nil, false
		}
		specs = append(specs, spec)
	}
	jb := s.newJob(st.Job.ID, st.Job.Kind, specs, st.Job.Figure)
	jb.recMu.Lock()
	for idx, td := range st.Done {
		jb.recorded[idx] = td
	}
	jb.recMu.Unlock()
	if st.Finished {
		jb.lazy = true
		jb.mu.Lock()
		jb.finished = true
		jb.termErr = st.Err
		jb.mu.Unlock()
	}
	return jb, true
}

// handleJob serves GET /v1/jobs/{id}: an NDJSON reattach stream for a
// live or recovered job. The stream opens with a {"event":"job"}
// header, then carries the job's result events from the ?from=N-th
// one onward (progress events are not replayed — they describe a
// moment, not a result), then the terminal done/error line. A client
// that already received N results reattaches with from=N and receives
// every remaining result exactly once.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	jb, ok := s.lookupJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q (finished jobs retire after the %d most recent; results remain addressable via /v1/results)", id, maxResidentJobs))
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad from=%q (want a non-negative integer)", q))
			return
		}
		from = n
	}
	stream := newNDJSONStream(w)
	if !stream.emit(sweepEvent{Event: "job", JobID: jb.id, Name: jb.kind, Total: len(jb.specs)}) {
		return
	}
	if jb.lazy {
		s.streamLazyJob(r.Context(), stream, jb, from)
		return
	}
	s.streamJobResults(r.Context(), stream, jb, from)
}

// streamJobResults follows a live job's event log, emitting result
// events from the from-th onward and the terminal line. It returns
// when the job finishes, the client disconnects, or a write fails;
// the job itself is unaffected by any of the three.
func (s *Server) streamJobResults(ctx context.Context, stream *ndjsonStream, jb *job, from int) {
	idx, results := 0, 0
	for {
		evs, finished, wake := jb.snapshotFrom(idx)
		for _, ev := range evs {
			idx++
			switch ev.Event {
			case "result":
				results++
				if results <= from {
					continue
				}
			case "done", "error":
			default:
				continue
			}
			if !stream.emit(ev) {
				return
			}
		}
		if finished {
			return
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return
		}
	}
}

// streamLazyJob rebuilds a recovered finished job's result lines from
// the content-addressed results. A key evicted from both cache and
// store is re-executed — simulation is deterministic, so the bytes
// match what the original stream carried.
func (s *Server) streamLazyJob(ctx context.Context, stream *ndjsonStream, jb *job, from int) {
	for i := from; i < len(jb.specs); i++ {
		if ctx.Err() != nil || !stream.alive() {
			return
		}
		var res *harness.Result
		if jb.keyOK[i] {
			res, _ = s.results.Get(jb.keys[i])
		}
		if res == nil {
			_, r2, _, err := s.execute(ctx, jb.specs[i])
			if err != nil {
				stream.emit(sweepEvent{Event: "error", Total: len(jb.specs), Error: err.Error()})
				return
			}
			res = r2
		}
		ev := sweepEvent{Event: "result", Index: i, Result: wireResult(res)}
		if jb.keyOK[i] {
			ev.Key = jb.keys[i].String()
		}
		if !stream.emit(ev) {
			return
		}
	}
	jb.mu.Lock()
	termErr := jb.termErr
	jb.mu.Unlock()
	if termErr != "" {
		stream.emit(sweepEvent{Event: "error", Total: len(jb.specs), Error: termErr})
		return
	}
	stream.emit(sweepEvent{Event: "done", Total: len(jb.specs), OK: true})
}
