// Package serve implements sgxgauged, the long-running HTTP/JSON
// daemon serving simulated SGXGauge runs. It exposes the unified
// harness API over the wire: single runs (POST /v1/run), streamed
// sweeps (POST /v1/sweep), regenerated paper figures
// (GET /v1/figures/{fig}), content-addressed result lookup
// (GET /v1/results/{key}), Prometheus metrics (GET /metrics) and a
// liveness probe (GET /healthz).
//
// Identical specs are content-addressed by the SHA-256 of their
// canonical JSON encoding (harness.SpecKey): repeated requests are
// cache hits against a sharded bounded LRU, and concurrent identical
// requests coalesce onto one in-flight run. Runs execute on a bounded
// worker pool; a client disconnect abandons the wait but never the
// run — the detached leader finishes and populates the cache, so the
// work is not wasted.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/journal"
	"sgxgauge/internal/perf"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/store"
)

// Config parameterizes a Server.
type Config struct {
	// EPCPages is the simulated EPC size forced onto specs that leave
	// it zero (0 = machine default).
	EPCPages int
	// Seed is the base seed forced onto specs that leave it zero.
	Seed int64
	// Workers bounds concurrently executing simulated runs
	// (0 = GOMAXPROCS).
	Workers int
	// CacheEntries bounds the result cache (0 = DefaultCacheEntries).
	CacheEntries int
	// Store, when non-nil, is the persistent on-disk result store
	// layered under the in-memory cache: misses fall through to disk,
	// and every fresh result is written through, so a restarted daemon
	// serves previously computed specs without re-simulating.
	Store *store.Store
	// Coordinator makes this daemon a sweep-cluster coordinator: it
	// accepts worker registrations on /v1/cluster/* and farms spec
	// execution out to the fleet instead of simulating locally.
	Coordinator bool
	// WorkerTTL is how long the coordinator lets a worker go silent
	// before rerouting its work (0 = DefaultWorkerTTL).
	WorkerTTL time.Duration
	// Journal, when non-nil, is the write-ahead log every accepted
	// job is recorded in before it executes. A server configured with
	// a Journal answers /healthz with 503 until Recover has replayed
	// it — callers must invoke Recover exactly once after New.
	Journal *journal.Journal
	// Role labels this daemon on /healthz ("standalone",
	// "coordinator", "worker"); empty derives it from Coordinator.
	Role string
	// MaxQueue is the admission high-water mark in specs
	// (0 = DefaultMaxQueue).
	MaxQueue int
	// TaskRetries is the per-task retry budget a coordinator spends
	// before quarantining the task as poisoned (0 =
	// DefaultTaskRetries, negative = no retries).
	TaskRetries int
	// RetryBase is the base delay of the exponential retry backoff
	// (0 = DefaultRetryBase).
	RetryBase time.Duration
}

// Server is the daemon: an http.Handler plus the run machinery behind
// it. Create one with New; the zero value is not usable.
type Server struct {
	runner  *harness.Runner
	cache   *Cache
	metrics *metrics
	flight  *flight
	// slots bounds concurrent local simulation (localRun holds one
	// slot per run); remote dispatch on a coordinator is not bounded
	// by it.
	slots chan struct{}
	// results is the full lookup stack requests read and write: the
	// in-memory cache alone, or — with Config.Store — the cache tiered
	// over the persistent store.
	results harness.ResultCache
	// store is the persistent tier (nil without Config.Store); kept
	// beside results for /metrics.
	store *store.Store
	// cluster is the coordinator's dispatcher (nil unless
	// Config.Coordinator).
	cluster *cluster
	// runSpec executes one spec; tests swap in a fake to script
	// timing. The default runs through the shared Runner; a
	// coordinator farms it to the worker fleet.
	runSpec func(harness.Spec) (*harness.Result, error)
	// leaders tracks detached singleflight leader goroutines and
	// detached jobs so Drain can wait for them after the HTTP
	// listener stops.
	leaders sync.WaitGroup

	// journal is the write-ahead log (nil without Config.Journal).
	journal *journal.Journal
	// role labels this daemon on /healthz.
	role string
	// maxQueue is the admission high-water mark in specs.
	maxQueue int
	// queued is the admission gauge: specs admitted but not yet
	// finished, across every resident job.
	queued atomic.Int64
	// recovering is set from New until Recover finishes replaying the
	// journal; /healthz reports 503 while it holds.
	recovering atomic.Bool

	jobsMu sync.Mutex
	// jobs is the reattach registry by job ID. guarded by jobsMu
	jobs map[string]*job
	// finishedJobs orders finished job IDs oldest-first for eviction.
	// guarded by jobsMu
	finishedJobs []string
}

// New returns a ready-to-serve daemon.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := NewCache(cfg.CacheEntries)
	r := harness.NewRunner(cfg.EPCPages)
	r.Seed = cfg.Seed
	r.Jobs = workers

	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueue
	}
	role := cfg.Role
	if role == "" {
		role = "standalone"
		if cfg.Coordinator {
			role = "coordinator"
		}
	}
	s := &Server{
		runner:   r,
		cache:    cache,
		metrics:  newMetrics(workers),
		flight:   newFlight(),
		slots:    make(chan struct{}, workers),
		results:  cache,
		store:    cfg.Store,
		journal:  cfg.Journal,
		role:     role,
		maxQueue: maxQueue,
		jobs:     make(map[string]*job),
	}
	if cfg.Store != nil {
		s.results = store.NewTiered(cache, cfg.Store)
	}
	r.Cache = s.results
	s.runSpec = s.localRun
	if cfg.Coordinator {
		s.cluster = newCluster(cfg.WorkerTTL, cfg.TaskRetries, cfg.RetryBase, cfg.Journal)
		// Every execution path — /v1/run, sweeps, figures — now draws
		// on the fleet through the coalescing dispatcher.
		r.Exec = s.execRemote
		s.runSpec = s.execRemote
	}
	if cfg.Journal != nil {
		// Refuse traffic until Recover has replayed the log; a job
		// accepted mid-replay could race its own recovered twin.
		s.recovering.Store(true)
	}
	return s
}

// localRun executes one spec in-process through the shared Runner,
// holding one worker-pool slot for the duration — the slots semaphore
// bounds genuinely local simulation only, so a coordinator's remote
// dispatch (which just waits on the fleet) is never capped by the
// coordinator's own core count. The server is the cache layer on this
// path — execute (or the engine, on the sweep path) already probed
// and will store the result — so the spec is marked hook-bearing to
// keep the engine from probing the shared cache a second time (which
// would double-count every miss on /metrics). On a coordinator the
// marker also keeps the nested Run clear of the remote executor:
// hook-bearing specs always run in-process.
func (s *Server) localRun(spec harness.Spec) (*harness.Result, error) {
	s.slots <- struct{}{}
	s.metrics.busy.Add(1)
	defer func() {
		s.metrics.busy.Add(-1)
		<-s.slots
	}()
	spec.Hooks = harness.Hooks{OnMachine: func(*sgx.Machine) {}}
	return s.runner.Run(spec)
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.instrument("/v1/run", s.handleRun))
	mux.HandleFunc("GET /v1/scenarios", s.instrument("/v1/scenarios", s.handleScenarioList))
	mux.HandleFunc("POST /v1/scenarios", s.instrument("/v1/scenarios", s.handleScenarioRun))
	mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	mux.HandleFunc("GET /v1/figures/{fig}", s.instrument("/v1/figures", s.handleFigure))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs", s.handleJob))
	mux.HandleFunc("GET /v1/results/{key}", s.instrument("/v1/results", s.handleResult))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cluster != nil {
		mux.HandleFunc("POST /v1/cluster/register", s.instrument("/v1/cluster/register", s.handleClusterRegister))
		// Poll is deliberately uninstrumented: its long-poll dwell time
		// would swamp the latency summary with idle waiting.
		mux.HandleFunc("POST /v1/cluster/poll", s.handleClusterPoll)
		mux.HandleFunc("POST /v1/cluster/heartbeat", s.instrument("/v1/cluster/heartbeat", s.handleClusterHeartbeat))
		mux.HandleFunc("POST /v1/cluster/results", s.instrument("/v1/cluster/results", s.handleClusterResults))
		mux.HandleFunc("POST /v1/cluster/deregister", s.instrument("/v1/cluster/deregister", s.handleClusterDeregister))
	}
	return mux
}

// Drain blocks until every detached leader run has completed. Call it
// after http.Server.Shutdown: Shutdown waits for the handlers, Drain
// waits for the runs handlers abandoned to client disconnects.
func (s *Server) Drain() { s.leaders.Wait() }

// errBadSpec marks client errors (malformed or unencodable specs) so
// execute's callers map them to 400 instead of 500.
var errBadSpec = errors.New("serve: bad spec")

// execute serves one spec: cache hit, join of an identical in-flight
// run, or a fresh leader run on the worker pool. cached reports a
// cache hit. The error return is either a spec problem (errBadSpec),
// the context's cancellation, or an engine-level failure from the
// harness; a spec's own failure travels inside the Result.
func (s *Server) execute(ctx context.Context, spec harness.Spec) (key harness.Key, res *harness.Result, cached bool, err error) {
	key, err = s.runner.Key(spec)
	if err != nil {
		return key, nil, false, fmt.Errorf("%w: %v", errBadSpec, err)
	}
	if res, ok := s.results.Get(key); ok {
		return key, res, true, nil
	}
	call, leader := s.flight.join(key)
	if leader {
		s.leaders.Add(1)
		go func() {
			defer s.leaders.Done()
			s.metrics.inflight.Add(1)
			defer s.metrics.inflight.Add(-1)
			s.metrics.runs.Add(1)
			// No slot is taken here: localRun acquires one itself, so
			// a coordinator's remote dispatch — which only waits on
			// the fleet — runs as wide as the fleet, not as wide as
			// the coordinator's worker pool.
			res, err := s.runSpec(spec)
			// The runner has already cached successful results; the
			// Add here only matters when a test's fake runSpec
			// bypasses the runner. Put-if-absent keeps one canonical
			// pointer either way.
			if err == nil && res != nil && res.Err == nil {
				res = s.results.Add(key, res)
			}
			s.flight.complete(key, call, res, err)
		}()
	} else {
		s.metrics.coalesced.Add(1)
	}
	select {
	case <-call.done:
		return key, call.res, false, call.err
	case <-ctx.Done():
		return key, nil, false, ctx.Err()
	}
}

// runResponse is the /v1/run (and per-result /v1/sweep) payload.
type runResponse struct {
	Key    string      `json:"key"`
	Cached bool        `json:"cached"`
	Result *resultWire `json:"result"`
}

// resultWire is the JSON face of a harness.Result: identification,
// timing, functional output, the full counter bank by event name, and
// the spec's own failure (if any) as a string.
type resultWire struct {
	Name          string            `json:"name"`
	Mode          string            `json:"mode"`
	Cycles        uint64            `json:"cycles"`
	StartupCycles uint64            `json:"startup_cycles,omitempty"`
	Checksum      string            `json:"checksum"`
	Ops           int64             `json:"ops"`
	MeanLatency   float64           `json:"mean_latency,omitempty"`
	Counters      map[string]uint64 `json:"counters"`
	Attempts      int               `json:"attempts"`
	Error         string            `json:"error,omitempty"`
}

func wireResult(res *harness.Result) *resultWire {
	if res == nil {
		return nil
	}
	counters := make(map[string]uint64, perf.NumEvents)
	for _, e := range perf.Events() {
		if v := res.Counters.Get(e); v != 0 {
			counters[e.String()] = v
		}
	}
	out := &resultWire{
		Name:          res.Name,
		Mode:          res.Mode.String(),
		Cycles:        res.Cycles,
		StartupCycles: res.StartupCycles,
		Checksum:      fmt.Sprintf("%#x", res.Output.Checksum),
		Ops:           res.Output.Ops,
		MeanLatency:   res.Output.MeanLatency,
		Counters:      counters,
		Attempts:      res.Attempts,
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	return out
}

// Request-body caps: a single spec is well under a megabyte; a sweep
// is a list of them.
const (
	maxRunBody   = 1 << 20
	maxSweepBody = 8 << 20
)

// decodeBody decodes the request body into v under a size cap and
// writes the error response when it fails: 413 (naming the cap) when
// the body exceeded the cap, 400 for everything else. It reports
// whether decoding succeeded.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	err := dec.Decode(v)
	if err == nil {
		return true
	}
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: request body exceeds the %d-byte limit", maxErr.Limit))
	} else {
		writeError(w, http.StatusBadRequest, err)
	}
	return false
}

// handleRun serves POST /v1/run: one SpecWire document in, one
// runResponse out. A spec's own failure is still a 200 — the run
// happened and its degraded measurements are the payload — while
// malformed specs are 400, oversized ones 413, shed jobs 429, and
// engine failures 500. A cache hit answers directly; a miss becomes
// a journaled job executing detached from this connection, so a
// disconnected client's run still finishes, lands in the cache, and
// stays reattachable by job ID.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var spec harness.Spec
	if !decodeBody(w, r, maxRunBody, &spec) {
		return
	}
	s.serveRunSpec(w, r, spec)
}

// serveRunSpec is the shared tail of /v1/run and /v1/scenarios: cache
// probe by canonical key, then a journaled detached job on a miss.
// Workload and scenario specs take exactly the same path — the only
// difference is which envelope their canonical encoding carries.
func (s *Server) serveRunSpec(w http.ResponseWriter, r *http.Request, spec harness.Spec) {
	key, err := s.runner.Key(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %v", errBadSpec, err))
		return
	}
	if res, ok := s.results.Get(key); ok {
		writeJSON(w, http.StatusOK, runResponse{Key: key.String(), Cached: true, Result: wireResult(res)})
		return
	}
	jb, err := s.startJob("run", []harness.Spec{spec}, "")
	if err != nil {
		writeJobError(w, err, s)
		return
	}
	if !jb.waitDone(r.Context()) {
		// Client gone; nothing to write. The detached job still
		// finishes the run and caches it.
		return
	}
	if term := jb.terminalEvent(); term.Event == "error" {
		writeError(w, http.StatusInternalServerError, errors.New(term.Error))
		return
	}
	ev, ok := jb.resultEvent(0)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("serve: job finished without a result"))
		return
	}
	writeJSON(w, http.StatusOK, runResponse{Key: ev.Key, Cached: ev.Cached, Result: ev.Result})
}

// writeJobError maps a startJob failure onto the wire: 429 with a
// Retry-After hint for admission shedding, 500 for journal trouble.
func writeJobError(w http.ResponseWriter, err error, s *Server) {
	if errors.Is(err, errOverloaded) {
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfter()))
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

// sweepEvent is one NDJSON line of a /v1/sweep (or /v1/jobs) response:
// a {"event":"job"} header naming the job ID clients reattach by,
// progress events as specs complete (cache-hit specs included, marked
// "cached":true), then one result line per spec in input order, then
// exactly one terminal line — {"event":"done","ok":true,...} when the
// batch completed, or {"event":"error",...} when it failed as a
// whole. A stream that ends without either terminal line was
// truncated by the transport; clients must treat it as incomplete and
// may reattach via GET /v1/jobs/{id}?from=N to stream the results
// they have not yet received — the job itself runs detached and
// survives the disconnect.
type sweepEvent struct {
	Event     string      `json:"event"` // "job", "progress", "result", "done", "error"
	JobID     string      `json:"id,omitempty"`
	Completed int         `json:"completed,omitempty"`
	Total     int         `json:"total,omitempty"`
	Index     int         `json:"index,omitempty"`
	Name      string      `json:"name,omitempty"`
	Mode      string      `json:"mode,omitempty"`
	Key       string      `json:"key,omitempty"`
	Cached    bool        `json:"cached,omitempty"`
	Result    *resultWire `json:"result,omitempty"`
	OK        bool        `json:"ok,omitempty"`
	Error     string      `json:"error,omitempty"`
}

// handleSweep serves POST /v1/sweep: a JSON array of SpecWire
// documents in, NDJSON out (see sweepEvent for the line contract).
// The batch becomes a journaled job running detached through the
// unified Runner.RunAll — shared cache, deduplication, worker pool —
// and this handler is merely the job's first attached stream: the
// {"event":"job"} header names the job ID, then every event follows
// as the job appends it. Disconnecting kills the stream but not the
// batch — the job finishes into the cache and store, and the client
// reattaches via GET /v1/jobs/{id} to collect what it missed.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var specs []harness.Spec
	if !decodeBody(w, r, maxSweepBody, &specs) {
		return
	}
	if len(specs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("serve: empty spec list"))
		return
	}
	jb, err := s.startJob("sweep", specs, "")
	if err != nil {
		writeJobError(w, err, s)
		return
	}

	// From here on the 200 header is committed and the stream itself
	// is the error channel: a write failure kills the stream (never
	// the job), and a job-level failure becomes the terminal error
	// event.
	stream := newNDJSONStream(w)
	if !stream.emit(sweepEvent{Event: "job", JobID: jb.id, Total: len(specs)}) {
		return
	}
	idx := 0
	for {
		evs, finished, wake := jb.snapshotFrom(idx)
		for _, ev := range evs {
			idx++
			if !stream.emit(ev) {
				return
			}
		}
		if finished {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// handleFigure serves GET /v1/figures/{fig}: the rendered paper
// figure or table as plain text. The render runs as a journaled
// detached job — a disconnect does not abandon it, and a crashed
// daemon re-renders on replay with the store keeping its runs warm —
// while this handler waits for the result. Runs behind it go through
// the shared runner, so regenerating a figure twice is all cache hits.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	fig := r.PathValue("fig")
	if !knownFigure(fig) {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown figure %q (valid: 2-10, t2, t4, t5)", fig))
		return
	}
	jb, err := s.startJob("figure", nil, fig)
	if err != nil {
		writeJobError(w, err, s)
		return
	}
	if !jb.waitDone(r.Context()) {
		// Client gone; the render finishes detached and warms the
		// cache for the next request.
		return
	}
	if term := jb.terminalEvent(); term.Event == "error" {
		writeError(w, http.StatusInternalServerError, errors.New(term.Error))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, jb.figureOutput())
}

// knownFigure reports whether fig labels at least one registered
// experiment.
func knownFigure(fig string) bool {
	if fig == "" {
		return false
	}
	for _, e := range harness.Experiments() {
		if e.Figure == fig {
			return true
		}
	}
	return false
}

// handleResult serves GET /v1/results/{key}: content-addressed lookup
// of a previously computed result by its canonical spec hash.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key, err := harness.ParseKey(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, ok := s.results.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no cached result for key %s", key))
		return
	}
	writeJSON(w, http.StatusOK, runResponse{Key: key.String(), Cached: true, Result: wireResult(res)})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.render(w, s.cache)
	renderAdmissionMetrics(w, s.queued.Load(), s.maxQueue)
	if s.store != nil {
		renderStoreMetrics(w, s.store)
	}
	if s.cluster != nil {
		renderClusterMetrics(w, s.cluster)
	}
	if s.journal != nil {
		renderJournalMetrics(w, s.journal)
	}
}

// healthzResponse is the GET /healthz body: enough operational state
// for a load balancer or operator to judge whether this daemon should
// receive sweeps right now.
type healthzResponse struct {
	Status string `json:"status"` // "ok" or "recovering"
	Role   string `json:"role"`   // "standalone", "coordinator", "worker"
	// Workers is the live registered fleet (coordinator only).
	Workers int `json:"workers"`
	// QueueDepth is the admission gauge: admitted, unfinished specs.
	QueueDepth int64 `json:"queue_depth"`
	// Jobs is the number of resident (live or reattachable) jobs.
	Jobs int `json:"jobs"`
	// Journal reports the write-ahead log state: "none" (not
	// configured), "recovering" (replay still re-enqueuing) or "ok".
	Journal string `json:"journal"`
}

// handleHealthz serves GET /healthz: role-aware liveness. While the
// journal replay is still re-enqueuing jobs the response is 503, so
// load balancers keep sweeps away from a half-recovered coordinator.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:     "ok",
		Role:       s.role,
		QueueDepth: s.queued.Load(),
		Journal:    "none",
	}
	if s.cluster != nil {
		resp.Workers = s.cluster.liveWorkers(time.Now())
	}
	s.jobsMu.Lock()
	resp.Jobs = len(s.jobs)
	s.jobsMu.Unlock()
	code := http.StatusOK
	if s.journal != nil {
		resp.Journal = "ok"
		if s.recovering.Load() {
			resp.Status = "recovering"
			resp.Journal = "recovering"
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, resp)
}

// instrument wraps a handler with request counting and latency
// observation for /metrics.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		s.metrics.observe(path, code, time.Since(start).Seconds())
	}
}

// statusWriter records the response code and forwards Flush so NDJSON
// streaming keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// An Encode failure means the client disconnected; there is no
	// recovery beyond dropping the response.
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
