package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/journal"
	"sgxgauge/internal/store"
)

// decodeEvents scans an NDJSON body into sweepEvents.
func decodeEvents(t *testing.T, r io.Reader) []sweepEvent {
	t.Helper()
	var events []sweepEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestCrashRecoveryReplaysJournal is the crash-recovery acceptance
// test: a coordinator journal holding a half-finished sweep — two of
// four tasks done before the "crash", with the torn tail of a record
// append — is replayed by a restarted daemon sharing the same store
// directory. The recovered job re-enqueues, the two completed tasks
// short-circuit through the warm store (zero re-simulation), and a
// reattached client receives the full result set byte-identical to an
// uninterrupted sweep.
func TestCrashRecoveryReplaysJournal(t *testing.T) {
	jdir, sdir := t.TempDir(), t.TempDir()
	var specs []harness.Spec
	if err := json.Unmarshal([]byte(sweepBody(4)), &specs); err != nil {
		t.Fatal(err)
	}

	// Construct the crashed daemon's state directly: a begun journal
	// job, two completed tasks (results in the store), and a torn
	// trailing record from the kill.
	jl, err := journal.Open(jdir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(sdir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seed := New(Config{EPCPages: testEPC, Seed: 7, Workers: 2, Store: st})
	rec := journal.Job{ID: "j-crash", Kind: "sweep", CreatedUnix: 1}
	norm := make([]harness.Spec, len(specs))
	for i, sp := range specs {
		norm[i] = seed.runner.Normalize(sp)
		wire, err := norm[i].Wire()
		if err != nil {
			t.Fatal(err)
		}
		rec.Specs = append(rec.Specs, wire)
	}
	if err := jl.Begin(rec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := seed.runner.Run(norm[i])
		if err != nil || res.Err != nil {
			t.Fatalf("pre-crash run %d: %v / %v", i, err, res.Err)
		}
		key, err := harness.SpecKey(norm[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := jl.Task("j-crash", journal.TaskDone{Index: i, Key: key.String()}); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.OpenFile(filepath.Join(jdir, "jobs", "j-crash.ndjson"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"format":1,"type":"ta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart: fresh journal and store handles on the same directories.
	jl2, err := journal.Open(jdir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(sdir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{EPCPages: testEPC, Seed: 7, Workers: 2, Store: st2, Journal: jl2})
	var simulated atomic.Int64
	s2.runner.Exec = func(spec harness.Spec) (*harness.Result, error) {
		simulated.Add(1)
		return s2.localRun(spec)
	}
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()

	// Before Recover the daemon refuses traffic: 503, journal
	// "recovering".
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hz.Journal != "recovering" {
		t.Fatalf("pre-recovery healthz: %d %+v, want 503/recovering", resp.StatusCode, hz)
	}

	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := jl2.Stats().Replayed; got != 1 {
		t.Fatalf("journal replayed %d jobs, want 1", got)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery healthz: %d, want 200", resp.StatusCode)
	}

	// Reattach by job ID: the full result set, then done. Raw lines are
	// kept for the byte-identity check below.
	resp, err = http.Get(ts.URL + "/v1/jobs/j-crash")
	if err != nil {
		t.Fatal(err)
	}
	var rawResults []string
	var last sweepEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		last = ev
		if ev.Event == "result" {
			rawResults = append(rawResults, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rawResults) != 4 {
		t.Fatalf("reattach streamed %d results, want 4", len(rawResults))
	}
	if last.Event != "done" || !last.OK {
		t.Fatalf("reattach terminal = %+v, want done ok:true", last)
	}

	// Exactly the two cold tasks simulated; the warm two came from the
	// store.
	if got := simulated.Load(); got != 2 {
		t.Fatalf("recovery simulated %d specs, want exactly 2 (store-warm tasks must not re-run)", got)
	}

	// Byte-identical to an uninterrupted sweep on a fresh daemon.
	ref := New(Config{EPCPages: testEPC, Seed: 7, Workers: 2})
	rts := httptest.NewServer(ref.Handler())
	defer rts.Close()
	refLines, terminal := sweepResultLines(t, rts.URL, sweepBody(4))
	if terminal.Event != "done" || !terminal.OK {
		t.Fatalf("reference terminal = %+v", terminal)
	}
	for i, got := range rawResults {
		if got != refLines[i] {
			t.Fatalf("recovered result %d differs from the uninterrupted sweep:\n recovered: %s\n reference: %s", i, got, refLines[i])
		}
	}
}

// TestJobReattachFrom: GET /v1/jobs/{id}?from=N resumes the result
// stream at the N-th result — a client that already holds N results
// receives each remaining one exactly once — and bad ids/offsets are
// clean client errors.
func TestJobReattachFrom(t *testing.T) {
	s, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(sweepBody(3)))
	if err != nil {
		t.Fatal(err)
	}
	events := decodeEvents(t, resp.Body)
	resp.Body.Close()
	if events[0].Event != "job" || events[0].JobID == "" {
		t.Fatalf("first sweep line = %+v, want the job header", events[0])
	}
	id := events[0].JobID
	if _, ok := s.lookupJob(id); !ok {
		t.Fatalf("job %s not registered after the sweep", id)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + id + "?from=2")
	if err != nil {
		t.Fatal(err)
	}
	events = decodeEvents(t, resp.Body)
	resp.Body.Close()
	var results []sweepEvent
	for _, ev := range events {
		if ev.Event == "result" {
			results = append(results, ev)
		}
	}
	if len(results) != 1 || results[0].Index != 2 {
		t.Fatalf("from=2 streamed %+v, want exactly the index-2 result", results)
	}
	if last := events[len(events)-1]; last.Event != "done" || !last.OK {
		t.Fatalf("reattach terminal = %+v, want done ok:true", last)
	}

	for path, want := range map[string]int{
		"/v1/jobs/" + id + "?from=bogus": http.StatusBadRequest,
		"/v1/jobs/j-nosuchjob":           http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestAdmissionControl: past the queue high-water mark new jobs are
// shed with 429 + Retry-After while admitted work keeps running; once
// the queue drains, the same request is accepted.
func TestAdmissionControl(t *testing.T) {
	s := New(Config{EPCPages: testEPC, Seed: 7, Workers: 2, MaxQueue: 2})
	gate := make(chan struct{})
	s.runner.Exec = func(spec harness.Spec) (*harness.Result, error) {
		<-gate
		return s.localRun(spec)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sweepDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(sweepBody(2)))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		sweepDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.queued.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("sweep never occupied the queue (depth %d)", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}

	body := `{"workload":"Empty","mode":"Vanilla","size":"Low","seed":99}`
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("run past the high-water mark: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carried no Retry-After header")
	}
	if got := s.metrics.admissionRejected.Load(); got != 1 {
		t.Fatalf("admissionRejected = %d, want 1", got)
	}

	close(gate)
	if err := <-sweepDone; err != nil {
		t.Fatal(err)
	}
	for s.queued.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained (depth %d)", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
	resp, err = http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run after the queue drained: status %d, want 200", resp.StatusCode)
	}
}

// TestMainFlagValidation: nonsensical daemon flags fail fast with an
// error naming the flag instead of silently misconfiguring the TTL or
// drain machinery.
func TestMainFlagValidation(t *testing.T) {
	if err := Main([]string{"-worker.ttl", "0s"}); err == nil || !strings.Contains(err.Error(), "worker.ttl") {
		t.Fatalf("-worker.ttl 0s: err = %v, want an error naming the flag", err)
	}
	if err := Main([]string{"-drain", "-1s"}); err == nil || !strings.Contains(err.Error(), "drain") {
		t.Fatalf("-drain -1s: err = %v, want an error naming the flag", err)
	}
	if err := Main([]string{"-coordinator", "-worker", "http://x"}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-coordinator -worker: err = %v, want the exclusivity error", err)
	}
}
