package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads"
	"sgxgauge/internal/workloads/suite"
)

// testEPC keeps simulated machines small so tests stay fast while
// still exercising EPC paging.
const testEPC = 2048

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{EPCPages: testEPC, Seed: 7, Workers: 4, CacheEntries: 256})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, runResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr runResponse
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &rr); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp, rr
}

func metric(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parsing metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestHealthz: the liveness probe answers.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, hz)
	}
	if hz.Role != "standalone" || hz.Journal != "none" {
		t.Fatalf("healthz role=%q journal=%q, want standalone/none", hz.Role, hz.Journal)
	}
}

// TestRunEveryWorkloadMode is the serving acceptance sweep: every
// suite workload (plus the auxiliary Empty and Iozone) must be
// servable over POST /v1/run in every mode it supports.
func TestRunEveryWorkloadMode(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep in -short mode")
	}
	_, ts := newTestServer(t)
	ws := append(suite.All(), suite.Empty(), suite.Iozone())
	for _, w := range ws {
		modes := []string{"Vanilla", "LibOS"}
		if w.NativePort() {
			modes = append(modes, "Native")
		}
		for _, mode := range modes {
			body := fmt.Sprintf(`{"workload":%q,"mode":%q,"size":"Low"}`, w.Name(), mode)
			resp, rr := postRun(t, ts, body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s/%s: status %d", w.Name(), mode, resp.StatusCode)
			}
			if rr.Result == nil || rr.Result.Error != "" {
				t.Fatalf("%s/%s: failed result %+v", w.Name(), mode, rr.Result)
			}
			if rr.Result.Name != w.Name() || rr.Result.Mode != mode {
				t.Errorf("%s/%s: result identifies as %s/%s", w.Name(), mode, rr.Result.Name, rr.Result.Mode)
			}
		}
	}
}

// TestRunCacheHit: a repeated identical spec is served from cache,
// observable through the response's cached flag and the /metrics hit
// counter.
func TestRunCacheHit(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"workload":"BTree","mode":"Native","size":"Low"}`
	_, first := postRun(t, ts, body)
	if first.Cached {
		t.Fatal("first request reported cached")
	}
	_, second := postRun(t, ts, body)
	if !second.Cached {
		t.Fatal("repeated identical spec was not a cache hit")
	}
	if first.Key != second.Key {
		t.Fatalf("keys differ across identical requests: %s vs %s", first.Key, second.Key)
	}
	if hits := metric(t, ts, "sgxgauged_cache_hits_total"); hits < 1 {
		t.Errorf("cache_hits_total = %g, want >= 1", hits)
	}
	if runs := metric(t, ts, "sgxgauged_runs_total"); runs != 1 {
		t.Errorf("runs_total = %g, want 1", runs)
	}

	// The cached result is also addressable by key.
	resp, err := http.Get(ts.URL + "/v1/results/" + first.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/results/%s: status %d", first.Key, resp.StatusCode)
	}
}

// TestRunCoalescing: N concurrent identical requests execute the spec
// exactly once. A gated fake runSpec holds the leader mid-run until
// every follower has joined, making the exactly-once outcome
// deterministic rather than timing-dependent.
func TestRunCoalescing(t *testing.T) {
	s, ts := newTestServer(t)
	gate := make(chan struct{})
	var calls atomic.Int32
	s.runSpec = func(spec harness.Spec) (*harness.Result, error) {
		calls.Add(1)
		<-gate
		return &harness.Result{Name: spec.Workload.Name(), Mode: spec.Mode, Cycles: 99, Attempts: 1}, nil
	}

	const n = 8
	body := `{"workload":"BTree","mode":"Native","size":"Low"}`
	var wg sync.WaitGroup
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, rr := postRun(t, ts, body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			keys[i] = rr.Key
		}(i)
	}
	// Release the leader only after all n requests are in: one is the
	// leader, so n-1 must have coalesced.
	deadline := time.After(10 * time.Second)
	for s.metrics.coalesced.Load() < n-1 {
		select {
		case <-deadline:
			t.Fatalf("only %d requests coalesced", s.metrics.coalesced.Load())
		case <-time.After(time.Millisecond):
		}
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("spec executed %d times, want exactly 1", got)
	}
	for i := 1; i < n; i++ {
		if keys[i] != keys[0] {
			t.Fatalf("request %d got key %s, others %s", i, keys[i], keys[0])
		}
	}
	if runs := metric(t, ts, "sgxgauged_runs_total"); runs != 1 {
		t.Errorf("runs_total = %g, want 1", runs)
	}
}

// TestRunCancellationMidRun: a client disconnect abandons the wait
// but not the work — the detached leader finishes, the result lands
// in the cache, and Drain observes the completion.
func TestRunCancellationMidRun(t *testing.T) {
	s, ts := newTestServer(t)
	gate := make(chan struct{})
	started := make(chan struct{})
	s.runSpec = func(spec harness.Spec) (*harness.Result, error) {
		close(started)
		<-gate
		return &harness.Result{Name: spec.Workload.Name(), Mode: spec.Mode, Cycles: 42, Attempts: 1}, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	body := `{"workload":"BTree","mode":"Native","size":"Low"}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	<-started // the run is executing
	cancel()  // client walks away mid-run
	if err := <-errc; err == nil {
		t.Fatal("cancelled request did not error on the client side")
	}

	close(gate) // the detached leader finishes
	s.Drain()

	spec := harness.Spec{Workload: mustWorkload(t, "BTree"), Mode: sgx.Native, Size: workloads.Low}
	key, err := s.runner.Key(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := s.cache.Get(key)
	if !ok {
		t.Fatal("abandoned run's result never reached the cache")
	}
	if res.Cycles != 42 {
		t.Fatalf("cached result Cycles = %d, want the leader's 42", res.Cycles)
	}
}

// TestGracefulDrain: shutting the HTTP server down while a run is in
// flight still delivers that run's response.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{EPCPages: testEPC, Seed: 7, Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	s.runSpec = func(spec harness.Spec) (*harness.Result, error) {
		close(started)
		<-gate
		return &harness.Result{Name: spec.Workload.Name(), Mode: spec.Mode, Cycles: 7, Attempts: 1}, nil
	}

	respc := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json",
			strings.NewReader(`{"workload":"BTree","mode":"Native","size":"Low"}`))
		if err != nil {
			respc <- nil
			return
		}
		respc <- resp
	}()
	<-started

	shutdown := make(chan error, 1)
	go func() { shutdown <- ts.Config.Shutdown(context.Background()) }()
	// Shutdown must wait for the in-flight request, not cut it off.
	select {
	case <-shutdown:
		t.Fatal("Shutdown returned while a request was in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	resp := <-respc
	if resp == nil {
		t.Fatal("in-flight request failed during graceful shutdown")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request: status %d", resp.StatusCode)
	}
	if err := <-shutdown; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	s.Drain()
}

// TestSweepStreaming: /v1/sweep streams NDJSON — progress events as
// specs complete, then one result per spec in input order, then a
// done line.
func TestSweepStreaming(t *testing.T) {
	_, ts := newTestServer(t)
	body := `[{"workload":"Empty","mode":"Vanilla","size":"Low"},{"workload":"Empty","mode":"LibOS","size":"Low"}]`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}

	var events []sweepEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev sweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	var jobs, progress, results int
	for _, ev := range events {
		switch ev.Event {
		case "job":
			jobs++
			if ev.JobID == "" || ev.Total != 2 {
				t.Errorf("job header = %+v, want an ID and total=2", ev)
			}
			if progress+results > 0 {
				t.Error("job header after other events")
			}
		case "progress":
			progress++
			if results > 0 {
				t.Error("progress event after result events")
			}
		case "result":
			if ev.Result == nil || ev.Result.Error != "" {
				t.Errorf("result %d failed: %+v", ev.Index, ev.Result)
			}
			if ev.Key == "" {
				t.Errorf("result %d has no key", ev.Index)
			}
			results++
		case "done":
			if ev.Error != "" {
				t.Errorf("done reports error %q", ev.Error)
			}
		default:
			t.Errorf("unknown event %q", ev.Event)
		}
	}
	if jobs != 1 || progress != 2 || results != 2 {
		t.Fatalf("got %d job, %d progress, %d result events, want 1/2/2", jobs, progress, results)
	}
	if events[len(events)-1].Event != "done" {
		t.Fatal("stream does not end with a done event")
	}
}

// TestFigures: a known figure renders; an unknown one 404s with the
// valid labels.
func TestFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration in -short mode")
	}
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/figures/7")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("Figure 7")) {
		t.Fatalf("figure 7: status %d body %.80q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/v1/figures/99")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !bytes.Contains(body, []byte("t2")) {
		t.Fatalf("figure 99: status %d body %.120q, want 404 listing valid labels", resp.StatusCode, body)
	}
}

// TestBadRequests: malformed specs are 400s with actionable errors.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, path, body string
		wantCode         int
		wantErr          string
	}{
		{"malformed-json", "/v1/run", `{"workload":`, http.StatusBadRequest, "error"},
		{"unknown-workload", "/v1/run", `{"workload":"NoSuch","mode":"Native","size":"Low"}`, http.StatusBadRequest, "valid:"},
		{"unknown-mode", "/v1/run", `{"workload":"BTree","mode":"Turbo","size":"Low"}`, http.StatusBadRequest, "Vanilla, Native, LibOS"},
		{"unknown-field", "/v1/run", `{"workload":"BTree","mode":"Native","size":"Low","bogus":1}`, http.StatusBadRequest, "bogus"},
		{"empty-sweep", "/v1/sweep", `[]`, http.StatusBadRequest, "empty"},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.wantCode {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.wantCode, body)
		}
		if !bytes.Contains(body, []byte(c.wantErr)) {
			t.Errorf("%s: body %q lacks %q", c.name, body, c.wantErr)
		}
	}

	// Result lookup: malformed key 400, unknown key 404.
	resp, err := http.Get(ts.URL + "/v1/results/zz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed key: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/results/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key: status %d, want 404", resp.StatusCode)
	}
}

// TestRunHammer drives /v1/run from 32 goroutines — a mix of
// identical and distinct specs — under the race detector in CI. Every
// response must succeed and identical specs must agree on their key.
func TestRunHammer(t *testing.T) {
	_, ts := newTestServer(t)
	const goroutines = 32
	var wg sync.WaitGroup
	keys := make([]string, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mode := []string{"Vanilla", "LibOS"}[i%2]
			body := fmt.Sprintf(`{"workload":"Empty","mode":%q,"size":"Low"}`, mode)
			resp, rr := postRun(t, ts, body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			keys[i] = rr.Key
		}(i)
	}
	wg.Wait()
	for i := 2; i < goroutines; i++ {
		if keys[i] != keys[i%2] {
			t.Errorf("request %d: key %s differs from same-spec key %s", i, keys[i], keys[i%2])
		}
	}
	if entries := metric(t, ts, "sgxgauged_cache_entries"); entries != 2 {
		t.Errorf("cache_entries = %g, want 2 distinct specs", entries)
	}
}

func mustWorkload(t *testing.T, name string) workloads.Workload {
	t.Helper()
	w, err := suite.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
