package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sgxgauge/internal/journal"
	"sgxgauge/internal/store"
)

// metrics is the daemon's instrumentation: request counts and
// latencies per endpoint, run/coalescing counters, and worker-pool
// occupancy gauges. Everything renders in Prometheus text exposition
// format on /metrics.
type metrics struct {
	// workers is the worker-pool capacity (immutable after New).
	workers int

	mu sync.Mutex
	// requests counts finished requests per "path\x00code". // guarded by mu
	requests map[string]uint64
	// latSum accumulates request seconds per path. // guarded by mu
	latSum map[string]float64
	// latCount counts latency observations per path. // guarded by mu
	latCount map[string]uint64

	busy              atomic.Int64  // occupied worker-pool slots
	inflight          atomic.Int64  // run requests executing or queued
	runs              atomic.Uint64 // specs actually executed
	coalesced         atomic.Uint64 // requests that joined an in-flight run
	admissionRejected atomic.Uint64 // jobs shed with 429 past the queue high-water mark
}

func newMetrics(workers int) *metrics {
	return &metrics{
		workers:  workers,
		requests: make(map[string]uint64),
		latSum:   make(map[string]float64),
		latCount: make(map[string]uint64),
	}
}

// observe records one finished request.
func (m *metrics) observe(path string, code int, seconds float64) {
	key := fmt.Sprintf("%s\x00%d", path, code)
	m.mu.Lock()
	m.requests[key]++
	m.latSum[path] += seconds
	m.latCount[path]++
	m.mu.Unlock()
}

// render writes the Prometheus text exposition. Label sets print in
// sorted order so consecutive scrapes of an idle daemon are
// byte-identical.
func (m *metrics) render(w io.Writer, cache *Cache) {
	m.mu.Lock()
	requests := make(map[string]uint64, len(m.requests))
	for k, v := range m.requests {
		requests[k] = v
	}
	latSum := make(map[string]float64, len(m.latSum))
	for k, v := range m.latSum {
		latSum[k] = v
	}
	latCount := make(map[string]uint64, len(m.latCount))
	for k, v := range m.latCount {
		latCount[k] = v
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP sgxgauged_http_requests_total Finished HTTP requests by path and status code.")
	fmt.Fprintln(w, "# TYPE sgxgauged_http_requests_total counter")
	for _, k := range sortedKeys(requests) {
		path, code, _ := strings.Cut(k, "\x00")
		fmt.Fprintf(w, "sgxgauged_http_requests_total{path=%q,code=%q} %d\n", path, code, requests[k])
	}

	fmt.Fprintln(w, "# HELP sgxgauged_http_request_seconds Request latency sum and count by path.")
	fmt.Fprintln(w, "# TYPE sgxgauged_http_request_seconds summary")
	for _, path := range sortedKeys(latCount) {
		fmt.Fprintf(w, "sgxgauged_http_request_seconds_sum{path=%q} %g\n", path, latSum[path])
		fmt.Fprintf(w, "sgxgauged_http_request_seconds_count{path=%q} %d\n", path, latCount[path])
	}

	hits, misses, evictions := cache.Stats()
	fmt.Fprintln(w, "# HELP sgxgauged_cache_hits_total Result-cache hits.")
	fmt.Fprintln(w, "# TYPE sgxgauged_cache_hits_total counter")
	fmt.Fprintf(w, "sgxgauged_cache_hits_total %d\n", hits)
	fmt.Fprintln(w, "# HELP sgxgauged_cache_misses_total Result-cache misses.")
	fmt.Fprintln(w, "# TYPE sgxgauged_cache_misses_total counter")
	fmt.Fprintf(w, "sgxgauged_cache_misses_total %d\n", misses)
	fmt.Fprintln(w, "# HELP sgxgauged_cache_evictions_total Results evicted from the bounded cache.")
	fmt.Fprintln(w, "# TYPE sgxgauged_cache_evictions_total counter")
	fmt.Fprintf(w, "sgxgauged_cache_evictions_total %d\n", evictions)
	fmt.Fprintln(w, "# HELP sgxgauged_cache_entries Results currently cached.")
	fmt.Fprintln(w, "# TYPE sgxgauged_cache_entries gauge")
	fmt.Fprintf(w, "sgxgauged_cache_entries %d\n", cache.Len())

	fmt.Fprintln(w, "# HELP sgxgauged_workers Worker-pool capacity.")
	fmt.Fprintln(w, "# TYPE sgxgauged_workers gauge")
	fmt.Fprintf(w, "sgxgauged_workers %d\n", m.workers)
	fmt.Fprintln(w, "# HELP sgxgauged_workers_busy Worker-pool slots currently executing a run.")
	fmt.Fprintln(w, "# TYPE sgxgauged_workers_busy gauge")
	fmt.Fprintf(w, "sgxgauged_workers_busy %d\n", m.busy.Load())
	fmt.Fprintln(w, "# HELP sgxgauged_runs_inflight Run requests currently executing or queued.")
	fmt.Fprintln(w, "# TYPE sgxgauged_runs_inflight gauge")
	fmt.Fprintf(w, "sgxgauged_runs_inflight %d\n", m.inflight.Load())
	fmt.Fprintln(w, "# HELP sgxgauged_runs_total Specs actually executed (cache hits and coalesced requests excluded).")
	fmt.Fprintln(w, "# TYPE sgxgauged_runs_total counter")
	fmt.Fprintf(w, "sgxgauged_runs_total %d\n", m.runs.Load())
	fmt.Fprintln(w, "# HELP sgxgauged_runs_coalesced_total Requests served by joining an identical in-flight run.")
	fmt.Fprintln(w, "# TYPE sgxgauged_runs_coalesced_total counter")
	fmt.Fprintf(w, "sgxgauged_runs_coalesced_total %d\n", m.coalesced.Load())
	fmt.Fprintln(w, "# HELP sgxgauged_admission_rejected_total Jobs shed with 429 because the queue was past its high-water mark.")
	fmt.Fprintln(w, "# TYPE sgxgauged_admission_rejected_total counter")
	fmt.Fprintf(w, "sgxgauged_admission_rejected_total %d\n", m.admissionRejected.Load())
}

// renderAdmissionMetrics appends the admission queue-depth gauge.
func renderAdmissionMetrics(w io.Writer, depth int64, maxQueue int) {
	fmt.Fprintln(w, "# HELP sgxgauged_queue_depth Specs admitted and not yet finished.")
	fmt.Fprintln(w, "# TYPE sgxgauged_queue_depth gauge")
	fmt.Fprintf(w, "sgxgauged_queue_depth %d\n", depth)
	fmt.Fprintln(w, "# HELP sgxgauged_queue_high_water Admission high-water mark (429 past this depth).")
	fmt.Fprintln(w, "# TYPE sgxgauged_queue_high_water gauge")
	fmt.Fprintf(w, "sgxgauged_queue_high_water %d\n", maxQueue)
}

// renderJournalMetrics appends the crash-recovery journal's series.
func renderJournalMetrics(w io.Writer, jl *journal.Journal) {
	st := jl.Stats()
	fmt.Fprintln(w, "# HELP sgxgauged_journal_records_total Records appended to the job journal.")
	fmt.Fprintln(w, "# TYPE sgxgauged_journal_records_total counter")
	fmt.Fprintf(w, "sgxgauged_journal_records_total %d\n", st.Records)
	fmt.Fprintln(w, "# HELP sgxgauged_journal_replayed_total Unfinished jobs re-enqueued by startup replay.")
	fmt.Fprintln(w, "# TYPE sgxgauged_journal_replayed_total counter")
	fmt.Fprintf(w, "sgxgauged_journal_replayed_total %d\n", st.Replayed)
	fmt.Fprintln(w, "# HELP sgxgauged_journal_quarantined_total Corrupt journal records and files set aside during replay.")
	fmt.Fprintln(w, "# TYPE sgxgauged_journal_quarantined_total counter")
	fmt.Fprintf(w, "sgxgauged_journal_quarantined_total %d\n", st.Quarantined)
	fmt.Fprintln(w, "# HELP sgxgauged_journal_poisoned Poison records currently quarantined.")
	fmt.Fprintln(w, "# TYPE sgxgauged_journal_poisoned gauge")
	fmt.Fprintf(w, "sgxgauged_journal_poisoned %d\n", st.Poisoned)
}

// renderStoreMetrics appends the persistent result store's series:
// the on-disk entry count and the lifetime hit/miss/put/quarantine
// counters.
func renderStoreMetrics(w io.Writer, st *store.Store) {
	hits, misses, puts, putErrors, quarantined := st.Stats()
	fmt.Fprintln(w, "# HELP sgxgauged_store_entries Results currently persisted on disk.")
	fmt.Fprintln(w, "# TYPE sgxgauged_store_entries gauge")
	fmt.Fprintf(w, "sgxgauged_store_entries %d\n", st.Len())
	fmt.Fprintln(w, "# HELP sgxgauged_store_hits_total Result-store read hits.")
	fmt.Fprintln(w, "# TYPE sgxgauged_store_hits_total counter")
	fmt.Fprintf(w, "sgxgauged_store_hits_total %d\n", hits)
	fmt.Fprintln(w, "# HELP sgxgauged_store_misses_total Result-store read misses.")
	fmt.Fprintln(w, "# TYPE sgxgauged_store_misses_total counter")
	fmt.Fprintf(w, "sgxgauged_store_misses_total %d\n", misses)
	fmt.Fprintln(w, "# HELP sgxgauged_store_puts_total Results newly persisted to disk.")
	fmt.Fprintln(w, "# TYPE sgxgauged_store_puts_total counter")
	fmt.Fprintf(w, "sgxgauged_store_puts_total %d\n", puts)
	fmt.Fprintln(w, "# HELP sgxgauged_store_put_errors_total Persist attempts that failed (results still served from memory).")
	fmt.Fprintln(w, "# TYPE sgxgauged_store_put_errors_total counter")
	fmt.Fprintf(w, "sgxgauged_store_put_errors_total %d\n", putErrors)
	fmt.Fprintln(w, "# HELP sgxgauged_store_quarantined_total Corrupt entries moved to the quarantine directory.")
	fmt.Fprintln(w, "# TYPE sgxgauged_store_quarantined_total counter")
	fmt.Fprintf(w, "sgxgauged_store_quarantined_total %d\n", quarantined)
}

// renderClusterMetrics appends the coordinator's fleet series.
func renderClusterMetrics(w io.Writer, c *cluster) {
	fmt.Fprintln(w, "# HELP sgxgauged_cluster_workers Live registered workers.")
	fmt.Fprintln(w, "# TYPE sgxgauged_cluster_workers gauge")
	fmt.Fprintf(w, "sgxgauged_cluster_workers %d\n", c.liveWorkers(time.Now()))
	fmt.Fprintln(w, "# HELP sgxgauged_cluster_dispatched_total Specs handed to a worker.")
	fmt.Fprintln(w, "# TYPE sgxgauged_cluster_dispatched_total counter")
	fmt.Fprintf(w, "sgxgauged_cluster_dispatched_total %d\n", c.dispatched.Load())
	fmt.Fprintln(w, "# HELP sgxgauged_cluster_completed_total Specs finished by a worker result.")
	fmt.Fprintln(w, "# TYPE sgxgauged_cluster_completed_total counter")
	fmt.Fprintf(w, "sgxgauged_cluster_completed_total %d\n", c.completed.Load())
	fmt.Fprintln(w, "# HELP sgxgauged_cluster_coalesced_total Submissions that joined an already in-flight cluster task.")
	fmt.Fprintln(w, "# TYPE sgxgauged_cluster_coalesced_total counter")
	fmt.Fprintf(w, "sgxgauged_cluster_coalesced_total %d\n", c.coalesced.Load())
	fmt.Fprintln(w, "# HELP sgxgauged_cluster_requeued_total Task reroutes after a worker went silent past its TTL.")
	fmt.Fprintln(w, "# TYPE sgxgauged_cluster_requeued_total counter")
	fmt.Fprintf(w, "sgxgauged_cluster_requeued_total %d\n", c.requeued.Load())
	fmt.Fprintln(w, "# HELP sgxgauged_cluster_local_runs_total Tasks executed on the coordinator itself (no live worker owned them).")
	fmt.Fprintln(w, "# TYPE sgxgauged_cluster_local_runs_total counter")
	fmt.Fprintf(w, "sgxgauged_cluster_local_runs_total %d\n", c.localRuns.Load())
	fmt.Fprintln(w, "# HELP sgxgauged_cluster_stale_results_total Worker results for closed tasks or from workers that no longer own them.")
	fmt.Fprintln(w, "# TYPE sgxgauged_cluster_stale_results_total counter")
	fmt.Fprintf(w, "sgxgauged_cluster_stale_results_total %d\n", c.stale.Load())
	fmt.Fprintln(w, "# HELP sgxgauged_cluster_rejected_results_total Worker results inconsistent with their task's spec, dropped before reaching the cache.")
	fmt.Fprintln(w, "# TYPE sgxgauged_cluster_rejected_results_total counter")
	fmt.Fprintf(w, "sgxgauged_cluster_rejected_results_total %d\n", c.rejected.Load())
	fmt.Fprintln(w, "# HELP sgxgauged_cluster_task_retries_total Failed task attempts charged against retry budgets.")
	fmt.Fprintln(w, "# TYPE sgxgauged_cluster_task_retries_total counter")
	fmt.Fprintf(w, "sgxgauged_cluster_task_retries_total %d\n", c.retries.Load())
	fmt.Fprintln(w, "# HELP sgxgauged_cluster_poisoned_tasks_total Tasks quarantined after exhausting their retry budget.")
	fmt.Fprintln(w, "# TYPE sgxgauged_cluster_poisoned_tasks_total counter")
	fmt.Fprintf(w, "sgxgauged_cluster_poisoned_tasks_total %d\n", c.poisonedTotal.Load())
	fmt.Fprintln(w, "# HELP sgxgauged_cluster_drained_workers_total Workers that deregistered gracefully.")
	fmt.Fprintln(w, "# TYPE sgxgauged_cluster_drained_workers_total counter")
	fmt.Fprintf(w, "sgxgauged_cluster_drained_workers_total %d\n", c.drained.Load())
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
