package serve

import (
	"fmt"
	"net/http"

	"sgxgauge/internal/chaos"
	"sgxgauge/internal/harness"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/workloads/scenario"
)

// This file serves /v1/scenarios: GET lists the registered
// multi-enclave scenarios (names, properties, default casts, schema
// version), POST runs one. A posted scenario builds the same
// versioned envelope the wire codec validates, then takes serveRunSpec
// — the identical cache/job/store path as /v1/run, keyed by the same
// canonical encoding, so a scenario run is addressable, cacheable and
// cluster-executable with zero special cases.

// scenarioInfo is one GET /v1/scenarios entry.
type scenarioInfo struct {
	Name     string             `json:"name"`
	Property string             `json:"property"`
	Version  int                `json:"version"`
	Defaults []scenario.Enclave `json:"default_enclaves"`
}

func (s *Server) handleScenarioList(w http.ResponseWriter, r *http.Request) {
	var out []scenarioInfo
	for _, name := range scenario.Names() {
		d, _ := scenario.Lookup(name)
		out = append(out, scenarioInfo{
			Name:     d.Name,
			Property: d.Property,
			Version:  scenario.SchemaVersion,
			Defaults: d.Defaults(0),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// scenarioRequest is the POST /v1/scenarios body: the scenario by
// name with an optional explicit cast (or a default-cast size N),
// plus the machine-level settings a workload spec would carry.
type scenarioRequest struct {
	Name       string             `json:"name"`
	Enclaves   []scenario.Enclave `json:"enclaves,omitempty"`
	N          int                `json:"n,omitempty"`
	Quantum    uint64             `json:"quantum,omitempty"`
	Seed       int64              `json:"seed,omitempty"`
	EPCPages   int                `json:"epc_pages,omitempty"`
	Switchless bool               `json:"switchless,omitempty"`
	Timeline   uint64             `json:"timeline,omitempty"`
	Machine    *sgx.Config        `json:"machine,omitempty"`
	Chaos      *chaos.Config      `json:"chaos,omitempty"`
}

// Spec assembles the harness spec the request describes, validating
// the envelope exactly as the wire codec would.
func (req scenarioRequest) Spec() (harness.Spec, error) {
	sp, err := scenario.New(req.Name, req.N)
	if err != nil {
		return harness.Spec{}, err
	}
	if len(req.Enclaves) > 0 {
		if req.N > 0 {
			return harness.Spec{}, fmt.Errorf("serve: scenario request has both an explicit enclave cast and n=%d", req.N)
		}
		sp.Enclaves = req.Enclaves
	}
	sp.Quantum = req.Quantum
	if err := sp.Validate(); err != nil {
		return harness.Spec{}, err
	}
	return harness.Spec{
		Scenario:   &sp,
		Mode:       sgx.Native,
		Seed:       req.Seed,
		EPCPages:   req.EPCPages,
		Switchless: req.Switchless,
		Timeline:   req.Timeline,
		Machine:    req.Machine,
		Chaos:      req.Chaos,
	}, nil
}

func (s *Server) handleScenarioRun(w http.ResponseWriter, r *http.Request) {
	var req scenarioRequest
	if !decodeBody(w, r, maxRunBody, &req) {
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %v", errBadSpec, err))
		return
	}
	s.serveRunSpec(w, r, spec)
}
