package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sgxgauge/internal/harness"
	"sgxgauge/internal/journal"
	"sgxgauge/internal/workloads"
)

// pullTask polls as the worker until the task batch arrives (retried
// tasks sit out a backoff park before they reroute).
func pullTask(t *testing.T, c *cluster, worker string) *clusterTask {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		batch, err := c.poll(context.Background(), worker, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 1 {
			return batch[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s never received the rerouted task", worker)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClusterRetryPoison: each worker-reported failure charges the
// task's retry budget and parks it for a backoff before rerouting;
// the attempt past the budget quarantines the task as poisoned — a
// failed result carrying the attempt history — and later submissions
// of the key fail fast without dispatching anything.
func TestClusterRetryPoison(t *testing.T) {
	c := newCluster(time.Minute, 2, time.Millisecond, nil)
	now := time.Now()
	c.register("w1", now)

	spec := harness.Spec{Workload: mustWorkload(t, "Empty")}
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	task, created, local := c.submit(key, spec, now)
	if !created || local {
		t.Fatalf("submit: created=%v local=%v, want a created remote task", created, local)
	}

	for attempt := 1; attempt <= 3; attempt++ {
		if got := pullTask(t, c, "w1"); got != task {
			t.Fatalf("attempt %d pulled a different task", attempt)
		}
		if !c.fail("w1", key, "boom", time.Now()) {
			t.Fatalf("attempt %d: failure from the owning worker was not attributed", attempt)
		}
		if got := int(c.retries.Load()); got != attempt {
			t.Fatalf("retries counter = %d after attempt %d", got, attempt)
		}
	}

	// The third failure exceeded the budget of 2: poisoned.
	select {
	case <-task.done:
	default:
		t.Fatal("exhausted task was not finished")
	}
	if task.res == nil || task.res.Err == nil {
		t.Fatalf("poisoned task settled with res=%v err=%v, want a failed result", task.res, task.err)
	}
	msg := task.res.Err.Error()
	if !strings.Contains(msg, "poisoned after 3 failed attempts") || !strings.Contains(msg, "boom") {
		t.Fatalf("poison message %q lacks the attempt count or history", msg)
	}
	if got := c.poisonedTotal.Load(); got != 1 {
		t.Fatalf("poisonedTotal = %d, want 1", got)
	}

	// Quarantined keys fail fast: no new task, no dispatch.
	task2, created, local := c.submit(key, spec, time.Now())
	if created || local || !task2.finished || task2.res == nil || task2.res.Err == nil {
		t.Fatalf("poisoned resubmit: created=%v local=%v finished=%v, want an instant failed task",
			created, local, task2.finished)
	}
	if !strings.Contains(task2.res.Err.Error(), "poisoned") {
		t.Fatalf("resubmit failure %q does not name the quarantine", task2.res.Err)
	}
}

// TestClusterDeregisterNoPenalty: a graceful drain reroutes the
// departing worker's work immediately — no TTL wait, no backoff park —
// and charges no retry budget; the tasks were handed back, not failed.
func TestClusterDeregisterNoPenalty(t *testing.T) {
	c := newCluster(time.Minute, 0, time.Millisecond, nil)
	now := time.Now()
	c.register("w1", now)
	c.register("w2", now)

	// A spec whose key shards onto w1 (even leading byte over the
	// sorted ids).
	var spec harness.Spec
	var key harness.Key
	for seed := int64(1); ; seed++ {
		spec = harness.Spec{Workload: mustWorkload(t, "Empty"), Seed: seed}
		k, err := harness.SpecKey(spec)
		if err != nil {
			t.Fatal(err)
		}
		if int(k[0])%2 == 0 {
			key = k
			break
		}
	}
	task, _, local := c.submit(key, spec, now)
	if local || task.worker != "w1" {
		t.Fatalf("task routed to %q (local=%v), want w1", task.worker, local)
	}
	if got := pullTask(t, c, "w1"); got != task {
		t.Fatal("w1 did not pull its routed task")
	}

	if !c.deregister("w1", now) {
		t.Fatal("deregister of a registered worker reported unknown")
	}
	c.mu.Lock()
	owner, parked := task.worker, task.parked
	c.mu.Unlock()
	if owner != "w2" || parked {
		t.Fatalf("after drain the task is on %q (parked=%v), want an immediate reroute to w2", owner, parked)
	}
	if got := c.retries.Load(); got != 0 {
		t.Fatalf("drain charged %d retries, want 0", got)
	}
	if got := c.requeued.Load(); got != 1 {
		t.Fatalf("requeued = %d, want 1", got)
	}
	if got := c.drained.Load(); got != 1 {
		t.Fatalf("drained = %d, want 1", got)
	}
	if c.deregister("ghost", now) {
		t.Fatal("deregister of an unknown worker reported ok")
	}
}

// TestRetryDelayDeterministic: the backoff doubles per retry, caps at
// maxRetryDelay, never drops under a millisecond, and its jitter is a
// pure function of the key — identical inputs park identically on
// every run.
func TestRetryDelayDeterministic(t *testing.T) {
	var key harness.Key
	key[1] = 200
	d1 := retryDelay(DefaultRetryBase, 1, key)
	if d1 != retryDelay(DefaultRetryBase, 1, key) {
		t.Fatal("retryDelay is not deterministic for identical inputs")
	}
	lo, hi := DefaultRetryBase*3/4, DefaultRetryBase*5/4
	if d1 < lo || d1 > hi {
		t.Fatalf("retry 1 delay %v outside the ±25%% band [%v, %v]", d1, lo, hi)
	}
	d2 := retryDelay(DefaultRetryBase, 2, key)
	if d2 <= d1 {
		t.Fatalf("retry 2 delay %v did not grow past retry 1's %v", d2, d1)
	}
	if d := retryDelay(DefaultRetryBase, 30, key); d > maxRetryDelay*5/4 {
		t.Fatalf("retry 30 delay %v escaped the %v cap", d, maxRetryDelay)
	}
	if d := retryDelay(time.Nanosecond, 1, key); d < time.Millisecond {
		t.Fatalf("delay %v under the millisecond floor", d)
	}
	var other harness.Key
	other[1] = 10
	if retryDelay(DefaultRetryBase, 1, key) == retryDelay(DefaultRetryBase, 1, other) {
		t.Fatal("keys with different jitter bytes parked identically (no jitter applied)")
	}
}

// TestPoisonPersistsAcrossRestart: a poison record written through the
// journal survives a coordinator restart — the rebuilt cluster
// preloads the quarantine and fails the key fast with its recorded
// history instead of burning a fresh retry budget.
func TestPoisonPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	jl, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(time.Minute, -1, time.Millisecond, jl) // poison on first failure
	now := time.Now()
	c.register("w1", now)
	spec := harness.Spec{Workload: mustWorkload(t, "Empty"), Size: workloads.Low, Seed: 5}
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	task, _, _ := c.submit(key, spec, now)
	pullTask(t, c, "w1")
	if !c.fail("w1", key, "segfault in enclave", now) {
		t.Fatal("failure was not attributed")
	}
	<-task.done

	// The poison record is persisted off the cluster lock; wait for it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := jl.Poisoned()[key.String()]; ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("poison record never reached the journal")
		}
		time.Sleep(time.Millisecond)
	}

	// "Restart": fresh journal handle, fresh cluster.
	jl2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := newCluster(time.Minute, 0, 0, jl2)
	c2.register("w1", now)
	task2, created, local := c2.submit(key, spec, now)
	if created || local || !task2.finished || task2.res == nil || task2.res.Err == nil {
		t.Fatalf("restarted cluster did not fail the poisoned key fast (created=%v local=%v)", created, local)
	}
	if msg := task2.res.Err.Error(); !strings.Contains(msg, "segfault in enclave") {
		t.Fatalf("restart failure %q lost the recorded attempt history", msg)
	}
}

// TestWorkerReportedFailurePoisons is the end-to-end failed-line path:
// a worker that cannot execute a spec posts a failed result line; with
// a zero retry budget the coordinator poisons the task, and a later
// /v1/run of the same spec answers 200 with the failure as the spec's
// own error — never cached, never an engine error.
func TestWorkerReportedFailurePoisons(t *testing.T) {
	coord, cts := startCoordinator(t, Config{TaskRetries: -1})
	resp, err := http.Post(cts.URL+"/v1/cluster/register", "application/json",
		strings.NewReader(`{"worker":"w1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	spec := coord.runner.Normalize(harness.Spec{Workload: mustWorkload(t, "Empty"), Size: workloads.Low, Seed: 3})
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	task, created, local := coord.cluster.submit(key, spec, time.Now())
	if !created || local {
		t.Fatalf("submit: created=%v local=%v", created, local)
	}
	resp, err = http.Post(cts.URL+"/v1/cluster/poll", "application/json",
		strings.NewReader(`{"worker":"w1","max":4,"wait_ms":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	var pulled pollResponse
	if err := json.NewDecoder(resp.Body).Decode(&pulled); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pulled.Specs) != 1 || pulled.Specs[0].Key != key.String() {
		t.Fatalf("poll returned %+v, want the submitted task", pulled.Specs)
	}

	line, err := json.Marshal(resultLine{Key: key.String(), Failed: "simulated crash"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(cts.URL+"/v1/cluster/results?worker=w1",
		"application/x-ndjson", strings.NewReader(string(line)+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	var rr resultsResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rr.Accepted != 0 {
		t.Fatalf("failed line counted as %d accepted results, want 0", rr.Accepted)
	}

	select {
	case <-task.done:
	default:
		t.Fatal("failed line did not finish the zero-budget task")
	}
	if task.res == nil || task.res.Err == nil ||
		!strings.Contains(task.res.Err.Error(), "simulated crash") {
		t.Fatalf("task settled with res=%v err=%v, want a failed result naming the crash", task.res, task.err)
	}
	if got := coord.cluster.poisonedTotal.Load(); got != 1 {
		t.Fatalf("poisonedTotal = %d, want 1", got)
	}

	// The poisoned spec surfaces through /v1/run as the spec's own
	// failure: 200, error payload, nothing cached.
	resp, err = http.Post(cts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"workload":"Empty","mode":"Vanilla","size":"Low","seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var run runResponse
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/run of the poisoned spec: status %d, want 200", resp.StatusCode)
	}
	if run.Result == nil || !strings.Contains(run.Result.Error, "poisoned") {
		t.Fatalf("/v1/run result = %+v, want the poison failure in the error field", run.Result)
	}
	resp, err = http.Get(cts.URL + "/v1/results/" + key.String())
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("poisoned result was cached (GET /v1/results: %d, want 404)", resp.StatusCode)
	}
}

// TestWorkerDrainFinishesBatch: a SIGTERM'd worker (cancelled context)
// finishes its in-flight batch under the drain budget, lands the
// results post, and only then deregisters — instead of abandoning the
// batch to TTL expiry and re-simulation elsewhere.
func TestWorkerDrainFinishesBatch(t *testing.T) {
	ws := New(Config{EPCPages: testEPC, Seed: 7, Workers: 2})
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	ws.runner.Exec = func(spec harness.Spec) (*harness.Result, error) {
		once.Do(func() { close(started) })
		<-gate
		return ws.localRun(spec)
	}

	spec := ws.runner.Normalize(harness.Spec{Workload: mustWorkload(t, "Empty"), Size: workloads.Low, Seed: 1})
	key, err := harness.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := spec.Wire()
	if err != nil {
		t.Fatal(err)
	}
	assignment := taskAssignment{Key: key.String(), Spec: wire}

	var polls atomic.Int64
	lines := make(chan resultLine, 4)
	deregistered := make(chan struct{}, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/register", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, registerResponse{Workers: 1, TTLMS: 60_000})
	})
	mux.HandleFunc("POST /v1/cluster/poll", func(w http.ResponseWriter, r *http.Request) {
		resp := pollResponse{}
		if polls.Add(1) == 1 {
			resp.Specs = []taskAssignment{assignment}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, heartbeatResponse{OK: true})
	})
	mux.HandleFunc("POST /v1/cluster/results", func(w http.ResponseWriter, r *http.Request) {
		d := newResultLineDecoder(r.Body)
		for {
			k, res, failed, err := d.next()
			if err != nil {
				break
			}
			var line resultLine
			line.Key = k.String()
			line.Failed = failed
			if res != nil {
				line.Result = res.Wire()
			}
			lines <- line
		}
		writeJSON(w, http.StatusOK, resultsResponse{Accepted: 1})
	})
	mux.HandleFunc("POST /v1/cluster/deregister", func(w http.ResponseWriter, r *http.Request) {
		select {
		case deregistered <- struct{}{}:
		default:
		}
		writeJSON(w, http.StatusOK, deregisterResponse{OK: true})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	wk := NewWorker(ws, ts.URL, "w1")
	wk.Drain = 30 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		wk.Run(ctx)
	}()

	// Wait until the batch is executing, then deliver the "SIGTERM".
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never started executing the batch")
	}
	cancel()
	// The drain budget keeps the batch alive past the cancellation;
	// releasing the gate lets it finish and post.
	close(gate)

	select {
	case line := <-lines:
		if line.Failed != "" || line.Key != key.String() || line.Result.Name != "Empty" {
			t.Fatalf("drained worker posted %+v, want the finished result for its batch", line)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drained worker never posted its in-flight batch")
	}
	select {
	case <-deregistered:
	case <-time.After(10 * time.Second):
		t.Fatal("drained worker never deregistered")
	}
	select {
	case <-runDone:
	case <-time.After(10 * time.Second):
		t.Fatal("worker Run did not return after the drain")
	}
	if got := wk.executed.Load(); got != 1 {
		t.Fatalf("worker executed %d specs, want 1", got)
	}
}
