package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sgxgauge/internal/workloads/scenario"
)

func postScenario(t *testing.T, ts *httptest.Server, body string) (*http.Response, runResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr runResponse
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &rr); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp, rr
}

// TestScenarioList: GET /v1/scenarios enumerates every registered
// scenario with its default cast.
func TestScenarioList(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []scenarioInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(scenario.Names()) {
		t.Fatalf("listed %d scenarios, registry has %d", len(infos), len(scenario.Names()))
	}
	for _, info := range infos {
		if info.Version != scenario.SchemaVersion || len(info.Defaults) == 0 || info.Property == "" {
			t.Fatalf("malformed listing entry: %+v", info)
		}
	}
}

// TestScenarioRunEndpoint: POST /v1/scenarios runs a scenario through
// the same cache/job path as /v1/run — the repeat POST is a cache hit
// with the identical key, and the key is addressable via /v1/results.
func TestScenarioRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"name":"attested-session","seed":3}`
	resp, first := postScenario(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/scenarios: %d", resp.StatusCode)
	}
	if first.Cached || first.Result == nil || first.Result.Name != "attested-session" {
		t.Fatalf("first run: %+v", first)
	}
	if first.Result.Error != "" {
		t.Fatalf("scenario failed: %s", first.Result.Error)
	}

	resp, again := postScenario(t, ts, body)
	if resp.StatusCode != http.StatusOK || !again.Cached || again.Key != first.Key {
		t.Fatalf("repeat run not served from cache: %d %+v", resp.StatusCode, again)
	}

	rr, err := http.Get(ts.URL + "/v1/results/" + first.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/results/%s: %d", first.Key, rr.StatusCode)
	}
}

// TestScenarioRunViaGenericEndpoint: a full SpecWire document with a
// scenario envelope runs through plain POST /v1/run and resolves to
// the same key as the dedicated endpoint — one canonical encoding,
// two doors.
func TestScenarioRunViaGenericEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	_, dedicated := postScenario(t, ts, `{"name":"consensus","n":2,"seed":5}`)
	resp, generic := postRun(t, ts,
		`{"mode":"Native","size":"Low","seed":5,"scenario":{"version":1,"name":"consensus","enclaves":[`+
			`{"role":"node","size":"Medium"},{"role":"node","size":"Medium"}]}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/run with scenario envelope: %d", resp.StatusCode)
	}
	if generic.Key != dedicated.Key {
		t.Fatalf("generic and dedicated endpoints keyed differently: %s vs %s", generic.Key, dedicated.Key)
	}
	if !generic.Cached {
		t.Fatal("generic endpoint missed the cache entry the dedicated run filled")
	}
}

// TestScenarioRunRejectsBadRequests: validation failures are 400s
// whose bodies name what would have been valid.
func TestScenarioRunRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := map[string]struct {
		body string
		want string
	}{
		"unknown-name": {`{"name":"nope"}`, "valid: "},
		"cast-and-n":   {`{"name":"consensus","n":3,"enclaves":[{"role":"node"}]}`, "both"},
		"bad-cast":     {`{"name":"attested-session","enclaves":[{"role":"client"}]}`, "exactly 2"},
		"missing-name": {`{}`, "valid: "},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, body %s", resp.StatusCode, data)
			}
			if !strings.Contains(string(data), tc.want) {
				t.Fatalf("400 body %q does not mention %q", data, tc.want)
			}
		})
	}
}
