package serve

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"sgxgauge/internal/journal"
	"sgxgauge/internal/sgx"
	"sgxgauge/internal/store"
)

// Main is the daemon entry point shared by the sgxgauged binary and
// the `sgxgauge serve` subcommand: it parses args, binds the listener,
// serves until SIGINT/SIGTERM, then shuts down gracefully — first
// draining in-flight HTTP requests, then waiting for detached runs.
//
// Three deployment shapes share this entry point: a standalone daemon
// (no cluster flags), a coordinator (-coordinator) that farms
// execution to registered workers, and a worker (-worker <URL>) that
// additionally pulls and executes the coordinator's spec batches.
// Any shape may add -store.dir to persist results across restarts.
func Main(args []string) error {
	fs := flag.NewFlagSet("sgxgauged", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8643", "listen address")
	epcPages := fs.Int("epc", sgx.DefaultEPCPages, "EPC size in pages forced onto specs that leave it zero")
	seed := fs.Int64("seed", 1, "base random seed for specs that leave it zero")
	workers := fs.Int("j", 0, "concurrent simulated runs (0 = GOMAXPROCS)")
	cacheN := fs.Int("cache", DefaultCacheEntries, "max cached results")
	drain := fs.Duration("drain", DefaultDrain, "graceful-shutdown budget for in-flight requests (and a worker's in-flight batch)")
	storeDir := fs.String("store.dir", "", "directory for the persistent result store (empty = memory only)")
	storeFsync := fs.Bool("store.fsync", false, "fsync persistent-store writes (durability over write latency)")
	coordinator := fs.Bool("coordinator", false, "serve as sweep-cluster coordinator: farm runs out to registered workers")
	workerFor := fs.String("worker", "", "coordinator base URL to pull and execute spec batches for")
	workerTTL := fs.Duration("worker.ttl", DefaultWorkerTTL, "coordinator only: how long a silent worker keeps its work")
	journalDir := fs.String("journal.dir", "", "directory for the crash-recovery job journal (empty = jobs die with the process)")
	journalFsync := fs.Bool("journal.fsync", false, "fsync journal appends (durability over write latency)")
	maxQueue := fs.Int("admission.max", DefaultMaxQueue, "admission high-water mark: queued specs beyond which new jobs get 429")
	taskRetries := fs.Int("task.retries", DefaultTaskRetries, "coordinator only: failed attempts before a task is poisoned (negative = poison on first failure)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator && *workerFor != "" {
		return errors.New("sgxgauged: -coordinator and -worker are mutually exclusive")
	}
	if *workerTTL <= 0 {
		return fmt.Errorf("sgxgauged: -worker.ttl must be positive (got %v)", *workerTTL)
	}
	if *drain <= 0 {
		return fmt.Errorf("sgxgauged: -drain must be positive (got %v)", *drain)
	}
	if !*coordinator {
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "worker.ttl" {
				log.Printf("sgxgauged: -worker.ttl has no effect without -coordinator")
			}
		})
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{Fsync: *storeFsync})
		if err != nil {
			return fmt.Errorf("sgxgauged: opening store: %w", err)
		}
		log.Printf("sgxgauged: result store at %s (%d entries)", st.Dir(), st.Len())
	}
	var jl *journal.Journal
	if *journalDir != "" {
		var err error
		jl, err = journal.Open(*journalDir, journal.Options{Fsync: *journalFsync})
		if err != nil {
			return fmt.Errorf("sgxgauged: opening journal: %w", err)
		}
		log.Printf("sgxgauged: job journal at %s", jl.Dir())
	}

	role := "standalone"
	switch {
	case *coordinator:
		role = "coordinator"
	case *workerFor != "":
		role = "worker"
	}
	s := New(Config{
		EPCPages:     *epcPages,
		Seed:         *seed,
		Workers:      *workers,
		CacheEntries: *cacheN,
		Store:        st,
		Coordinator:  *coordinator,
		WorkerTTL:    *workerTTL,
		Journal:      jl,
		Role:         role,
		MaxQueue:     *maxQueue,
		TaskRetries:  *taskRetries,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("sgxgauged: %w", err)
	}
	srv := &http.Server{Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	//sgxlint:detached Serve lives for the whole process; its exit is joined via the errc receive in the select below
	go func() { errc <- srv.Serve(ln) }()
	logRole := role
	if *workerFor != "" {
		logRole = "worker for " + *workerFor
	}
	log.Printf("sgxgauged: serving on http://%s (epc=%d pages, seed=%d, %s)", ln.Addr(), *epcPages, *seed, logRole)

	// Replay the journal after the listener is up: healthz holds 503
	// (recovering) until Recover returns, so clients cannot race the
	// replay, while recovered jobs re-enqueue behind the warm store.
	//sgxlint:detached recovery runs once and signals completion through the server's recovered gate (healthz 503 until done)
	go func() {
		if err := s.Recover(); err != nil {
			log.Printf("sgxgauged: journal recovery: %v", err)
		}
	}()

	workerDone := make(chan struct{})
	if *workerFor != "" {
		wk := NewWorker(s, *workerFor, ln.Addr().String())
		wk.Drain = *drain
		//sgxlint:detached worker loop is joined by the workerDone close, received during shutdown below
		go func() {
			defer close(workerDone)
			// Run only returns on ctx cancellation; transient
			// coordinator trouble is retried inside the loop.
			if err := wk.Run(ctx); err != nil {
				log.Printf("sgxgauged: worker loop: %v", err)
			}
		}()
	} else {
		close(workerDone)
	}

	select {
	case err := <-errc:
		return fmt.Errorf("sgxgauged: %w", err)
	case <-ctx.Done():
	}
	log.Printf("sgxgauged: shutting down (draining up to %v)", *drain)
	<-workerDone
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("sgxgauged: shutdown: %w", err)
	}
	s.Drain()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("sgxgauged: %w", err)
	}
	log.Printf("sgxgauged: stopped")
	return nil
}
