package serve

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sgxgauge/internal/sgx"
)

// Main is the daemon entry point shared by the sgxgauged binary and
// the `sgxgauge serve` subcommand: it parses args, binds the listener,
// serves until SIGINT/SIGTERM, then shuts down gracefully — first
// draining in-flight HTTP requests, then waiting for detached runs.
func Main(args []string) error {
	fs := flag.NewFlagSet("sgxgauged", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8643", "listen address")
	epcPages := fs.Int("epc", sgx.DefaultEPCPages, "EPC size in pages forced onto specs that leave it zero")
	seed := fs.Int64("seed", 1, "base random seed for specs that leave it zero")
	workers := fs.Int("j", 0, "concurrent simulated runs (0 = GOMAXPROCS)")
	cacheN := fs.Int("cache", DefaultCacheEntries, "max cached results")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := New(Config{
		EPCPages:     *epcPages,
		Seed:         *seed,
		Workers:      *workers,
		CacheEntries: *cacheN,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("sgxgauged: %w", err)
	}
	srv := &http.Server{Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("sgxgauged: serving on http://%s (epc=%d pages, seed=%d)", ln.Addr(), *epcPages, *seed)

	select {
	case err := <-errc:
		return fmt.Errorf("sgxgauged: %w", err)
	case <-ctx.Done():
	}
	log.Printf("sgxgauged: shutting down (draining up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("sgxgauged: shutdown: %w", err)
	}
	s.Drain()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("sgxgauged: %w", err)
	}
	log.Printf("sgxgauged: stopped")
	return nil
}
